// tpcc - the TPC-C-lite order-entry workload on a replicated otpdb cluster.
//
// Each warehouse is a conflict class; NewOrder/Payment/Delivery are stored
// procedures TO-broadcast to all replicas; StockLevel is a local snapshot
// query. After the run, the money/stock conservation audit is evaluated at
// every site - it holds exactly because execution is 1-copy-serializable,
// regardless of how often the optimistic guesses had to be rolled back.
//
//   $ ./examples/tpcc
#include <cstdio>

#include "workload/tpcc_lite.h"

using namespace otpdb;

int main() {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 8;  // 8 warehouses
  tpcc::Layout layout;
  config.objects_per_class = layout.objects_per_warehouse();
  config.seed = 1999;  // the year this paper appeared

  Cluster cluster(config);
  tpcc::MixConfig mix;
  mix.txn_per_second_per_site = 150;
  mix.duration = 2 * kSecond;
  mix.warehouse_skew_theta = 0.6;  // mild home-warehouse affinity
  tpcc::TpccDriver driver(cluster, layout, mix, 77);
  driver.start();

  cluster.run_for(mix.duration);
  cluster.quiesce();

  const auto& stats = driver.stats();
  std::printf("tpcc-lite: 8 warehouses x 4 sites, %.0f txn/s/site for %.1f s\n",
              mix.txn_per_second_per_site,
              static_cast<double>(mix.duration) / 1e9);
  std::printf("  submitted: %llu NewOrder, %llu Payment, %llu Delivery, %llu StockLevel\n",
              static_cast<unsigned long long>(stats.new_orders),
              static_cast<unsigned long long>(stats.payments),
              static_cast<unsigned long long>(stats.deliveries),
              static_cast<unsigned long long>(stats.stock_level_queries));

  std::uint64_t committed = 0, aborts = 0;
  OnlineStats latency, query_latency;
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    const ReplicaMetrics& m = cluster.replica(s).metrics();
    committed += m.committed;
    aborts += m.aborts;
    latency.merge(m.commit_latency_ns);
    query_latency.merge(m.query_latency_ns);
  }
  std::printf("  committed %llu txns across sites (aborted+redone %llu optimistic runs)\n",
              static_cast<unsigned long long>(committed),
              static_cast<unsigned long long>(aborts));
  std::printf("  update latency mean %.2f ms / max %.2f ms; StockLevel mean %.2f ms\n",
              latency.mean() / 1e6, latency.max() / 1e6, query_latency.mean() / 1e6);

  bool all_clean = true;
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    const auto violations = driver.audit(s);
    if (!violations.empty()) {
      all_clean = false;
      for (const auto& v : violations) std::printf("  AUDIT VIOLATION: %s\n", v.c_str());
    }
  }
  std::printf("  conservation audit at all 4 sites: %s\n",
              all_clean ? "CLEAN (money and stock conserved exactly)" : "FAILED");
  return all_clean ? 0 : 1;
}
