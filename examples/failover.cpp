// failover - crash-tolerance of the optimistic atomic broadcast.
//
// Five sites process a continuous update stream. Mid-run, two sites (a
// minority, f = 2 < n/2) crash. The failure detectors at the survivors
// suspect them, the consensus layer routes coordinator rounds around them,
// and the surviving replicas keep committing in a consistent total order -
// at a visibly lower fast-path rate, since the identical-proposal optimism
// needs all n proposals while the crashed sites stay silent.
//
//   $ ./examples/failover
#include <cstdio>

#include "abcast/opt_abcast.h"
#include "core/cluster.h"
#include "util/rng.h"

using namespace otpdb;

int main() {
  ClusterConfig config;
  config.n_sites = 5;
  config.n_classes = 4;
  config.seed = 404;
  config.opt.consensus.round_timeout = 15 * kMillisecond;  // brisk failover
  Cluster cluster(config);
  const ProcId bump = cluster.procedures().add("bump", [&](TxnContext& ctx) {
    const ObjectId obj = cluster.catalog().object(ctx.conflict_class(), 0);
    ctx.write(obj, ctx.read_int(obj) + 1);
  });

  // Watch suspicions from site 0's failure detector.
  cluster.failure_detector(0).set_on_suspect([&](SiteId s) {
    std::printf("  t=%6.1f ms  site 0 suspects site %u\n",
                static_cast<double>(cluster.sim().now()) / 1e6, s);
  });

  // 1500 updates over 3 simulated seconds, submitted at whichever sites are
  // still alive.
  Rng rng(17);
  for (int i = 0; i < 1500; ++i) {
    const SimTime at = rng.uniform_int(0, 3 * kSecond);
    const SiteId site = static_cast<SiteId>(rng.uniform_int(0, 4));
    const ClassId klass = static_cast<ClassId>(rng.uniform_int(0, 3));
    cluster.sim().schedule_at(at, [&cluster, bump, site, klass] {
      if (!cluster.net().crashed(site)) {
        cluster.replica(site).submit_update(bump, klass, TxnArgs{{0}, {}}, kMillisecond);
      }
    });
  }

  std::printf("failover example: 5 sites, crashing sites 3 and 4 at t=1000 ms\n");
  cluster.sim().schedule_at(kSecond, [&cluster] {
    cluster.net().crash(3);
    cluster.net().crash(4);
    std::printf("  t=1000.0 ms  sites 3 and 4 CRASH\n");
  });

  auto fast_pct = [&cluster] {
    const auto& cs = dynamic_cast<OptAbcast&>(cluster.abcast(0)).consensus_stats();
    return cs.instances_decided ? 100.0 * static_cast<double>(cs.fast_decides) /
                                      static_cast<double>(cs.instances_decided)
                                : 0.0;
  };

  cluster.run_for(kSecond);
  const std::uint64_t committed_before = cluster.replica(0).metrics().committed;
  const double fast_before = fast_pct();
  cluster.run_for(2 * kSecond);
  cluster.run_for(5 * kSecond);  // settle

  std::printf("\n  survivors (sites 0-2):\n");
  std::uint64_t reference = cluster.replica(0).metrics().committed;
  for (SiteId s = 0; s < 3; ++s) {
    const ReplicaMetrics& m = cluster.replica(s).metrics();
    std::printf("    site %u committed=%llu (aborts=%llu)\n", s,
                static_cast<unsigned long long>(m.committed),
                static_cast<unsigned long long>(m.aborts));
    if (m.committed != reference) std::printf("    !! divergence\n");
  }
  std::printf("  committed before crash (site 0): %llu\n",
              static_cast<unsigned long long>(committed_before));
  std::printf("  committed after recovery window: %llu (progress despite f=2)\n",
              static_cast<unsigned long long>(reference));
  std::printf("  consensus fast path: %.1f%% before crash, %.1f%% overall\n"
              "  (the fast path needs all 5 proposals; with 2 sites silent every stage\n"
              "   falls back to coordinator rounds - slower, never inconsistent)\n",
              fast_before, fast_pct());

  // Cross-check: identical per-object state at the three survivors.
  bool identical = true;
  for (ClassId c = 0; c < 4; ++c) {
    const ObjectId obj = cluster.catalog().object(c, 0);
    const auto v0 = cluster.store(0).read_latest(obj);
    for (SiteId s = 1; s < 3; ++s) {
      if (cluster.store(s).read_latest(obj) != v0) identical = false;
    }
  }
  std::printf("  survivor states identical: %s\n", identical ? "yes" : "NO");
  return 0;
}
