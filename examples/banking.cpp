// banking - a replicated retail bank on otpdb.
//
// Branches are conflict classes (paper Section 2.3): accounts of one branch
// form one partition, so transactions within a branch serialize through its
// class queue while different branches proceed in parallel. Deposits,
// withdrawals and intra-branch transfers are stored procedures; the audit is
// a multi-branch snapshot query (Section 5) checking conservation of money -
// an invariant that only holds if the system is 1-copy-serializable.
//
// The same workload runs twice: over a calm LAN (spontaneous order mostly
// holds -> almost no rescheduling) and over a stormy one (frequent tentative/
// definitive mismatches -> the correctness-check module visibly aborts and
// re-executes, yet the invariant still holds).
//
//   $ ./examples/banking
#include <cstdio>

#include "core/cluster.h"
#include "util/rng.h"

using namespace otpdb;

namespace {

constexpr std::size_t kBranches = 8;
constexpr std::uint64_t kAccountsPerBranch = 16;
constexpr std::int64_t kOpeningBalance = 1000;
constexpr std::int64_t kTotalMoney =
    static_cast<std::int64_t>(kBranches * kAccountsPerBranch) * kOpeningBalance;

struct Procs {
  ProcId deposit;
  ProcId withdraw;
  ProcId transfer;
};

Procs declare_procedures(Cluster& cluster) {
  const PartitionCatalog& catalog = cluster.catalog();
  Procs procs;
  // args.ints = [account#, amount]
  procs.deposit = cluster.procedures().add("deposit", [&catalog](TxnContext& ctx) {
    const ObjectId acc = catalog.object(ctx.conflict_class(),
                                        static_cast<std::uint64_t>(ctx.args().ints[0]));
    ctx.write(acc, ctx.read_int(acc) + ctx.args().ints[1]);
  });
  // args.ints = [account#, amount]; refuses overdrafts (deterministically!).
  procs.withdraw = cluster.procedures().add("withdraw", [&catalog](TxnContext& ctx) {
    const ObjectId acc = catalog.object(ctx.conflict_class(),
                                        static_cast<std::uint64_t>(ctx.args().ints[0]));
    const std::int64_t balance = ctx.read_int(acc);
    if (balance >= ctx.args().ints[1]) ctx.write(acc, balance - ctx.args().ints[1]);
  });
  // args.ints = [from#, to#, amount]; same branch only (one conflict class).
  procs.transfer = cluster.procedures().add("transfer", [&catalog](TxnContext& ctx) {
    const ObjectId from = catalog.object(ctx.conflict_class(),
                                         static_cast<std::uint64_t>(ctx.args().ints[0]));
    const ObjectId to = catalog.object(ctx.conflict_class(),
                                       static_cast<std::uint64_t>(ctx.args().ints[1]));
    const std::int64_t balance = ctx.read_int(from);
    if (balance >= ctx.args().ints[2]) {
      ctx.write(from, balance - ctx.args().ints[2]);
      ctx.write(to, ctx.read_int(to) + ctx.args().ints[2]);
    }
  });
  return procs;
}

void open_accounts(Cluster& cluster) {
  for (ClassId b = 0; b < kBranches; ++b) {
    for (std::uint64_t a = 0; a < kAccountsPerBranch; ++a) {
      cluster.load_everywhere(cluster.catalog().object(b, a), Value{kOpeningBalance});
    }
  }
}

void run_bank(const char* label, const NetConfig& net) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = kBranches;
  config.objects_per_class = kAccountsPerBranch;
  config.seed = 2026;
  config.net = net;
  Cluster cluster(config);
  const Procs procs = declare_procedures(cluster);
  open_accounts(cluster);

  // Client load: 2000 transfers submitted round-robin at the four sites over
  // one simulated second. Transfers conserve total money, so the audit query
  // has an exact invariant to check at every snapshot. (The deposit and
  // withdraw procedures above round out the API; a production bank would mix
  // them in and audit against the running deposit/withdrawal ledger instead.)
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const SimTime at = rng.uniform_int(0, kSecond);
    cluster.sim().schedule_at(at, [&cluster, &procs, &rng, i] {
      const SiteId site = static_cast<SiteId>(static_cast<std::size_t>(i) % cluster.site_count());
      const ClassId branch = static_cast<ClassId>(
          rng.uniform_int(0, static_cast<std::int64_t>(kBranches) - 1));
      const std::int64_t a1 =
          rng.uniform_int(0, static_cast<std::int64_t>(kAccountsPerBranch) - 1);
      const std::int64_t a2 =
          rng.uniform_int(0, static_cast<std::int64_t>(kAccountsPerBranch) - 1);
      const std::int64_t amount = rng.uniform_int(1, 50);
      const SimTime cost = 500 * kMicrosecond + rng.uniform_int(0, 2 * kMillisecond);
      TxnArgs args;
      args.ints = {a1, a2, amount};
      cluster.replica(site).submit_update(procs.transfer, branch, args, cost);
    });
  }

  // Periodic audit at site 1: a snapshot query across ALL branches. Under
  // 1-copy-serializability the audited total is conserved *exactly* even
  // while thousands of transfers are in flight.
  int audits = 0, clean_audits = 0;
  for (int k = 1; k <= 10; ++k) {
    cluster.sim().schedule_at(k * 100 * kMillisecond, [&cluster, &audits, &clean_audits] {
      cluster.replica(1).submit_query(
          [&cluster, &audits, &clean_audits](QueryContext& ctx) {
            std::int64_t total = 0;
            for (ClassId b = 0; b < kBranches; ++b) {
              for (std::uint64_t a = 0; a < kAccountsPerBranch; ++a) {
                total += ctx.read_int(cluster.catalog().object(b, a));
              }
            }
            ++audits;
            if (total == kTotalMoney) ++clean_audits;
          },
          2 * kMillisecond, nullptr);
    });
  }

  cluster.run_for(1100 * kMillisecond);
  cluster.quiesce();

  std::uint64_t committed = 0, aborts = 0, reexec = 0;
  OnlineStats latency;
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    const ReplicaMetrics& m = cluster.replica(s).metrics();
    committed += m.committed;
    aborts += m.aborts;
    reexec += m.reexecutions;
    latency.merge(m.commit_latency_ns);
  }
  // Deterministic procedures => every site holds the same balances; audit the
  // final state directly too.
  std::int64_t final_total = 0;
  for (ClassId b = 0; b < kBranches; ++b) {
    for (std::uint64_t a = 0; a < kAccountsPerBranch; ++a) {
      final_total += as_int(*cluster.store(0).read_latest(cluster.catalog().object(b, a)));
    }
  }

  std::printf("%s\n", label);
  std::printf("  commits (all sites)      : %llu\n", static_cast<unsigned long long>(committed));
  std::printf("  optimistic aborts/redos  : %llu / %llu\n",
              static_cast<unsigned long long>(aborts), static_cast<unsigned long long>(reexec));
  std::printf("  mean commit latency      : %.2f ms\n", latency.mean() / 1e6);
  std::printf("  audits conserved money   : %d / %d\n", clean_audits, audits);
  std::printf("  final total (site 0)     : %lld (expected %lld)\n\n",
              static_cast<long long>(final_total), static_cast<long long>(kTotalMoney));
}

}  // namespace

int main() {
  std::printf("otpdb banking example: %zu branches x %llu accounts, 2000 transfers, 4 sites\n\n",
              kBranches, static_cast<unsigned long long>(kAccountsPerBranch));
  NetConfig calm;  // calibrated Figure-1 LAN: spontaneous order mostly holds
  run_bank("[calm LAN]", calm);

  NetConfig stormy;
  stormy.hiccup_prob = 0.30;
  stormy.hiccup_mean = 3 * kMillisecond;
  run_bank("[stormy LAN - frequent tentative/definitive mismatches]", stormy);

  std::printf("Note: the stormy run aborts and re-executes wrongly-guessed transactions\n"
              "(correctness-check module, paper Fig. 6) yet money is conserved in every\n"
              "audit - mismatches cost work, never correctness.\n");
  return 0;
}
