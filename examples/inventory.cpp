// inventory - warehouse stock management, eager (OTP) vs. lazy replication.
//
// Each warehouse is a conflict class holding stock counters for its items.
// Pick orders decrement stock through a guarded stored procedure that never
// sells below zero *given serializable execution*. The same order stream runs
// on two engines over the identical simulated LAN:
//
//   * OTP (the paper's engine): every site processes the orders in the
//     definitive total order - stock arithmetic is exact at all sites.
//   * Lazy replication (the commercial-style comparison of paper Section 1):
//     each site commits locally and ships write-sets afterwards. Concurrent
//     picks of the same item at different sites both pass their local guard,
//     and last-writer-wins reconciliation silently loses one of the
//     decrements - phantom stock, detectable oversell.
//
//   $ ./examples/inventory
#include <cstdio>
#include <memory>

#include "baseline/lazy_replica.h"
#include "core/cluster.h"
#include "util/rng.h"

using namespace otpdb;

namespace {

constexpr std::size_t kWarehouses = 4;
constexpr std::uint64_t kItemsPerWarehouse = 8;
constexpr std::int64_t kInitialStock = 500;
constexpr int kOrders = 1200;

struct RunResult {
  std::uint64_t committed = 0;
  std::uint64_t lost_update_conflicts = 0;
  std::int64_t stock_drift = 0;  // |actual total - expected total| at site 0
  double mean_latency_ms = 0;
  bool oversold = false;
};

RunResult run(const ReplicaFactory& factory) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = kWarehouses;
  config.objects_per_class = kItemsPerWarehouse + 1;  // + per-warehouse sold counter
  config.seed = 31337;
  auto cluster = factory ? std::make_unique<Cluster>(config, factory)
                         : std::make_unique<Cluster>(config);
  const PartitionCatalog& catalog = cluster->catalog();
  const ObjectId sold_slot = kItemsPerWarehouse;  // last object of each class

  // args.ints = [item#, quantity]: guarded pick - decrements stock and bumps
  // the warehouse sold-counter only if enough stock is (locally) visible.
  const ProcId pick = cluster->procedures().add("pick", [&catalog](TxnContext& ctx) {
    const ObjectId item = catalog.object(ctx.conflict_class(),
                                         static_cast<std::uint64_t>(ctx.args().ints[0]));
    const ObjectId sold = catalog.object(ctx.conflict_class(), kItemsPerWarehouse);
    const std::int64_t quantity = ctx.args().ints[1];
    const std::int64_t stock = ctx.read_int(item);
    if (stock >= quantity) {
      ctx.write(item, stock - quantity);
      ctx.write(sold, ctx.read_int(sold) + quantity);
    }
  });

  for (ClassId w = 0; w < kWarehouses; ++w) {
    for (std::uint64_t i = 0; i < kItemsPerWarehouse; ++i) {
      cluster->load_everywhere(catalog.object(w, i), Value{kInitialStock});
    }
    cluster->load_everywhere(catalog.object(w, sold_slot), Value{std::int64_t{0}});
  }

  Rng rng(5);
  for (int i = 0; i < kOrders; ++i) {
    const SimTime at = rng.uniform_int(0, kSecond);
    const SiteId site = static_cast<SiteId>(i % 4);
    const ClassId warehouse = static_cast<ClassId>(
        rng.uniform_int(0, static_cast<std::int64_t>(kWarehouses) - 1));
    TxnArgs args;
    args.ints = {rng.uniform_int(0, static_cast<std::int64_t>(kItemsPerWarehouse) - 1),
                 rng.uniform_int(1, 5)};
    const SimTime cost = kMillisecond + rng.uniform_int(0, kMillisecond);
    cluster->sim().schedule_at(at, [cluster = cluster.get(), pick, site, warehouse, args,
                                    cost] {
      cluster->replica(site).submit_update(pick, warehouse, args, cost);
    });
  }

  cluster->run_for(1200 * kMillisecond);
  cluster->quiesce();
  cluster->run_for(2 * kSecond);  // drain lazy propagation

  RunResult result;
  OnlineStats latency;
  for (SiteId s = 0; s < 4; ++s) {
    const ReplicaMetrics& m = cluster->replica(s).metrics();
    result.committed += m.committed;
    latency.merge(m.commit_latency_ns);
    if (auto* lazy = dynamic_cast<LazyReplica*>(&cluster->replica(s))) {
      result.lost_update_conflicts += lazy->conflicts_detected();
    }
  }
  result.mean_latency_ms = latency.mean() / 1e6;

  // Conservation audit at site 0: for every warehouse,
  //   remaining stock + sold counter == initial stock   (exactly, if 1SR).
  std::int64_t expected = 0, actual = 0;
  for (ClassId w = 0; w < kWarehouses; ++w) {
    for (std::uint64_t i = 0; i < kItemsPerWarehouse; ++i) {
      const std::int64_t stock = as_int(*cluster->store(0).read_latest(catalog.object(w, i)));
      if (stock < 0) result.oversold = true;
      actual += stock;
      expected += kInitialStock;
    }
    actual += as_int(*cluster->store(0).read_latest(catalog.object(w, sold_slot)));
  }
  result.stock_drift = actual - expected;
  return result;
}

void report(const char* label, const RunResult& r) {
  std::printf("%s\n", label);
  std::printf("  local commits            : %llu\n",
              static_cast<unsigned long long>(r.committed));
  std::printf("  mean commit latency      : %.2f ms\n", r.mean_latency_ms);
  std::printf("  lost-update conflicts    : %llu\n",
              static_cast<unsigned long long>(r.lost_update_conflicts));
  std::printf("  stock conservation drift : %lld units %s\n",
              static_cast<long long>(r.stock_drift),
              r.stock_drift == 0 ? "(exact)" : "(UNITS VANISHED OR APPEARED!)");
  std::printf("  oversell detected        : %s\n\n", r.oversold ? "YES" : "no");
}

}  // namespace

int main() {
  std::printf("otpdb inventory example: %zu warehouses, %d pick orders, 4 sites\n\n",
              kWarehouses, kOrders);
  report("[OTP - optimistic transaction processing over atomic broadcast]", run(nullptr));
  report("[lazy replication - local commit, propagate afterwards]", run([](const ReplicaDeps& d) {
           return std::make_unique<LazyReplica>(d.sim, d.net, d.storage, d.catalog, d.registry,
                                                d.site);
         }));
  std::printf("OTP pays its latency with total-order coordination overlapped behind\n"
              "execution; lazy replication is slightly faster locally but loses updates\n"
              "under contention - the drift line shows stock that was picked twice or\n"
              "counted twice. That is the consistency/performance tradeoff the paper's\n"
              "introduction describes.\n");
  return 0;
}
