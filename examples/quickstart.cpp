// quickstart - the smallest complete otpdb program.
//
// Builds a 3-site replicated database in a deterministic simulation, declares
// one stored procedure, submits update transactions from different sites,
// runs a snapshot query, and prints what the OTP engine did.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/cluster.h"

using namespace otpdb;

int main() {
  // 1. Configure a cluster: 3 sites, 4 conflict classes, LAN-like network,
  //    optimistic atomic broadcast (the paper's protocol), OTP engine.
  ClusterConfig config;
  config.n_sites = 3;
  config.n_classes = 4;
  config.objects_per_class = 8;
  config.seed = 7;  // every run with this seed is identical
  Cluster cluster(config);

  // 2. Declare stored procedures (paper Section 2.2: all data access goes
  //    through pre-declared procedures; one transaction = one procedure).
  //    This one adds args.ints[1] to object args.ints[0] of its class.
  const ProcId add = cluster.procedures().add("add", [&](TxnContext& ctx) {
    const ObjectId obj = cluster.catalog().object(ctx.conflict_class(),
                                                  static_cast<std::uint64_t>(ctx.args().ints[0]));
    ctx.write(obj, ctx.read_int(obj) + ctx.args().ints[1]);
  });

  // 3. Submit update transactions at different sites. Each is TO-broadcast to
  //    all replicas, Opt-delivered and *optimistically executed* in arrival
  //    order, and committed once the definitive order confirms the guess.
  for (int i = 0; i < 12; ++i) {
    const SiteId origin = static_cast<SiteId>(i % 3);
    const ClassId klass = static_cast<ClassId>(i % 4);
    TxnArgs args;
    args.ints = {0, 10};  // object #0 of the class += 10
    cluster.replica(origin).submit_update(add, klass, args, 2 * kMillisecond);
  }

  // 4. Submit a read-only query at site 2. Queries run locally on a
  //    multi-version snapshot (paper Section 5) - they never enter class
  //    queues and never block updates.
  std::int64_t grand_total = -1;
  cluster.sim().schedule_at(40 * kMillisecond, [&] {
    cluster.replica(2).submit_query(
        [&](QueryContext& ctx) {
          std::int64_t sum = 0;
          for (ClassId c = 0; c < 4; ++c) sum += ctx.read_int(cluster.catalog().object(c, 0));
          grand_total = sum;
        },
        kMillisecond, nullptr);
  });

  // 5. Run the simulation until everything committed everywhere.
  cluster.run_for(100 * kMillisecond);
  cluster.quiesce();

  // 6. Inspect: every site committed every transaction, in the same order.
  std::printf("quickstart: 12 updates across 3 sites\n");
  for (SiteId s = 0; s < 3; ++s) {
    const ReplicaMetrics& m = cluster.replica(s).metrics();
    std::printf(
        "  site %u: committed=%llu aborts=%llu mean commit latency=%.2f ms\n", s,
        static_cast<unsigned long long>(m.committed),
        static_cast<unsigned long long>(m.aborts), m.commit_latency_ns.mean() / 1e6);
  }
  std::printf("  query saw grand total = %lld (12 updates x 10 = 120 when it ran late)\n",
              static_cast<long long>(grand_total));
  const auto v = cluster.store(0).read_latest(cluster.catalog().object(0, 0));
  std::printf("  object(class 0, #0) final value at site 0 = %s\n",
              v ? to_display_string(*v).c_str() : "<none>");
  return 0;
}
