// Overload-robustness plane tests: admission-control hysteresis, the ingress
// gate's refusal order, sender backpressure, deadline budgets at their three
// enforcement points (presubmit, opt-delivery skip, queue-head drop by the
// per-class virtual service clock), the clients' deterministic retry loop,
// and the bit-for-bit parity of every overload counter across sharded thread
// counts.
//
// The deadline design under test: queue-head drops are decided by a virtual
// service clock that is a pure function of the definitive order and request
// fields - so every site drops the same transactions, stores converge, and
// 1-copy-serializability holds with drops in the history.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baseline/conservative_replica.h"
#include "checker/history.h"
#include "core/admission.h"
#include "core/cluster.h"
#include "workload/workload.h"

namespace otpdb {
namespace {

// -- admission controller unit ------------------------------------------------

TEST(Admission, DisabledControllerAdmitsEverything) {
  AdmissionController controller;  // default config: enabled = false
  EXPECT_TRUE(controller.admit(/*depth=*/1u << 20, /*lag=*/1u << 20));
  EXPECT_FALSE(controller.shedding());
  EXPECT_EQ(controller.stats().shed_engagements, 0u);
}

TEST(Admission, HysteresisNoFlappingAtTheBoundary) {
  AdmissionConfig config;
  config.enabled = true;
  config.shed_depth = 10;
  config.resume_depth = 5;
  config.shed_lag = 100;
  config.resume_lag = 50;
  AdmissionController controller;
  controller.configure(config);

  EXPECT_TRUE(controller.admit(9, 0));    // below the high-water mark
  EXPECT_FALSE(controller.admit(10, 0));  // engages
  EXPECT_TRUE(controller.shedding());
  // Oscillating around the shed mark while above the resume mark must NOT
  // produce engage/release churn: still shedding, one engagement total.
  EXPECT_FALSE(controller.admit(9, 0));
  EXPECT_FALSE(controller.admit(10, 0));
  EXPECT_FALSE(controller.admit(6, 0));
  EXPECT_EQ(controller.stats().shed_engagements, 1u);
  EXPECT_EQ(controller.stats().shed_releases, 0u);
  // Releases only once BOTH signals recede to their resume marks.
  EXPECT_TRUE(controller.admit(5, 0));
  EXPECT_FALSE(controller.shedding());
  EXPECT_EQ(controller.stats().shed_releases, 1u);
  // A fresh overshoot is a second engagement (counted transitions, not calls).
  EXPECT_FALSE(controller.admit(11, 0));
  EXPECT_EQ(controller.stats().shed_engagements, 2u);
}

TEST(Admission, LagSignalAloneEngages) {
  AdmissionConfig config;
  config.enabled = true;
  config.shed_depth = 1000;
  config.resume_depth = 500;
  config.shed_lag = 8;
  config.resume_lag = 4;
  AdmissionController controller;
  controller.configure(config);
  EXPECT_TRUE(controller.admit(0, 7));
  EXPECT_FALSE(controller.admit(0, 8));  // lag high-water mark
  EXPECT_FALSE(controller.admit(0, 5));  // still above resume_lag
  EXPECT_TRUE(controller.admit(0, 4));
}

// -- engine-level gates -------------------------------------------------------

struct DirectFixture {
  explicit DirectFixture(ClusterConfig config, bool conservative = false)
      : cluster(conservative
                    ? Cluster(config,
                              [](const ReplicaDeps& d) {
                                return std::make_unique<ConservativeReplica>(
                                    d.sim, d.abcast, d.storage, d.catalog, d.registry, d.site);
                              })
                    : Cluster(config)) {
    proc = register_rmw_procedure(cluster.procedures(), cluster.catalog());
  }
  TxnArgs args() const {
    TxnArgs a;
    a.ints = {1, 0};  // delta 1 applied to offset 0
    return a;
  }
  Cluster cluster;
  ProcId proc;
};

TEST(OverloadGate, PresubmitDeadlineExpired) {
  ClusterConfig config;
  config.n_sites = 3;
  config.n_classes = 2;
  DirectFixture f(config);
  f.cluster.run_for(10 * kMillisecond);  // now = 10ms, deadline below is past
  const SubmitResult r =
      f.cluster.replica(0).submit_update(f.proc, 0, f.args(), kMillisecond, 5 * kMillisecond);
  EXPECT_EQ(r, SubmitResult::expired);
  EXPECT_EQ(f.cluster.replica(0).metrics().deadline_expired_presubmit, 1u);
  EXPECT_EQ(f.cluster.replica(0).metrics().admitted_updates, 0u);
  f.cluster.quiesce();
  EXPECT_EQ(f.cluster.total_committed(), 0u);
}

TEST(OverloadGate, AdmissionShedsUnderFloodAndReleasesAfterDrain) {
  // Depth is the replica's live-transaction backlog, which builds as
  // opt-deliveries outpace 5ms-serial execution - so the flood must run on
  // the simulated clock, one submission per millisecond.
  ClusterConfig config;
  config.n_sites = 3;
  config.n_classes = 2;
  config.admission.enabled = true;
  config.admission.shed_depth = 8;
  config.admission.resume_depth = 2;
  DirectFixture f(config);
  std::size_t admitted = 0, shed = 0;
  for (int i = 0; i < 60; ++i) {
    f.cluster.sim().schedule_at(static_cast<SimTime>(i) * kMillisecond, [&] {
      const SubmitResult r =
          f.cluster.replica(0).submit_update(f.proc, 0, f.args(), 5 * kMillisecond, 0);
      admitted += r == SubmitResult::admitted;
      shed += r == SubmitResult::shed;
    });
  }
  f.cluster.run_for(60 * kMillisecond);
  EXPECT_GT(shed, 0u) << "backlog never reached the high-water mark";
  EXPECT_GE(admitted, config.admission.shed_depth);
  const ReplicaMetrics& m = f.cluster.replica(0).metrics();
  EXPECT_EQ(m.admitted_updates, admitted);
  EXPECT_EQ(m.shed_updates, shed);
  EXPECT_GE(f.cluster.replica(0).admission().stats().shed_engagements, 1u);
  ASSERT_TRUE(f.cluster.quiesce(60 * kSecond));
  // Queue drained past the low-water mark: the gate reopens.
  EXPECT_EQ(f.cluster.replica(0).submit_update(f.proc, 0, f.args(), kMillisecond, 0),
            SubmitResult::admitted);
  EXPECT_GE(f.cluster.replica(0).admission().stats().shed_releases, 1u);
}

TEST(OverloadGate, BackpressureCapsInflightBroadcasts) {
  ClusterConfig config;
  config.n_sites = 3;
  config.n_classes = 2;
  config.opt.max_inflight_per_sender = 4;
  DirectFixture f(config);
  std::size_t admitted = 0, backpressured = 0;
  for (int i = 0; i < 10; ++i) {
    const SubmitResult r =
        f.cluster.replica(0).submit_update(f.proc, 0, f.args(), kMillisecond, 0);
    admitted += r == SubmitResult::admitted;
    backpressured += r == SubmitResult::backpressure;
  }
  EXPECT_EQ(admitted, 4u);
  EXPECT_EQ(backpressured, 6u);
  EXPECT_EQ(f.cluster.replica(0).metrics().backpressured_updates, 6u);
  f.cluster.run_for(kSecond);  // in_flight() is 0 until opt-delivery: run first
  ASSERT_TRUE(f.cluster.quiesce());
  // Delivery drained the in-flight window: the sender may broadcast again.
  EXPECT_EQ(f.cluster.replica(0).submit_update(f.proc, 0, f.args(), kMillisecond, 0),
            SubmitResult::admitted);
}

// -- deadline enforcement past admission --------------------------------------

TEST(Deadline, OptDeliverSkipDoesNotDropTheTransaction) {
  // Deadline (20us) is far below the network's delivery floor, so every site
  // skips the optimistic execution at opt-delivery - but the virtual service
  // clock at TO-delivery says the transaction still fits its budget
  // (vfinish = submit + 1us of service), so it commits everywhere. The skip
  // is a site-local heuristic; the drop decision is the replicated clock's.
  ClusterConfig config;
  config.n_sites = 3;
  config.n_classes = 2;
  DirectFixture f(config);
  const SubmitResult r =
      f.cluster.replica(0).submit_update(f.proc, 0, f.args(), kMicrosecond, 20 * kMicrosecond);
  ASSERT_EQ(r, SubmitResult::admitted);
  f.cluster.run_for(kSecond);  // in_flight() is 0 until opt-delivery: run first
  ASSERT_TRUE(f.cluster.quiesce());
  EXPECT_EQ(f.cluster.total_committed(), f.cluster.site_count());
  std::uint64_t skips = 0, queue_drops = 0, aborts = 0;
  for (SiteId s = 0; s < f.cluster.site_count(); ++s) {
    skips += f.cluster.replica(s).metrics().deadline_skips_opt;
    queue_drops += f.cluster.replica(s).metrics().deadline_expired_queue;
    aborts += f.cluster.replica(s).metrics().aborts;
  }
  EXPECT_GT(skips, 0u);
  EXPECT_EQ(queue_drops, 0u);
  EXPECT_EQ(aborts, 0u);
}

/// Floods one conflict class so the virtual service clock pushes later
/// transactions past their budget; every site must drop exactly the same
/// suffix, keep serving the survivors, and converge.
void flood_one_class_and_check(bool conservative) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 2;
  DirectFixture f(config, conservative);
  HistoryRecorder recorder(f.cluster);
  constexpr int kTxns = 10;
  constexpr SimTime kExec = 10 * kMillisecond;
  constexpr SimTime kDeadline = 50 * kMillisecond;  // fits 5 of the 10
  for (int i = 0; i < kTxns; ++i) {
    ASSERT_EQ(f.cluster.replica(0).submit_update(f.proc, 0, f.args(), kExec, kDeadline),
              SubmitResult::admitted);
  }
  f.cluster.run_for(kSecond);  // in_flight() is 0 until opt-delivery: run first
  ASSERT_TRUE(f.cluster.quiesce());

  const std::uint64_t drops0 = f.cluster.replica(0).metrics().deadline_expired_queue;
  EXPECT_EQ(drops0, 5u);
  for (SiteId s = 0; s < f.cluster.site_count(); ++s) {
    EXPECT_EQ(f.cluster.replica(s).metrics().deadline_expired_queue, drops0)
        << "queue-head drops diverge at site " << s;
    EXPECT_EQ(f.cluster.replica(s).metrics().committed, kTxns - drops0);
  }
  // A drop is a no-op in the history: the committed prefix is still 1CSR and
  // all stores agree (object 0 advanced once per committed transaction).
  EXPECT_TRUE(check_one_copy_serializability(recorder.site_logs()).ok());
  std::vector<const VersionedStore*> stores;
  for (SiteId s = 0; s < f.cluster.site_count(); ++s) stores.push_back(&f.cluster.store(s));
  EXPECT_TRUE(compare_final_states(stores, f.cluster.catalog()).ok());
  const auto value = f.cluster.store(0).read_latest(f.cluster.catalog().object(0, 0));
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(as_int(*value), static_cast<std::int64_t>(kTxns - drops0));
}

TEST(Deadline, QueueHeadDropsAreIdenticalAtEverySiteOtp) {
  flood_one_class_and_check(/*conservative=*/false);
}

TEST(Deadline, QueueHeadDropsAreIdenticalAtEverySiteConservative) {
  flood_one_class_and_check(/*conservative=*/true);
}

// -- client retry loop --------------------------------------------------------

struct OverloadRunResult {
  std::vector<std::uint64_t> counters;
  std::uint64_t committed = 0;
  bool operator==(const OverloadRunResult&) const = default;
};

OverloadRunResult run_overloaded_workload(unsigned threads, bool force_sharded) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 4;
  config.seed = 99;
  config.admission.enabled = true;
  config.admission.shed_depth = 48;
  config.admission.resume_depth = 16;
  config.opt.max_inflight_per_sender = 128;
  config.parallel.threads = threads;
  config.parallel.force_sharded = force_sharded;

  Cluster cluster(config);
  WorkloadConfig wl;
  // ~2x the service capacity of 4 classes at 4ms mean service time.
  wl.updates_per_second_per_site = 500;
  wl.mean_exec_time = 4 * kMillisecond;
  wl.duration = 600 * kMillisecond;
  wl.deadline_budget = 120 * kMillisecond;
  wl.max_retries = 4;
  WorkloadDriver driver(cluster, wl, 4242);
  driver.start();
  cluster.run_for(wl.duration);
  EXPECT_TRUE(cluster.quiesce(120 * kSecond));

  OverloadRunResult out;
  out.committed = cluster.total_committed();
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    const ReplicaMetrics& m = cluster.replica(s).metrics();
    for (std::uint64_t v : {m.admitted_updates, m.shed_updates, m.backpressured_updates,
                            m.deadline_expired_presubmit, m.deadline_skips_opt,
                            m.deadline_expired_queue, m.committed, m.aborts}) {
      out.counters.push_back(v);
    }
    const AdmissionStats& a = cluster.replica(s).admission().stats();
    out.counters.push_back(a.shed_engagements);
    out.counters.push_back(a.shed_releases);
  }
  out.counters.push_back(driver.updates_submitted());
  out.counters.push_back(driver.retries());
  out.counters.push_back(driver.gave_up());
  out.counters.push_back(driver.expired_presubmit());
  return out;
}

TEST(OverloadRetry, BackoffIsDeterministicAcrossIdenticalRuns) {
  const OverloadRunResult a = run_overloaded_workload(1, /*force_sharded=*/false);
  const OverloadRunResult b = run_overloaded_workload(1, /*force_sharded=*/false);
  EXPECT_GT(a.committed, 0u);
  // The overload actually engaged: retries happened, some work was refused.
  EXPECT_GT(a.counters.back() + a.counters[a.counters.size() - 3], 0u)
      << "workload never tripped the admission gate - thresholds too loose";
  EXPECT_EQ(a, b) << "seeded backoff/jitter must make retry schedules replayable";
}

TEST(OverloadRetry, CountersBitIdenticalAcrossShardedThreadCounts) {
  const OverloadRunResult base = run_overloaded_workload(1, /*force_sharded=*/true);
  EXPECT_GT(base.committed, 0u);
  for (unsigned threads : {2u, 4u, 8u}) {
    EXPECT_EQ(base, run_overloaded_workload(threads, true))
        << "overload counters diverge at threads=" << threads;
  }
}

}  // namespace
}  // namespace otpdb
