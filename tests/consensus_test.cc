// Unit and fault-injection tests for the consensus layer: agreement,
// validity, integrity, fast-path behaviour, coordinator crash, straggler
// catch-up.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "abcast/consensus.h"
#include "abcast/failure_detector.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace otpdb {
namespace {

class ConsensusFixture {
 public:
  ConsensusFixture(std::size_t n, NetConfig net_config, std::uint64_t seed,
                   ConsensusConfig config = {})
      : net_(sim_, n, net_config, Rng(seed)), decisions_(n) {
    for (SiteId s = 0; s < n; ++s) {
      fds_.push_back(std::make_unique<FailureDetector>(sim_, net_, s, FailureDetectorConfig{}));
    }
    for (SiteId s = 0; s < n; ++s) {
      hosts_.push_back(std::make_unique<ConsensusHost>(sim_, net_, *fds_[s], s, config));
      auto& mine = decisions_[s];
      hosts_[s]->set_on_decide(
          [&mine](std::uint64_t inst, const ConsensusHost::Value& v) { mine[inst] = v; });
    }
    for (auto& fd : fds_) fd->start();
  }

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }
  ConsensusHost& host(SiteId s) { return *hosts_[s]; }
  const std::map<std::uint64_t, ConsensusHost::Value>& decisions(SiteId s) const {
    return decisions_[s];
  }

  /// All sites that decided `inst` must agree; returns the decided value.
  std::optional<ConsensusHost::Value> agreed_value(std::uint64_t inst,
                                                   std::size_t min_deciders) const {
    std::optional<ConsensusHost::Value> value;
    std::size_t deciders = 0;
    for (const auto& site_map : decisions_) {
      auto it = site_map.find(inst);
      if (it == site_map.end()) continue;
      ++deciders;
      if (!value) {
        value = it->second;
      } else {
        EXPECT_EQ(*value, it->second) << "agreement violated for instance " << inst;
      }
    }
    EXPECT_GE(deciders, min_deciders);
    return value;
  }

 private:
  Simulator sim_;
  Network net_;
  std::vector<std::unique_ptr<FailureDetector>> fds_;
  std::vector<std::unique_ptr<ConsensusHost>> hosts_;
  std::vector<std::map<std::uint64_t, ConsensusHost::Value>> decisions_;
};

NetConfig calm() {
  NetConfig cfg;
  cfg.hiccup_prob = 0.0;
  return cfg;
}

ConsensusHost::Value seq(std::initializer_list<std::uint64_t> seqs) {
  ConsensusHost::Value v;
  for (auto s : seqs) v.push_back(MsgId{0, s});
  return v;
}

TEST(Consensus, IdenticalProposalsDecideFast) {
  ConsensusFixture f(4, calm(), 1);
  for (SiteId s = 0; s < 4; ++s) f.host(s).propose(0, seq({1, 2, 3}));
  f.sim().run_until(1 * kSecond);
  const auto v = f.agreed_value(0, 4);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, seq({1, 2, 3}));
  for (SiteId s = 0; s < 4; ++s) {
    EXPECT_EQ(f.host(s).stats().fast_decides, 1u) << "site " << s;
    EXPECT_EQ(f.host(s).stats().round_decides, 0u);
  }
}

TEST(Consensus, ConflictingProposalsStillAgree) {
  ConsensusFixture f(4, calm(), 2);
  f.host(0).propose(0, seq({1, 2}));
  f.host(1).propose(0, seq({2, 1}));
  f.host(2).propose(0, seq({1, 2}));
  f.host(3).propose(0, seq({2, 1}));
  f.sim().run_until(5 * kSecond);
  const auto v = f.agreed_value(0, 4);
  ASSERT_TRUE(v.has_value());
  // Validity: the decision is one of the proposed values.
  EXPECT_TRUE(*v == seq({1, 2}) || *v == seq({2, 1}));
}

TEST(Consensus, ValidityWithSingleProposer) {
  // Only a majority proposes; the decision must equal their common value.
  ConsensusFixture f(4, calm(), 3);
  f.host(0).propose(0, seq({9}));
  f.host(1).propose(0, seq({9}));
  f.host(2).propose(0, seq({9}));
  f.sim().run_until(5 * kSecond);
  const auto v = f.agreed_value(0, 3);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, seq({9}));
}

TEST(Consensus, ManyInstancesIndependently) {
  ConsensusFixture f(3, calm(), 4);
  for (std::uint64_t inst = 0; inst < 20; ++inst) {
    for (SiteId s = 0; s < 3; ++s) f.host(s).propose(inst, seq({inst}));
  }
  f.sim().run_until(5 * kSecond);
  for (std::uint64_t inst = 0; inst < 20; ++inst) {
    const auto v = f.agreed_value(inst, 3);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, seq({inst}));
  }
}

TEST(Consensus, CoordinatorCrashBeforeProposing) {
  // Coordinator of instance 0 round 0 is site 0; crash it before anyone
  // proposes. The remaining majority must still decide via later rounds.
  ConsensusConfig cfg;
  cfg.round_timeout = 10 * kMillisecond;
  ConsensusFixture f(4, calm(), 5, cfg);
  f.net().crash(0);
  f.host(1).propose(0, seq({4}));
  f.host(2).propose(0, seq({4}));
  f.host(3).propose(0, seq({4}));
  f.sim().run_until(10 * kSecond);
  const auto v = f.agreed_value(0, 3);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, seq({4}));
}

TEST(Consensus, CoordinatorCrashMidRoundStillSafe) {
  ConsensusConfig cfg;
  cfg.round_timeout = 10 * kMillisecond;
  cfg.fast_wait = 1 * kMillisecond;
  ConsensusFixture f(5, calm(), 6, cfg);
  // Conflicting proposals force the coordinated path.
  f.host(0).propose(0, seq({1}));
  f.host(1).propose(0, seq({2}));
  f.host(2).propose(0, seq({1}));
  f.host(3).propose(0, seq({2}));
  f.host(4).propose(0, seq({1}));
  // Crash the round-0 coordinator (site 0) shortly after it may have proposed.
  f.sim().schedule_at(3 * kMillisecond, [&f] { f.net().crash(0); });
  f.sim().run_until(30 * kSecond);
  const auto v = f.agreed_value(0, 4);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(*v == seq({1}) || *v == seq({2}));
}

TEST(Consensus, MinorityCrashNeverBlocks) {
  ConsensusConfig cfg;
  cfg.round_timeout = 10 * kMillisecond;
  ConsensusFixture f(5, calm(), 7, cfg);
  f.net().crash(3);
  f.net().crash(4);
  for (SiteId s = 0; s < 3; ++s) f.host(s).propose(0, seq({8}));
  f.sim().run_until(10 * kSecond);
  const auto v = f.agreed_value(0, 3);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, seq({8}));
}

TEST(Consensus, NonProposerLearnsDecisionFromBroadcast) {
  ConsensusConfig cfg;
  cfg.fast_wait = 1 * kMillisecond;
  ConsensusFixture f(4, calm(), 8, cfg);
  for (SiteId s = 0; s < 3; ++s) f.host(s).propose(0, seq({5}));
  f.sim().run_until(2 * kSecond);
  // Site 3 never proposed, yet the Decision broadcast reaches it too.
  const auto v = f.agreed_value(0, 4);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, seq({5}));
}

TEST(Consensus, StragglerCatchesUpAfterRecovery) {
  ConsensusConfig cfg;
  cfg.fast_wait = 1 * kMillisecond;
  ConsensusFixture f(4, calm(), 8, cfg);
  // Site 3 is down while the others decide; every protocol message (including
  // the Decision) is lost to it.
  f.net().crash(3);
  for (SiteId s = 0; s < 3; ++s) f.host(s).propose(0, seq({5}));
  f.sim().run_until(2 * kSecond);
  EXPECT_TRUE(f.agreed_value(0, 3).has_value());
  EXPECT_FALSE(f.decisions(3).contains(0));
  // After recovery the straggler proposes; decided peers reply with the
  // decision directly.
  f.net().recover(3);
  f.host(3).propose(0, seq({99}));
  f.sim().run_until(4 * kSecond);
  const auto v = f.agreed_value(0, 4);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, seq({5}));
}

TEST(Consensus, DuplicateProposeIsRejected) {
  ConsensusFixture f(3, calm(), 9);
  f.host(0).propose(0, seq({1}));
  EXPECT_DEATH(f.host(0).propose(0, seq({2})), "duplicate propose");
}

TEST(Consensus, StressRandomizedAgreement) {
  // Many instances, random proposals, random minority crash - agreement and
  // validity must hold on every decided instance.
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    Rng rng(seed);
    ConsensusConfig cfg;
    cfg.round_timeout = 15 * kMillisecond;
    NetConfig nc;
    nc.hiccup_prob = 0.2;
    nc.hiccup_mean = 2 * kMillisecond;
    ConsensusFixture f(5, nc, seed, cfg);
    const SiteId victim = static_cast<SiteId>(rng.uniform_int(0, 4));
    f.sim().schedule_at(rng.uniform_int(1, 50) * kMillisecond,
                        [&f, victim] { f.net().crash(victim); });
    for (std::uint64_t inst = 0; inst < 10; ++inst) {
      for (SiteId s = 0; s < 5; ++s) {
        const auto variant = static_cast<std::uint64_t>(rng.uniform_int(0, 1));
        f.sim().schedule_at(static_cast<SimTime>(inst) * 5 * kMillisecond,
                            [&f, s, inst, variant] {
                              if (!f.net().crashed(s)) {
                                f.host(s).propose(inst, seq({inst * 2 + variant}));
                              }
                            });
      }
    }
    f.sim().run_until(60 * kSecond);
    for (std::uint64_t inst = 0; inst < 10; ++inst) {
      const auto v = f.agreed_value(inst, 1);  // agreement among all deciders
      ASSERT_TRUE(v.has_value()) << "instance " << inst << " never decided (seed " << seed
                                 << ")";
      EXPECT_TRUE(*v == seq({inst * 2}) || *v == seq({inst * 2 + 1})) << "validity";
    }
  }
}

}  // namespace
}  // namespace otpdb
