// Unit tests for the workload generator and the history checkers.
#include <gtest/gtest.h>

#include "checker/history.h"
#include "core/cluster.h"
#include "util/log.h"
#include "workload/workload.h"

namespace otpdb {
namespace {

// --- Workload driver ---------------------------------------------------------

TEST(Workload, SubmissionRateMatchesConfig) {
  ClusterConfig config;
  config.n_sites = 4;
  config.seed = 1;
  Cluster cluster(config);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 200;
  wl.duration = 2 * kSecond;
  WorkloadDriver driver(cluster, wl, 9);
  driver.start();
  cluster.run_for(wl.duration);
  // Poisson arrivals: expect 4 * 200 * 2 = 1600 +- a few sigma (sqrt(1600)=40).
  EXPECT_NEAR(static_cast<double>(driver.updates_submitted()), 1600.0, 200.0);
}

TEST(Workload, DeterministicPerSeed) {
  auto submissions = [](std::uint64_t seed) {
    ClusterConfig config;
    config.n_sites = 2;
    config.seed = 5;
    Cluster cluster(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 100;
    wl.duration = kSecond;
    WorkloadDriver driver(cluster, wl, seed);
    driver.start();
    cluster.run_for(wl.duration);
    return driver.updates_submitted();
  };
  EXPECT_EQ(submissions(7), submissions(7));
  EXPECT_NE(submissions(7), submissions(8));
}

TEST(Workload, FixedIntervalArrivals) {
  ClusterConfig config;
  config.n_sites = 1;
  config.seed = 2;
  Cluster cluster(config);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 100;
  wl.poisson_arrivals = false;
  wl.duration = kSecond;
  WorkloadDriver driver(cluster, wl, 3);
  driver.start();
  cluster.run_for(wl.duration);
  EXPECT_EQ(driver.updates_submitted(), 100u);  // exactly 1/interval
}

TEST(Workload, QueryFractionProducesQueries) {
  ClusterConfig config;
  config.n_sites = 2;
  config.seed = 3;
  Cluster cluster(config);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 200;
  wl.query_fraction = 0.5;
  wl.duration = kSecond;
  WorkloadDriver driver(cluster, wl, 4);
  driver.start();
  cluster.run_for(wl.duration);
  const double total =
      static_cast<double>(driver.updates_submitted() + driver.queries_submitted());
  EXPECT_GT(total, 100);
  EXPECT_NEAR(static_cast<double>(driver.queries_submitted()) / total, 0.5, 0.1);
}

TEST(Workload, ZipfSkewConcentratesClasses) {
  auto hot_class_share = [](double theta) {
    ClusterConfig config;
    config.n_sites = 2;
    config.n_classes = 8;
    config.seed = 4;
    Cluster cluster(config);
    HistoryRecorder recorder(cluster);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 300;
    wl.class_skew_theta = theta;
    wl.mean_exec_time = 100 * kMicrosecond;
    wl.duration = kSecond;
    WorkloadDriver driver(cluster, wl, 6);
    driver.start();
    cluster.run_for(wl.duration);
    cluster.quiesce(60 * kSecond);
    std::map<ClassId, int> counts;
    for (const auto& r : recorder.site_logs()[0]) ++counts[r.klass];
    int max_count = 0, total = 0;
    for (const auto& [klass, c] : counts) {
      max_count = std::max(max_count, c);
      total += c;
    }
    return static_cast<double>(max_count) / static_cast<double>(total);
  };
  EXPECT_GT(hot_class_share(1.5), hot_class_share(0.0) + 0.15);
}

// --- Checker -----------------------------------------------------------------

CommitRecord make_commit(SiteId site, MsgId txn, ClassId klass, TOIndex index,
                         std::vector<std::pair<ObjectId, Value>> writes = {}) {
  CommitRecord r;
  r.site = site;
  r.txn = txn;
  r.klass = klass;
  r.index = index;
  r.writes = std::move(writes);
  return r;
}

TEST(Checker, AcceptsConsistentHistories) {
  std::vector<std::vector<CommitRecord>> logs(2);
  for (SiteId s = 0; s < 2; ++s) {
    logs[s].push_back(make_commit(s, {0, 1}, 0, 1));
    logs[s].push_back(make_commit(s, {1, 1}, 0, 3));
    logs[s].push_back(make_commit(s, {0, 2}, 1, 2));
  }
  EXPECT_TRUE(check_one_copy_serializability(logs).ok());
}

TEST(Checker, AcceptsLaggingPrefix) {
  std::vector<std::vector<CommitRecord>> logs(2);
  logs[0].push_back(make_commit(0, {0, 1}, 0, 1));
  logs[0].push_back(make_commit(0, {1, 1}, 0, 2));
  logs[1].push_back(make_commit(1, {0, 1}, 0, 1));  // site 1 lags: prefix only
  EXPECT_TRUE(check_one_copy_serializability(logs).ok());
}

TEST(Checker, DetectsOrderInversionWithinClass) {
  std::vector<std::vector<CommitRecord>> logs(1);
  logs[0].push_back(make_commit(0, {0, 1}, 0, 5));
  logs[0].push_back(make_commit(0, {1, 1}, 0, 3));  // lower index after higher
  const auto result = check_one_copy_serializability(logs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("definitive order"), std::string::npos);
}

TEST(Checker, DetectsCrossSiteDisagreement) {
  std::vector<std::vector<CommitRecord>> logs(2);
  logs[0].push_back(make_commit(0, {0, 1}, 0, 1));
  logs[0].push_back(make_commit(0, {1, 1}, 0, 2));
  logs[1].push_back(make_commit(1, {1, 1}, 0, 1));  // swapped order at site 1
  logs[1].push_back(make_commit(1, {0, 1}, 0, 2));
  EXPECT_FALSE(check_one_copy_serializability(logs).ok());
}

TEST(Checker, DetectsIndexDisagreement) {
  std::vector<std::vector<CommitRecord>> logs(2);
  logs[0].push_back(make_commit(0, {0, 1}, 0, 1));
  logs[1].push_back(make_commit(1, {0, 1}, 0, 2));  // same txn, different index
  EXPECT_FALSE(check_one_copy_serializability(logs).ok());
}

TEST(Checker, DetectsDivergentWrites) {
  std::vector<std::vector<CommitRecord>> logs(2);
  logs[0].push_back(make_commit(0, {0, 1}, 0, 1, {{7, Value{std::int64_t{1}}}}));
  logs[1].push_back(make_commit(1, {0, 1}, 0, 1, {{7, Value{std::int64_t{2}}}}));
  const auto result = check_one_copy_serializability(logs);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.summary().find("divergent write"), std::string::npos);
}

TEST(Checker, DetectsDoubleCommit) {
  std::vector<std::vector<CommitRecord>> logs(1);
  logs[0].push_back(make_commit(0, {0, 1}, 0, 1));
  logs[0].push_back(make_commit(0, {0, 1}, 0, 2));
  EXPECT_FALSE(check_one_copy_serializability(logs).ok());
}

TEST(Checker, ObjectLevelAllowsClassReordering) {
  // Two txns of the same class but disjoint objects commit in different
  // orders at the two sites: fine at object granularity.
  std::vector<std::vector<CommitRecord>> logs(2);
  logs[0].push_back(make_commit(0, {0, 1}, 0, 1, {{1, Value{std::int64_t{1}}}}));
  logs[0].push_back(make_commit(0, {1, 1}, 0, 2, {{2, Value{std::int64_t{1}}}}));
  logs[1].push_back(make_commit(1, {1, 1}, 0, 2, {{2, Value{std::int64_t{1}}}}));
  logs[1].push_back(make_commit(1, {0, 1}, 0, 1, {{1, Value{std::int64_t{1}}}}));
  EXPECT_FALSE(check_one_copy_serializability(logs).ok()) << "class checker flags it";
  EXPECT_TRUE(check_object_level_serializability(logs).ok()) << "object checker accepts it";
}

TEST(Checker, ObjectLevelDetectsWriterInversion) {
  std::vector<std::vector<CommitRecord>> logs(2);
  logs[0].push_back(make_commit(0, {0, 1}, 0, 1, {{5, Value{std::int64_t{1}}}}));
  logs[0].push_back(make_commit(0, {1, 1}, 0, 2, {{5, Value{std::int64_t{2}}}}));
  logs[1].push_back(make_commit(1, {1, 1}, 0, 2, {{5, Value{std::int64_t{2}}}}));
  logs[1].push_back(make_commit(1, {0, 1}, 0, 1, {{5, Value{std::int64_t{1}}}}));
  EXPECT_FALSE(check_object_level_serializability(logs).ok())
      << "shared-object writers must follow the definitive order everywhere";
}

TEST(Checker, FinalStateComparison) {
  PartitionCatalog catalog(1, 2);
  VersionedStore a, b;
  a.load(0, Value{std::int64_t{1}});
  b.load(0, Value{std::int64_t{1}});
  EXPECT_TRUE(compare_final_states({&a, &b}, catalog).ok());
  const TxnId txn = 0;
  b.write(txn, 1, Value{std::int64_t{9}});
  b.commit(txn, 1);
  const auto result = compare_final_states({&a, &b}, catalog);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.violations.size(), 1u);
}

// --- Logging -----------------------------------------------------------------

TEST(Log, SinkAndLevelFiltering) {
  std::vector<std::string> captured;
  Log::set_sink([&](LogLevel, const std::string& msg) { captured.push_back(msg); });
  Log::set_level(LogLevel::info);
  OTPDB_DEBUG("t") << "hidden";
  OTPDB_INFO("t") << "shown " << 42;
  OTPDB_ERROR("t") << "also shown";
  Log::set_sink(nullptr);
  Log::set_level(LogLevel::warn);
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0], "[t] shown 42");
  EXPECT_EQ(captured[1], "[t] also shown");
}

}  // namespace
}  // namespace otpdb
