// Unit tests for the class queue and its CC10 reordering primitive.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/class_queue.h"

namespace otpdb {
namespace {

std::unique_ptr<TxnRecord> make_txn(std::uint64_t seq, DeliveryState deliv) {
  auto t = std::make_unique<TxnRecord>();
  t->id = MsgId{0, seq};
  t->deliv = deliv;
  return t;
}

TEST(ClassQueue, AppendAndHead) {
  ClassQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.head(), nullptr);
  auto t1 = make_txn(1, DeliveryState::pending);
  q.append(t1.get());
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.head(), t1.get());
  EXPECT_TRUE(q.contains(t1.get()));
}

TEST(ClassQueue, RemoveHead) {
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::pending);
  auto t2 = make_txn(2, DeliveryState::pending);
  q.append(t1.get());
  q.append(t2.get());
  q.remove_head(t1.get());
  EXPECT_EQ(q.head(), t2.get());
  EXPECT_FALSE(q.contains(t1.get()));
}

TEST(ClassQueue, RemoveNonHeadDies) {
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::pending);
  auto t2 = make_txn(2, DeliveryState::pending);
  q.append(t1.get());
  q.append(t2.get());
  EXPECT_DEATH(q.remove_head(t2.get()), "");
}

TEST(ClassQueue, ReorderToFrontWhenAllPending) {
  // Paper CC10 with an all-pending queue: the newly committable transaction
  // moves to the head.
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::pending);
  auto t2 = make_txn(2, DeliveryState::pending);
  auto t3 = make_txn(3, DeliveryState::pending);
  q.append(t1.get());
  q.append(t2.get());
  q.append(t3.get());
  t3->deliv = DeliveryState::committable;
  EXPECT_TRUE(q.reorder_before_first_pending(t3.get()));
  EXPECT_EQ(q.head(), t3.get());
  EXPECT_EQ(q.at(1), t1.get());
  EXPECT_EQ(q.at(2), t2.get());
  q.check_invariants();
}

TEST(ClassQueue, ReorderAfterCommittablePrefix) {
  // Paper example 1: CQ = T1[a,c], T2[a,p], T3[a,p]; T3 TO-delivered next
  // slots in between T1 and T2.
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::committable);
  auto t2 = make_txn(2, DeliveryState::pending);
  auto t3 = make_txn(3, DeliveryState::pending);
  q.append(t1.get());
  q.append(t2.get());
  q.append(t3.get());
  t3->deliv = DeliveryState::committable;
  EXPECT_TRUE(q.reorder_before_first_pending(t3.get()));
  EXPECT_EQ(q.at(0), t1.get());
  EXPECT_EQ(q.at(1), t3.get());
  EXPECT_EQ(q.at(2), t2.get());
  q.check_invariants();
}

TEST(ClassQueue, ReorderNoopWhenAlreadyPlaced) {
  // A transaction TO-delivered in tentative order does not move.
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::committable);
  auto t2 = make_txn(2, DeliveryState::pending);
  q.append(t1.get());
  q.append(t2.get());
  t2->deliv = DeliveryState::committable;
  EXPECT_FALSE(q.reorder_before_first_pending(t2.get()));
  EXPECT_EQ(q.at(0), t1.get());
  EXPECT_EQ(q.at(1), t2.get());
}

TEST(ClassQueue, ReorderHeadIsNoop) {
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::pending);
  auto t2 = make_txn(2, DeliveryState::pending);
  q.append(t1.get());
  q.append(t2.get());
  t1->deliv = DeliveryState::committable;
  EXPECT_FALSE(q.reorder_before_first_pending(t1.get()));
  EXPECT_EQ(q.head(), t1.get());
}

TEST(ClassQueue, ReorderMissingTxnDies) {
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::committable);
  EXPECT_DEATH(q.reorder_before_first_pending(t1.get()), "missing");
}

TEST(ClassQueue, InvariantViolationCommittableSuffixDies) {
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::pending);
  auto t2 = make_txn(2, DeliveryState::committable);
  q.append(t1.get());
  q.append(t2.get());
  EXPECT_DEATH(q.check_invariants(), "prefix");
}

TEST(ClassQueue, InvariantViolationNonHeadRunningDies) {
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::committable);
  auto t2 = make_txn(2, DeliveryState::pending);
  t2->running = true;
  q.append(t1.get());
  q.append(t2.get());
  EXPECT_DEATH(q.check_invariants(), "head");
}

TEST(ClassQueue, IterationOrder) {
  ClassQueue q;
  std::vector<std::unique_ptr<TxnRecord>> txns;
  for (std::uint64_t i = 0; i < 5; ++i) {
    txns.push_back(make_txn(i, DeliveryState::pending));
    q.append(txns.back().get());
  }
  std::uint64_t expect = 0;
  for (const TxnRecord* t : q) EXPECT_EQ(t->id.seq, expect++);
}

}  // namespace
}  // namespace otpdb
