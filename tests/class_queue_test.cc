// Unit tests for the class queue and its CC10 reordering primitive.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/class_queue.h"

namespace otpdb {
namespace {

std::unique_ptr<TxnRecord> make_txn(std::uint64_t seq, DeliveryState deliv) {
  auto t = std::make_unique<TxnRecord>();
  t->id = MsgId{0, seq};
  t->deliv = deliv;
  return t;
}

TEST(ClassQueue, AppendAndHead) {
  ClassQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.head(), nullptr);
  auto t1 = make_txn(1, DeliveryState::pending);
  q.append(t1.get());
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.head(), t1.get());
  EXPECT_TRUE(q.contains(t1.get()));
}

TEST(ClassQueue, RemoveHead) {
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::pending);
  auto t2 = make_txn(2, DeliveryState::pending);
  q.append(t1.get());
  q.append(t2.get());
  q.remove_head(t1.get());
  EXPECT_EQ(q.head(), t2.get());
  EXPECT_FALSE(q.contains(t1.get()));
}

TEST(ClassQueue, RemoveNonHeadDies) {
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::pending);
  auto t2 = make_txn(2, DeliveryState::pending);
  q.append(t1.get());
  q.append(t2.get());
  EXPECT_DEATH(q.remove_head(t2.get()), "");
}

TEST(ClassQueue, ReorderToFrontWhenAllPending) {
  // Paper CC10 with an all-pending queue: the newly committable transaction
  // moves to the head.
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::pending);
  auto t2 = make_txn(2, DeliveryState::pending);
  auto t3 = make_txn(3, DeliveryState::pending);
  q.append(t1.get());
  q.append(t2.get());
  q.append(t3.get());
  t3->deliv = DeliveryState::committable;
  EXPECT_TRUE(q.reorder_before_first_pending(t3.get()));
  EXPECT_EQ(q.head(), t3.get());
  EXPECT_EQ(q.at(1), t1.get());
  EXPECT_EQ(q.at(2), t2.get());
  q.check_invariants();
}

TEST(ClassQueue, ReorderAfterCommittablePrefix) {
  // Paper example 1: CQ = T1[a,c], T2[a,p], T3[a,p]; T3 TO-delivered next
  // slots in between T1 and T2.
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::committable);
  auto t2 = make_txn(2, DeliveryState::pending);
  auto t3 = make_txn(3, DeliveryState::pending);
  q.append(t1.get());
  q.append(t2.get());
  q.append(t3.get());
  t3->deliv = DeliveryState::committable;
  EXPECT_TRUE(q.reorder_before_first_pending(t3.get()));
  EXPECT_EQ(q.at(0), t1.get());
  EXPECT_EQ(q.at(1), t3.get());
  EXPECT_EQ(q.at(2), t2.get());
  q.check_invariants();
}

TEST(ClassQueue, ReorderNoopWhenAlreadyPlaced) {
  // A transaction TO-delivered in tentative order does not move.
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::committable);
  auto t2 = make_txn(2, DeliveryState::pending);
  q.append(t1.get());
  q.append(t2.get());
  t2->deliv = DeliveryState::committable;
  EXPECT_FALSE(q.reorder_before_first_pending(t2.get()));
  EXPECT_EQ(q.at(0), t1.get());
  EXPECT_EQ(q.at(1), t2.get());
}

TEST(ClassQueue, ReorderHeadIsNoop) {
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::pending);
  auto t2 = make_txn(2, DeliveryState::pending);
  q.append(t1.get());
  q.append(t2.get());
  t1->deliv = DeliveryState::committable;
  EXPECT_FALSE(q.reorder_before_first_pending(t1.get()));
  EXPECT_EQ(q.head(), t1.get());
}

TEST(ClassQueue, ReorderMissingTxnDies) {
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::committable);
  EXPECT_DEATH(q.reorder_before_first_pending(t1.get()), "missing");
}

TEST(ClassQueue, InvariantViolationCommittableSuffixDies) {
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::pending);
  auto t2 = make_txn(2, DeliveryState::committable);
  q.append(t1.get());
  q.append(t2.get());
  EXPECT_DEATH(q.check_invariants(), "prefix");
}

TEST(ClassQueue, InvariantViolationNonHeadRunningDies) {
  ClassQueue q;
  auto t1 = make_txn(1, DeliveryState::committable);
  auto t2 = make_txn(2, DeliveryState::pending);
  t2->running = true;
  q.append(t1.get());
  q.append(t2.get());
  EXPECT_DEATH(q.check_invariants(), "head");
}

TEST(ClassQueue, CachedPositionsSurviveChurn) {
  // The O(1) contains()/reorder lookups rely on the cached {class, ticket}
  // entries staying exact through appends, reorders (which shift the pending
  // prefix) and head removals (which advance the base). check_invariants()
  // cross-checks every cached position against the actual layout.
  ClassQueue q;
  std::vector<std::unique_ptr<TxnRecord>> txns;
  for (std::uint64_t i = 0; i < 6; ++i) {
    txns.push_back(make_txn(i, DeliveryState::pending));
    q.append(txns.back().get());
    q.check_invariants();
  }
  // TO-deliver out of tentative order: 3, 5, 0 - each reorder shifts the
  // displaced pending run and must rewrite its cached tickets.
  for (std::uint64_t t : {3u, 5u, 0u}) {
    txns[t]->deliv = DeliveryState::committable;
    q.reorder_before_first_pending(txns[t].get());
    q.check_invariants();
  }
  EXPECT_EQ(q.at(0), txns[3].get());
  EXPECT_EQ(q.at(1), txns[5].get());
  EXPECT_EQ(q.at(2), txns[0].get());
  for (const auto& t : txns) EXPECT_TRUE(q.contains(t.get()));
  // Drain the committable prefix; removal must clear the removed record's
  // cache entry and leave everyone else's exact.
  for (std::uint64_t t : {3u, 5u, 0u}) {
    q.remove_head(txns[t].get());
    q.check_invariants();
    EXPECT_FALSE(q.contains(txns[t].get()));
  }
  EXPECT_EQ(q.head(), txns[1].get());
  EXPECT_EQ(q.size(), 3u);
}

TEST(ClassQueue, SameRecordInTwoQueues) {
  // A multi-class record holds one cached position per covered queue; the
  // queues must not clobber each other's entries.
  ClassQueue qa(0), qb(1);
  auto t = make_txn(1, DeliveryState::pending);
  auto blocker = make_txn(2, DeliveryState::pending);
  qa.append(blocker.get());
  qa.append(t.get());
  qb.append(t.get());
  EXPECT_TRUE(qa.contains(t.get()));
  EXPECT_TRUE(qb.contains(t.get()));
  EXPECT_EQ(t->queue_pos.size(), 2u);
  t->deliv = DeliveryState::committable;
  EXPECT_TRUE(qa.reorder_before_first_pending(t.get()));   // moves past blocker
  EXPECT_FALSE(qb.reorder_before_first_pending(t.get()));  // already at the front
  qa.check_invariants();
  qb.check_invariants();
  qa.remove_head(t.get());
  EXPECT_FALSE(qa.contains(t.get()));
  EXPECT_TRUE(qb.contains(t.get()));
  qb.remove_head(t.get());
  EXPECT_TRUE(t->queue_pos.empty());
}

TEST(ClassQueue, IterationOrder) {
  ClassQueue q;
  std::vector<std::unique_ptr<TxnRecord>> txns;
  for (std::uint64_t i = 0; i < 5; ++i) {
    txns.push_back(make_txn(i, DeliveryState::pending));
    q.append(txns.back().get());
  }
  std::uint64_t expect = 0;
  for (const TxnRecord* t : q) EXPECT_EQ(t->id.seq, expect++);
}

}  // namespace
}  // namespace otpdb
