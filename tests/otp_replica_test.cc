// Unit tests for the OTP engine (paper Figures 4-6), driven through a manual
// broadcast endpoint so tests control Opt-/TO-delivery timing exactly.
// Includes the paper's Section 3.2 worked example (sites N and N') and the
// two correctness-check queue examples, transcribed literally.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "abcast/abcast.h"
#include "abcast/channels.h"
#include "core/otp_replica.h"
#include "db/partition.h"
#include "db/procedures.h"
#include "db/storage_backend.h"
#include "db/versioned_store.h"
#include "sim/simulator.h"

namespace otpdb {
namespace {

/// Broadcast endpoint whose deliveries are injected by the test.
class ManualAbcast final : public AtomicBroadcast {
 public:
  explicit ManualAbcast(SiteId self) : self_(self) {}

  MsgId broadcast(PayloadPtr payload) override {
    const MsgId id{self_, next_seq_++};
    sent_.emplace_back(id, std::move(payload));
    return id;
  }
  void set_callbacks(AbcastCallbacks callbacks) override { callbacks_ = std::move(callbacks); }
  SiteId site() const override { return self_; }
  const AbcastStats& stats() const override { return stats_; }

  void opt(const MsgId& id, PayloadPtr payload) {
    callbacks_.opt_deliver(Message{id, id.sender, kChannelData, std::move(payload)});
  }
  void to(const MsgId& id) { callbacks_.to_deliver(id, next_index_++); }

  const std::vector<std::pair<MsgId, PayloadPtr>>& sent() const { return sent_; }

 private:
  std::vector<std::pair<MsgId, PayloadPtr>> sent_;
  SiteId self_;
  std::uint64_t next_seq_ = 0;
  TOIndex next_index_ = 1;
  AbcastCallbacks callbacks_;
  AbcastStats stats_;
};

/// One site under test: simulator, store, registry, manual broadcast, replica.
struct Site {
  explicit Site(std::size_t n_classes, SiteId id = 0)
      : catalog(n_classes, 16), abcast(id) {
    // Procedure 0: increment object 0 of the class by args.ints[0], and append
    // the txn tag (args.ints[1]) to a per-class "log" object (object 1) so
    // commit order is observable in the data.
    proc = registry.add("tagged_increment", [this](TxnContext& ctx) {
      const ObjectId counter = catalog.object(ctx.conflict_class(), 0);
      const ObjectId order_log = catalog.object(ctx.conflict_class(), 1);
      ctx.write(counter, ctx.read_int(counter) + ctx.args().ints[0]);
      // Base-100 digit append, in unsigned space: long runs overflow 64 bits
      // and must wrap (defined) rather than trip UBSan; the tests that decode
      // the log only ever append a handful of tags.
      const auto shifted = static_cast<std::uint64_t>(ctx.read_int(order_log)) * 100 +
                           static_cast<std::uint64_t>(ctx.args().ints[1]);
      ctx.write(order_log, static_cast<std::int64_t>(shifted));
    });
    replica = std::make_unique<OtpReplica>(sim, abcast, storage, catalog, registry, id,
                                           OtpReplicaConfig{.paranoid_checks = true});
    replica->set_commit_hook([this](const CommitRecord& r) { commits.push_back(r); });
  }

  PayloadPtr make_request(ClassId klass, std::int64_t tag, SimTime exec) {
    auto request = std::make_shared<TxnRequest>();
    request->proc = proc;
    request->klass = klass;
    request->args.ints = {1, tag};
    request->origin = 0;
    request->submitted_at = sim.now();
    request->exec_duration = exec;
    return request;
  }

  Simulator sim;
  PartitionCatalog catalog;
  MemoryBackend storage{0};
  VersionedStore& store = storage.memory();
  ProcedureRegistry registry;
  ManualAbcast abcast;
  ProcId proc = 0;
  std::unique_ptr<OtpReplica> replica;
  std::vector<CommitRecord> commits;
};

MsgId id_of(std::uint64_t seq) { return MsgId{0, seq}; }

TEST(OtpReplica, SingleTransactionLifecycle) {
  Site site(1);
  auto req = site.make_request(0, 1, 5 * kMillisecond);
  site.abcast.opt(id_of(1), req);
  EXPECT_EQ(site.replica->class_queue(0).size(), 1u);
  EXPECT_EQ(site.replica->in_flight(), 1u);
  site.abcast.to(id_of(1));
  site.sim.run();
  EXPECT_EQ(site.commits.size(), 1u);
  EXPECT_EQ(site.replica->in_flight(), 0u);
  EXPECT_EQ(as_int(*site.store.read_latest(site.catalog.object(0, 0))), 1);
  EXPECT_EQ(site.replica->metrics().aborts, 0u);
}

TEST(OtpReplica, ExecutionBeforeToDeliveryCommitsAtToDelivery) {
  Site site(1);
  site.abcast.opt(id_of(1), site.make_request(0, 1, 1 * kMillisecond));
  site.sim.run();  // executes fully; stays [e,p], cannot commit yet
  EXPECT_EQ(site.commits.size(), 0u);
  EXPECT_EQ(site.replica->class_queue(0).head()->exec, ExecState::executed);
  EXPECT_EQ(site.replica->class_queue(0).head()->deliv, DeliveryState::pending);
  site.abcast.to(id_of(1));  // CC2-CC3: executed head commits immediately
  EXPECT_EQ(site.commits.size(), 1u);
}

TEST(OtpReplica, ToDeliveryDuringExecutionCommitsAtCompletion) {
  Site site(1);
  site.abcast.opt(id_of(1), site.make_request(0, 1, 10 * kMillisecond));
  site.sim.run_until(2 * kMillisecond);
  site.abcast.to(id_of(1));  // still running: marked committable (CC6)
  EXPECT_EQ(site.commits.size(), 0u);
  const TxnRecord* head = site.replica->class_queue(0).head();
  EXPECT_EQ(head->deliv, DeliveryState::committable);
  EXPECT_TRUE(head->running);
  site.sim.run();  // E1-E2: commit at completion
  EXPECT_EQ(site.commits.size(), 1u);
  EXPECT_EQ(site.replica->metrics().aborts, 0u);
}

TEST(OtpReplica, SameClassExecutesSerially) {
  Site site(1);
  site.abcast.opt(id_of(1), site.make_request(0, 1, 5 * kMillisecond));
  site.abcast.opt(id_of(2), site.make_request(0, 2, 5 * kMillisecond));
  // Only the head runs (S3: T2 must wait).
  EXPECT_TRUE(site.replica->class_queue(0).head()->running);
  EXPECT_FALSE(site.replica->class_queue(0).at(1)->running);
  site.abcast.to(id_of(1));
  site.abcast.to(id_of(2));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 2u);
  EXPECT_EQ(site.commits[0].txn, id_of(1));
  EXPECT_EQ(site.commits[1].txn, id_of(2));
  // Commit times are spaced by the serial execution.
  EXPECT_GE(site.commits[1].at - site.commits[0].at, 5 * kMillisecond);
}

TEST(OtpReplica, DifferentClassesExecuteConcurrently) {
  Site site(2);
  site.abcast.opt(id_of(1), site.make_request(0, 1, 5 * kMillisecond));
  site.abcast.opt(id_of(2), site.make_request(1, 2, 5 * kMillisecond));
  site.abcast.to(id_of(1));
  site.abcast.to(id_of(2));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 2u);
  // Both committed at the same simulated instant: full overlap across classes.
  EXPECT_EQ(site.commits[0].at, site.commits[1].at);
}

// ---------------------------------------------------------------------------
// Paper Section 3.3, correctness-check example 1:
//   CQ = T1[a,c], T2[a,p], T3[a,p]; T3 is TO-delivered next (before T2).
//   Expected result: CQ = T1[a,c], T3[a,c], T2[a,p]; no abort (T1 stays).
// ---------------------------------------------------------------------------
TEST(OtpReplica, PaperExampleOne_ReorderBehindCommittableHead) {
  Site site(1);
  site.abcast.opt(id_of(1), site.make_request(0, 1, 20 * kMillisecond));
  site.abcast.opt(id_of(2), site.make_request(0, 2, 20 * kMillisecond));
  site.abcast.opt(id_of(3), site.make_request(0, 3, 20 * kMillisecond));
  site.sim.run_until(1 * kMillisecond);
  site.abcast.to(id_of(1));  // T1 running -> [a,c]
  const auto& q = site.replica->class_queue(0);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.at(0)->deliv, DeliveryState::committable);
  EXPECT_EQ(q.at(0)->exec, ExecState::active);

  site.abcast.to(id_of(3));  // T3 TO-delivered before T2
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.at(0)->id, id_of(1));
  EXPECT_EQ(q.at(1)->id, id_of(3));  // rescheduled between T1 and T2 (CC10)
  EXPECT_EQ(q.at(2)->id, id_of(2));
  EXPECT_EQ(q.at(0)->deliv, DeliveryState::committable);
  EXPECT_EQ(q.at(1)->deliv, DeliveryState::committable);
  EXPECT_EQ(q.at(2)->deliv, DeliveryState::pending);
  EXPECT_EQ(site.replica->metrics().aborts, 0u) << "committable head must not be aborted";
  EXPECT_TRUE(q.at(0)->running) << "T1's execution keeps running";

  site.abcast.to(id_of(2));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 3u);
  EXPECT_EQ(site.commits[0].txn, id_of(1));
  EXPECT_EQ(site.commits[1].txn, id_of(3));
  EXPECT_EQ(site.commits[2].txn, id_of(2));
}

// ---------------------------------------------------------------------------
// Paper Section 3.3, correctness-check example 2:
//   CQ = T1[e,p], T2[a,p], T3[a,p]; T3 is TO-delivered first.
//   Expected: T1 aborted (CC8), T3 scheduled first and submitted;
//   CQ = T3[a,c], T1[a,p], T2[a,p].
// ---------------------------------------------------------------------------
TEST(OtpReplica, PaperExampleTwo_AbortExecutedPendingHead) {
  Site site(1);
  site.abcast.opt(id_of(1), site.make_request(0, 1, 1 * kMillisecond));
  site.abcast.opt(id_of(2), site.make_request(0, 2, 1 * kMillisecond));
  site.abcast.opt(id_of(3), site.make_request(0, 3, 1 * kMillisecond));
  site.sim.run();  // T1 executes fully -> [e,p]
  const auto& q = site.replica->class_queue(0);
  EXPECT_EQ(q.at(0)->exec, ExecState::executed);

  site.abcast.to(id_of(3));  // wrongly ordered: T1 must be undone
  EXPECT_EQ(site.replica->metrics().aborts, 1u);
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.at(0)->id, id_of(3));
  EXPECT_EQ(q.at(0)->deliv, DeliveryState::committable);
  EXPECT_EQ(q.at(0)->exec, ExecState::active);
  EXPECT_TRUE(q.at(0)->running) << "CC12: T3 submitted";
  EXPECT_EQ(q.at(1)->id, id_of(1));
  EXPECT_EQ(q.at(1)->exec, ExecState::active) << "T1's execution state reset by the undo";
  EXPECT_EQ(q.at(1)->deliv, DeliveryState::pending);
  EXPECT_EQ(q.at(2)->id, id_of(2));

  site.abcast.to(id_of(1));
  site.abcast.to(id_of(2));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 3u);
  EXPECT_EQ(site.commits[0].txn, id_of(3));
  EXPECT_EQ(site.commits[1].txn, id_of(1));
  EXPECT_EQ(site.commits[2].txn, id_of(2));
  // The data reflects commit order T3, T1, T2 (tags 3,1,2 -> log 030102).
  EXPECT_EQ(as_int(*site.store.read_latest(site.catalog.object(0, 1))), 3 * 10000 + 102);
  EXPECT_EQ(site.replica->metrics().reexecutions, 1u) << "T1 executed twice";
}

// ---------------------------------------------------------------------------
// Paper Section 3.2: the full two-site example.
//   Classes: Cx = {T1,T2}, Cy = {T3,T4}, Cz = {T5,T6}
//   Tentative at N : T1,T2,T3,T4,T5,T6   (matches definitive)
//   Tentative at N': T1,T3,T2,T4,T6,T5   (T2/T3 swapped - harmless;
//                                         T5/T6 swapped - conflicting!)
//   Definitive     : T1,T2,T3,T4,T5,T6
// Expected: N commits without aborts; N' aborts/redoes only T6; both sites
// commit every class in definitive order and end in identical states.
// ---------------------------------------------------------------------------
TEST(OtpReplica, PaperSection32_TwoSiteExample) {
  Site n(3, 0), np(3, 0);
  const ClassId cx = 0, cy = 1, cz = 2;
  // One shared request payload per transaction (as a broadcast would deliver).
  std::vector<PayloadPtr> req = {
      nullptr,
      n.make_request(cx, 1, 10 * kMillisecond), n.make_request(cx, 2, 10 * kMillisecond),
      n.make_request(cy, 3, 10 * kMillisecond), n.make_request(cy, 4, 10 * kMillisecond),
      n.make_request(cz, 5, 10 * kMillisecond), n.make_request(cz, 6, 10 * kMillisecond)};

  for (std::uint64_t t : {1u, 2u, 3u, 4u, 5u, 6u}) n.abcast.opt(id_of(t), req[t]);
  for (std::uint64_t t : {1u, 3u, 2u, 4u, 6u, 5u}) np.abcast.opt(id_of(t), req[t]);

  // Queue shapes right after Opt-delivery (paper's figure):
  auto ids = [](const ClassQueue& q) {
    std::vector<std::uint64_t> out;
    for (const TxnRecord* t : q) out.push_back(t->id.seq);
    return out;
  };
  EXPECT_EQ(ids(n.replica->class_queue(cx)), (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(ids(n.replica->class_queue(cy)), (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(ids(n.replica->class_queue(cz)), (std::vector<std::uint64_t>{5, 6}));
  EXPECT_EQ(ids(np.replica->class_queue(cz)), (std::vector<std::uint64_t>{6, 5}));

  // Definitive order arrives at both sites while heads are executing.
  n.sim.run_until(2 * kMillisecond);
  np.sim.run_until(2 * kMillisecond);
  for (std::uint64_t t : {1u, 2u, 3u, 4u, 5u, 6u}) {
    n.abcast.to(id_of(t));
    np.abcast.to(id_of(t));
  }
  n.sim.run();
  np.sim.run();

  // All six commit everywhere.
  ASSERT_EQ(n.commits.size(), 6u);
  ASSERT_EQ(np.commits.size(), 6u);
  // N processed in matching orders: no aborts at all.
  EXPECT_EQ(n.replica->metrics().aborts, 0u);
  // N': the T2/T3 swap is across classes - no conflict, no cost. Only the
  // conflicting T6/T5 swap forces one abort + one re-execution.
  EXPECT_EQ(np.replica->metrics().aborts, 1u);
  EXPECT_EQ(np.replica->metrics().reexecutions, 1u);

  // Per class, commit order equals the definitive order at both sites.
  auto class_order = [](const std::vector<CommitRecord>& commits, ClassId klass) {
    std::vector<std::uint64_t> out;
    for (const auto& r : commits)
      if (r.klass == klass) out.push_back(r.txn.seq);
    return out;
  };
  for (ClassId c : {cx, cy, cz}) {
    EXPECT_EQ(class_order(n.commits, c), class_order(np.commits, c)) << "class " << c;
  }
  EXPECT_EQ(class_order(n.commits, cz), (std::vector<std::uint64_t>{5, 6}));

  // Identical final database state (1-copy property).
  for (ClassId c : {cx, cy, cz}) {
    for (std::uint64_t k : {0u, 1u}) {
      const ObjectId obj = n.catalog.object(c, k);
      EXPECT_EQ(as_int(*n.store.read_latest(obj)), as_int(*np.store.read_latest(obj)))
          << "object " << obj;
    }
  }
}

TEST(OtpReplica, AbortedWorkIsInvisibleToTheStore) {
  Site site(1);
  site.abcast.opt(id_of(1), site.make_request(0, 1, 1 * kMillisecond));
  site.abcast.opt(id_of(2), site.make_request(0, 2, 1 * kMillisecond));
  site.sim.run();  // T1 executed [e,p]; its provisional write exists
  site.abcast.to(id_of(2));  // aborts T1, T2 to the head
  // Before T2's execution completes, the store must show no trace of T1.
  EXPECT_FALSE(site.store.read_latest(site.catalog.object(0, 0)).has_value());
  site.abcast.to(id_of(1));
  site.sim.run();
  EXPECT_EQ(site.commits.size(), 2u);
  // Both increments present: nothing lost, nothing doubled.
  EXPECT_EQ(as_int(*site.store.read_latest(site.catalog.object(0, 0))), 2);
}

TEST(OtpReplica, CommitLatencyRecordedAtOriginOnly) {
  Site site(1);
  // Submit through the replica (origin = this site).
  site.replica->submit_update(site.proc, 0, TxnArgs{{1, 7}, {}}, 2 * kMillisecond);
  ASSERT_EQ(site.abcast.sent().size(), 1u);
  const auto& [id, payload] = site.abcast.sent()[0];
  site.abcast.opt(id, payload);
  site.abcast.to(id);
  site.sim.run();
  EXPECT_EQ(site.replica->metrics().commit_latency_ns.count(), 1u);
  EXPECT_GE(site.replica->metrics().commit_latency_ns.mean(),
            static_cast<double>(2 * kMillisecond));
}

TEST(OtpReplica, ManyPendingReordersConvergeToDefinitiveOrder) {
  // Tentative order fully reversed against definitive: every TO-delivery
  // reorders; commits still follow the definitive order exactly.
  Site site(1);
  for (std::uint64_t t = 1; t <= 6; ++t) {
    site.abcast.opt(id_of(t), site.make_request(0, static_cast<std::int64_t>(t),
                                                 1 * kMillisecond));
  }
  for (std::uint64_t t = 6; t >= 1; --t) site.abcast.to(id_of(t));  // definitive: 6,5,...,1
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(site.commits[i].txn, id_of(6 - i)) << "position " << i;
    EXPECT_EQ(site.commits[i].index, i + 1);
  }
}

TEST(OtpReplica, StarvationFreedom_EveryToDeliveredTxnCommits) {
  // Theorem 4.1 at unit scale: reversed TO order with long executions; all
  // transactions, however often rescheduled, eventually commit.
  Site site(1);
  const int kTxns = 12;
  for (std::uint64_t t = 1; t <= kTxns; ++t) {
    site.abcast.opt(id_of(t), site.make_request(0, static_cast<std::int64_t>(t),
                                                 3 * kMillisecond));
  }
  for (std::uint64_t t = kTxns; t >= 1; --t) site.abcast.to(id_of(t));
  site.sim.run();
  EXPECT_EQ(site.commits.size(), static_cast<std::size_t>(kTxns));
  EXPECT_EQ(site.replica->in_flight(), 0u);
}

}  // namespace
}  // namespace otpdb
