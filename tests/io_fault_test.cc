// Storage fault injection (db/io_shim.h) and the DurableStore health ladder.
//
// The FaultyIoEnv unit tests pin the injector's contract (determinism, torn
// writes persisting a prefix, failed fsyncs skipping the real sync, the
// max_faults bound). The DurableStore tests drive the online failure policy
// end to end: degraded-with-retries back to ok, sealing a segment at its
// valid prefix after consecutive failures, the hard `failed` state freezing
// the watermarks while memory keeps serving, and a cold restart recovering
// exactly the synced prefix afterwards.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "db/durable_store.h"
#include "db/io_shim.h"
#include "sim/simulator.h"

namespace otpdb {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  TempDir() {
    static int counter = 0;
    dir = fs::temp_directory_path() /
          ("otpdb-iofault-" + std::to_string(::getpid()) + "-" + std::to_string(counter++));
    fs::create_directories(dir);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  fs::path dir;
};

// --- FaultyIoEnv -------------------------------------------------------------

TEST(FaultyIoEnv, WriteErrorReturnsEioWithoutPersisting) {
  TempDir tmp;
  StorageFaults faults;
  faults.enabled = true;
  faults.write_error_prob = 1.0;
  faults.max_faults = 1;
  FaultyIoEnv env(faults);

  const fs::path p = tmp.dir / "f";
  const int fd = env.open(p.c_str(), O_CREAT | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  const char buf[8] = "1234567";
  errno = 0;
  EXPECT_EQ(env.write(fd, buf, sizeof(buf)), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(env.stats().writes_failed, 1u);
  // max_faults reached: the injector disarms and the next write goes through.
  EXPECT_EQ(env.write(fd, buf, sizeof(buf)), static_cast<ssize_t>(sizeof(buf)));
  EXPECT_EQ(env.close(fd), 0);
  EXPECT_EQ(fs::file_size(p), sizeof(buf)) << "the failed write must not persist";
}

TEST(FaultyIoEnv, TornWritePersistsHalfThenErrors) {
  TempDir tmp;
  StorageFaults faults;
  faults.enabled = true;
  faults.torn_write_prob = 1.0;
  faults.max_faults = 1;
  FaultyIoEnv env(faults);

  const fs::path p = tmp.dir / "f";
  const int fd = env.open(p.c_str(), O_CREAT | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  const char buf[16] = "0123456789abcde";
  errno = 0;
  EXPECT_EQ(env.write(fd, buf, sizeof(buf)), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(env.close(fd), 0);
  EXPECT_EQ(env.stats().torn_writes, 1u);
  EXPECT_EQ(fs::file_size(p), sizeof(buf) / 2) << "a torn write persists a prefix";
}

TEST(FaultyIoEnv, FailedFsyncReportsEio) {
  TempDir tmp;
  StorageFaults faults;
  faults.enabled = true;
  faults.fsync_error_prob = 1.0;
  faults.max_faults = 2;
  FaultyIoEnv env(faults);

  const fs::path p = tmp.dir / "f";
  const int fd = env.open(p.c_str(), O_CREAT | O_WRONLY, 0644);
  ASSERT_GE(fd, 0);
  errno = 0;
  EXPECT_EQ(env.fsync(fd), -1);
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(env.fsync(fd), -1);
  EXPECT_EQ(env.fsync(fd), 0) << "disarmed after max_faults";
  EXPECT_EQ(env.stats().fsyncs_failed, 2u);
  EXPECT_EQ(env.close(fd), 0);
}

TEST(FaultyIoEnv, ScheduleIsDeterministicPerSeed) {
  StorageFaults faults;
  faults.enabled = true;
  faults.seed = 42;
  faults.write_error_prob = 0.3;
  auto run = [&faults] {
    FaultyIoEnv env(faults);
    std::vector<bool> outcome;
    const int fd = ::open("/dev/null", O_WRONLY);
    char b = 'x';
    for (int i = 0; i < 64; ++i) outcome.push_back(env.write(fd, &b, 1) == 1);
    ::close(fd);
    return outcome;
  };
  const auto a = run();
  EXPECT_EQ(a, run());
  faults.seed = 43;
  EXPECT_NE(a, run()) << "different seeds must draw different schedules";
}

// --- DurableStore under injected faults --------------------------------------

StorageConfig faulty_config(double write_p, double torn_p, double fsync_p,
                            std::uint64_t max_faults) {
  StorageConfig config;
  config.backend = StorageBackendKind::durable;
  config.faults.enabled = true;
  config.faults.seed = 7;
  config.faults.write_error_prob = write_p;
  config.faults.torn_write_prob = torn_p;
  config.faults.fsync_error_prob = fsync_p;
  config.faults.max_faults = max_faults;
  return config;
}

void commit_n(Simulator& sim, DurableStore& store, int n, SimTime spacing, int first = 1) {
  for (int k = 0; k < n; ++k) {
    const int i = first + k;
    sim.schedule_at((k + 1) * spacing, [&store, i] {
      const TxnId txn = 0;
      store.memory().write(txn, static_cast<ObjectId>(i % 16), Value{std::int64_t{i * 3}});
      const ClassId klass = 0;
      store.commit(txn, static_cast<TOIndex>(i), std::span<const ClassId>(&klass, 1));
    });
  }
}

TEST(DurableStoreFaults, RetriesThroughTransientErrorsAndRecovers) {
  TempDir tmp;
  Simulator sim;
  // A burst of early faults, then a healthy device: the store must end ok
  // with every commit durable.
  DurableStore store(sim, faulty_config(0.5, 0.2, 0.5, 6), tmp.dir / "site-0", 1, 16);
  commit_n(sim, store, 40, 5 * kMillisecond);
  sim.run_until(sim.now() + 10 * kSecond);

  const WalStats* stats = store.wal_stats();
  ASSERT_NE(stats, nullptr);
  ASSERT_NE(store.io_fault_stats(), nullptr);
  EXPECT_GT(store.io_fault_stats()->injected(), 0u) << "the injector never fired";
  EXPECT_GT(stats->io_errors, 0u);
  EXPECT_GT(stats->io_retries, 0u);
  EXPECT_EQ(store.health(), StorageHealth::ok) << "transient faults must heal";
  EXPECT_EQ(store.durable_watermark(0), 40u) << "every commit durable after retries";

  // The disk image is clean: a cold restart rebuilds the full state.
  store.crash();
  const RecoveredState recovered = store.restart_from_disk();
  EXPECT_EQ(recovered.durable_floor, 40u);
}

TEST(DurableStoreFaults, SealsSegmentAfterConsecutiveFailures) {
  TempDir tmp;
  Simulator sim;
  // A dense error schedule eventually fails the same open segment twice in a
  // row: the first failure truncates + retries, the second seals the segment
  // at its valid prefix and rolls a fresh file (bad-block model). After
  // max_faults the healthy device catches up.
  DurableStore store(sim, faulty_config(0.6, 0.0, 0.0, 24), tmp.dir / "site-0", 1, 16);
  commit_n(sim, store, 40, 5 * kMillisecond);
  sim.run_until(sim.now() + 30 * kSecond);

  const WalStats* stats = store.wal_stats();
  EXPECT_GE(stats->segments_sealed_on_error, 1u);
  EXPECT_EQ(store.health(), StorageHealth::ok);
  EXPECT_EQ(store.durable_watermark(0), 40u);

  store.crash();
  const RecoveredState recovered = store.restart_from_disk();
  EXPECT_EQ(recovered.durable_floor, 40u) << "sealed + rolled segments all replay";
}

TEST(DurableStoreFaults, ExhaustedRetriesFailHardButMemoryKeepsServing) {
  TempDir tmp;
  Simulator sim;
  StorageConfig config = faulty_config(1.0, 0.0, 1.0, UINT64_MAX);  // device never heals
  config.io_max_retries = 3;
  DurableStore store(sim, config, tmp.dir / "site-0", 1, 16);
  commit_n(sim, store, 30, 5 * kMillisecond);
  sim.run_until(sim.now() + 30 * kSecond);

  EXPECT_EQ(store.health(), StorageHealth::failed);
  const TOIndex frozen = store.durable_watermark(0);
  // Memory still serves every committed write even though logging stopped.
  for (ObjectId obj = 1; obj < 16; ++obj) {
    EXPECT_TRUE(store.memory().read_latest(obj).has_value()) << "object " << obj;
  }
  // No further durable progress: watermarks are frozen, commits keep landing
  // in memory only.
  const TxnId txn = 0;
  store.memory().write(txn, 3, Value{std::int64_t{999}});
  const ClassId klass = 0;
  store.commit(txn, 31, std::span<const ClassId>(&klass, 1));
  sim.run_until(sim.now() + 5 * kSecond);
  EXPECT_EQ(store.durable_watermark(0), frozen);
  EXPECT_EQ(store.health(), StorageHealth::failed);
}

TEST(DurableStoreFaults, ColdRestartAfterHardFailureRecoversSyncedPrefix) {
  TempDir tmp;
  const fs::path dir = tmp.dir / "site-0";
  {
    // Phase 1: a healthy store makes 10 commits durable.
    Simulator sim;
    StorageConfig config;
    config.backend = StorageBackendKind::durable;
    DurableStore healthy(sim, config, dir, 1, 16);
    commit_n(sim, healthy, 10, 5 * kMillisecond);
    sim.run_until(sim.now() + kSecond);
    ASSERT_EQ(healthy.durable_watermark(0), 10u);
  }
  {
    // Phase 2: the device dies for good - the store reopens the directory,
    // goes `failed`, and makes no durable progress.
    Simulator sim;
    StorageConfig config = faulty_config(1.0, 0.0, 1.0, UINT64_MAX);
    config.io_max_retries = 2;
    DurableStore broken(sim, config, dir, 1, 16);
    broken.reopen();
    commit_n(sim, broken, 5, 5 * kMillisecond, /*first=*/11);
    sim.run_until(sim.now() + 10 * kSecond);
    EXPECT_EQ(broken.health(), StorageHealth::failed);
  }
  // Reopen the same directory ("operator replaced the disk": faults cleared);
  // restart_from_disk must recover the synced prefix and reset health.
  Simulator sim;
  StorageConfig config;
  config.backend = StorageBackendKind::durable;
  DurableStore store(sim, config, dir, 1, 16);
  const RecoveredState recovered = store.restart_from_disk();
  EXPECT_EQ(recovered.durable_floor, 10u);
  EXPECT_EQ(store.health(), StorageHealth::ok);
  // And the restarted store logs normally again, past the recovered tail.
  commit_n(sim, store, 12, 5 * kMillisecond, /*first=*/11);
  sim.run_until(sim.now() + kSecond);
  EXPECT_EQ(store.durable_watermark(0), 22u);
}

TEST(DurableStoreFaults, CheckpointsSkippedWhileFlushFailurePending) {
  TempDir tmp;
  Simulator sim;
  StorageConfig config = faulty_config(0.6, 0.0, 0.6, 40);
  config.checkpoint_interval = 50 * kMillisecond;  // aggressive cadence
  // The dense fault burst would exhaust the default retry cap and push the
  // store to `failed` (that ladder leg is ExhaustedRetriesFailHard's job);
  // here we want it to stay degraded and recover.
  config.io_max_retries = 1000;
  DurableStore store(sim, config, tmp.dir / "site-0", 1, 16);
  commit_n(sim, store, 60, 5 * kMillisecond);
  sim.run_until(sim.now() + 20 * kSecond);

  const WalStats* stats = store.wal_stats();
  EXPECT_GT(stats->checkpoints_skipped + stats->checkpoints_failed, 0u)
      << "the aggressive cadence must collide with the fault burst";
  EXPECT_GT(stats->checkpoints, 0u) << "checkpoints resume once healthy";
  EXPECT_EQ(store.health(), StorageHealth::ok);
  EXPECT_EQ(store.durable_watermark(0), 60u);
}

}  // namespace
}  // namespace otpdb
