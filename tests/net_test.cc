// Unit tests for the simulated network and the spontaneous-order metrics.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "net/spontaneous_order.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace otpdb {
namespace {

struct TestPayload final : Payload {
  int tag = 0;
  explicit TestPayload(int t) : tag(t) {}
};

NetConfig quiet_net() {
  NetConfig cfg;
  cfg.hiccup_prob = 0.0;  // deterministic-ish deliveries for unit tests
  cfg.noise_max = 1;      // 1ns noise to keep ordering stable
  return cfg;
}

TEST(Network, MulticastReachesAllSitesIncludingSender) {
  Simulator sim;
  Network net(sim, 4, quiet_net(), Rng(1));
  std::vector<int> received(4, 0);
  for (SiteId s = 0; s < 4; ++s) {
    net.subscribe(s, 0, [&received, s](const Message&) { ++received[s]; });
  }
  net.multicast(1, 0, std::make_shared<TestPayload>(7));
  sim.run();
  for (SiteId s = 0; s < 4; ++s) EXPECT_EQ(received[s], 1) << "site " << s;
}

TEST(Network, UnicastReachesOnlyTarget) {
  Simulator sim;
  Network net(sim, 3, quiet_net(), Rng(1));
  std::vector<int> received(3, 0);
  for (SiteId s = 0; s < 3; ++s) {
    net.subscribe(s, 0, [&received, s](const Message&) { ++received[s]; });
  }
  net.unicast(0, 2, 0, std::make_shared<TestPayload>(1));
  sim.run();
  EXPECT_EQ(received[0], 0);
  EXPECT_EQ(received[1], 0);
  EXPECT_EQ(received[2], 1);
}

TEST(Network, MessageIdsAscendPerSender) {
  Simulator sim;
  Network net(sim, 2, quiet_net(), Rng(1));
  net.subscribe(0, 0, [](const Message&) {});
  net.subscribe(1, 0, [](const Message&) {});
  const MsgId a = net.multicast(0, 0, std::make_shared<TestPayload>(1));
  const MsgId b = net.multicast(0, 0, std::make_shared<TestPayload>(2));
  const MsgId c = net.multicast(1, 0, std::make_shared<TestPayload>(3));
  EXPECT_EQ(a.sender, 0u);
  EXPECT_LT(a.seq, b.seq);
  EXPECT_EQ(c.sender, 1u);
}

TEST(Network, ChannelsAreIndependent) {
  Simulator sim;
  Network net(sim, 2, quiet_net(), Rng(1));
  int ch0 = 0, ch1 = 0;
  net.subscribe(1, 0, [&](const Message&) { ++ch0; });
  net.subscribe(1, 1, [&](const Message&) { ++ch1; });
  net.multicast(0, 0, std::make_shared<TestPayload>(1));
  net.multicast(0, 1, std::make_shared<TestPayload>(2));
  net.multicast(0, 1, std::make_shared<TestPayload>(3));
  sim.run();
  EXPECT_EQ(ch0, 1);
  EXPECT_EQ(ch1, 2);
}

TEST(Network, CrashedSiteReceivesNothing) {
  Simulator sim;
  Network net(sim, 2, quiet_net(), Rng(1));
  int received = 0;
  net.subscribe(1, 0, [&](const Message&) { ++received; });
  net.crash(1);
  net.multicast(0, 0, std::make_shared<TestPayload>(1));
  sim.run();
  EXPECT_EQ(received, 0);
}

TEST(Network, CrashedSiteSendsNothing) {
  Simulator sim;
  Network net(sim, 2, quiet_net(), Rng(1));
  int received = 0;
  net.subscribe(1, 0, [&](const Message&) { ++received; });
  net.crash(0);
  net.multicast(0, 0, std::make_shared<TestPayload>(1));
  sim.run();
  EXPECT_EQ(received, 0);
}

TEST(Network, CrashMidFlightDropsDelivery) {
  Simulator sim;
  Network net(sim, 2, quiet_net(), Rng(1));
  int received = 0;
  net.subscribe(1, 0, [&](const Message&) { ++received; });
  net.multicast(0, 0, std::make_shared<TestPayload>(1));
  net.crash(1);  // after send, before delivery
  sim.run();
  EXPECT_EQ(received, 0);
}

TEST(Network, RecoveredSiteReceivesAgain) {
  Simulator sim;
  Network net(sim, 2, quiet_net(), Rng(1));
  int received = 0;
  net.subscribe(1, 0, [&](const Message&) { ++received; });
  net.crash(1);
  net.multicast(0, 0, std::make_shared<TestPayload>(1));
  sim.run();
  net.recover(1);
  net.multicast(0, 0, std::make_shared<TestPayload>(2));
  sim.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, PartitionParksCrossGroupTraffic) {
  Simulator sim;
  Network net(sim, 4, quiet_net(), Rng(1));
  std::vector<int> received(4, 0);
  for (SiteId s = 0; s < 4; ++s) {
    net.subscribe(s, 0, [&received, s](const Message&) { ++received[s]; });
  }
  net.partition({0, 1}, {2, 3});
  net.multicast(0, 0, std::make_shared<TestPayload>(1));
  sim.run();
  EXPECT_EQ(received[0], 1);
  EXPECT_EQ(received[1], 1);
  EXPECT_EQ(received[2], 0) << "cross-group traffic parked while split";
  EXPECT_EQ(received[3], 0);

  // Healing releases the parked message (reliable channels) and new traffic
  // flows normally.
  net.heal_partition();
  net.multicast(0, 0, std::make_shared<TestPayload>(2));
  sim.run();
  EXPECT_EQ(received[2], 2);
  EXPECT_EQ(received[3], 2);
}

TEST(Network, CrashDuringPartitionDropsParkedMessages) {
  Simulator sim;
  Network net(sim, 2, quiet_net(), Rng(1));
  int received = 0;
  net.subscribe(1, 0, [&](const Message&) { ++received; });
  net.subscribe(0, 0, [](const Message&) {});
  net.partition({0}, {1});
  net.multicast(0, 0, std::make_shared<TestPayload>(1));
  sim.run();
  net.crash(1);  // the parked message's receiver crashes before the heal
  net.heal_partition();
  sim.run();
  EXPECT_EQ(received, 0) << "a crash loses messages; only partitions are reliable";
}

TEST(Network, LossDelaysButDelivers) {
  Simulator sim;
  NetConfig cfg = quiet_net();
  cfg.loss_prob = 0.5;
  cfg.retransmit_timeout = 5 * kMillisecond;
  Network net(sim, 2, cfg, Rng(99));
  int received = 0;
  SimTime max_latency = 0;
  net.subscribe(1, 0, [&](const Message&) {
    ++received;
    max_latency = std::max(max_latency, sim.now());
  });
  net.subscribe(0, 0, [](const Message&) {});
  for (int i = 0; i < 200; ++i) net.multicast(0, 0, std::make_shared<TestPayload>(i));
  sim.run();
  EXPECT_EQ(received, 200);          // reliable despite loss
  EXPECT_GT(max_latency, 5 * kMillisecond);  // some deliveries were retransmitted
}

TEST(Network, BusSerializationSpacesDeliveries) {
  Simulator sim;
  NetConfig cfg = quiet_net();
  cfg.serialization_time = 100 * kMicrosecond;
  cfg.noise_max = 1;
  Network net(sim, 2, cfg, Rng(1));
  std::vector<SimTime> arrivals;
  net.subscribe(1, 0, [&](const Message&) { arrivals.push_back(sim.now()); });
  net.subscribe(0, 0, [](const Message&) {});
  // Two frames sent at the same instant occupy the bus back to back.
  net.multicast(0, 0, std::make_shared<TestPayload>(1));
  net.multicast(0, 0, std::make_shared<TestPayload>(2));
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE(arrivals[1] - arrivals[0], 90 * kMicrosecond);
}

TEST(Network, ArrivalRecordingCapturesPerSiteOrder) {
  Simulator sim;
  Network net(sim, 3, quiet_net(), Rng(1));
  for (SiteId s = 0; s < 3; ++s) net.subscribe(s, 0, [](const Message&) {});
  net.record_arrivals(0);
  net.multicast(0, 0, std::make_shared<TestPayload>(1));
  net.multicast(1, 0, std::make_shared<TestPayload>(2));
  sim.run();
  for (SiteId s = 0; s < 3; ++s) EXPECT_EQ(net.arrival_logs()[s].size(), 2u);
}

TEST(SpontaneousOrder, PerfectAgreement) {
  const MsgId a{0, 0}, b{1, 0}, c{2, 0};
  std::vector<std::vector<MsgId>> logs = {{a, b, c}, {a, b, c}, {a, b, c}};
  const auto stats = analyze_spontaneous_order(logs);
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.same_position, 3u);
  EXPECT_DOUBLE_EQ(stats.position_agreement(), 1.0);
  EXPECT_DOUBLE_EQ(stats.pair_agreement(), 1.0);
}

TEST(SpontaneousOrder, SingleSwapDetected) {
  const MsgId a{0, 0}, b{1, 0}, c{2, 0};
  std::vector<std::vector<MsgId>> logs = {{a, b, c}, {b, a, c}};
  const auto stats = analyze_spontaneous_order(logs);
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.same_position, 1u);  // only c is at the same rank everywhere
  EXPECT_LT(stats.pair_agreement(), 1.0);
}

TEST(SpontaneousOrder, MissingMessagesExcluded) {
  const MsgId a{0, 0}, b{1, 0}, c{2, 0};
  std::vector<std::vector<MsgId>> logs = {{a, b, c}, {a, b}};
  const auto stats = analyze_spontaneous_order(logs);
  EXPECT_EQ(stats.messages, 2u);  // c is not common
  EXPECT_EQ(stats.same_position, 2u);
}

TEST(SpontaneousOrder, EmptyLogs) {
  const auto stats = analyze_spontaneous_order({});
  EXPECT_EQ(stats.messages, 0u);
  EXPECT_DOUBLE_EQ(stats.position_agreement(), 1.0);
}

TEST(SpontaneousOrder, DuplicatedAndMissingMessageDoesNotAbort) {
  // Regression: `b` is retransmitted at site 0 (logged twice) and lost at
  // site 1. Counting occurrences instead of distinct sites made it pass the
  // "seen at every site" filter (2 occurrences == 2 sites) and then hit the
  // mid-metric CHECK abort when site 1's rank pass never saw it. Per-site
  // counting must exclude it; the rest of the metric is unaffected.
  const MsgId a{0, 0}, b{1, 0}, c{2, 0};
  std::vector<std::vector<MsgId>> logs = {{a, b, b, c}, {a, c}};
  const auto stats = analyze_spontaneous_order(logs);
  EXPECT_EQ(stats.messages, 2u);  // a and c; the duplicated+missing b is out
  EXPECT_EQ(stats.same_position, 2u);
  EXPECT_DOUBLE_EQ(stats.position_agreement(), 1.0);
}

TEST(SpontaneousOrder, RetransmissionRanksByFirstOccurrence) {
  // A message logged twice at one site (received at every site) stays common;
  // its rank at that site is its *first* occurrence, and the duplicate must
  // neither abort the analysis nor shift later ranks.
  const MsgId a{0, 0}, b{1, 0}, c{2, 0};
  std::vector<std::vector<MsgId>> logs = {{a, b, a, c}, {a, b, c}, {a, b, c}};
  const auto stats = analyze_spontaneous_order(logs);
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.same_position, 3u) << "dedup keeps ranks aligned across sites";
  EXPECT_DOUBLE_EQ(stats.pair_agreement(), 1.0);
}

TEST(SpontaneousOrder, HighJitterLowersAgreement) {
  // End-to-end: blast messages through a jittery segment and confirm the
  // agreement metric reacts.
  auto run = [](SimTime gap, double hiccup_prob) {
    Simulator sim;
    NetConfig cfg;
    cfg.hiccup_prob = hiccup_prob;
    cfg.hiccup_mean = 2 * kMillisecond;
    Network net(sim, 4, cfg, Rng(7));
    for (SiteId s = 0; s < 4; ++s) net.subscribe(s, 0, [](const Message&) {});
    net.record_arrivals(0);
    SimTime t = 0;
    for (int i = 0; i < 200; ++i) {
      const SiteId sender = static_cast<SiteId>(i % 4);
      sim.schedule_at(t, [&net, sender] {
        net.multicast(sender, 0, std::make_shared<TestPayload>(0));
      });
      t += gap;
    }
    sim.run();
    return analyze_spontaneous_order(net.arrival_logs()).position_agreement();
  };
  const double calm = run(5 * kMillisecond, 0.02);
  const double stormy = run(100 * kMicrosecond, 0.30);
  EXPECT_GT(calm, stormy);
  EXPECT_GT(calm, 0.9);
}

// -- topology profiles -------------------------------------------------------

TEST(Topology, ProfileTablesAreSymmetricWhereDeclared) {
  const EdgeParams flat_edge{50 * kMicrosecond, 20 * kMicrosecond, 0.06, 310 * kMicrosecond};
  for (TopologyProfile profile :
       {TopologyProfile::flat, TopologyProfile::lan, TopologyProfile::metro,
        TopologyProfile::wan, TopologyProfile::geo_3dc}) {
    const TopologyMatrix m = build_topology(profile, 7, flat_edge);
    EXPECT_TRUE(m.symmetric) << topology_profile_name(profile);
    if (m.flat()) continue;
    for (std::size_t i = 0; i < 7; ++i) {
      for (std::size_t j = 0; j < 7; ++j) {
        EXPECT_TRUE(m.edge(i, j) == m.edge(j, i))
            << topology_profile_name(profile) << " edge (" << i << "," << j << ")";
      }
    }
  }
}

TEST(Topology, ProfileNamesRoundTrip) {
  for (TopologyProfile profile :
       {TopologyProfile::flat, TopologyProfile::lan, TopologyProfile::metro,
        TopologyProfile::wan, TopologyProfile::geo_3dc}) {
    const auto parsed = parse_topology_profile(topology_profile_name(profile));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, profile);
  }
  EXPECT_EQ(parse_topology_profile("geo_3dc"), TopologyProfile::geo_3dc);
  EXPECT_FALSE(parse_topology_profile("ring").has_value());
}

TEST(Topology, SwitchedMulticastReachesAllSites) {
  Simulator sim;
  NetConfig cfg;  // full jitter defaults
  cfg.topology = TopologyProfile::geo_3dc;
  Network net(sim, 6, cfg, Rng(3));
  ASSERT_TRUE(net.switched());
  std::vector<int> received(6, 0);
  for (SiteId s = 0; s < 6; ++s) {
    net.subscribe(s, 0, [&received, s](const Message&) { ++received[s]; });
  }
  net.multicast(2, 0, std::make_shared<TestPayload>(1));
  net.unicast(0, 5, 0, std::make_shared<TestPayload>(2));
  sim.run();
  for (SiteId s = 0; s < 6; ++s) EXPECT_EQ(received[s], s == 5 ? 2 : 1) << "site " << s;
}

/// The conservative lookahead contract the channel-clock engine relies on:
/// for EVERY delivery - under uniform noise, hiccup tails, and link queueing -
/// (delivery time - send time) >= lookahead(from, to), strictly.
TEST(Topology, PerEdgeLookaheadIsADeliveryLowerBoundUnderJitter) {
  for (TopologyProfile profile : {TopologyProfile::metro, TopologyProfile::wan,
                                  TopologyProfile::geo_3dc}) {
    Simulator sim;
    NetConfig cfg;  // full jitter defaults, plus loss retransmission delays
    cfg.topology = profile;
    cfg.loss_prob = 0.02;
    Network net(sim, 5, cfg, Rng(99));
    std::vector<SimTime> send_time;  // by multicast issue order == MsgId.seq per sender
    std::uint64_t checked = 0;
    for (SiteId to = 0; to < 5; ++to) {
      net.subscribe(to, 0, [&, to](const Message& msg) {
        const SimTime sent = send_time[msg.id.sender * 40 + msg.id.seq];
        EXPECT_GE(sim.now() - sent, net.lookahead(msg.id.sender, to))
            << topology_profile_name(profile) << " edge (" << msg.id.sender << "," << to
            << ")";
        ++checked;
      });
    }
    send_time.assign(5 * 40, 0);
    SimTime t = 0;
    for (int i = 0; i < 40; ++i) {
      for (SiteId from = 0; from < 5; ++from) {
        sim.schedule_at(t, [&net, &send_time, &sim, from, i] {
          send_time[from * 40 + i] = sim.now();
          net.multicast(from, 0, std::make_shared<TestPayload>(i));
        });
      }
      t += 700 * kMicrosecond;  // bursts overlap on the sender links
    }
    sim.run();
    EXPECT_EQ(checked, 5u * 40u * 5u) << topology_profile_name(profile);
  }
}

/// `lan` is the flat defaults written out as an explicit matrix over the same
/// shared bus: delivery instants must be bit-for-bit identical to `flat`.
TEST(Topology, LanProfileIsBitIdenticalToFlat) {
  auto run = [](TopologyProfile profile) {
    Simulator sim;
    NetConfig cfg;  // full jitter defaults
    cfg.topology = profile;
    cfg.loss_prob = 0.01;
    Network net(sim, 4, cfg, Rng(7));
    std::vector<std::pair<SiteId, SimTime>> deliveries;
    for (SiteId s = 0; s < 4; ++s) {
      net.subscribe(s, 0, [&deliveries, &sim, s](const Message&) {
        deliveries.emplace_back(s, sim.now());
      });
    }
    SimTime t = 0;
    for (int i = 0; i < 100; ++i) {
      const SiteId sender = static_cast<SiteId>(i % 4);
      sim.schedule_at(t, [&net, sender] {
        net.multicast(sender, 0, std::make_shared<TestPayload>(0));
      });
      t += 300 * kMicrosecond;
    }
    sim.run();
    return deliveries;
  };
  EXPECT_EQ(run(TopologyProfile::flat), run(TopologyProfile::lan));
}

TEST(Topology, SwitchedPartitionParksAndHealReplays) {
  Simulator sim;
  NetConfig cfg;
  cfg.topology = TopologyProfile::metro;
  Network net(sim, 4, cfg, Rng(11));
  std::vector<int> received(4, 0);
  for (SiteId s = 0; s < 4; ++s) {
    net.subscribe(s, 0, [&received, s](const Message&) { ++received[s]; });
  }
  net.partition({0, 1}, {2, 3});
  net.multicast(0, 0, std::make_shared<TestPayload>(1));
  sim.run();
  EXPECT_EQ(received[0], 1);
  EXPECT_EQ(received[1], 1);
  EXPECT_EQ(received[2], 0);  // parked across the cut
  EXPECT_EQ(received[3], 0);
  net.heal_partition();
  sim.run();
  EXPECT_EQ(received[2], 1);  // reliable channels: replayed after healing
  EXPECT_EQ(received[3], 1);
}

}  // namespace
}  // namespace otpdb
