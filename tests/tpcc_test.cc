// Tests for the TPC-C-lite workload: procedure semantics, invariant audits
// under every engine, and cross-engine consistency.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/conservative_replica.h"
#include "checker/history.h"
#include "core/lock_table_replica.h"
#include "workload/tpcc_lite.h"

namespace otpdb {
namespace {

using tpcc::Layout;

struct ProcFixture {
  ProcFixture() : catalog(2, layout.objects_per_warehouse()) {
    procs = tpcc::register_procedures(registry, catalog, layout);
    for (ClassId w = 0; w < 2; ++w) {
      for (std::uint64_t i = 0; i < layout.n_items; ++i) {
        store.load(catalog.object(w, layout.stock_offset(i)), Value{tpcc::kInitialStock});
      }
    }
  }

  std::int64_t run(ProcId proc, ClassId w, std::vector<std::int64_t> ints, TOIndex index) {
    const TxnId txn = 0;  // scratch dense id; freed by the commit below
    TxnArgs args;
    args.ints = std::move(ints);
    TxnContext ctx(store, catalog, txn, w, args);
    registry.get(proc)(ctx);
    store.commit(txn, index);
    return 0;
  }

  std::int64_t value(ClassId w, std::uint64_t offset) {
    return as_int(store.read_latest(catalog.object(w, offset)).value_or(Value{std::int64_t{0}}));
  }

  Layout layout;
  PartitionCatalog catalog;
  VersionedStore store;
  ProcedureRegistry registry;
  tpcc::Procedures procs;
};

TEST(TpccProcedures, NewOrderMovesStockAndBillsCustomer) {
  ProcFixture f;
  f.run(f.procs.new_order, 0, {/*district*/ 1, /*customer*/ 2, /*item*/ 0, /*qty*/ 3}, 1);
  EXPECT_EQ(f.value(0, f.layout.stock_offset(0)), tpcc::kInitialStock - 3);
  EXPECT_EQ(f.value(0, f.layout.customer_offset(2)), 3 * tpcc::kItemPrice);
  EXPECT_EQ(f.value(0, f.layout.district_offset(1)), 1);
}

TEST(TpccProcedures, NewOrderRefusesOversell) {
  ProcFixture f;
  // Drain item 0 almost completely, then order more than remains.
  f.run(f.procs.new_order, 0, {0, 0, 0, static_cast<std::int64_t>(tpcc::kInitialStock) - 1},
        1);
  f.run(f.procs.new_order, 0, {0, 1, 0, 5}, 2);  // only 1 left: line refused
  EXPECT_EQ(f.value(0, f.layout.stock_offset(0)), 1);
  EXPECT_EQ(f.value(0, f.layout.customer_offset(1)), 0) << "refused line is not billed";
  EXPECT_EQ(f.value(0, f.layout.district_offset(0)), 2) << "order id still advances";
}

TEST(TpccProcedures, PaymentConservesMoney) {
  ProcFixture f;
  f.run(f.procs.new_order, 0, {0, 0, 0, 4}, 1);  // bill 20
  f.run(f.procs.payment, 0, {0, 15}, 2);
  EXPECT_EQ(f.value(0, f.layout.customer_offset(0)), 4 * tpcc::kItemPrice - 15);
  EXPECT_EQ(f.value(0, f.layout.ytd_offset()), 15);
}

TEST(TpccProcedures, DeliveryCounts) {
  ProcFixture f;
  f.run(f.procs.delivery, 1, {0}, 1);
  f.run(f.procs.delivery, 1, {2}, 2);
  EXPECT_EQ(f.value(1, f.layout.delivered_offset()), 2);
}

TEST(TpccProcedures, WarehousesAreIsolated) {
  ProcFixture f;
  f.run(f.procs.new_order, 0, {0, 0, 0, 2}, 1);
  EXPECT_EQ(f.value(1, f.layout.stock_offset(0)), tpcc::kInitialStock)
      << "warehouse 1 untouched";
}

// --- Cluster integration per engine ------------------------------------------

ReplicaFactory conservative_factory() {
  return [](const ReplicaDeps& d) {
    return std::make_unique<ConservativeReplica>(d.sim, d.abcast, d.storage, d.catalog,
                                                 d.registry, d.site);
  };
}

enum class EngineKind { otp, conservative };

void run_tpcc_and_audit(EngineKind engine, std::uint64_t seed, bool stormy) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 4;
  Layout layout;
  config.objects_per_class = layout.objects_per_warehouse();
  config.seed = seed;
  if (stormy) {
    config.net.hiccup_prob = 0.25;
    config.net.hiccup_mean = 3 * kMillisecond;
  }
  auto cluster = engine == EngineKind::conservative
                     ? std::make_unique<Cluster>(config, conservative_factory())
                     : std::make_unique<Cluster>(config);
  HistoryRecorder recorder(*cluster);
  tpcc::MixConfig mix;
  mix.txn_per_second_per_site = 100;
  mix.duration = kSecond;
  tpcc::TpccDriver driver(*cluster, layout, mix, seed * 3 + 1);
  driver.start();
  cluster->run_for(mix.duration);
  ASSERT_TRUE(cluster->quiesce(120 * kSecond));

  // Conservation audit at every site, plus serializability of the history.
  for (SiteId s = 0; s < cluster->site_count(); ++s) {
    const auto violations = driver.audit(s);
    EXPECT_TRUE(violations.empty())
        << "site " << s << ": " << (violations.empty() ? "" : violations[0]);
  }
  EXPECT_TRUE(check_one_copy_serializability(recorder.site_logs()).ok());
  std::vector<const VersionedStore*> stores;
  for (SiteId s = 0; s < cluster->site_count(); ++s) stores.push_back(&cluster->store(s));
  EXPECT_TRUE(compare_final_states(stores, cluster->catalog()).ok());
}

TEST(TpccCluster, OtpCalm) { run_tpcc_and_audit(EngineKind::otp, 1, false); }
TEST(TpccCluster, OtpStormy) { run_tpcc_and_audit(EngineKind::otp, 2, true); }
TEST(TpccCluster, ConservativeCalm) { run_tpcc_and_audit(EngineKind::conservative, 3, false); }
TEST(TpccCluster, ConservativeStormy) {
  run_tpcc_and_audit(EngineKind::conservative, 4, true);
}

TEST(TpccCluster, AuditSurvivesCrashRecovery) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 4;
  Layout layout;
  config.objects_per_class = layout.objects_per_warehouse();
  config.seed = 5;
  config.opt.consensus.round_timeout = 15 * kMillisecond;
  Cluster cluster(config);
  tpcc::MixConfig mix;
  mix.txn_per_second_per_site = 80;
  mix.duration = 1500 * kMillisecond;
  tpcc::TpccDriver driver(cluster, layout, mix, 17);
  driver.start();
  cluster.sim().schedule_at(400 * kMillisecond, [&] { cluster.crash_site(3); });
  cluster.sim().schedule_at(800 * kMillisecond, [&] { cluster.recover_site(3); });
  cluster.run_for(mix.duration);
  ASSERT_TRUE(cluster.quiesce(120 * kSecond));
  cluster.run_for(kSecond);
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    const auto violations = driver.audit(s);
    EXPECT_TRUE(violations.empty())
        << "site " << s << ": " << (violations.empty() ? "" : violations[0]);
  }
}

}  // namespace
}  // namespace otpdb
