// Tests for multi-version garbage collection: the GC horizon tracks active
// query snapshots, pruning never breaks a running query, and idle clusters
// shrink to one version per object.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "workload/workload.h"

namespace otpdb {
namespace {

TEST(VersionGc, IdleClusterShrinksToOneVersionPerObject) {
  ClusterConfig config;
  config.n_sites = 2;
  config.n_classes = 2;
  config.objects_per_class = 4;
  config.seed = 1;
  Cluster cluster(config);
  const ProcId rmw = register_rmw_procedure(cluster.procedures(), cluster.catalog());
  // 30 updates to the same object: a 30-version chain.
  for (int i = 0; i < 30; ++i) {
    cluster.sim().schedule_at(i * 5 * kMillisecond, [&cluster, rmw] {
      TxnArgs args;
      args.ints = {1, 0};
      cluster.replica(0).submit_update(rmw, 0, args, kMillisecond);
    });
  }
  cluster.run_for(500 * kMillisecond);
  ASSERT_TRUE(cluster.quiesce(30 * kSecond));
  EXPECT_EQ(cluster.store(0).total_versions(), 30u);
  const std::size_t dropped = cluster.prune_all_versions();
  EXPECT_EQ(dropped, 2 * 29u) << "both sites keep only the newest version";
  EXPECT_EQ(cluster.store(0).total_versions(), 1u);
  EXPECT_EQ(as_int(*cluster.store(0).read_latest(cluster.catalog().object(0, 0))), 30);
}

TEST(VersionGc, ActiveQueryPinsItsSnapshot) {
  ClusterConfig config;
  config.n_sites = 2;
  config.n_classes = 1;
  config.objects_per_class = 2;
  config.seed = 2;
  Cluster cluster(config);
  const ProcId rmw = register_rmw_procedure(cluster.procedures(), cluster.catalog());

  // Phase 1: a few updates commit.
  for (int i = 0; i < 5; ++i) {
    cluster.sim().schedule_at(i * 10 * kMillisecond, [&cluster, rmw] {
      TxnArgs args;
      args.ints = {1, 0};
      cluster.replica(0).submit_update(rmw, 0, args, kMillisecond);
    });
  }
  // Phase 2: at t=100ms a LONG query starts at site 1 (snapshot ~5), then
  // more updates commit, then GC runs WHILE the query still executes.
  std::vector<QueryReport> reports;
  cluster.sim().schedule_at(100 * kMillisecond, [&cluster, &reports] {
    cluster.replica(1).submit_query(
        [&cluster](QueryContext& ctx) { (void)ctx.read(cluster.catalog().object(0, 0)); },
        500 * kMillisecond, [&reports](const QueryReport& r) { reports.push_back(r); });
  });
  for (int i = 0; i < 5; ++i) {
    cluster.sim().schedule_at(150 * kMillisecond + i * 10 * kMillisecond, [&cluster, rmw] {
      TxnArgs args;
      args.ints = {1, 0};
      cluster.replica(0).submit_update(rmw, 0, args, kMillisecond);
    });
  }
  cluster.sim().schedule_at(300 * kMillisecond, [&cluster] {
    // GC mid-query: the horizon must not pass the query's snapshot.
    cluster.prune_all_versions();
  });
  cluster.run_for(800 * kMillisecond);
  ASSERT_TRUE(cluster.quiesce(30 * kSecond));

  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].snapshot_index, 5u);
  EXPECT_EQ(as_int(reports[0].reads[0].second), 5)
      << "query must still see its pinned snapshot after the GC pass";
  // After completion the horizon advances; a final prune compacts fully.
  cluster.prune_all_versions();
  EXPECT_EQ(cluster.store(1).total_versions(), 1u);
}

TEST(VersionGc, HorizonUnderContinuousLoad) {
  ClusterConfig config;
  config.n_sites = 3;
  config.n_classes = 4;
  config.objects_per_class = 8;
  config.seed = 3;
  Cluster cluster(config);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 150;
  wl.query_fraction = 0.2;
  wl.duration = kSecond;
  WorkloadDriver driver(cluster, wl, 4);
  driver.start();
  // Periodic GC during the run: correctness must be unaffected.
  for (int i = 1; i <= 10; ++i) {
    cluster.sim().schedule_at(i * 100 * kMillisecond,
                              [&cluster] { cluster.prune_all_versions(); });
  }
  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(60 * kSecond));
  cluster.prune_all_versions();
  // Fully compacted: at most one version per ever-written object.
  EXPECT_LE(cluster.store(0).total_versions(), cluster.catalog().object_count());
  // All sites identical after compaction.
  for (ClassId c = 0; c < cluster.catalog().class_count(); ++c) {
    for (std::uint64_t k = 0; k < cluster.catalog().objects_per_class(); ++k) {
      const ObjectId obj = cluster.catalog().object(c, k);
      EXPECT_EQ(cluster.store(0).read_latest(obj), cluster.store(1).read_latest(obj));
    }
  }
}

}  // namespace
}  // namespace otpdb
