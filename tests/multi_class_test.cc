// Multi-class (cross-partition) update transactions: head-of-all-queues
// gating, CC10 reordering in one covered queue while heading another,
// abort/undo across all covered partitions, atomic commit across queues,
// QueryEngine snapshot bounds over multi-domain commits, and end-to-end
// cluster runs (OTP + conservative) under the 1-copy-serializability checker.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "abcast/abcast.h"
#include "abcast/channels.h"
#include "baseline/conservative_replica.h"
#include "baseline/lazy_replica.h"
#include "checker/history.h"
#include "core/cluster.h"
#include "core/otp_replica.h"
#include "db/partition.h"
#include "db/procedures.h"
#include "db/storage_backend.h"
#include "db/versioned_store.h"
#include "sim/simulator.h"
#include "workload/tpcc_lite.h"
#include "workload/workload.h"

namespace otpdb {
namespace {

/// Broadcast endpoint whose deliveries are injected by the test.
class ManualAbcast final : public AtomicBroadcast {
 public:
  explicit ManualAbcast(SiteId self) : self_(self) {}

  MsgId broadcast(PayloadPtr payload) override {
    const MsgId id{self_, next_seq_++};
    sent_.emplace_back(id, std::move(payload));
    return id;
  }
  void set_callbacks(AbcastCallbacks callbacks) override { callbacks_ = std::move(callbacks); }
  SiteId site() const override { return self_; }
  const AbcastStats& stats() const override { return stats_; }

  void opt(const MsgId& id, PayloadPtr payload) {
    callbacks_.opt_deliver(Message{id, id.sender, kChannelData, std::move(payload)});
  }
  void to(const MsgId& id) { callbacks_.to_deliver(id, next_index_++); }

  const std::vector<std::pair<MsgId, PayloadPtr>>& sent() const { return sent_; }

 private:
  std::vector<std::pair<MsgId, PayloadPtr>> sent_;
  SiteId self_;
  std::uint64_t next_seq_ = 0;
  TOIndex next_index_ = 1;
  AbcastCallbacks callbacks_;
  AbcastStats stats_;
};

/// One site under test with a cross-class increment procedure: ints =
/// [delta, object...] with absolute object ids (rmw_cross convention).
struct Site {
  explicit Site(std::size_t n_classes, SiteId id = 0) : catalog(n_classes, 16), abcast(id) {
    proc = register_rmw_cross_procedure(registry);
    replica = std::make_unique<OtpReplica>(sim, abcast, storage, catalog, registry, id,
                                           OtpReplicaConfig{.paranoid_checks = true});
    replica->set_commit_hook([this](const CommitRecord& r) { commits.push_back(r); });
  }

  /// Multi-class request writing object 0 of each covered class.
  PayloadPtr make_request(std::vector<ClassId> classes, std::int64_t delta, SimTime exec) {
    auto request = std::make_shared<TxnRequest>();
    request->proc = proc;
    request->klass = classes.front();
    if (classes.size() > 1) request->classes = classes;
    request->args.ints.push_back(delta);
    for (ClassId c : classes) {
      request->args.ints.push_back(static_cast<std::int64_t>(catalog.object(c, 0)));
    }
    request->origin = 0;
    request->submitted_at = sim.now();
    request->exec_duration = exec;
    return request;
  }

  std::int64_t value(ClassId klass) const {
    const auto v = store.read_latest(catalog.object(klass, 0));
    return v ? as_int(*v) : 0;
  }

  Simulator sim;
  PartitionCatalog catalog;
  MemoryBackend storage{0};
  VersionedStore& store = storage.memory();
  ProcedureRegistry registry;
  ManualAbcast abcast;
  ProcId proc = 0;
  std::unique_ptr<OtpReplica> replica;
  std::vector<CommitRecord> commits;
};

MsgId id_of(std::uint64_t seq) { return MsgId{0, seq}; }

// ---------------------------------------------------------------------------
// Head-of-all-queues gating.
// ---------------------------------------------------------------------------

TEST(MultiClass, EnqueuedIntoEveryCoveredQueue) {
  Site site(3);
  site.abcast.opt(id_of(1), site.make_request({0, 2}, 1, 5 * kMillisecond));
  EXPECT_EQ(site.replica->class_queue(0).size(), 1u);
  EXPECT_EQ(site.replica->class_queue(1).size(), 0u);
  EXPECT_EQ(site.replica->class_queue(2).size(), 1u);
  EXPECT_TRUE(site.replica->class_queue(0).head()->running)
      << "alone in both queues: starts immediately";
  site.abcast.to(id_of(1));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 1u);
  ASSERT_EQ(site.commits[0].classes, (std::vector<ClassId>{0, 2}));
  EXPECT_EQ(site.value(0), 1);
  EXPECT_EQ(site.value(2), 1);
  EXPECT_TRUE(site.replica->class_queue(0).empty());
  EXPECT_TRUE(site.replica->class_queue(2).empty());
  EXPECT_EQ(site.replica->in_flight(), 0u);
}

TEST(MultiClass, WaitsUntilHeadOfAllQueues) {
  Site site(2);
  // T1 occupies class 0; the multi-class T2 {0,1} must wait for it even
  // though it heads class 1 from the start.
  site.abcast.opt(id_of(1), site.make_request({0}, 1, 5 * kMillisecond));
  site.abcast.opt(id_of(2), site.make_request({0, 1}, 10, 5 * kMillisecond));
  EXPECT_TRUE(site.replica->class_queue(0).head()->running);
  EXPECT_EQ(site.replica->class_queue(1).head()->id, id_of(2));
  EXPECT_FALSE(site.replica->class_queue(1).head()->running)
      << "heads class 1 but not class 0: must not start";
  site.abcast.to(id_of(1));
  site.abcast.to(id_of(2));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 2u);
  EXPECT_EQ(site.commits[0].txn, id_of(1));
  EXPECT_EQ(site.commits[1].txn, id_of(2));
  EXPECT_EQ(site.value(0), 11);
  EXPECT_EQ(site.value(1), 10);
  // The wait is serialized: T2's commit is at least one execution after T1's.
  EXPECT_GE(site.commits[1].at - site.commits[0].at, 5 * kMillisecond);
}

TEST(MultiClass, SingleClassTrafficInOtherClassesUnaffected) {
  Site site(3);
  // A multi-class {0,1} transaction must not serialize class 2.
  site.abcast.opt(id_of(1), site.make_request({0, 1}, 1, 10 * kMillisecond));
  site.abcast.opt(id_of(2), site.make_request({2}, 7, 10 * kMillisecond));
  EXPECT_TRUE(site.replica->class_queue(2).head()->running);
  site.abcast.to(id_of(1));
  site.abcast.to(id_of(2));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 2u);
  EXPECT_EQ(site.commits[0].at, site.commits[1].at) << "full overlap across disjoint classes";
}

// ---------------------------------------------------------------------------
// Correctness check: CC10 reorder in one covered queue while heading another,
// and CC8 undo across all covered partitions.
// ---------------------------------------------------------------------------

TEST(MultiClass, ReorderInOneQueueWhileHeadOfAnother) {
  Site site(2);
  // Tentative: T1 {0,1}, T2 {0}. Definitive: T2 before T1. At TO(T2) the
  // multi-class T1 heads both queues and has executed; it must be undone in
  // *both* partitions, T2 slots ahead in class 0, and T1 re-executes after.
  site.abcast.opt(id_of(1), site.make_request({0, 1}, 1, 1 * kMillisecond));
  site.abcast.opt(id_of(2), site.make_request({0}, 10, 1 * kMillisecond));
  site.sim.run();  // T1 executes optimistically; its provisional writes exist
  EXPECT_EQ(site.replica->class_queue(0).head()->exec, ExecState::executed);

  site.abcast.to(id_of(2));  // wrongly ordered: T1 aborted, T2 to the head
  EXPECT_EQ(site.replica->metrics().aborts, 1u);
  EXPECT_EQ(site.replica->class_queue(0).head()->id, id_of(2));
  // T1's provisional effects are gone from both covered partitions.
  EXPECT_FALSE(site.store.read_latest(site.catalog.object(0, 0)).has_value());
  EXPECT_FALSE(site.store.read_latest(site.catalog.object(1, 0)).has_value());
  // T1 still heads class 1 (nothing reordered there) but may not run: it no
  // longer heads class 0.
  EXPECT_EQ(site.replica->class_queue(1).head()->id, id_of(1));
  EXPECT_FALSE(site.replica->class_queue(1).head()->running);

  site.abcast.to(id_of(1));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 2u);
  EXPECT_EQ(site.commits[0].txn, id_of(2));
  EXPECT_EQ(site.commits[1].txn, id_of(1));
  EXPECT_EQ(site.value(0), 11);
  EXPECT_EQ(site.value(1), 1);
  EXPECT_EQ(site.replica->metrics().reexecutions, 1u) << "T1 executed twice";
}

TEST(MultiClass, CommittablePrefixBlocksLaterArrival) {
  Site site(2);
  // T1 {0} long-running, TO-delivered first (committable head). T2 {0,1}
  // TO-delivered next while T1 still runs: T2 reorders behind the committable
  // prefix of class 0, commits only after T1.
  site.abcast.opt(id_of(1), site.make_request({0}, 1, 20 * kMillisecond));
  site.abcast.opt(id_of(2), site.make_request({0, 1}, 10, 1 * kMillisecond));
  site.sim.run_until(kMillisecond);
  site.abcast.to(id_of(1));
  site.abcast.to(id_of(2));
  EXPECT_EQ(site.replica->class_queue(0).head()->id, id_of(1));
  EXPECT_TRUE(site.replica->class_queue(0).head()->running);
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 2u);
  EXPECT_EQ(site.commits[0].txn, id_of(1));
  EXPECT_EQ(site.commits[1].txn, id_of(2));
  EXPECT_EQ(site.value(0), 11);
  EXPECT_EQ(site.value(1), 10);
  EXPECT_EQ(site.replica->metrics().aborts, 0u) << "committable head is never undone";
}

TEST(MultiClass, AbortUndoesAllCoveredPartitions) {
  Site site(3);
  // Executed multi-class T1 {0,1,2} is wrongly ordered against T2 {1}: the
  // undo must roll back the provisional versions of all three partitions.
  site.abcast.opt(id_of(1), site.make_request({0, 1, 2}, 5, 1 * kMillisecond));
  site.abcast.opt(id_of(2), site.make_request({1}, 100, 1 * kMillisecond));
  site.sim.run();
  site.abcast.to(id_of(2));  // T1 wrongly ordered in class 1
  for (ClassId c = 0; c < 3; ++c) {
    EXPECT_FALSE(site.store.read_latest(site.catalog.object(c, 0)).has_value())
        << "partition " << c << " must show no trace of the undone execution";
  }
  site.abcast.to(id_of(1));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 2u);
  EXPECT_EQ(site.value(0), 5);
  EXPECT_EQ(site.value(1), 105);
  EXPECT_EQ(site.value(2), 5);
}

// ---------------------------------------------------------------------------
// Two-site convergence with a tentative/definitive mismatch on a chain of
// overlapping multi-class transactions.
// ---------------------------------------------------------------------------

TEST(MultiClass, TwoSitesConvergeUnderMismatchedTentativeOrder) {
  Site n(3, 0), np(3, 0);
  std::vector<PayloadPtr> req = {nullptr,
                                 n.make_request({0, 1}, 1, 5 * kMillisecond),
                                 n.make_request({1, 2}, 10, 5 * kMillisecond),
                                 n.make_request({0, 2}, 100, 5 * kMillisecond)};
  for (std::uint64_t t : {1u, 2u, 3u}) n.abcast.opt(id_of(t), req[t]);
  for (std::uint64_t t : {3u, 1u, 2u}) np.abcast.opt(id_of(t), req[t]);  // mismatched
  n.sim.run_until(kMillisecond);
  np.sim.run_until(kMillisecond);
  for (std::uint64_t t : {1u, 2u, 3u}) {
    n.abcast.to(id_of(t));
    np.abcast.to(id_of(t));
  }
  n.sim.run();
  np.sim.run();
  ASSERT_EQ(n.commits.size(), 3u);
  ASSERT_EQ(np.commits.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(n.commits[i].txn, np.commits[i].txn) << "position " << i;
  }
  for (ClassId c = 0; c < 3; ++c) EXPECT_EQ(n.value(c), np.value(c)) << "class " << c;
  EXPECT_GE(np.replica->metrics().aborts, 1u) << "the mismatch costs at least one undo";
  // Cross-checked by the serializability checker over both logs.
  const CheckResult check = check_one_copy_serializability({n.commits, np.commits});
  EXPECT_TRUE(check.ok()) << check.summary();
}

// ---------------------------------------------------------------------------
// QueryEngine snapshot bounds over multi-domain commits.
// ---------------------------------------------------------------------------

TEST(MultiClass, QuerySeesAllOrNothingOfAMultiClassCommit) {
  Site site(2);
  // A long-running multi-class update is TO-delivered, then a snapshot query
  // spanning both covered classes starts: its snapshot includes the update's
  // index, so it must wait for the commit and then observe *both* writes.
  site.abcast.opt(id_of(1), site.make_request({0, 1}, 4, 10 * kMillisecond));
  site.abcast.to(id_of(1));
  std::vector<QueryReport> reports;
  std::vector<std::int64_t> seen;
  site.replica->submit_query(
      [&site, &seen](QueryContext& ctx) {
        seen.clear();
        seen.push_back(ctx.read_int(site.catalog.object(0, 0)));
        seen.push_back(ctx.read_int(site.catalog.object(1, 0)));
      },
      kMillisecond, [&reports](const QueryReport& r) { reports.push_back(r); });
  site.sim.run();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GE(reports[0].attempts, 2u) << "the in-flight commit must stall the query";
  EXPECT_EQ(seen, (std::vector<std::int64_t>{4, 4}))
      << "a snapshot covering the commit index observes every covered partition";
  EXPECT_EQ(site.replica->metrics().query_retries, reports[0].attempts - 1);
}

TEST(MultiClass, EarlierSnapshotExcludesTheMultiClassCommit) {
  Site site(2);
  // Query submitted before the TO-delivery: snapshot 0 in both domains.
  site.abcast.opt(id_of(1), site.make_request({0, 1}, 4, 10 * kMillisecond));
  std::vector<std::int64_t> seen;
  std::vector<QueryReport> reports;
  site.replica->submit_query(
      [&site, &seen](QueryContext& ctx) {
        seen.push_back(ctx.read_int(site.catalog.object(0, 0)));
        seen.push_back(ctx.read_int(site.catalog.object(1, 0)));
      },
      50 * kMillisecond, [&reports](const QueryReport& r) { reports.push_back(r); });
  site.abcast.to(id_of(1));
  site.sim.run();  // commit lands before the query's execution finishes
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].snapshot_index, 0u);
  EXPECT_EQ(seen, (std::vector<std::int64_t>{0, 0}))
      << "snapshot 0 predates the commit in every covered domain";
}

// ---------------------------------------------------------------------------
// End-to-end cluster runs: generated cross-class workload, both engines,
// checker + final-state convergence; TPC-C remote mix per the acceptance bar.
// ---------------------------------------------------------------------------

std::vector<const VersionedStore*> all_stores(Cluster& cluster) {
  std::vector<const VersionedStore*> stores;
  for (SiteId s = 0; s < cluster.site_count(); ++s) stores.push_back(&cluster.store(s));
  return stores;
}

void run_cross_class_workload(Cluster& cluster, double fraction, std::uint64_t seed) {
  HistoryRecorder recorder(cluster);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 90;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.duration = 1500 * kMillisecond;
  wl.cross_class_fraction = fraction;
  wl.cross_class_span = 2;
  wl.query_fraction = 0.1;
  WorkloadDriver driver(cluster, wl, seed);
  driver.start();
  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(120 * kSecond));
  EXPECT_GT(driver.cross_class_submitted(), 0u);
  const CheckResult check = check_one_copy_serializability(recorder.site_logs());
  EXPECT_TRUE(check.ok()) << check.summary();
  const CheckResult convergence = compare_final_states(all_stores(cluster), cluster.catalog());
  EXPECT_TRUE(convergence.ok()) << convergence.summary();
}

TEST(MultiClassCluster, OtpCrossClassWorkloadStaysSerializable) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 6;
  config.objects_per_class = 16;
  config.seed = 11;
  Cluster cluster(config);
  run_cross_class_workload(cluster, 0.3, 21);
}

TEST(MultiClassCluster, ConservativeCrossClassWorkloadStaysSerializable) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 6;
  config.objects_per_class = 16;
  config.seed = 12;
  Cluster cluster(config, [](const ReplicaDeps& d) {
    return std::make_unique<ConservativeReplica>(d.sim, d.abcast, d.storage, d.catalog,
                                                 d.registry, d.site);
  });
  run_cross_class_workload(cluster, 0.3, 22);
}

void run_tpcc_remote(Cluster& cluster, std::uint64_t seed) {
  HistoryRecorder recorder(cluster);
  tpcc::Layout layout;
  tpcc::MixConfig mix;
  mix.txn_per_second_per_site = 90;
  mix.duration = 1500 * kMillisecond;
  mix.warehouse_skew_theta = 0.4;
  mix.remote_txn_fraction = 0.1;
  tpcc::TpccDriver driver(cluster, layout, mix, seed);
  driver.start();
  cluster.run_for(mix.duration);
  ASSERT_TRUE(cluster.quiesce(120 * kSecond));
  EXPECT_GT(driver.stats().remote_new_orders + driver.stats().remote_payments, 0u);
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    const auto violations = driver.audit(s);
    EXPECT_TRUE(violations.empty())
        << "site " << s << ": " << (violations.empty() ? "" : violations.front());
  }
  const CheckResult check = check_one_copy_serializability(recorder.site_logs());
  EXPECT_TRUE(check.ok()) << check.summary();
  const CheckResult convergence = compare_final_states(all_stores(cluster), cluster.catalog());
  EXPECT_TRUE(convergence.ok()) << convergence.summary();
}

TEST(MultiClassCluster, TpccRemoteMixOnOtpEngine) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 4;  // warehouses
  tpcc::Layout layout;
  config.objects_per_class = layout.objects_per_warehouse();
  config.seed = 31;
  Cluster cluster(config);
  run_tpcc_remote(cluster, 41);
}

TEST(MultiClassCluster, TpccRemoteMixOnConservativeEngine) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 4;
  tpcc::Layout layout;
  config.objects_per_class = layout.objects_per_warehouse();
  config.seed = 32;
  Cluster cluster(config, [](const ReplicaDeps& d) {
    return std::make_unique<ConservativeReplica>(d.sim, d.abcast, d.storage, d.catalog,
                                                 d.registry, d.site);
  });
  run_tpcc_remote(cluster, 42);
}

// ---------------------------------------------------------------------------
// Engines without a cross-partition model must say so, not corrupt state.
// ---------------------------------------------------------------------------

TEST(MultiClassDeath, LazyEngineRejectsMultiClassSubmission) {
  ClusterConfig config;
  config.n_sites = 2;
  config.n_classes = 4;
  config.objects_per_class = 8;
  Cluster cluster(config, [](const ReplicaDeps& d) {
    return std::make_unique<LazyReplica>(d.sim, d.net, d.storage, d.catalog, d.registry, d.site);
  });
  const ProcId rmw_cross = register_rmw_cross_procedure(cluster.procedures());
  // Single-element sets route through normally...
  cluster.replica(0).submit_update_multi(
      rmw_cross, {1}, TxnArgs{{1, static_cast<std::int64_t>(cluster.catalog().object(1, 0))}, {}},
      kMillisecond);
  // ...genuine multi-class sets are rejected loudly.
  EXPECT_DEATH(cluster.replica(0).submit_update_multi(
                   rmw_cross, {0, 1}, TxnArgs{{1, 0}, {}}, kMillisecond),
               "cannot atomically commit");
}

}  // namespace
}  // namespace otpdb
