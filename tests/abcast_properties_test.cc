// Property tests for the Atomic Broadcast with Optimistic Delivery
// specification (paper Section 2.1): Termination, Global Agreement, Local
// Agreement, Global Order, Local Order - for both implementations, across
// seeds, network regimes and fault scenarios.
#include <gtest/gtest.h>

#include "abcast_harness.h"
#include "abcast/opt_abcast.h"

namespace otpdb::test {
namespace {

NetConfig calm_network() {
  NetConfig cfg;
  cfg.hiccup_prob = 0.01;
  cfg.hiccup_mean = 500 * kMicrosecond;
  return cfg;
}

NetConfig stormy_network() {
  NetConfig cfg;
  cfg.hiccup_prob = 0.30;
  cfg.hiccup_mean = 3 * kMillisecond;
  cfg.noise_max = 200 * kMicrosecond;
  return cfg;
}

NetConfig lossy_network() {
  NetConfig cfg = stormy_network();
  cfg.loss_prob = 0.05;
  cfg.retransmit_timeout = 8 * kMillisecond;
  return cfg;
}

struct Params {
  Protocol protocol;
  std::uint64_t seed;
  bool stormy;
};

class AbcastProperties : public ::testing::TestWithParam<Params> {};

TEST_P(AbcastProperties, StreamSatisfiesAllFiveProperties) {
  const Params p = GetParam();
  AbcastHarness h(p.protocol, 4, p.stormy ? stormy_network() : calm_network(), p.seed);
  h.broadcast_stream(120, 2 * kMillisecond);
  h.sim().run_until(10 * kSecond);
  h.check_properties(120);
}

TEST_P(AbcastProperties, BurstySendersSatisfyProperties) {
  const Params p = GetParam();
  AbcastHarness h(p.protocol, 5, p.stormy ? stormy_network() : calm_network(), p.seed);
  // All five sites blast 10 messages at the same instants: maximal contention.
  for (int burst = 0; burst < 10; ++burst) {
    for (SiteId s = 0; s < 5; ++s) {
      h.sim().schedule_at(burst * kMillisecond, [&h, s] {
        h.endpoint(s).broadcast(std::make_shared<NumberedPayload>(0));
      });
    }
  }
  h.sim().run_until(10 * kSecond);
  h.check_properties(50);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, AbcastProperties,
    ::testing::Values(
        Params{Protocol::optimistic, 1, false}, Params{Protocol::optimistic, 2, false},
        Params{Protocol::optimistic, 3, true}, Params{Protocol::optimistic, 4, true},
        Params{Protocol::optimistic, 5, true}, Params{Protocol::sequencer, 1, false},
        Params{Protocol::sequencer, 2, false}, Params{Protocol::sequencer, 3, true},
        Params{Protocol::sequencer, 4, true}, Params{Protocol::sequencer, 5, true}),
    [](const ::testing::TestParamInfo<Params>& param_info) {
      return std::string(protocol_name(param_info.param.protocol)) +
             (param_info.param.stormy ? "_stormy_" : "_calm_") +
             std::to_string(param_info.param.seed);
    });

TEST(AbcastLossy, PropertiesHoldUnderLossAndRetransmission) {
  for (std::uint64_t seed : {7u, 8u, 9u}) {
    AbcastHarness h(Protocol::optimistic, 4, lossy_network(), seed);
    h.broadcast_stream(80, 3 * kMillisecond);
    h.sim().run_until(20 * kSecond);
    h.check_properties(80);
  }
}

// The at-least-once transport contract: a duplication clause re-delivers a
// fifth of all frames (data, consensus, heartbeats alike) and the five
// properties must not notice - exactly-once processing is the transport
// dedup layer's job, not the protocol's.
TEST(AbcastChaos, PropertiesHoldUnderDuplication) {
  for (std::uint64_t seed : {3u, 13u, 23u}) {
    for (Protocol protocol : {Protocol::optimistic, Protocol::sequencer}) {
      AbcastHarness h(protocol, 4, calm_network(), seed);
      ChaosConfig chaos;
      chaos.plan.add(FaultPlan::duplicate(0.20, 0, 2 * kMillisecond));
      h.net().arm_chaos(chaos, Rng(seed * 31));
      h.broadcast_stream(80, 2 * kMillisecond);
      h.sim().run_until(10 * kSecond);
      h.check_properties(80);
      EXPECT_GT(h.net().chaos_stats().duplicates_injected, 0u) << "seed " << seed;
    }
  }
}

// Bounded reordering: a slice of frames gets extra per-frame delay, so
// arrival order diverges from send order on every link. Tentative orders may
// scramble (that is the paper's whole premise) but the definitive order must
// still satisfy all five properties on both protocols.
TEST(AbcastChaos, PropertiesHoldUnderReordering) {
  for (std::uint64_t seed : {4u, 14u, 24u}) {
    for (Protocol protocol : {Protocol::optimistic, Protocol::sequencer}) {
      AbcastHarness h(protocol, 4, calm_network(), seed);
      ChaosConfig chaos;
      chaos.plan.add(FaultPlan::reorder(0.15, kMillisecond, 6 * kMillisecond));
      h.net().arm_chaos(chaos, Rng(seed * 37));
      h.broadcast_stream(80, 2 * kMillisecond);
      h.sim().run_until(10 * kSecond);
      h.check_properties(80);
      EXPECT_GT(h.net().chaos_stats().reorders_injected, 0u) << "seed " << seed;
    }
  }
}

TEST(AbcastFastPath, CalmNetworkUsesFastPath) {
  AbcastHarness h(Protocol::optimistic, 4, calm_network(), 42);
  h.broadcast_stream(100, 4 * kMillisecond);
  h.sim().run_until(10 * kSecond);
  h.check_properties(100);
  const auto* opt = dynamic_cast<OptAbcast*>(&h.endpoint(0));
  ASSERT_NE(opt, nullptr);
  const auto& cs = opt->consensus_stats();
  EXPECT_GT(cs.fast_decides, 0u);
  // Under a calm network the overwhelming majority of stages take the
  // identical-proposal fast path.
  EXPECT_GT(static_cast<double>(cs.fast_decides) /
                static_cast<double>(cs.instances_decided),
            0.8);
}

TEST(AbcastFastPath, StormyNetworkFallsBackToRounds) {
  AbcastHarness h(Protocol::optimistic, 4, stormy_network(), 42);
  h.broadcast_stream(150, 300 * kMicrosecond);
  h.sim().run_until(30 * kSecond);
  h.check_properties(150);
  const auto* opt = dynamic_cast<OptAbcast*>(&h.endpoint(0));
  const auto& cs = opt->consensus_stats();
  EXPECT_GT(cs.round_decides, 0u) << "a storm should force some coordinated rounds";
}

TEST(AbcastCrash, OptAbcastSurvivesMinorityCrash) {
  AbcastHarness h(Protocol::optimistic, 4, calm_network(), 11);
  h.broadcast_stream(40, 2 * kMillisecond);
  // Crash site 3 mid-stream; the three survivors must still agree on
  // everything broadcast by anyone before/after the crash that reached them.
  h.sim().schedule_at(35 * kMillisecond, [&h] { h.net().crash(3); });
  h.broadcast_stream(40, 2 * kMillisecond, 100 * kMillisecond);  // senders 0..3 rotate
  h.sim().run_until(60 * kSecond);

  // Messages broadcast by site 3 after its crash vanish (a crashed site sends
  // nothing); survivors must agree on the identical TO sequence regardless.
  const auto& ref = h.log(0);
  for (SiteId s : {1u, 2u}) {
    const auto& log = h.log(s);
    ASSERT_EQ(log.to.size(), ref.to.size()) << "site " << s;
    for (std::size_t i = 0; i < log.to.size(); ++i) {
      EXPECT_EQ(log.to[i].first, ref.to[i].first) << "TO divergence at " << i;
      EXPECT_EQ(log.to[i].second, ref.to[i].second);
    }
    for (const auto& [id, index] : log.to) {
      EXPECT_TRUE(log.opt_pos.contains(id));
      EXPECT_LT(log.opt_pos.at(id), log.to_pos.at(id));
    }
  }
  // Everything sent by live sites is delivered. Site 3 crashed at 35ms, so
  // its 6 remaining first-batch sends and all 10 second-batch sends vanish:
  // (40 - 6) + (40 - 10) = 64.
  EXPECT_EQ(ref.to.size(), 64u);
}

TEST(AbcastCrash, SequencerSurvivesNonSequencerCrash) {
  AbcastHarness h(Protocol::sequencer, 4, calm_network(), 13);
  h.broadcast_stream(40, 2 * kMillisecond);
  h.sim().schedule_at(30 * kMillisecond, [&h] { h.net().crash(2); });
  h.broadcast_stream(40, 2 * kMillisecond, 100 * kMillisecond);
  h.sim().run_until(10 * kSecond);
  const auto& ref = h.log(0);
  for (SiteId s : {1u, 3u}) {
    const auto& log = h.log(s);
    ASSERT_EQ(log.to.size(), ref.to.size());
    for (std::size_t i = 0; i < log.to.size(); ++i) {
      EXPECT_EQ(log.to[i].first, ref.to[i].first);
    }
  }
  // Site 2 crashed at 30ms: 6 remaining first-batch sends + 10 second-batch
  // sends are lost, leaving (40 - 6) + (40 - 10) = 64 deliveries.
  EXPECT_EQ(ref.to.size(), 64u);
}

TEST(AbcastTentative, SequencerSiteTentativeOrderMatchesDefinitive) {
  // At the sequencer itself the tentative (arrival) order IS the definitive
  // order by construction.
  AbcastHarness h(Protocol::sequencer, 4, stormy_network(), 17);
  h.broadcast_stream(60, 1 * kMillisecond);
  h.sim().run_until(10 * kSecond);
  const auto& log = h.log(0);  // site 0 is the default sequencer
  ASSERT_EQ(log.opt.size(), log.to.size());
  for (std::size_t i = 0; i < log.to.size(); ++i) {
    EXPECT_EQ(log.opt[i], log.to[i].first) << "sequencer tentative order diverged at " << i;
  }
}

TEST(AbcastGap, OptimisticWindowIsPositive) {
  AbcastHarness h(Protocol::optimistic, 4, calm_network(), 19);
  h.broadcast_stream(50, 2 * kMillisecond);
  h.sim().run_until(10 * kSecond);
  const auto& stats = h.endpoint(1).stats();
  EXPECT_EQ(stats.to_delivered, 50u);
  EXPECT_GT(stats.opt_to_gap_total_ns, 0);
  // The mean optimistic window should be at least the batching delay.
  EXPECT_GT(stats.opt_to_gap_total_ns / 50, kMillisecond / 2);
}

}  // namespace
}  // namespace otpdb::test
