// Tests for the dense-identity hot path introduced in PR 1: the MsgId ->
// TxnId interner, the flat provisional write-set semantics, and a randomized
// prune() property check against a naive reference store.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <vector>

#include "db/txn_interner.h"
#include "db/versioned_store.h"
#include "util/rng.h"

namespace otpdb {
namespace {

// --- TxnIdInterner -----------------------------------------------------------

TEST(TxnIdInterner, AssignsDenseIdsFromZero) {
  TxnIdInterner interner;
  EXPECT_EQ(interner.intern(MsgId{0, 1}), 0u);
  EXPECT_EQ(interner.intern(MsgId{1, 1}), 1u);
  EXPECT_EQ(interner.intern(MsgId{0, 2}), 2u);
  EXPECT_EQ(interner.live(), 3u);
  EXPECT_EQ(interner.capacity(), 3u);
}

TEST(TxnIdInterner, FindAndLookup) {
  TxnIdInterner interner;
  const TxnId tid = interner.intern(MsgId{3, 7});
  EXPECT_EQ(interner.find(MsgId{3, 7}), tid);
  EXPECT_EQ(interner.lookup(MsgId{3, 7}), tid);
  EXPECT_EQ(interner.find(MsgId{3, 8}), kInvalidTxnId);
  EXPECT_EQ(interner.resolve(tid), (MsgId{3, 7}));
}

TEST(TxnIdInterner, ReleaseRecyclesIds) {
  TxnIdInterner interner;
  const TxnId a = interner.intern(MsgId{0, 1});
  const TxnId b = interner.intern(MsgId{0, 2});
  interner.release(a);
  EXPECT_EQ(interner.find(MsgId{0, 1}), kInvalidTxnId) << "binding retired";
  EXPECT_EQ(interner.live(), 1u);
  // The freed slot is reused; the id space stays dense.
  const TxnId c = interner.intern(MsgId{0, 3});
  EXPECT_EQ(c, a);
  EXPECT_EQ(interner.capacity(), 2u);
  EXPECT_EQ(interner.find(MsgId{0, 2}), b);
  EXPECT_EQ(interner.resolve(c), (MsgId{0, 3}));
}

TEST(TxnIdInternerDeathTest, DuplicateInternDies) {
  TxnIdInterner interner;
  interner.intern(MsgId{0, 1});
  EXPECT_DEATH(interner.intern(MsgId{0, 1}), "interned twice");
}

TEST(TxnIdInternerDeathTest, DoubleReleaseDies) {
  TxnIdInterner interner;
  const TxnId tid = interner.intern(MsgId{0, 1});
  interner.release(tid);
  EXPECT_DEATH(interner.release(tid), "released twice");
}

TEST(TxnIdInterner, ClearDropsEverything) {
  TxnIdInterner interner;
  interner.intern(MsgId{0, 1});
  interner.intern(MsgId{0, 2});
  interner.clear();
  EXPECT_EQ(interner.live(), 0u);
  EXPECT_EQ(interner.capacity(), 0u);
  EXPECT_EQ(interner.find(MsgId{0, 1}), kInvalidTxnId);
  EXPECT_EQ(interner.intern(MsgId{0, 1}), 0u) << "dense again after clear";
}

// --- Flat write-set semantics ------------------------------------------------

TEST(FlatWriteSet, ReadYourWrites) {
  VersionedStore store;
  store.load(1, Value{std::int64_t{5}});
  TxnIdInterner interner;
  const TxnId t = interner.intern(MsgId{0, 1});
  store.write(t, 1, Value{std::int64_t{6}});
  store.write(t, 2, Value{std::int64_t{7}});
  EXPECT_EQ(as_int(*store.read_for_txn(t, 1)), 6);
  EXPECT_EQ(as_int(*store.read_for_txn(t, 2)), 7);
  EXPECT_EQ(as_int(*store.read_latest(1)), 5) << "other readers see committed state";
  EXPECT_FALSE(store.read_latest(2).has_value());
}

TEST(FlatWriteSet, AbortUndoLeavesSlotCleanForReuse) {
  VersionedStore store;
  TxnIdInterner interner;
  const TxnId t1 = interner.intern(MsgId{0, 1});
  store.write(t1, 1, Value{std::int64_t{10}});
  store.abort(t1);
  interner.release(t1);

  // The recycled id must start with an empty write-set: no leakage of the
  // aborted transaction's state into its successor.
  const TxnId t2 = interner.intern(MsgId{0, 2});
  ASSERT_EQ(t2, t1);
  EXPECT_TRUE(store.provisional_writes(t2).empty());
  EXPECT_FALSE(store.read_for_txn(t2, 1).has_value());
  store.commit(t2, 1);  // commit with no writes: no-op
  EXPECT_EQ(store.total_versions(), 0u);
}

TEST(FlatWriteSet, CommitClearsSlotForReuse) {
  VersionedStore store;
  TxnIdInterner interner;
  const TxnId t1 = interner.intern(MsgId{0, 1});
  store.write(t1, 1, Value{std::int64_t{10}});
  store.commit(t1, 1);
  interner.release(t1);

  const TxnId t2 = interner.intern(MsgId{1, 9});
  ASSERT_EQ(t2, t1) << "TxnId reused after GC";
  EXPECT_TRUE(store.provisional_writes(t2).empty());
  store.write(t2, 1, Value{std::int64_t{20}});
  store.commit(t2, 2);
  EXPECT_EQ(as_int(*store.read_latest(1)), 20);
  EXPECT_EQ(as_int(*store.read_snapshot(1, 1)), 10);
}

TEST(FlatWriteSet, CommitIndexMonotonicityAcrossReusedIds) {
  VersionedStore store;
  // The same dense id commits repeatedly (the steady-state pattern); indices
  // must still ascend per object.
  for (TOIndex i = 1; i <= 5; ++i) {
    store.write(0, 7, Value{static_cast<std::int64_t>(i)});
    store.commit(0, i);
  }
  EXPECT_EQ(store.total_versions(), 5u);
  store.write(0, 7, Value{std::int64_t{99}});
  EXPECT_DEATH(store.commit(0, 5), "ascend") << "stale index must be rejected";
}

TEST(FlatWriteSet, ProvisionalWritesSortedByObject) {
  VersionedStore store;
  const TxnId t = 0;
  store.write(t, 9, Value{std::int64_t{1}});
  store.write(t, 3, Value{std::int64_t{2}});
  store.write(t, 6, Value{std::int64_t{3}});
  store.write(t, 3, Value{std::int64_t{4}});  // overwrite keeps last value
  const auto writes = store.provisional_writes(t);
  ASSERT_EQ(writes.size(), 3u);
  EXPECT_EQ(writes[0].first, 3u);
  EXPECT_EQ(as_int(writes[0].second), 4);
  EXPECT_EQ(writes[1].first, 6u);
  EXPECT_EQ(writes[2].first, 9u);
}

TEST(FlatWriteSet, LargeWriteSetStillDeduplicates) {
  // Exceed any small-set fast path: every object written twice, last wins.
  VersionedStore store;
  const TxnId t = 0;
  for (ObjectId obj = 0; obj < 50; ++obj) store.write(t, obj, Value{std::int64_t{1}});
  for (ObjectId obj = 0; obj < 50; ++obj) {
    store.write(t, obj, Value{static_cast<std::int64_t>(obj * 2)});
  }
  const auto writes = store.provisional_writes(t);
  ASSERT_EQ(writes.size(), 50u);
  for (ObjectId obj = 0; obj < 50; ++obj) {
    EXPECT_EQ(writes[obj].first, obj);
    EXPECT_EQ(as_int(writes[obj].second), static_cast<std::int64_t>(obj * 2));
  }
}

TEST(VersionedStore, SparseObjectIdsUseHashFallback) {
  // Ids beyond the dense window must behave identically (hash-map fallback).
  VersionedStore store(/*dense_objects=*/16);
  const ObjectId sparse = 1'000'000'000;
  store.load(sparse, Value{std::int64_t{1}});
  store.write(0, sparse, Value{std::int64_t{2}});
  store.write(0, 3, Value{std::int64_t{30}});  // dense id in the same txn
  store.commit(0, 1);
  EXPECT_EQ(as_int(*store.read_latest(sparse)), 2);
  EXPECT_EQ(as_int(*store.read_latest(3)), 30);
  EXPECT_EQ(store.object_count(), 2u);
  EXPECT_EQ(store.total_versions(), 3u);
  EXPECT_EQ(store.prune(2), 1u) << "sparse chain pruned too (initial version)";
}

// --- Randomized prune() property test ---------------------------------------

// Naive reference: full version history per object, never pruned.
struct ReferenceStore {
  std::map<ObjectId, std::vector<std::pair<TOIndex, std::int64_t>>> chains;

  void commit(ObjectId obj, TOIndex index, std::int64_t value) {
    chains[obj].emplace_back(index, value);
  }

  std::optional<std::int64_t> read_snapshot(ObjectId obj, TOIndex snapshot) const {
    auto it = chains.find(obj);
    if (it == chains.end()) return std::nullopt;
    std::optional<std::int64_t> out;
    for (const auto& [index, value] : it->second) {
      if (index <= snapshot) out = value;  // chains are ascending
    }
    return out;
  }

  std::optional<std::int64_t> read_latest(ObjectId obj) const {
    auto it = chains.find(obj);
    if (it == chains.end() || it->second.empty()) return std::nullopt;
    return it->second.back().second;
  }
};

TEST(PruneProperty, RandomizedAgainstReference) {
  // Mixed dense/sparse id space to exercise both chain tables.
  const std::vector<ObjectId> objects = {0,  1,  2,  3,  7,  15, 16, 63,
                                         100'000, 100'001, 5'000'000'123};
  VersionedStore store(/*dense_objects=*/64);
  ReferenceStore reference;
  Rng rng(20260729);

  TOIndex next_index = 1;
  TOIndex pruned_to = 0;  // highest horizon passed to prune()
  for (int step = 0; step < 400; ++step) {
    // Random multi-object transaction at the next index.
    const TxnId t = static_cast<TxnId>(rng.uniform_int(0, 3));
    const std::size_t writes = static_cast<std::size_t>(rng.uniform_int(1, 4));
    for (std::size_t w = 0; w < writes; ++w) {
      const ObjectId obj = objects[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(objects.size()) - 1))];
      const auto value = rng.uniform_int(0, 1'000'000);
      store.write(t, obj, Value{value});
      reference.commit(obj, next_index, value);  // dedup-free: one write per obj
    }
    // The reference recorded every write; collapse duplicates like the store
    // does (last write per object wins, one version per object per commit).
    for (ObjectId obj : objects) {
      auto& chain = reference.chains[obj];
      while (chain.size() >= 2 && chain[chain.size() - 2].first == next_index &&
             chain.back().first == next_index) {
        chain.erase(chain.end() - 2);
      }
    }
    store.commit(t, next_index);
    ++next_index;

    if (rng.uniform_int(0, 9) == 0) {
      const auto horizon = static_cast<TOIndex>(
          rng.uniform_int(static_cast<std::int64_t>(pruned_to),
                          static_cast<std::int64_t>(next_index)));
      store.prune(horizon);
      pruned_to = std::max(pruned_to, horizon);
    }

    // Every snapshot at or above (pruned_to - 1) must still read exactly what
    // the never-pruned reference reads; the latest value must always agree.
    for (int probe = 0; probe < 8; ++probe) {
      const ObjectId obj = objects[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(objects.size()) - 1))];
      const TOIndex lo = pruned_to == 0 ? 0 : pruned_to - 1;
      const auto snapshot = static_cast<TOIndex>(rng.uniform_int(
          static_cast<std::int64_t>(lo), static_cast<std::int64_t>(next_index)));
      const auto got = store.read_snapshot(obj, snapshot);
      const auto want = reference.read_snapshot(obj, snapshot);
      ASSERT_EQ(got.has_value(), want.has_value())
          << "obj " << obj << " snapshot " << snapshot << " pruned_to " << pruned_to;
      if (want) ASSERT_EQ(as_int(*got), *want);
      const auto latest = store.read_latest(obj);
      const auto want_latest = reference.read_latest(obj);
      ASSERT_EQ(latest.has_value(), want_latest.has_value());
      if (want_latest) ASSERT_EQ(as_int(*latest), *want_latest);
    }
  }
}

}  // namespace
}  // namespace otpdb
