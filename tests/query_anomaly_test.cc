// The Section 5 anomaly, demonstrated and excluded.
//
// The paper shows that letting queries join class queues dynamically would
// let two queries at different sites order the same update transactions
// inconsistently (Q observes T2 -> Q -> T5 while Q' observes T5 -> Q' -> T2),
// breaking 1-copy-serializability. The snapshot protocol excludes this: every
// query observes, for every class, exactly the prefix of the definitive order
// up to its snapshot index - so for any two queries (at any sites), their
// observed class prefixes can never "cross".
//
// Detector: updates are +1 increments per class counter, so a query's read of
// class c's counter IS the number of class-c transactions its snapshot
// includes. Two queries cross iff one saw strictly more of class x but
// strictly less of class y. OTP snapshots: zero crossings (all seeds). Lazy
// replication: crossings appear (each site reads its own latest state, and
// propagation is unsynchronized).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baseline/lazy_replica.h"
#include "core/cluster.h"
#include "workload/workload.h"

namespace otpdb {
namespace {

struct Observation {
  std::int64_t x = 0;
  std::int64_t y = 0;
};

int count_crossings(const std::vector<Observation>& observations) {
  int crossings = 0;
  for (std::size_t i = 0; i < observations.size(); ++i) {
    for (std::size_t j = i + 1; j < observations.size(); ++j) {
      const auto& a = observations[i];
      const auto& b = observations[j];
      if ((a.x > b.x && a.y < b.y) || (a.x < b.x && a.y > b.y)) ++crossings;
    }
  }
  return crossings;
}

int run_and_count_crossings(bool lazy, std::uint64_t seed) {
  ClusterConfig config;
  config.n_sites = 3;
  config.n_classes = 2;
  config.objects_per_class = 2;
  config.seed = seed;
  // Turbulence widens the window between a transaction's commits at
  // different sites - the raw material for the anomaly.
  config.net.hiccup_prob = 0.3;
  config.net.hiccup_mean = 5 * kMillisecond;
  auto cluster =
      lazy ? std::make_unique<Cluster>(config,
                                       [](const ReplicaDeps& d) {
                                         return std::make_unique<LazyReplica>(
                                             d.sim, d.net, d.storage, d.catalog, d.registry,
                                             d.site);
                                       })
           : std::make_unique<Cluster>(config);
  const ProcId rmw = register_rmw_procedure(cluster->procedures(), cluster->catalog());

  // Continuous +1 increments to both class counters from sites 0/1.
  for (int i = 0; i < 200; ++i) {
    cluster->sim().schedule_at(i * 4 * kMillisecond, [&cluster, rmw, i] {
      TxnArgs args;
      args.ints = {1, 0};  // +1 to offset 0
      cluster->replica(static_cast<SiteId>(i % 2))
          .submit_update(rmw, static_cast<ClassId>(i % 2), args, kMillisecond);
    });
  }
  // Interleaved queries at sites 1 and 2 reading both class counters.
  std::vector<Observation> observations;
  const ObjectId obj_x = cluster->catalog().object(0, 0);
  const ObjectId obj_y = cluster->catalog().object(1, 0);
  for (int i = 0; i < 60; ++i) {
    const SiteId site = static_cast<SiteId>(1 + i % 2);
    cluster->sim().schedule_at(i * 13 * kMillisecond,
                               [&cluster, &observations, obj_x, obj_y, site] {
                                 cluster->replica(site).submit_query(
                                     [&observations, obj_x, obj_y](QueryContext& ctx) {
                                       Observation obs;
                                       obs.x = ctx.read_int(obj_x);
                                       obs.y = ctx.read_int(obj_y);
                                       observations.push_back(obs);
                                     },
                                     kMillisecond, nullptr);
                               });
  }
  cluster->run_for(2 * kSecond);
  cluster->quiesce(60 * kSecond);
  return count_crossings(observations);
}

TEST(QueryAnomaly, SnapshotQueriesNeverCross) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    EXPECT_EQ(run_and_count_crossings(/*lazy=*/false, seed), 0)
        << "seed " << seed << ": snapshot queries must observe one total order";
  }
}

TEST(QueryAnomaly, UncoordinatedReadsDoCross) {
  // The contrast case: reading each replica's latest local state (as the
  // naive protocol and asynchronous replication do) produces crossings.
  int total = 0;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    total += run_and_count_crossings(/*lazy=*/true, seed);
  }
  EXPECT_GT(total, 0) << "lazy reads should exhibit the Section 5 anomaly";
}

}  // namespace
}  // namespace otpdb
