// Unit tests for the heartbeat failure detector.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "abcast/failure_detector.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace otpdb {
namespace {

struct FdFixture {
  FdFixture(std::size_t n, std::uint64_t seed = 1) : net(sim, n, NetConfig{}, Rng(seed)) {
    for (SiteId s = 0; s < n; ++s) {
      fds.push_back(std::make_unique<FailureDetector>(sim, net, s, FailureDetectorConfig{}));
    }
    for (auto& fd : fds) fd->start();
  }
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<FailureDetector>> fds;
};

TEST(FailureDetector, NoSuspicionsWhenAllAlive) {
  FdFixture f(4);
  f.sim.run_until(2 * kSecond);
  for (SiteId a = 0; a < 4; ++a) {
    for (SiteId b = 0; b < 4; ++b) {
      EXPECT_FALSE(f.fds[a]->suspects(b)) << a << " suspects " << b;
    }
  }
  EXPECT_EQ(f.fds[0]->alive_count(), 4u);
}

TEST(FailureDetector, CrashedSiteEventuallySuspected) {
  FdFixture f(4);
  f.sim.run_until(500 * kMillisecond);
  f.net.crash(2);
  f.sim.run_until(1 * kSecond);
  for (SiteId a : {0u, 1u, 3u}) EXPECT_TRUE(f.fds[a]->suspects(2)) << "site " << a;
  EXPECT_EQ(f.fds[0]->alive_count(), 3u);
}

TEST(FailureDetector, NeverSuspectsSelf) {
  FdFixture f(3);
  f.net.crash(0);  // even its own crash: a crashed process does not observe itself
  f.sim.run_until(2 * kSecond);
  EXPECT_FALSE(f.fds[0]->suspects(0));
}

TEST(FailureDetector, SuspicionRevisedAfterRecovery) {
  FdFixture f(3);
  f.sim.run_until(200 * kMillisecond);
  f.net.crash(1);
  f.sim.run_until(1 * kSecond);
  ASSERT_TRUE(f.fds[0]->suspects(1));
  f.net.recover(1);
  f.sim.run_until(2 * kSecond);
  EXPECT_FALSE(f.fds[0]->suspects(1)) << "heartbeats resumed, suspicion must lift";
}

TEST(FailureDetector, CallbacksFire) {
  FdFixture f(3);
  int suspected = 0, restored = 0;
  f.fds[0]->set_on_suspect([&](SiteId s) {
    EXPECT_EQ(s, 1u);
    ++suspected;
  });
  f.fds[0]->set_on_restore([&](SiteId s) {
    EXPECT_EQ(s, 1u);
    ++restored;
  });
  f.sim.run_until(200 * kMillisecond);
  f.net.crash(1);
  f.sim.run_until(1 * kSecond);
  f.net.recover(1);
  f.sim.run_until(2 * kSecond);
  EXPECT_EQ(suspected, 1);
  EXPECT_EQ(restored, 1);
}

TEST(FailureDetector, PartitionLooksLikeCrash) {
  FdFixture f(4);
  f.sim.run_until(200 * kMillisecond);
  f.net.partition({0, 1}, {2, 3});
  f.sim.run_until(1 * kSecond);
  EXPECT_TRUE(f.fds[0]->suspects(2));
  EXPECT_TRUE(f.fds[0]->suspects(3));
  EXPECT_FALSE(f.fds[0]->suspects(1));
  EXPECT_TRUE(f.fds[2]->suspects(0));
  f.net.heal_partition();
  f.sim.run_until(2 * kSecond);
  EXPECT_FALSE(f.fds[0]->suspects(2)) << "eventual accuracy after healing";
}

}  // namespace
}  // namespace otpdb
