// Unit tests for the heartbeat failure detector.
#include <gtest/gtest.h>

#include <memory>
#include <vector>
#include <functional>

#include "abcast/failure_detector.h"
#include "core/cluster.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/rng.h"
#include "workload/workload.h"

namespace otpdb {
namespace {

struct FdFixture {
  FdFixture(std::size_t n, std::uint64_t seed = 1, FailureDetectorConfig config = {})
      : net(sim, n, NetConfig{}, Rng(seed)) {
    for (SiteId s = 0; s < n; ++s) {
      fds.push_back(std::make_unique<FailureDetector>(sim, net, s, config));
    }
    for (auto& fd : fds) fd->start();
  }
  Simulator sim;
  Network net;
  std::vector<std::unique_ptr<FailureDetector>> fds;
};

TEST(FailureDetector, NoSuspicionsWhenAllAlive) {
  FdFixture f(4);
  f.sim.run_until(2 * kSecond);
  for (SiteId a = 0; a < 4; ++a) {
    for (SiteId b = 0; b < 4; ++b) {
      EXPECT_FALSE(f.fds[a]->suspects(b)) << a << " suspects " << b;
    }
  }
  EXPECT_EQ(f.fds[0]->alive_count(), 4u);
}

TEST(FailureDetector, CrashedSiteEventuallySuspected) {
  FdFixture f(4);
  f.sim.run_until(500 * kMillisecond);
  f.net.crash(2);
  f.sim.run_until(1 * kSecond);
  for (SiteId a : {0u, 1u, 3u}) EXPECT_TRUE(f.fds[a]->suspects(2)) << "site " << a;
  EXPECT_EQ(f.fds[0]->alive_count(), 3u);
}

TEST(FailureDetector, NeverSuspectsSelf) {
  FdFixture f(3);
  f.net.crash(0);  // even its own crash: a crashed process does not observe itself
  f.sim.run_until(2 * kSecond);
  EXPECT_FALSE(f.fds[0]->suspects(0));
}

TEST(FailureDetector, SuspicionRevisedAfterRecovery) {
  FdFixture f(3);
  f.sim.run_until(200 * kMillisecond);
  f.net.crash(1);
  f.sim.run_until(1 * kSecond);
  ASSERT_TRUE(f.fds[0]->suspects(1));
  f.net.recover(1);
  f.sim.run_until(2 * kSecond);
  EXPECT_FALSE(f.fds[0]->suspects(1)) << "heartbeats resumed, suspicion must lift";
}

TEST(FailureDetector, CallbacksFire) {
  FdFixture f(3);
  int suspected = 0, restored = 0;
  f.fds[0]->set_on_suspect([&](SiteId s) {
    EXPECT_EQ(s, 1u);
    ++suspected;
  });
  f.fds[0]->set_on_restore([&](SiteId s) {
    EXPECT_EQ(s, 1u);
    ++restored;
  });
  f.sim.run_until(200 * kMillisecond);
  f.net.crash(1);
  f.sim.run_until(1 * kSecond);
  f.net.recover(1);
  f.sim.run_until(2 * kSecond);
  EXPECT_EQ(suspected, 1);
  EXPECT_EQ(restored, 1);
}

// --- gray links and hysteresis (net/fault_plan.h chaos plane) ----------------

/// Arms a gray link out of site 1: every frame it sends is delayed by a draw
/// from [delay_min, delay_max) while the clause window is open. With draws
/// around the suspect timeout, its heartbeat gaps at the peers stretch past
/// it - the classic slow-but-alive peer that provokes false suspicions.
void arm_gray_out_of_site1(Network& net, SimTime delay_min, SimTime delay_max, SimTime start,
                           SimTime end) {
  ChaosConfig chaos;
  chaos.plan.add(FaultPlan::gray({1}, {}, delay_min, delay_max, start, end));
  net.arm_chaos(chaos, Rng(99));
}

TEST(FailureDetector, GrayLinkProvokesFalseSuspicionThenRestores) {
  FdFixture f(3);
  arm_gray_out_of_site1(f.net, 100 * kMillisecond, 400 * kMillisecond, 300 * kMillisecond,
                      2 * kSecond);
  // Track the widest timeout the backoff reaches (it decays back to base once
  // the link heals, so the end state alone cannot show it ever widened).
  SimTime peak_timeout = 0;
  std::function<void()> probe = [&f, &peak_timeout, &probe] {
    peak_timeout = std::max(peak_timeout, f.fds[0]->current_timeout(1));
    f.sim.schedule_at(f.sim.now() + 25 * kMillisecond, probe);
  };
  f.sim.schedule_at(25 * kMillisecond, probe);
  f.sim.run_until(5 * kSecond);
  const FailureDetectorStats& stats = f.fds[0]->stats();
  EXPECT_GT(stats.suspicions, 0u) << "the gray link never stretched a heartbeat gap";
  EXPECT_EQ(stats.restores, stats.suspicions) << "a gray link is not a crash";
  EXPECT_FALSE(f.fds[0]->suspects(1)) << "eventual accuracy once the link heals";
  EXPECT_GT(peak_timeout, FailureDetectorConfig{}.suspect_timeout)
      << "each restore must widen the peer's timeout";
}

TEST(FailureDetector, HysteresisCutsSuspicionChurnVersusFixedTimeout) {
  // A wide delay spread scatters the heartbeats so thinly that arrival gaps
  // repeatedly straddle the base timeout, and the sparse arrivals (gaps over
  // 2x interval) keep the decay from erasing the backoff mid-window - the
  // regime where hysteresis earns its keep.
  auto churn = [](double backoff) {
    FailureDetectorConfig config;
    config.timeout_backoff = backoff;
    FdFixture f(3, /*seed=*/1, config);
    arm_gray_out_of_site1(f.net, 0, 4 * kSecond, 300 * kMillisecond, 3 * kSecond);
    f.sim.run_until(7 * kSecond);
    return f.fds[0]->stats().suspicions;
  };
  const std::uint64_t fixed = churn(1.0);    // hysteresis disabled
  const std::uint64_t adaptive = churn(2.0);  // default backoff
  EXPECT_GT(fixed, adaptive)
      << "the whole point of the backoff: fewer suspect/restore cycles on a limping link";
  EXPECT_GT(adaptive, 0u) << "the first suspicion must still fire";
}

TEST(FailureDetector, BackedOffTimeoutDecaysOnceHeartbeatsAreTimelyAgain) {
  FdFixture f(3);
  arm_gray_out_of_site1(f.net, 100 * kMillisecond, 400 * kMillisecond, 300 * kMillisecond,
                      2 * kSecond);
  SimTime peak_timeout = 0;
  std::function<void()> probe = [&f, &peak_timeout, &probe] {
    peak_timeout = std::max(peak_timeout, f.fds[0]->current_timeout(1));
    f.sim.schedule_at(f.sim.now() + 25 * kMillisecond, probe);
  };
  f.sim.schedule_at(25 * kMillisecond, probe);
  f.sim.run_until(20 * kSecond);
  ASSERT_GT(f.fds[0]->stats().restores, 0u);
  ASSERT_GT(peak_timeout, FailureDetectorConfig{}.suspect_timeout) << "backoff never engaged";
  // Sustained timely heartbeats walk the timeout back to base, one interval
  // per beat - the detector forgets a healed link instead of staying numb.
  EXPECT_EQ(f.fds[0]->current_timeout(1), FailureDetectorConfig{}.suspect_timeout);
}

TEST(FailureDetector, CrashDetectionLatencyUnchangedByHysteresis) {
  // Backoff only engages after a restore, which a genuinely crashed peer
  // never produces - so first-suspicion latency must be identical with the
  // hysteresis on and off.
  auto detect_at = [](double backoff) {
    FailureDetectorConfig config;
    config.timeout_backoff = backoff;
    FdFixture f(3, /*seed=*/1, config);
    SimTime at = -1;
    f.fds[0]->set_on_suspect([&f, &at](SiteId s) {
      if (s == 1 && at < 0) at = f.sim.now();
    });
    f.sim.schedule_at(500 * kMillisecond, [&f] { f.net.crash(1); });
    f.sim.run_until(3 * kSecond);
    return at;
  };
  const SimTime with_backoff = detect_at(2.0);
  const SimTime without = detect_at(1.0);
  EXPECT_GT(with_backoff, 0);
  EXPECT_EQ(with_backoff, without);
}

TEST(FailureDetector, SustainedOverloadCausesNoFalseSuspicions) {
  // Overload is a data-plane condition: heavy transaction traffic and deep
  // replica backlogs must not starve heartbeats into false suspicions. The
  // cluster runs well past its service capacity (admission shedding engaged,
  // deadline drops happening) with every site alive throughout.
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 4;
  config.seed = 7;
  config.admission.enabled = true;
  config.admission.shed_depth = 48;
  config.admission.resume_depth = 16;
  Cluster cluster(config);

  WorkloadConfig wl;
  // ~3x the capacity of 4 classes at 4ms mean service time.
  wl.updates_per_second_per_site = 750;
  wl.mean_exec_time = 4 * kMillisecond;
  wl.duration = 1500 * kMillisecond;
  wl.deadline_budget = 150 * kMillisecond;
  wl.max_retries = 4;
  WorkloadDriver driver(cluster, wl, 4242);
  driver.start();
  cluster.run_for(wl.duration);
  EXPECT_TRUE(cluster.quiesce(120 * kSecond));

  std::uint64_t shed = 0;
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    shed += cluster.replica(s).metrics().shed_updates;
  }
  EXPECT_GT(shed, 0u) << "the run never actually overloaded";
  EXPECT_EQ(cluster.fd_stats().suspicions, 0u)
      << "overload starved heartbeats into false suspicions";
}

TEST(FailureDetector, PartitionLooksLikeCrash) {
  FdFixture f(4);
  f.sim.run_until(200 * kMillisecond);
  f.net.partition({0, 1}, {2, 3});
  f.sim.run_until(1 * kSecond);
  EXPECT_TRUE(f.fds[0]->suspects(2));
  EXPECT_TRUE(f.fds[0]->suspects(3));
  EXPECT_FALSE(f.fds[0]->suspects(1));
  EXPECT_TRUE(f.fds[2]->suspects(0));
  f.net.heal_partition();
  f.sim.run_until(2 * kSecond);
  EXPECT_FALSE(f.fds[0]->suspects(2)) << "eventual accuracy after healing";
}

}  // namespace
}  // namespace otpdb
