// Unit tests for the discrete-event simulator.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.h"
// Defines the counting global operator new (one TU per binary): pins the
// InlineAction guarantee that steady-state event scheduling never touches
// the heap. The tests compare otpdb::heap_alloc_count across hot loops.
#include "util/counting_new.h"

namespace otpdb {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, EventsFireInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimestampsFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime fired_at = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceFails) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, CancelAfterFireFails) {
  Simulator sim;
  const EventId id = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (SimTime t : {10, 20, 30, 40}) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  sim.run_until(25);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(sim.now(), 25);
  sim.run_until(100);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(Simulator, RunUntilAdvancesTimeWithEmptyQueue) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.now(), 9);
}

TEST(Simulator, RunWithLimitStopsEarly) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(sim.run(), 6u);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
  sim.schedule_at(1, [] {});
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(Simulator, PendingExcludesCancelled) {
  Simulator sim;
  const EventId a = sim.schedule_at(1, [] {});
  sim.schedule_at(2, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
}

// -- InlineAction / allocation guarantees ------------------------------------

/// Self-rescheduling event with a trivially-copyable capture: the shape of
/// every hot-path closure (this + an index or two).
struct Recur {
  Simulator* sim;
  std::uint64_t* fired;
  void operator()() const {
    ++*fired;
    sim->schedule_after(10, Recur{sim, fired});
  }
};

TEST(Simulator, SteadyStateSchedulingDoesNotAllocate) {
  Simulator sim;
  std::uint64_t fired = 0;
  for (int i = 0; i < 64; ++i) sim.schedule_at(i, Recur{&sim, &fired});
  // Warm-up: slot pool, free list, and heap vector reach their steady size.
  sim.run(8 * 1024);
  const std::uint64_t before = heap_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t fired_before = fired;
  sim.run(64 * 1024);
  EXPECT_EQ(heap_alloc_count.load(std::memory_order_relaxed), before)
      << "steady-state event scheduling touched the heap";
  EXPECT_EQ(fired - fired_before, 64u * 1024u);
}

TEST(Simulator, SteadyStateCancelDoesNotAllocate) {
  Simulator sim;
  std::uint64_t fired = 0;
  for (int i = 0; i < 16; ++i) sim.schedule_at(i, Recur{&sim, &fired});
  // Churn pattern of the protocol stack: a timer scheduled slightly ahead and
  // cancelled before it fires (stale heap entries drain as time passes, so
  // the queue stays bounded). Warm up with the same pattern first.
  auto churn = [&](int rounds) {
    for (int round = 0; round < rounds; ++round) {
      const EventId doomed = sim.schedule_after(1, Recur{&sim, &fired});
      EXPECT_TRUE(sim.cancel(doomed));
      sim.step();
    }
  };
  churn(1024);
  const std::uint64_t before = heap_alloc_count.load(std::memory_order_relaxed);
  churn(4096);
  EXPECT_EQ(heap_alloc_count.load(std::memory_order_relaxed), before)
      << "schedule/cancel churn touched the heap";
}

TEST(InlineAction, NonTrivialCapturesAreMovedAndDestroyed) {
  // A unique_ptr capture is not trivially copyable: InlineAction must run the
  // real move constructor on slot recycling and the destructor exactly once.
  auto counter = std::make_shared<int>(0);
  {
    Simulator sim;
    sim.schedule_at(5, [counter, p = std::make_unique<int>(7)] { *counter += *p; });
    InlineAction moved_away = [counter] { *counter += 100; };
    InlineAction target = std::move(moved_away);
    target();
    sim.run();
  }
  EXPECT_EQ(*counter, 107);
  EXPECT_EQ(counter.use_count(), 1) << "a captured shared_ptr leaked";
}

TEST(InlineAction, NullStates) {
  InlineAction a;
  EXPECT_FALSE(static_cast<bool>(a));
  a = [] {};
  EXPECT_TRUE(static_cast<bool>(a));
  a = nullptr;
  EXPECT_FALSE(static_cast<bool>(a));
}

TEST(Simulator, CancelledEventDoesNotBlockRunUntil) {
  Simulator sim;
  bool fired = false;
  const EventId a = sim.schedule_at(10, [&] { fired = true; });
  sim.cancel(a);
  sim.schedule_at(20, [&] { fired = true; });
  sim.run_until(15);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.now(), 15);
}

}  // namespace
}  // namespace otpdb
