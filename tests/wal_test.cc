// WAL format + DurableStore tests: encode/decode round-trips, corruption
// hardening (torn writes, truncated tails, bit flips, bad checksums - the
// scan must stop cleanly at the first bad frame, never crash or overread),
// group-commit batching, and checkpoint/restart round-trips.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#include "db/durable_store.h"
#include "db/wal.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace otpdb {
namespace {

namespace fs = std::filesystem;

/// Fresh temp directory per test, removed on destruction.
struct TempDir {
  TempDir() {
    static int counter = 0;
    dir = fs::temp_directory_path() /
          ("otpdb-waltest-" + std::to_string(::getpid()) + "-" + std::to_string(counter++));
    fs::create_directories(dir);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  fs::path dir;
};

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_file(const fs::path& p, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Encodes a small segment: a load plus `n` commit records over two classes.
std::vector<std::uint8_t> sample_records(int n) {
  std::vector<std::uint8_t> bytes;
  wal::append_load(bytes, 7, Value{std::int64_t{100}});
  for (int i = 1; i <= n; ++i) {
    const ClassId classes[] = {0, 1};
    const std::pair<ObjectId, Value> writes[] = {
        {static_cast<ObjectId>(i), Value{std::int64_t{i * 10}}},
        {static_cast<ObjectId>(i + 1000), Value{3.25 * i}},
        {static_cast<ObjectId>(i + 2000), Value{std::string("txn-") + std::to_string(i)}},
    };
    wal::append_commit(bytes, static_cast<TOIndex>(i),
                       std::span<const ClassId>(classes, i % 2 == 0 ? 2 : 1),
                       std::span<const std::pair<ObjectId, Value>>(writes, 3));
  }
  return bytes;
}

/// Writes magic + `records` into a fresh segment file.
fs::path make_segment(const TempDir& tmp, const std::vector<std::uint8_t>& records) {
  const fs::path path = tmp.dir / wal::segment_name(1);
  wal::SegmentWriter writer;
  EXPECT_TRUE(writer.open(path));
  EXPECT_TRUE(writer.append_and_sync(records.data(), records.size()));
  writer.close();
  return path;
}

TEST(Wal, CommitAndLoadRoundTrip) {
  TempDir tmp;
  const fs::path path = make_segment(tmp, sample_records(20));

  std::vector<wal::CommitRecord> commits;
  std::vector<wal::LoadRecord> loads;
  wal::ScanCallbacks cb;
  cb.on_commit = [&](const wal::CommitRecord& r) { commits.push_back(r); };
  cb.on_load = [&](const wal::LoadRecord& r) { loads.push_back(r); };
  const wal::ScanResult scan = wal::scan_segment(path, cb);

  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.records, 21u);
  EXPECT_EQ(scan.max_index, 20u);
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_EQ(loads[0].object, 7u);
  EXPECT_EQ(as_int(loads[0].value), 100);
  ASSERT_EQ(commits.size(), 20u);
  EXPECT_EQ(commits[4].index, 5u);
  EXPECT_EQ(commits[4].classes.size(), 1u);
  EXPECT_EQ(commits[5].classes.size(), 2u);
  ASSERT_EQ(commits[4].writes.size(), 3u);
  EXPECT_EQ(as_int(commits[4].writes[0].second), 50);
  EXPECT_DOUBLE_EQ(std::get<double>(commits[4].writes[1].second), 3.25 * 5);
  EXPECT_EQ(std::get<std::string>(commits[4].writes[2].second), "txn-5");
}

TEST(Wal, MissingFileScansEmptyAndClean) {
  TempDir tmp;
  const wal::ScanResult scan = wal::scan_segment(tmp.dir / "absent.log", {});
  EXPECT_TRUE(scan.clean);
  EXPECT_EQ(scan.records, 0u);
}

TEST(Wal, BadMagicScansZeroRecordsNotClean) {
  TempDir tmp;
  const fs::path path = tmp.dir / wal::segment_name(1);
  write_file(path, {'B', 'O', 'G', 'U', 'S', '!', '!', '\n', 1, 2, 3});
  const wal::ScanResult scan = wal::scan_segment(path, {});
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(scan.records, 0u);
}

TEST(Wal, TruncatedTailStopsAtLastGoodFrame) {
  // Cut the file at EVERY possible byte offset: the scan must decode exactly
  // the frames fully contained in the prefix and report the torn tail.
  TempDir tmp;
  const fs::path path = make_segment(tmp, sample_records(8));
  const std::vector<std::uint8_t> full = read_file(path);
  std::uint64_t full_records = 0;
  {
    wal::ScanCallbacks count;
    const wal::ScanResult scan = wal::scan_segment(path, count);
    full_records = scan.records;
    ASSERT_TRUE(scan.clean);
  }
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    write_file(path, std::vector<std::uint8_t>(full.begin(), full.begin() + cut));
    const wal::ScanResult scan = wal::scan_segment(path, {});
    // A cut exactly on a frame boundary is indistinguishable from a shorter
    // log and scans clean; any mid-frame cut must be flagged torn (a cut
    // inside the 8-byte magic is always torn). The valid prefix never
    // exceeds the cut.
    if (cut < 8) {
      EXPECT_FALSE(scan.clean) << "cut at " << cut;
      EXPECT_EQ(scan.records, 0u) << "cut at " << cut;
    } else {
      EXPECT_EQ(scan.clean, scan.valid_bytes == cut) << "cut at " << cut;
    }
    EXPECT_LE(scan.valid_bytes, cut) << "cut at " << cut;
    EXPECT_LT(scan.records, full_records) << "cut at " << cut;
  }
}

TEST(Wal, BitFlipsNeverCrashAndStopTheScan) {
  // Deterministic fuzz: flip one byte at a time across the file. Either the
  // flip lands in a frame (CRC catches it, scan stops there) or in the
  // already-validated prefix's payload lengths - in every case the scan must
  // terminate without UB and report <= the full record count.
  TempDir tmp;
  const fs::path path = make_segment(tmp, sample_records(6));
  const std::vector<std::uint8_t> full = read_file(path);
  Rng rng(42);
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<std::uint8_t> corrupted = full;
    const auto at = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(corrupted.size()) - 1));
    const auto flip = static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    corrupted[at] ^= flip;
    write_file(path, corrupted);
    const wal::ScanResult scan = wal::scan_segment(path, {});
    EXPECT_LE(scan.records, 7u);
    EXPECT_LE(scan.valid_bytes, corrupted.size());
  }
}

TEST(Wal, CrcMismatchCutsTheTail) {
  TempDir tmp;
  const fs::path path = make_segment(tmp, sample_records(5));
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes.back() ^= 0xff;  // corrupt the last frame's payload
  write_file(path, bytes);
  std::uint64_t records = 0;
  wal::ScanCallbacks cb;
  cb.on_commit = [&](const wal::CommitRecord&) { ++records; };
  cb.on_load = [&](const wal::LoadRecord&) { ++records; };
  const wal::ScanResult scan = wal::scan_segment(path, cb);
  EXPECT_FALSE(scan.clean);
  EXPECT_EQ(records, 5u) << "load + 4 commits survive; the corrupted frame is cut";
  EXPECT_EQ(scan.records, records);
  // Re-truncating to the valid prefix yields a clean segment again.
  ASSERT_TRUE(wal::truncate_file(path, scan.valid_bytes));
  const wal::ScanResult rescan = wal::scan_segment(path, {});
  EXPECT_TRUE(rescan.clean);
  EXPECT_EQ(rescan.records, 5u);
}

TEST(Wal, CheckpointRoundTrip) {
  TempDir tmp;
  const fs::path path = tmp.dir / "checkpoint.bin";
  wal::CheckpointData data;
  data.class_watermarks = {4, 9, 0};
  data.max_index = 9;
  data.chains.push_back({11, {{2, Value{std::int64_t{5}}}, {9, Value{std::string("x")}}}});
  data.chains.push_back({12, {{4, Value{2.5}}}});
  ASSERT_TRUE(wal::write_checkpoint(path, data));

  wal::CheckpointData out;
  ASSERT_TRUE(wal::read_checkpoint(path, out));
  EXPECT_EQ(out.class_watermarks, data.class_watermarks);
  EXPECT_EQ(out.max_index, 9u);
  ASSERT_EQ(out.chains.size(), 2u);
  EXPECT_EQ(out.chains[0].first, 11u);
  ASSERT_EQ(out.chains[0].second.size(), 2u);
  EXPECT_EQ(std::get<std::string>(out.chains[0].second[1].second), "x");
}

TEST(Wal, CorruptCheckpointIsRejected) {
  TempDir tmp;
  const fs::path path = tmp.dir / "checkpoint.bin";
  wal::CheckpointData data;
  data.class_watermarks = {1};
  data.max_index = 1;
  data.chains.push_back({3, {{1, Value{std::int64_t{30}}}}});
  ASSERT_TRUE(wal::write_checkpoint(path, data));
  std::vector<std::uint8_t> bytes = read_file(path);
  // Flip every byte position in turn: read_checkpoint must reject or parse,
  // never crash; flips that break structure or CRC leave `out` empty.
  for (std::size_t at = 0; at < bytes.size(); ++at) {
    std::vector<std::uint8_t> corrupted = bytes;
    corrupted[at] ^= 0x5a;
    write_file(path, corrupted);
    wal::CheckpointData out;
    (void)wal::read_checkpoint(path, out);
  }
  // A truncated checkpoint (torn rename cannot happen, but a torn disk can).
  write_file(path, std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + bytes.size() / 2));
  wal::CheckpointData out;
  EXPECT_FALSE(wal::read_checkpoint(path, out));
  EXPECT_TRUE(out.chains.empty());
}

// --- DurableStore ------------------------------------------------------------

StorageConfig durable_config() {
  StorageConfig config;
  config.backend = StorageBackendKind::durable;
  return config;
}

TEST(DurableStore, GroupCommitBatchesMultipleCommitsPerFsync) {
  TempDir tmp;
  Simulator sim;
  DurableStore store(sim, durable_config(), tmp.dir / "site-0", 2, 16);
  // 10 commits within one flush window -> one fsync covers them all.
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(i * 50 * kMicrosecond, [&store, i] {
      const TxnId txn = 0;
      store.memory().write(txn, static_cast<ObjectId>(i % 16), Value{std::int64_t{i}});
      const ClassId klass = static_cast<ClassId>(i % 2);
      store.commit(txn, static_cast<TOIndex>(i), std::span<const ClassId>(&klass, 1));
    });
  }
  sim.run_until(sim.now() + kSecond);
  const WalStats* stats = store.wal_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->commits_logged, 10u);
  EXPECT_EQ(stats->fsyncs, 1u) << "one group-commit flush covers the burst";
  EXPECT_EQ(store.durable_watermark(0), 10u);
  EXPECT_EQ(store.durable_watermark(1), 9u);
}

TEST(DurableStore, RestartRebuildsExactCommittedState) {
  TempDir tmp;
  Simulator sim;
  DurableStore store(sim, durable_config(), tmp.dir / "site-0", 2, 16);
  store.load(0, Value{std::int64_t{1000}});
  for (int i = 1; i <= 30; ++i) {
    sim.schedule_at(i * kMillisecond, [&store, i] {
      const TxnId txn = 0;
      store.memory().write(txn, static_cast<ObjectId>(i % 16), Value{std::int64_t{i * 7}});
      const ClassId klass = static_cast<ClassId>(i % 2);
      store.commit(txn, static_cast<TOIndex>(i), std::span<const ClassId>(&klass, 1));
    });
  }
  sim.run_until(sim.now() + kSecond);

  // Capture the committed image, then cold-restart and compare.
  std::vector<std::pair<ObjectId, Value>> before;
  for (ObjectId obj = 0; obj < 16; ++obj) {
    const auto v = store.memory().read_latest(obj);
    if (v) before.emplace_back(obj, *v);
  }
  store.crash();
  const RecoveredState recovered = store.restart_from_disk();
  EXPECT_EQ(recovered.max_index, 30u);
  EXPECT_EQ(recovered.durable_floor, 29u) << "min(class watermarks 30, 29)";
  for (const auto& [obj, value] : before) {
    const auto v = store.memory().read_latest(obj);
    ASSERT_TRUE(v.has_value()) << "object " << obj;
    EXPECT_EQ(*v, value) << "object " << obj;
  }
}

TEST(DurableStore, RestartSurvivesTornTailAndDropsLaterSegments) {
  TempDir tmp;
  const fs::path dir = tmp.dir / "site-0";
  TOIndex durable_before = 0;
  {
    Simulator sim;
    StorageConfig config = durable_config();
    config.segment_bytes = 256;  // force several segment rolls
    DurableStore store(sim, config, dir, 1, 8);
    for (int i = 1; i <= 40; ++i) {
      sim.schedule_at(i * kMillisecond, [&store, i] {
        const TxnId txn = 0;
        store.memory().write(txn, static_cast<ObjectId>(i % 8),
                             Value{std::string(32, static_cast<char>('a' + i % 26))});
        const ClassId klass = 0;
        store.commit(txn, static_cast<TOIndex>(i), std::span<const ClassId>(&klass, 1));
      });
    }
    sim.run_until(sim.now() + kSecond);
    durable_before = store.durable_watermark(0);
    ASSERT_EQ(durable_before, 40u);
  }
  // Tear the tail of the FIRST multi-record segment on disk: recovery must
  // stop there and ignore every later segment (no holes in the total order).
  std::vector<std::uint64_t> seqs;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) seqs.push_back(std::stoull(name.substr(4, 10)));
  }
  std::sort(seqs.begin(), seqs.end());
  ASSERT_GE(seqs.size(), 3u) << "test needs several sealed segments";
  const fs::path victim = dir / wal::segment_name(seqs[0]);
  const std::vector<std::uint8_t> bytes = read_file(victim);
  write_file(victim, std::vector<std::uint8_t>(bytes.begin(), bytes.begin() + bytes.size() - 3));

  Simulator sim;
  DurableStore store(sim, durable_config(), dir, 1, 8);
  const RecoveredState recovered = store.restart_from_disk();
  EXPECT_LT(recovered.durable_floor, durable_before);
  // Later segments are gone from disk (the freshly opened, magic-only active
  // segment reuses the next sequence number - exclude it by content).
  std::size_t later = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && std::stoull(name.substr(4, 10)) > seqs[0] &&
        fs::file_size(entry.path()) > 8) {
      ++later;
    }
  }
  EXPECT_EQ(later, 0u) << "segments after the torn one must be deleted";
  // The rebuilt state is exactly the valid prefix: the highest surviving
  // version is the recovered floor's write.
  EXPECT_EQ(recovered.max_index, recovered.durable_floor);
}

TEST(DurableStore, CheckpointTruncatesSealedSegments) {
  TempDir tmp;
  Simulator sim;
  StorageConfig config = durable_config();
  config.segment_bytes = 256;
  config.checkpoint_interval = 100 * kMillisecond;
  DurableStore store(sim, config, tmp.dir / "site-0", 1, 8);
  for (int i = 1; i <= 60; ++i) {
    sim.schedule_at(i * 10 * kMillisecond, [&store, i] {
      const TxnId txn = 0;
      store.memory().write(txn, static_cast<ObjectId>(i % 8),
                           Value{std::string(32, static_cast<char>('a' + i % 26))});
      const ClassId klass = 0;
      store.commit(txn, static_cast<TOIndex>(i), std::span<const ClassId>(&klass, 1));
    });
  }
  sim.run_until(sim.now() + 5 * kSecond);
  const WalStats* stats = store.wal_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->checkpoints, 0u);
  EXPECT_GT(stats->segments_truncated, 0u) << "sealed segments below the floor must be GC'd";
  // Restart prefers the checkpoint: nearly all committed state comes from the
  // snapshot rather than WAL replay.
  store.crash();
  const RecoveredState recovered = store.restart_from_disk();
  EXPECT_EQ(recovered.durable_floor, 60u);
  EXPECT_EQ(stats->checkpoint_restores, 1u);
}

}  // namespace
}  // namespace otpdb
