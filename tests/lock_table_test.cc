// Tests for the fine-granularity lock-table OTP engine (paper Section 6 /
// [13]): object-level queues, hold-all-locks execution, the generalized
// correctness check, concurrency gains over the class model, and
// object-level 1-copy-serializability.
#include <gtest/gtest.h>

#include <memory>

#include "abcast/abcast.h"
#include "abcast/channels.h"
#include "checker/history.h"
#include "core/cluster.h"
#include "core/lock_table_replica.h"
#include "workload/workload.h"

namespace otpdb {
namespace {

// --- Manual-broadcast unit fixture ------------------------------------------

class ManualAbcast final : public AtomicBroadcast {
 public:
  MsgId broadcast(PayloadPtr payload) override {
    const MsgId id{0, next_seq_++};
    sent_.emplace_back(id, std::move(payload));
    return id;
  }
  void set_callbacks(AbcastCallbacks callbacks) override { callbacks_ = std::move(callbacks); }
  SiteId site() const override { return 0; }
  const AbcastStats& stats() const override { return stats_; }

  void opt(const MsgId& id, PayloadPtr payload) {
    callbacks_.opt_deliver(Message{id, id.sender, kChannelData, std::move(payload)});
  }
  void to(const MsgId& id) { callbacks_.to_deliver(id, next_index_++); }

 private:
  std::vector<std::pair<MsgId, PayloadPtr>> sent_;
  std::uint64_t next_seq_ = 0;
  TOIndex next_index_ = 1;
  AbcastCallbacks callbacks_;
  AbcastStats stats_;
};

struct LockSite {
  LockSite() : catalog(2, 16) {
    proc = registry.add("incr_all", [](TxnContext& ctx) {
      // Increment every declared object by args.ints[0].
      for (std::size_t i = 1; i < ctx.args().ints.size(); ++i) {
        // args.ints[i] is a raw ObjectId here (unit tests pass ids directly).
        const ObjectId obj = static_cast<ObjectId>(ctx.args().ints[i]);
        ctx.write(obj, ctx.read_int(obj) + ctx.args().ints[0]);
      }
    });
    replica = std::make_unique<LockTableReplica>(
        sim, abcast, storage, catalog, registry, 0,
        [](ClassId, const TxnArgs& args) {
          std::vector<ObjectId> objects;
          for (std::size_t i = 1; i < args.ints.size(); ++i) {
            objects.push_back(static_cast<ObjectId>(args.ints[i]));
          }
          return objects;
        });
    replica->set_commit_hook([this](const CommitRecord& r) { commits.push_back(r); });
  }

  PayloadPtr request(std::vector<ObjectId> objects, SimTime exec, std::int64_t delta = 1) {
    auto req = std::make_shared<TxnRequest>();
    req->proc = proc;
    req->klass = 0;
    req->args.ints.push_back(delta);
    for (ObjectId o : objects) req->args.ints.push_back(static_cast<std::int64_t>(o));
    req->origin = 0;
    req->exec_duration = exec;
    req->access_set = std::move(objects);
    return req;
  }

  Simulator sim;
  PartitionCatalog catalog;
  MemoryBackend storage{0};
  VersionedStore& store = storage.memory();
  ProcedureRegistry registry;
  ManualAbcast abcast;
  ProcId proc = 0;
  std::unique_ptr<LockTableReplica> replica;
  std::vector<CommitRecord> commits;
};

MsgId id_of(std::uint64_t seq) { return MsgId{0, seq}; }

TEST(LockTable, DisjointObjectsSameClassRunConcurrently) {
  // The whole point of fine granularity: same conflict class, disjoint
  // objects -> parallel execution (the class-queue engine would serialize).
  LockSite site;
  site.abcast.opt(id_of(1), site.request({1}, 5 * kMillisecond));
  site.abcast.opt(id_of(2), site.request({2}, 5 * kMillisecond));
  site.abcast.to(id_of(1));
  site.abcast.to(id_of(2));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 2u);
  EXPECT_EQ(site.commits[0].at, site.commits[1].at) << "disjoint txns must overlap fully";
}

TEST(LockTable, SharedObjectSerializes) {
  LockSite site;
  site.abcast.opt(id_of(1), site.request({1, 2}, 5 * kMillisecond));
  site.abcast.opt(id_of(2), site.request({2, 3}, 5 * kMillisecond));
  site.abcast.to(id_of(1));
  site.abcast.to(id_of(2));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 2u);
  EXPECT_GE(site.commits[1].at - site.commits[0].at, 5 * kMillisecond)
      << "transactions sharing object 2 must serialize";
  EXPECT_EQ(as_int(*site.store.read_latest(2)), 2) << "both increments applied";
}

TEST(LockTable, HoldAllLocksBeforeExecuting) {
  // T2 = {x,y} must wait for both T1 = {x} and T3 = {y}.
  LockSite site;
  site.abcast.opt(id_of(1), site.request({1}, 10 * kMillisecond));
  site.abcast.opt(id_of(2), site.request({1, 2}, 1 * kMillisecond));
  site.abcast.opt(id_of(3), site.request({2}, 2 * kMillisecond));
  // Tentative order T1, T2, T3: T3 is behind T2 in object 2's queue.
  EXPECT_EQ(site.replica->queue_length(1), 2u);
  EXPECT_EQ(site.replica->queue_length(2), 2u);
  site.abcast.to(id_of(1));
  site.abcast.to(id_of(2));
  site.abcast.to(id_of(3));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 3u);
  EXPECT_EQ(site.commits[0].txn, id_of(1));
  EXPECT_EQ(site.commits[1].txn, id_of(2));
  EXPECT_EQ(site.commits[2].txn, id_of(3));
  // T2 could only start after T1 committed at 10ms.
  EXPECT_GE(site.commits[1].at, 11 * kMillisecond);
}

TEST(LockTable, WrongTentativeOrderAbortsAndRedoes) {
  // Tentative T1 before T2 on a shared object, definitive order reversed.
  LockSite site;
  site.abcast.opt(id_of(1), site.request({5}, 10 * kMillisecond, 10));
  site.abcast.opt(id_of(2), site.request({5}, 10 * kMillisecond, 100));
  site.sim.run_until(2 * kMillisecond);  // T1 executing optimistically
  site.abcast.to(id_of(2));              // definitive: T2 first
  EXPECT_EQ(site.replica->metrics().aborts, 1u) << "T1's optimistic run must be undone";
  site.abcast.to(id_of(1));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 2u);
  EXPECT_EQ(site.commits[0].txn, id_of(2));
  EXPECT_EQ(site.commits[1].txn, id_of(1));
  EXPECT_EQ(as_int(*site.store.read_latest(5)), 110);
  EXPECT_EQ(site.replica->metrics().reexecutions, 1u);
}

TEST(LockTable, PartialOverlapAbortsOnlyConflicting) {
  // T1={1}, T2={2}: a reversed definitive order costs nothing (no conflict).
  LockSite site;
  site.abcast.opt(id_of(1), site.request({1}, 10 * kMillisecond));
  site.abcast.opt(id_of(2), site.request({2}, 10 * kMillisecond));
  site.sim.run_until(1 * kMillisecond);
  site.abcast.to(id_of(2));
  site.abcast.to(id_of(1));
  site.sim.run();
  EXPECT_EQ(site.replica->metrics().aborts, 0u);
  EXPECT_EQ(site.commits.size(), 2u);
}

TEST(LockTable, UndeclaredAccessDies) {
  LockSite site;
  auto req = site.request({1}, kMillisecond);
  // Tamper: procedure will touch object 2, which is not declared.
  auto bad = std::make_shared<TxnRequest>(*std::static_pointer_cast<const TxnRequest>(req));
  bad->args.ints.push_back(2);  // proc iterates args -> touches object 2
  // Execution starts right at Opt-delivery; the scope check fires there.
  EXPECT_DEATH(site.abcast.opt(id_of(1), bad), "undeclared object");
}

TEST(LockTable, ChainedWaitsResolveInDefinitiveOrder) {
  // Chain: T1={a,b}, T2={b,c}, T3={c,d} with reversed definitive order.
  LockSite site;
  site.abcast.opt(id_of(1), site.request({1, 2}, 3 * kMillisecond));
  site.abcast.opt(id_of(2), site.request({2, 3}, 3 * kMillisecond));
  site.abcast.opt(id_of(3), site.request({3, 4}, 3 * kMillisecond));
  site.sim.run_until(kMillisecond);
  site.abcast.to(id_of(3));
  site.abcast.to(id_of(2));
  site.abcast.to(id_of(1));
  site.sim.run();
  ASSERT_EQ(site.commits.size(), 3u);
  EXPECT_EQ(site.commits[0].txn, id_of(3));
  EXPECT_EQ(site.commits[1].txn, id_of(2));
  EXPECT_EQ(site.commits[2].txn, id_of(1));
  for (ObjectId obj : {1u, 2u, 3u, 4u}) {
    EXPECT_EQ(as_int(*site.store.read_latest(obj)), obj == 1 || obj == 4 ? 1 : 2);
  }
}

// --- Full-cluster integration ------------------------------------------------

ReplicaFactory lock_table_factory() {
  return [](const ReplicaDeps& d) {
    return std::make_unique<LockTableReplica>(d.sim, d.abcast, d.storage, d.catalog, d.registry,
                                              d.site, rmw_access_extractor(d.catalog));
  };
}

TEST(LockTableCluster, ObjectLevelSerializableUnderLoad) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = 2;  // few classes: the class engine would choke
    config.objects_per_class = 32;
    config.seed = seed;
    config.net.hiccup_prob = 0.15;
    config.net.hiccup_mean = 2 * kMillisecond;
    Cluster cluster(config, lock_table_factory());
    HistoryRecorder recorder(cluster);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 120;
    wl.mean_exec_time = 2 * kMillisecond;
    wl.ops_per_txn = 3;
    wl.duration = 1 * kSecond;
    WorkloadDriver driver(cluster, wl, seed);
    driver.start();
    cluster.run_for(wl.duration);
    ASSERT_TRUE(cluster.quiesce(120 * kSecond)) << "seed " << seed;

    for (SiteId s = 0; s < cluster.site_count(); ++s) {
      EXPECT_EQ(cluster.replica(s).metrics().committed, driver.updates_submitted())
          << "site " << s << " seed " << seed;
    }
    const CheckResult check = check_object_level_serializability(recorder.site_logs());
    EXPECT_TRUE(check.ok()) << "seed " << seed << ": " << check.summary();

    std::vector<const VersionedStore*> stores;
    for (SiteId s = 0; s < cluster.site_count(); ++s) stores.push_back(&cluster.store(s));
    const CheckResult convergence = compare_final_states(stores, cluster.catalog());
    EXPECT_TRUE(convergence.ok()) << convergence.summary();
  }
}

TEST(LockTableCluster, OutperformsClassQueuesOnHotClasses) {
  // One conflict class, many objects: the class engine serializes everything;
  // the lock-table engine only serializes true object conflicts.
  auto throughput = [](bool fine_grained) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = 1;
    config.objects_per_class = 64;
    config.seed = 99;
    auto cluster = fine_grained
                       ? std::make_unique<Cluster>(config, lock_table_factory())
                       : std::make_unique<Cluster>(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 150;
    wl.mean_exec_time = 4 * kMillisecond;  // >> 1/rate: the hot class saturates
    wl.ops_per_txn = 2;
    wl.duration = 1 * kSecond;
    WorkloadDriver driver(*cluster, wl, 7);
    driver.start();
    cluster->run_for(wl.duration);
    cluster->quiesce(120 * kSecond);
    OnlineStats latency;
    for (SiteId s = 0; s < 4; ++s) {
      latency.merge(cluster->replica(s).metrics().commit_latency_ns);
    }
    return latency.mean();
  };
  const double coarse_latency = throughput(false);
  const double fine_latency = throughput(true);
  EXPECT_LT(fine_latency, coarse_latency / 2)
      << "object-level locking must beat a saturated class queue clearly";
}

TEST(LockTableCluster, SnapshotQueriesSeeExactPrefixes) {
  ClusterConfig config;
  config.n_sites = 3;
  config.n_classes = 2;
  config.objects_per_class = 8;
  config.seed = 42;
  Cluster cluster(config, lock_table_factory());
  HistoryRecorder recorder(cluster);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 100;
  wl.mean_exec_time = 3 * kMillisecond;
  wl.duration = 600 * kMillisecond;
  WorkloadDriver driver(cluster, wl, 5);
  driver.start();

  std::vector<QueryReport> reports;
  const std::vector<ObjectId> targets = {cluster.catalog().object(0, 0),
                                         cluster.catalog().object(1, 3)};
  for (int i = 1; i <= 10; ++i) {
    cluster.sim().schedule_at(i * 50 * kMillisecond, [&cluster, &targets, &reports] {
      cluster.replica(1).submit_query(
          [targets](QueryContext& ctx) {
            for (ObjectId obj : targets) (void)ctx.read(obj);
          },
          kMillisecond, [&reports](const QueryReport& r) { reports.push_back(r); });
    });
  }
  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(60 * kSecond));
  ASSERT_EQ(reports.size(), 10u);

  const auto& log = recorder.site_logs()[1];
  for (const QueryReport& report : reports) {
    std::map<ObjectId, std::int64_t> expected;
    for (const auto& r : log) {
      if (r.index > report.snapshot_index) continue;
      for (const auto& [obj, value] : r.writes) expected[obj] = as_int(value);
    }
    for (const auto& [obj, value] : report.reads) {
      const auto it = expected.find(obj);
      EXPECT_EQ(as_int(value), it == expected.end() ? 0 : it->second)
          << "snapshot " << report.snapshot_index << " object " << obj;
    }
  }
}

}  // namespace
}  // namespace otpdb
