// Chaos-plane determinism and survival tests (net/fault_plan.h).
//
// Every fault clause the plane can inject - duplication, bounded reordering,
// one-way partitions, link flapping, gray links - plus the storage fault
// injector (db/io_shim.h) is exercised here under the full stack, with the
// acceptance bar of the chaos work:
//
//   1. determinism: one (plan, seed) configuration produces bit-for-bit
//      identical commit histories, final states, and chaos counters across
//      sharded runs with 1, 2, 4, and 8 worker threads;
//   2. survival: the InvariantMonitor battery (watermark monotonicity, 1CSR,
//      cross-site convergence) reports zero violations in every scenario,
//      including a durable kill-and-restart-from-disk leg with the I/O fault
//      injector live;
//   3. injection actually happened: each scenario asserts its fault counters
//      are non-zero, so a silently disarmed plan cannot pass.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "checker/invariant_monitor.h"
#include "core/cluster.h"
#include "db/durable_store.h"
#include "workload/workload.h"

namespace otpdb {
namespace {

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

std::uint64_t digest_value(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return static_cast<std::uint64_t>(*i);
  if (const auto* d = std::get_if<double>(&v)) {
    std::uint64_t bits;
    __builtin_memcpy(&bits, d, sizeof(bits));
    return bits;
  }
  Fnv f;
  for (char c : std::get<std::string>(v)) f.add(static_cast<unsigned char>(c));
  return f.h;
}

std::vector<std::uint64_t> history_digests(const HistoryRecorder& recorder) {
  std::vector<std::uint64_t> out;
  for (const auto& log : recorder.site_logs()) {
    Fnv f;
    for (const CommitRecord& r : log) {
      f.add(r.txn.sender);
      f.add(r.txn.seq);
      f.add(r.proc);
      f.add(r.klass);
      for (ClassId c : r.classes) f.add(c);
      f.add(r.index);
      f.add(static_cast<std::uint64_t>(r.at));
      for (const auto& [obj, value] : r.writes) {
        f.add(obj);
        f.add(digest_value(value));
      }
    }
    out.push_back(f.h);
  }
  return out;
}

std::uint64_t store_digest(Cluster& cluster) {
  Fnv f;
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    for (ObjectId obj = 0; obj < cluster.catalog().object_count(); ++obj) {
      const auto v = cluster.store(s).read_latest(obj);
      f.add(v ? digest_value(*v) : 0xdeadull);
    }
  }
  return f.h;
}

struct Scenario {
  FaultPlan plan;
  bool durable = false;
  bool storage_faults = false;  ///< arm the I/O injector (implies durable)
  bool kill_restart = false;    ///< crash site 4 and restart it from disk
};

struct RunResult {
  std::vector<std::uint64_t> history;
  std::uint64_t stores = 0;
  std::uint64_t delivered = 0;
  std::uint64_t committed = 0;
  ChaosStats chaos;
  FailureDetectorStats fd;
  std::uint64_t invariant_violations = 0;
  std::uint64_t io_injected = 0;
};

void expect_equal(const RunResult& base, const RunResult& other, unsigned threads) {
  EXPECT_EQ(base.history, other.history) << "commit histories diverge at threads=" << threads;
  EXPECT_EQ(base.stores, other.stores) << "final states diverge at threads=" << threads;
  EXPECT_EQ(base.delivered, other.delivered) << "deliveries diverge at threads=" << threads;
  EXPECT_EQ(base.committed, other.committed) << "commit counts diverge at threads=" << threads;
  // Chaos accounting is part of the determinism contract: the same faults
  // fire at the same points regardless of the worker-thread count.
  EXPECT_EQ(base.chaos.duplicates_injected, other.chaos.duplicates_injected);
  EXPECT_EQ(base.chaos.duplicates_suppressed, other.chaos.duplicates_suppressed);
  EXPECT_EQ(base.chaos.reorders_injected, other.chaos.reorders_injected);
  EXPECT_EQ(base.chaos.gray_delays, other.chaos.gray_delays);
  EXPECT_EQ(base.chaos.deliveries_parked, other.chaos.deliveries_parked);
  EXPECT_EQ(base.chaos.parked_released, other.chaos.parked_released);
  EXPECT_EQ(base.chaos.flap_transitions, other.chaos.flap_transitions);
  EXPECT_EQ(base.fd.suspicions, other.fd.suspicions);
  EXPECT_EQ(base.fd.restores, other.fd.restores);
  EXPECT_EQ(base.io_injected, other.io_injected) << "I/O faults diverge at threads=" << threads;
}

RunResult run_scenario(const Scenario& scenario, unsigned threads) {
  ClusterConfig config;
  config.n_sites = 5;
  config.n_classes = 8;
  config.seed = 77;
  config.parallel.threads = threads;
  config.parallel.force_sharded = true;
  config.chaos.plan = scenario.plan;
  if (scenario.durable || scenario.storage_faults) {
    config.storage.backend = StorageBackendKind::durable;
  }
  if (scenario.storage_faults) {
    config.storage.faults.enabled = true;
    config.storage.faults.seed = 19;
    config.storage.faults.write_error_prob = 0.05;
    config.storage.faults.torn_write_prob = 0.02;
    config.storage.faults.fsync_error_prob = 0.05;
  }
  auto cluster = std::make_unique<Cluster>(config);

  InvariantMonitor::Config monitor_config;
  monitor_config.dedup_replayed_commits = scenario.kill_restart;
  InvariantMonitor monitor(*cluster, monitor_config);

  WorkloadConfig wl;
  wl.updates_per_second_per_site = 80;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.query_fraction = 0.15;
  wl.cross_class_fraction = 0.2;
  wl.duration = 900 * kMillisecond;
  WorkloadDriver driver(*cluster, wl, 4242);
  driver.start();

  if (scenario.kill_restart) {
    cluster->sim().schedule_at(450 * kMillisecond, [&cluster] { cluster->crash_site(4); });
    cluster->sim().schedule_at(650 * kMillisecond,
                               [&cluster] { cluster->restart_site_from_disk(4); });
  }

  cluster->run_for(wl.duration + 200 * kMillisecond);
  EXPECT_TRUE(cluster->quiesce(60 * kSecond));
  cluster->run_for(kSecond);  // settle in-flight retransmissions/parked replays

  RunResult out;
  out.history = history_digests(monitor.recorder());
  out.stores = store_digest(*cluster);
  out.delivered = cluster->net().delivered_count();
  out.committed = cluster->total_committed();
  out.chaos = cluster->chaos_stats();
  out.fd = cluster->fd_stats();
  if (scenario.storage_faults) {
    for (SiteId s = 0; s < cluster->site_count(); ++s) {
      if (const IoFaultStats* f = cluster->storage(s).io_fault_stats()) {
        out.io_injected += f->injected();
      }
    }
  }
  const CheckResult check = monitor.finish();
  EXPECT_GT(monitor.samples(), 0u);
  EXPECT_TRUE(check.ok()) << check.summary();
  out.invariant_violations = check.violations.size();
  return out;
}

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

/// Runs the scenario at every thread count, checks bit-for-bit parity, and
/// returns the base run so callers can assert injection counters.
RunResult sweep(const Scenario& scenario) {
  const RunResult base = run_scenario(scenario, 1);
  EXPECT_GT(base.committed, 0u);
  EXPECT_EQ(base.invariant_violations, 0u);
  for (unsigned threads : kThreadCounts) {
    if (threads == 1) continue;
    expect_equal(base, run_scenario(scenario, threads), threads);
  }
  return base;
}

// -- one sweep per fault clause ----------------------------------------------

TEST(ChaosPlane, DuplicationSurvivesAndIsDeterministic) {
  Scenario s;
  s.plan.add(FaultPlan::duplicate(0.3, 0, 3 * kMillisecond));
  const RunResult base = sweep(s);
  EXPECT_GT(base.chaos.duplicates_injected, 0u);
  // Transport dedup must absorb the injected copies. A handful of copies are
  // legitimately still in flight at the simulation horizon (heartbeats never
  // stop), so allow that tail - it is deterministic, the parity sweep above
  // already pinned it bit-for-bit.
  EXPECT_LE(base.chaos.duplicates_suppressed, base.chaos.duplicates_injected);
  EXPECT_GE(base.chaos.duplicates_suppressed + 32, base.chaos.duplicates_injected);
}

TEST(ChaosPlane, ReorderingSurvivesAndIsDeterministic) {
  Scenario s;
  s.plan.add(FaultPlan::reorder(0.15, 2 * kMillisecond, 10 * kMillisecond));
  const RunResult base = sweep(s);
  EXPECT_GT(base.chaos.reorders_injected, 0u);
}

TEST(ChaosPlane, OneWayPartitionSurvivesAndIsDeterministic) {
  Scenario s;
  // Site 4 goes deaf to sites 0-1 for a third of the run; traffic the other
  // way keeps flowing (the asymmetric case symmetric partitions cannot model).
  s.plan.add(FaultPlan::one_way({0, 1}, {4}, 250 * kMillisecond, 550 * kMillisecond));
  const RunResult base = sweep(s);
  EXPECT_GT(base.chaos.deliveries_parked, 0u);
  EXPECT_GT(base.chaos.parked_released, 0u);
}

TEST(ChaosPlane, LinkFlappingSurvivesAndIsDeterministic) {
  Scenario s;
  s.plan.add(FaultPlan::flap({0}, {4}, 120 * kMillisecond, 0.5, 100 * kMillisecond,
                             800 * kMillisecond));
  const RunResult base = sweep(s);
  EXPECT_GT(base.chaos.flap_transitions, 0u);
  EXPECT_GT(base.chaos.deliveries_parked, 0u);
}

TEST(ChaosPlane, GrayLinkSurvivesAndIsDeterministic) {
  Scenario s;
  // Slow-but-alive edges into site 4: delays larger than the suspect timeout
  // provoke false suspicions; hysteresis must restore them and the run must
  // stay serializable.
  s.plan.add(FaultPlan::gray({}, {4}, 40 * kMillisecond, 160 * kMillisecond,
                             200 * kMillisecond, 700 * kMillisecond));
  const RunResult base = sweep(s);
  EXPECT_GT(base.chaos.gray_delays, 0u);
  EXPECT_EQ(base.fd.suspicions, base.fd.restores) << "a gray link is not a crash";
}

TEST(ChaosPlane, CombinedPlanSurvivesAndIsDeterministic) {
  // All per-message clauses plus a flapping edge at once - the hostile-network
  // soup. Every counter must still be thread-count invariant.
  Scenario s;
  s.plan.add(FaultPlan::duplicate(0.15, 0, 2 * kMillisecond))
      .add(FaultPlan::reorder(0.1, kMillisecond, 6 * kMillisecond))
      .add(FaultPlan::gray({}, {3}, 20 * kMillisecond, 60 * kMillisecond, 300 * kMillisecond,
                           600 * kMillisecond))
      .add(FaultPlan::flap({2}, {0}, 150 * kMillisecond, 0.4));
  const RunResult base = sweep(s);
  EXPECT_GT(base.chaos.duplicates_injected, 0u);
  EXPECT_GT(base.chaos.reorders_injected, 0u);
  EXPECT_GT(base.chaos.gray_delays, 0u);
  EXPECT_GT(base.chaos.flap_transitions, 0u);
}

// -- storage faults -----------------------------------------------------------

TEST(ChaosPlane, DurableBackendUnderNetworkChaos) {
  Scenario s;
  s.durable = true;
  s.plan.add(FaultPlan::duplicate(0.2, 0, 2 * kMillisecond))
      .add(FaultPlan::reorder(0.1, kMillisecond, 5 * kMillisecond));
  const RunResult base = sweep(s);
  EXPECT_GT(base.chaos.duplicates_injected, 0u);
}

TEST(ChaosPlane, InjectedIoFaultsSurviveAndAreDeterministic) {
  Scenario s;
  s.storage_faults = true;
  const RunResult base = sweep(s);
  EXPECT_GT(base.io_injected, 0u) << "the injector never fired";
}

TEST(ChaosPlane, KillRestartFromDiskUnderChaosWithIoFaults) {
  // The acceptance leg: network chaos + live I/O injector + a cold restart
  // from disk, and the whole battery (watermark monotonicity across the
  // restart, 1CSR over the deduped histories, convergence) stays green at
  // every thread count.
  Scenario s;
  s.storage_faults = true;
  s.kill_restart = true;
  s.plan.add(FaultPlan::duplicate(0.15, 0, 2 * kMillisecond))
      .add(FaultPlan::gray({}, {2}, 10 * kMillisecond, 40 * kMillisecond, 200 * kMillisecond,
                           500 * kMillisecond));
  const RunResult base = sweep(s);
  EXPECT_GT(base.io_injected, 0u);
  EXPECT_GT(base.chaos.duplicates_injected, 0u);
}

// -- no-chaos bit-compatibility ----------------------------------------------

TEST(ChaosPlane, EmptyPlanLeavesRunsBitIdentical) {
  // An empty ChaosConfig must not perturb anything: same digests as a config
  // that never mentions chaos (the rng split only happens when armed).
  const RunResult base = run_scenario(Scenario{}, 2);
  Scenario explicit_empty;
  explicit_empty.plan = FaultPlan{};
  expect_equal(base, run_scenario(explicit_empty, 2), 2);
  EXPECT_EQ(base.chaos.duplicates_injected, 0u);
  EXPECT_EQ(base.chaos.deliveries_parked, 0u);
}

}  // namespace
}  // namespace otpdb
