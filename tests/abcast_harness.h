// Shared test harness: builds an n-site broadcast stack over the simulated
// network, records every Opt-/TO-delivery per site, and checks the five
// properties of Atomic Broadcast with Optimistic Delivery (paper Section 2.1).
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>
#include <vector>

#include "abcast/abcast.h"
#include "abcast/failure_detector.h"
#include "abcast/opt_abcast.h"
#include "abcast/sequencer_abcast.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace otpdb::test {

struct NumberedPayload final : Payload {
  std::uint64_t n = 0;
  explicit NumberedPayload(std::uint64_t v) : n(v) {}
};

enum class Protocol { optimistic, sequencer };

inline const char* protocol_name(Protocol p) {
  return p == Protocol::optimistic ? "optimistic" : "sequencer";
}

struct DeliveryLog {
  std::vector<MsgId> opt;                     // Opt-deliver order
  std::vector<std::pair<MsgId, TOIndex>> to;  // TO-deliver order + index
  // Interleaved event positions (one counter across both callback kinds) used
  // to verify the Local Order property exactly.
  std::size_t event_counter = 0;
  std::unordered_map<MsgId, std::size_t> opt_pos;
  std::unordered_map<MsgId, std::size_t> to_pos;
};

class AbcastHarness {
 public:
  AbcastHarness(Protocol protocol, std::size_t n_sites, NetConfig net_config,
                std::uint64_t seed, OptAbcastConfig opt_config = {})
      : protocol_(protocol), net_(sim_, n_sites, net_config, Rng(seed)), logs_(n_sites) {
    for (SiteId s = 0; s < n_sites; ++s) {
      fds_.push_back(
          std::make_unique<FailureDetector>(sim_, net_, s, FailureDetectorConfig{}));
    }
    for (SiteId s = 0; s < n_sites; ++s) {
      if (protocol == Protocol::optimistic) {
        endpoints_.push_back(
            std::make_unique<OptAbcast>(sim_, net_, *fds_[s], s, opt_config));
      } else {
        endpoints_.push_back(
            std::make_unique<SequencerAbcast>(sim_, net_, s, SequencerAbcastConfig{}));
      }
      DeliveryLog& log = logs_[s];
      endpoints_[s]->set_callbacks(AbcastCallbacks{
          [&log](const Message& m) {
            log.opt_pos[m.id] = log.event_counter++;
            log.opt.push_back(m.id);
          },
          [&log](const MsgId& id, TOIndex index) {
            log.to_pos[id] = log.event_counter++;
            log.to.emplace_back(id, index);
          },
      });
    }
    for (auto& fd : fds_) fd->start();
  }

  Simulator& sim() { return sim_; }
  Network& net() { return net_; }
  AtomicBroadcast& endpoint(SiteId s) { return *endpoints_[s]; }
  const DeliveryLog& log(SiteId s) const { return logs_[s]; }
  std::size_t site_count() const { return logs_.size(); }

  /// Broadcasts `count` messages from rotating senders spaced `gap` apart.
  void broadcast_stream(std::uint64_t count, SimTime gap, SimTime start = 0) {
    for (std::uint64_t i = 0; i < count; ++i) {
      const SiteId sender = static_cast<SiteId>(i % site_count());
      sim_.schedule_at(start + static_cast<SimTime>(i) * gap, [this, sender, i] {
        endpoints_[sender]->broadcast(std::make_shared<NumberedPayload>(i));
      });
    }
  }

  /// Asserts the five properties over `sites` (defaults to all), expecting
  /// `expected` messages delivered everywhere.
  void check_properties(std::uint64_t expected, std::vector<SiteId> sites = {}) {
    if (sites.empty()) {
      for (SiteId s = 0; s < site_count(); ++s) sites.push_back(s);
    }
    const DeliveryLog& ref = logs_[sites[0]];

    for (SiteId s : sites) {
      const DeliveryLog& log = logs_[s];
      // Termination + Global Agreement: everything reaches every site, both
      // optimistically and definitively.
      ASSERT_EQ(log.opt.size(), expected) << "site " << s << " opt count";
      ASSERT_EQ(log.to.size(), expected) << "site " << s << " TO count";
      // Local Agreement: every Opt-delivered message was TO-delivered (counts
      // equal and TO ids form the same set as opt ids).
      std::unordered_map<MsgId, int> balance;
      for (const MsgId& id : log.opt) ++balance[id];
      for (const auto& [id, index] : log.to) --balance[id];
      for (const auto& [id, v] : balance) {
        ASSERT_EQ(v, 0) << "site " << s << ": Opt/TO sets differ";
      }
      // Global Order: identical TO sequence (ids and indices) at all sites.
      ASSERT_EQ(log.to.size(), ref.to.size());
      for (std::size_t i = 0; i < log.to.size(); ++i) {
        EXPECT_EQ(log.to[i].first, ref.to[i].first)
            << "site " << s << " TO position " << i << " differs from site " << sites[0];
        EXPECT_EQ(log.to[i].second, ref.to[i].second) << "definitive index differs";
        EXPECT_EQ(log.to[i].second, i + 1) << "indices must be contiguous from 1";
      }
      // Local Order: a site Opt-delivers m strictly before TO-delivering m.
      for (const auto& [id, index] : log.to) {
        ASSERT_TRUE(log.opt_pos.contains(id))
            << "site " << s << " TO-delivered a message never Opt-delivered";
        EXPECT_LT(log.opt_pos.at(id), log.to_pos.at(id))
            << "site " << s << " violated Local Order";
      }
    }
  }

 private:
  Protocol protocol_;
  Simulator sim_;
  Network net_;
  std::vector<std::unique_ptr<FailureDetector>> fds_;
  std::vector<std::unique_ptr<AtomicBroadcast>> endpoints_;
  std::vector<DeliveryLog> logs_;
};

}  // namespace otpdb::test
