// Network-partition fault injection: a minority partition makes no progress
// (no split brain), the majority side keeps committing, and after healing the
// minority catches up through the normal consensus traffic - all while
// staying 1-copy-serializable.
#include <gtest/gtest.h>

#include "checker/history.h"
#include "core/cluster.h"
#include "workload/workload.h"

namespace otpdb {
namespace {

ClusterConfig partition_config(std::uint64_t seed) {
  ClusterConfig config;
  config.n_sites = 5;
  config.n_classes = 4;
  config.seed = seed;
  config.opt.consensus.round_timeout = 15 * kMillisecond;
  return config;
}

TEST(Partition, MinoritySideStallsNoSplitBrain) {
  Cluster cluster(partition_config(1));
  const ProcId rmw = register_rmw_procedure(cluster.procedures(), cluster.catalog());
  cluster.net().partition({0, 1, 2}, {3, 4});
  // Submissions on both sides of the split.
  for (int i = 0; i < 20; ++i) {
    cluster.sim().schedule_at(i * 10 * kMillisecond, [&cluster, rmw, i] {
      TxnArgs args;
      args.ints = {1, 0};
      cluster.replica(static_cast<SiteId>(i % 5))
          .submit_update(rmw, 0, args, kMillisecond);
    });
  }
  cluster.run_for(2 * kSecond);
  // Majority side commits its own submissions; minority commits nothing
  // (consensus needs 3 of 5).
  EXPECT_GT(cluster.replica(0).metrics().committed, 0u);
  EXPECT_EQ(cluster.replica(3).metrics().committed, 0u) << "minority must not decide";
  EXPECT_EQ(cluster.replica(4).metrics().committed, 0u);
  // No divergence: the majority sites agree among themselves.
  EXPECT_EQ(cluster.replica(0).metrics().committed, cluster.replica(1).metrics().committed);
  EXPECT_EQ(cluster.replica(0).metrics().committed, cluster.replica(2).metrics().committed);
}

TEST(Partition, HealingLetsTheMinorityCatchUp) {
  Cluster cluster(partition_config(2));
  HistoryRecorder recorder(cluster);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 60;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.duration = 2 * kSecond;
  WorkloadDriver driver(cluster, wl, 3);
  driver.start();

  cluster.sim().schedule_at(300 * kMillisecond,
                            [&cluster] { cluster.net().partition({0, 1, 2}, {3, 4}); });
  cluster.sim().schedule_at(900 * kMillisecond, [&cluster] { cluster.net().heal_partition(); });
  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(180 * kSecond)) << "cluster must drain after healing";
  cluster.run_for(2 * kSecond);

  // After healing, all five sites hold consistent histories; the isolated
  // sites' logs are consistent prefixes or full copies of the majority's.
  const CheckResult check = check_one_copy_serializability(recorder.site_logs());
  EXPECT_TRUE(check.ok()) << check.summary();
  // The minority sites resumed committing after the heal.
  EXPECT_GT(cluster.replica(3).metrics().committed, 0u);
  EXPECT_EQ(cluster.replica(3).metrics().committed, cluster.replica(0).metrics().committed)
      << "catch-up must be complete";
}

TEST(Partition, RepeatedSplitsAndHeals) {
  Cluster cluster(partition_config(3));
  HistoryRecorder recorder(cluster);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 50;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.duration = 3 * kSecond;
  WorkloadDriver driver(cluster, wl, 5);
  driver.start();
  // Three split/heal cycles with different minorities.
  cluster.sim().schedule_at(300 * kMillisecond,
                            [&cluster] { cluster.net().partition({0, 1, 2}, {3, 4}); });
  cluster.sim().schedule_at(700 * kMillisecond, [&cluster] { cluster.net().heal_partition(); });
  cluster.sim().schedule_at(1200 * kMillisecond,
                            [&cluster] { cluster.net().partition({1, 2, 3}, {0, 4}); });
  cluster.sim().schedule_at(1600 * kMillisecond, [&cluster] { cluster.net().heal_partition(); });
  cluster.sim().schedule_at(2100 * kMillisecond,
                            [&cluster] { cluster.net().partition({0, 2, 4}, {1, 3}); });
  cluster.sim().schedule_at(2500 * kMillisecond, [&cluster] { cluster.net().heal_partition(); });
  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(180 * kSecond));
  cluster.run_for(2 * kSecond);

  const CheckResult check = check_one_copy_serializability(recorder.site_logs());
  EXPECT_TRUE(check.ok()) << check.summary();
  std::vector<const VersionedStore*> stores;
  for (SiteId s = 0; s < cluster.site_count(); ++s) stores.push_back(&cluster.store(s));
  EXPECT_TRUE(compare_final_states(stores, cluster.catalog()).ok());
}

}  // namespace
}  // namespace otpdb
