// Property tests for OptAbcast's pipelined configuration (max_outstanding > 1)
// and for the duplicate-decision handling it requires: a message proposed for
// stage r+1 at one site can be decided by stage r elsewhere; delivery must
// dedupe deterministically. The default configuration is sequential, so this
// suite exists to keep the general machinery honest.
#include <gtest/gtest.h>

#include "abcast_harness.h"
#include "abcast/opt_abcast.h"

namespace otpdb::test {
namespace {

NetConfig turbulent() {
  NetConfig cfg;
  cfg.hiccup_prob = 0.25;
  cfg.hiccup_mean = 2 * kMillisecond;
  cfg.noise_max = 150 * kMicrosecond;
  return cfg;
}

OptAbcastConfig pipelined(std::size_t depth) {
  OptAbcastConfig cfg;
  cfg.max_outstanding_stages = depth;
  return cfg;
}

class PipelineProperties : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(PipelineProperties, AllFivePropertiesHold) {
  const auto [depth, seed] = GetParam();
  AbcastHarness h(Protocol::optimistic, 4, turbulent(), seed, pipelined(depth));
  h.broadcast_stream(150, 500 * kMicrosecond);  // fast stream: stages overlap
  h.sim().run_until(30 * kSecond);
  h.check_properties(150);
}

INSTANTIATE_TEST_SUITE_P(
    DepthsAndSeeds, PipelineProperties,
    ::testing::Combine(::testing::Values(std::size_t{2}, std::size_t{4}),
                       ::testing::Values(21u, 22u, 23u, 24u)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, std::uint64_t>>& param_info) {
      return "depth" + std::to_string(std::get<0>(param_info.param)) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(PipelineProperties, BurstTrafficWithDepth4) {
  AbcastHarness h(Protocol::optimistic, 5, turbulent(), 99, pipelined(4));
  // Five sites blasting bursts: maximal stage overlap and duplicate pressure.
  for (int burst = 0; burst < 20; ++burst) {
    for (SiteId s = 0; s < 5; ++s) {
      h.sim().schedule_at(burst * 700 * kMicrosecond, [&h, s] {
        h.endpoint(s).broadcast(std::make_shared<NumberedPayload>(0));
      });
    }
  }
  h.sim().run_until(30 * kSecond);
  h.check_properties(100);
}

TEST(PipelineProperties, CrashUnderPipelining) {
  AbcastHarness h(Protocol::optimistic, 4, turbulent(), 7, pipelined(4));
  h.broadcast_stream(60, kMillisecond);
  h.sim().schedule_at(20 * kMillisecond, [&h] { h.net().crash(3); });
  h.sim().run_until(60 * kSecond);
  // Survivors agree on identical definitive sequences.
  const auto& ref = h.log(0);
  for (SiteId s : {1u, 2u}) {
    const auto& log = h.log(s);
    ASSERT_EQ(log.to.size(), ref.to.size());
    for (std::size_t i = 0; i < log.to.size(); ++i) {
      EXPECT_EQ(log.to[i].first, ref.to[i].first) << "position " << i;
    }
  }
  EXPECT_GT(ref.to.size(), 40u);
}

}  // namespace
}  // namespace otpdb::test
