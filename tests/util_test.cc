// Unit tests for src/util: deterministic RNG, distributions, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/rng.h"
#include "util/stats.h"

namespace otpdb {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitIsIndependentButDeterministic) {
  Rng a(7), b(7);
  Rng a1 = a.split();
  Rng b1 = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a1.next_u64(), b1.next_u64());
  // The split stream differs from the parent's continuation.
  Rng c(7);
  (void)c.next_u64();
  Rng d(7);
  Rng d1 = d.split();
  EXPECT_NE(c.next_u64(), d1.next_u64());
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 20000; ++i) heads += rng.bernoulli(0.5);
  EXPECT_NEAR(heads / 20000.0, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(23);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(29);
  OnlineStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, NormalAtLeastRespectsFloor) {
  Rng rng(31);
  for (int i = 0; i < 5000; ++i) EXPECT_GE(rng.normal_at_least(0.0, 1.0, -0.5), -0.5);
}

TEST(Rng, ZipfZeroThetaIsUniform) {
  Rng rng(37);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.zipf(4, 0.0)];
  for (int c : counts) EXPECT_NEAR(c / 40000.0, 0.25, 0.02);
}

TEST(Rng, ZipfSkewFavorsLowRanks) {
  Rng rng(41);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.zipf(8, 1.2)];
  EXPECT_GT(counts[0], counts[3]);
  EXPECT_GT(counts[0], counts[7]);
  EXPECT_GT(counts[0], 40000 / 8);
}

TEST(Rng, ZipfAlwaysInRange) {
  Rng rng(43);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(rng.zipf(5, 0.8), 5u);
}

TEST(OnlineStats, BasicMoments) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MergeEqualsConcatenation) {
  Rng rng(47);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5, 3);
    all.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(PercentileTracker, NearestRank) {
  PercentileTracker p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_DOUBLE_EQ(p.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(p.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(p.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(p.percentile(0), 1.0);
}

TEST(PercentileTracker, EmptyReturnsZero) {
  PercentileTracker p;
  EXPECT_EQ(p.percentile(50), 0.0);
}

TEST(PercentileTracker, InterleavedAddAndQuery) {
  PercentileTracker p;
  p.add(5);
  EXPECT_DOUBLE_EQ(p.median(), 5.0);
  p.add(1);
  p.add(9);
  EXPECT_DOUBLE_EQ(p.median(), 5.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1);
  h.add(0);
  h.add(5.5);
  h.add(9.999);
  h.add(10);
  h.add(100);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(5), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, RoundingNeverEscapesTheTopBucket) {
  // Regression: (x - lo)/width can round up to bucket_count() for x just
  // below hi when width = (hi-lo)/buckets is a rounded quotient - that index
  // used to write one past the end of the counts array. Adversarial
  // lo/hi/bucket combinations whose width is not exactly representable:
  const double cases[][2] = {{0.0, 0.7}, {0.1, 0.9}, {-1.3, 1.1}, {0.0, 1e9}, {1e-9, 3e-9}};
  for (const auto& [lo, hi] : cases) {
    for (std::size_t buckets : {1u, 3u, 7u, 10u, 1000u}) {
      Histogram h(lo, hi, buckets);
      // The largest double strictly below hi plus a dense sweep near hi.
      h.add(std::nextafter(hi, lo));
      for (int i = 1; i <= 64; ++i) {
        const double x = hi - (hi - lo) * static_cast<double>(i) / 1e6;
        if (x >= lo && x < hi) h.add(x);
      }
      std::uint64_t in_buckets = 0;
      for (std::size_t b = 0; b < h.bucket_count(); ++b) in_buckets += h.bucket(b);
      EXPECT_EQ(in_buckets + h.underflow() + h.overflow(), h.total())
          << "lo=" << lo << " hi=" << hi << " buckets=" << buckets;
      EXPECT_EQ(h.overflow(), 0u) << "in-range samples must not count as overflow";
    }
  }
}

TEST(Histogram, RenderProducesOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.add(1);
  h.add(1.5);
  const std::string s = h.render();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
}

}  // namespace
}  // namespace otpdb
