// Unit tests for the hierarchical timer wheel (sim/timer_wheel.h):
// quantized-late-never-early firing, O(1) cancel with generation-tagged
// handles, re-arm patterns, far deadlines on coarse levels, and the
// zero-heap-allocation steady-state guarantee.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "sim/timer_wheel.h"
// Defines the counting global operator new (one TU per binary).
#include "util/counting_new.h"

namespace otpdb {
namespace {

TEST(TimerWheel, FiresAtQuantizedDeadlineNeverEarly) {
  Simulator sim;
  TimerWheel wheel(sim, /*tick=*/1000);
  SimTime fired_at = -1;
  wheel.schedule_at(2500, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, 3000);  // next tick boundary >= deadline
}

TEST(TimerWheel, ExactBoundaryDeadlineIsNotDelayed) {
  Simulator sim;
  TimerWheel wheel(sim, /*tick=*/1000);
  SimTime fired_at = -1;
  wheel.schedule_at(4000, [&] { fired_at = sim.now(); });
  sim.run();
  EXPECT_EQ(fired_at, 4000);
}

TEST(TimerWheel, FiresInDeadlineThenArmOrder) {
  Simulator sim;
  TimerWheel wheel(sim, /*tick=*/1000);
  std::vector<int> order;
  wheel.schedule_at(5100, [&] { order.push_back(3); });
  wheel.schedule_at(2100, [&] { order.push_back(1); });
  wheel.schedule_at(2900, [&] { order.push_back(2); });  // same bucket as (1), armed later
  wheel.schedule_at(5900, [&] { order.push_back(4); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(TimerWheel, CancelPreventsFiring) {
  Simulator sim;
  TimerWheel wheel(sim, /*tick=*/1000);
  bool fired = false;
  const TimerWheel::TimerId id = wheel.schedule_at(3000, [&] { fired = true; });
  EXPECT_TRUE(wheel.armed(id));
  EXPECT_EQ(wheel.armed_count(), 1u);
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.armed(id));
  EXPECT_EQ(wheel.armed_count(), 0u);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(TimerWheel, StaleCancelIsANoOp) {
  Simulator sim;
  TimerWheel wheel(sim, /*tick=*/1000);
  int fires = 0;
  const TimerWheel::TimerId id = wheel.schedule_at(1000, [&] { ++fires; });
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(wheel.cancel(id));  // already fired
  // The recycled slot must not be cancellable through the stale handle.
  bool second = false;
  wheel.schedule_at(sim.now() + 1000, [&] { second = true; });
  EXPECT_FALSE(wheel.cancel(id));
  sim.run();
  EXPECT_TRUE(second);
  EXPECT_FALSE(wheel.cancel(TimerWheel::TimerId{}));  // null handle
}

TEST(TimerWheel, FarDeadlinesLandOnCoarseLevelsAndStillFireOnTime) {
  Simulator sim;
  TimerWheel wheel(sim, /*tick=*/1000);
  // Level 0 spans 64 ticks, level 1 spans 64^2, level 2 is unbounded.
  std::vector<std::pair<SimTime, SimTime>> fired;  // (deadline, fired_at)
  for (SimTime deadline : {SimTime{63'000}, SimTime{64'000}, SimTime{4'095'000},
                           SimTime{4'096'000}, SimTime{900'000'000}, SimTime{90'000'000'000}}) {
    wheel.schedule_at(deadline, [&fired, deadline, &sim] {
      fired.emplace_back(deadline, sim.now());
    });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 6u);
  for (const auto& [deadline, at] : fired) {
    EXPECT_EQ(at, deadline) << "tick-aligned deadlines fire exactly";
  }
}

TEST(TimerWheel, RearmFromCallback) {
  Simulator sim;
  TimerWheel wheel(sim, /*tick=*/1000);
  int fires = 0;
  std::function<void()> rearm = [&] {
    ++fires;
    if (fires < 5) wheel.schedule_after(10'000, [&] { rearm(); });
  };
  wheel.schedule_after(10'000, [&] { rearm(); });
  sim.run();
  EXPECT_EQ(fires, 5);
  EXPECT_EQ(sim.now(), 50'000);
}

TEST(TimerWheel, OnlyOneSimulatorEventPendingForManyTimers) {
  Simulator sim;
  TimerWheel wheel(sim, /*tick=*/1000);
  std::vector<TimerWheel::TimerId> ids;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(wheel.schedule_at(1000 * (i + 1), [] {}));
  }
  EXPECT_EQ(wheel.armed_count(), 500u);
  EXPECT_EQ(sim.pending(), 1u) << "one pump event, regardless of armed timers";
  for (const auto& id : ids) wheel.cancel(id);
  sim.run();  // the stale pump fires, finds nothing, goes idle
  EXPECT_EQ(wheel.armed_count(), 0u);
  EXPECT_EQ(sim.pending(), 0u);
}

/// The wheel's reason to exist: arm/cancel churn (retransmission timers that
/// almost always get acked) must not touch the heap once pools are warm.
TEST(TimerWheel, SteadyStateChurnPerformsZeroHeapAllocations) {
  Simulator sim;
  TimerWheel wheel(sim, /*tick=*/256 * kMicrosecond);

  // Warm-up: grow the node pool, the free list, and the simulator's slot
  // pool to steady-state size.
  std::vector<TimerWheel::TimerId> live;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 64; ++i) {
      live.push_back(wheel.schedule_after((i + 1) * kMillisecond, [] {}));
    }
    for (size_t i = 0; i < live.size(); i += 2) wheel.cancel(live[i]);
    sim.run();
    live.clear();
  }

  const std::uint64_t before = heap_alloc_count.load();
  for (int round = 0; round < 100; ++round) {
    // The canonical life cycle: arm a batch, cancel most (the "ack arrived"
    // path), let the rest fire, repeat.
    for (int i = 0; i < 64; ++i) {
      live.push_back(wheel.schedule_after((i + 1) * kMillisecond, [] {}));
    }
    for (size_t i = 0; i < live.size(); ++i) {
      if (i % 4 != 0) wheel.cancel(live[i]);
    }
    sim.run();
    live.clear();
  }
  EXPECT_EQ(heap_alloc_count.load() - before, 0u)
      << "timer wheel steady-state churn must be allocation-free";
}

}  // namespace
}  // namespace otpdb
