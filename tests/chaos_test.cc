// Chaos schedule: randomized crash/recovery sequences, network turbulence and
// load on an OTP cluster, with the full correctness battery applied at the
// end. Each seed generates a different fault schedule; the invariants
// (Theorem 4.2 serializability, state convergence, exact conservation) must
// hold on every one.
#include <gtest/gtest.h>

#include "checker/history.h"
#include "core/cluster.h"
#include "util/rng.h"
#include "workload/tpcc_lite.h"

namespace otpdb {
namespace {

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, InvariantsSurviveRandomFaultSchedules) {
  const std::uint64_t seed = GetParam();
  Rng chaos(seed * 7919);

  ClusterConfig config;
  config.n_sites = 5;  // tolerate f = 2
  config.n_classes = 4;
  tpcc::Layout layout;
  config.objects_per_class = layout.objects_per_warehouse();
  config.seed = seed;
  config.net.hiccup_prob = chaos.uniform_double(0.02, 0.25);
  config.net.hiccup_mean = chaos.uniform_int(1, 4) * kMillisecond;
  config.opt.consensus.round_timeout = 15 * kMillisecond;
  Cluster cluster(config);
  HistoryRecorder recorder(cluster);

  tpcc::MixConfig mix;
  mix.txn_per_second_per_site = 60;
  mix.duration = 2 * kSecond;
  tpcc::TpccDriver driver(cluster, layout, mix, seed + 5);
  driver.start();

  // Random fault schedule: 2-3 crash/recover episodes on sites 3 and 4
  // (clients submit at sites 0-2, which stay up, so no requests are lost
  // with their acceptor).
  const int episodes = static_cast<int>(chaos.uniform_int(2, 3));
  SimTime t = 200 * kMillisecond;
  for (int e = 0; e < episodes; ++e) {
    const SiteId victim = static_cast<SiteId>(chaos.uniform_int(3, 4));
    const SimTime down_at = t + chaos.uniform_int(0, 200) * kMillisecond;
    const SimTime up_at = down_at + chaos.uniform_int(150, 500) * kMillisecond;
    cluster.sim().schedule_at(down_at, [&cluster, victim] {
      if (!cluster.net().crashed(victim)) cluster.crash_site(victim);
    });
    cluster.sim().schedule_at(up_at, [&cluster, victim] {
      if (cluster.net().crashed(victim)) cluster.recover_site(victim);
    });
    t = up_at + 100 * kMillisecond;
  }

  cluster.run_for(std::max<SimTime>(mix.duration, t) + kSecond);
  ASSERT_TRUE(cluster.quiesce(180 * kSecond)) << "seed " << seed;
  cluster.run_for(2 * kSecond);  // settle recoveries

  // Correctness battery.
  const CheckResult serializability = check_one_copy_serializability(recorder.site_logs());
  EXPECT_TRUE(serializability.ok()) << "seed " << seed << ": " << serializability.summary();

  std::vector<const VersionedStore*> stores;
  for (SiteId s = 0; s < cluster.site_count(); ++s) stores.push_back(&cluster.store(s));
  const CheckResult convergence = compare_final_states(stores, cluster.catalog());
  EXPECT_TRUE(convergence.ok()) << "seed " << seed << ": " << convergence.summary();

  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    const auto violations = driver.audit(s);
    EXPECT_TRUE(violations.empty()) << "seed " << seed << " site " << s << ": "
                                    << (violations.empty() ? "" : violations[0]);
  }
  // The always-up sites committed everything that was submitted there.
  EXPECT_GT(cluster.replica(0).metrics().committed, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace otpdb
