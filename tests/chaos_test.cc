// Chaos schedule: randomized crash/recovery sequences, network turbulence and
// load on an OTP cluster, with the full correctness battery applied at the
// end. Each seed generates a different fault schedule; the invariants
// (Theorem 4.2 serializability, state convergence, exact conservation) must
// hold on every one. The sweep runs twice: once on the in-memory backend and
// once on the durable WAL backend, where the same schedules must additionally
// leave every surviving site's log replayable.
#include <gtest/gtest.h>

#include <algorithm>

#include "checker/history.h"
#include "core/cluster.h"
#include "db/durable_store.h"
#include "net/fault_plan.h"
#include "util/rng.h"
#include "workload/tpcc_lite.h"

namespace otpdb {
namespace {

void run_chaos_schedule(std::uint64_t seed, bool durable) {
  Rng chaos(seed * 7919);

  ClusterConfig config;
  config.n_sites = 5;  // tolerate f = 2
  config.n_classes = 4;
  tpcc::Layout layout;
  config.objects_per_class = layout.objects_per_warehouse();
  config.seed = seed;
  config.net.hiccup_prob = chaos.uniform_double(0.02, 0.25);
  config.net.hiccup_mean = chaos.uniform_int(1, 4) * kMillisecond;
  config.opt.consensus.round_timeout = 15 * kMillisecond;
  if (durable) config.storage.backend = StorageBackendKind::durable;

  // Network chaos plane riding on top of the crash schedule: every run draws
  // duplication and bounded reordering, and half the runs add a flapping or
  // gray link between always-up sites. The invariants must not notice.
  const SimTime horizon = 3 * kSecond;
  config.chaos.plan.add(FaultPlan::duplicate(chaos.uniform_double(0.05, 0.30), 0,
                                             3 * kMillisecond, 0, horizon));
  config.chaos.plan.add(FaultPlan::reorder(chaos.uniform_double(0.05, 0.20), kMillisecond,
                                           8 * kMillisecond, 0, horizon));
  if (chaos.bernoulli(0.5)) {
    config.chaos.plan.add(FaultPlan::flap({0}, {1}, chaos.uniform_int(80, 160) * kMillisecond,
                                          0.4, 300 * kMillisecond, 1500 * kMillisecond));
  } else {
    config.chaos.plan.add(FaultPlan::gray({1}, {2}, 2 * kMillisecond, 20 * kMillisecond,
                                          300 * kMillisecond, 1500 * kMillisecond));
  }

  Cluster cluster(config);
  HistoryRecorder recorder(cluster);

  tpcc::MixConfig mix;
  mix.txn_per_second_per_site = 60;
  mix.duration = 2 * kSecond;
  tpcc::TpccDriver driver(cluster, layout, mix, seed + 5);
  driver.start();

  // Random fault schedule: 2-3 crash/recover episodes on sites 3 and 4
  // (clients submit at sites 0-2, which stay up, so no requests are lost
  // with their acceptor).
  const int episodes = static_cast<int>(chaos.uniform_int(2, 3));
  SimTime t = 200 * kMillisecond;
  for (int e = 0; e < episodes; ++e) {
    const SiteId victim = static_cast<SiteId>(chaos.uniform_int(3, 4));
    const SimTime down_at = t + chaos.uniform_int(0, 200) * kMillisecond;
    const SimTime up_at = down_at + chaos.uniform_int(150, 500) * kMillisecond;
    cluster.sim().schedule_at(down_at, [&cluster, victim] {
      if (!cluster.net().crashed(victim)) cluster.crash_site(victim);
    });
    cluster.sim().schedule_at(up_at, [&cluster, victim] {
      if (cluster.net().crashed(victim)) cluster.recover_site(victim);
    });
    t = up_at + 100 * kMillisecond;
  }

  cluster.run_for(std::max<SimTime>(mix.duration, t) + kSecond);
  ASSERT_TRUE(cluster.quiesce(180 * kSecond)) << "seed " << seed;
  cluster.run_for(2 * kSecond);  // settle recoveries

  // Correctness battery.
  const CheckResult serializability = check_one_copy_serializability(recorder.site_logs());
  EXPECT_TRUE(serializability.ok()) << "seed " << seed << ": " << serializability.summary();

  std::vector<const VersionedStore*> stores;
  for (SiteId s = 0; s < cluster.site_count(); ++s) stores.push_back(&cluster.store(s));
  const CheckResult convergence = compare_final_states(stores, cluster.catalog());
  EXPECT_TRUE(convergence.ok()) << "seed " << seed << ": " << convergence.summary();

  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    const auto violations = driver.audit(s);
    EXPECT_TRUE(violations.empty()) << "seed " << seed << " site " << s << ": "
                                    << (violations.empty() ? "" : violations[0]);
  }
  // The always-up sites committed everything that was submitted there.
  EXPECT_GT(cluster.replica(0).metrics().committed, 100u);
  // Dup/reorder clauses fired and the transport swallowed every duplicate it
  // saw (copies still in flight at the horizon are never seen, hence <=).
  const ChaosStats& net_chaos = cluster.chaos_stats();
  EXPECT_GT(net_chaos.duplicates_injected, 0u) << "seed " << seed;
  EXPECT_GT(net_chaos.reorders_injected, 0u) << "seed " << seed;
  EXPECT_LE(net_chaos.duplicates_suppressed, net_chaos.duplicates_injected);

  if (durable) {
    // Every always-up site's durable tier stayed healthy (no injector armed
    // here - network chaos must never corrupt the WAL) and its watermark
    // reached the commit log.
    for (SiteId s = 0; s < 3; ++s) {
      const auto* store = dynamic_cast<const DurableStore*>(&cluster.storage(s));
      ASSERT_NE(store, nullptr);
      EXPECT_EQ(store->health(), StorageHealth::ok) << "seed " << seed << " site " << s;
      EXPECT_EQ(cluster.wal_stats(s)->io_errors, 0u) << "seed " << seed << " site " << s;
    }
  }
}

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, InvariantsSurviveRandomFaultSchedules) {
  run_chaos_schedule(GetParam(), /*durable=*/false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

class DurableChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DurableChaosSweep, InvariantsSurviveRandomFaultSchedulesOnDisk) {
  run_chaos_schedule(GetParam(), /*durable=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DurableChaosSweep, ::testing::Values(1u, 3u, 5u, 7u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& param_info) {
                           return "seed" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace otpdb
