// Unit tests for the command-line flag parser.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/flags.h"

namespace otpdb {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  for (const char* a : args) argv.push_back(a);
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags f = parse({"--sites=4", "--rate=12.5", "--engine=lazy"});
  EXPECT_EQ(f.get_int("sites", 0), 4);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0), 12.5);
  EXPECT_EQ(f.get("engine", ""), "lazy");
}

TEST(Flags, SpaceForm) {
  const Flags f = parse({"--sites", "8", "--engine", "otp"});
  EXPECT_EQ(f.get_int("sites", 0), 8);
  EXPECT_EQ(f.get("engine", ""), "otp");
}

TEST(Flags, BareBoolean) {
  const Flags f = parse({"--verbose", "--quiet=false"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("quiet", true));
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(Flags, BooleanSpellings) {
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=no"}).get_bool("x", true));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
}

TEST(Flags, Positionals) {
  const Flags f = parse({"run", "--sites=2", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "run");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, Fallbacks) {
  const Flags f = parse({});
  EXPECT_EQ(f.get("absent", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("absent", 9), 9);
  EXPECT_FALSE(f.has("absent"));
}

TEST(Flags, KeysEnumerates) {
  const Flags f = parse({"--b=1", "--a=2"});
  const auto keys = f.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");  // sorted: emission order is contractual
  EXPECT_EQ(keys[1], "b");
}

TEST(Flags, NegativeNumberAsValue) {
  const Flags f = parse({"--crash-site", "-1"});
  // "-1" does not start with "--", so the space form consumes it.
  EXPECT_EQ(f.get_int("crash-site", 0), -1);
}

TEST(Flags, KeysSortedAndStableAtScale) {
  // values_ is an unordered_map: enough keys that hash-order emission would
  // almost surely differ from lexicographic. keys() must sort regardless of
  // insertion order, and repeat parses of permuted argv must agree - this is
  // what keeps --help and unknown-flag listings byte-identical across runs.
  std::vector<std::string> owned;
  for (int i = 31; i >= 0; --i) owned.push_back("--flag" + std::to_string(i) + "=v");
  std::vector<const char*> fwd = {"prog"}, rev = {"prog"};
  for (const auto& a : owned) fwd.push_back(a.c_str());
  for (auto it = owned.rbegin(); it != owned.rend(); ++it) rev.push_back(it->c_str());
  const Flags parsed_fwd(static_cast<int>(fwd.size()), fwd.data());
  const Flags parsed_rev(static_cast<int>(rev.size()), rev.data());
  const auto keys = parsed_fwd.keys();
  ASSERT_EQ(keys.size(), owned.size());
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  EXPECT_EQ(keys, parsed_rev.keys());
}

}  // namespace
}  // namespace otpdb
