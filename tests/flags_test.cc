// Unit tests for the command-line flag parser.
#include <gtest/gtest.h>

#include "util/flags.h"

namespace otpdb {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  for (const char* a : args) argv.push_back(a);
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  const Flags f = parse({"--sites=4", "--rate=12.5", "--engine=lazy"});
  EXPECT_EQ(f.get_int("sites", 0), 4);
  EXPECT_DOUBLE_EQ(f.get_double("rate", 0), 12.5);
  EXPECT_EQ(f.get("engine", ""), "lazy");
}

TEST(Flags, SpaceForm) {
  const Flags f = parse({"--sites", "8", "--engine", "otp"});
  EXPECT_EQ(f.get_int("sites", 0), 8);
  EXPECT_EQ(f.get("engine", ""), "otp");
}

TEST(Flags, BareBoolean) {
  const Flags f = parse({"--verbose", "--quiet=false"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_FALSE(f.get_bool("quiet", true));
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(Flags, BooleanSpellings) {
  EXPECT_FALSE(parse({"--x=0"}).get_bool("x", true));
  EXPECT_FALSE(parse({"--x=no"}).get_bool("x", true));
  EXPECT_TRUE(parse({"--x=yes"}).get_bool("x", false));
}

TEST(Flags, Positionals) {
  const Flags f = parse({"run", "--sites=2", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "run");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, Fallbacks) {
  const Flags f = parse({});
  EXPECT_EQ(f.get("absent", "dflt"), "dflt");
  EXPECT_EQ(f.get_int("absent", 9), 9);
  EXPECT_FALSE(f.has("absent"));
}

TEST(Flags, KeysEnumerates) {
  const Flags f = parse({"--b=1", "--a=2"});
  const auto keys = f.keys();
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "a");  // map order
  EXPECT_EQ(keys[1], "b");
}

TEST(Flags, NegativeNumberAsValue) {
  const Flags f = parse({"--crash-site", "-1"});
  // "-1" does not start with "--", so the space form consumes it.
  EXPECT_EQ(f.get_int("crash-site", 0), -1);
}

}  // namespace
}  // namespace otpdb
