// Unit tests for the database substrate: versioned store (snapshots, commit,
// undo, pruning), partition catalog, stored procedures and contexts.
#include <gtest/gtest.h>

#include "db/partition.h"
#include "db/procedures.h"
#include "db/value.h"
#include "db/versioned_store.h"

namespace otpdb {
namespace {

constexpr TxnId kTxnA = 0;
constexpr TxnId kTxnB = 1;

TEST(Value, Conversions) {
  EXPECT_EQ(as_int(Value{std::int64_t{42}}), 42);
  EXPECT_EQ(as_int(Value{3.9}), 3);
  EXPECT_EQ(as_int(Value{std::string("x")}), 0);
  EXPECT_DOUBLE_EQ(as_double(Value{std::int64_t{2}}), 2.0);
  EXPECT_EQ(to_display_string(Value{std::int64_t{7}}), "7");
  EXPECT_EQ(to_display_string(Value{std::string("hi")}), "hi");
}

TEST(PartitionCatalog, ClassOwnership) {
  PartitionCatalog catalog(4, 10);
  EXPECT_EQ(catalog.class_count(), 4u);
  EXPECT_EQ(catalog.object_count(), 40u);
  EXPECT_EQ(catalog.class_of(0), 0u);
  EXPECT_EQ(catalog.class_of(9), 0u);
  EXPECT_EQ(catalog.class_of(10), 1u);
  EXPECT_EQ(catalog.class_of(39), 3u);
  EXPECT_EQ(catalog.object(2, 5), 25u);
  EXPECT_EQ(catalog.class_of(catalog.object(3, 9)), 3u);
}

TEST(PartitionCatalog, OutOfRangeObjectDies) {
  PartitionCatalog catalog(2, 10);
  EXPECT_DEATH((void)catalog.class_of(20), "outside every partition");
}

TEST(VersionedStore, ReadLatestAfterLoad) {
  VersionedStore store;
  store.load(1, Value{std::int64_t{5}});
  EXPECT_EQ(as_int(*store.read_latest(1)), 5);
  EXPECT_FALSE(store.read_latest(2).has_value());
}

TEST(VersionedStore, ProvisionalInvisibleUntilCommit) {
  VersionedStore store;
  store.load(1, Value{std::int64_t{5}});
  store.write(kTxnA, 1, Value{std::int64_t{6}});
  EXPECT_EQ(as_int(*store.read_latest(1)), 5) << "uncommitted writes must be private";
  EXPECT_EQ(as_int(*store.read_for_txn(kTxnA, 1)), 6) << "...but visible to the writer";
  EXPECT_EQ(as_int(*store.read_for_txn(kTxnB, 1)), 5);
  store.commit(kTxnA, 1);
  EXPECT_EQ(as_int(*store.read_latest(1)), 6);
}

TEST(VersionedStore, AbortRollsBack) {
  VersionedStore store;
  store.load(1, Value{std::int64_t{5}});
  store.write(kTxnA, 1, Value{std::int64_t{99}});
  store.abort(kTxnA);
  EXPECT_EQ(as_int(*store.read_latest(1)), 5);
  EXPECT_EQ(as_int(*store.read_for_txn(kTxnA, 1)), 5) << "provisional state gone after undo";
  store.commit(kTxnA, 1);  // commit of an undone txn is a no-op
  EXPECT_EQ(as_int(*store.read_latest(1)), 5);
  EXPECT_EQ(store.total_versions(), 1u);
}

TEST(VersionedStore, SnapshotReadsHistoricVersions) {
  VersionedStore store;
  store.load(1, Value{std::int64_t{0}});
  for (TOIndex i = 1; i <= 5; ++i) {
    const TxnId txn = static_cast<TxnId>(i % 2);  // ids recycle across commits
    store.write(txn, 1, Value{static_cast<std::int64_t>(i * 10)});
    store.commit(txn, i);
  }
  EXPECT_EQ(as_int(*store.read_snapshot(1, 0)), 0);
  EXPECT_EQ(as_int(*store.read_snapshot(1, 3)), 30);
  EXPECT_EQ(as_int(*store.read_snapshot(1, 5)), 50);
  EXPECT_EQ(as_int(*store.read_snapshot(1, 99)), 50);
}

TEST(VersionedStore, SnapshotBeforeBirthIsEmpty) {
  VersionedStore store;
  store.write(kTxnA, 7, Value{std::int64_t{1}});
  store.commit(kTxnA, 4);
  EXPECT_FALSE(store.read_snapshot(7, 3).has_value());
  EXPECT_TRUE(store.read_snapshot(7, 4).has_value());
}

TEST(VersionedStore, CommitIndicesMustAscendPerObject) {
  VersionedStore store;
  store.write(kTxnA, 1, Value{std::int64_t{1}});
  store.commit(kTxnA, 5);
  store.write(kTxnB, 1, Value{std::int64_t{2}});
  EXPECT_DEATH(store.commit(kTxnB, 5), "ascend");
}

TEST(VersionedStore, MultiObjectTransaction) {
  VersionedStore store;
  store.write(kTxnA, 1, Value{std::int64_t{1}});
  store.write(kTxnA, 2, Value{std::int64_t{2}});
  const auto writes = store.provisional_writes(kTxnA);
  EXPECT_EQ(writes.size(), 2u);
  store.commit(kTxnA, 1);
  EXPECT_EQ(as_int(*store.read_latest(1)), 1);
  EXPECT_EQ(as_int(*store.read_latest(2)), 2);
  EXPECT_TRUE(store.provisional_writes(kTxnA).empty());
}

TEST(VersionedStore, OverwriteWithinTransactionKeepsLast) {
  VersionedStore store;
  store.write(kTxnA, 1, Value{std::int64_t{1}});
  store.write(kTxnA, 1, Value{std::int64_t{2}});
  store.commit(kTxnA, 1);
  EXPECT_EQ(as_int(*store.read_latest(1)), 2);
  EXPECT_EQ(store.total_versions(), 1u) << "one version per object per txn";
}

TEST(VersionedStore, PruneKeepsSnapshotHorizon) {
  VersionedStore store;
  store.load(1, Value{std::int64_t{0}});
  for (TOIndex i = 1; i <= 10; ++i) {
    const TxnId txn = static_cast<TxnId>(i % 3);  // ids recycle across commits
    store.write(txn, 1, Value{static_cast<std::int64_t>(i)});
    store.commit(txn, i);
  }
  EXPECT_EQ(store.total_versions(), 11u);
  const std::size_t dropped = store.prune(8);
  EXPECT_EQ(dropped, 7u);  // versions 0..6 dropped; 7 survives as horizon version
  EXPECT_EQ(as_int(*store.read_snapshot(1, 8)), 8);
  EXPECT_EQ(as_int(*store.read_snapshot(1, 7)), 7) << "horizon snapshot still readable";
  EXPECT_EQ(as_int(*store.read_latest(1)), 10);
}

TEST(VersionedStore, DoubleLoadDies) {
  VersionedStore store;
  store.load(1, Value{std::int64_t{0}});
  EXPECT_DEATH(store.load(1, Value{std::int64_t{1}}), "load");
}

TEST(ProcedureRegistry, RegistersAndRuns) {
  PartitionCatalog catalog(2, 10);
  VersionedStore store;
  ProcedureRegistry registry;
  const ProcId deposit = registry.add("deposit", [](TxnContext& ctx) {
    const ObjectId account = static_cast<ObjectId>(ctx.args().ints[0]);
    ctx.write(account, ctx.read_int(account) + ctx.args().ints[1]);
  });
  EXPECT_EQ(registry.name(deposit), "deposit");
  EXPECT_EQ(registry.size(), 1u);

  TxnArgs args;
  args.ints = {3, 100};  // account 3 (class 0), amount 100
  TxnContext ctx(store, catalog, kTxnA, 0, args);
  registry.get(deposit)(ctx);
  store.commit(kTxnA, 1);
  EXPECT_EQ(as_int(*store.read_latest(3)), 100);
  EXPECT_EQ(ctx.reads().size(), 1u);
  EXPECT_EQ(ctx.writes().size(), 1u);
}

TEST(ProcedureRegistry, UnknownProcedureDies) {
  ProcedureRegistry registry;
  EXPECT_DEATH((void)registry.get(0), "unknown stored procedure");
}

TEST(TxnContext, EnforcesConflictClassDiscipline) {
  PartitionCatalog catalog(2, 10);
  VersionedStore store;
  TxnArgs args;
  TxnContext ctx(store, catalog, kTxnA, 0, args);
  EXPECT_EQ(ctx.read_int(5), 0);  // class 0: fine, defaults to 0
  EXPECT_DEATH((void)ctx.read(15), "outside its conflict class");
  EXPECT_DEATH(ctx.write(15, Value{std::int64_t{1}}), "outside its conflict class");
}

TEST(TxnContext, ReadsOwnWrites) {
  PartitionCatalog catalog(1, 10);
  VersionedStore store;
  TxnArgs args;
  TxnContext ctx(store, catalog, kTxnA, 0, args);
  ctx.write(1, Value{std::int64_t{41}});
  EXPECT_EQ(ctx.read_int(1), 41);
}

}  // namespace
}  // namespace otpdb
