// Direct unit tests for the snapshot-query engine (paper Section 5).
#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/query_engine.h"
#include "db/partition.h"
#include "db/versioned_store.h"
#include "sim/simulator.h"

namespace otpdb {
namespace {

struct Fixture {
  Fixture() : catalog(2, 8), engine(sim, store, catalog, metrics) {}

  /// Commits value to obj with the given definitive index, with full engine
  /// notification (as a replica would).
  void commit(ObjectId obj, TOIndex index, std::int64_t value) {
    const TxnId txn = 0;  // scratch dense id; released by the commit below
    store.write(txn, obj, Value{value});
    store.commit(txn, index);
    engine.note_to_delivered(catalog.class_of(obj), index);
    engine.note_committed(catalog.class_of(obj), index);
  }

  Simulator sim;
  PartitionCatalog catalog;
  VersionedStore store;
  ReplicaMetrics metrics;
  QueryEngine engine;
};

TEST(QueryEngine, SnapshotBoundTracksClassHistory) {
  Fixture f;
  EXPECT_EQ(f.engine.snapshot_bound(0, 100), 0u);
  f.commit(f.catalog.object(0, 0), 3, 30);
  f.commit(f.catalog.object(1, 0), 5, 50);  // class 1
  f.commit(f.catalog.object(0, 1), 8, 80);
  EXPECT_EQ(f.engine.snapshot_bound(0, 2), 0u);
  EXPECT_EQ(f.engine.snapshot_bound(0, 3), 3u);
  EXPECT_EQ(f.engine.snapshot_bound(0, 7), 3u);
  EXPECT_EQ(f.engine.snapshot_bound(0, 8), 8u);
  EXPECT_EQ(f.engine.snapshot_bound(1, 8), 5u);
  EXPECT_EQ(f.engine.last_to_index(), 8u);
}

TEST(QueryEngine, QueryReadsAtItsSnapshot) {
  Fixture f;
  f.commit(f.catalog.object(0, 0), 1, 10);
  std::int64_t seen = -1;
  f.engine.submit(
      [&](QueryContext& ctx) { seen = ctx.read_int(f.catalog.object(0, 0)); },
      kMillisecond, nullptr);
  // A commit after submission is invisible (snapshot fixed at start).
  f.commit(f.catalog.object(0, 0), 2, 20);
  f.sim.run();
  EXPECT_EQ(seen, 10);
  EXPECT_EQ(f.metrics.queries_done, 1u);
  EXPECT_EQ(f.metrics.query_retries, 0u);
}

TEST(QueryEngine, QueryWaitsForInFlightCommit) {
  Fixture f;
  const ObjectId obj = f.catalog.object(0, 0);
  // TO-delivered but not yet committed: snapshot bound points at index 4.
  f.engine.note_to_delivered(0, 4);
  std::int64_t seen = -1;
  f.engine.submit([&](QueryContext& ctx) { seen = ctx.read_int(obj); }, kMillisecond, nullptr);
  f.sim.run();
  EXPECT_EQ(seen, -1) << "query must block while index 4 is in flight";
  EXPECT_EQ(f.metrics.queries_done, 0u);
  // Commit lands -> query re-runs and sees it.
  const TxnId txn = 0;
  f.store.write(txn, obj, Value{std::int64_t{44}});
  f.store.commit(txn, 4);
  f.engine.note_committed(0, 4);
  f.sim.run();
  EXPECT_EQ(seen, 44);
  EXPECT_EQ(f.metrics.query_retries, 1u);
}

TEST(QueryEngine, ReportCarriesReadsAndAttempts) {
  Fixture f;
  f.commit(f.catalog.object(0, 2), 1, 5);
  QueryReport report;
  f.engine.submit(
      [&](QueryContext& ctx) {
        (void)ctx.read(f.catalog.object(0, 2));
        (void)ctx.read(f.catalog.object(1, 2));
      },
      2 * kMillisecond, [&](const QueryReport& r) { report = r; });
  f.sim.run();
  EXPECT_EQ(report.snapshot_index, 1u);
  EXPECT_EQ(report.attempts, 1u);
  ASSERT_EQ(report.reads.size(), 2u);
  EXPECT_EQ(as_int(report.reads[0].second), 5);
  EXPECT_EQ(as_int(report.reads[1].second), 0);
  EXPECT_GE(report.completed_at - report.submitted_at, 2 * kMillisecond);
}

TEST(QueryEngine, ResetVolatileKeepsWatermarks) {
  Fixture f;
  f.commit(f.catalog.object(0, 0), 7, 70);
  EXPECT_EQ(f.engine.last_committed(0), 7u);
  f.engine.reset_volatile();
  EXPECT_EQ(f.engine.last_to_index(), 0u);
  EXPECT_EQ(f.engine.last_committed(0), 7u) << "durable watermark survives";
  EXPECT_EQ(f.engine.snapshot_bound(0, 100), 0u) << "history is volatile";
}

TEST(QueryEngine, ObjectGranularDomains) {
  // The lock-table engine's configuration: one domain per object.
  Simulator sim;
  PartitionCatalog catalog(1, 4);
  VersionedStore store;
  ReplicaMetrics metrics;
  QueryEngine engine(sim, store, catalog.object_count(),
                     [](ObjectId obj) { return QueryEngine::Domain{obj}; }, metrics);
  const TxnId txn = 0;
  store.write(txn, 2, Value{std::int64_t{9}});
  store.commit(txn, 1);
  engine.advance_to_index(1);
  engine.note_to_delivered(2, 1);
  engine.note_committed(2, 1);
  EXPECT_EQ(engine.snapshot_bound(2, 5), 1u);
  EXPECT_EQ(engine.snapshot_bound(3, 5), 0u) << "other objects unaffected";

  std::int64_t seen = -1;
  engine.submit([&](QueryContext& ctx) { seen = ctx.read_int(2); }, kMillisecond, nullptr);
  sim.run();
  EXPECT_EQ(seen, 9);
}

TEST(QueryEngine, MultipleWaitersOnSameCommit) {
  Fixture f;
  f.engine.note_to_delivered(0, 1);
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    f.engine.submit([&](QueryContext& ctx) { (void)ctx.read(f.catalog.object(0, 0)); },
                    kMillisecond, [&](const QueryReport&) { ++done; });
  }
  f.sim.run();
  EXPECT_EQ(done, 0);
  const TxnId txn = 0;
  f.store.write(txn, f.catalog.object(0, 0), Value{std::int64_t{1}});
  f.store.commit(txn, 1);
  f.engine.note_committed(0, 1);
  f.sim.run();
  EXPECT_EQ(done, 3);
}

TEST(QueryEngine, OutOfCatalogReadDies) {
  Fixture f;
  f.engine.submit([&](QueryContext& ctx) { (void)ctx.read(999); }, kMillisecond, nullptr);
  // The class-domain mapper hits the catalog's partition check ("object
  // outside every partition"); object-domain engines hit the engine's own
  // bound check ("outside the catalogued objects").
  EXPECT_DEATH(f.sim.run(), "outside");
}

}  // namespace
}  // namespace otpdb
