// Crash-recovery tests (paper model: sites can only fail by crashing and
// always recover). A recovered site loses all volatile state and catches up
// by redo replay: decisions from peers' logs, missing bodies fetched on
// demand, transactions re-executed through the normal OTP modules, commits
// below the durable watermark suppressed.
#include <gtest/gtest.h>

#include "abcast/opt_abcast.h"
#include "baseline/conservative_replica.h"
#include "checker/history.h"
#include "core/cluster.h"
#include "db/durable_store.h"
#include "workload/workload.h"

namespace otpdb {
namespace {

ClusterConfig recovery_config(std::uint64_t seed, std::size_t n_sites = 4) {
  ClusterConfig config;
  config.n_sites = n_sites;
  config.n_classes = 4;
  config.objects_per_class = 8;
  config.seed = seed;
  config.net.hiccup_prob = 0.02;
  config.opt.consensus.round_timeout = 15 * kMillisecond;
  return config;
}

std::vector<const VersionedStore*> all_stores(Cluster& cluster) {
  std::vector<const VersionedStore*> stores;
  for (SiteId s = 0; s < cluster.site_count(); ++s) stores.push_back(&cluster.store(s));
  return stores;
}

TEST(Recovery, CrashedSiteCatchesUpToIdenticalState) {
  Cluster cluster(recovery_config(1));
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 80;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.duration = 1200 * kMillisecond;
  WorkloadDriver driver(cluster, wl, 3);
  driver.start();

  cluster.sim().schedule_at(300 * kMillisecond, [&] { cluster.crash_site(3); });
  cluster.sim().schedule_at(700 * kMillisecond, [&] { cluster.recover_site(3); });

  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(120 * kSecond));
  cluster.run_for(kSecond);  // let the catch-up retries settle

  // Site 3 missed hundreds of transactions while down; after catch-up its
  // database is byte-identical to the others.
  const CheckResult convergence = compare_final_states(all_stores(cluster), cluster.catalog());
  EXPECT_TRUE(convergence.ok()) << convergence.summary();
  EXPECT_FALSE(dynamic_cast<OptAbcast&>(cluster.abcast(3)).recovering());
}

TEST(Recovery, ReplayDoesNotDoubleApplyCommittedWork) {
  // Deterministic increments: if replay re-committed pre-crash transactions,
  // counters would overshoot; if it dropped them, they would undershoot.
  Cluster cluster(recovery_config(2, 3));
  const ProcId rmw = register_rmw_procedure(cluster.procedures(), cluster.catalog());
  const int kBefore = 40, kAfter = 40;
  for (int i = 0; i < kBefore; ++i) {
    cluster.sim().schedule_at(i * 4 * kMillisecond, [&cluster, rmw, i] {
      TxnArgs args;
      args.ints = {1, 0};  // +1 to object #0 of the class
      cluster.replica(static_cast<SiteId>(i % 3))
          .submit_update(rmw, static_cast<ClassId>(i % 4), args, kMillisecond);
    });
  }
  cluster.sim().schedule_at(200 * kMillisecond, [&] { cluster.crash_site(2); });
  // More updates while site 2 is down.
  for (int i = 0; i < kAfter; ++i) {
    cluster.sim().schedule_at(250 * kMillisecond + i * 4 * kMillisecond, [&cluster, rmw, i] {
      TxnArgs args;
      args.ints = {1, 0};
      cluster.replica(static_cast<SiteId>(i % 2))
          .submit_update(rmw, static_cast<ClassId>(i % 4), args, kMillisecond);
    });
  }
  cluster.sim().schedule_at(500 * kMillisecond, [&] { cluster.recover_site(2); });
  cluster.run_for(800 * kMillisecond);
  ASSERT_TRUE(cluster.quiesce(60 * kSecond));
  cluster.run_for(kSecond);

  // Every class counter must equal its exact number of increments at all
  // sites - replay suppressed the pre-crash commits and re-ran the rest.
  std::int64_t total = 0;
  for (ClassId c = 0; c < 4; ++c) {
    const ObjectId obj = cluster.catalog().object(c, 0);
    const auto v0 = cluster.store(2).read_latest(obj);
    ASSERT_TRUE(v0.has_value()) << "class " << c;
    total += as_int(*v0);
    for (SiteId s = 0; s < 3; ++s) {
      EXPECT_EQ(cluster.store(s).read_latest(obj), v0) << "class " << c << " site " << s;
    }
  }
  EXPECT_EQ(total, kBefore + kAfter);
}

TEST(Recovery, RecoveredSiteProcessesNewWork) {
  Cluster cluster(recovery_config(3, 3));
  const ProcId rmw = register_rmw_procedure(cluster.procedures(), cluster.catalog());
  cluster.sim().schedule_at(50 * kMillisecond, [&] { cluster.crash_site(1); });
  cluster.sim().schedule_at(200 * kMillisecond, [&] { cluster.recover_site(1); });
  // After recovery, the recovered site accepts and disseminates client work.
  cluster.sim().schedule_at(600 * kMillisecond, [&cluster, rmw] {
    TxnArgs args;
    args.ints = {7, 0};
    cluster.replica(1).submit_update(rmw, 0, args, kMillisecond);
  });
  cluster.run_for(kSecond);
  ASSERT_TRUE(cluster.quiesce(60 * kSecond));
  const ObjectId obj = cluster.catalog().object(0, 0);
  for (SiteId s = 0; s < 3; ++s) {
    ASSERT_TRUE(cluster.store(s).read_latest(obj).has_value());
    EXPECT_EQ(as_int(*cluster.store(s).read_latest(obj)), 7) << "site " << s;
  }
}

TEST(Recovery, QueriesWorkAfterRecovery) {
  Cluster cluster(recovery_config(4, 3));
  const ProcId rmw = register_rmw_procedure(cluster.procedures(), cluster.catalog());
  for (int i = 0; i < 30; ++i) {
    // Submit only at sites 0/1: requests accepted at a crashed site vanish
    // with it (a real client would retry at another replica).
    cluster.sim().schedule_at(i * 5 * kMillisecond, [&cluster, rmw, i] {
      TxnArgs args;
      args.ints = {1, 0};
      cluster.replica(static_cast<SiteId>(i % 2))
          .submit_update(rmw, 0, args, kMillisecond);
    });
  }
  cluster.sim().schedule_at(60 * kMillisecond, [&] { cluster.crash_site(2); });
  cluster.sim().schedule_at(300 * kMillisecond, [&] { cluster.recover_site(2); });

  std::vector<QueryReport> reports;
  cluster.sim().schedule_at(900 * kMillisecond, [&cluster, &reports] {
    cluster.replica(2).submit_query(
        [&cluster](QueryContext& ctx) { (void)ctx.read(cluster.catalog().object(0, 0)); },
        kMillisecond, [&reports](const QueryReport& r) { reports.push_back(r); });
  });
  cluster.run_for(1200 * kMillisecond);
  ASSERT_TRUE(cluster.quiesce(60 * kSecond));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(as_int(reports[0].reads[0].second), 30)
      << "snapshot query at the recovered site must see the full replayed state";
}

TEST(Recovery, RepeatedCrashRecoverCycles) {
  Cluster cluster(recovery_config(5));
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 60;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.duration = 2 * kSecond;
  WorkloadDriver driver(cluster, wl, 6);
  driver.start();
  // Site 3 bounces twice.
  cluster.sim().schedule_at(300 * kMillisecond, [&] { cluster.crash_site(3); });
  cluster.sim().schedule_at(600 * kMillisecond, [&] { cluster.recover_site(3); });
  cluster.sim().schedule_at(1200 * kMillisecond, [&] { cluster.crash_site(3); });
  cluster.sim().schedule_at(1500 * kMillisecond, [&] { cluster.recover_site(3); });
  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(120 * kSecond));
  cluster.run_for(2 * kSecond);
  const CheckResult convergence = compare_final_states(all_stores(cluster), cluster.catalog());
  EXPECT_TRUE(convergence.ok()) << convergence.summary();
}

TEST(Recovery, StaggeredDoubleCrashRecovery) {
  Cluster cluster(recovery_config(6, 5));
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 50;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.duration = 2 * kSecond;
  WorkloadDriver driver(cluster, wl, 8);
  driver.start();
  cluster.sim().schedule_at(300 * kMillisecond, [&] { cluster.crash_site(3); });
  cluster.sim().schedule_at(500 * kMillisecond, [&] { cluster.crash_site(4); });
  cluster.sim().schedule_at(900 * kMillisecond, [&] { cluster.recover_site(3); });
  cluster.sim().schedule_at(1300 * kMillisecond, [&] { cluster.recover_site(4); });
  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(120 * kSecond));
  cluster.run_for(2 * kSecond);
  const CheckResult convergence = compare_final_states(all_stores(cluster), cluster.catalog());
  EXPECT_TRUE(convergence.ok()) << convergence.summary();
}

TEST(Recovery, CrossClassWorkloadSurvivesCrashRecovery) {
  // A site crashes while multi-class (cross-partition) transactions are in
  // flight; the redo replay must suppress every pre-crash commit exactly once
  // across *all* covered class watermarks and re-run the rest, converging to
  // the peers' state.
  Cluster cluster(recovery_config(10));
  HistoryRecorder recorder(cluster);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 70;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.duration = 1500 * kMillisecond;
  wl.cross_class_fraction = 0.35;
  wl.cross_class_span = 2;
  WorkloadDriver driver(cluster, wl, 12);
  driver.start();
  cluster.sim().schedule_at(400 * kMillisecond, [&] { cluster.crash_site(3); });
  cluster.sim().schedule_at(800 * kMillisecond, [&] { cluster.recover_site(3); });
  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(120 * kSecond));
  cluster.run_for(kSecond);

  EXPECT_GT(driver.cross_class_submitted(), 0u);
  const CheckResult convergence = compare_final_states(all_stores(cluster), cluster.catalog());
  EXPECT_TRUE(convergence.ok()) << convergence.summary();
  const CheckResult check = check_one_copy_serializability(recorder.site_logs());
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST(Recovery, ReplayDoesNotDoubleApplyCrossClassWork) {
  // Deterministic cross-class increments (one object per covered class): if
  // replay re-committed or dropped a multi-class transaction in *any* covered
  // partition, a counter would over- or undershoot.
  Cluster cluster(recovery_config(11, 3));
  const ProcId rmw_cross = register_rmw_cross_procedure(cluster.procedures());
  const auto& catalog = cluster.catalog();
  auto submit_pair = [&cluster, &catalog, rmw_cross](SiteId site, ClassId a, ClassId b) {
    TxnArgs args;
    args.ints = {1, static_cast<std::int64_t>(catalog.object(a, 0)),
                 static_cast<std::int64_t>(catalog.object(b, 0))};
    cluster.replica(site).submit_update_multi(rmw_cross, {a, b}, std::move(args),
                                              kMillisecond);
  };
  const int kBefore = 30, kAfter = 30;
  for (int i = 0; i < kBefore; ++i) {
    cluster.sim().schedule_at(i * 5 * kMillisecond, [submit_pair, i] {
      submit_pair(static_cast<SiteId>(i % 3), static_cast<ClassId>(i % 4),
                  static_cast<ClassId>((i + 1) % 4));
    });
  }
  cluster.sim().schedule_at(200 * kMillisecond, [&] { cluster.crash_site(2); });
  for (int i = 0; i < kAfter; ++i) {
    cluster.sim().schedule_at(260 * kMillisecond + i * 5 * kMillisecond, [submit_pair, i] {
      submit_pair(static_cast<SiteId>(i % 2), static_cast<ClassId>(i % 4),
                  static_cast<ClassId>((i + 2) % 4));
    });
  }
  cluster.sim().schedule_at(600 * kMillisecond, [&] { cluster.recover_site(2); });
  cluster.run_for(kSecond);
  ASSERT_TRUE(cluster.quiesce(60 * kSecond));
  cluster.run_for(kSecond);

  // Each transaction increments exactly two class counters; the grand total
  // must equal 2 * (commits that did not vanish with the crashed acceptor).
  // Requests accepted at site 2 before its crash may be lost entirely (a real
  // client retries elsewhere), so compare sites against each other and
  // against site 0's committed history rather than a fixed count.
  std::int64_t total = 0;
  for (ClassId c = 0; c < 4; ++c) {
    const ObjectId obj = cluster.catalog().object(c, 0);
    const auto v0 = cluster.store(2).read_latest(obj);
    ASSERT_TRUE(v0.has_value()) << "class " << c;
    total += as_int(*v0);
    for (SiteId s = 0; s < 3; ++s) {
      EXPECT_EQ(cluster.store(s).read_latest(obj), v0) << "class " << c << " site " << s;
    }
  }
  EXPECT_EQ(total, 2 * static_cast<std::int64_t>(cluster.replica(0).metrics().committed));
}

// --- Durable storage: kill-and-restart from disk -----------------------------

ClusterConfig durable_recovery_config(std::uint64_t seed, std::size_t n_sites = 4) {
  ClusterConfig config = recovery_config(seed, n_sites);
  config.storage.backend = StorageBackendKind::durable;
  return config;
}

ReplicaFactory conservative_factory() {
  return [](const ReplicaDeps& d) {
    return std::make_unique<ConservativeReplica>(d.sim, d.abcast, d.storage, d.catalog,
                                                 d.registry, d.site);
  };
}

TEST(Recovery, DurableRestartFromDiskConvergesWithTombstones) {
  // Kill-and-restart: site 3 loses its RAM, rebuilds the committed prefix
  // from its own checkpoint + WAL, and peers resend only the tail - every
  // definitive index at or below the durable floor arrives as a body-less
  // tombstone instead of a re-executed transaction.
  Cluster cluster(durable_recovery_config(21));
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 80;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.duration = 1200 * kMillisecond;
  WorkloadDriver driver(cluster, wl, 3);
  driver.start();

  cluster.sim().schedule_at(400 * kMillisecond, [&] { cluster.crash_site(3); });
  cluster.sim().schedule_at(800 * kMillisecond, [&] { cluster.restart_site_from_disk(3); });

  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(120 * kSecond));
  cluster.run_for(kSecond);

  const CheckResult convergence = compare_final_states(all_stores(cluster), cluster.catalog());
  EXPECT_TRUE(convergence.ok()) << convergence.summary();
  const auto& abcast = dynamic_cast<OptAbcast&>(cluster.abcast(3));
  EXPECT_FALSE(abcast.recovering());
  EXPECT_GT(abcast.stats().recovery_tombstones, 0u)
      << "the durably committed prefix must be TO-delivered without bodies";
  const WalStats* stats = cluster.wal_stats(3);
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->fsyncs, 0u);
}

TEST(Recovery, DurableRestartFromDiskConservativeEngine) {
  // Same kill-and-restart leg on the conservative (TO-delivery execution)
  // engine: the shared replay-floor/tombstone protocol is engine-agnostic.
  Cluster cluster(durable_recovery_config(22), conservative_factory());
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 80;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.duration = 1200 * kMillisecond;
  WorkloadDriver driver(cluster, wl, 4);
  driver.start();

  cluster.sim().schedule_at(400 * kMillisecond, [&] { cluster.crash_site(2); });
  cluster.sim().schedule_at(800 * kMillisecond, [&] { cluster.restart_site_from_disk(2); });

  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(120 * kSecond));
  cluster.run_for(kSecond);

  const CheckResult convergence = compare_final_states(all_stores(cluster), cluster.catalog());
  EXPECT_TRUE(convergence.ok()) << convergence.summary();
  const auto& abcast = dynamic_cast<OptAbcast&>(cluster.abcast(2));
  EXPECT_FALSE(abcast.recovering());
  EXPECT_GT(abcast.stats().recovery_tombstones, 0u);
}

TEST(Recovery, ConservativeWarmRecoveryConverges) {
  // Warm recovery (RAM survives, volatile protocol state lost) on the
  // conservative engine over the plain memory backend.
  Cluster cluster(recovery_config(23), conservative_factory());
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 70;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.duration = 1200 * kMillisecond;
  WorkloadDriver driver(cluster, wl, 5);
  driver.start();
  cluster.sim().schedule_at(300 * kMillisecond, [&] { cluster.crash_site(3); });
  cluster.sim().schedule_at(700 * kMillisecond, [&] { cluster.recover_site(3); });
  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(120 * kSecond));
  cluster.run_for(kSecond);
  const CheckResult convergence = compare_final_states(all_stores(cluster), cluster.catalog());
  EXPECT_TRUE(convergence.ok()) << convergence.summary();
}

TEST(Recovery, DurableRestartReplaysOwnLogNotPeers) {
  // Deterministic increments; after the restart the recovered site's replica
  // must end at the same counters, and the durable tier must report that the
  // bulk of the state came from its own disk (tombstones ~ durable floor).
  Cluster cluster(durable_recovery_config(24, 3));
  const ProcId rmw = register_rmw_procedure(cluster.procedures(), cluster.catalog());
  const int kBefore = 40, kAfter = 40;
  for (int i = 0; i < kBefore; ++i) {
    cluster.sim().schedule_at(i * 4 * kMillisecond, [&cluster, rmw, i] {
      TxnArgs args;
      args.ints = {1, 0};
      cluster.replica(static_cast<SiteId>(i % 2))
          .submit_update(rmw, static_cast<ClassId>(i % 4), args, kMillisecond);
    });
  }
  cluster.sim().schedule_at(300 * kMillisecond, [&] { cluster.crash_site(2); });
  for (int i = 0; i < kAfter; ++i) {
    cluster.sim().schedule_at(350 * kMillisecond + i * 4 * kMillisecond, [&cluster, rmw, i] {
      TxnArgs args;
      args.ints = {1, 0};
      cluster.replica(static_cast<SiteId>(i % 2))
          .submit_update(rmw, static_cast<ClassId>(i % 4), args, kMillisecond);
    });
  }
  cluster.sim().schedule_at(700 * kMillisecond, [&] { cluster.restart_site_from_disk(2); });
  cluster.run_for(kSecond);
  ASSERT_TRUE(cluster.quiesce(60 * kSecond));
  cluster.run_for(kSecond);

  std::int64_t total = 0;
  for (ClassId c = 0; c < 4; ++c) {
    const ObjectId obj = cluster.catalog().object(c, 0);
    const auto v0 = cluster.store(2).read_latest(obj);
    ASSERT_TRUE(v0.has_value()) << "class " << c;
    total += as_int(*v0);
    for (SiteId s = 0; s < 3; ++s) {
      EXPECT_EQ(cluster.store(s).read_latest(obj), v0) << "class " << c << " site " << s;
    }
  }
  EXPECT_EQ(total, kBefore + kAfter);
  const auto& abcast = dynamic_cast<OptAbcast&>(cluster.abcast(2));
  EXPECT_GT(abcast.stats().recovery_tombstones, 0u);
}

TEST(Recovery, HistoryStaysOneCopySerializableWithRecovery) {
  Cluster cluster(recovery_config(7));
  HistoryRecorder recorder(cluster);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 70;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.duration = 1500 * kMillisecond;
  WorkloadDriver driver(cluster, wl, 9);
  driver.start();
  cluster.sim().schedule_at(400 * kMillisecond, [&] { cluster.crash_site(2); });
  cluster.sim().schedule_at(800 * kMillisecond, [&] { cluster.recover_site(2); });
  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(120 * kSecond));
  cluster.run_for(kSecond);

  // The recovered site's post-recovery commits (the replayed entries are
  // suppressed, so its log is a "hole-free" continuation) must order
  // consistently with everyone else's.
  const CheckResult check = check_one_copy_serializability(recorder.site_logs());
  EXPECT_TRUE(check.ok()) << check.summary();
}

}  // namespace
}  // namespace otpdb
