// Determinism parity for the site-sharded engine (sim/sharded_engine.h).
//
// The engine's contract: a sharded run of one (configuration, seed) is
// bit-for-bit identical for EVERY thread count, because each shard fires its
// events under the plain Simulator's (timestamp, schedule-order) rule and
// every cross-shard insertion happens at a window barrier in a canonical
// (time, sender, seq) order that no worker schedule can perturb. This suite
// pins that: identical commit histories (every field, including commit
// timestamps and write values), identical checker verdicts, and identical
// metric counters across sharded runs with 1, 2, 4 and 8 threads - over both
// class-queue engines, mixed workloads (queries, cross-class updates,
// TPC-C-lite with remote transactions), and loss/partition/crash chaos.
//
// This binary is the payload of the CI TSan job: any data race in the
// barrier/mailbox protocol fails it under -fsanitize=thread.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baseline/conservative_replica.h"
#include "checker/history.h"
#include "core/cluster.h"
#include "db/durable_store.h"
#include "net/topology.h"
#include "workload/tpcc_lite.h"
#include "workload/workload.h"

namespace otpdb {
namespace {

// -- digesting ---------------------------------------------------------------

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void add(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
};

std::uint64_t digest_value(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return static_cast<std::uint64_t>(*i);
  if (const auto* d = std::get_if<double>(&v)) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(*d));
    __builtin_memcpy(&bits, d, sizeof(bits));
    return bits;
  }
  Fnv f;
  for (char c : std::get<std::string>(v)) f.add(static_cast<unsigned char>(c));
  return f.h;
}

/// Every field of every commit record, per site: sensitive to ordering,
/// timing, class sets, and written values alike.
std::vector<std::uint64_t> history_digests(const HistoryRecorder& recorder) {
  std::vector<std::uint64_t> out;
  for (const auto& log : recorder.site_logs()) {
    Fnv f;
    for (const CommitRecord& r : log) {
      f.add(r.txn.sender);
      f.add(r.txn.seq);
      f.add(r.proc);
      f.add(r.klass);
      for (ClassId c : r.classes) f.add(c);
      f.add(r.index);
      f.add(static_cast<std::uint64_t>(r.at));
      for (const auto& [obj, value] : r.writes) {
        f.add(obj);
        f.add(digest_value(value));
      }
    }
    out.push_back(f.h);
  }
  return out;
}

std::uint64_t store_digest(Cluster& cluster) {
  Fnv f;
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    for (ObjectId obj = 0; obj < cluster.catalog().object_count(); ++obj) {
      const auto v = cluster.store(s).read_latest(obj);
      f.add(v ? digest_value(*v) : 0xdeadull);
    }
  }
  return f.h;
}

struct RunResult {
  std::vector<std::uint64_t> history;  // per-site commit-history digests
  std::uint64_t stores = 0;
  std::uint64_t delivered = 0;
  std::uint64_t events = 0;
  std::uint64_t rounds = 0;             // barrier rounds (EngineStats::rounds)
  std::vector<std::uint64_t> counters;  // per-site metric counters, flattened
  bool serializable = false;
  bool converged = false;
  std::uint64_t committed = 0;
};

void collect_metrics(Cluster& cluster, RunResult& out) {
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    const ReplicaMetrics& m = cluster.replica(s).metrics();
    for (std::uint64_t v :
         {m.submitted_updates, m.committed, m.aborts, m.reexecutions, m.mismatch_reorders,
          m.queries_started, m.queries_done, m.query_retries}) {
      out.counters.push_back(v);
    }
    // Latency statistics are doubles accumulated in site-local event order,
    // so even their bit patterns must agree across thread counts.
    out.counters.push_back(static_cast<std::uint64_t>(m.commit_latency_ns.count()));
    double mean = m.commit_latency_ns.mean();
    std::uint64_t bits;
    __builtin_memcpy(&bits, &mean, sizeof(bits));
    out.counters.push_back(bits);
  }
}

ParallelismConfig sharded(unsigned threads) {
  ParallelismConfig p;
  p.threads = threads;
  p.force_sharded = true;  // threads == 1 still runs the sharded windowed loop
  return p;
}

// -- scenarios ---------------------------------------------------------------

enum class EngineKind { otp, conservative };

/// Mixed rmw + cross-class + query workload with message loss, one
/// partition/heal cycle, and (OTP only) a crash/recovery cycle - warm with
/// the memory backend, kill-and-restart-from-disk with the durable one.
RunResult run_mixed(EngineKind engine, unsigned threads, bool chaos, bool durable = false) {
  ClusterConfig config;
  config.n_sites = 5;
  config.n_classes = 8;
  config.seed = 77;
  config.parallel = sharded(threads);
  config.net.loss_prob = chaos ? 0.01 : 0.0;
  if (durable) config.storage.backend = StorageBackendKind::durable;
  auto cluster = engine == EngineKind::conservative
                     ? std::make_unique<Cluster>(config,
                                                 [](const ReplicaDeps& d) {
                                                   return std::make_unique<ConservativeReplica>(
                                                       d.sim, d.abcast, d.storage, d.catalog,
                                                       d.registry, d.site);
                                                 })
                     : std::make_unique<Cluster>(config);
  HistoryRecorder recorder(*cluster);

  WorkloadConfig wl;
  wl.updates_per_second_per_site = 80;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.query_fraction = 0.15;
  wl.cross_class_fraction = 0.2;
  wl.duration = 900 * kMillisecond;
  WorkloadDriver driver(*cluster, wl, 4242);
  driver.start();

  if (chaos) {
    // Chaos is network/control state: schedule it on the hub clock.
    cluster->sim().schedule_at(250 * kMillisecond, [&cluster] {
      cluster->net().partition({0, 1}, {2, 3, 4});
    });
    cluster->sim().schedule_at(450 * kMillisecond,
                               [&cluster] { cluster->net().heal_partition(); });
    if (engine == EngineKind::otp) {
      cluster->sim().schedule_at(550 * kMillisecond, [&cluster] { cluster->crash_site(4); });
      cluster->sim().schedule_at(700 * kMillisecond, [&cluster, durable] {
        if (durable) {
          cluster->restart_site_from_disk(4);
        } else {
          cluster->recover_site(4);
        }
      });
    }
  }

  cluster->run_for(wl.duration + 200 * kMillisecond);
  EXPECT_TRUE(cluster->quiesce(60 * kSecond));

  RunResult out;
  out.history = history_digests(recorder);
  out.stores = store_digest(*cluster);
  out.delivered = cluster->net().delivered_count();
  out.events = cluster->engine()->executed();
  out.rounds = cluster->engine()->stats().rounds;
  out.committed = cluster->total_committed();
  collect_metrics(*cluster, out);
  if (durable) {
    // Durability counters must be thread-count invariant too: group-commit
    // scheduling rides on deterministic sim events, not wall-clock I/O.
    for (SiteId s = 0; s < cluster->site_count(); ++s) {
      const WalStats* w = cluster->wal_stats(s);
      for (std::uint64_t v : {w->commits_logged, w->fsyncs, w->wal_bytes, w->checkpoints,
                              w->segments_truncated, w->replayed_commits,
                              w->checkpoint_restores, w->group_commit_batch.total()}) {
        out.counters.push_back(v);
      }
    }
  }
  if (durable && chaos) {
    // A kill-and-restart loses the unflushed group-commit tail, and replay
    // legitimately RE-commits those indices at the restarted site - its raw
    // log holds two entries for them (pre-crash and replayed). Check the
    // checker's invariant on the effective history: the last occurrence of
    // each definitive index per site.
    std::vector<std::vector<CommitRecord>> logs = recorder.site_logs();
    for (auto& log : logs) {
      std::unordered_map<TOIndex, std::size_t> last;
      for (std::size_t i = 0; i < log.size(); ++i) last[log[i].index] = i;
      std::vector<CommitRecord> dedup;
      dedup.reserve(log.size());
      for (std::size_t i = 0; i < log.size(); ++i) {
        if (last[log[i].index] == i) dedup.push_back(log[i]);
      }
      log = std::move(dedup);
    }
    out.serializable = check_one_copy_serializability(logs).ok();
  } else {
    out.serializable = check_one_copy_serializability(recorder.site_logs()).ok();
  }
  std::vector<const VersionedStore*> stores;
  for (SiteId s = 0; s < cluster->site_count(); ++s) stores.push_back(&cluster->store(s));
  out.converged = compare_final_states(stores, cluster->catalog()).ok();
  return out;
}

RunResult run_tpcc(unsigned threads) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 6;
  tpcc::Layout layout;
  config.objects_per_class = layout.objects_per_warehouse();
  config.seed = 1999;
  config.parallel = sharded(threads);
  auto cluster = std::make_unique<Cluster>(config);
  HistoryRecorder recorder(*cluster);

  tpcc::MixConfig mix;
  mix.txn_per_second_per_site = 100;
  mix.duration = 800 * kMillisecond;
  mix.warehouse_skew_theta = 0.4;
  mix.remote_txn_fraction = 0.1;
  tpcc::TpccDriver driver(*cluster, layout, mix, 2026);
  driver.start();
  cluster->run_for(mix.duration);
  EXPECT_TRUE(cluster->quiesce(60 * kSecond));

  RunResult out;
  out.history = history_digests(recorder);
  out.stores = store_digest(*cluster);
  out.delivered = cluster->net().delivered_count();
  out.events = cluster->engine()->executed();
  out.rounds = cluster->engine()->stats().rounds;
  out.committed = cluster->total_committed();
  collect_metrics(*cluster, out);
  out.serializable = check_one_copy_serializability(recorder.site_logs()).ok();
  for (SiteId s = 0; s < cluster->site_count(); ++s) {
    EXPECT_TRUE(driver.audit(s).empty()) << "site " << s << " audit violated";
  }
  out.converged = true;
  return out;
}

void expect_equal(const RunResult& base, const RunResult& other, unsigned threads) {
  EXPECT_EQ(base.history, other.history) << "commit histories diverge at threads=" << threads;
  EXPECT_EQ(base.stores, other.stores) << "final states diverge at threads=" << threads;
  EXPECT_EQ(base.delivered, other.delivered) << "deliveries diverge at threads=" << threads;
  EXPECT_EQ(base.events, other.events) << "event counts diverge at threads=" << threads;
  EXPECT_EQ(base.rounds, other.rounds) << "barrier rounds diverge at threads=" << threads;
  EXPECT_EQ(base.counters, other.counters) << "metrics diverge at threads=" << threads;
  EXPECT_EQ(base.committed, other.committed);
}

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

TEST(ParallelParity, OtpMixedWorkload) {
  const RunResult base = run_mixed(EngineKind::otp, 1, /*chaos=*/false);
  EXPECT_TRUE(base.serializable);
  EXPECT_TRUE(base.converged);
  EXPECT_GT(base.committed, 0u);
  for (unsigned threads : kThreadCounts) {
    if (threads == 1) continue;
    expect_equal(base, run_mixed(EngineKind::otp, threads, false), threads);
  }
}

TEST(ParallelParity, OtpLossPartitionCrashChaos) {
  const RunResult base = run_mixed(EngineKind::otp, 1, /*chaos=*/true);
  EXPECT_TRUE(base.serializable);
  EXPECT_TRUE(base.converged);
  EXPECT_GT(base.committed, 0u);
  for (unsigned threads : kThreadCounts) {
    if (threads == 1) continue;
    expect_equal(base, run_mixed(EngineKind::otp, threads, true), threads);
  }
}

TEST(ParallelParity, ConservativeMixedWorkloadWithChaos) {
  const RunResult base = run_mixed(EngineKind::conservative, 1, /*chaos=*/true);
  EXPECT_TRUE(base.serializable);
  EXPECT_TRUE(base.converged);
  EXPECT_GT(base.committed, 0u);
  for (unsigned threads : kThreadCounts) {
    if (threads == 1) continue;
    expect_equal(base, run_mixed(EngineKind::conservative, threads, true), threads);
  }
}

TEST(ParallelParity, DurableStorageParity) {
  // Group-commit WAL + fsync modeling must keep the bit-for-bit contract:
  // digests AND durability counters identical across {1, 2, 4, 8} threads.
  const RunResult base = run_mixed(EngineKind::otp, 1, /*chaos=*/false, /*durable=*/true);
  EXPECT_TRUE(base.serializable);
  EXPECT_TRUE(base.converged);
  EXPECT_GT(base.committed, 0u);
  for (unsigned threads : kThreadCounts) {
    if (threads == 1) continue;
    expect_equal(base, run_mixed(EngineKind::otp, threads, false, true), threads);
  }
}

TEST(ParallelParity, DurableRestartFromDiskChaosParity) {
  // The chaos leg swaps the warm recovery for a kill-and-restart-from-disk:
  // real WAL replay inside sim events, still thread-count invariant.
  const RunResult base = run_mixed(EngineKind::otp, 1, /*chaos=*/true, /*durable=*/true);
  EXPECT_TRUE(base.serializable);
  EXPECT_TRUE(base.converged);
  EXPECT_GT(base.committed, 0u);
  for (unsigned threads : kThreadCounts) {
    if (threads == 1) continue;
    expect_equal(base, run_mixed(EngineKind::otp, threads, true, true), threads);
  }
}

TEST(ParallelParity, MemoryBackendDigestsUnchangedByStorageTier) {
  // The refactor's no-regression pin: a memory-backend run must be bitwise
  // the run it was before the storage tier existed (same digests across
  // thread counts, and the backend reports no WAL).
  ClusterConfig config;
  config.n_sites = 3;
  config.n_classes = 4;
  config.seed = 5;
  Cluster cluster(config);
  EXPECT_EQ(cluster.wal_stats(0), nullptr);
  const RunResult a = run_mixed(EngineKind::otp, 2, false, false);
  const RunResult b = run_mixed(EngineKind::otp, 2, false, false);
  expect_equal(a, b, 2);
}

TEST(ParallelParity, TpccRemoteMix) {
  const RunResult base = run_tpcc(1);
  EXPECT_TRUE(base.serializable);
  EXPECT_GT(base.committed, 0u);
  for (unsigned threads : kThreadCounts) {
    if (threads == 1) continue;
    expect_equal(base, run_tpcc(threads), threads);
  }
}

// -- topology sweeps ---------------------------------------------------------
//
// Every topology profile must uphold the same contract: one (profile, seed)
// configuration is bit-for-bit identical at every thread count. The switched
// profiles additionally exercise the per-edge channel-clock path (per-sender
// links, per-edge rng streams, double-buffered staging cells), so these
// sweeps are the oracle for the whole PR-6 medium/engine rework. Each profile
// gets its own TEST name so CI can select subsets with --gtest_filter
// (e.g. the TSan job runs *TopologyWan* alongside the default suite).

/// Cluster tuned for a topology: the wide-area profiles (40ms+ RTTs) need the
/// protocol timers rescaled, or retransmission/failure-detector false
/// positives swamp the run with noise that has nothing to do with parity.
ClusterConfig topology_config(TopologyProfile profile, unsigned threads) {
  ClusterConfig config;
  config.n_sites = 5;
  config.n_classes = 8;
  config.seed = 77;
  config.parallel = sharded(threads);
  config.net.topology = profile;
  config.net.loss_prob = 0.005;
  if (profile == TopologyProfile::wan || profile == TopologyProfile::geo_3dc) {
    config.opt.batch_delay = 10 * kMillisecond;
    config.opt.alignment_window = 8 * kMillisecond;
    config.opt.consensus.fast_wait = 150 * kMillisecond;
    config.opt.consensus.round_timeout = 500 * kMillisecond;
    config.fd.interval = 50 * kMillisecond;
    config.fd.suspect_timeout = 500 * kMillisecond;
  }
  return config;
}

RunResult run_topology(TopologyProfile profile, unsigned threads,
                       WindowStrategy strategy = WindowStrategy::automatic) {
  ClusterConfig config = topology_config(profile, threads);
  config.parallel.strategy = strategy;
  auto cluster = std::make_unique<Cluster>(config);
  HistoryRecorder recorder(*cluster);

  WorkloadConfig wl;
  wl.updates_per_second_per_site = 50;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.query_fraction = 0.15;
  wl.cross_class_fraction = 0.2;
  wl.duration = 600 * kMillisecond;
  WorkloadDriver driver(*cluster, wl, 4242);
  driver.start();
  cluster->run_for(wl.duration + 400 * kMillisecond);
  EXPECT_TRUE(cluster->quiesce(120 * kSecond));

  RunResult out;
  out.history = history_digests(recorder);
  out.stores = store_digest(*cluster);
  out.delivered = cluster->net().delivered_count();
  out.events = cluster->engine()->executed();
  out.rounds = cluster->engine()->stats().rounds;
  out.committed = cluster->total_committed();
  collect_metrics(*cluster, out);
  out.serializable = check_one_copy_serializability(recorder.site_logs()).ok();
  std::vector<const VersionedStore*> stores;
  for (SiteId s = 0; s < cluster->site_count(); ++s) stores.push_back(&cluster->store(s));
  out.converged = compare_final_states(stores, cluster->catalog()).ok();
  return out;
}

void sweep_topology(TopologyProfile profile) {
  const RunResult base = run_topology(profile, 1);
  EXPECT_TRUE(base.serializable);
  EXPECT_TRUE(base.converged);
  EXPECT_GT(base.committed, 0u);
  for (unsigned threads : kThreadCounts) {
    if (threads == 1) continue;
    expect_equal(base, run_topology(profile, threads), threads);
  }
}

TEST(ParallelParity, TopologyLanParity) { sweep_topology(TopologyProfile::lan); }
TEST(ParallelParity, TopologyMetroParity) { sweep_topology(TopologyProfile::metro); }
TEST(ParallelParity, TopologyWanParity) { sweep_topology(TopologyProfile::wan); }
TEST(ParallelParity, TopologyGeo3dcParity) { sweep_topology(TopologyProfile::geo_3dc); }

/// `lan` is the flat shared-bus parameters spelled as a uniform matrix; the
/// Network keeps it on the bus path with the original rng stream, so a lan
/// cluster run is bitwise the same as a flat one - histories, stores,
/// metrics, and barrier rounds alike.
TEST(ParallelParity, TopologyLanMatchesFlat) {
  expect_equal(run_topology(TopologyProfile::flat, 2), run_topology(TopologyProfile::lan, 2), 2);
}

/// The point of channel clocks: on wide-area profiles, sites connected by
/// short intra-region edges advance many windows while cross-region channels
/// coast, so the channel strategy needs strictly fewer barrier rounds than
/// the global-window strategy on the identical workload. (Digests are NOT
/// compared across strategies: they are two different deterministic
/// schedules.)
TEST(ParallelParity, ChannelClocksBeatGlobalWindowsOnWideArea) {
  for (TopologyProfile profile : {TopologyProfile::wan, TopologyProfile::geo_3dc}) {
    const RunResult channel = run_topology(profile, 2, WindowStrategy::channel);
    const RunResult global = run_topology(profile, 2, WindowStrategy::global);
    EXPECT_TRUE(channel.serializable);
    EXPECT_TRUE(global.serializable);
    EXPECT_GT(channel.committed, 0u);
    EXPECT_LT(channel.rounds, global.rounds)
        << "channel clocks must cut barrier rounds on profile "
        << topology_profile_name(profile);
  }
}

/// The classic single-queue loop (threads=1 default) is a different -
/// also deterministic - schedule: not bitwise comparable to sharded runs
/// (global same-timestamp ties across shards have no global order there),
/// but it must satisfy the same logical invariants on the same workload, and
/// both modes must see the identical offered client load (the per-site
/// submission streams depend only on site-local clocks and rngs).
TEST(ParallelParity, ClassicLoopInvariantsAndOfferedLoadUnchanged) {
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 80;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.query_fraction = 0.15;
  wl.cross_class_fraction = 0.2;
  wl.duration = 900 * kMillisecond;

  auto run_mode = [&wl](ParallelismConfig parallel, std::uint64_t* updates,
                        std::uint64_t* queries) {
    ClusterConfig config;
    config.n_sites = 5;
    config.n_classes = 8;
    config.seed = 77;
    config.parallel = parallel;
    Cluster cluster(config);
    HistoryRecorder recorder(cluster);
    WorkloadDriver driver(cluster, wl, 4242);
    driver.start();
    cluster.run_for(wl.duration + 200 * kMillisecond);
    EXPECT_TRUE(cluster.quiesce(60 * kSecond));
    EXPECT_TRUE(check_one_copy_serializability(recorder.site_logs()).ok());
    EXPECT_GT(cluster.total_committed(), 0u);
    *updates = driver.updates_submitted();
    *queries = driver.queries_submitted();
  };

  std::uint64_t classic_updates = 0, classic_queries = 0;
  run_mode(ParallelismConfig{}, &classic_updates, &classic_queries);
  std::uint64_t sharded_updates = 0, sharded_queries = 0;
  run_mode(sharded(2), &sharded_updates, &sharded_queries);
  EXPECT_EQ(classic_updates, sharded_updates);
  EXPECT_EQ(classic_queries, sharded_queries);
}

// -- CLI output stability ----------------------------------------------------
//
// The CLI is the one surface where internal state becomes human-visible
// bytes, so it gets its own determinism leg: --help and a full run summary
// must be byte-identical across repeat invocations (pins the Flags sorted
// keys() contract - values_ is an unordered_map - and catches any future
// hash-order drift in summary formatting), and the run summary must also be
// byte-identical across --threads values (the CLI-level face of the sharded
// engine's bit-for-bit guarantee).

#ifdef OTPDB_CLI_PATH
std::string run_cli(const std::string& args, int* exit_code) {
  const std::string cmd = std::string(OTPDB_CLI_PATH) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    *exit_code = -1;
    return {};
  }
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) out.append(buf, n);
  *exit_code = pclose(pipe);
  return out;
}

TEST(ParallelParity, CliHelpByteIdenticalAcrossRuns) {
  int code_a = 0, code_b = 0;
  const std::string a = run_cli("--help", &code_a);
  const std::string b = run_cli("--help", &code_b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(code_a, code_b);
  EXPECT_EQ(a, b) << "usage/help output drifted between identical invocations";
}

TEST(ParallelParity, CliRunSummaryByteIdenticalAcrossRunsAndThreads) {
  const std::string base =
      "run --engine=otp --sites=3 --classes=4 --objects=64 --rate=100 "
      "--seconds=1 --seed=7";
  // Repeat-run stability holds for any thread count; cross-thread byte
  // identity is only contractual within the sharded engine (--threads >= 2).
  // The classic loop (--threads=1) is a legitimately different schedule.
  int code_a = 0, code_b = 0, code_t = 0;
  const std::string a = run_cli(base + " --threads=1", &code_a);
  const std::string b = run_cli(base + " --threads=1", &code_b);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(code_a, 0) << a;
  EXPECT_EQ(code_a, code_b);
  EXPECT_EQ(a, b) << "run summary drifted between identical invocations";
  const std::string t2 = run_cli(base + " --threads=2", &code_t);
  EXPECT_EQ(code_t, 0) << t2;
  const std::string t4 = run_cli(base + " --threads=4", &code_t);
  EXPECT_EQ(code_t, 0) << t4;
  EXPECT_EQ(t2, t4) << "run summary differs across sharded --threads values "
                       "(parallel-engine parity broken at the CLI surface)";
}
#else
TEST(ParallelParity, CliHelpByteIdenticalAcrossRuns) {
  GTEST_SKIP() << "otpdb_cli not built alongside the test binary";
}
#endif

}  // namespace
}  // namespace otpdb
