// End-to-end integration tests: full clusters (network + failure detectors +
// atomic broadcast + replicas) under generated workloads, validated with the
// 1-copy-serializability checker (Theorem 4.2), starvation freedom
// (Theorem 4.1), query-snapshot consistency (Section 5), determinism, and
// fault injection. The lazy baseline is shown to violate what OTP guarantees.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "baseline/conservative_replica.h"
#include "baseline/lazy_replica.h"
#include "checker/history.h"
#include "core/cluster.h"
#include "workload/workload.h"

namespace otpdb {
namespace {

NetConfig calm_network() {
  NetConfig cfg;
  cfg.hiccup_prob = 0.02;
  cfg.hiccup_mean = 1 * kMillisecond;
  return cfg;
}

NetConfig stormy_network() {
  NetConfig cfg;
  cfg.hiccup_prob = 0.25;
  cfg.hiccup_mean = 3 * kMillisecond;
  cfg.noise_max = 100 * kMicrosecond;
  return cfg;
}

ReplicaFactory conservative_factory() {
  return [](const ReplicaDeps& d) {
    return std::make_unique<ConservativeReplica>(d.sim, d.abcast, d.storage, d.catalog,
                                                 d.registry, d.site);
  };
}

ReplicaFactory lazy_factory() {
  return [](const ReplicaDeps& d) {
    return std::make_unique<LazyReplica>(d.sim, d.net, d.storage, d.catalog, d.registry, d.site);
  };
}

std::vector<const VersionedStore*> all_stores(Cluster& cluster) {
  std::vector<const VersionedStore*> stores;
  for (SiteId s = 0; s < cluster.site_count(); ++s) stores.push_back(&cluster.store(s));
  return stores;
}

struct SweepParams {
  std::uint64_t seed;
  AbcastKind abcast;
  bool stormy;
  double skew;
};

class OtpClusterSweep : public ::testing::TestWithParam<SweepParams> {};

TEST_P(OtpClusterSweep, OneCopySerializableAndStarvationFree) {
  const SweepParams p = GetParam();
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 6;
  config.seed = p.seed;
  config.abcast = p.abcast;
  config.net = p.stormy ? stormy_network() : calm_network();
  config.otp.paranoid_checks = true;
  Cluster cluster(config);
  HistoryRecorder recorder(cluster);

  WorkloadConfig wl;
  wl.updates_per_second_per_site = 150;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.class_skew_theta = p.skew;
  wl.duration = 1 * kSecond;
  WorkloadDriver driver(cluster, wl, p.seed * 31 + 7);
  driver.start();

  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(60 * kSecond)) << "cluster failed to drain";

  // Starvation freedom / termination: every submitted update committed at
  // every site.
  const std::uint64_t expected = driver.updates_submitted();
  ASSERT_GT(expected, 50u);
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    EXPECT_EQ(cluster.replica(s).metrics().committed, expected) << "site " << s;
  }

  // Theorem 4.2 via the checker.
  const CheckResult serializability = check_one_copy_serializability(recorder.site_logs());
  EXPECT_TRUE(serializability.ok()) << serializability.summary();

  // Identical final database state at every site.
  const CheckResult convergence = compare_final_states(all_stores(cluster), cluster.catalog());
  EXPECT_TRUE(convergence.ok()) << convergence.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OtpClusterSweep,
    ::testing::Values(SweepParams{1, AbcastKind::optimistic, false, 0.0},
                      SweepParams{2, AbcastKind::optimistic, true, 0.0},
                      SweepParams{3, AbcastKind::optimistic, true, 1.0},
                      SweepParams{4, AbcastKind::optimistic, false, 1.5},
                      SweepParams{5, AbcastKind::sequencer, false, 0.0},
                      SweepParams{6, AbcastKind::sequencer, true, 1.0},
                      SweepParams{7, AbcastKind::optimistic, true, 0.5},
                      SweepParams{8, AbcastKind::sequencer, true, 1.5}),
    [](const ::testing::TestParamInfo<SweepParams>& param_info) {
      const auto& p = param_info.param;
      return std::string(p.abcast == AbcastKind::optimistic ? "opt" : "seq") +
             (p.stormy ? "_stormy" : "_calm") + "_skew" +
             std::to_string(static_cast<int>(p.skew * 10)) + "_seed" +
             std::to_string(p.seed);
    });

TEST(OtpCluster, MismatchesOnlyHurtWhenTransactionsConflict) {
  // With many classes (few conflicts), a stormy network produces tentative/
  // definitive mismatches but almost no aborts; with one class (all conflict),
  // the same storm forces real aborts. This is the paper's Section 3.2 claim.
  auto run = [](std::size_t n_classes) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = n_classes;
    config.seed = 77;
    config.net = stormy_network();
    Cluster cluster(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 120;
    wl.mean_exec_time = 2 * kMillisecond;
    wl.duration = 1 * kSecond;
    WorkloadDriver driver(cluster, wl, 99);
    driver.start();
    cluster.run_for(wl.duration);
    EXPECT_TRUE(cluster.quiesce(60 * kSecond));
    std::uint64_t aborts = 0;
    for (SiteId s = 0; s < cluster.site_count(); ++s) {
      aborts += cluster.replica(s).metrics().aborts;
    }
    return aborts;
  };
  const std::uint64_t aborts_spread = run(16);
  const std::uint64_t aborts_hot = run(1);
  EXPECT_GT(aborts_hot, aborts_spread)
      << "conflict concentration must turn mismatches into aborts";
}

TEST(ConservativeCluster, CorrectButNeverAborts) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 6;
  config.seed = 21;
  config.net = stormy_network();
  Cluster cluster(config, conservative_factory());
  HistoryRecorder recorder(cluster);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 100;
  wl.duration = 1 * kSecond;
  WorkloadDriver driver(cluster, wl, 5);
  driver.start();
  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(60 * kSecond));

  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    EXPECT_EQ(cluster.replica(s).metrics().committed, driver.updates_submitted());
    EXPECT_EQ(cluster.replica(s).metrics().aborts, 0u);
  }
  EXPECT_TRUE(check_one_copy_serializability(recorder.site_logs()).ok());
  EXPECT_TRUE(compare_final_states(all_stores(cluster), cluster.catalog()).ok());
}

TEST(ClusterComparison, OtpHidesOrderingLatencyBehindExecution) {
  // Same seed, same workload, same network: OTP's mean commit latency must
  // beat the conservative engine's, because execution overlaps the ordering
  // phase instead of following it.
  auto mean_latency = [](ReplicaFactory factory) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = 8;
    config.seed = 42;
    config.net = calm_network();
    auto cluster = factory == nullptr ? std::make_unique<Cluster>(config)
                                      : std::make_unique<Cluster>(config, std::move(factory));
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 100;
    wl.mean_exec_time = 5 * kMillisecond;  // comparable to the ordering delay
    wl.duration = 1 * kSecond;
    WorkloadDriver driver(*cluster, wl, 1234);
    driver.start();
    cluster->run_for(wl.duration);
    EXPECT_TRUE(cluster->quiesce(60 * kSecond));
    OnlineStats latency;
    for (SiteId s = 0; s < cluster->site_count(); ++s) {
      latency.merge(cluster->replica(s).metrics().commit_latency_ns);
    }
    return latency.mean();
  };
  const double otp = mean_latency(nullptr);
  const double conservative = mean_latency(conservative_factory());
  EXPECT_LT(otp, conservative);
}

TEST(LazyCluster, FastButNotOneCopySerializable) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 1;  // single hot class: cross-site conflicts guaranteed
  config.objects_per_class = 4;
  config.seed = 33;
  config.net = calm_network();
  Cluster cluster(config, lazy_factory());
  HistoryRecorder recorder(cluster);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 200;
  wl.mean_exec_time = 2 * kMillisecond;
  wl.ops_per_txn = 2;
  wl.duration = 1 * kSecond;
  WorkloadDriver driver(cluster, wl, 7);
  driver.start();
  cluster.run_for(wl.duration + kSecond);  // drain propagation
  ASSERT_TRUE(cluster.quiesce(60 * kSecond));

  // Locally fast: every site committed exactly its own submissions...
  std::uint64_t conflicts = 0;
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    auto* lazy = dynamic_cast<LazyReplica*>(&cluster.replica(s));
    ASSERT_NE(lazy, nullptr);
    conflicts += lazy->conflicts_detected();
  }
  // ...but concurrent read-modify-writes collide and updates are lost.
  EXPECT_GT(conflicts, 0u) << "workload must have produced write conflicts";
  const CheckResult check = check_one_copy_serializability(recorder.site_logs());
  EXPECT_FALSE(check.ok()) << "lazy replication must fail the 1SR checker";
}

TEST(LazyCluster, LastWriterWinsConvergesEventually) {
  // Divergent histories, but LWW reconciliation makes the final states equal
  // once propagation drains - eventual consistency without serializability.
  ClusterConfig config;
  config.n_sites = 3;
  config.n_classes = 2;
  config.objects_per_class = 4;
  config.seed = 44;
  config.net = calm_network();
  Cluster cluster(config, lazy_factory());
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 100;
  wl.duration = 500 * kMillisecond;
  WorkloadDriver driver(cluster, wl, 8);
  driver.start();
  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(60 * kSecond));
  cluster.run_for(2 * kSecond);  // let the last write-sets propagate
  EXPECT_TRUE(compare_final_states(all_stores(cluster), cluster.catalog()).ok());
}

TEST(Queries, SnapshotsMatchDefinitivePrefixExactly) {
  // Every query's reads must equal the database state produced by exactly the
  // transactions with definitive index <= the query's snapshot index -
  // reconstructed independently from the commit history.
  ClusterConfig config;
  config.n_sites = 3;
  config.n_classes = 4;
  config.objects_per_class = 8;
  config.seed = 55;
  config.net = calm_network();
  Cluster cluster(config);
  HistoryRecorder recorder(cluster);

  WorkloadConfig wl;
  wl.updates_per_second_per_site = 150;
  wl.mean_exec_time = 3 * kMillisecond;
  wl.duration = 800 * kMillisecond;
  WorkloadDriver driver(cluster, wl, 9);
  driver.start();

  // Interleave explicit queries at site 1 against two classes.
  struct Observed {
    QueryReport report;
  };
  std::vector<QueryReport> reports;
  const std::vector<ObjectId> targets = {cluster.catalog().object(0, 0),
                                         cluster.catalog().object(1, 0),
                                         cluster.catalog().object(2, 3)};
  for (int i = 1; i <= 20; ++i) {
    cluster.sim().schedule_at(i * 40 * kMillisecond, [&cluster, &targets, &reports] {
      cluster.replica(1).submit_query(
          [targets](QueryContext& ctx) {
            for (ObjectId obj : targets) (void)ctx.read(obj);
          },
          2 * kMillisecond, [&reports](const QueryReport& r) { reports.push_back(r); });
    });
  }

  cluster.run_for(wl.duration);
  ASSERT_TRUE(cluster.quiesce(60 * kSecond));
  ASSERT_EQ(reports.size(), 20u);

  // Reconstruct expected values from site 1's commit log.
  const auto& log = recorder.site_logs()[1];
  for (const QueryReport& report : reports) {
    std::map<ObjectId, std::int64_t> expected;
    for (const auto& r : log) {
      if (r.index > report.snapshot_index) continue;
      for (const auto& [obj, value] : r.writes) expected[obj] = as_int(value);
    }
    for (const auto& [obj, value] : report.reads) {
      const auto it = expected.find(obj);
      const std::int64_t want = it == expected.end() ? 0 : it->second;
      EXPECT_EQ(as_int(value), want)
          << "query snapshot " << report.snapshot_index << " object " << obj;
    }
  }
}

TEST(Queries, BlockOnInFlightCommitThenSeeIt) {
  // A query whose snapshot covers a TO-delivered but still-executing
  // transaction must wait for that commit and then observe its writes
  // (Section 5's "i.5" rule, in-flight edge).
  ClusterConfig config;
  config.n_sites = 2;
  config.n_classes = 1;
  config.seed = 66;
  config.net = calm_network();
  Cluster cluster(config);
  const ProcId rmw = register_rmw_procedure(cluster.procedures(), cluster.catalog());

  // One slow update (200ms execution).
  TxnArgs args;
  args.ints = {5, 0};  // delta 5 to offset 0
  cluster.replica(0).submit_update(rmw, 0, args, 200 * kMillisecond);

  std::vector<QueryReport> reports;
  // Fire the query at a moment when the txn is TO-delivered but still running
  // at site 1 (ordering completes within ~10ms; execution lasts 200ms).
  cluster.sim().schedule_at(100 * kMillisecond, [&cluster, &reports] {
    cluster.replica(1).submit_query(
        [&cluster](QueryContext& ctx) { (void)ctx.read(cluster.catalog().object(0, 0)); },
        1 * kMillisecond, [&reports](const QueryReport& r) { reports.push_back(r); });
  });
  cluster.run_for(2 * kSecond);
  ASSERT_TRUE(cluster.quiesce(30 * kSecond));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GT(reports[0].snapshot_index, 0u) << "query must have started after TO-delivery";
  EXPECT_GT(reports[0].attempts, 1u) << "query must have waited for the in-flight commit";
  ASSERT_EQ(reports[0].reads.size(), 1u);
  EXPECT_EQ(as_int(reports[0].reads[0].second), 5) << "must observe the committed write";
}

TEST(Queries, SnapshotIgnoresLaterTransactions) {
  // A query started before an update's TO-delivery must NOT see it, even if
  // the update commits while the query is executing.
  ClusterConfig config;
  config.n_sites = 2;
  config.n_classes = 1;
  config.seed = 67;
  config.net = calm_network();
  Cluster cluster(config);
  const ProcId rmw = register_rmw_procedure(cluster.procedures(), cluster.catalog());

  std::vector<QueryReport> reports;
  // Query starts at t=0 with a long execution; snapshot index is 0.
  cluster.replica(1).submit_query(
      [&cluster](QueryContext& ctx) { (void)ctx.read(cluster.catalog().object(0, 0)); },
      300 * kMillisecond, [&reports](const QueryReport& r) { reports.push_back(r); });
  // Update submitted immediately after; it will commit long before the query
  // finishes executing.
  TxnArgs args;
  args.ints = {9, 0};
  cluster.replica(0).submit_update(rmw, 0, args, 1 * kMillisecond);

  cluster.run_for(2 * kSecond);
  ASSERT_TRUE(cluster.quiesce(30 * kSecond));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].snapshot_index, 0u);
  EXPECT_EQ(as_int(reports[0].reads[0].second), 0)
      << "snapshot isolation: concurrent update invisible";
}

TEST(Determinism, SameSeedSameOutcome) {
  auto fingerprint = [](std::uint64_t seed) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = 4;
    config.seed = seed;
    config.net = stormy_network();
    Cluster cluster(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 100;
    wl.duration = 500 * kMillisecond;
    WorkloadDriver driver(cluster, wl, seed);
    driver.start();
    cluster.run_for(wl.duration);
    EXPECT_TRUE(cluster.quiesce(60 * kSecond));
    // Fingerprint: committed count, abort count, and a state checksum.
    std::uint64_t fp = cluster.total_committed();
    for (SiteId s = 0; s < cluster.site_count(); ++s) {
      fp = fp * 31 + cluster.replica(s).metrics().aborts;
    }
    for (ClassId c = 0; c < cluster.catalog().class_count(); ++c) {
      for (std::uint64_t k = 0; k < cluster.catalog().objects_per_class(); ++k) {
        const auto v = cluster.store(0).read_latest(cluster.catalog().object(c, k));
        fp = fp * 1099511628211ULL + (v ? static_cast<std::uint64_t>(as_int(*v)) : 0);
      }
    }
    return fp;
  };
  EXPECT_EQ(fingerprint(101), fingerprint(101));
  EXPECT_NE(fingerprint(101), fingerprint(102)) << "different seeds should differ";
}

TEST(FaultInjection, SurvivorsStayConsistentAfterMinorityCrash) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 4;
  config.seed = 202;
  config.net = calm_network();
  config.opt.consensus.round_timeout = 15 * kMillisecond;
  Cluster cluster(config);
  HistoryRecorder recorder(cluster);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 80;
  wl.duration = 1 * kSecond;
  WorkloadDriver driver(cluster, wl, 11);
  driver.start();

  cluster.sim().schedule_at(300 * kMillisecond, [&cluster] { cluster.net().crash(3); });
  cluster.run_for(wl.duration);
  cluster.run_for(10 * kSecond);  // let survivors settle (no quiesce: site 3 is wedged)

  // The survivors' histories agree pairwise per class.
  auto logs = recorder.site_logs();
  logs.resize(3);  // drop the crashed site's log from the cross-check reference
  const CheckResult check = check_one_copy_serializability(logs);
  EXPECT_TRUE(check.ok()) << check.summary();
  // All three survivors committed the same (large) number of transactions.
  const auto committed0 = cluster.replica(0).metrics().committed;
  EXPECT_GT(committed0, 100u);
  for (SiteId s : {1u, 2u}) {
    EXPECT_EQ(cluster.replica(s).metrics().committed, committed0) << "site " << s;
  }
  // The crashed site's history is a consistent prefix (it stopped mid-run).
  const CheckResult with_crashed = check_one_copy_serializability(recorder.site_logs());
  EXPECT_TRUE(with_crashed.ok()) << with_crashed.summary();
}

}  // namespace
}  // namespace otpdb
