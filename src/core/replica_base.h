// Common interface of the replication engines in this repository: the OTP
// engine (paper Section 3), the conservative engine (execute after TO-deliver)
// and the lazy engine (commercial-style asynchronous replication). Benches and
// the workload driver talk to replicas through this interface only.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "core/admission.h"
#include "core/metrics.h"
#include "core/query.h"
#include "core/txn.h"
#include "db/procedures.h"
#include "sim/simulator.h"
#include "util/assert.h"
#include "util/types.h"

namespace otpdb {

/// Outcome of a submit_update call. Anything but `admitted` means the engine
/// took NO ownership of the request: nothing was broadcast, no metrics beyond
/// the refusal counter moved, and the client may retry (shed/backpressure) or
/// must give up (expired).
enum class SubmitResult : std::uint8_t {
  admitted,      ///< accepted; the engine will disseminate and commit it
  shed,          ///< refused by admission control (overload); retry later
  backpressure,  ///< refused by the abcast sender-side in-flight cap; retry later
  expired,       ///< the request's deadline already passed at submit time
};

inline const char* to_string(SubmitResult r) {
  switch (r) {
    case SubmitResult::admitted: return "admitted";
    case SubmitResult::shed: return "shed";
    case SubmitResult::backpressure: return "backpressure";
    case SubmitResult::expired: return "expired";
  }
  return "?";
}

class ReplicaBase {
 public:
  virtual ~ReplicaBase() = default;

  /// Accepts a client update request at this site. The engine disseminates and
  /// eventually commits it at every site. `exec_duration` models the stored
  /// procedure's execution cost. `deadline` is an absolute sim-time budget
  /// (0 = none): a refused or expired submission returns without side effects
  /// beyond the matching metrics counter.
  virtual SubmitResult submit_update(ProcId proc, ClassId klass, TxnArgs args,
                                     SimTime exec_duration, SimTime deadline = 0) = 0;

  /// Accepts a client update request spanning several conflict classes (a
  /// cross-partition transaction). `classes` need not be sorted or unique;
  /// the engine normalizes it. Engines whose model cannot serialize
  /// cross-class updates (lazy, lock-table) route single-element sets to
  /// submit_update and reject genuine multi-class sets explicitly.
  virtual SubmitResult submit_update_multi(ProcId proc, std::vector<ClassId> classes,
                                           TxnArgs args, SimTime exec_duration,
                                           SimTime deadline = 0) = 0;

  /// Accepts a client read-only query at this site; executed locally
  /// (read-one/write-all). `done` fires with the completed query.
  virtual void submit_query(QueryFn fn, SimTime exec_duration, QueryDoneFn done) = 0;

  /// Invoked on every local commit (history recording / checkers). Install
  /// before submitting work: read/write-set recording is skipped for
  /// executions started without a hook (hot-path economy), so a hook
  /// installed mid-run sees empty `reads` on transactions already executing.
  virtual void set_commit_hook(CommitHook hook) = 0;

  /// Outstanding work at this site (transactions not yet committed locally,
  /// queries not yet answered). Zero across all sites means quiescent.
  virtual std::size_t in_flight() const = 0;

  virtual const ReplicaMetrics& metrics() const = 0;
  virtual SiteId site() const = 0;

  /// Installs the overload-plane admission policy (Cluster::build wires the
  /// cluster-wide AdmissionConfig here; default-constructed = disabled).
  void configure_admission(const AdmissionConfig& config) { admission_.configure(config); }
  const AdmissionController& admission() const { return admission_; }

  /// Warm crash recovery: RAM intact at the engine level is NOT assumed -
  /// all volatile replica state (queues, in-flight transactions, provisional
  /// writes) is discarded; committed store state and query watermarks
  /// survive. Engines without a recovery path CHECK-fail.
  virtual void crash_recover_reset() {
    OTPDB_CHECK_MSG(false, "this engine has no crash recovery path");
  }

  /// Cold restart from the durable tier: the store was rebuilt from
  /// checkpoint + WAL and the query watermarks must be wound back to the
  /// per-class durable marks (possibly LOWER than before the crash - the
  /// unflushed tail died with RAM). Commits at or below `durable_floor` will
  /// be TO-delivered as body-less tombstones during catch-up and must be
  /// acknowledged without re-execution.
  virtual void restart_from_disk(std::span<const TOIndex> class_watermarks,
                                 TOIndex durable_floor) {
    (void)class_watermarks;
    (void)durable_floor;
    OTPDB_CHECK_MSG(false, "this engine has no durable restart path");
  }

 protected:
  /// The shared ingress gate every engine's submit path runs first, in fixed
  /// order: dead-on-arrival deadline, then abcast backpressure, then
  /// admission. Each refusal bumps exactly one counter; an admitted request
  /// bumps admitted_updates. The order matters for determinism of the
  /// counters: a request that is both expired and shed must count the same
  /// way everywhere.
  SubmitResult ingress_gate(SimTime now, SimTime deadline, std::size_t depth,
                            std::uint64_t lag, bool backpressured,
                            ReplicaMetrics& metrics) {
    if (deadline != 0 && now > deadline) {
      ++metrics.deadline_expired_presubmit;
      return SubmitResult::expired;
    }
    if (backpressured) {
      ++metrics.backpressured_updates;
      return SubmitResult::backpressure;
    }
    if (!admission_.admit(depth, lag)) {
      ++metrics.shed_updates;
      return SubmitResult::shed;
    }
    ++metrics.admitted_updates;
    return SubmitResult::admitted;
  }

  AdmissionController admission_;
};

}  // namespace otpdb
