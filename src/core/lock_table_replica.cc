#include "core/lock_table_replica.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"
#include "util/log.h"

namespace otpdb {

AccessSetExtractor rmw_access_extractor(const PartitionCatalog& catalog) {
  return [&catalog](ClassId klass, const TxnArgs& args) {
    std::vector<ObjectId> objects;
    objects.reserve(args.ints.size() > 0 ? args.ints.size() - 1 : 0);
    for (std::size_t i = 1; i < args.ints.size(); ++i) {
      const ObjectId obj = catalog.object(klass, static_cast<std::uint64_t>(args.ints[i]));
      if (std::find(objects.begin(), objects.end(), obj) == objects.end()) {
        objects.push_back(obj);
      }
    }
    return objects;
  };
}

LockTableReplica::LockTableReplica(Simulator& sim, AtomicBroadcast& abcast,
                                   StorageBackend& storage, const PartitionCatalog& catalog,
                                   const ProcedureRegistry& registry, SiteId self,
                                   AccessSetExtractor extractor)
    : sim_(sim),
      abcast_(abcast),
      backend_(storage),
      store_(storage.memory()),
      catalog_(catalog),
      registry_(registry),
      self_(self),
      extractor_(std::move(extractor)),
      queues_(catalog.object_count()),
      queries_(sim, store_, catalog.object_count(),
               [](ObjectId obj) { return QueryEngine::Domain{obj}; }, metrics_) {
  OTPDB_CHECK(extractor_ != nullptr);
  abcast_.set_callbacks(AbcastCallbacks{
      [this](const Message& msg) { on_opt_deliver(msg); },
      [this](const MsgId& id, TOIndex index) { on_to_deliver(id, index); },
      [this](std::span<const ToDelivery> batch) { on_to_deliver_batch(batch); },
  });
}

SubmitResult LockTableReplica::submit_update(ProcId proc, ClassId klass, TxnArgs args,
                                             SimTime exec_duration, SimTime deadline) {
  std::vector<ObjectId> access_set = extractor_(klass, args);
  return submit_update_with_access(proc, klass, std::move(access_set), std::move(args),
                                   exec_duration, deadline);
}

SubmitResult LockTableReplica::submit_update_multi(ProcId proc, std::vector<ClassId> classes,
                                                   TxnArgs args, SimTime exec_duration,
                                                   SimTime deadline) {
  normalize_class_set(classes);
  OTPDB_CHECK_MSG(classes.size() == 1,
                  "the lock-table engine's access-set extractor is keyed to one class's "
                  "argument convention; submit cross-partition transactions with an "
                  "explicit union access set via submit_update_with_access");
  return submit_update(proc, classes.front(), std::move(args), exec_duration, deadline);
}

SubmitResult LockTableReplica::submit_update_with_access(ProcId proc, ClassId klass,
                                                         std::vector<ObjectId> access_set,
                                                         TxnArgs args, SimTime exec_duration,
                                                         SimTime deadline) {
  OTPDB_CHECK_MSG(!access_set.empty(), "a transaction must declare at least one object");
  const AbcastStats& ab = abcast_.stats();
  const std::uint64_t lag =
      ab.opt_delivered > ab.to_delivered ? ab.opt_delivered - ab.to_delivered : 0;
  const SubmitResult gate = ingress_gate(sim_.now(), deadline, in_flight(), lag,
                                         abcast_.backpressured(), metrics_);
  if (gate != SubmitResult::admitted) return gate;
  auto request = std::make_shared<TxnRequest>();
  request->proc = proc;
  request->klass = klass;
  request->args = std::move(args);
  request->origin = self_;
  request->client_seq = next_client_seq_++;
  request->submitted_at = sim_.now();
  request->exec_duration = exec_duration;
  // `deadline` is deliberately NOT carried into the request: enforcing it at
  // the object queues would need per-object virtual service clocks to stay
  // deterministic across sites. The ingress gate above is the full extent of
  // deadline handling on this engine.
  request->access_set = std::move(access_set);
  ++metrics_.submitted_updates;
  abcast_.broadcast(std::move(request));
  return SubmitResult::admitted;
}

void LockTableReplica::submit_query(QueryFn fn, SimTime exec_duration, QueryDoneFn done) {
  queries_.submit(std::move(fn), exec_duration, std::move(done));
}

std::size_t LockTableReplica::queue_length(ObjectId obj) const {
  return obj < queues_.size() ? queues_[obj].size() : 0;
}

// ---------------------------------------------------------------------------
// Serialization (Opt-deliver): enter all object queues atomically.
// ---------------------------------------------------------------------------

void LockTableReplica::on_opt_deliver(const Message& msg) {
  OTPDB_ASSERT(std::dynamic_pointer_cast<const TxnRequest>(msg.payload) != nullptr);
  auto request = std::static_pointer_cast<const TxnRequest>(msg.payload);
  OTPDB_CHECK_MSG(!request->access_set.empty(),
                  "lock-table engine requires pre-declared access sets");
  // acquire() checks against duplicate Opt-delivery.
  TxnRecord* txn = txns_.acquire(msg.id, std::move(request));
  txn->opt_delivered_at = sim_.now();

  for (ObjectId obj : txn->request->access_set) {
    // The lock table is a dense vector over the catalog's object space; a
    // user-supplied extractor declaring an out-of-catalog id must fail loudly
    // here, not corrupt memory.
    OTPDB_CHECK_MSG(obj < queues_.size(), "declared object outside the catalog");
    queues_[obj].push_back(txn);
  }
  try_execute(txn);
}

bool LockTableReplica::heads_all_queues(const TxnRecord* txn) const {
  for (ObjectId obj : txn->request->access_set) {
    const auto& queue = queues_[obj];
    OTPDB_ASSERT(!queue.empty());
    if (queue.front() != txn) return false;
  }
  return true;
}

void LockTableReplica::try_execute(TxnRecord* txn) {
  if (txn->running || txn->exec != ExecState::active) return;
  if (!heads_all_queues(txn)) return;
  txn->running = true;
  ++txn->attempts;
  if (txn->attempts > 1) ++metrics_.reexecutions;
  const bool record_sets = commit_hook_ != nullptr;  // checker wants read/write sets
  TxnContext ctx(store_, txn->request->access_set, txn->tid, txn->request->klass,
                 txn->request->args, record_sets);
  registry_.get(txn->request->proc)(ctx);
  txn->last_reads = ctx.take_reads();
  txn->last_writes = ctx.take_writes();
  txn->completion =
      sim_.schedule_after(txn->request->exec_duration, [this, txn] { execution_complete(txn); });
}

// ---------------------------------------------------------------------------
// Execution completion (Figure 5 generalized).
// ---------------------------------------------------------------------------

void LockTableReplica::execution_complete(TxnRecord* txn) {
  txn->running = false;
  txn->executed_at = sim_.now();
  txn->exec = ExecState::executed;
  if (txn->deliv == DeliveryState::committable) commit(txn);
}

// ---------------------------------------------------------------------------
// Correctness check (Figure 6 generalized to object queues).
// ---------------------------------------------------------------------------

void LockTableReplica::reorder_before_first_pending(ObjectQueue& queue, TxnRecord* txn) {
  auto self = std::find(queue.begin(), queue.end(), txn);
  OTPDB_CHECK(self != queue.end());
  queue.erase(self);
  auto first_pending = std::find_if(queue.begin(), queue.end(), [](const TxnRecord* t) {
    return t->deliv == DeliveryState::pending;
  });
  queue.insert(first_pending, txn);
}

void LockTableReplica::on_to_deliver(const MsgId& id, TOIndex index) {
  TxnRecord* txn = txns_.lookup(id);
  txn->to_index = index;
  to_deliver_one(txn);
}

void LockTableReplica::on_to_deliver_batch(std::span<const ToDelivery> batch) {
  // Per-entry handling identical to repeated on_to_deliver calls.
  for (const auto& [id, index] : batch) on_to_deliver(id, index);
}

void LockTableReplica::to_deliver_one(TxnRecord* txn) {
  const TOIndex index = txn->to_index;
  txn->to_delivered_at = sim_.now();
  queries_.advance_to_index(index);
  for (ObjectId obj : txn->request->access_set) {
    queries_.note_to_delivered(QueryEngine::Domain{obj}, index);
  }
  metrics_.opt_to_gap_ns.add(static_cast<double>(txn->to_delivered_at - txn->opt_delivered_at));

  if (txn->exec == ExecState::executed && heads_all_queues(txn)) {
    txn->deliv = DeliveryState::committable;
    commit(txn);
    return;
  }
  txn->deliv = DeliveryState::committable;

  // Undo every wrongly ordered predecessor: a *pending* transaction that sits
  // before T in one of T's queues but has already produced (or is producing)
  // effects. Its undo is a rollback of private provisional versions, so no
  // cascades. It re-executes after the committable prefix commits.
  bool moved = false;
  for (ObjectId obj : txn->request->access_set) {
    ObjectQueue& queue = queues_[obj];
    for (TxnRecord* other : queue) {
      if (other == txn) break;
      if (other->deliv == DeliveryState::pending &&
          (other->running || other->exec == ExecState::executed)) {
        abort_transaction(other);
      }
    }
    const TxnRecord* old_front = queue.front();
    reorder_before_first_pending(queue, txn);
    moved |= queue.front() != old_front || queue.front() == txn;
  }
  if (moved) ++metrics_.mismatch_reorders;

  try_execute(txn);
}

void LockTableReplica::abort_transaction(TxnRecord* txn) {
  OTPDB_CHECK(txn->deliv == DeliveryState::pending);
  if (txn->running) {
    sim_.cancel(txn->completion);
    txn->running = false;
  }
  backend_.abort(txn->tid);
  txn->exec = ExecState::active;
  ++metrics_.aborts;
}

// ---------------------------------------------------------------------------
// Commit.
// ---------------------------------------------------------------------------

void LockTableReplica::commit(TxnRecord* txn) {
  OTPDB_CHECK(txn->exec == ExecState::executed);
  OTPDB_CHECK(txn->deliv == DeliveryState::committable);
  OTPDB_CHECK(txn->to_index > 0);
  OTPDB_CHECK(heads_all_queues(txn));

  txn->committed_at = sim_.now();
  CommitRecord record;
  if (commit_hook_) {
    record.site = self_;
    record.txn = txn->id;
    record.proc = txn->request->proc;
    record.klass = txn->request->klass;
    record.index = txn->to_index;
    record.at = txn->committed_at;
    const auto writes = store_.provisional_writes(txn->tid);
    record.writes.assign(writes.begin(), writes.end());
    record.reads = txn->last_reads;
  }

  backend_.commit(txn->tid, txn->to_index,
                  std::span<const ClassId>(&txn->request->klass, 1));
  const std::vector<ObjectId> objects = txn->request->access_set;
  for (ObjectId obj : objects) {
    ObjectQueue& queue = queues_[obj];
    OTPDB_CHECK(queue.front() == txn);
    queue.erase(queue.begin());
    // Multi-domain commit protocol: advance every covered watermark first,
    // wake waiters once below (so no query observes a half-committed state).
    queries_.note_committed(QueryEngine::Domain{obj}, txn->to_index, /*wake=*/false);
  }
  queries_.wake_waiters(txn->to_index);

  ++metrics_.committed;
  if (txn->request->origin == self_) {
    const double latency = static_cast<double>(txn->committed_at - txn->request->submitted_at);
    metrics_.commit_latency_ns.add(latency);
    metrics_.commit_latency_percentiles_ns.add(latency);
  }
  metrics_.commit_wait_ns.add(static_cast<double>(txn->committed_at - txn->executed_at));
  if (commit_hook_) commit_hook_(record);
  txns_.retire(txn);  // the record slot is recycled by the next acquire

  try_execute_heads_of(objects);
}

void LockTableReplica::try_execute_heads_of(const std::vector<ObjectId>& objects) {
  // Removing (or reordering around) a transaction may have promoted the
  // heads of these queues to hold-all-locks status.
  for (ObjectId obj : objects) {
    ObjectQueue& queue = queues_[obj];
    if (queue.empty()) continue;
    TxnRecord* head = queue.front();
    try_execute(head);
    // An executed+committable head that was waiting for this commit to reach
    // the front of every queue can now commit.
    if (head->exec == ExecState::executed && head->deliv == DeliveryState::committable &&
        !head->running && heads_all_queues(head)) {
      commit(head);
    }
  }
}

}  // namespace otpdb
