// Transaction records and state variables of the OTP algorithm (Section 3.3).
//
// Each transaction carries two state variables:
//   execution state: active (not finished executing) or executed
//   delivery state:  pending (after Opt-deliver) or committable (after
//                    TO-deliver)
// A transaction commits only when it is both executed and committable and sits
// at the head of *every* class queue it covers. The paper's base model
// (Section 2.3) pins each update to exactly one conflict class; the
// fine-granularity generalization (Section 6) lets an update span a sorted
// *set* of classes - it enqueues into all covered queues in tentative order
// and runs only while heading all of them.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "db/procedures.h"
#include "net/message.h"
#include "sim/simulator.h"
#include "util/assert.h"
#include "util/types.h"

namespace otpdb {

/// Normalizes a submitted class set in place: ascending, duplicate-free.
/// CHECK-fails on an empty set. Every engine's submit_update_multi runs this
/// before routing or broadcasting, so all sites see one canonical set.
inline void normalize_class_set(std::vector<ClassId>& classes) {
  OTPDB_CHECK_MSG(!classes.empty(), "a transaction must cover at least one class");
  std::sort(classes.begin(), classes.end());
  classes.erase(std::unique(classes.begin(), classes.end()), classes.end());
}

enum class ExecState : std::uint8_t { active, executed };
enum class DeliveryState : std::uint8_t { pending, committable };

inline const char* to_string(ExecState s) { return s == ExecState::active ? "a" : "e"; }
inline const char* to_string(DeliveryState s) {
  return s == DeliveryState::pending ? "p" : "c";
}

/// The TO-broadcast payload: a stored-procedure invocation request.
struct TxnRequest final : Payload {
  ProcId proc = 0;
  ClassId klass = 0;  ///< primary conflict class (== classes[0] when multi-class)
  /// Full covered class set, ascending and duplicate-free. Empty means the
  /// single class `klass` (the common case; avoids a heap allocation per
  /// single-class request). Multi-class engines enqueue into every covered
  /// class queue; use class_span() to iterate uniformly.
  std::vector<ClassId> classes;
  TxnArgs args;
  SiteId origin = 0;           ///< site that accepted the client request
  std::uint64_t client_seq = 0;  ///< origin-local request number
  SimTime submitted_at = 0;    ///< origin submit time (one simulated clock)
  SimTime exec_duration = 0;   ///< modelled execution cost of the procedure
  /// Absolute sim-time deadline; 0 means none. Past it the transaction is a
  /// drop candidate at every stage (pre-broadcast, opt-deliver, queue head).
  /// The queue-head decision is made against the per-class virtual service
  /// clock (see OtpReplica), a pure function of the definitive order, so all
  /// sites agree on every drop.
  SimTime deadline = 0;
  /// Pre-declared object access set; used by the fine-granularity lock-table
  /// engine (paper Section 6 / [13]). Empty under the class-queue model.
  std::vector<ObjectId> access_set;

  /// The covered classes as a span (always non-empty, ascending).
  std::span<const ClassId> class_span() const {
    return classes.empty() ? std::span<const ClassId>(&klass, 1)
                           : std::span<const ClassId>(classes);
  }
  bool multi_class() const { return classes.size() > 1; }
};

/// Per-site bookkeeping for one update transaction. Records live in a dense
/// per-replica table indexed by TxnId; a retired slot (commit/abort fully
/// processed) is recycled in place by the next transaction interned to the
/// same id, so steady state allocates nothing per transaction.
struct TxnRecord {
  MsgId id;
  TxnId tid = kInvalidTxnId;  ///< dense site-local identity (interned MsgId)
  std::shared_ptr<const TxnRequest> request;

  ExecState exec = ExecState::active;
  DeliveryState deliv = DeliveryState::pending;
  TOIndex to_index = 0;  ///< definitive index; 0 until TO-delivered

  bool running = false;       ///< execution submitted and not yet finished/aborted
  bool expired = false;       ///< deadline-dropped: retire instead of execute/commit
  EventId completion{};       ///< cancellable execution-completion event
  std::uint32_t attempts = 0; ///< times (re)submitted for execution

  SimTime opt_delivered_at = 0;
  SimTime to_delivered_at = 0;
  SimTime executed_at = 0;  ///< completion time of the last (successful) execution
  SimTime committed_at = 0;

  /// Read/write sets of the most recent execution (history checking).
  std::vector<std::pair<ObjectId, Value>> last_reads;
  std::vector<std::pair<ObjectId, Value>> last_writes;

  /// Cached class-queue membership: one entry per ClassQueue currently
  /// holding this record (at most one queue per class id). `ticket` is an
  /// absolute position stamp (queue index = ticket - queue base; the base
  /// advances on every head removal, so pops never touch cached positions).
  /// Maintained exclusively by ClassQueue - it turns contains() and the CC10
  /// self-lookup into O(1) instead of pointer scans over the queue, which
  /// matters once multi-class commits touch several queues - and
  /// cross-checked by check_invariants(). A queue destroyed wholesale leaves
  /// stale entries behind; the next append to a same-class queue reclaims
  /// them.
  struct QueuePos {
    ClassId klass = 0;
    std::uint64_t ticket = 0;
  };
  std::vector<QueuePos> queue_pos;

  QueuePos* find_queue_pos(ClassId klass) {
    for (auto& p : queue_pos)
      if (p.klass == klass) return &p;
    return nullptr;
  }
  const QueuePos* find_queue_pos(ClassId klass) const {
    for (const auto& p : queue_pos)
      if (p.klass == klass) return &p;
    return nullptr;
  }

  /// Reinitializes the record for a fresh transaction reusing this slot.
  /// (The read/write logs are cleared here but re-assigned wholesale by each
  /// execution, so only the record object itself is recycled, not their
  /// capacity.)
  void reset(MsgId new_id, TxnId new_tid, std::shared_ptr<const TxnRequest> new_request) {
    id = new_id;
    tid = new_tid;
    request = std::move(new_request);
    exec = ExecState::active;
    deliv = DeliveryState::pending;
    to_index = 0;
    running = false;
    expired = false;
    completion = EventId{};
    attempts = 0;
    opt_delivered_at = 0;
    to_delivered_at = 0;
    executed_at = 0;
    committed_at = 0;
    last_reads.clear();
    last_writes.clear();
    queue_pos.clear();
  }
};

/// Emitted at commit time for history checking and metrics.
struct CommitRecord {
  SiteId site = 0;
  MsgId txn;
  ProcId proc = 0;
  ClassId klass = 0;              ///< primary class (first covered class)
  std::vector<ClassId> classes;   ///< all covered classes; empty means {klass}
  TOIndex index = 0;
  SimTime at = 0;
  std::vector<std::pair<ObjectId, Value>> writes;
  std::vector<std::pair<ObjectId, Value>> reads;
};

using CommitHook = std::function<void(const CommitRecord&)>;

}  // namespace otpdb
