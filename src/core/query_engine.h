// Shared snapshot-query machinery (paper Section 5), used by every engine
// that processes update transactions in definitive order (OTP, the
// conservative baseline, and the fine-granularity lock-table engine).
//
// The engine tracks state per *conflict domain*. For the class-queue engines
// a domain is a conflict class (the paper's model); for the lock-table engine
// a domain is a single object. Per domain it records the definitive indices
// TO-delivered at this site and the last locally committed index. A query
// started after the i-th TO-delivery reads snapshot "i.5": for each domain it
// observes the version written by the youngest domain transaction with
// definitive index <= i, waiting for that transaction's local commit when it
// is still in flight.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "core/metrics.h"
#include "core/query.h"
#include "db/partition.h"
#include "db/versioned_store.h"
#include "sim/simulator.h"

namespace otpdb {

class QueryEngine {
 public:
  /// Domain identifier: a conflict class, or a dense object index.
  using Domain = std::uint64_t;
  using DomainOf = std::function<Domain(ObjectId)>;

  /// Class-granularity engine (paper Section 2.3): domain = conflict class.
  QueryEngine(Simulator& sim, const VersionedStore& store, const PartitionCatalog& catalog,
              ReplicaMetrics& metrics);

  /// Generic engine: `domain_of` maps objects to [0, domain_count) domains.
  QueryEngine(Simulator& sim, const VersionedStore& store, std::size_t domain_count,
              DomainOf domain_of, ReplicaMetrics& metrics);

  /// Client entry point: runs `fn` against the current snapshot after
  /// `exec_duration` of simulated work; `done` receives the report.
  void submit(QueryFn fn, SimTime exec_duration, QueryDoneFn done);

  /// Engine notification: a transaction covering `domain` was TO-delivered
  /// with `index`. For multi-domain transactions call once per domain after a
  /// single advance_to_index().
  void note_to_delivered(Domain domain, TOIndex index);

  /// Advances the site's highest processed definitive index (call exactly
  /// once per TO-delivery, before the per-domain notifications).
  void advance_to_index(TOIndex index);

  /// Engine notification: a transaction covering `domain` committed with
  /// `index`. Wakes queries that were waiting on that commit. A multi-domain
  /// commit passes wake = false per domain (so no query observes a state
  /// where only some covered watermarks moved) and calls wake_waiters(index)
  /// once afterwards.
  void note_committed(Domain domain, TOIndex index, bool wake = true);
  /// Wakes queries waiting on `index` without touching domain watermarks
  /// (multi-domain commit: call after per-domain note_committed calls).
  void wake_waiters(TOIndex index);

  /// Highest definitive index processed at this site.
  TOIndex last_to_index() const { return last_to_index_; }

  /// j = max{k <= snapshot : T_k covers domain}, 0 when no such txn exists.
  TOIndex snapshot_bound(Domain domain, TOIndex snapshot) const;

  /// Last committed definitive index of `domain` (the durable watermark used
  /// by crash recovery to suppress re-execution of replayed transactions).
  TOIndex last_committed(Domain domain) const { return last_committed_[domain]; }

  /// Crash recovery: clears volatile state (TO-delivery history, snapshot
  /// index, waiting queries) while keeping the per-domain durable commit
  /// watermarks. The history is rebuilt by the redo replay.
  void reset_volatile();

  /// Cold restart: overwrites the per-domain commit watermarks with the
  /// durable tier's recovered marks (possibly LOWER than before the crash -
  /// the unflushed group-commit tail died with RAM). Domains beyond the span
  /// reset to 0. Call after reset_volatile().
  void restore_watermarks(std::span<const TOIndex> per_domain);

  /// The oldest version index any present or future snapshot read can still
  /// require: min(active query snapshots, last_to_index). Safe argument for
  /// VersionedStore::prune (versions strictly older than the horizon are
  /// unreachable except the newest one per object, which prune keeps).
  TOIndex gc_horizon() const;

 private:
  // Queries live in a recycled slot pool: the scheduled event and the parked
  // waiter entries carry a slot index, not a shared_ptr, so neither submit
  // nor park/wake touches the heap once the pool is warm. A slot is freed
  // exactly when its query completes (it is referenced from one place at a
  // time: the scheduled event, then at most one waiter entry per retry).
  struct RunningQuery {
    QueryFn fn;
    QueryDoneFn done;
    TOIndex snapshot = 0;
    SimTime submitted_at = 0;
    std::uint32_t attempts = 0;
  };
  using QuerySlot = std::uint32_t;

  /// A parked query: re-run when the transaction with definitive index
  /// `index` commits locally. Kept sorted by index (FIFO within an index).
  struct Waiter {
    TOIndex index;
    QuerySlot slot;
  };

  QuerySlot acquire_slot();
  void release_slot(QuerySlot slot);
  void run(QuerySlot slot);
  Value read(ObjectId obj, TOIndex snapshot) const;  // throws detail::SnapshotNotReady

  Simulator& sim_;
  const VersionedStore& store_;
  DomainOf domain_of_;
  ReplicaMetrics& metrics_;

  std::vector<std::vector<TOIndex>> to_history_;  // per domain, ascending
  std::vector<TOIndex> last_committed_;           // per domain
  /// Per-domain floor set by a cold restart: indices <= it were restored from
  /// disk without re-entering to_history_. 0 everywhere in normal operation.
  std::vector<TOIndex> restored_floor_;
  TOIndex last_to_index_ = 0;
  std::vector<RunningQuery> pool_;       // slot-indexed, recycled
  std::vector<QuerySlot> free_slots_;
  std::vector<Waiter> waiters_;          // sorted by index, FIFO within ties
  std::vector<QuerySlot> wake_scratch_;  // reused by wake_waiters
  std::map<TOIndex, std::size_t> active_snapshots_;  // snapshot -> live queries
};

}  // namespace otpdb
