// Per-replica metrics collected during a run.
#pragma once

#include <cstdint>

#include "util/stats.h"

namespace otpdb {

struct ReplicaMetrics {
  // Update-transaction path.
  std::uint64_t submitted_updates = 0;  ///< client requests accepted at this site
  std::uint64_t committed = 0;          ///< transactions committed at this site
  std::uint64_t aborts = 0;             ///< CC8 undo events (wrongly ordered head)
  std::uint64_t reexecutions = 0;       ///< submissions beyond a txn's first
  std::uint64_t mismatch_reorders = 0;  ///< CC10 moved a transaction (conflicting mismatch)
  std::uint64_t ticket_timeouts = 0;    ///< liveness watchdog firings (OtpReplicaConfig)

  // Overload plane (ingress gate + deadline budgets). The gate counters are
  // origin-site-local; the queue-drop counter is replicated (every site makes
  // the same drop decision from the definitive order, so it is equal at all
  // sites for the same run).
  std::uint64_t admitted_updates = 0;          ///< submissions past the ingress gate
  std::uint64_t shed_updates = 0;              ///< refused by admission control
  std::uint64_t backpressured_updates = 0;     ///< refused by abcast sender cap
  std::uint64_t deadline_expired_presubmit = 0;  ///< dead on arrival at submit
  std::uint64_t deadline_skips_opt = 0;   ///< optimistic execution skipped (expired at opt-deliver)
  std::uint64_t deadline_expired_queue = 0;  ///< dropped at queue head by the virtual service clock

  /// Client-visible commit latency at the origin site (submit -> local commit).
  OnlineStats commit_latency_ns;
  /// Same samples, kept exactly for tail percentiles (p95/p99 in the benches).
  PercentileTracker commit_latency_percentiles_ns;
  /// Gap between local execution completion and commit (waiting for TO-deliver);
  /// ~0 means the ordering latency was fully hidden behind execution.
  OnlineStats commit_wait_ns;
  /// Gap between Opt-deliver and TO-deliver per transaction (the optimistic window).
  OnlineStats opt_to_gap_ns;

  // Query path (Section 5).
  std::uint64_t queries_started = 0;
  std::uint64_t queries_done = 0;
  std::uint64_t query_retries = 0;  ///< re-runs because a snapshot version was in flight
  OnlineStats query_latency_ns;
};

}  // namespace otpdb
