#include "core/cluster.h"

#include <unistd.h>

#include <atomic>
#include <utility>

#include "util/assert.h"

namespace otpdb {

Cluster::Cluster(ClusterConfig config)
    : Cluster(std::move(config), [](const ReplicaDeps& deps) {
        return std::make_unique<OtpReplica>(deps.sim, deps.abcast, deps.storage, deps.catalog,
                                            deps.registry, deps.site);
      }) {}

Cluster::Cluster(ClusterConfig config, ReplicaFactory factory)
    : config_(config),
      rng_(config.seed),
      catalog_(config.n_classes, config.objects_per_class) {
  build(std::move(factory));
}

Cluster::~Cluster() {
  // Replicas and backends hold data-dir file handles; drop them before
  // removing a cluster-owned temp directory.
  replicas_.clear();
  backends_.clear();
  if (owns_data_root_) {
    std::error_code ec;
    std::filesystem::remove_all(data_root_, ec);
  }
}

void Cluster::build(ReplicaFactory factory) {
  OTPDB_CHECK(config_.n_sites >= 1);
  if (config_.storage.backend == StorageBackendKind::durable) {
    if (config_.storage.data_dir.empty()) {
      static std::atomic<std::uint64_t> counter{0};
      data_root_ = std::filesystem::temp_directory_path() /
                   ("otpdb-" + std::to_string(::getpid()) + "-" +
                    std::to_string(counter.fetch_add(1)));
      owns_data_root_ = true;
    } else {
      data_root_ = config_.storage.data_dir;
    }
    std::error_code ec;
    std::filesystem::create_directories(data_root_, ec);
    OTPDB_CHECK_MSG(!ec, "cannot create the cluster data directory");
  }
  if (config_.parallel.sharded()) {
    engine_ = std::make_unique<ShardedEngine>(config_.n_sites, config_.parallel);
  }
  // The network runs on the hub shard; each site's protocol stack (failure
  // detector, broadcast endpoint, replica) runs on the site's own shard. In
  // classic mode both are the one simulator.
  net_ = std::make_unique<Network>(sim(), config_.n_sites, config_.net, rng_.split());
  if (engine_) net_->attach_engine(*engine_);
  if (config_.chaos.enabled()) {
    // Armed with its own split AFTER the network's, so a chaos-off run draws
    // the exact same streams as a pre-chaos build.
    net_->arm_chaos(config_.chaos, rng_.split());
  }

  for (SiteId s = 0; s < config_.n_sites; ++s) {
    fds_.push_back(std::make_unique<FailureDetector>(site_sim(s), *net_, s, config_.fd));
  }
  for (SiteId s = 0; s < config_.n_sites; ++s) {
    switch (config_.abcast) {
      case AbcastKind::optimistic:
        abcasts_.push_back(
            std::make_unique<OptAbcast>(site_sim(s), *net_, *fds_[s], s, config_.opt));
        break;
      case AbcastKind::sequencer:
        abcasts_.push_back(
            std::make_unique<SequencerAbcast>(site_sim(s), *net_, s, config_.sequencer));
        break;
    }
    // Dense object index covering the catalog's whole contiguous id space.
    // Durable backends schedule their flush/checkpoint events on the site's
    // own shard, keeping the sharded engine's phase confinement intact.
    backends_.push_back(make_storage_backend(config_.storage, site_sim(s), s,
                                             config_.n_classes, catalog_.object_count(),
                                             data_root_));
  }
  for (SiteId s = 0; s < config_.n_sites; ++s) {
    replicas_.push_back(factory(
        ReplicaDeps{site_sim(s), *net_, *abcasts_[s], *backends_[s], catalog_, registry_, s}));
    OTPDB_CHECK(replicas_.back() != nullptr);
    replicas_.back()->configure_admission(config_.admission);
  }
  if (config_.enable_failure_detector) {
    for (auto& fd : fds_) fd->start();
  }
}

OtpReplica* Cluster::otp(SiteId site) {
  return dynamic_cast<OtpReplica*>(replicas_[site].get());
}

void Cluster::recover_site(SiteId site) {
  OTPDB_CHECK(site < config_.n_sites);
  auto* abcast = dynamic_cast<OptAbcast*>(abcasts_[site].get());
  OTPDB_CHECK_MSG(abcast != nullptr, "recovery requires the optimistic broadcast");
  replicas_[site]->crash_recover_reset();
  backends_[site]->reopen();
  abcast->crash_reset();
  net_->recover(site);
  abcast->begin_recovery();
}

void Cluster::restart_site_from_disk(SiteId site, bool full_body_replay) {
  OTPDB_CHECK(site < config_.n_sites);
  auto* abcast = dynamic_cast<OptAbcast*>(abcasts_[site].get());
  OTPDB_CHECK_MSG(abcast != nullptr, "recovery requires the optimistic broadcast");
  const RecoveredState recovered = backends_[site]->restart_from_disk();
  replicas_[site]->restart_from_disk(recovered.class_watermarks, recovered.durable_floor);
  abcast->crash_reset();
  net_->recover(site);
  // With full body replay peers resend every slot with its request attached
  // (floor 0 = nothing is tombstoned); the restored watermarks above still
  // keep already-durable work from re-executing, but the replica sees every
  // body and can rebuild its per-class virtual service clock.
  abcast->begin_recovery(full_body_replay ? 0 : recovered.durable_floor);
}

void Cluster::load_everywhere(ObjectId obj, Value value) {
  for (auto& backend : backends_) backend->load(obj, value);
}

bool Cluster::quiesce(SimTime deadline_span) {
  const SimTime deadline = sim().now() + deadline_span;
  while (sim().now() < deadline) {
    bool idle = true;
    for (const auto& replica : replicas_) idle &= replica->in_flight() == 0;
    if (idle) return true;
    run_for(5 * kMillisecond);
  }
  bool idle = true;
  for (const auto& replica : replicas_) idle &= replica->in_flight() == 0;
  return idle;
}

std::uint64_t Cluster::total_committed() const {
  std::uint64_t n = 0;
  for (const auto& replica : replicas_) n += replica->metrics().committed;
  return n;
}

std::size_t Cluster::prune_all_versions() {
  std::size_t dropped = 0;
  for (SiteId s = 0; s < config_.n_sites; ++s) {
    if (OtpReplica* replica = otp(s)) dropped += replica->prune_versions();
  }
  return dropped;
}

}  // namespace otpdb
