#include "core/cluster.h"

#include <utility>

#include "util/assert.h"

namespace otpdb {

Cluster::Cluster(ClusterConfig config)
    : Cluster(std::move(config), [](const ReplicaDeps& deps) {
        return std::make_unique<OtpReplica>(deps.sim, deps.abcast, deps.store, deps.catalog,
                                            deps.registry, deps.site);
      }) {}

Cluster::Cluster(ClusterConfig config, ReplicaFactory factory)
    : config_(config),
      rng_(config.seed),
      catalog_(config.n_classes, config.objects_per_class) {
  build(std::move(factory));
}

void Cluster::build(ReplicaFactory factory) {
  OTPDB_CHECK(config_.n_sites >= 1);
  if (config_.parallel.sharded()) {
    engine_ = std::make_unique<ShardedEngine>(config_.n_sites, config_.parallel);
  }
  // The network runs on the hub shard; each site's protocol stack (failure
  // detector, broadcast endpoint, replica) runs on the site's own shard. In
  // classic mode both are the one simulator.
  net_ = std::make_unique<Network>(sim(), config_.n_sites, config_.net, rng_.split());
  if (engine_) net_->attach_engine(*engine_);

  for (SiteId s = 0; s < config_.n_sites; ++s) {
    fds_.push_back(std::make_unique<FailureDetector>(site_sim(s), *net_, s, config_.fd));
  }
  for (SiteId s = 0; s < config_.n_sites; ++s) {
    switch (config_.abcast) {
      case AbcastKind::optimistic:
        abcasts_.push_back(
            std::make_unique<OptAbcast>(site_sim(s), *net_, *fds_[s], s, config_.opt));
        break;
      case AbcastKind::sequencer:
        abcasts_.push_back(
            std::make_unique<SequencerAbcast>(site_sim(s), *net_, s, config_.sequencer));
        break;
    }
    // Dense object index covering the catalog's whole contiguous id space.
    stores_.push_back(std::make_unique<VersionedStore>(catalog_.object_count()));
  }
  for (SiteId s = 0; s < config_.n_sites; ++s) {
    replicas_.push_back(factory(
        ReplicaDeps{site_sim(s), *net_, *abcasts_[s], *stores_[s], catalog_, registry_, s}));
    OTPDB_CHECK(replicas_.back() != nullptr);
  }
  if (config_.enable_failure_detector) {
    for (auto& fd : fds_) fd->start();
  }
}

OtpReplica* Cluster::otp(SiteId site) {
  return dynamic_cast<OtpReplica*>(replicas_[site].get());
}

void Cluster::recover_site(SiteId site) {
  OTPDB_CHECK(site < config_.n_sites);
  auto* replica = otp(site);
  auto* abcast = dynamic_cast<OptAbcast*>(abcasts_[site].get());
  OTPDB_CHECK_MSG(replica != nullptr && abcast != nullptr,
                  "recovery requires the OTP engine over the optimistic broadcast");
  replica->crash_recover_reset();
  abcast->crash_reset();
  net_->recover(site);
  abcast->begin_recovery();
}

void Cluster::load_everywhere(ObjectId obj, Value value) {
  for (auto& store : stores_) store->load(obj, value);
}

bool Cluster::quiesce(SimTime deadline_span) {
  const SimTime deadline = sim().now() + deadline_span;
  while (sim().now() < deadline) {
    bool idle = true;
    for (const auto& replica : replicas_) idle &= replica->in_flight() == 0;
    if (idle) return true;
    run_for(5 * kMillisecond);
  }
  bool idle = true;
  for (const auto& replica : replicas_) idle &= replica->in_flight() == 0;
  return idle;
}

std::uint64_t Cluster::total_committed() const {
  std::uint64_t n = 0;
  for (const auto& replica : replicas_) n += replica->metrics().committed;
  return n;
}

std::size_t Cluster::prune_all_versions() {
  std::size_t dropped = 0;
  for (SiteId s = 0; s < config_.n_sites; ++s) {
    if (OtpReplica* replica = otp(s)) dropped += replica->prune_versions();
  }
  return dropped;
}

}  // namespace otpdb
