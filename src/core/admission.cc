#include "core/admission.h"

namespace otpdb {

bool AdmissionController::admit(std::size_t depth, std::uint64_t lag) {
  if (!config_.enabled) return true;
  if (!shedding_) {
    // Either signal alone is enough to engage: a deep local queue means the
    // site cannot execute what it already holds, a wide opt/TO gap means the
    // ordering layer is the bottleneck and more traffic only widens it.
    if (depth >= config_.shed_depth || lag >= config_.shed_lag) {
      shedding_ = true;
      ++stats_.shed_engagements;
    }
  } else {
    // Resume only once BOTH signals are back under their (lower) resume
    // marks; releasing on the shed thresholds themselves would flap.
    if (depth <= config_.resume_depth && lag <= config_.resume_lag) {
      shedding_ = false;
      ++stats_.shed_releases;
    }
  }
  return !shedding_;
}

}  // namespace otpdb
