#include "core/class_queue.h"

#include <algorithm>

namespace otpdb {

bool ClassQueue::reorder_before_first_pending(TxnRecord* txn) {
  auto self = std::find(queue_.begin(), queue_.end(), txn);
  OTPDB_CHECK_MSG(self != queue_.end(), "CC10 on a transaction missing from its queue");
  const auto old_pos = static_cast<std::size_t>(self - queue_.begin());
  queue_.erase(self);

  auto first_pending = std::find_if(queue_.begin(), queue_.end(), [](const TxnRecord* t) {
    return t->deliv == DeliveryState::pending;
  });
  const auto new_pos = static_cast<std::size_t>(first_pending - queue_.begin());
  queue_.insert(first_pending, txn);
  return new_pos != old_pos;
}

void ClassQueue::check_invariants() const {
  bool seen_pending = false;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const TxnRecord* t = queue_[i];
    if (t->deliv == DeliveryState::pending) {
      seen_pending = true;
    } else {
      OTPDB_CHECK_MSG(!seen_pending, "committable transactions must form a prefix");
    }
    if (i > 0) {
      OTPDB_CHECK_MSG(!t->running && t->exec == ExecState::active,
                      "only the head may be running or executed");
    }
  }
}

}  // namespace otpdb
