#include "core/class_queue.h"

namespace otpdb {

void ClassQueue::append(TxnRecord* txn) {
  const std::uint64_t ticket = base_ + queue_.size();
  if (TxnRecord::QueuePos* stale = txn->find_queue_pos(klass_)) {
    // A queue destroyed wholesale (bench teardown, crash reset with reused
    // records) leaves its entries on the records; a record lives in at most
    // one queue per class id, so re-appending reclaims the slot.
    stale->ticket = ticket;
  } else {
    txn->queue_pos.push_back(TxnRecord::QueuePos{klass_, ticket});
  }
  queue_.push_back(txn);
  if (txn->deliv == DeliveryState::committable && committable_ + 1 == queue_.size()) {
    ++committable_;
  }
}

void ClassQueue::remove_head(TxnRecord* txn) {
  OTPDB_CHECK(!queue_.empty() && queue_.front() == txn);
  queue_.pop_front();
  ++base_;  // cached tickets of the remaining entries stay valid
  if (committable_ > 0) --committable_;
  for (auto it = txn->queue_pos.begin(); it != txn->queue_pos.end(); ++it) {
    if (it->klass == klass_) {
      txn->queue_pos.erase(it);
      break;
    }
  }
}

bool ClassQueue::reorder_before_first_pending(TxnRecord* txn) {
  TxnRecord::QueuePos* pos = txn->find_queue_pos(klass_);
  OTPDB_CHECK_MSG(pos != nullptr, "CC10 on a transaction missing from its queue");
  const std::size_t old_pos = index_of(*pos);
  OTPDB_CHECK_MSG(old_pos < queue_.size() && queue_[old_pos] == txn,
                  "cached queue position out of sync");
  OTPDB_CHECK_MSG(old_pos >= committable_, "CC10 must start from the pending suffix");
  const std::size_t new_pos = committable_;  // directly after the committable prefix
  ++committable_;  // txn joins the prefix (its delivery state is committable now)
  if (old_pos == new_pos) return false;

  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(old_pos));
  queue_.insert(queue_.begin() + static_cast<std::ptrdiff_t>(new_pos), txn);
  pos->ticket = base_ + new_pos;
  // The displaced entries (previously [new_pos, old_pos)) shifted up by one.
  for (std::size_t i = new_pos + 1; i <= old_pos; ++i) {
    TxnRecord::QueuePos* moved = queue_[i]->find_queue_pos(klass_);
    OTPDB_ASSERT(moved != nullptr);
    moved->ticket = base_ + i;
  }
  return true;
}

void ClassQueue::check_invariants() const {
  std::size_t prefix = 0;
  bool seen_pending = false;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const TxnRecord* t = queue_[i];
    if (t->deliv == DeliveryState::pending) {
      seen_pending = true;
    } else {
      OTPDB_CHECK_MSG(!seen_pending, "committable transactions must form a prefix");
      ++prefix;
    }
    if (i > 0) {
      OTPDB_CHECK_MSG(!t->running && t->exec == ExecState::active,
                      "only the head may be running or executed");
    }
    const TxnRecord::QueuePos* pos = t->find_queue_pos(klass_);
    OTPDB_CHECK_MSG(pos != nullptr && index_of(*pos) == i,
                    "cached queue position out of sync with the queue");
  }
  OTPDB_CHECK_MSG(committable_ == prefix, "committable prefix counter out of sync");
}

}  // namespace otpdb
