#include "core/query_engine.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace otpdb {

QueryEngine::QueryEngine(Simulator& sim, const VersionedStore& store,
                         const PartitionCatalog& catalog, ReplicaMetrics& metrics)
    : QueryEngine(sim, store, catalog.class_count(),
                  [&catalog](ObjectId obj) { return Domain{catalog.class_of(obj)}; }, metrics) {}

QueryEngine::QueryEngine(Simulator& sim, const VersionedStore& store, std::size_t domain_count,
                         DomainOf domain_of, ReplicaMetrics& metrics)
    : sim_(sim),
      store_(store),
      domain_of_(std::move(domain_of)),
      metrics_(metrics),
      to_history_(domain_count),
      last_committed_(domain_count, 0) {}

void QueryEngine::submit(QueryFn fn, SimTime exec_duration, QueryDoneFn done) {
  auto query = std::make_shared<RunningQuery>();
  query->fn = std::move(fn);
  query->done = std::move(done);
  query->snapshot = last_to_index_;  // the "i" of the paper's index "i.5"
  query->submitted_at = sim_.now();
  ++metrics_.queries_started;
  ++active_snapshots_[query->snapshot];
  sim_.schedule_after(exec_duration, [this, query] { run(query); });
}

void QueryEngine::advance_to_index(TOIndex index) {
  OTPDB_CHECK(index > last_to_index_);
  last_to_index_ = index;
}

void QueryEngine::note_to_delivered(Domain domain, TOIndex index) {
  if (index > last_to_index_) advance_to_index(index);
  auto& history = to_history_[domain];
  OTPDB_ASSERT(history.empty() || history.back() < index);
  history.push_back(index);
}

void QueryEngine::note_committed(Domain domain, TOIndex index, bool wake) {
  OTPDB_ASSERT(last_committed_[domain] < index);
  last_committed_[domain] = index;
  if (wake) wake_waiters(index);
}

void QueryEngine::wake_waiters(TOIndex index) {
  auto it = waiters_.find(index);
  if (it == waiters_.end()) return;
  std::vector<std::shared_ptr<RunningQuery>> ready = std::move(it->second);
  waiters_.erase(it);
  for (auto& q : ready) run(std::move(q));
}

void QueryEngine::reset_volatile() {
  for (auto& history : to_history_) history.clear();
  last_to_index_ = 0;
  waiters_.clear();
  active_snapshots_.clear();
}

TOIndex QueryEngine::gc_horizon() const {
  // The oldest snapshot still readable is q_min = min(active, last_to_index);
  // a read at q_min needs the newest version with index <= q_min, which
  // VersionedStore::prune(h) preserves when h = q_min + 1 (it keeps the
  // newest version strictly below the horizon).
  const TOIndex q_min = active_snapshots_.empty()
                            ? last_to_index_
                            : std::min(last_to_index_, active_snapshots_.begin()->first);
  return q_min + 1;
}

TOIndex QueryEngine::snapshot_bound(Domain domain, TOIndex snapshot) const {
  const auto& history = to_history_[domain];
  auto it = std::upper_bound(history.begin(), history.end(), snapshot);
  return it == history.begin() ? 0 : *std::prev(it);
}

Value QueryEngine::read(ObjectId obj, TOIndex snapshot) const {
  const Domain domain = domain_of_(obj);
  OTPDB_CHECK_MSG(domain < to_history_.size(), "query read outside the catalogued objects");
  const TOIndex bound = snapshot_bound(domain, snapshot);
  if (bound > last_committed_[domain]) {
    // The version this snapshot must observe is TO-delivered but its commit
    // is still in flight locally: the query has to wait for it.
    throw detail::SnapshotNotReady{static_cast<ClassId>(domain), bound};
  }
  return store_.read_snapshot(obj, snapshot).value_or(Value{std::int64_t{0}});
}

void QueryEngine::run(std::shared_ptr<RunningQuery> query) {
  ++query->attempts;
  if (query->attempts > 1) ++metrics_.query_retries;
  QueryContext ctx(query->snapshot,
                   [this](ObjectId obj, TOIndex snapshot) { return read(obj, snapshot); });
  try {
    query->fn(ctx);
  } catch (const detail::SnapshotNotReady& wait) {
    waiters_[wait.index].push_back(std::move(query));
    return;
  }
  ++metrics_.queries_done;
  auto active = active_snapshots_.find(query->snapshot);
  if (active != active_snapshots_.end() && --active->second == 0) {
    active_snapshots_.erase(active);
  }
  QueryReport report;
  report.snapshot_index = query->snapshot;
  report.submitted_at = query->submitted_at;
  report.completed_at = sim_.now();
  report.attempts = query->attempts;
  report.reads = ctx.reads();
  metrics_.query_latency_ns.add(static_cast<double>(report.completed_at - report.submitted_at));
  if (query->done) query->done(report);
}

}  // namespace otpdb
