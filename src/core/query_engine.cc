#include "core/query_engine.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace otpdb {

QueryEngine::QueryEngine(Simulator& sim, const VersionedStore& store,
                         const PartitionCatalog& catalog, ReplicaMetrics& metrics)
    : QueryEngine(sim, store, catalog.class_count(),
                  [&catalog](ObjectId obj) { return Domain{catalog.class_of(obj)}; }, metrics) {}

QueryEngine::QueryEngine(Simulator& sim, const VersionedStore& store, std::size_t domain_count,
                         DomainOf domain_of, ReplicaMetrics& metrics)
    : sim_(sim),
      store_(store),
      domain_of_(std::move(domain_of)),
      metrics_(metrics),
      to_history_(domain_count),
      last_committed_(domain_count, 0),
      restored_floor_(domain_count, 0) {}

QueryEngine::QuerySlot QueryEngine::acquire_slot() {
  if (!free_slots_.empty()) {
    const QuerySlot slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  pool_.emplace_back();
  return static_cast<QuerySlot>(pool_.size() - 1);
}

void QueryEngine::release_slot(QuerySlot slot) {
  pool_[slot].fn = nullptr;  // drop closures now; the slot object is recycled
  pool_[slot].done = nullptr;
  free_slots_.push_back(slot);
}

void QueryEngine::submit(QueryFn fn, SimTime exec_duration, QueryDoneFn done) {
  const QuerySlot slot = acquire_slot();
  RunningQuery& query = pool_[slot];
  query.fn = std::move(fn);
  query.done = std::move(done);
  query.snapshot = last_to_index_;  // the "i" of the paper's index "i.5"
  query.submitted_at = sim_.now();
  query.attempts = 0;
  ++metrics_.queries_started;
  ++active_snapshots_[query.snapshot];
  sim_.schedule_after(exec_duration, [this, slot] { run(slot); });
}

void QueryEngine::advance_to_index(TOIndex index) {
  OTPDB_CHECK(index > last_to_index_);
  last_to_index_ = index;
}

void QueryEngine::note_to_delivered(Domain domain, TOIndex index) {
  if (index > last_to_index_) advance_to_index(index);
  auto& history = to_history_[domain];
  OTPDB_ASSERT(history.empty() || history.back() < index);
  history.push_back(index);
}

void QueryEngine::note_committed(Domain domain, TOIndex index, bool wake) {
  OTPDB_ASSERT(last_committed_[domain] < index);
  last_committed_[domain] = index;
  if (wake) wake_waiters(index);
}

void QueryEngine::wake_waiters(TOIndex index) {
  const auto first = std::lower_bound(
      waiters_.begin(), waiters_.end(), index,
      [](const Waiter& w, TOIndex idx) { return w.index < idx; });
  auto last = first;
  while (last != waiters_.end() && last->index == index) ++last;
  if (first == last) return;
  // Collect before running: a rerun may park again and mutate waiters_.
  wake_scratch_.clear();
  for (auto it = first; it != last; ++it) wake_scratch_.push_back(it->slot);
  waiters_.erase(first, last);
  for (const QuerySlot slot : wake_scratch_) run(slot);
}

void QueryEngine::reset_volatile() {
  for (auto& history : to_history_) history.clear();
  last_to_index_ = 0;
  for (const Waiter& w : waiters_) release_slot(w.slot);  // parked queries are dropped
  waiters_.clear();
  active_snapshots_.clear();
}

void QueryEngine::restore_watermarks(std::span<const TOIndex> per_domain) {
  for (std::size_t d = 0; d < last_committed_.size(); ++d) {
    last_committed_[d] = d < per_domain.size() ? per_domain[d] : 0;
    restored_floor_[d] = last_committed_[d];
  }
}

TOIndex QueryEngine::gc_horizon() const {
  // The oldest snapshot still readable is q_min = min(active, last_to_index);
  // a read at q_min needs the newest version with index <= q_min, which
  // VersionedStore::prune(h) preserves when h = q_min + 1 (it keeps the
  // newest version strictly below the horizon).
  const TOIndex q_min = active_snapshots_.empty()
                            ? last_to_index_
                            : std::min(last_to_index_, active_snapshots_.begin()->first);
  return q_min + 1;
}

TOIndex QueryEngine::snapshot_bound(Domain domain, TOIndex snapshot) const {
  const auto& history = to_history_[domain];
  auto it = std::upper_bound(history.begin(), history.end(), snapshot);
  const TOIndex from_history = it == history.begin() ? 0 : *std::prev(it);
  // After a cold restart, indices at or below the restored watermark were
  // TO-delivered as body-less tombstones and never entered the history, but
  // their versions were rebuilt from checkpoint + WAL, so the watermark is an
  // equally valid lower bound on the snapshot's youngest covering
  // transaction. restored_floor_ is 0 outside durable restarts, making this
  // exactly the pre-storage-tier bound in normal operation.
  return std::max(from_history, std::min(snapshot, restored_floor_[domain]));
}

Value QueryEngine::read(ObjectId obj, TOIndex snapshot) const {
  const Domain domain = domain_of_(obj);
  OTPDB_CHECK_MSG(domain < to_history_.size(), "query read outside the catalogued objects");
  const TOIndex bound = snapshot_bound(domain, snapshot);
  if (bound > last_committed_[domain]) {
    // The version this snapshot must observe is TO-delivered but its commit
    // is still in flight locally: the query has to wait for it.
    throw detail::SnapshotNotReady{static_cast<ClassId>(domain), bound};
  }
  return store_.read_snapshot(obj, snapshot).value_or(Value{std::int64_t{0}});
}

void QueryEngine::run(QuerySlot slot) {
  RunningQuery& query = pool_[slot];
  ++query.attempts;
  if (query.attempts > 1) ++metrics_.query_retries;
  QueryContext ctx(query.snapshot,
                   [this](ObjectId obj, TOIndex snapshot) { return read(obj, snapshot); });
  try {
    query.fn(ctx);
  } catch (const detail::SnapshotNotReady& wait) {
    // Park sorted by the awaited index; upper_bound keeps arrival order
    // within an index (the old map<index, vector> FIFO semantics).
    const auto pos = std::upper_bound(
        waiters_.begin(), waiters_.end(), wait.index,
        [](TOIndex idx, const Waiter& w) { return idx < w.index; });
    waiters_.insert(pos, Waiter{wait.index, slot});
    return;
  }
  ++metrics_.queries_done;
  auto active = active_snapshots_.find(query.snapshot);
  if (active != active_snapshots_.end() && --active->second == 0) {
    active_snapshots_.erase(active);
  }
  QueryReport report;
  report.snapshot_index = query.snapshot;
  report.submitted_at = query.submitted_at;
  report.completed_at = sim_.now();
  report.attempts = query.attempts;
  report.reads = ctx.reads();
  metrics_.query_latency_ns.add(static_cast<double>(report.completed_at - report.submitted_at));
  // Move the completion callback out before releasing: done() may submit a
  // fresh query and legitimately reuse this slot.
  QueryDoneFn done = std::move(query.done);
  release_slot(slot);
  if (done) done(report);
}

}  // namespace otpdb
