// OtpReplica - the OTP algorithm for optimistic transaction processing
// (paper Section 3, Figures 4-6).
//
// One OtpReplica runs at each site, wired to that site's atomic-broadcast
// endpoint and versioned store. The three algorithm modules are methods
// driven by events, exactly as the paper frames them ("steps in the lifetime
// of a transaction", not threads):
//
//   Serialization module (Figure 4)    <- Opt-deliver
//     S1 append to the class queue, S2 mark pending+active,
//     S3-S5 submit for execution if alone in the queue.
//
//   Execution module (Figure 5)        <- execution completion
//     E1-E3 commit if already committable and start the next transaction,
//     E4-E6 otherwise mark executed.
//
//   Correctness check module (Figure 6) <- TO-deliver
//     CC1-CC4 commit an executed head, else
//     CC5-CC13 mark committable, abort a wrongly ordered pending head (undo
//     via the store's provisional-version rollback), reorder before the first
//     pending transaction, and resubmit if now at the head.
//
// Update transactions are TO-broadcast (read-one/write-all replica control,
// Section 2.4); queries run locally on snapshots (Section 5, QueryEngine).
//
// Multi-class (cross-partition) transactions generalize every module to a
// sorted class *set* (Section 6 direction): Opt-deliver enqueues into every
// covered class queue, execution starts only while the transaction heads all
// of them, CC8/CC10 run per covered queue, and commit removes the head of and
// advances the commit watermark of every covered class atomically. All sites
// enqueue in the same tentative order and acquire queues in ascending class
// order, so the head-of-all gating cannot deadlock: queue contents stay
// consistent with one total order (committable prefix in definitive order,
// pending suffix in tentative order), and the least transaction in that order
// always heads all its queues.
//
// Transaction identity is interned at Opt-deliver time: the broadcast's
// MsgId becomes a dense site-local TxnId, and the transaction table, the
// store's provisional write-sets and the commit path all index flat arrays by
// it. Retired ids (and their record/write-set storage) are recycled.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "abcast/abcast.h"
#include "core/class_queue.h"
#include "core/metrics.h"
#include "core/query.h"
#include "core/query_engine.h"
#include "core/replica_base.h"
#include "core/txn.h"
#include "core/txn_table.h"
#include "db/partition.h"
#include "db/procedures.h"
#include "db/storage_backend.h"
#include "db/versioned_store.h"
#include "sim/simulator.h"
#include "sim/timer_wheel.h"

namespace otpdb {

struct OtpReplicaConfig {
  /// Validate queue invariants after every module step (debug/property tests).
  bool paranoid_checks = false;
  /// Liveness watchdog on class-queue tickets: a transaction still
  /// uncommitted this long after its Opt-delivery bumps
  /// ReplicaMetrics::ticket_timeouts (detection only - the commit order is
  /// fixed by TO-delivery, so nothing is aborted). 0 disables the watchdog.
  /// Timers are armed per transaction and cancelled at commit, so they live
  /// on the replica's timer wheel (sim/timer_wheel.h), not the event heap.
  SimTime ticket_timeout = 0;
};

class OtpReplica final : public ReplicaBase {
 public:
  OtpReplica(Simulator& sim, AtomicBroadcast& abcast, StorageBackend& storage,
             const PartitionCatalog& catalog, const ProcedureRegistry& registry, SiteId self,
             OtpReplicaConfig config = {});

  // ReplicaBase:
  SubmitResult submit_update(ProcId proc, ClassId klass, TxnArgs args, SimTime exec_duration,
                             SimTime deadline = 0) override;
  /// Cross-partition update: enqueued into every covered class queue on
  /// Opt-deliver, executed only while heading all of them, committed/aborted
  /// across all of them atomically. Queues are always entered in ascending
  /// class order at every site (same tentative order everywhere), so the
  /// gating is deadlock-free.
  SubmitResult submit_update_multi(ProcId proc, std::vector<ClassId> classes, TxnArgs args,
                                   SimTime exec_duration, SimTime deadline = 0) override;
  void submit_query(QueryFn fn, SimTime exec_duration, QueryDoneFn done) override;
  const ReplicaMetrics& metrics() const override { return metrics_; }
  SiteId site() const override { return self_; }

  /// Commit hook for history recording (checker) - invoked at every commit.
  void set_commit_hook(CommitHook hook) override { commit_hook_ = std::move(hook); }

  /// Transactions not yet committed plus queries not yet answered.
  std::size_t in_flight() const override {
    return txns_.live() + (metrics_.queries_started - metrics_.queries_done);
  }

  /// Introspection for tests: the class queue of `klass`.
  const ClassQueue& class_queue(ClassId klass) const { return queues_[klass]; }
  /// Highest definitive index processed at this site.
  TOIndex last_to_index() const { return queries_.last_to_index(); }
  /// Introspection for tests: the MsgId -> TxnId interner.
  const TxnIdInterner& interner() const { return txns_.interner(); }

  /// Garbage-collects versions no active or future snapshot can reach.
  /// Returns the number of versions dropped. Safe to call at any time.
  std::size_t prune_versions() { return store_.prune(queries_.gc_horizon()); }

  // Direct event entry points (public so unit tests can drive the modules
  // without a network; production wiring goes through the abcast callbacks).
  void on_opt_deliver(const Message& msg);
  void on_to_deliver(const MsgId& id, TOIndex index);
  /// Batched TO-delivery: drains a burst in one pass (same per-entry
  /// semantics and ordering as repeated on_to_deliver calls).
  void on_to_deliver_batch(std::span<const ToDelivery> batch);

  /// Crash recovery: drops all volatile state (class queues, in-flight
  /// transactions and their scheduled completions, provisional writes,
  /// TO-delivery history). Committed versions and the per-class commit
  /// watermarks survive; during the redo replay, TO-deliveries at or below a
  /// class watermark are acknowledged without re-execution.
  void crash_recover_reset() override;

  /// Cold restart over the durable tier: the store was already rebuilt from
  /// checkpoint + WAL; this winds the query watermarks back to the durable
  /// marks and accepts body-less TO-delivery tombstones up to `durable_floor`
  /// during catch-up.
  void restart_from_disk(std::span<const TOIndex> class_watermarks,
                         TOIndex durable_floor) override;

 private:
  // -- Figure 4: serialization module ---------------------------------------
  void serialization_module(TxnRecord* txn);
  // -- Figure 5: execution module --------------------------------------------
  void execution_module(TxnRecord* txn);
  // -- Figure 6: correctness check module ------------------------------------
  void correctness_check_module(TxnRecord* txn);

  /// Builds and TO-broadcasts a request. `classes` is empty for single-class
  /// submissions, the normalized set (and klass its first element) otherwise.
  void broadcast_request(ProcId proc, ClassId klass, std::vector<ClassId> classes,
                         TxnArgs args, SimTime exec_duration, SimTime deadline);

  void to_deliver_one(TxnRecord* txn);
  /// Deadline budget at TO-delivery: advances the per-class virtual service
  /// clock and marks `txn` expired when its virtual finish time overruns the
  /// deadline. A pure function of the definitive order + request fields, so
  /// every site makes the same decision for every transaction.
  void apply_service_clock(TxnRecord* txn);
  /// Retires an expired transaction heading all its covered queues: no
  /// effects, no commit hook, but the commit watermarks advance (waiting
  /// queries must not block on a slot that will never produce versions).
  void retire_expired(TxnRecord* txn);
  /// Worklist-driven head promotion after a commit or expired-retire: runs
  /// newly exposed heads, retiring expired committable ones. A worklist (not
  /// recursion) because N consecutive expired heads retire each other in a
  /// chain under overload.
  void promote_heads(std::span<const ClassId> classes);
  /// True when `txn` heads every class queue it covers (trivially its single
  /// queue in the base model). Only such a transaction may run or commit.
  bool heads_all_queues(const TxnRecord* txn) const;
  /// Starts execution if `txn` is active, not running, and heads all its
  /// queues (S3-S5 / CC11-CC12 generalized).
  void try_execute(TxnRecord* txn);
  void submit_execution(TxnRecord* txn);
  void abort_transaction(TxnRecord* txn);  // CC8: undo a wrongly ordered head
  void commit(TxnRecord* txn);

  /// Ticket-timeout watchdog (OtpReplicaConfig::ticket_timeout): armed at
  /// Opt-delivery, cancelled at retirement, dense per-TxnId handles.
  void arm_ticket_watchdog(const TxnRecord* txn);
  void cancel_ticket_watchdog(const TxnRecord* txn);

  void check_invariants(const TxnRecord* txn) const;

  Simulator& sim_;
  AtomicBroadcast& abcast_;
  StorageBackend& backend_;
  VersionedStore& store_;  // backend_.memory(): reads + provisional writes
  const PartitionCatalog& catalog_;
  const ProcedureRegistry& registry_;
  SiteId self_;
  OtpReplicaConfig config_;
  /// Commits at or below this index arrive as body-less tombstones during a
  /// cold-restart catch-up (they are already applied from disk).
  TOIndex replay_floor_ = 0;

  std::vector<ClassQueue> queues_;
  TxnTable txns_;
  /// Per-class virtual service clock (deadline budgets): the virtual time at
  /// which the class's serial service of all non-dropped TO-delivered
  /// transactions finishes. Fed only by agreed data (definitive order,
  /// submitted_at, exec_duration), hence identical at every site, and rebuilt
  /// by the recovery replay (updated before the replay early-return).
  std::vector<SimTime> service_clock_;
  std::vector<ClassId> promote_stack_;  // promote_heads worklist
  bool promoting_ = false;              // reentrancy guard for promote_heads
  TimerWheel wheel_{sim_};                       // ticket-timeout watchdogs
  std::vector<TimerWheel::TimerId> ticket_timers_;  // dense, indexed by TxnId

  std::uint64_t next_client_seq_ = 0;
  ReplicaMetrics metrics_;
  QueryEngine queries_;
  CommitHook commit_hook_;
};

}  // namespace otpdb
