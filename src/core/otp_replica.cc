#include "core/otp_replica.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"
#include "util/log.h"

namespace otpdb {

OtpReplica::OtpReplica(Simulator& sim, AtomicBroadcast& abcast, StorageBackend& storage,
                       const PartitionCatalog& catalog, const ProcedureRegistry& registry,
                       SiteId self, OtpReplicaConfig config)
    : sim_(sim),
      abcast_(abcast),
      backend_(storage),
      store_(storage.memory()),
      catalog_(catalog),
      registry_(registry),
      self_(self),
      config_(config),
      queries_(sim, store_, catalog, metrics_) {
  queues_.reserve(catalog.class_count());
  for (std::size_t c = 0; c < catalog.class_count(); ++c) {
    queues_.emplace_back(static_cast<ClassId>(c));
  }
  service_clock_.assign(catalog.class_count(), 0);
  abcast_.set_callbacks(AbcastCallbacks{
      [this](const Message& msg) { on_opt_deliver(msg); },
      [this](const MsgId& id, TOIndex index) { on_to_deliver(id, index); },
      [this](std::span<const ToDelivery> batch) { on_to_deliver_batch(batch); },
  });
}

void OtpReplica::broadcast_request(ProcId proc, ClassId klass, std::vector<ClassId> classes,
                                   TxnArgs args, SimTime exec_duration, SimTime deadline) {
  auto request = std::make_shared<TxnRequest>();
  request->proc = proc;
  request->klass = klass;
  request->classes = std::move(classes);
  request->args = std::move(args);
  request->origin = self_;
  request->client_seq = next_client_seq_++;
  request->submitted_at = sim_.now();
  request->exec_duration = exec_duration;
  request->deadline = deadline;
  ++metrics_.submitted_updates;
  abcast_.broadcast(std::move(request));
}

SubmitResult OtpReplica::submit_update(ProcId proc, ClassId klass, TxnArgs args,
                                       SimTime exec_duration, SimTime deadline) {
  OTPDB_CHECK(klass < catalog_.class_count());
  const AbcastStats& ab = abcast_.stats();
  const std::uint64_t lag =
      ab.opt_delivered > ab.to_delivered ? ab.opt_delivered - ab.to_delivered : 0;
  const SubmitResult gate = ingress_gate(sim_.now(), deadline, in_flight(), lag,
                                         abcast_.backpressured(), metrics_);
  if (gate != SubmitResult::admitted) return gate;
  broadcast_request(proc, klass, {}, std::move(args), exec_duration, deadline);
  return SubmitResult::admitted;
}

SubmitResult OtpReplica::submit_update_multi(ProcId proc, std::vector<ClassId> classes,
                                             TxnArgs args, SimTime exec_duration,
                                             SimTime deadline) {
  normalize_class_set(classes);
  OTPDB_CHECK(classes.back() < catalog_.class_count());
  if (classes.size() == 1) {  // the base model's case: no class vector needed
    return submit_update(proc, classes.front(), std::move(args), exec_duration, deadline);
  }
  const AbcastStats& ab = abcast_.stats();
  const std::uint64_t lag =
      ab.opt_delivered > ab.to_delivered ? ab.opt_delivered - ab.to_delivered : 0;
  const SubmitResult gate = ingress_gate(sim_.now(), deadline, in_flight(), lag,
                                         abcast_.backpressured(), metrics_);
  if (gate != SubmitResult::admitted) return gate;
  const ClassId primary = classes.front();
  broadcast_request(proc, primary, std::move(classes), std::move(args), exec_duration, deadline);
  return SubmitResult::admitted;
}

void OtpReplica::submit_query(QueryFn fn, SimTime exec_duration, QueryDoneFn done) {
  queries_.submit(std::move(fn), exec_duration, std::move(done));
}

// ---------------------------------------------------------------------------
// Figure 4: serialization module (upon Opt-delivery of transaction T_i)
// ---------------------------------------------------------------------------

void OtpReplica::on_opt_deliver(const Message& msg) {
  OTPDB_ASSERT(std::dynamic_pointer_cast<const TxnRequest>(msg.payload) != nullptr);
  auto request = std::static_pointer_cast<const TxnRequest>(msg.payload);
  // acquire() checks against duplicate Opt-delivery.
  TxnRecord* txn = txns_.acquire(msg.id, std::move(request));
  txn->opt_delivered_at = sim_.now();
  arm_ticket_watchdog(txn);
  serialization_module(txn);
}

void OtpReplica::serialization_module(TxnRecord* txn) {
  txn->deliv = DeliveryState::pending;  // S2: mark pending and active
  txn->exec = ExecState::active;
  // S1: append to every covered queue, in ascending class order (identical at
  // all sites, so the head-of-all gating below is deadlock-free).
  for (ClassId c : txn->request->class_span()) queues_[c].append(txn);
  if (txn->request->deadline != 0 && sim_.now() > txn->request->deadline) {
    // Already past its budget when it arrived: skip the optimistic execution
    // (pure waste - its effects would be undone). Site-local economy only;
    // the transaction stays queued and the authoritative drop-vs-commit
    // decision is the virtual-clock rule at TO-delivery, so a skip here never
    // diverges the replicas.
    ++metrics_.deadline_skips_opt;
  } else {
    try_execute(txn);  // S3-S5: submit iff heading all covered queues
  }
  if (config_.paranoid_checks) check_invariants(txn);
}

// ---------------------------------------------------------------------------
// Figure 5: execution module (upon complete execution of transaction T_i)
// ---------------------------------------------------------------------------

void OtpReplica::execution_module(TxnRecord* txn) {
  txn->running = false;
  txn->executed_at = sim_.now();
  if (txn->deliv == DeliveryState::committable) {  // E1: marked committable?
    txn->exec = ExecState::executed;
    commit(txn);  // E2-E3: commit, start next
  } else {
    txn->exec = ExecState::executed;  // E5: mark executed
    if (config_.paranoid_checks) check_invariants(txn);
  }
}

// ---------------------------------------------------------------------------
// Figure 6: correctness check module (upon TO-delivery of transaction T_i)
// ---------------------------------------------------------------------------

void OtpReplica::on_to_deliver(const MsgId& id, TOIndex index) {
  // CC1: Local Order guarantees Opt-deliver precedes TO-deliver - except for
  // durable catch-up tombstones, which skip the body entirely because this
  // site already holds the commit's versions from its own checkpoint + WAL.
  TxnRecord* txn = txns_.lookup_if_present(id);
  if (txn == nullptr) {
    OTPDB_CHECK_MSG(index <= replay_floor_, "TO-delivery without prior Opt-delivery");
    queries_.advance_to_index(index);
    return;
  }
  txn->to_index = index;
  to_deliver_one(txn);
}

void OtpReplica::on_to_deliver_batch(std::span<const ToDelivery> batch) {
  // A decided burst drains in one pass; per-entry handling is identical to
  // repeated on_to_deliver calls (commit orders and metrics do not change).
  for (const auto& [id, index] : batch) on_to_deliver(id, index);
}

void OtpReplica::to_deliver_one(TxnRecord* txn) {
  const TOIndex index = txn->to_index;
  txn->to_delivered_at = sim_.now();
  const auto classes = txn->request->class_span();
  queries_.advance_to_index(index);
  for (ClassId c : classes) queries_.note_to_delivered(c, index);

  // Deadline budget. Runs BEFORE the recovery-replay early return so a warm
  // restart's replay rebuilds the virtual service clock exactly and re-makes
  // every drop decision identically.
  apply_service_clock(txn);

  // Crash-recovery replay: a TO-delivery at or below the covered classes'
  // durable commit watermarks was already committed before the crash -
  // acknowledge it without re-executing (its versions are in the store). The
  // queue handling mirrors CC7-CC12 per covered queue: a wrongly ordered live
  // head is undone, the replayed transaction surfaces to the head of every
  // covered queue, and is then silently retired.
  if (index <= queries_.last_committed(classes.front())) {
#ifndef NDEBUG
    // Commits are atomic across the covered classes, so the watermarks agree.
    for (ClassId c : classes) OTPDB_ASSERT(index <= queries_.last_committed(c));
#endif
    txn->deliv = DeliveryState::committable;
    if (txn->running) {
      sim_.cancel(txn->completion);
      txn->running = false;
    }
    backend_.abort(txn->tid);  // drop any provisional re-execution of replayed work
    for (ClassId c : classes) {
      ClassQueue& queue = queues_[c];
      TxnRecord* head = queue.head();
      if (head != txn && head->deliv == DeliveryState::pending &&
          (head->running || head->exec == ExecState::executed)) {
        abort_transaction(head);
      }
      queue.reorder_before_first_pending(txn);
      // Replayed indices precede every live transaction's index, so no
      // committable transaction can sit ahead of this one.
      OTPDB_CHECK(queue.head() == txn);
    }
    for (ClassId c : classes) queues_[c].remove_head(txn);
    cancel_ticket_watchdog(txn);
    promote_heads(classes);  // before retire: `classes` views the request
    txns_.retire(txn);
    return;
  }

  metrics_.opt_to_gap_ns.add(static_cast<double>(txn->to_delivered_at - txn->opt_delivered_at));

  if (txn->expired) {
    // Dropped at the definitive order: undo any optimistic effects and
    // surface the transaction to the head of every covered queue (the same
    // CC7-CC10 handling a committing transaction would get - the queue
    // invariant keeps committable transactions ahead of pending ones), then
    // retire it once it heads them all. No store effects, no commit hook.
    txn->deliv = DeliveryState::committable;
    if (txn->running) {
      sim_.cancel(txn->completion);
      txn->running = false;
    }
    backend_.abort(txn->tid);  // undo provisional effects, if any
    txn->exec = ExecState::active;
    for (ClassId c : classes) {
      ClassQueue& queue = queues_[c];
      TxnRecord* head = queue.head();
      if (head != txn && head->deliv == DeliveryState::pending &&
          (head->running || head->exec == ExecState::executed)) {
        abort_transaction(head);  // CC8 applies equally ahead of a drop
      }
      queue.reorder_before_first_pending(txn);
    }
    if (heads_all_queues(txn)) {
      retire_expired(txn);
    }
    // Else: a committable predecessor is still executing; the retire happens
    // when its commit promotes this transaction to head (promote_heads).
    if (config_.paranoid_checks) check_invariants(txn);
    return;
  }

  correctness_check_module(txn);
}

void OtpReplica::apply_service_clock(TxnRecord* txn) {
  const TxnRequest& request = *txn->request;
  // Every non-dropped transaction occupies exec_duration of virtual serial
  // service per covered class, starting no earlier than its submission and
  // the covered classes' backlogs. Under overload the clock runs ahead of
  // real submit times - that growing gap is exactly the queueing delay the
  // deadline is budgeting against.
  SimTime vstart = request.submitted_at;
  for (ClassId c : request.class_span()) vstart = std::max(vstart, service_clock_[c]);
  const SimTime vfinish = vstart + request.exec_duration;
  if (request.deadline != 0 && vfinish > request.deadline) {
    txn->expired = true;  // dropped: occupies no service time
    return;
  }
  for (ClassId c : request.class_span()) service_clock_[c] = vfinish;
}

void OtpReplica::retire_expired(TxnRecord* txn) {
  OTPDB_CHECK(txn->expired);
  OTPDB_CHECK(txn->deliv == DeliveryState::committable);
  OTPDB_CHECK(heads_all_queues(txn));
  OTPDB_CHECK(!txn->running && txn->exec == ExecState::active);
  const auto classes = txn->request->class_span();
  const TOIndex index = txn->to_index;
  for (ClassId c : classes) queues_[c].remove_head(txn);
  ++metrics_.deadline_expired_queue;
  OTPDB_TRACE("otp") << "site " << self_ << " drops expired txn (" << txn->id.sender << ","
                     << txn->id.seq << ") at index " << index;
  // The slot commits nothing, but the watermarks must advance past it (with a
  // wake): a query waiting on this index would otherwise block forever, and
  // the recovery replay relies on the watermark covering dropped slots. Reads
  // at this index fall back to the predecessor version - a drop is a no-op.
  for (ClassId c : classes) queries_.note_committed(c, index, /*wake=*/false);
  queries_.wake_waiters(index);
  cancel_ticket_watchdog(txn);
  promote_heads(classes);  // before retire: `classes` views the request
  txns_.retire(txn);
}

void OtpReplica::promote_heads(std::span<const ClassId> classes) {
  promote_stack_.insert(promote_stack_.end(), classes.begin(), classes.end());
  if (promoting_) return;  // the active drain below picks the new entries up
  promoting_ = true;
  while (!promote_stack_.empty()) {
    const ClassId c = promote_stack_.back();
    promote_stack_.pop_back();
    TxnRecord* next = queues_[c].head();
    if (next == nullptr) continue;
    if (next->expired) {
      // A chained drop: the newly exposed head is itself expired-committable.
      // Its retire pushes its covered classes back onto the worklist.
      if (next->deliv == DeliveryState::committable && heads_all_queues(next)) {
        retire_expired(next);
      }
      continue;
    }
    try_execute(next);
  }
  promoting_ = false;
}

void OtpReplica::crash_recover_reset() {
  txns_.for_each_live([this](TxnRecord* txn) {
    if (txn->running) sim_.cancel(txn->completion);
  });
  for (const auto& timer : ticket_timers_) wheel_.cancel(timer);  // stale ids no-op
  txns_.clear();
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    queues_[c] = ClassQueue(static_cast<ClassId>(c));
  }
  backend_.clear_provisional();
  queries_.reset_volatile();
  // The virtual service clock rebuilds from zero during the recovery replay
  // (apply_service_clock runs before the replay early-return), so every
  // pre-crash drop decision is re-derived identically.
  service_clock_.assign(service_clock_.size(), 0);
  promote_stack_.clear();
  promoting_ = false;
  admission_.reset();
}

void OtpReplica::restart_from_disk(std::span<const TOIndex> class_watermarks,
                                   TOIndex durable_floor) {
  crash_recover_reset();  // volatile state is equally gone on a cold restart
  queries_.restore_watermarks(class_watermarks);
  replay_floor_ = durable_floor;
}

void OtpReplica::correctness_check_module(TxnRecord* txn) {
  if (txn->exec == ExecState::executed) {  // CC2 (an executed txn heads all its queues)
    OTPDB_CHECK(heads_all_queues(txn));
    txn->deliv = DeliveryState::committable;
    commit(txn);  // CC3-CC4
    return;
  }
  txn->deliv = DeliveryState::committable;  // CC6
  bool moved = false;
  for (ClassId c : txn->request->class_span()) {
    ClassQueue& queue = queues_[c];
    OTPDB_ASSERT(queue.contains(txn));
    TxnRecord* head = queue.head();
    // CC7: a pending head that has produced (or is producing) optimistic
    // effects ahead of txn is wrongly ordered - undo it (CC8). A pending head
    // that never started (a multi-class transaction waiting on another queue)
    // has nothing to undo; CC10 simply reorders past it.
    if (head != txn && head->deliv == DeliveryState::pending &&
        (head->running || head->exec == ExecState::executed)) {
      abort_transaction(head);  // CC8
    }
    moved |= queue.reorder_before_first_pending(txn);  // CC10
  }
  if (moved) ++metrics_.mismatch_reorders;
  if (!txn->running && heads_all_queues(txn)) {  // CC11 (unless already executing)
    submit_execution(txn);                       // CC12
  }
  if (config_.paranoid_checks) check_invariants(txn);
}

// ---------------------------------------------------------------------------
// Execution, abort (undo), commit
// ---------------------------------------------------------------------------

bool OtpReplica::heads_all_queues(const TxnRecord* txn) const {
  for (ClassId c : txn->request->class_span()) {
    if (queues_[c].head() != txn) return false;
  }
  return true;
}

void OtpReplica::try_execute(TxnRecord* txn) {
  if (txn->expired) return;  // dropped at TO-delivery: retired, never executed
  if (txn->running || txn->exec != ExecState::active) return;
  if (!heads_all_queues(txn)) return;
  submit_execution(txn);
}

void OtpReplica::submit_execution(TxnRecord* txn) {
  OTPDB_CHECK(!txn->running);
  OTPDB_CHECK(txn->exec == ExecState::active);
  OTPDB_CHECK(heads_all_queues(txn));
  txn->running = true;
  ++txn->attempts;
  if (txn->attempts > 1) ++metrics_.reexecutions;
  // Apply the stored procedure's effects as provisional versions now; the
  // completion event models the execution cost. An abort in between rolls the
  // provisional versions back, exactly like undo-based recovery.
  const bool record_sets = commit_hook_ != nullptr;  // checker wants read/write sets
  const TxnRequest& request = *txn->request;
  auto run_in = [&](TxnContext& ctx) {
    registry_.get(request.proc)(ctx);
    txn->last_reads = ctx.take_reads();
    txn->last_writes = ctx.take_writes();
  };
  if (request.multi_class()) {
    TxnContext ctx(store_, catalog_, request.class_span(), txn->tid, request.args, record_sets);
    run_in(ctx);
  } else {
    TxnContext ctx(store_, catalog_, txn->tid, request.klass, request.args, record_sets);
    run_in(ctx);
  }
  txn->completion =
      sim_.schedule_after(request.exec_duration, [this, txn] { execution_module(txn); });
}

void OtpReplica::abort_transaction(TxnRecord* txn) {
  // CC8 preconditions: the wrongly ordered transaction is pending and has
  // optimistic effects to undo - which implies it heads all its queues.
  OTPDB_CHECK(txn->deliv == DeliveryState::pending);
  OTPDB_CHECK(txn->running || txn->exec == ExecState::executed);
  OTPDB_ASSERT(heads_all_queues(txn));
  if (txn->running) {
    sim_.cancel(txn->completion);
    txn->running = false;
  }
  backend_.abort(txn->tid);  // undo provisional effects
  txn->exec = ExecState::active;
  ++metrics_.aborts;
  OTPDB_TRACE("otp") << "site " << self_ << " aborts txn (" << txn->id.sender << ","
                     << txn->id.seq << ") for rescheduling";
}

void OtpReplica::commit(TxnRecord* txn) {
  OTPDB_CHECK(txn->exec == ExecState::executed);
  OTPDB_CHECK(txn->deliv == DeliveryState::committable);
  OTPDB_CHECK(txn->to_index > 0);
  OTPDB_CHECK(heads_all_queues(txn));
  const auto classes = txn->request->class_span();

  txn->committed_at = sim_.now();
  CommitRecord record;
  if (commit_hook_) {
    record.site = self_;
    record.txn = txn->id;
    record.proc = txn->request->proc;
    record.klass = txn->request->klass;
    if (txn->request->multi_class()) {
      record.classes.assign(classes.begin(), classes.end());
    }
    record.index = txn->to_index;
    record.at = txn->committed_at;
    const auto writes = store_.provisional_writes(txn->tid);
    record.writes.assign(writes.begin(), writes.end());
    record.reads = txn->last_reads;
  }

  backend_.commit(txn->tid, txn->to_index, classes);
  for (ClassId c : classes) queues_[c].remove_head(txn);

  ++metrics_.committed;
  if (txn->request->origin == self_) {
    const double latency = static_cast<double>(txn->committed_at - txn->request->submitted_at);
    metrics_.commit_latency_ns.add(latency);
    metrics_.commit_latency_percentiles_ns.add(latency);
  }
  // Time spent fully executed but waiting for the definitive order: the part
  // of the broadcast's coordination cost the overlap failed to hide.
  metrics_.commit_wait_ns.add(static_cast<double>(txn->committed_at - txn->executed_at));
  if (commit_hook_) commit_hook_(record);

  const TOIndex committed_index = txn->to_index;

  // Advance every covered class watermark before waking waiters, so a query
  // spanning several covered classes never observes a half-committed state.
  for (ClassId c : classes) queries_.note_committed(c, committed_index, /*wake=*/false);
  queries_.wake_waiters(committed_index);
  if (config_.paranoid_checks) check_invariants(txn);
  cancel_ticket_watchdog(txn);
  // E3/CC4: removing txn may promote the next head of every covered queue to
  // heads-all status; start whichever can now run, and retire expired
  // committable heads exposed by the removal (promote_heads' guards make the
  // per-class passes idempotent for successors sharing several classes).
  // Before retire: `classes` views the request the retire drops.
  promote_heads(classes);
  txns_.retire(txn);  // txn's slot is reusable beyond this point
}

void OtpReplica::arm_ticket_watchdog(const TxnRecord* txn) {
  if (config_.ticket_timeout <= 0) return;
  if (ticket_timers_.size() <= txn->tid) ticket_timers_.resize(txn->tid + 1);
  const TxnId tid = txn->tid;
  ticket_timers_[tid] = wheel_.schedule_after(config_.ticket_timeout, [this, tid] {
    // Detection only: the ticket (queue position) is fixed by the definitive
    // order, so a stall is surfaced, never "resolved" by aborting.
    ++metrics_.ticket_timeouts;
    OTPDB_DEBUG("otp") << "site " << self_ << " ticket timeout for txn slot " << tid;
  });
}

void OtpReplica::cancel_ticket_watchdog(const TxnRecord* txn) {
  if (config_.ticket_timeout <= 0) return;
  if (txn->tid < ticket_timers_.size()) wheel_.cancel(ticket_timers_[txn->tid]);
}

void OtpReplica::check_invariants(const TxnRecord* txn) const {
  for (ClassId c : txn->request->class_span()) queues_[c].check_invariants();
}

}  // namespace otpdb
