#include "core/otp_replica.h"

#include <utility>

#include "util/assert.h"
#include "util/log.h"

namespace otpdb {

OtpReplica::OtpReplica(Simulator& sim, AtomicBroadcast& abcast, VersionedStore& store,
                       const PartitionCatalog& catalog, const ProcedureRegistry& registry,
                       SiteId self, OtpReplicaConfig config)
    : sim_(sim),
      abcast_(abcast),
      store_(store),
      catalog_(catalog),
      registry_(registry),
      self_(self),
      config_(config),
      queues_(catalog.class_count()),
      queries_(sim, store, catalog, metrics_) {
  abcast_.set_callbacks(AbcastCallbacks{
      [this](const Message& msg) { on_opt_deliver(msg); },
      [this](const MsgId& id, TOIndex index) { on_to_deliver(id, index); },
      [this](std::span<const ToDelivery> batch) { on_to_deliver_batch(batch); },
  });
}

void OtpReplica::submit_update(ProcId proc, ClassId klass, TxnArgs args, SimTime exec_duration) {
  OTPDB_CHECK(klass < catalog_.class_count());
  auto request = std::make_shared<TxnRequest>();
  request->proc = proc;
  request->klass = klass;
  request->args = std::move(args);
  request->origin = self_;
  request->client_seq = next_client_seq_++;
  request->submitted_at = sim_.now();
  request->exec_duration = exec_duration;
  ++metrics_.submitted_updates;
  abcast_.broadcast(std::move(request));
}

void OtpReplica::submit_query(QueryFn fn, SimTime exec_duration, QueryDoneFn done) {
  queries_.submit(std::move(fn), exec_duration, std::move(done));
}

// ---------------------------------------------------------------------------
// Figure 4: serialization module (upon Opt-delivery of transaction T_i)
// ---------------------------------------------------------------------------

void OtpReplica::on_opt_deliver(const Message& msg) {
  OTPDB_ASSERT(std::dynamic_pointer_cast<const TxnRequest>(msg.payload) != nullptr);
  auto request = std::static_pointer_cast<const TxnRequest>(msg.payload);
  // acquire() checks against duplicate Opt-delivery.
  TxnRecord* txn = txns_.acquire(msg.id, std::move(request));
  txn->opt_delivered_at = sim_.now();
  serialization_module(txn);
}

void OtpReplica::serialization_module(TxnRecord* txn) {
  ClassQueue& queue = queues_[txn->request->klass];
  queue.append(txn);                    // S1: append to the corresponding queue
  txn->deliv = DeliveryState::pending;  // S2: mark pending and active
  txn->exec = ExecState::active;
  if (queue.size() == 1) {  // S3: alone in its class?
    submit_execution(txn);  // S4: submit the execution
  }
  if (config_.paranoid_checks) check_invariants(txn->request->klass);
}

// ---------------------------------------------------------------------------
// Figure 5: execution module (upon complete execution of transaction T_i)
// ---------------------------------------------------------------------------

void OtpReplica::execution_module(TxnRecord* txn) {
  txn->running = false;
  txn->executed_at = sim_.now();
  if (txn->deliv == DeliveryState::committable) {  // E1: marked committable?
    txn->exec = ExecState::executed;
    commit(txn);  // E2-E3: commit, start next
  } else {
    txn->exec = ExecState::executed;  // E5: mark executed
    if (config_.paranoid_checks) check_invariants(txn->request->klass);
  }
}

// ---------------------------------------------------------------------------
// Figure 6: correctness check module (upon TO-delivery of transaction T_i)
// ---------------------------------------------------------------------------

void OtpReplica::on_to_deliver(const MsgId& id, TOIndex index) {
  TxnRecord* txn = txns_.lookup(id);  // CC1: Local Order guarantees the binding
  txn->to_index = index;
  to_deliver_one(txn);
}

void OtpReplica::on_to_deliver_batch(std::span<const ToDelivery> batch) {
  // A decided burst drains in one pass; per-entry handling is identical to
  // repeated on_to_deliver calls (commit orders and metrics do not change).
  for (const auto& [id, index] : batch) on_to_deliver(id, index);
}

void OtpReplica::to_deliver_one(TxnRecord* txn) {
  const TOIndex index = txn->to_index;
  txn->to_delivered_at = sim_.now();
  queries_.note_to_delivered(txn->request->klass, index);

  // Crash-recovery replay: a TO-delivery at or below the class's durable
  // commit watermark was already committed before the crash - acknowledge it
  // without re-executing (its versions are in the store). The queue handling
  // mirrors CC7-CC12: a wrongly ordered live head is undone, the replayed
  // transaction surfaces to the head, and is then silently retired.
  if (index <= queries_.last_committed(txn->request->klass)) {
    ClassQueue& queue = queues_[txn->request->klass];
    txn->deliv = DeliveryState::committable;
    if (txn->running) {
      sim_.cancel(txn->completion);
      txn->running = false;
    }
    store_.abort(txn->tid);  // drop any provisional re-execution of replayed work
    TxnRecord* head = queue.head();
    if (head != txn && head->deliv == DeliveryState::pending) abort_transaction(head);
    queue.reorder_before_first_pending(txn);
    // Replayed indices precede every live transaction's index, so no
    // committable transaction can sit ahead of this one.
    OTPDB_CHECK(queue.head() == txn);
    queue.remove_head(txn);
    txns_.retire(txn);
    if (TxnRecord* next = queue.head();
        next && !next->running && next->exec == ExecState::active) {
      submit_execution(next);
    }
    return;
  }

  metrics_.opt_to_gap_ns.add(static_cast<double>(txn->to_delivered_at - txn->opt_delivered_at));
  correctness_check_module(txn);
}

void OtpReplica::crash_recover_reset() {
  txns_.for_each_live([this](TxnRecord* txn) {
    if (txn->running) sim_.cancel(txn->completion);
  });
  txns_.clear();
  for (auto& queue : queues_) queue = ClassQueue{};
  store_.clear_provisional();
  queries_.reset_volatile();
}

void OtpReplica::correctness_check_module(TxnRecord* txn) {
  const ClassId klass = txn->request->klass;
  ClassQueue& queue = queues_[klass];
  OTPDB_ASSERT(queue.contains(txn));

  if (txn->exec == ExecState::executed) {  // CC2 (can only be the head)
    OTPDB_CHECK(queue.head() == txn);
    txn->deliv = DeliveryState::committable;
    commit(txn);  // CC3-CC4
    return;
  }
  txn->deliv = DeliveryState::committable;  // CC6
  TxnRecord* head = queue.head();
  if (head != txn && head->deliv == DeliveryState::pending) {  // CC7
    abort_transaction(head);                                   // CC8
  }
  const bool moved = queue.reorder_before_first_pending(txn);  // CC10
  if (moved) ++metrics_.mismatch_reorders;
  if (queue.head() == txn && !txn->running) {  // CC11 (unless already executing)
    submit_execution(txn);                     // CC12
  }
  if (config_.paranoid_checks) check_invariants(klass);
}

// ---------------------------------------------------------------------------
// Execution, abort (undo), commit
// ---------------------------------------------------------------------------

void OtpReplica::submit_execution(TxnRecord* txn) {
  OTPDB_CHECK(!txn->running);
  OTPDB_CHECK(txn->exec == ExecState::active);
  OTPDB_CHECK(queues_[txn->request->klass].head() == txn);
  txn->running = true;
  ++txn->attempts;
  if (txn->attempts > 1) ++metrics_.reexecutions;
  // Apply the stored procedure's effects as provisional versions now; the
  // completion event models the execution cost. An abort in between rolls the
  // provisional versions back, exactly like undo-based recovery.
  const bool record_sets = commit_hook_ != nullptr;  // checker wants read/write sets
  TxnContext ctx(store_, catalog_, txn->tid, txn->request->klass, txn->request->args,
                 record_sets);
  registry_.get(txn->request->proc)(ctx);
  txn->last_reads = ctx.take_reads();
  txn->last_writes = ctx.take_writes();
  txn->completion =
      sim_.schedule_after(txn->request->exec_duration, [this, txn] { execution_module(txn); });
}

void OtpReplica::abort_transaction(TxnRecord* txn) {
  // CC8 preconditions: the wrongly ordered transaction is the pending head.
  OTPDB_CHECK(txn->deliv == DeliveryState::pending);
  OTPDB_CHECK(queues_[txn->request->klass].head() == txn);
  if (txn->running) {
    sim_.cancel(txn->completion);
    txn->running = false;
  }
  store_.abort(txn->tid);  // undo provisional effects
  txn->exec = ExecState::active;
  ++metrics_.aborts;
  OTPDB_TRACE("otp") << "site " << self_ << " aborts txn (" << txn->id.sender << ","
                     << txn->id.seq << ") for rescheduling";
}

void OtpReplica::commit(TxnRecord* txn) {
  OTPDB_CHECK(txn->exec == ExecState::executed);
  OTPDB_CHECK(txn->deliv == DeliveryState::committable);
  OTPDB_CHECK(txn->to_index > 0);
  const ClassId klass = txn->request->klass;
  ClassQueue& queue = queues_[klass];
  OTPDB_CHECK(queue.head() == txn);

  txn->committed_at = sim_.now();
  CommitRecord record;
  if (commit_hook_) {
    record.site = self_;
    record.txn = txn->id;
    record.proc = txn->request->proc;
    record.klass = klass;
    record.index = txn->to_index;
    record.at = txn->committed_at;
    const auto writes = store_.provisional_writes(txn->tid);
    record.writes.assign(writes.begin(), writes.end());
    record.reads = txn->last_reads;
  }

  store_.commit(txn->tid, txn->to_index);
  queue.remove_head(txn);

  ++metrics_.committed;
  if (txn->request->origin == self_) {
    const double latency = static_cast<double>(txn->committed_at - txn->request->submitted_at);
    metrics_.commit_latency_ns.add(latency);
    metrics_.commit_latency_percentiles_ns.add(latency);
  }
  // Time spent fully executed but waiting for the definitive order: the part
  // of the broadcast's coordination cost the overlap failed to hide.
  metrics_.commit_wait_ns.add(static_cast<double>(txn->committed_at - txn->executed_at));
  if (commit_hook_) commit_hook_(record);

  const TOIndex committed_index = txn->to_index;
  txns_.retire(txn);  // txn's slot is reusable beyond this point

  // E3/CC4: start executing the next transaction in the class queue.
  if (TxnRecord* next = queue.head()) {
    OTPDB_CHECK(!next->running && next->exec == ExecState::active);
    submit_execution(next);
  }
  queries_.note_committed(klass, committed_index);
  if (config_.paranoid_checks) check_invariants(klass);
}

void OtpReplica::check_invariants(ClassId klass) const { queues_[klass].check_invariants(); }

}  // namespace otpdb
