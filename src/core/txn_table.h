// Dense per-site transaction table shared by the replica engines.
//
// Owns the MsgId -> TxnId interner and the TxnId-indexed record slots, and
// holds the acquire/retire protocol in one place: a transaction is interned
// exactly once at Opt-deliver time, every later touch is an array access,
// and a retired id's slot (record object and its vector capacity) is
// recycled in place by the next transaction interned to the same id.
#pragma once

#include <memory>
#include <vector>

#include "core/txn.h"
#include "db/txn_interner.h"
#include "util/assert.h"

namespace otpdb {

class TxnTable {
 public:
  /// Interns `id` (CHECK-fails on duplicate Opt-delivery) and returns a
  /// freshly reset record bound to the dense id.
  TxnRecord* acquire(const MsgId& id, std::shared_ptr<const TxnRequest> request) {
    const TxnId tid = interner_.intern(id);
    if (tid >= records_.size()) records_.resize(tid + 1);
    if (!records_[tid]) records_[tid] = std::make_unique<TxnRecord>();
    TxnRecord* txn = records_[tid].get();
    txn->reset(id, tid, std::move(request));
    ++live_;
    return txn;
  }

  /// The live record bound to `id`; CHECK-fails when absent (Local Order
  /// guarantees Opt-deliver precedes TO-deliver).
  TxnRecord* lookup(const MsgId& id) {
    const TxnId tid = interner_.find(id);
    OTPDB_CHECK_MSG(tid != kInvalidTxnId, "TO-delivery without prior Opt-delivery");
    return records_[tid].get();
  }

  /// The live record bound to `id`, or nullptr when absent. Only the durable
  /// catch-up path may observe an absent binding: a commit at or below the
  /// restarting site's durable floor is TO-delivered as a body-less
  /// tombstone, so it was never Opt-delivered (and never interned).
  TxnRecord* lookup_if_present(const MsgId& id) {
    const TxnId tid = interner_.find(id);
    return tid == kInvalidTxnId ? nullptr : records_[tid].get();
  }

  /// Releases a finished transaction's dense id. The record's memory stays in
  /// place for recycling; the payload reference is dropped now.
  void retire(TxnRecord* txn) {
    interner_.release(txn->tid);
    txn->request.reset();
    --live_;
  }

  /// Live (acquired, not retired) transaction count.
  std::size_t live() const { return live_; }

  /// Introspection (tests): the underlying interner.
  const TxnIdInterner& interner() const { return interner_; }

  /// Applies `fn` to every live record (crash recovery walks this to cancel
  /// scheduled completions before clear()).
  template <typename Fn>
  void for_each_live(Fn&& fn) {
    for (auto& record : records_) {
      if (record && record->request) fn(record.get());
    }
  }

  /// Drops all records and bindings (crash recovery).
  void clear() {
    records_.clear();
    interner_.clear();
    live_ = 0;
  }

 private:
  TxnIdInterner interner_;
  std::vector<std::unique_ptr<TxnRecord>> records_;  // indexed by TxnId
  std::size_t live_ = 0;
};

}  // namespace otpdb
