// FIFO class queue with the reordering primitive of the OTP algorithm.
//
// One queue exists per conflict class (paper Figure 2). The queue upholds two
// structural invariants that the correctness-check module relies on:
//   * committable transactions always form a prefix of the queue (step CC10
//     inserts newly TO-delivered transactions right after that prefix), and
//   * only a transaction heading every queue it covers may be running or
//     executed (for single-class transactions: only the head).
//
// Position caching: every queued record carries a {class, ticket} entry (see
// TxnRecord::queue_pos) where ticket is an absolute position stamp; the
// queue's base_ counts head removals, so index = ticket - base_. This makes
// contains() and the CC10 self-lookup O(1) - the commit path of a multi-class
// transaction touches several queues, so the old O(n) pointer scans compound.
// The committable prefix length is tracked directly (committable_), so CC10
// needs no scan for the first pending transaction either.
#pragma once

#include <deque>

#include "core/txn.h"
#include "util/assert.h"

namespace otpdb {

class ClassQueue {
 public:
  ClassQueue() = default;
  explicit ClassQueue(ClassId klass) : klass_(klass) {}

  ClassId conflict_class() const { return klass_; }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  TxnRecord* head() { return queue_.empty() ? nullptr : queue_.front(); }
  const TxnRecord* head() const { return queue_.empty() ? nullptr : queue_.front(); }

  TxnRecord* at(std::size_t i) { return queue_[i]; }
  const TxnRecord* at(std::size_t i) const { return queue_[i]; }

  /// Serialization module step S1: append in tentative (Opt-deliver) order.
  /// (The conservative engine appends already-committable transactions in
  /// definitive order; the committable prefix then spans the whole queue.)
  void append(TxnRecord* txn);

  /// Removes the head (commit path). Pre: txn is the head.
  void remove_head(TxnRecord* txn);

  /// True if the transaction is currently queued. O(1) via the cached
  /// position; the element comparison rejects stale entries left behind by a
  /// since-destroyed same-class queue.
  bool contains(const TxnRecord* txn) const {
    const TxnRecord::QueuePos* pos = txn->find_queue_pos(klass_);
    if (pos == nullptr) return false;
    const std::size_t index = index_of(*pos);
    return index < queue_.size() && queue_[index] == txn;
  }

  /// Correctness-check step CC10: move `txn` directly before the first
  /// pending transaction, i.e. after the committable prefix. Pre: txn has
  /// just been marked committable. Returns true if the transaction actually
  /// changed position (a tentative/definitive order mismatch among
  /// conflicting transactions).
  bool reorder_before_first_pending(TxnRecord* txn);

  /// Debug validation of the structural invariants (committable prefix; only
  /// the head running or executed; cached positions and prefix counter
  /// consistent with the actual layout).
  void check_invariants() const;

  auto begin() { return queue_.begin(); }
  auto end() { return queue_.end(); }
  auto begin() const { return queue_.begin(); }
  auto end() const { return queue_.end(); }

 private:
  std::size_t index_of(const TxnRecord::QueuePos& pos) const {
    return static_cast<std::size_t>(pos.ticket - base_);
  }

  std::deque<TxnRecord*> queue_;
  ClassId klass_ = 0;
  std::uint64_t base_ = 0;        ///< head removals so far (ticket of the head)
  std::size_t committable_ = 0;   ///< length of the committable prefix
};

}  // namespace otpdb
