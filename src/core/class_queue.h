// FIFO class queue with the reordering primitive of the OTP algorithm.
//
// One queue exists per conflict class (paper Figure 2). The queue upholds two
// structural invariants that the correctness-check module relies on:
//   * committable transactions always form a prefix of the queue (step CC10
//     inserts newly TO-delivered transactions right after that prefix), and
//   * only the head may be running or executed.
#pragma once

#include <deque>

#include "core/txn.h"
#include "util/assert.h"

namespace otpdb {

class ClassQueue {
 public:
  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  TxnRecord* head() { return queue_.empty() ? nullptr : queue_.front(); }
  const TxnRecord* head() const { return queue_.empty() ? nullptr : queue_.front(); }

  TxnRecord* at(std::size_t i) { return queue_[i]; }
  const TxnRecord* at(std::size_t i) const { return queue_[i]; }

  /// Serialization module step S1: append in tentative (Opt-deliver) order.
  void append(TxnRecord* txn) { queue_.push_back(txn); }

  /// Removes the head (commit path). Pre: txn is the head.
  void remove_head(TxnRecord* txn) {
    OTPDB_CHECK(!queue_.empty() && queue_.front() == txn);
    queue_.pop_front();
  }

  /// True if the transaction is currently queued.
  bool contains(const TxnRecord* txn) const {
    for (const TxnRecord* t : queue_)
      if (t == txn) return true;
    return false;
  }

  /// Correctness-check step CC10: move `txn` directly before the first
  /// pending transaction, i.e. after the committable prefix. Returns true if
  /// the transaction actually changed position (a tentative/definitive order
  /// mismatch among conflicting transactions).
  bool reorder_before_first_pending(TxnRecord* txn);

  /// Debug validation of the structural invariants (committable prefix; only
  /// the head running or executed).
  void check_invariants() const;

  auto begin() { return queue_.begin(); }
  auto end() { return queue_.end(); }
  auto begin() const { return queue_.begin(); }
  auto end() const { return queue_.end(); }

 private:
  std::deque<TxnRecord*> queue_;
};

}  // namespace otpdb
