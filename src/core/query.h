// Snapshot queries (paper Section 5).
//
// Queries execute locally, may touch any number of conflict classes, and need
// not pre-declare them. Each query receives a snapshot index when it starts:
// if T_i was the last TO-delivered transaction processed at the site, the
// query's index is "i.5". A read of an object in class C observes the version
// created by T_j where j = max{k <= i : T_k in C} - the youngest class-C
// version the definitive order places before the query. If that transaction
// is TO-delivered but not yet committed locally, the query waits for the
// commit and re-runs (queries are pure reads, so re-running is free of side
// effects). This yields a serialization order consistent with the definitive
// total order at every site, ruling out the Section 5 anomaly where two
// queries at different sites order the same update transactions differently.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "db/value.h"
#include "sim/simulator.h"
#include "util/types.h"

namespace otpdb {

class QueryContext;

/// A read-only query body. May read objects from any conflict class; captures
/// its own results. Must not mutate anything outside its captures.
using QueryFn = std::function<void(QueryContext&)>;

/// Completion report for a query.
struct QueryReport {
  TOIndex snapshot_index = 0;  ///< the "i" of the paper's "i.5"
  SimTime submitted_at = 0;
  SimTime completed_at = 0;
  std::uint32_t attempts = 1;  ///< 1 = never had to wait for an in-flight commit
  std::vector<std::pair<ObjectId, Value>> reads;
};

using QueryDoneFn = std::function<void(const QueryReport&)>;

namespace detail {
/// Internal control-flow signal: a snapshot version the query needs is
/// TO-delivered but not yet committed. The query runner catches it, waits for
/// the commit of `index`, and re-runs the query body.
struct SnapshotNotReady {
  ClassId klass = 0;
  TOIndex index = 0;
};
}  // namespace detail

/// Read handle bound to one snapshot index. Created by the replica.
class QueryContext {
 public:
  /// Reads `obj` at this query's snapshot. Unwritten objects read as 0.
  Value read(ObjectId obj);
  std::int64_t read_int(ObjectId obj) { return as_int(read(obj)); }

  TOIndex snapshot_index() const { return snapshot_; }
  const std::vector<std::pair<ObjectId, Value>>& reads() const { return reads_; }

 private:
  friend class QueryEngine;
  friend class LazyReplica;

  using ReadFn = std::function<Value(ObjectId, TOIndex)>;  // throws SnapshotNotReady

  QueryContext(TOIndex snapshot, ReadFn read_fn)
      : snapshot_(snapshot), read_fn_(std::move(read_fn)) {}

  TOIndex snapshot_;
  ReadFn read_fn_;
  std::vector<std::pair<ObjectId, Value>> reads_;
};

inline Value QueryContext::read(ObjectId obj) {
  Value v = read_fn_(obj, snapshot_);
  reads_.emplace_back(obj, v);
  return v;
}

}  // namespace otpdb
