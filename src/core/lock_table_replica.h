// LockTableReplica - optimistic transaction processing with fine-granularity
// (object-level) locking, the extension the paper's Section 6 announces and
// its companion report [13] develops.
//
// The class-queue model serializes every pair of transactions in the same
// conflict class even when they touch disjoint objects. Here each *object*
// has its own FIFO queue (a lock-table wait list). A transaction pre-declares
// its object access set (derived from its stored procedure's arguments by a
// registered extractor); on Opt-delivery it enters the queues of all its
// objects atomically, in tentative-order position; it executes when it heads
// every queue it is in ("holds all its locks") and commits once it is both
// executed and TO-delivered.
//
// Deadlock freedom without lock ordering: within a site, every queue's
// content order is consistent with one total order - committable transactions
// first (in definitive order), then pending transactions (in tentative
// arrival order, and a transaction enters all its queues at one instant).
// The least uncommitted transaction in that order heads all its queues, so
// some transaction can always run.
//
// The correctness-check step generalizes Figure 6: upon TO-delivery of T, any
// *pending* transaction that precedes T in one of T's queues and has started
// (or finished) executing is wrongly ordered relative to T - it is undone
// (provisional-version rollback) and re-executed later; T is rescheduled
// directly after the committable prefix of each of its queues. Conflicting
// transactions (shared object) therefore commit in definitive order at every
// site, giving 1-copy-serializability at object granularity - transactions
// of one class with disjoint access sets now run concurrently.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "abcast/abcast.h"
#include "core/metrics.h"
#include "core/query.h"
#include "core/query_engine.h"
#include "core/replica_base.h"
#include "core/txn.h"
#include "core/txn_table.h"
#include "db/partition.h"
#include "db/procedures.h"
#include "db/storage_backend.h"
#include "db/versioned_store.h"
#include "sim/simulator.h"

namespace otpdb {

/// Derives a transaction's object access set from its class and arguments.
/// Must be deterministic and identical at all sites (like the procedures).
using AccessSetExtractor = std::function<std::vector<ObjectId>(ClassId, const TxnArgs&)>;

/// Returns the extractor matching workload::register_rmw_procedure's argument
/// convention (ints = [delta, offset...] within the class partition).
AccessSetExtractor rmw_access_extractor(const PartitionCatalog& catalog);

class LockTableReplica final : public ReplicaBase {
 public:
  LockTableReplica(Simulator& sim, AtomicBroadcast& abcast, StorageBackend& storage,
                   const PartitionCatalog& catalog, const ProcedureRegistry& registry,
                   SiteId self, AccessSetExtractor extractor);

  // ReplicaBase:
  /// Admission/backpressure + presubmit-deadline gating only: queue-head
  /// deadline drops would need per-object virtual service clocks, so a
  /// post-admission deadline is ignored once admitted.
  SubmitResult submit_update(ProcId proc, ClassId klass, TxnArgs args, SimTime exec_duration,
                             SimTime deadline = 0) override;
  /// The lock-table engine already serializes at object granularity; its
  /// access-set extractor is keyed to a single class's argument convention,
  /// so it routes single-element class sets to submit_update and rejects
  /// genuine multi-class submissions explicitly (declare the union access set
  /// via submit_update_with_access instead).
  SubmitResult submit_update_multi(ProcId proc, std::vector<ClassId> classes, TxnArgs args,
                                   SimTime exec_duration, SimTime deadline = 0) override;
  void submit_query(QueryFn fn, SimTime exec_duration, QueryDoneFn done) override;
  void set_commit_hook(CommitHook hook) override { commit_hook_ = std::move(hook); }
  std::size_t in_flight() const override {
    return txns_.live() + (metrics_.queries_started - metrics_.queries_done);
  }
  const ReplicaMetrics& metrics() const override { return metrics_; }
  SiteId site() const override { return self_; }

  /// Submits with an explicit access set (bypasses the extractor).
  SubmitResult submit_update_with_access(ProcId proc, ClassId klass,
                                         std::vector<ObjectId> access_set, TxnArgs args,
                                         SimTime exec_duration, SimTime deadline = 0);

  /// Introspection for tests.
  std::size_t queue_length(ObjectId obj) const;
  TOIndex last_to_index() const { return queries_.last_to_index(); }

  // Direct event entry points (tests drive these; production wiring goes
  // through the abcast callbacks).
  void on_opt_deliver(const Message& msg);
  void on_to_deliver(const MsgId& id, TOIndex index);
  void on_to_deliver_batch(std::span<const ToDelivery> batch);

 private:
  /// One object's FIFO wait list. TxnRecord pointers, same invariants as the
  /// class queue: committable prefix in definitive order, pending suffix in
  /// tentative order.
  using ObjectQueue = std::vector<TxnRecord*>;

  void to_deliver_one(TxnRecord* txn);
  bool heads_all_queues(const TxnRecord* txn) const;
  void try_execute(TxnRecord* txn);
  void execution_complete(TxnRecord* txn);
  void abort_transaction(TxnRecord* txn);
  void commit(TxnRecord* txn);
  void reorder_before_first_pending(ObjectQueue& queue, TxnRecord* txn);
  void try_execute_heads_of(const std::vector<ObjectId>& objects);

  Simulator& sim_;
  AtomicBroadcast& abcast_;
  StorageBackend& backend_;
  VersionedStore& store_;  // backend_.memory(): reads + provisional writes
  const PartitionCatalog& catalog_;
  const ProcedureRegistry& registry_;
  SiteId self_;
  AccessSetExtractor extractor_;

  // The catalog's object space is contiguous, so the lock table is a plain
  // vector indexed by ObjectId - no hashing per lock acquire/release.
  std::vector<ObjectQueue> queues_;
  TxnTable txns_;

  std::uint64_t next_client_seq_ = 0;
  ReplicaMetrics metrics_;
  QueryEngine queries_;
  CommitHook commit_hook_;
};

}  // namespace otpdb
