// Per-site admission control: bounded-ingress shedding with hysteresis.
//
// Under overload the optimistic window widens (queued traffic delays
// TO-delivery behind opt-delivery), aborts climb, and goodput collapses.
// The admission controller turns that collapse into an explicit, bounded
// regime: when either pressure signal - local queue depth (transactions not
// yet committed at this site) or opt-vs-TO delivery lag at the broadcast
// layer - crosses its shed threshold, new submissions are refused with an
// explicit Shed outcome until BOTH signals fall back below their (lower)
// resume thresholds. The shed/resume split is hysteresis: a controller with
// a single threshold flaps admit/shed on every submission at the boundary,
// which turns client retry into synchronized thundering herds.
//
// Decisions are a pure function of the two signals and the controller's
// current mode, all of which are deterministic per site, so sharded runs
// stay bit-for-bit identical across worker-thread counts.
#pragma once

#include <cstddef>
#include <cstdint>

namespace otpdb {

struct AdmissionConfig {
  bool enabled = false;  ///< default off: zero behavior change for old configs

  /// Shed when local queue depth (in-flight transactions) reaches this.
  std::size_t shed_depth = 512;
  /// Resume admitting only once depth is back at or below this.
  std::size_t resume_depth = 256;

  /// Shed when opt-delivered-but-not-TO-delivered lag reaches this.
  std::uint64_t shed_lag = 256;
  /// Resume admitting only once lag is back at or below this.
  std::uint64_t resume_lag = 128;
};

struct AdmissionStats {
  std::uint64_t shed_engagements = 0;  ///< admit -> shed transitions
  std::uint64_t shed_releases = 0;     ///< shed -> admit transitions
};

class AdmissionController {
 public:
  AdmissionController() = default;
  explicit AdmissionController(const AdmissionConfig& config) : config_(config) {}

  void configure(const AdmissionConfig& config) { config_ = config; }
  const AdmissionConfig& config() const { return config_; }

  /// One admission decision. `depth` is the site's current in-flight count,
  /// `lag` the broadcast layer's opt-minus-TO delivery gap. Returns true to
  /// admit. Mode transitions (and only transitions) are counted in stats.
  bool admit(std::size_t depth, std::uint64_t lag);

  /// True while the controller is refusing submissions.
  bool shedding() const { return shedding_; }

  const AdmissionStats& stats() const { return stats_; }

  /// Crash recovery: volatile queue state is gone, so pressure is gone.
  void reset() { shedding_ = false; }

 private:
  AdmissionConfig config_;
  bool shedding_ = false;
  AdmissionStats stats_;
};

}  // namespace otpdb
