// Cluster - assembles a full replicated-database system inside one simulator:
// network segment, failure detectors, atomic broadcast endpoints, versioned
// stores, and one replica engine per site. This is the top-level object that
// examples, tests and benches instantiate.
//
// The replica engine is pluggable (OTP, conservative, lazy - see
// src/baseline) through a factory, so every experiment runs the competing
// engines over an identical substrate.
#pragma once

#include <filesystem>
#include <functional>
#include <memory>
#include <vector>

#include "abcast/failure_detector.h"
#include "abcast/opt_abcast.h"
#include "abcast/sequencer_abcast.h"
#include "core/otp_replica.h"
#include "core/replica_base.h"
#include "db/partition.h"
#include "db/procedures.h"
#include "db/storage_backend.h"
#include "db/versioned_store.h"
#include "net/network.h"
#include "sim/sharded_engine.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace otpdb {

enum class AbcastKind { optimistic, sequencer };

struct ClusterConfig {
  std::size_t n_sites = 4;
  std::size_t n_classes = 8;
  std::uint64_t objects_per_class = 64;
  std::uint64_t seed = 1;

  NetConfig net;
  AbcastKind abcast = AbcastKind::optimistic;
  OptAbcastConfig opt;
  SequencerAbcastConfig sequencer;
  FailureDetectorConfig fd;
  bool enable_failure_detector = true;

  OtpReplicaConfig otp;

  /// Overload plane: per-site admission control (core/admission.h), installed
  /// on every replica by build(). Disabled by default - zero behavior change
  /// for configurations that never touch it.
  AdmissionConfig admission;

  /// Per-cluster storage tier: in-memory (default, the pre-durability
  /// behavior) or the group-commit WAL backend (db/durable_store.h).
  StorageConfig storage;

  /// Declarative network-chaos plan (net/fault_plan.h): timed duplication,
  /// reordering, one-way partitions, flapping, and gray links, executed
  /// deterministically from a dedicated rng split. An empty plan leaves the
  /// run bit-identical to pre-chaos builds.
  ChaosConfig chaos;

  /// Driver selection: threads == 1 (default) runs the classic single-queue
  /// loop; threads >= 2 (or force_sharded) runs the site-sharded engine with
  /// conservative lookahead windows (see sim/sharded_engine.h). All sharded
  /// runs of one configuration are bit-for-bit identical regardless of the
  /// thread count.
  ParallelismConfig parallel;
};

/// Per-site dependencies handed to a replica factory.
struct ReplicaDeps {
  Simulator& sim;
  Network& net;
  AtomicBroadcast& abcast;
  StorageBackend& storage;
  const PartitionCatalog& catalog;
  const ProcedureRegistry& registry;
  SiteId site;
};

using ReplicaFactory = std::function<std::unique_ptr<ReplicaBase>(const ReplicaDeps&)>;

class Cluster {
 public:
  /// Builds the cluster with the default engine (OTP) at every site.
  explicit Cluster(ClusterConfig config);
  /// Builds the cluster with a custom engine factory.
  Cluster(ClusterConfig config, ReplicaFactory factory);
  /// Tears down replicas and backends, then removes the data directory if
  /// the cluster created it (temp-dir default for durable runs).
  ~Cluster();

  /// The control clock: the single simulator in classic mode, the network
  /// hub shard in sharded mode. Schedule chaos injection and client
  /// submissions that address arbitrary sites here; never mutate
  /// network-wide state from a site-shard event.
  Simulator& sim() { return engine_ ? engine_->hub() : sim_; }
  /// The shard owning `site`'s replica/abcast/store events (== sim() in
  /// classic mode). Per-site client streams schedule here so they run on the
  /// site's own worker.
  Simulator& site_sim(SiteId site) { return engine_ ? engine_->site(site) : sim_; }
  /// The sharded engine, or nullptr when the classic loop drives the run.
  ShardedEngine* engine() { return engine_.get(); }
  Network& net() { return *net_; }
  const ClusterConfig& config() const { return config_; }
  const PartitionCatalog& catalog() const { return catalog_; }

  /// Register stored procedures here before submitting work. The registry is
  /// shared by all sites (procedures are pre-declared and site-independent).
  ProcedureRegistry& procedures() { return registry_; }

  std::size_t site_count() const { return config_.n_sites; }
  ReplicaBase& replica(SiteId site) { return *replicas_[site]; }
  VersionedStore& store(SiteId site) { return backends_[site]->memory(); }
  StorageBackend& storage(SiteId site) { return *backends_[site]; }
  /// Durability counters for `site`, or nullptr with the memory backend.
  const WalStats* wal_stats(SiteId site) const { return backends_[site]->wal_stats(); }
  AtomicBroadcast& abcast(SiteId site) { return *abcasts_[site]; }
  FailureDetector& failure_detector(SiteId site) { return *fds_[site]; }

  /// Aggregated chaos-plane counters (all zero when no plan is armed).
  ChaosStats chaos_stats() const { return net_->chaos_stats(); }
  /// Suspicion churn across all failure detectors: total suspicions raised
  /// and later revised (a restore == one false or healed suspicion).
  FailureDetectorStats fd_stats() const {
    FailureDetectorStats total;
    for (const auto& fd : fds_) total.merge(fd->stats());
    return total;
  }

  /// The OTP view of a replica, or nullptr if a different engine runs there.
  OtpReplica* otp(SiteId site);

  /// Loads an initial value at every site's store (index-0 version).
  void load_everywhere(ObjectId obj, Value value);

  /// Runs the simulation for a fixed span of simulated time.
  void run_for(SimTime span) {
    if (engine_) {
      engine_->run_until(engine_->now() + span);
    } else {
      sim_.run_until(sim_.now() + span);
    }
  }

  /// Crashes a site: it stops sending and receiving; its volatile replica and
  /// protocol state is considered lost (cleared on recovery). The storage
  /// backend stops producing I/O until recovery.
  void crash_site(SiteId site) {
    net_->crash(site);
    backends_[site]->crash();
  }

  /// Recovers a crashed site (paper model: sites always recover). Clears the
  /// volatile state, reconnects the network, and starts redo catch-up from
  /// the peers' decision logs. Requires recovery support in the engine over
  /// the optimistic broadcast (the sequencer protocol has no recovery path).
  void recover_site(SiteId site);

  /// Cold-restarts a crashed durable site: RAM is lost, the store is rebuilt
  /// in place from its own checkpoint + WAL, and peer catch-up resends only
  /// the tail beyond the durable watermark (everything at or below it is
  /// TO-delivered as a body-less tombstone). Requires the durable backend.
  ///
  /// `full_body_replay` makes catch-up fetch bodies for ALL slots instead of
  /// tombstoning those at or below the durable floor (the replica's restored
  /// watermarks still suppress re-execution). Deadline-budget runs need it:
  /// the per-class virtual service clock is rebuilt from request bodies, and
  /// tombstones carry none - without bodies a cold-restarted site cannot
  /// re-derive pre-crash drop decisions for the tail. Costlier (the whole
  /// history is resent) and off by default.
  void restart_site_from_disk(SiteId site, bool full_body_replay = false);

  /// Runs until every replica reports zero in-flight work or `deadline_span`
  /// elapses. Returns true if the cluster quiesced.
  bool quiesce(SimTime deadline_span = 30 * kSecond);

  /// Sum of committed transactions across sites / per-site metrics access.
  std::uint64_t total_committed() const;

  /// Runs version garbage collection at every OTP site. Returns total
  /// versions dropped (non-OTP engines are skipped).
  std::size_t prune_all_versions();

 private:
  void build(ReplicaFactory factory);

  ClusterConfig config_;
  Simulator sim_;  // classic-mode clock (unused when engine_ is set)
  // Destroyed after everything holding shard references (declaration order).
  std::unique_ptr<ShardedEngine> engine_;
  Rng rng_;
  PartitionCatalog catalog_;
  ProcedureRegistry registry_;
  std::unique_ptr<Network> net_;
  std::vector<std::unique_ptr<FailureDetector>> fds_;
  std::vector<std::unique_ptr<AtomicBroadcast>> abcasts_;
  std::vector<std::unique_ptr<StorageBackend>> backends_;
  std::vector<std::unique_ptr<ReplicaBase>> replicas_;
  std::filesystem::path data_root_;  ///< durable-backend root (one dir per site)
  bool owns_data_root_ = false;      ///< cluster created it -> cluster removes it
};

}  // namespace otpdb
