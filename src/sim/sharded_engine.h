// Site-sharded discrete-event engine with conservative lookahead.
//
// The classic driver runs an entire cluster through one Simulator queue, so
// adding sites makes runs slower even though sites only interact through a
// network whose every delivery is delayed by at least a per-edge lookahead
// floor. This engine exploits that floor conservatively (Chandy/Misra/Bryant
// style): each site owns a private Simulator (shard), the shared-medium
// network model owns another (the hub), and time advances in rounds of
// [hub phase -> parallel site phase -> barrier].
//
// Two window strategies share that round structure:
//
//  * Global windows (shared-bus media, e.g. the flat/lan profiles): every
//    shard runs the same window [a, b], b <= a + L where L = the medium's
//    single worst-case lookahead. Deliveries are mediated by the hub:
//    site-phase sends buffer in per-sender outboxes, the barrier flushes
//    them in canonical (time, sender, seq) order, the hub phase of the next
//    round hands surviving deliveries to receiver inboxes.
//
//  * Channel clocks (per-edge media, i.e. switched topology profiles): each
//    site advances independently to its own bound
//        b_s = min over shards r of (EOT_r + dist(r -> s)),
//    with EOT_r = max(clock_r, next_event_time_r) the earliest time r could
//    still execute (idle shards do not constrain anyone), and dist the
//    SHORTEST-PATH closure of the per-edge lookahead graph - not the raw
//    edge: a chain r -> q -> s of in-phase reactions is bounded below by the
//    sum of edge lookaheads, and dist(s, s) (the cheapest round trip via a
//    peer) caps how far s may outrun its own sends' echoes. The naive
//    single-edge bound is unsound: with every peer idle it lets a site run
//    arbitrarily far ahead, wake a neighbor, and receive the reply in its
//    own past. Sends are processed
//    inline on the *sending* shard (per-sender links and per-edge rng streams
//    make that sender-local); cross-site deliveries land in per-edge staging
//    cells and are drained into the receiver's queue by the receiver's own
//    worker at the start of its next phase (the "sharded hub phase" - the
//    fan-out work never serializes on one thread; set
//    ParallelismConfig::sharded_hub_drain = false to drain serially at the
//    barrier instead, the ablation baseline). On topologies with
//    heterogeneous lookahead (wan, geo-3dc) nearby sites synchronize on
//    their short edges while distant ones coast, which cuts barrier rounds
//    by the intra/inter latency ratio (EngineStats::rounds; see
//    bench/scalability.cc's ablation).
//
// The hub shard never receives messages; it only runs control events (chaos
// injection, Cluster::sim() submissions). Its earliest pending event still
// bounds every site (control events may mutate network-wide state), so site
// clocks never run more than one lookahead past an unexecuted control event.
//
// Window autotuning (channel strategy): the per-round advance of a site that
// has work is capped at W, adjusted each round from observed events per
// active shard with a hysteresis band [target_lo, target_hi] - halved above
// the band, doubled below it, clamped to [min_window, max_window]. Event
// counts are thread-count independent, so the W trajectory is too.
//
// Determinism: each shard fires its events in the local (timestamp,
// schedule-order) rule of the plain Simulator, and every cross-shard
// insertion happens either in a serial phase or in a canonical drain order
// independent of the worker count. Hence runs are bit-for-bit identical for
// any `threads` value, including the degenerate single-threaded sharded run -
// the parity suite (tests/parallel_parity_test.cc) asserts exactly that for
// every topology profile, under TSan.
//
// Note the global tie-break differs from the classic single-queue loop: two
// events at the same timestamp on *different* shards no longer have a global
// schedule order (that is precisely what buys the parallelism), so sharded
// histories are deterministic but not bitwise equal to single-queue
// histories; the same holds between the two window strategies (drain rounds
// differ). ClusterConfig keeps the classic loop as the threads=1 default.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/simulator.h"

namespace otpdb {

using SiteId32 = std::uint32_t;  // mirrors net/message.h SiteId without the include

/// How the sharded engine computes per-round site bounds.
enum class WindowStrategy : std::uint8_t {
  automatic,  ///< channel clocks when the medium is per-edge, else global
  global,     ///< one lockstep window of the worst-case lookahead (PR 5 engine)
  channel,    ///< per-edge channel clocks (requires a per-edge medium)
};

/// Hysteresis controller for the channel-strategy window cap.
struct WindowAutotuneConfig {
  bool enabled = true;
  /// Target band of events per active shard per round: below target_lo the
  /// cap doubles (too many barriers per unit work), above target_hi it halves
  /// (load imbalance within a round). Inside the band nothing moves.
  std::uint32_t target_lo = 16;
  std::uint32_t target_hi = 256;
  /// Cap bounds; 0 = derived from the medium (min edge lookahead, and
  /// max(64x min lookahead, max edge lookahead) respectively).
  SimTime min_window = 0;
  SimTime max_window = 0;
};

/// Selects the cluster driver. threads == 1 (default) keeps the classic
/// single-queue loop; threads >= 2 runs the sharded engine with that many
/// worker threads. force_sharded runs the sharded engine even with one
/// thread - bit-for-bit identical to every multi-threaded sharded run, and
/// the sequential leg of the parity suite.
struct ParallelismConfig {
  unsigned threads = 1;
  bool force_sharded = false;
  /// Global strategy: synchronization window; 0 = the medium's declared
  /// lookahead, larger values are clamped down (correctness). Channel
  /// strategy: a fixed per-round advance cap (disables autotuning); 0 =
  /// autotune.
  SimTime window = 0;
  WindowStrategy strategy = WindowStrategy::automatic;
  WindowAutotuneConfig autotune;
  /// Channel strategy: receivers drain their own staged deliveries at phase
  /// start (parallel). false = the coordinator drains everything at the
  /// barrier (serial hub-style fan-out; ablation baseline).
  bool sharded_hub_drain = true;

  bool sharded() const { return threads > 1 || force_sharded; }
};

/// The shared-medium model (the network) as the engine sees it: it declares
/// its lookahead structure and owns the cross-shard mailboxes.
class SharedMedium {
 public:
  virtual ~SharedMedium() = default;

  /// Lower bound on (delivery time - send time) over every site pair. Must be
  /// >= 1ns; the global-strategy window size is clamped to it.
  virtual SimTime lookahead() const = 0;

  /// Site-phase entry, on the shard's worker thread: make every delivery
  /// destined for `site` visible in its queue (global strategy: drain the
  /// site's inbox of hub handoffs; channel strategy: drain the site's staged
  /// per-edge cells in canonical sender order).
  virtual void begin_site_window(SiteId32 site, Simulator& shard) = 0;

  /// Barrier (global strategy): process every buffered send in canonical
  /// (time, sender, seq) order and schedule the resulting deliveries as
  /// future hub events. Runs on the coordinating thread. Per-edge media
  /// processing sends inline may make this a no-op.
  virtual void flush_outboxes() = 0;

  // -- Per-edge (channel-clock) extensions ----------------------------------

  /// True when the medium supports per-edge channel clocks: sends depend only
  /// on sender-local state and lookahead(from, to) is meaningful.
  virtual bool per_edge() const { return false; }

  /// Per-edge delivery lower bound; only called when per_edge().
  virtual SimTime lookahead(SiteId32 from, SiteId32 to) const {
    (void)from;
    (void)to;
    return lookahead();
  }

  /// Earliest staged-but-undrained delivery for `site` (kSimTimeMax if none):
  /// a message sitting in a staging cell is pending work the receiver's EOT
  /// must account for. Called by the coordinator between phases.
  virtual SimTime earliest_staged(SiteId32 site) { (void)site; return kSimTimeMax; }

  /// Round barrier notification (channel strategy): flip staging parity so
  /// cells written this round become next round's read side.
  virtual void end_round() {}
};

/// The Simulator currently running on this thread, or nullptr outside a
/// shard phase. The network model reads it to timestamp sends with the
/// sending shard's clock (control events run on the hub clock, site events
/// on their site's clock).
Simulator* active_shard();
void set_active_shard(Simulator* sim);

/// Synchronization counters (the cost side of the ablation benches).
struct EngineStats {
  /// Barrier-separated rounds executed: each is one full-stop synchronization
  /// of all workers. The channel strategy's whole point is fewer of these on
  /// heterogeneous topologies.
  std::uint64_t rounds = 0;
  /// (site, round) pairs that had events to run - the parallel work actually
  /// dispatched. rounds * site_count - site_activations phases were skipped.
  std::uint64_t site_activations = 0;
  /// Autotuner activity and its current cap (channel strategy).
  std::uint64_t window_grows = 0;
  std::uint64_t window_shrinks = 0;
  SimTime window = 0;
};

class ShardedEngine {
 public:
  ShardedEngine(std::size_t n_sites, ParallelismConfig config);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Must be called once before run_until; resolves the window strategy and
  /// caches the medium's lookahead structure.
  void attach_medium(SharedMedium* medium);

  Simulator& hub() { return hub_; }
  Simulator& site(SiteId32 s) { return *sites_[s]; }
  std::size_t site_count() const { return sites_.size(); }

  /// Hub time == the last deadline reached (all shards agree on it between
  /// runs; within a run, channel-clock shards diverge by design).
  SimTime now() const { return hub_.now(); }

  /// Runs all shards through rounds until every event with time <= deadline
  /// (on any shard) has fired; afterwards every shard's clock is deadline.
  void run_until(SimTime deadline);

  /// Total events executed across all shards (bench counters).
  std::uint64_t executed() const;

  /// True when this engine runs per-edge channel clocks (vs global windows).
  bool channel_clocks() const { return channel_; }
  const EngineStats& stats() const { return stats_; }

  SimTime window() const { return window_; }
  unsigned worker_count() const { return n_workers_; }

 private:
  void worker_loop(unsigned worker);
  void run_owned_sites(unsigned worker);
  /// Releases the workers on the published bounds_, runs participant 0's
  /// share, and waits for everyone (the round's site phase).
  void run_site_phase();
  void run_until_global(SimTime deadline);
  void run_until_channel(SimTime deadline);
  /// Barrier tail shared by both strategies: flush/flip the medium, serial
  /// drain when the sharded hub phase is disabled, count the round.
  void finish_round();

  Simulator hub_;
  std::vector<std::unique_ptr<Simulator>> sites_;
  SharedMedium* medium_ = nullptr;
  SimTime window_ = 0;  // global window, or the channel strategy's current cap
  ParallelismConfig config_;
  bool channel_ = false;

  // Channel strategy: raw lookahead matrix [from * n + to], its
  // shortest-path closure dist_ (dist_[s * n + s] = cheapest round trip via
  // a peer), the hub's shortest distance into each site, and the autotuner's
  // cap range.
  std::vector<SimTime> lookahead_;
  std::vector<SimTime> dist_;
  std::vector<SimTime> hub_dist_;
  SimTime min_lookahead_ = 0;
  bool autotune_ = false;
  SimTime window_min_ = 0;
  SimTime window_max_ = 0;

  EngineStats stats_;

  // Workers are participants 1..n_workers_-1; the coordinating thread is
  // participant 0 and runs its share of sites between releasing the workers
  // and waiting for them. Sites are owned round-robin by participant index.
  unsigned n_workers_ = 1;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> epoch_{0};   // bumped to release a site phase
  std::atomic<unsigned> arrived_{0};      // workers done with the current phase
  std::atomic<bool> stop_{false};
  // Per-site run bounds, published before the epoch bump (release order).
  // The global strategy publishes one uniform value.
  std::vector<SimTime> bounds_;
  // Scratch for the channel round computation (EOT per shard).
  std::vector<SimTime> eot_;
};

}  // namespace otpdb
