// Site-sharded discrete-event engine with conservative lookahead.
//
// The classic driver runs an entire cluster through one Simulator queue, so
// adding sites makes runs slower even though sites only interact through a
// network whose every delivery is delayed by at least serialization_time +
// base_delay. This engine exploits that floor as a conservative lookahead
// window (Chandy/Misra/Bryant style): each site owns a private Simulator
// (shard), the shared-medium network model owns another (the hub), and time
// advances in windows no longer than the lookahead L.
//
// Per window [a, b), b <= a + L:
//   1. Hub phase (one thread): the hub shard runs its events in [a, b] -
//      message deliveries (fault checks, arrival logs) and control events
//      (crash/partition injection, client submissions scheduled via
//      Cluster::sim()). Each surviving delivery is handed off to the
//      receiver's inbox, timestamped with its delivery time.
//   2. Site phase (parallel): every site shard drains its inbox into its
//      local queue and runs its events in [a, b] lock-free - no other thread
//      touches the shard. Sends (multicast/unicast) are buffered in the
//      sender's outbox, stamped (send time, sender, per-sender seq).
//   3. Barrier: outboxes are flushed to the hub in canonical
//      (time, sender, seq) order; the medium model samples delays and
//      schedules the resulting deliveries as future hub events. The
//      lookahead guarantees they land strictly beyond b, so step 1 of the
//      next window already has every delivery it needs.
//
// Determinism: each shard fires its events in the local (timestamp,
// schedule-order) rule of the plain Simulator, and every cross-shard
// insertion happens at a barrier in a canonical order independent of the
// worker count. Hence runs are bit-for-bit identical for any `threads`
// value, including the degenerate single-threaded sharded run - the parity
// suite (tests/parallel_parity_test.cc) asserts exactly that, under TSan.
//
// Note the global tie-break differs from the classic single-queue loop: two
// events at the same timestamp on *different* shards no longer have a global
// schedule order (that is precisely what buys the parallelism), so sharded
// histories are deterministic but not bitwise equal to single-queue
// histories. ClusterConfig keeps the classic loop as the threads=1 default.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "sim/simulator.h"

namespace otpdb {

using SiteId32 = std::uint32_t;  // mirrors net/message.h SiteId without the include

/// Selects the cluster driver. threads == 1 (default) keeps the classic
/// single-queue loop; threads >= 2 runs the sharded engine with that many
/// worker threads. force_sharded runs the sharded engine even with one
/// thread - bit-for-bit identical to every multi-threaded sharded run, and
/// the sequential leg of the parity suite.
struct ParallelismConfig {
  unsigned threads = 1;
  bool force_sharded = false;
  /// Synchronization window; 0 = the medium's declared lookahead. Values
  /// above the lookahead are clamped down (correctness), smaller values only
  /// add barriers.
  SimTime window = 0;

  bool sharded() const { return threads > 1 || force_sharded; }
};

/// The hub-shard model (the network) as the engine sees it: it declares its
/// lookahead and owns the cross-shard mailboxes.
class SharedMedium {
 public:
  virtual ~SharedMedium() = default;

  /// Lower bound on (delivery time - send time) for every cross-shard
  /// message. Must be >= 1ns; the window size is clamped to it.
  virtual SimTime lookahead() const = 0;

  /// Site-phase entry: drain the site's inbox (handoffs produced by the hub
  /// phase of the current window) into its shard queue. Runs on the shard's
  /// worker thread.
  virtual void begin_site_window(SiteId32 site, Simulator& shard) = 0;

  /// Barrier: process every buffered send in canonical (time, sender, seq)
  /// order and schedule the resulting deliveries as future hub events. Runs
  /// on the coordinating thread.
  virtual void flush_outboxes() = 0;
};

/// The Simulator currently running on this thread, or nullptr outside a
/// shard phase. The network model reads it to timestamp sends with the
/// sending shard's clock (control events run on the hub clock, site events
/// on their site's clock).
Simulator* active_shard();
void set_active_shard(Simulator* sim);

class ShardedEngine {
 public:
  ShardedEngine(std::size_t n_sites, ParallelismConfig config);
  ~ShardedEngine();
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Must be called once before run_until; fixes the window size from the
  /// medium's lookahead.
  void attach_medium(SharedMedium* medium);

  Simulator& hub() { return hub_; }
  Simulator& site(SiteId32 s) { return *sites_[s]; }
  std::size_t site_count() const { return sites_.size(); }

  /// Hub time == the last window boundary reached (all shards agree on it
  /// between runs).
  SimTime now() const { return hub_.now(); }

  /// Runs all shards through windows until every event with time <= deadline
  /// (on any shard) has fired; afterwards every shard's clock is deadline.
  void run_until(SimTime deadline);

  /// Total events executed across all shards (bench counters).
  std::uint64_t executed() const;

  SimTime window() const { return window_; }
  unsigned worker_count() const { return n_workers_; }

 private:
  void worker_loop(unsigned worker);
  void run_owned_sites(unsigned worker, SimTime end);

  Simulator hub_;
  std::vector<std::unique_ptr<Simulator>> sites_;
  SharedMedium* medium_ = nullptr;
  SimTime window_ = 0;
  ParallelismConfig config_;

  // Workers are participants 1..n_workers_-1; the coordinating thread is
  // participant 0 and runs its share of sites between releasing the workers
  // and waiting for them. Sites are owned round-robin by participant index.
  unsigned n_workers_ = 1;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> epoch_{0};   // bumped to release a site phase
  std::atomic<unsigned> arrived_{0};      // workers done with the current phase
  std::atomic<bool> stop_{false};
  SimTime window_end_ = 0;  // published before the epoch bump (release order)
};

}  // namespace otpdb
