// Small-buffer callable for simulator events.
//
// Every scheduled event used to carry a std::function<void()>, whose inline
// buffer (16-32 bytes depending on the library) silently spills captures to
// the heap. On the event hot path that is one malloc/free per event, and a
// change that grows a capture by one pointer can reintroduce the cost without
// any visible diff. InlineAction stores the callable inline - always - and
// turns an oversized capture into a compile error, so per-event heap
// allocations cannot reappear unnoticed. tests/sim_test.cc pins the zero
// allocation guarantee with a counting operator new; bench/micro_components
// reports allocations per event as a counter.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

namespace otpdb {

/// Move-only `void()` callable with inline-only storage (no heap fallback).
/// Captures must fit kCapacity bytes and be nothrow-move-constructible; both
/// are enforced at compile time.
class InlineAction {
 public:
  /// Sized for the largest closure the codebase schedules today (the lazy
  /// engine's query completion: two std::functions plus a timestamp, 80
  /// bytes) with a little headroom. Grow deliberately - every slot in every
  /// simulator pays for it.
  static constexpr std::size_t kCapacity = 96;

  InlineAction() = default;
  InlineAction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineAction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= kCapacity,
                  "event capture exceeds InlineAction::kCapacity - shrink the capture "
                  "(capture pointers/indices, not values) or grow kCapacity deliberately");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned event captures are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event captures must be nothrow-move-constructible (slot recycling "
                  "moves them)");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* p) { (*static_cast<Fn*>(p))(); };
    if constexpr (std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>) {
      relocate_ = nullptr;  // memcpy-movable: the common [this, index] closures
      destroy_ = nullptr;
    } else {
      relocate_ = [](void* dst, void* src) {
        Fn* from = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      };
      destroy_ = [](void* p) { static_cast<Fn*>(p)->~Fn(); };
    }
  }

  InlineAction(InlineAction&& other) noexcept { move_from(other); }
  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineAction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() { reset(); }

  void operator()() { invoke_(buf_); }

  explicit operator bool() const { return invoke_ != nullptr; }
  friend bool operator==(const InlineAction& a, std::nullptr_t) { return a.invoke_ == nullptr; }

 private:
  void reset() {
    if (invoke_ && destroy_) destroy_(buf_);
    invoke_ = nullptr;
  }
  void move_from(InlineAction& other) {
    if (!other.invoke_) return;
    if (other.relocate_) {
      other.relocate_(buf_, other.buf_);
    } else {
      __builtin_memcpy(buf_, other.buf_, kCapacity);
    }
    invoke_ = other.invoke_;
    relocate_ = other.relocate_;
    destroy_ = other.destroy_;
    other.invoke_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;  // move-construct dst from src, destroy src
  void (*destroy_)(void*) = nullptr;
};

}  // namespace otpdb
