// Dense hierarchical timer wheel for cancel-heavy protocol timers.
//
// Retransmission and watchdog timers have a distinctive life cycle: armed by
// the thousand, almost always cancelled before they fire (the ack arrives,
// the consensus instance decides, the transaction commits). Feeding them
// through Simulator::schedule_after makes every one a heap entry that is
// pushed, sifted, and later popped as a cancelled tombstone - O(log n) each
// way for events that mostly never run, inflating the queue the hot delivery
// path sifts through. The wheel gives those timers O(1) arm and O(1) cancel
// (an intrusive doubly-linked unlink), and keeps exactly ONE simulator event
// pending - the pump, scheduled at the earliest armed deadline - regardless
// of how many timers are outstanding.
//
// Structure: kLevels levels of 64 slots each. Level l buckets are
// tick * 64^l wide, so the wheel spans tick * 64^kLevels (with the default
// 256us tick: level 0 covers 16.4ms at 256us granularity, level 1 covers
// 1.05s, level 2 covers 67s; deadlines beyond the span still work - they
// share the coarsest buckets). A timer's deadline is quantized UP to a tick
// boundary at arm time; the pump fires at exactly that boundary, so a timer
// goes off at most one tick late and never early. Each bucket tracks the
// minimum quantized deadline it holds, so the pump always knows the exact
// next firing instant - idle stretches cost nothing (no per-tick cascading
// events), and a fired pump re-arms itself at the new minimum.
//
// Steady-state churn performs zero heap allocations: timers live in a
// recycled slot pool (generation-tagged ids make stale cancels a no-op, like
// Simulator's EventId), callbacks are InlineAction (inline-only captures),
// and the pump recycles one simulator slot. tests/timer_wheel_test.cc pins
// the zero-allocation guarantee with a counting operator new.
//
// Determinism: the wheel is site-local state driven by its site's shard, so
// it inherits the simulator's single-threaded schedule. Timers sharing a
// quantized deadline fire in (level, slot, arm-order) order within one pump
// event - a fixed rule, independent of worker threads.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/simulator.h"
#include "util/assert.h"

namespace otpdb {

class TimerWheel {
 public:
  static constexpr int kLevels = 3;
  static constexpr std::uint32_t kSlotsPerLevel = 64;

  /// Handle for an armed timer; cancel() with a stale handle (timer already
  /// fired or cancelled) is a safe no-op. Default-constructed == null.
  struct TimerId {
    std::uint32_t slot = kNil;
    std::uint32_t generation = 0;
  };

  explicit TimerWheel(Simulator& sim, SimTime tick = 256 * kMicrosecond)
      : sim_(sim), tick_(tick) {
    OTPDB_CHECK(tick_ >= 1);
    spans_[0] = tick_;
    for (int l = 1; l < kLevels; ++l) spans_[l] = spans_[l - 1] * kSlotsPerLevel;
  }
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  SimTime tick() const { return tick_; }

  /// Arms a timer at absolute time `deadline` (>= now), fired at the first
  /// tick boundary >= deadline.
  TimerId schedule_at(SimTime deadline, Simulator::Action action) {
    OTPDB_CHECK(deadline >= sim_.now());
    const std::uint32_t idx = acquire();
    Node& node = nodes_[idx];
    node.at = quantize(deadline);
    node.action = std::move(action);
    node.armed = true;
    ++armed_;
    link(idx);
    maybe_schedule_pump();
    return TimerId{idx, node.generation};
  }

  /// Arms a timer `delay` after now (delay >= 0).
  TimerId schedule_after(SimTime delay, Simulator::Action action) {
    OTPDB_CHECK(delay >= 0);
    return schedule_at(sim_.now() + delay, std::move(action));
  }

  /// Disarms a timer. Returns false if it already fired or was cancelled
  /// (stale generation) - mirroring Simulator::cancel.
  bool cancel(TimerId id) {
    if (!armed(id)) return false;
    unlink(id.slot);
    release(id.slot);
    // A thinned bucket may leave the pending pump early; a spurious pump
    // just rescans and re-arms. But when the LAST timer is cancelled, drop
    // the pump outright - protocol timers are almost always cancelled (the
    // ack arrived, the instance decided), and a stale pump would otherwise
    // keep the simulation's event horizon alive for nothing.
    if (armed_ == 0 && pump_armed_) {
      sim_.cancel(pump_event_);
      pump_armed_ = false;
    }
    return true;
  }

  bool armed(TimerId id) const {
    return id.slot < nodes_.size() && nodes_[id.slot].armed &&
           nodes_[id.slot].generation == id.generation;
  }

  /// Armed timers currently outstanding.
  std::size_t armed_count() const { return armed_; }

 private:
  static constexpr std::uint32_t kNil = static_cast<std::uint32_t>(-1);

  struct Node {
    SimTime at = 0;  // quantized deadline
    std::uint32_t generation = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
    std::uint8_t level = 0;
    std::uint8_t bucket = 0;
    bool armed = false;
    Simulator::Action action;
  };
  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
    /// Exact minimum quantized deadline held (conservative - cancels may
    /// leave it low, which only makes a pump fire early and rescan).
    SimTime min_at = kSimTimeMax;
  };

  SimTime quantize(SimTime deadline) const {
    return (deadline + tick_ - 1) / tick_ * tick_;
  }

  std::uint32_t acquire() {
    if (!free_.empty()) {
      const std::uint32_t idx = free_.back();
      free_.pop_back();
      return idx;
    }
    nodes_.emplace_back();
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  void release(std::uint32_t idx) {
    Node& node = nodes_[idx];
    node.armed = false;
    node.action = nullptr;
    ++node.generation;  // invalidates outstanding TimerIds
    --armed_;
    free_.push_back(idx);
  }

  /// Picks the level whose range covers the remaining delta (far deadlines
  /// share the coarsest level; exact bucket minima keep the pump precise).
  void link(std::uint32_t idx) {
    // Bucket storage materializes on the first arm: many wheel owners (e.g.
    // a replica whose watchdog is disabled) never arm a timer, and an idle
    // wheel should cost neither the ~4.6KB nor the construction-time zeroing.
    if (buckets_.empty()) buckets_.assign(kLevels * kSlotsPerLevel, Bucket{});
    Node& node = nodes_[idx];
    const SimTime delta = node.at - sim_.now();
    int level = kLevels - 1;
    for (int l = 0; l < kLevels; ++l) {
      if (delta < spans_[l] * kSlotsPerLevel) {
        level = l;
        break;
      }
    }
    const auto slot = static_cast<std::uint32_t>((node.at / spans_[level]) % kSlotsPerLevel);
    node.level = static_cast<std::uint8_t>(level);
    node.bucket = static_cast<std::uint8_t>(slot);
    Bucket& bucket = buckets_[static_cast<std::size_t>(level) * kSlotsPerLevel + slot];
    node.prev = bucket.tail;
    node.next = kNil;
    if (bucket.tail == kNil) {
      bucket.head = idx;
    } else {
      nodes_[bucket.tail].next = idx;
    }
    bucket.tail = idx;
    if (node.at < bucket.min_at) bucket.min_at = node.at;
    occupied_[level] |= 1ull << slot;
  }

  void unlink(std::uint32_t idx) {
    Node& node = nodes_[idx];
    Bucket& bucket = buckets_[static_cast<std::size_t>(node.level) * kSlotsPerLevel + node.bucket];
    if (node.prev != kNil) {
      nodes_[node.prev].next = node.next;
    } else {
      bucket.head = node.next;
    }
    if (node.next != kNil) {
      nodes_[node.next].prev = node.prev;
    } else {
      bucket.tail = node.prev;
    }
    if (bucket.head == kNil) {
      bucket.min_at = kSimTimeMax;
      occupied_[node.level] &= ~(1ull << node.bucket);
    }
  }

  SimTime earliest() const {
    SimTime next = kSimTimeMax;
    for (int l = 0; l < kLevels; ++l) {
      std::uint64_t bits = occupied_[l];
      while (bits != 0) {
        const int slot = __builtin_ctzll(bits);
        bits &= bits - 1;
        const SimTime at = buckets_[static_cast<std::size_t>(l) * kSlotsPerLevel + slot].min_at;
        if (at < next) next = at;
      }
    }
    return next;
  }

  void maybe_schedule_pump() {
    const SimTime next = earliest();
    if (next == kSimTimeMax) return;  // idle; a stale pump rescans harmlessly
    if (pump_armed_ && pump_at_ <= next) return;
    if (pump_armed_) sim_.cancel(pump_event_);
    pump_at_ = next;
    pump_armed_ = true;
    pump_event_ = sim_.schedule_at(next, [this] { pump(); });
  }

  void pump() {
    pump_armed_ = false;
    const SimTime now = sim_.now();
    for (int l = 0; l < kLevels; ++l) {
      std::uint64_t bits = occupied_[l];
      while (bits != 0) {
        const int slot = __builtin_ctzll(bits);
        bits &= bits - 1;
        Bucket& bucket = buckets_[static_cast<std::size_t>(l) * kSlotsPerLevel + slot];
        if (bucket.min_at > now) continue;
        // Fire ripe nodes in arm order and recompute the exact minimum of the
        // survivors. The stale minimum is erased first: a callback may arm new
        // timers (re-arm patterns), and tail insertion into this very bucket
        // min-updates bucket.min_at through link(), so min(bucket.min_at,
        // walk minimum) at the end is exact even for nodes the walk missed.
        bucket.min_at = kSimTimeMax;
        SimTime min_at = kSimTimeMax;
        std::uint32_t cur = bucket.head;
        while (cur != kNil) {
          const std::uint32_t next = nodes_[cur].next;
          if (nodes_[cur].at <= now) {
            unlink(cur);
            Simulator::Action action = std::move(nodes_[cur].action);
            release(cur);
            action();
          } else if (nodes_[cur].at < min_at) {
            min_at = nodes_[cur].at;
          }
          cur = next;
        }
        if (bucket.head != kNil) {
          bucket.min_at = bucket.min_at < min_at ? bucket.min_at : min_at;
        } else {
          bucket.min_at = kSimTimeMax;
        }
      }
    }
    maybe_schedule_pump();
  }

  Simulator& sim_;
  SimTime tick_;
  SimTime spans_[kLevels] = {};
  /// Heap-backed (kLevels x kSlotsPerLevel, row-major): 192 buckets are
  /// ~4.6KB, too fat to inline into every protocol object that owns a wheel
  /// - an embedded array would wedge cold bucket state between the owner's
  /// hot members and cost cache misses on paths that never touch a timer.
  std::vector<Bucket> buckets_;
  std::uint64_t occupied_[kLevels] = {};
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  std::size_t armed_ = 0;
  EventId pump_event_{};
  bool pump_armed_ = false;
  SimTime pump_at_ = 0;
};

}  // namespace otpdb
