#include "sim/simulator.h"

#include <utility>

namespace otpdb {

namespace {
// EventId value layout: (generation << 32 | slot) + 1, so the default-built
// EventId{0} never names a real event.
inline std::uint64_t encode(std::uint32_t slot, std::uint32_t generation) {
  return ((static_cast<std::uint64_t>(generation) << 32) | slot) + 1;
}
}  // namespace

EventId Simulator::schedule_at(SimTime at, Action action) {
  OTPDB_CHECK_MSG(at >= now_, "cannot schedule an event in the simulated past");
  OTPDB_CHECK(action != nullptr);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.action = std::move(action);
  s.armed = true;
  heap_.push(Entry{at, next_seq_++, slot, s.generation});
  ++live_;
  return EventId{encode(slot, s.generation)};
}

EventId Simulator::schedule_after(SimTime delay, Action action) {
  OTPDB_CHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  if (id.value == 0) return false;
  const std::uint64_t v = id.value - 1;
  const auto slot = static_cast<std::uint32_t>(v & 0xffffffffu);
  const auto generation = static_cast<std::uint32_t>(v >> 32);
  if (slot >= slots_.size()) return false;
  Slot& s = slots_[slot];
  if (!s.armed || s.generation != generation) return false;  // already fired/cancelled
  s.armed = false;
  s.action = nullptr;
  ++s.generation;  // stale heap entry is skipped on pop
  free_slots_.push_back(slot);
  --live_;
  return true;
}

SimTime Simulator::next_event_time() {
  return settle_top() ? heap_.top().at : kSimTimeMax;
}

bool Simulator::settle_top() {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    const Slot& s = slots_[top.slot];
    if (s.armed && s.generation == top.generation) return true;
    heap_.pop();  // cancelled or recycled; drop the stale entry
  }
  return false;
}

bool Simulator::step() {
  if (!settle_top()) return false;
  const Entry top = heap_.top();
  heap_.pop();
  Slot& s = slots_[top.slot];
  Action action = std::move(s.action);
  s.action = nullptr;
  s.armed = false;
  ++s.generation;
  free_slots_.push_back(top.slot);
  --live_;
  now_ = top.at;
  ++executed_;
  action();
  return true;
}

std::uint64_t Simulator::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

void Simulator::run_until(SimTime deadline) {
  while (settle_top() && heap_.top().at <= deadline) step();
  now_ = std::max(now_, deadline);
}

}  // namespace otpdb
