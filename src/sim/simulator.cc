#include "sim/simulator.h"

#include <utility>

namespace otpdb {

EventId Simulator::schedule_at(SimTime at, Action action) {
  OTPDB_CHECK_MSG(at >= now_, "cannot schedule an event in the simulated past");
  OTPDB_CHECK(action != nullptr);
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  actions_.emplace(id, std::move(action));
  return EventId{id};
}

EventId Simulator::schedule_after(SimTime delay, Action action) {
  OTPDB_CHECK(delay >= 0);
  return schedule_at(now_ + delay, std::move(action));
}

bool Simulator::cancel(EventId id) {
  auto it = actions_.find(id.value);
  if (it == actions_.end()) return false;
  actions_.erase(it);
  cancelled_.insert(id.value);
  return true;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.top();
    heap_.pop();
    auto cancelled = cancelled_.find(top.id);
    if (cancelled != cancelled_.end()) {
      cancelled_.erase(cancelled);
      continue;
    }
    auto it = actions_.find(top.id);
    OTPDB_ASSERT(it != actions_.end());
    Action action = std::move(it->second);
    actions_.erase(it);
    now_ = top.at;
    ++executed_;
    action();
    return true;
  }
  return false;
}

std::uint64_t Simulator::run(std::uint64_t limit) {
  std::uint64_t n = 0;
  while (n < limit && step()) ++n;
  return n;
}

void Simulator::run_until(SimTime deadline) {
  while (!heap_.empty()) {
    // Skip cancelled entries without advancing time.
    const Entry top = heap_.top();
    if (cancelled_.contains(top.id)) {
      heap_.pop();
      cancelled_.erase(top.id);
      continue;
    }
    if (top.at > deadline) break;
    step();
  }
  now_ = std::max(now_, deadline);
}

}  // namespace otpdb
