#include "sim/sharded_engine.h"

#include <algorithm>

#include "util/assert.h"

namespace otpdb {

namespace {

thread_local Simulator* tls_active_shard = nullptr;

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
}

}  // namespace

Simulator* active_shard() { return tls_active_shard; }
void set_active_shard(Simulator* sim) { tls_active_shard = sim; }

ShardedEngine::ShardedEngine(std::size_t n_sites, ParallelismConfig config) : config_(config) {
  OTPDB_CHECK(n_sites >= 1);
  sites_.reserve(n_sites);
  for (std::size_t s = 0; s < n_sites; ++s) sites_.push_back(std::make_unique<Simulator>());
  // More participants than sites would only spin; participant 0 is the
  // coordinating thread, the rest are spawned workers.
  n_workers_ = static_cast<unsigned>(
      std::min<std::size_t>(std::max(1u, config.threads), n_sites));
  threads_.reserve(n_workers_ - 1);
  for (unsigned w = 1; w < n_workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ShardedEngine::~ShardedEngine() {
  stop_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);  // wake spinners
  epoch_.notify_all();
  for (auto& t : threads_) t.join();
}

void ShardedEngine::attach_medium(SharedMedium* medium) {
  OTPDB_CHECK(medium != nullptr);
  OTPDB_CHECK_MSG(medium_ == nullptr, "medium already attached");
  medium_ = medium;
  const SimTime lookahead = medium->lookahead();
  OTPDB_CHECK_MSG(lookahead >= 1,
                  "sharded engine needs a positive cross-shard lookahead "
                  "(serialization_time + base_delay must be > 0)");
  window_ = config_.window > 0 ? std::min(config_.window, lookahead) : lookahead;
}

void ShardedEngine::run_owned_sites(unsigned worker, SimTime end) {
  for (std::size_t s = worker; s < sites_.size(); s += n_workers_) {
    Simulator& shard = *sites_[s];
    set_active_shard(&shard);
    medium_->begin_site_window(static_cast<SiteId32>(s), shard);
    shard.run_until(end);
  }
  set_active_shard(nullptr);
}

void ShardedEngine::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    // Spin briefly (the coordinator releases the next phase microseconds
    // later on a healthy multi-core host), then park on the futex: an
    // oversubscribed or single-core host must not burn the very core the
    // coordinator needs.
    std::uint64_t cur;
    int spins = 0;
    while ((cur = epoch_.load(std::memory_order_acquire)) == seen) {
      if (++spins < 256) {
        cpu_pause();
      } else {
        epoch_.wait(seen, std::memory_order_acquire);
      }
    }
    seen = cur;
    if (stop_.load(std::memory_order_acquire)) return;
    run_owned_sites(worker, window_end_);
    arrived_.fetch_add(1, std::memory_order_release);
    arrived_.notify_all();
  }
}

void ShardedEngine::run_until(SimTime deadline) {
  OTPDB_CHECK_MSG(medium_ != nullptr, "attach_medium before running the sharded engine");
  // Sends issued while the engine is idle (setup code, test pokes between
  // runs) sit in outboxes stamped with the hub clock of that moment. Flush
  // them before the first window: otherwise the window-start jump below can
  // leap past their delivery times and the barrier flush would schedule
  // hub events in the past.
  medium_->flush_outboxes();
  for (;;) {
    // After a barrier all pending work sits in shard queues, so the earliest
    // event across shards bounds the next window start - idle stretches
    // (quiesce phases) collapse into a single jump.
    SimTime next = hub_.next_event_time();
    for (auto& s : sites_) next = std::min(next, s->next_event_time());
    const SimTime start = std::max(hub_.now(), next);
    if (start > deadline) break;
    const SimTime end = std::min(deadline, start + window_);

    // 1. Hub phase: deliveries -> inboxes, plus control events.
    set_active_shard(&hub_);
    hub_.run_until(end);
    set_active_shard(nullptr);

    // 2. Site phase: shards run [start, end] concurrently, lock-free.
    if (!threads_.empty()) {
      window_end_ = end;
      arrived_.store(0, std::memory_order_relaxed);
      epoch_.fetch_add(1, std::memory_order_release);
      epoch_.notify_all();
      run_owned_sites(0, end);
      unsigned arrived;
      int spins = 0;
      while ((arrived = arrived_.load(std::memory_order_acquire)) != n_workers_ - 1) {
        if (++spins < 256) {
          cpu_pause();
        } else {
          arrived_.wait(arrived, std::memory_order_acquire);
        }
      }
    } else {
      run_owned_sites(0, end);
    }

    // 3. Barrier: canonical flush of all buffered sends into future hub
    // deliveries (the lookahead puts them strictly beyond `end`).
    medium_->flush_outboxes();
  }
  // No shard has events at or before the deadline; advance every clock to it
  // so the next run resumes from a common boundary.
  hub_.run_until(deadline);
  for (auto& s : sites_) s->run_until(deadline);
}

std::uint64_t ShardedEngine::executed() const {
  std::uint64_t n = hub_.executed();
  for (const auto& s : sites_) n += s->executed();
  return n;
}

}  // namespace otpdb
