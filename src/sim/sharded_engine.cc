#include "sim/sharded_engine.h"

#include <algorithm>

#include "util/assert.h"

namespace otpdb {

namespace {

thread_local Simulator* tls_active_shard = nullptr;

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#endif
}

/// a + b without overflowing past the "no event" sentinel.
inline SimTime sat_add(SimTime a, SimTime b) {
  return a >= kSimTimeMax - b ? kSimTimeMax : a + b;
}

}  // namespace

Simulator* active_shard() { return tls_active_shard; }
void set_active_shard(Simulator* sim) { tls_active_shard = sim; }

ShardedEngine::ShardedEngine(std::size_t n_sites, ParallelismConfig config) : config_(config) {
  OTPDB_CHECK(n_sites >= 1);
  sites_.reserve(n_sites);
  for (std::size_t s = 0; s < n_sites; ++s) sites_.push_back(std::make_unique<Simulator>());
  // More participants than sites would only spin; participant 0 is the
  // coordinating thread, the rest are spawned workers.
  n_workers_ = static_cast<unsigned>(
      std::min<std::size_t>(std::max(1u, config.threads), n_sites));
  threads_.reserve(n_workers_ - 1);
  for (unsigned w = 1; w < n_workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ShardedEngine::~ShardedEngine() {
  stop_.store(true, std::memory_order_release);
  epoch_.fetch_add(1, std::memory_order_release);  // wake spinners
  epoch_.notify_all();
  for (auto& t : threads_) t.join();
}

void ShardedEngine::attach_medium(SharedMedium* medium) {
  OTPDB_CHECK(medium != nullptr);
  OTPDB_CHECK_MSG(medium_ == nullptr, "medium already attached");
  medium_ = medium;
  const std::size_t n = sites_.size();
  bounds_.assign(n, 0);
  eot_.assign(n, 0);

  if (config_.strategy == WindowStrategy::channel) {
    OTPDB_CHECK_MSG(medium->per_edge(),
                    "channel window strategy requires a per-edge medium "
                    "(pick a switched topology profile: metro, wan, geo-3dc)");
  }
  channel_ = medium->per_edge() && config_.strategy != WindowStrategy::global;

  const SimTime global_la = medium->lookahead();
  OTPDB_CHECK_MSG(global_la >= 1,
                  "sharded engine needs a positive cross-shard lookahead "
                  "(serialization_time + base_delay must be > 0)");
  if (!channel_) {
    window_ = config_.window > 0 ? std::min(config_.window, global_la) : global_la;
    stats_.window = window_;
    return;
  }

  // Channel strategy: cache the lookahead matrix and derive the autotuner's
  // cap range from its extremes.
  lookahead_.resize(n * n);
  std::vector<SimTime> min_in(n, kSimTimeMax);
  min_lookahead_ = kSimTimeMax;
  SimTime max_lookahead = 0;
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      const SimTime la = medium->lookahead(static_cast<SiteId32>(from),
                                           static_cast<SiteId32>(to));
      OTPDB_CHECK_MSG(la >= 1, "per-edge lookahead must be positive");
      lookahead_[from * n + to] = la;
      // The hub may originate a send on any site's behalf (control events),
      // so its edge into `to` is the weakest incoming one, self included.
      min_in[to] = std::min(min_in[to], la);
      if (from != to) {
        min_lookahead_ = std::min(min_lookahead_, la);
        max_lookahead = std::max(max_lookahead, la);
      }
    }
  }
  if (min_lookahead_ == kSimTimeMax) min_lookahead_ = global_la;  // single site

  // Shortest-path closure (Floyd-Warshall) of the lookahead graph. A message
  // chain r -> q -> ... -> s reacting within one round is delayed by at least
  // the sum of the edge lookaheads along the path, so the safe per-round
  // bound for s is min over ALL shards r of EOT_r + dist_(r, s) - including
  // r == s, whose entry is the cheapest round trip via a peer: a site's own
  // in-phase sends can wake an idle neighbor whose reply must not land in
  // the sender's past. (Self staging never happens - loopback is inline - so
  // the diagonal starts at infinity, not lookahead(s, s).)
  dist_ = lookahead_;
  for (std::size_t s = 0; s < n; ++s) dist_[s * n + s] = kSimTimeMax;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const SimTime ik = dist_[i * n + k];
      if (ik == kSimTimeMax) continue;
      for (std::size_t j = 0; j < n; ++j) {
        dist_[i * n + j] = std::min(dist_[i * n + j], sat_add(ik, dist_[k * n + j]));
      }
    }
  }
  // The hub reaches s directly over its weakest incoming edge or by waking
  // any site r first and chaining through the graph.
  hub_dist_.assign(n, kSimTimeMax);
  for (std::size_t s = 0; s < n; ++s) {
    hub_dist_[s] = min_in[s];
    for (std::size_t r = 0; r < n; ++r) {
      hub_dist_[s] = std::min(hub_dist_[s], sat_add(min_in[r], dist_[r * n + s]));
    }
  }
  const auto& at = config_.autotune;
  window_min_ = at.min_window > 0 ? at.min_window : min_lookahead_;
  window_max_ = at.max_window > 0 ? at.max_window
                                  : std::max(64 * min_lookahead_, max_lookahead);
  window_max_ = std::max(window_max_, window_min_);
  if (config_.window > 0) {
    window_ = config_.window;  // fixed per-round cap
  } else if (at.enabled) {
    autotune_ = true;
    window_ = std::clamp(4 * min_lookahead_, window_min_, window_max_);
  } else {
    window_ = window_max_;
  }
  stats_.window = window_;
}

void ShardedEngine::run_owned_sites(unsigned worker) {
  for (std::size_t s = worker; s < sites_.size(); s += n_workers_) {
    Simulator& shard = *sites_[s];
    set_active_shard(&shard);
    medium_->begin_site_window(static_cast<SiteId32>(s), shard);
    shard.run_until(bounds_[s]);
  }
  set_active_shard(nullptr);
}

void ShardedEngine::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    // Spin briefly (the coordinator releases the next phase microseconds
    // later on a healthy multi-core host), then park on the futex: an
    // oversubscribed or single-core host must not burn the very core the
    // coordinator needs.
    std::uint64_t cur;
    int spins = 0;
    while ((cur = epoch_.load(std::memory_order_acquire)) == seen) {
      if (++spins < 256) {
        cpu_pause();
      } else {
        epoch_.wait(seen, std::memory_order_acquire);
      }
    }
    seen = cur;
    if (stop_.load(std::memory_order_acquire)) return;
    run_owned_sites(worker);
    arrived_.fetch_add(1, std::memory_order_release);
    arrived_.notify_all();
  }
}

void ShardedEngine::run_site_phase() {
  if (!threads_.empty()) {
    arrived_.store(0, std::memory_order_relaxed);
    epoch_.fetch_add(1, std::memory_order_release);  // publishes bounds_
    epoch_.notify_all();
    run_owned_sites(0);
    unsigned arrived;
    int spins = 0;
    while ((arrived = arrived_.load(std::memory_order_acquire)) != n_workers_ - 1) {
      if (++spins < 256) {
        cpu_pause();
      } else {
        arrived_.wait(arrived, std::memory_order_acquire);
      }
    }
  } else {
    run_owned_sites(0);
  }
}

void ShardedEngine::run_until(SimTime deadline) {
  OTPDB_CHECK_MSG(medium_ != nullptr, "attach_medium before running the sharded engine");
  if (channel_) {
    run_until_channel(deadline);
  } else {
    run_until_global(deadline);
  }
  // No shard has events at or before the deadline; advance every clock to it
  // so the next run resumes from a common boundary.
  hub_.run_until(deadline);
  for (auto& s : sites_) s->run_until(deadline);
}

void ShardedEngine::run_until_global(SimTime deadline) {
  // Sends issued while the engine is idle (setup code, test pokes between
  // runs) sit in outboxes stamped with the hub clock of that moment. Flush
  // them before the first window: otherwise the window-start jump below can
  // leap past their delivery times and the barrier flush would schedule
  // hub events in the past.
  medium_->flush_outboxes();
  const std::size_t n = sites_.size();
  const bool per_edge = medium_->per_edge();
  for (;;) {
    // After a barrier all pending work sits in shard queues (or, for
    // per-edge media, staging cells), so the earliest event across shards
    // bounds the next window start - idle stretches (quiesce phases)
    // collapse into a single jump.
    SimTime next = hub_.next_event_time();
    for (std::size_t s = 0; s < n; ++s) {
      SimTime site_next = sites_[s]->next_event_time();
      if (per_edge) {
        site_next = std::min(site_next,
                             medium_->earliest_staged(static_cast<SiteId32>(s)));
      }
      eot_[s] = site_next;
      next = std::min(next, site_next);
    }
    const SimTime start = std::max(hub_.now(), next);
    if (start > deadline) break;
    const SimTime end = std::min(deadline, start + window_);

    unsigned active = 0;
    for (std::size_t s = 0; s < n; ++s) active += eot_[s] <= end;
    stats_.site_activations += active;

    // 1. Hub phase: deliveries -> inboxes, plus control events.
    set_active_shard(&hub_);
    hub_.run_until(end);
    set_active_shard(nullptr);

    // 2. Site phase: shards run [start, end] concurrently, lock-free.
    std::fill(bounds_.begin(), bounds_.end(), end);
    run_site_phase();

    // 3. Barrier: canonical flush of all buffered sends into future hub
    // deliveries (the lookahead puts them at or beyond `end`).
    finish_round();
  }
}

void ShardedEngine::run_until_channel(SimTime deadline) {
  const std::size_t n = sites_.size();
  for (;;) {
    // Earliest output time per shard: the soonest instant it could still
    // execute an event (and hence send). Shard queues are append-only
    // between rounds and staged deliveries are tracked by the medium, so
    // EOT == min(next local event, earliest staged delivery); idle shards
    // (kSimTimeMax) constrain nobody. The hub never receives messages, so
    // its EOT is simply its next control event.
    const SimTime hub_eot = hub_.next_event_time();
    SimTime global_next = hub_eot;
    for (std::size_t s = 0; s < n; ++s) {
      const SimTime next = std::min(sites_[s]->next_event_time(),
                                    medium_->earliest_staged(static_cast<SiteId32>(s)));
      eot_[s] = next;
      global_next = std::min(global_next, next);
    }
    if (global_next > deadline) break;

    // Channel-clock bounds: site s may run to
    //   min over shards r of (EOT_r + dist(r -> s)),
    // where dist is the shortest-path closure of the lookahead graph (the
    // r == s entry is the cheapest round trip via a peer, capping how far s
    // may outrun the echoes of its own in-phase sends), also bounded by the
    // hub (control events may send on any edge and mutate network-wide
    // fault state).
    SimTime hub_end = deadline;
    unsigned active = 0;
    for (std::size_t s = 0; s < n; ++s) {
      SimTime bound = deadline;
      const SimTime* d_in = dist_.data() + s;  // column s, stride n
      for (std::size_t r = 0; r < n; ++r) {
        bound = std::min(bound, sat_add(eot_[r], d_in[r * n]));
      }
      bound = std::min(bound, sat_add(hub_eot, hub_dist_[s]));
      if (eot_[s] <= bound) {
        ++active;
        // The autotuned cap limits per-round work, measured from the first
        // event this site will actually run.
        bound = std::min(bound, sat_add(eot_[s], window_));
      }
      bounds_[s] = bound;
      hub_end = std::min(hub_end, bound);
    }
    stats_.site_activations += active;

    // 1. Hub phase (serial, sites idle): control events run to the slowest
    // site bound; their sends schedule directly onto the site shards.
    set_active_shard(&hub_);
    hub_.run_until(hub_end);
    set_active_shard(nullptr);

    // 2. Site phase: each shard drains its staged deliveries (canonical
    // sender order) and runs to its own bound; sends process inline on the
    // sending shard and stage cross-site deliveries per edge.
    const std::uint64_t before = autotune_ ? executed() : 0;
    run_site_phase();

    // 3. Barrier: flip staging parity (and drain serially when the sharded
    // hub phase is disabled).
    finish_round();

    if (autotune_ && active > 0) {
      const std::uint64_t per_site = (executed() - before) / active;
      if (per_site > config_.autotune.target_hi && window_ > window_min_) {
        window_ = std::max(window_min_, window_ / 2);
        ++stats_.window_shrinks;
        stats_.window = window_;
      } else if (per_site < config_.autotune.target_lo && window_ < window_max_) {
        window_ = std::min(window_max_, window_ * 2);
        ++stats_.window_grows;
        stats_.window = window_;
      }
    }
  }
}

void ShardedEngine::finish_round() {
  medium_->flush_outboxes();
  medium_->end_round();
  if (!config_.sharded_hub_drain) {
    // Ablation baseline: the coordinator performs the whole delivery fan-out
    // serially at the barrier instead of each receiver draining its own
    // staged cells at phase start. Canonical receiver order keeps the event
    // seq assignment identical to the sharded drain.
    for (std::size_t s = 0; s < sites_.size(); ++s) {
      medium_->begin_site_window(static_cast<SiteId32>(s), *sites_[s]);
    }
  }
  ++stats_.rounds;
}

std::uint64_t ShardedEngine::executed() const {
  std::uint64_t n = hub_.executed();
  for (const auto& s : sites_) n += s->executed();
  return n;
}

}  // namespace otpdb
