// Deterministic discrete-event simulator.
//
// All otpdb experiments run an entire replicated cluster inside one Simulator:
// the network model schedules message arrivals, replicas schedule transaction
// execution completions, the broadcast protocols schedule timeouts. Events at
// equal timestamps fire in schedule order (stable FIFO tie-break), so a run is
// a pure function of (configuration, seed).
#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <vector>

#include "sim/inline_action.h"
#include "util/assert.h"

namespace otpdb {

/// Simulated time in nanoseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

/// Sentinel for "no event pending" (see Simulator::next_event_time).
constexpr SimTime kSimTimeMax = INT64_MAX;

/// Handle for a scheduled event; usable to cancel it before it fires.
/// Encodes (slot, generation) into one word; 0 is the null handle.
struct EventId {
  std::uint64_t value = 0;
  bool operator==(const EventId&) const = default;
};

/// Single-threaded discrete-event engine.
///
/// One Simulator instance is only ever driven by one thread at a time. The
/// sharded cluster engine (sim/sharded_engine.h) runs one Simulator per site
/// plus one for the network hub and hands them to worker threads in
/// barrier-separated phases; all cross-shard traffic goes through the
/// SharedMedium mailboxes, never through another shard's queue.
class Simulator {
 public:
  /// Inline-only callback: captures must fit InlineAction::kCapacity (a
  /// compile-time check), so scheduling an event never heap-allocates.
  using Action = InlineAction;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `at` (>= now). Returns a cancel handle.
  EventId schedule_at(SimTime at, Action action);

  /// Schedules `action` `delay` after now (delay >= 0).
  EventId schedule_after(SimTime delay, Action action);

  /// Cancels a pending event. Returns false if it already fired or was cancelled.
  bool cancel(EventId id);

  /// Runs the earliest pending event. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue empties or `limit` events have fired.
  /// Returns the number of events executed.
  std::uint64_t run(std::uint64_t limit = UINT64_MAX);

  /// Runs events with time <= deadline; afterwards now() == max(now, deadline).
  void run_until(SimTime deadline);

  /// Pending (non-cancelled) event count.
  std::size_t pending() const { return live_; }

  /// Firing time of the earliest pending event, or kSimTimeMax when idle.
  /// (Non-const: drops stale cancelled heap entries as a side effect.)
  SimTime next_event_time();

  /// Total events executed so far (for bench counters / loop guards).
  std::uint64_t executed() const { return executed_; }

 private:
  // Actions live in a recycled slot pool; heap entries reference slots by
  // index and carry the slot's generation so cancelled/stale entries are
  // recognized with one array probe (no hash tables on the event hot path).
  struct Slot {
    Action action;
    std::uint32_t generation = 0;
    bool armed = false;
  };
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // schedule order; breaks timestamp ties FIFO
    std::uint32_t slot;
    std::uint32_t generation;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops heap entries until the top references a live event (or the heap is
  /// empty). Returns false when nothing is pending.
  bool settle_top();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace otpdb
