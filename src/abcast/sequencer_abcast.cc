#include "abcast/sequencer_abcast.h"

#include "abcast/channels.h"
#include "util/assert.h"

namespace otpdb {
namespace {

struct OrderPayload final : Payload {
  MsgId subject;
  TOIndex index = 0;
};

}  // namespace

SequencerAbcast::SequencerAbcast(Simulator& sim, Network& net, SiteId self,
                                 SequencerAbcastConfig config)
    : sim_(sim), net_(net), self_(self), config_(config) {
  OTPDB_CHECK(config_.sequencer < net.site_count());
  net_.subscribe(self_, kChannelData, [this](const Message& m) { on_data(m); });
  net_.subscribe(self_, kChannelSequencer, [this](const Message& m) { on_order(m); });
}

MsgId SequencerAbcast::broadcast(PayloadPtr payload) {
  ++stats_.broadcasts;
  return net_.multicast(self_, kChannelData, std::move(payload));
}

void SequencerAbcast::set_callbacks(AbcastCallbacks callbacks) {
  callbacks_ = std::move(callbacks);
}

void SequencerAbcast::on_data(const Message& msg) {
  OTPDB_ASSERT(!arrived_.contains(msg.id));
  arrived_.insert(msg.id);
  opt_time_[msg.id] = sim_.now();
  ++stats_.opt_delivered;
  if (callbacks_.opt_deliver) callbacks_.opt_deliver(msg);

  if (self_ == config_.sequencer) {
    auto order = std::make_shared<OrderPayload>();
    order->subject = msg.id;
    order->index = next_assign_++;
    net_.multicast(self_, kChannelSequencer, std::move(order));
  }
  drain();
}

void SequencerAbcast::on_order(const Message& msg) {
  const auto* order = payload_cast_fast<OrderPayload>(msg);
  OTPDB_CHECK(order != nullptr);
  OTPDB_ASSERT(!order_book_.contains(order->index));
  order_book_[order->index] = order->subject;
  drain();
}

void SequencerAbcast::drain() {
  // Same collect-then-dispatch pattern as OptAbcast::drain_decided: the
  // deliverable prefix cannot grow synchronously during dispatch.
  drain_scratch_.clear();
  while (true) {
    auto it = order_book_.find(next_expected_);
    if (it == order_book_.end()) break;
    if (!arrived_.contains(it->second)) break;  // Local Order: data must precede
    const MsgId id = it->second;
    const TOIndex index = it->first;
    order_book_.erase(it);
    ++next_expected_;
    ++stats_.to_delivered;
    stats_.opt_to_gap_total_ns += sim_.now() - opt_time_[id];
    drain_scratch_.emplace_back(id, index);
  }
  dispatch_to_deliver(callbacks_, drain_scratch_);
}

}  // namespace otpdb
