// Heartbeat-based failure detector (eventually-strong flavour).
//
// Every site multicasts a heartbeat each `interval`; a peer silent for longer
// than its current timeout becomes suspected. Suspicion is revised when a
// heartbeat arrives again (crash-recovery model: sites always recover). In the
// simulated network message delays are eventually bounded, so the detector is
// eventually accurate - which is all the consensus layer needs for liveness.
//
// Hysteresis against gray links (slow-but-alive peers, see net/fault_plan.h):
// every restore is evidence the suspicion was premature, so the per-peer
// timeout backs off multiplicatively (capped); sustained timely heartbeats
// decay it back toward the base. A peer that keeps limping stops churning
// suspect/restore cycles after a few rounds, while first-suspicion latency
// for genuinely crashed peers is unchanged - backoff only ever starts after
// a restore, which a crashed peer never produces.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace otpdb {

struct FailureDetectorConfig {
  SimTime interval = 25 * kMillisecond;
  SimTime suspect_timeout = 120 * kMillisecond;
  /// Per-peer timeout multiplier applied on every restore (<= 1 disables the
  /// hysteresis and restores the pre-chaos fixed-timeout behavior).
  double timeout_backoff = 2.0;
  /// Cap on the backed-off timeout, as a multiple of `suspect_timeout`.
  double max_timeout_factor = 8.0;
};

/// Churn counters; merge()-able across a cluster's detectors.
struct FailureDetectorStats {
  std::uint64_t suspicions = 0;
  std::uint64_t restores = 0;

  void merge(const FailureDetectorStats& other) {
    suspicions += other.suspicions;
    restores += other.restores;
  }
};

class FailureDetector {
 public:
  FailureDetector(Simulator& sim, Network& net, SiteId self, FailureDetectorConfig config);

  /// Begins emitting heartbeats and monitoring peers.
  void start();

  /// True if `site` is currently suspected of having crashed.
  bool suspects(SiteId site) const { return suspected_[site]; }

  /// Number of currently unsuspected sites (self included).
  std::size_t alive_count() const;

  /// Optional notifications.
  void set_on_suspect(std::function<void(SiteId)> fn) { on_suspect_ = std::move(fn); }
  void set_on_restore(std::function<void(SiteId)> fn) { on_restore_ = std::move(fn); }

  /// Lifetime suspicion churn at this detector.
  const FailureDetectorStats& stats() const { return stats_; }
  /// The current (possibly backed-off) suspect timeout for `site`.
  SimTime current_timeout(SiteId site) const { return timeout_[site]; }

 private:
  void tick();
  void on_heartbeat(const Message& msg);

  Simulator& sim_;
  Network& net_;
  SiteId self_;
  FailureDetectorConfig config_;
  std::vector<SimTime> last_heard_;
  std::vector<SimTime> timeout_;  // per-peer adaptive suspect timeout
  std::vector<bool> suspected_;
  FailureDetectorStats stats_;
  std::function<void(SiteId)> on_suspect_;
  std::function<void(SiteId)> on_restore_;
  bool started_ = false;
};

}  // namespace otpdb
