// Heartbeat-based failure detector (eventually-strong flavour).
//
// Every site multicasts a heartbeat each `interval`; a peer silent for longer
// than `suspect_timeout` becomes suspected. Suspicion is revised when a
// heartbeat arrives again (crash-recovery model: sites always recover). In the
// simulated network message delays are eventually bounded, so the detector is
// eventually accurate - which is all the consensus layer needs for liveness.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace otpdb {

struct FailureDetectorConfig {
  SimTime interval = 25 * kMillisecond;
  SimTime suspect_timeout = 120 * kMillisecond;
};

class FailureDetector {
 public:
  FailureDetector(Simulator& sim, Network& net, SiteId self, FailureDetectorConfig config);

  /// Begins emitting heartbeats and monitoring peers.
  void start();

  /// True if `site` is currently suspected of having crashed.
  bool suspects(SiteId site) const { return suspected_[site]; }

  /// Number of currently unsuspected sites (self included).
  std::size_t alive_count() const;

  /// Optional notifications.
  void set_on_suspect(std::function<void(SiteId)> fn) { on_suspect_ = std::move(fn); }
  void set_on_restore(std::function<void(SiteId)> fn) { on_restore_ = std::move(fn); }

 private:
  void tick();
  void on_heartbeat(const Message& msg);

  Simulator& sim_;
  Network& net_;
  SiteId self_;
  FailureDetectorConfig config_;
  std::vector<SimTime> last_heard_;
  std::vector<bool> suspected_;
  std::function<void(SiteId)> on_suspect_;
  std::function<void(SiteId)> on_restore_;
  bool started_ = false;
};

}  // namespace otpdb
