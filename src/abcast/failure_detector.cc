#include "abcast/failure_detector.h"

#include <algorithm>

#include "abcast/channels.h"
#include "util/assert.h"
#include "util/log.h"

namespace otpdb {

namespace {
struct HeartbeatPayload final : Payload {};
}  // namespace

FailureDetector::FailureDetector(Simulator& sim, Network& net, SiteId self,
                                 FailureDetectorConfig config)
    : sim_(sim),
      net_(net),
      self_(self),
      config_(config),
      last_heard_(net.site_count(), 0),
      timeout_(net.site_count(), config.suspect_timeout),
      suspected_(net.site_count(), false) {
  net_.subscribe(self_, kChannelHeartbeat, [this](const Message& m) { on_heartbeat(m); });
}

void FailureDetector::start() {
  OTPDB_CHECK(!started_);
  started_ = true;
  // Treat everyone as freshly heard at start so nobody is suspected before a
  // full timeout elapses.
  for (auto& t : last_heard_) t = sim_.now();
  tick();
}

std::size_t FailureDetector::alive_count() const {
  std::size_t n = 0;
  for (bool s : suspected_)
    if (!s) ++n;
  return n;
}

void FailureDetector::tick() {
  net_.multicast(self_, kChannelHeartbeat, std::make_shared<HeartbeatPayload>());
  const SimTime now = sim_.now();
  for (SiteId s = 0; s < net_.site_count(); ++s) {
    if (s == self_) continue;
    const bool late = now - last_heard_[s] > timeout_[s];
    if (late && !suspected_[s]) {
      suspected_[s] = true;
      ++stats_.suspicions;
      OTPDB_DEBUG("fd") << "site " << self_ << " suspects " << s;
      if (on_suspect_) on_suspect_(s);
    }
  }
  sim_.schedule_after(config_.interval, [this] { tick(); });
}

void FailureDetector::on_heartbeat(const Message& msg) {
  const SimTime now = sim_.now();
  const SimTime gap = now - last_heard_[msg.from];
  last_heard_[msg.from] = now;
  if (suspected_[msg.from]) {
    suspected_[msg.from] = false;
    ++stats_.restores;
    // Hysteresis: the suspicion was premature (the peer is alive), so back
    // off this peer's timeout before the next round of lateness.
    if (config_.timeout_backoff > 1.0) {
      const auto cap = static_cast<SimTime>(static_cast<double>(config_.suspect_timeout) *
                                            config_.max_timeout_factor);
      timeout_[msg.from] = std::min(
          cap, static_cast<SimTime>(static_cast<double>(timeout_[msg.from]) *
                                    config_.timeout_backoff));
    }
    OTPDB_DEBUG("fd") << "site " << self_ << " restores " << msg.from;
    if (on_restore_) on_restore_(msg.from);
  } else if (timeout_[msg.from] > config_.suspect_timeout && gap <= 2 * config_.interval) {
    // Timely heartbeat on a backed-off peer: decay one interval back toward
    // the base timeout, so a healed link re-earns the fast detector.
    timeout_[msg.from] =
        std::max(config_.suspect_timeout, timeout_[msg.from] - config_.interval);
  }
}

}  // namespace otpdb
