#include "abcast/failure_detector.h"

#include "abcast/channels.h"
#include "util/assert.h"
#include "util/log.h"

namespace otpdb {

namespace {
struct HeartbeatPayload final : Payload {};
}  // namespace

FailureDetector::FailureDetector(Simulator& sim, Network& net, SiteId self,
                                 FailureDetectorConfig config)
    : sim_(sim),
      net_(net),
      self_(self),
      config_(config),
      last_heard_(net.site_count(), 0),
      suspected_(net.site_count(), false) {
  net_.subscribe(self_, kChannelHeartbeat, [this](const Message& m) { on_heartbeat(m); });
}

void FailureDetector::start() {
  OTPDB_CHECK(!started_);
  started_ = true;
  // Treat everyone as freshly heard at start so nobody is suspected before a
  // full timeout elapses.
  for (auto& t : last_heard_) t = sim_.now();
  tick();
}

std::size_t FailureDetector::alive_count() const {
  std::size_t n = 0;
  for (bool s : suspected_)
    if (!s) ++n;
  return n;
}

void FailureDetector::tick() {
  net_.multicast(self_, kChannelHeartbeat, std::make_shared<HeartbeatPayload>());
  const SimTime now = sim_.now();
  for (SiteId s = 0; s < net_.site_count(); ++s) {
    if (s == self_) continue;
    const bool late = now - last_heard_[s] > config_.suspect_timeout;
    if (late && !suspected_[s]) {
      suspected_[s] = true;
      OTPDB_DEBUG("fd") << "site " << self_ << " suspects " << s;
      if (on_suspect_) on_suspect_(s);
    }
  }
  sim_.schedule_after(config_.interval, [this] { tick(); });
}

void FailureDetector::on_heartbeat(const Message& msg) {
  last_heard_[msg.from] = sim_.now();
  if (suspected_[msg.from]) {
    suspected_[msg.from] = false;
    OTPDB_DEBUG("fd") << "site " << self_ << " restores " << msg.from;
    if (on_restore_) on_restore_(msg.from);
  }
}

}  // namespace otpdb
