// OptAbcast - Atomic Broadcast with Optimistic Delivery (paper Section 2.1,
// protocol in the style of Pedone & Schiper, DISC'98).
//
// Data messages are IP-multicast to all sites and Opt-delivered the moment
// they arrive (tentative order = spontaneous network order). The definitive
// order is established in numbered *stages*, each backed by one consensus
// instance: every site proposes its arrival order of a batch of unordered
// messages. When spontaneous total order holds, all proposals are identical
// and the consensus fast path decides with no extra coordination rounds;
// otherwise a coordinator round resolves the mismatch. The decided sequence
// is TO-delivered in stage order; a message decided before it reaches some
// site is TO-delivered there only after its arrival, preserving the Local
// Order property (Opt-deliver always precedes TO-deliver).
//
// Two mechanisms keep the identical-proposal fast path hot:
//  * Epoch-aligned batching with an alignment window: stages open at global
//    multiples of batch_delay and only include messages that arrived at
//    least alignment_window before the boundary, so all sites evaluate the
//    same cutoff and propose the same batch despite arrival skew.
//  * Stage pipelining: up to max_outstanding_stages consensus instances run
//    concurrently, so a stage's proposal time is anchored to the global
//    epoch grid instead of the (skewed) arrival of the previous decision,
//    and ordering throughput is not bound by per-stage latency.
//
// Decisions can be learned out of order (fast-path decisions are silent, and
// instances are pipelined); they are buffered and applied strictly in stage
// order.
//
// Tolerates f < n/2 crash faults (inherited from the consensus layer).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "abcast/abcast.h"
#include "abcast/consensus.h"
#include "net/network.h"
#include "sim/timer_wheel.h"
#include "sim/simulator.h"

namespace otpdb {

struct OptAbcastConfig {
  /// Stage cadence: stages open at global multiples of this delay.
  SimTime batch_delay = 1 * kMillisecond;
  /// A stage only includes messages that arrived at least this long before
  /// the stage boundary; fresher messages wait for the next stage. Covers
  /// inter-site arrival skew (including the hiccup tail); pure added ordering
  /// latency, traded against fast-path probability.
  SimTime alignment_window = 800 * kMicrosecond;
  /// Maximum consensus instances in flight concurrently. The default (1,
  /// strictly sequential stages) maximizes the identical-proposal fast-path
  /// ratio: overlapped stages make proposal sets diverge after any mismatch,
  /// which costs more than the pipelining gains at LAN latencies (see
  /// bench/ablation_protocol for the measured tradeoff).
  std::size_t max_outstanding_stages = 1;
  /// Cap on messages proposed per stage.
  std::size_t max_batch = 128;
  /// Sender-side backpressure: maximum own broadcasts in flight (sent but not
  /// yet TO-delivered here). 0 = unbounded (the historical behavior). While
  /// at the cap, backpressured() turns true and the ingress gate refuses new
  /// submissions instead of letting pending_ grow without bound.
  std::size_t max_inflight_per_sender = 0;
  ConsensusConfig consensus;
};

class OptAbcast final : public AtomicBroadcast {
 public:
  OptAbcast(Simulator& sim, Network& net, FailureDetector& fd, SiteId self,
            OptAbcastConfig config);

  MsgId broadcast(PayloadPtr payload) override;
  void set_callbacks(AbcastCallbacks callbacks) override;
  SiteId site() const override { return self_; }
  const AbcastStats& stats() const override { return stats_; }
  bool backpressured() const override {
    return config_.max_inflight_per_sender != 0 &&
           own_inflight_ >= config_.max_inflight_per_sender;
  }

  /// Consensus-level counters (fast vs. coordinated stages).
  const ConsensusStats& consensus_stats() const { return consensus_.stats(); }

  /// Next definitive index this site will assign (== TO-delivered count + 1).
  TOIndex next_index() const { return next_index_; }

  /// Applied decisions by stage (also the recovery catch-up source). Exposed
  /// for chaos-test forensics: agreement means these match across sites.
  const std::map<std::uint64_t, std::vector<MsgId>>& decision_log() const {
    return decision_log_;
  }

  // -- Crash recovery (paper model: sites always recover) -------------------
  //
  // A crash wipes this endpoint's volatile protocol state (arrived bodies,
  // pending batches, in-flight proposals, even the applied-stage counters -
  // the definitive order is re-learned, and the replica suppresses re-commits
  // below its durable watermark). Catch-up is redo-style: peers keep a
  // decision log and a body cache; the recovering site requests decisions
  // from stage 0 and fetches missing message bodies on demand, re-delivering
  // Opt+TO through the normal callbacks. New stages keep flowing concurrently.

  /// Discards all volatile protocol state. Call while the site is down.
  void crash_reset();
  /// Starts catch-up after the network reconnected this site. A durable
  /// restart passes its recovered floor: every TO-slot at or below it is
  /// already committed on the replica's disk, so catch-up delivers those
  /// slots as body-less tombstones instead of fetching the payloads.
  void begin_recovery(TOIndex durable_floor = 0);
  /// True while catch-up is still in progress.
  bool recovering() const { return recovering_; }

 private:
  void on_data(const Message& msg);
  void consider_stage();
  void start_stage();
  void on_decide(std::uint64_t inst, const std::vector<MsgId>& sequence);
  void apply_decision(std::uint64_t inst, const std::vector<MsgId>& sequence);
  void drain_decided();
  void on_recovery_message(const Message& msg);
  void request_missing_bodies();
  void send_catch_up_request();
  void deliver_fetched_body(const MsgId& id, PayloadPtr payload);

  /// Everything this site knows about one message, consolidated so each
  /// protocol event costs a single MsgId hash probe instead of one per
  /// bookkeeping structure. Entries are never erased outside crash_reset, so
  /// pointers into the map stay valid and the hot queues carry them directly.
  struct MsgState {
    SimTime opt_time = 0;  // arrival time: alignment cutoff + gap statistic
    PayloadPtr body;       // cached to serve recovering peers
    bool arrived = false;  // Opt-delivered here
    bool ordered = false;  // definitively ordered by a decided stage
    bool in_proposal = false;  // sitting in an undecided stage's proposal
  };
  using MsgRef = std::pair<MsgId, MsgState*>;

  Simulator& sim_;
  Network& net_;
  SiteId self_;
  OptAbcastConfig config_;
  TimerWheel wheel_{sim_};  // retransmission timers (body_retry_timer_)
  ConsensusHost consensus_;
  AbcastCallbacks callbacks_;

  std::unordered_map<MsgId, MsgState> msgs_;
  std::deque<MsgRef> pending_;        // arrived, not yet definitively ordered
  std::deque<MsgRef> decided_queue_;  // decided, awaiting TO-delivery
  std::map<std::uint64_t, std::vector<MsgId>> decided_buffer_;  // out-of-order decisions
  std::map<std::uint64_t, std::vector<MsgId>> my_proposals_;    // per in-flight stage
  std::uint64_t next_apply_ = 0;    // lowest undecided stage at this site
  std::uint64_t next_propose_ = 0;  // next stage this site will propose for
  bool stage_timer_armed_ = false;
  TOIndex next_index_ = 1;
  /// Own broadcasts sent but not yet TO-delivered here (backpressure signal).
  std::size_t own_inflight_ = 0;
  /// TO-slots <= this are TO-delivered without a body during catch-up (the
  /// replica restored them from its own durable log). 0 outside recovery.
  TOIndex durable_floor_ = 0;
  AbcastStats stats_;
  std::vector<ToDelivery> drain_scratch_;  // reused burst buffer (drain_decided)

  // Recovery support (message bodies are cached in msgs_[].body).
  std::map<std::uint64_t, std::vector<MsgId>> decision_log_;     // stage -> decided sequence
  bool recovering_ = false;
  bool body_request_outstanding_ = false;
  /// Retransmission timer on wheel_ (cancelled by the body_response in the
  /// common case - exactly the cancel-heavy shape the wheel exists for).
  TimerWheel::TimerId body_retry_timer_{};
  std::uint32_t body_request_attempts_ = 0;  // rotates the peer asked
  std::uint64_t catch_up_round_ = 0;
};

}  // namespace otpdb
