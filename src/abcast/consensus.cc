#include "abcast/consensus.h"

#include <algorithm>
#include <utility>

#include "abcast/channels.h"
#include "util/assert.h"
#include "util/log.h"

namespace otpdb {
namespace {

enum class Kind : std::uint8_t { propose, estimate, coord_prop, ack, decision };

struct ConsensusPayload final : Payload {
  Kind kind;
  std::uint64_t inst = 0;
  std::uint64_t round = 0;
  std::uint64_t ts = 0;
  ConsensusHost::Value value;
};

PayloadPtr make_payload(Kind kind, std::uint64_t inst, std::uint64_t round, std::uint64_t ts,
                        ConsensusHost::Value value) {
  auto p = std::make_shared<ConsensusPayload>();
  p->kind = kind;
  p->inst = inst;
  p->round = round;
  p->ts = ts;
  p->value = std::move(value);
  return p;
}

}  // namespace

ConsensusHost::ConsensusHost(Simulator& sim, Network& net, FailureDetector& fd, SiteId self,
                             ConsensusConfig config)
    : sim_(sim), net_(net), fd_(fd), self_(self), config_(config) {
  net_.subscribe(self_, kChannelConsensus, [this](const Message& m) { on_message(m); });
}

ConsensusHost::Instance& ConsensusHost::instance(std::uint64_t inst) { return instances_[inst]; }

bool ConsensusHost::decided(std::uint64_t inst) const {
  auto it = instances_.find(inst);
  return it != instances_.end() && it->second.decided;
}

void ConsensusHost::crash_reset() {
  // Cancel round timers in ascending instance order: TimerWheel recycles
  // cancelled slots through a LIFO pool, so the cancel sequence dictates the
  // slot (and intra-bucket position) of every timer armed after the restart.
  // Hash-order cancellation would make the post-recovery wheel layout a
  // function of unordered_map internals.
  std::vector<std::uint64_t> armed;
  armed.reserve(instances_.size());
  // DETLINT(order-insensitive): keys are collected then sorted; only the
  // sorted order reaches wheel_.cancel below.
  for (auto& [inst, in] : instances_) {
    if (in.timer_armed) armed.push_back(inst);
  }
  std::sort(armed.begin(), armed.end());
  for (std::uint64_t inst : armed) wheel_.cancel(instances_[inst].round_timer);
  instances_.clear();
}

void ConsensusHost::propose(std::uint64_t inst, Value value) {
  Instance& in = instance(inst);
  OTPDB_CHECK_MSG(!in.proposed, "duplicate propose for consensus instance");
  in.proposed = true;
  if (in.decided) return;  // learned the decision before getting to propose
  in.est = value;
  in.ts = 0;
  net_.multicast(self_, kChannelConsensus,
                 make_payload(Kind::propose, inst, 0, 0, std::move(value)));
  arm_round_timer(inst);
  // If this site coordinates round 0, give the fast path a window, then drive
  // a coordinated round for liveness.
  if (coordinator(inst, 0) == self_) {
    sim_.schedule_after(config_.fast_wait, [this, inst] { maybe_coord_round0(inst); });
  }
}

void ConsensusHost::on_message(const Message& msg) {
  const auto* p = payload_cast_fast<ConsensusPayload>(msg);
  OTPDB_CHECK(p != nullptr);
  Instance& in = instance(p->inst);

  // Reply with the decision to any straggler still working on a decided instance.
  if (in.decided) {
    if (p->kind != Kind::decision && msg.from != self_) {
      net_.unicast(self_, msg.from, kChannelConsensus,
                   make_payload(Kind::decision, p->inst, 0, 0, in.decision));
    }
    return;
  }

  switch (p->kind) {
    case Kind::propose: {
      bool known = false;
      for (const auto& [site, payload] : in.proposals) known |= site == msg.from;
      if (!known) in.proposals.emplace_back(msg.from, msg.payload);
      // A proposal also serves as a round-0 estimate with timestamp 0.
      maybe_fast_decide(p->inst);
      if (!in.decided && coordinator(p->inst, 0) == self_ &&
          in.proposals.size() == net_.site_count()) {
        // Everyone proposed but the fast path failed: no point waiting longer.
        maybe_coord_round0(p->inst);
      }
      break;
    }
    case Kind::estimate:
      handle_estimate(p->inst, p->round, msg.from, p->ts, p->value);
      break;
    case Kind::coord_prop:
      handle_coord_prop(p->inst, p->round, msg.from, p->value);
      break;
    case Kind::ack:
      handle_ack(p->inst, p->round, msg.from);
      break;
    case Kind::decision:
      decide(p->inst, p->value, /*fast=*/false, /*announce=*/false);
      break;
  }
}

void ConsensusHost::maybe_fast_decide(std::uint64_t inst) {
  Instance& in = instance(inst);
  if (in.decided || in.proposals.size() != net_.site_count()) return;
  const auto value_of = [](const PayloadPtr& p) -> const Value& {
    return static_cast<const ConsensusPayload*>(p.get())->value;
  };
  const Value& first = value_of(in.proposals.front().second);
  for (const auto& [site, payload] : in.proposals) {
    if (value_of(payload) != first) return;
  }
  // All n proposals identical: decide without any further coordination. No
  // announcement is needed - every correct site receives the same n proposals
  // and takes this same branch.
  decide(inst, first, /*fast=*/true, /*announce=*/false);
}

void ConsensusHost::maybe_coord_round0(std::uint64_t inst) {
  Instance& in = instance(inst);
  if (in.decided || in.coord_proposed_round0 || in.round > 0) return;
  if (!in.proposed) return;  // cannot coordinate before having a value
  if (in.proposals.size() < majority()) {
    // Not enough proposals yet; retry shortly (liveness under slow links).
    sim_.schedule_after(config_.fast_wait, [this, inst] { maybe_coord_round0(inst); });
    return;
  }
  // Give the fast path one more chance on the data we have.
  maybe_fast_decide(inst);
  if (instance(inst).decided) return;
  in.coord_proposed_round0 = true;
  coord_propose(inst, 0, in.est);
}

void ConsensusHost::coord_propose(std::uint64_t inst, std::uint64_t round, Value value) {
  Instance& in = instance(inst);
  in.coord_value[round] = value;
  ++stats_.rounds_started;
  // Adopt our own proposal at send time, under the same staleness rule a peer
  // applies in handle_coord_prop. Counting self in the ack set is only sound
  // after this adoption: a majority of acks must mean a majority of sites
  // actually locked the value. (Before this, a coordinator whose estimate had
  // moved on to a later round still counted itself, so a decision could rest
  // on majority-1 real adopters - and a concurrent later round could lock a
  // different value with a disjoint majority. Found by chaos injection:
  // heavy delay variance makes rounds overlap.)
  if (round + 1 >= in.ts) {
    in.est = value;
    in.ts = round + 1;
    in.acks[round].insert(self_);
  }
  net_.multicast(self_, kChannelConsensus,
                 make_payload(Kind::coord_prop, inst, round, 0, std::move(value)));
}

void ConsensusHost::handle_estimate(std::uint64_t inst, std::uint64_t round, SiteId from,
                                    std::uint64_t ts, const Value& value) {
  Instance& in = instance(inst);
  if (coordinator(inst, round) != self_) return;
  // Never coordinate a round we have moved past: our estimate for a later
  // round (carrying the pre-adoption timestamp) is already in flight, so
  // self-adopting here could let two overlapping rounds lock different
  // values with disjoint majorities.
  if (round < in.round) return;
  in.estimates[round][from] = {ts, value};
  if (in.coord_value.contains(round)) return;  // already proposed this round
  // Include our own estimate once we have one.
  if (in.proposed) in.estimates[round][self_] = {in.ts, in.est};
  if (in.estimates[round].size() < majority()) return;
  // Adopt the estimate with the highest adoption timestamp (locking rule).
  const std::pair<std::uint64_t, Value>* best = nullptr;
  for (const auto& [site, tsv] : in.estimates[round]) {
    if (!best || tsv.first > best->first) best = &tsv;
  }
  coord_propose(inst, round, best->second);
}

void ConsensusHost::handle_coord_prop(std::uint64_t inst, std::uint64_t round, SiteId from,
                                      const Value& value) {
  Instance& in = instance(inst);
  // Adopt the coordinator's value and ack - but never let a stale round
  // overwrite an estimate adopted in a later round, or the locking argument
  // (decided values survive into all later rounds) would break.
  if (round + 1 < in.ts) return;
  // And never ack a round we have advanced past: our estimate for the later
  // round - sent before this adoption, still carrying the old timestamp - may
  // already be counted by that round's coordinator. Acking here would let a
  // decision rest on a majority whose locks the later round cannot see.
  // (Found by chaos injection; see the seed-5 trace in the chaos tests.)
  if (round < in.round) return;
  in.est = value;
  in.ts = round + 1;
  in.round = std::max(in.round, round);
  net_.unicast(self_, from, kChannelConsensus, make_payload(Kind::ack, inst, round, 0, {}));
}

void ConsensusHost::handle_ack(std::uint64_t inst, std::uint64_t round, SiteId from) {
  Instance& in = instance(inst);
  auto cv = in.coord_value.find(round);
  if (cv == in.coord_value.end()) return;
  auto& acks = in.acks[round];
  acks.insert(from);  // self was inserted in coord_propose iff we adopted
  if (acks.size() >= majority()) {
    decide(inst, cv->second, /*fast=*/false, /*announce=*/true);
  }
}

void ConsensusHost::decide(std::uint64_t inst, const Value& value, bool fast, bool announce) {
  Instance& in = instance(inst);
  if (in.decided) return;
  in.decided = true;
  in.decision = value;
  if (in.timer_armed) {
    wheel_.cancel(in.round_timer);
    in.timer_armed = false;
  }
  ++stats_.instances_decided;
  if (fast) {
    ++stats_.fast_decides;
  } else {
    ++stats_.round_decides;
  }
  if (announce) {
    net_.multicast(self_, kChannelConsensus, make_payload(Kind::decision, inst, 0, 0, value));
  }
  OTPDB_TRACE("consensus") << "site " << self_ << " decides inst " << inst << " ("
                           << (fast ? "fast" : "round") << ", " << value.size() << " msgs)";
  if (on_decide_) on_decide_(inst, value);
}

void ConsensusHost::arm_round_timer(std::uint64_t inst) {
  Instance& in = instance(inst);
  if (in.decided) return;
  if (in.timer_armed) wheel_.cancel(in.round_timer);
  double timeout = static_cast<double>(config_.round_timeout);
  for (std::uint64_t k = 0; k < in.round && timeout < static_cast<double>(config_.max_round_timeout);
       ++k) {
    timeout *= config_.backoff;
  }
  timeout = std::min(timeout, static_cast<double>(config_.max_round_timeout));
  in.round_timer = wheel_.schedule_after(static_cast<SimTime>(timeout),
                                         [this, inst] { advance_round(inst); });
  in.timer_armed = true;
}

void ConsensusHost::advance_round(std::uint64_t inst) {
  Instance& in = instance(inst);
  in.timer_armed = false;
  if (in.decided) return;
  ++in.round;
  const SiteId coord = coordinator(inst, in.round);
  OTPDB_DEBUG("consensus") << "site " << self_ << " advances inst " << inst << " to round "
                           << in.round << " (coordinator " << coord << ")";
  if (coord == self_) {
    // Seed our own estimate; more arrive from peers advancing their timers.
    handle_estimate(inst, in.round, self_, in.ts, in.est);
  } else {
    net_.unicast(self_, coord, kChannelConsensus,
                 make_payload(Kind::estimate, inst, in.round, in.ts, in.est));
  }
  arm_round_timer(inst);
}

}  // namespace otpdb
