#include "abcast/opt_abcast.h"

#include <algorithm>

#include "abcast/channels.h"
#include "util/assert.h"
#include "util/log.h"

namespace otpdb {

OptAbcast::OptAbcast(Simulator& sim, Network& net, FailureDetector& fd, SiteId self,
                     OptAbcastConfig config)
    : sim_(sim),
      net_(net),
      self_(self),
      config_(config),
      consensus_(sim, net, fd, self, config.consensus) {
  net_.subscribe(self_, kChannelData, [this](const Message& m) { on_data(m); });
  net_.subscribe(self_, kChannelRecovery, [this](const Message& m) { on_recovery_message(m); });
  consensus_.set_on_decide(
      [this](std::uint64_t inst, const std::vector<MsgId>& seq) { on_decide(inst, seq); });
}

MsgId OptAbcast::broadcast(PayloadPtr payload) {
  ++stats_.broadcasts;
  ++own_inflight_;  // decremented when this site TO-delivers the message
  return net_.multicast(self_, kChannelData, std::move(payload));
}

void OptAbcast::set_callbacks(AbcastCallbacks callbacks) { callbacks_ = std::move(callbacks); }

void OptAbcast::on_data(const Message& msg) {
  MsgState& st = msgs_[msg.id];  // single hash probe for the whole event
  if (st.arrived) return;        // late retransmit of a fetched body
  st.arrived = true;
  st.body = msg.payload;
  st.opt_time = sim_.now();
  ++stats_.opt_delivered;
  if (callbacks_.opt_deliver) callbacks_.opt_deliver(msg);

  if (st.ordered) {
    // Already definitively ordered by a decided stage; its TO-delivery may
    // have been waiting for this arrival (Local Order).
    drain_decided();
  } else {
    pending_.emplace_back(msg.id, &st);
    consider_stage();
  }
}

void OptAbcast::consider_stage() {
  if (stage_timer_armed_ || pending_.empty()) return;
  if (next_propose_ - next_apply_ >= config_.max_outstanding_stages) return;
  if (config_.batch_delay > 0) {
    stage_timer_armed_ = true;
    // Epoch-aligned batching: open stages at global multiples of batch_delay
    // so every site evaluates the same alignment cutoff.
    const SimTime boundary = (sim_.now() / config_.batch_delay + 1) * config_.batch_delay;
    sim_.schedule_at(boundary, [this] {
      stage_timer_armed_ = false;
      start_stage();
    });
  } else {
    start_stage();
  }
}

void OptAbcast::start_stage() {
  if (pending_.empty()) return;
  if (next_propose_ - next_apply_ >= config_.max_outstanding_stages) return;
  // Propose aged messages (arrived before cutoff) not already sitting in an
  // undecided stage; fresher arrivals wait so all sites propose the same set.
  const SimTime cutoff = sim_.now() - config_.alignment_window;
  std::vector<MsgId> proposal;
  for (const auto& [id, st] : pending_) {
    if (proposal.size() >= config_.max_batch) break;
    if (st->opt_time > cutoff) break;  // arrival order: the rest is fresher
    if (st->in_proposal) continue;
    proposal.push_back(id);
  }
  if (proposal.empty()) {
    // Everything proposable is too fresh (or already in flight); retry at a
    // later boundary.
    if (!stage_timer_armed_) {
      stage_timer_armed_ = true;
      const SimTime step = std::max(config_.batch_delay, config_.alignment_window);
      const SimTime boundary = (sim_.now() / step + 1) * step;
      sim_.schedule_at(boundary, [this] {
        stage_timer_armed_ = false;
        start_stage();
      });
    }
    return;
  }
  const std::uint64_t inst = next_propose_++;
  for (const MsgId& id : proposal) msgs_[id].in_proposal = true;
  my_proposals_[inst] = proposal;
  OTPDB_TRACE("optabcast") << "site " << self_ << " proposes stage " << inst << " with "
                           << proposal.size() << " msgs";
  consensus_.propose(inst, std::move(proposal));
  consider_stage();  // maybe pipeline another stage for the remaining backlog
}

void OptAbcast::on_decide(std::uint64_t inst, const std::vector<MsgId>& sequence) {
  // A decision may arrive twice on a recovering site: once through the
  // catch-up response and once through its own consensus participation.
  // Consensus agreement guarantees both carry the same sequence; apply once.
  if (inst < next_apply_) return;
  decided_buffer_.emplace(inst, sequence);
  while (true) {
    auto it = decided_buffer_.find(next_apply_);
    if (it == decided_buffer_.end()) break;
    apply_decision(next_apply_, it->second);
    decided_buffer_.erase(it);
    ++next_apply_;
  }
  drain_decided();
  consider_stage();
}

void OptAbcast::apply_decision(std::uint64_t inst, const std::vector<MsgId>& sequence) {
  decision_log_[inst] = sequence;
  for (const MsgId& id : sequence) {
    // With pipelined stages a message can appear in two decided sequences
    // (proposed for stage r+1 at this site while stage r's decision, formed
    // elsewhere, already contained it). Deliver on first occurrence only;
    // this is deterministic because every site applies decisions in stage
    // order.
    MsgState& st = msgs_[id];  // may create: decision can precede the body
    if (st.ordered) continue;
    st.ordered = true;
    st.in_proposal = false;
    decided_queue_.emplace_back(id, &st);
  }
  // Messages this site proposed for the stage but the decision left out roll
  // back to proposable state (they will enter a later stage).
  auto mine = my_proposals_.find(inst);
  if (mine != my_proposals_.end()) {
    for (const MsgId& id : mine->second) {
      MsgState& st = msgs_[id];
      if (!st.ordered) st.in_proposal = false;
    }
    my_proposals_.erase(mine);
  }
  // Keep next_propose_ monotone across sites that never proposed this stage.
  next_propose_ = std::max(next_propose_, inst + 1);
  // Drop ordered messages from the local pending list (they may sit at any
  // position if the tentative order disagreed with the decision).
  std::erase_if(pending_, [](const MsgRef& p) { return p.second->ordered; });
}

void OptAbcast::drain_decided() {
  // Collect the deliverable prefix first, then dispatch the whole burst in
  // one batched callback when the receiver supports it: a decided stage
  // drains as one pass over the replica's class queues instead of one
  // std::function hop per message. Nothing can extend the deliverable prefix
  // synchronously during dispatch (decisions and arrivals ride on network
  // events), so collect-then-dispatch preserves per-message semantics.
  drain_scratch_.clear();
  while (!decided_queue_.empty()) {
    const auto [id, st] = decided_queue_.front();
    if (!st->arrived) {
      if (next_index_ > durable_floor_) break;
      // Tombstone: this slot's effects are already on the replica's disk, so
      // the definitive index is assigned without a body. Marking the entry
      // arrived suppresses a late Opt-delivery if the original multicast (or
      // a fetched copy) shows up afterwards.
      st->arrived = true;
      st->opt_time = sim_.now();
      ++stats_.recovery_tombstones;
    }
    decided_queue_.pop_front();
    const TOIndex index = next_index_++;
    // The > 0 guard covers catch-up after a crash: pre-crash broadcasts were
    // wiped from the counter by crash_reset but still TO-deliver here.
    if (id.sender == self_ && own_inflight_ > 0) --own_inflight_;
    ++stats_.to_delivered;
    stats_.opt_to_gap_total_ns += sim_.now() - st->opt_time;
    drain_scratch_.emplace_back(id, index);
  }
  dispatch_to_deliver(callbacks_, drain_scratch_);
  if (!decided_queue_.empty()) {
    // The definitive order references messages whose bodies never reached us
    // (we were down when they were multicast, or they are still in flight).
    // Fetch them from a peer so TO-delivery can proceed (Local Order
    // preserved: fetched bodies are Opt-delivered first).
    request_missing_bodies();
  }
}

// ---------------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------------

namespace {

enum class RecoveryKind : std::uint8_t {
  catch_up_request,
  catch_up_response,
  body_request,
  body_response,
};

struct RecoveryPayload final : Payload {
  RecoveryKind kind = RecoveryKind::catch_up_request;
  std::uint64_t from_stage = 0;
  std::vector<std::pair<std::uint64_t, std::vector<MsgId>>> decisions;
  std::vector<MsgId> subjects;                         // body_request
  std::vector<std::pair<MsgId, PayloadPtr>> bodies;    // body_response
};

/// How many missing bodies one request fetches.
constexpr std::size_t kBodyBatch = 64;

}  // namespace

void OptAbcast::crash_reset() {
  pending_.clear();
  decided_queue_.clear();
  msgs_.clear();  // after the queues: they hold pointers into it
  decided_buffer_.clear();
  my_proposals_.clear();
  next_apply_ = 0;
  next_propose_ = 0;
  next_index_ = 1;
  own_inflight_ = 0;
  stage_timer_armed_ = false;  // any armed timer re-checks state when it fires
  decision_log_.clear();
  if (body_request_outstanding_) wheel_.cancel(body_retry_timer_);
  body_request_outstanding_ = false;
  body_request_attempts_ = 0;
  recovering_ = false;
  durable_floor_ = 0;
  consensus_.crash_reset();
}

void OptAbcast::begin_recovery(TOIndex durable_floor) {
  recovering_ = true;
  durable_floor_ = durable_floor;
  send_catch_up_request();
}

void OptAbcast::send_catch_up_request() {
  if (!recovering_) return;
  ++catch_up_round_;
  auto request = std::make_shared<RecoveryPayload>();
  request->kind = RecoveryKind::catch_up_request;
  request->from_stage = next_apply_;
  net_.multicast(self_, kChannelRecovery, std::move(request));
  // Retry until caught up: responses are idempotent, and load may be idle.
  sim_.schedule_after(100 * kMillisecond, [this] { send_catch_up_request(); });
}

void OptAbcast::request_missing_bodies() {
  if (body_request_outstanding_ || net_.site_count() < 2) return;
  body_request_outstanding_ = true;
  auto request = std::make_shared<RecoveryPayload>();
  request->kind = RecoveryKind::body_request;
  for (const auto& [id, st] : decided_queue_) {
    if (request->subjects.size() >= kBodyBatch) break;
    if (!st->arrived) request->subjects.push_back(id);
  }
  OTPDB_DEBUG("optabcast") << "site " << self_ << " requests " << request->subjects.size()
                           << " missing bodies";
  // Ask one peer (rotating across retries); a single responder keeps the
  // shared segment free of duplicate replies.
  const auto n = static_cast<SiteId>(net_.site_count());
  const SiteId peer = (self_ + 1 + body_request_attempts_ % (n - 1)) % n;
  net_.unicast(self_, peer, kChannelRecovery, std::move(request));
  // Retry against the next peer if this one does not answer (crashed, or the
  // reply was lost); a received response cancels the timer.
  body_retry_timer_ = wheel_.schedule_after(50 * kMillisecond, [this] {
    body_request_outstanding_ = false;
    ++body_request_attempts_;
    drain_decided();
  });
}

void OptAbcast::deliver_fetched_body(const MsgId& id, PayloadPtr payload) {
  MsgState& st = msgs_[id];
  if (st.arrived) return;
  st.arrived = true;
  st.body = payload;
  st.opt_time = sim_.now();
  ++stats_.opt_delivered;
  ++stats_.recovery_bodies_fetched;
  if (callbacks_.opt_deliver) {
    callbacks_.opt_deliver(Message{id, id.sender, kChannelData, std::move(payload)});
  }
}

void OptAbcast::on_recovery_message(const Message& msg) {
  const auto* p = payload_cast<RecoveryPayload>(msg);
  OTPDB_CHECK(p != nullptr);
  switch (p->kind) {
    case RecoveryKind::catch_up_request: {
      if (msg.from == self_) return;
      // Respond even with an empty log: an empty response tells the
      // requester it is already caught up.
      auto response = std::make_shared<RecoveryPayload>();
      response->kind = RecoveryKind::catch_up_response;
      for (auto it = decision_log_.lower_bound(p->from_stage); it != decision_log_.end();
           ++it) {
        response->decisions.emplace_back(it->first, it->second);
      }
      net_.unicast(self_, msg.from, kChannelRecovery, std::move(response));
      break;
    }
    case RecoveryKind::catch_up_response: {
      bool progressed = false;
      for (const auto& [stage, sequence] : p->decisions) {
        if (stage < next_apply_ || decided_buffer_.contains(stage)) continue;
        decided_buffer_.emplace(stage, sequence);
        progressed = true;
      }
      while (true) {
        auto it = decided_buffer_.find(next_apply_);
        if (it == decided_buffer_.end()) break;
        apply_decision(next_apply_, it->second);
        decided_buffer_.erase(it);
        ++next_apply_;
      }
      drain_decided();
      consider_stage();
      // Caught up once a response brings nothing new and no delivery blocks.
      if (recovering_ && !progressed && decided_queue_.empty()) recovering_ = false;
      break;
    }
    case RecoveryKind::body_request: {
      if (msg.from == self_) return;
      auto response = std::make_shared<RecoveryPayload>();
      response->kind = RecoveryKind::body_response;
      for (const MsgId& id : p->subjects) {
        auto it = msgs_.find(id);
        if (it != msgs_.end() && it->second.body) {
          response->bodies.emplace_back(id, it->second.body);
        }
      }
      OTPDB_DEBUG("optabcast") << "site " << self_ << " serves " << response->bodies.size()
                               << "/" << p->subjects.size() << " bodies to " << msg.from;
      if (!response->bodies.empty()) {
        net_.unicast(self_, msg.from, kChannelRecovery, std::move(response));
      }
      break;
    }
    case RecoveryKind::body_response: {
      if (body_request_outstanding_) {
        wheel_.cancel(body_retry_timer_);
        body_request_outstanding_ = false;
        body_request_attempts_ = 0;
      }
      for (const auto& [id, body] : p->bodies) deliver_fetched_body(id, body);
      drain_decided();
      break;
    }
  }
}

}  // namespace otpdb
