// Atomic Broadcast with Optimistic Delivery - the interface of paper Section 2.1.
//
// Three primitives:
//   TO-broadcast(m): broadcast(payload) below.
//   Opt-deliver(m):  callbacks.opt_deliver - fired as soon as the message
//                    arrives from the network; the sequence of these calls is
//                    the site's *tentative* order (no agreement yet).
//   TO-deliver(m):   callbacks.to_deliver - fired when the definitive total
//                    order of m is established; carries only the message id
//                    plus the definitive index (the body was already handed
//                    over by Opt-deliver), exactly as the paper prescribes.
//
// Implementations must satisfy the paper's five properties: Termination,
// Global Agreement, Local Agreement, Global Order, and Local Order (a site
// Opt-delivers m before it TO-delivers m). tests/abcast_properties_test.cc
// checks all five over randomized runs.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <utility>

#include "net/message.h"
#include "util/types.h"

namespace otpdb {

/// One definitive delivery: message id + its definitive index.
using ToDelivery = std::pair<MsgId, TOIndex>;

/// Delivery callbacks registered by the application (the transaction manager).
struct AbcastCallbacks {
  /// Tentative delivery, in network-arrival order. Carries the full message.
  std::function<void(const Message&)> opt_deliver;
  /// Definitive delivery confirmation: message id + its definitive index.
  /// Indices are contiguous from 1 and identical at all sites.
  std::function<void(const MsgId&, TOIndex)> to_deliver;
  /// Optional batched variant: when set, a burst of definitive deliveries
  /// (e.g. one decided consensus stage draining at once) arrives as a single
  /// call carrying the deliveries in definitive order, and `to_deliver` is
  /// not invoked for them. Entries are exactly what per-message delivery
  /// would have produced; receivers must process them in order.
  std::function<void(std::span<const ToDelivery>)> to_deliver_batch;
};

/// Dispatches a drained burst through the batched callback when the receiver
/// registered one, else per message. Shared by all broadcast implementations
/// so the delivery contract lives in one place.
inline void dispatch_to_deliver(const AbcastCallbacks& callbacks,
                                std::span<const ToDelivery> burst) {
  if (burst.empty()) return;
  if (callbacks.to_deliver_batch) {
    callbacks.to_deliver_batch(burst);
  } else if (callbacks.to_deliver) {
    for (const auto& [id, index] : burst) callbacks.to_deliver(id, index);
  }
}

/// Counters exposed by broadcast implementations (for benches and tests).
struct AbcastStats {
  std::uint64_t broadcasts = 0;
  std::uint64_t opt_delivered = 0;
  std::uint64_t to_delivered = 0;
  /// Batches definitively ordered via the optimistic fast path (identical
  /// proposals at all sites - no extra coordination rounds).
  std::uint64_t fast_batches = 0;
  /// Batches that needed coordinator-driven consensus rounds.
  std::uint64_t slow_batches = 0;
  /// Sum over messages of (TO-deliver time - Opt-deliver time), nanoseconds;
  /// divide by to_delivered for the mean optimistic window.
  std::int64_t opt_to_gap_total_ns = 0;
  /// Catch-up TO-deliveries at or below the durable floor: the decision is
  /// replayed for ordering but the body is never fetched (the replica already
  /// holds the committed state on disk).
  std::uint64_t recovery_tombstones = 0;
  /// Message bodies fetched from peers during catch-up (the durable tail).
  std::uint64_t recovery_bodies_fetched = 0;
};

/// Per-site handle of an atomic broadcast protocol instance.
class AtomicBroadcast {
 public:
  virtual ~AtomicBroadcast() = default;

  /// TO-broadcast: injects a message destined to all sites (self included).
  /// Returns the message id by which deliveries will refer to it.
  virtual MsgId broadcast(PayloadPtr payload) = 0;

  /// Registers delivery callbacks. Must be called before any broadcast.
  virtual void set_callbacks(AbcastCallbacks callbacks) = 0;

  /// The site this instance runs on.
  virtual SiteId site() const = 0;

  virtual const AbcastStats& stats() const = 0;

  /// Sender-side backpressure: true while this site's in-flight undelivered
  /// broadcasts are at their configured cap and new submissions should be
  /// refused upstream (the ingress gate) instead of growing protocol state
  /// unboundedly. Default: never (protocols without a cap).
  virtual bool backpressured() const { return false; }
};

}  // namespace otpdb
