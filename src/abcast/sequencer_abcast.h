// Fixed-sequencer atomic broadcast with optimistic delivery.
//
// The classic total-order construction (Isis/Amoeba style): data messages are
// multicast to all sites; one distinguished site (the sequencer) assigns
// consecutive definitive indices in its arrival order and multicasts ORDER
// confirmations. Every site Opt-delivers data on arrival (tentative order) and
// TO-delivers in index order once both the ORDER confirmation and the data
// message itself have arrived (Local Order property).
//
// Serves two roles in this repository:
//  * baseline ordering protocol for the benches (its TO latency is one
//    network hop behind OptAbcast's fast path but it is mismatch-immune at
//    the sequencer site), and
//  * a second, structurally different implementation of the AtomicBroadcast
//    interface exercising the same property test suite.
//
// Fault model: tolerates crash of non-sequencer sites only; OptAbcast is the
// crash-tolerant protocol (f < n/2).
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "abcast/abcast.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace otpdb {

struct SequencerAbcastConfig {
  SiteId sequencer = 0;
};

class SequencerAbcast final : public AtomicBroadcast {
 public:
  SequencerAbcast(Simulator& sim, Network& net, SiteId self, SequencerAbcastConfig config);

  MsgId broadcast(PayloadPtr payload) override;
  void set_callbacks(AbcastCallbacks callbacks) override;
  SiteId site() const override { return self_; }
  const AbcastStats& stats() const override { return stats_; }

  TOIndex next_index() const { return next_expected_; }

 private:
  void on_data(const Message& msg);
  void on_order(const Message& msg);
  void drain();

  Simulator& sim_;
  Network& net_;
  SiteId self_;
  SequencerAbcastConfig config_;
  AbcastCallbacks callbacks_;

  std::unordered_set<MsgId> arrived_;
  std::unordered_map<MsgId, SimTime> opt_time_;
  std::map<TOIndex, MsgId> order_book_;  // confirmations not yet TO-delivered
  TOIndex next_assign_ = 1;              // sequencer role: next index to hand out
  TOIndex next_expected_ = 1;            // delivery role: next index to TO-deliver
  AbcastStats stats_;
  std::vector<ToDelivery> drain_scratch_;  // reused burst buffer (drain)
};

}  // namespace otpdb
