// Channel allocation for the protocols in this repository.
#pragma once

#include "net/message.h"

namespace otpdb {

constexpr Channel kChannelData = 0;       ///< TO-broadcast application messages
constexpr Channel kChannelSequencer = 1;  ///< sequencer ORDER confirmations
constexpr Channel kChannelConsensus = 2;  ///< consensus protocol traffic
constexpr Channel kChannelHeartbeat = 3;  ///< failure detector heartbeats
constexpr Channel kChannelLazy = 10;      ///< lazy-replication write-set propagation
constexpr Channel kChannelRecovery = 11;  ///< state-transfer for rejoining replicas

}  // namespace otpdb
