// Crash-tolerant consensus on message sequences, with a spontaneous-order
// fast path.
//
// One ConsensusHost per site multiplexes any number of numbered instances
// (OptAbcast runs one instance per ordering stage). The value domain is a
// sequence of MsgIds (a proposed delivery order).
//
// Protocol (rotating coordinator, Chandra-Toueg style, majority quorums,
// f < n/2 crash faults, eventually-accurate failure detector for liveness):
//
//   Fast path.  Every participant multicasts Propose(inst, seq). A site that
//   has received ALL n proposals and finds them identical decides immediately,
//   with no further communication. This is the Pedone-Schiper optimistic case:
//   when spontaneous total order holds, every site proposes the same sequence
//   and agreement costs a single message exchange. Safety is unconditional:
//   if all n initial proposals equal v, every estimate in the system is v, so
//   no round can decide anything else.
//
//   Rounds.  Round k's coordinator is site (inst + k) mod n. The coordinator
//   gathers a majority of estimates (round 0 uses the Propose messages),
//   adopts the estimate with the highest adoption timestamp, and multicasts
//   CoordProp(inst, k, v). Participants adopt v (timestamp k+1) and ack; on a
//   majority of acks the coordinator decides and multicasts Decision(inst, v).
//   Participants advance rounds on a backoff timer or when the failure
//   detector suspects the coordinator. Quorum intersection plus the max-
//   timestamp rule gives the usual locking argument: once any round gathers a
//   majority of acks for v, every later coordinator adopts v.
//
// Late joiners: a site receiving traffic for an instance it already decided
// replies with the Decision, so laggards catch up.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "abcast/failure_detector.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "sim/timer_wheel.h"
#include "util/types.h"

namespace otpdb {

struct ConsensusConfig {
  /// How long a round-0 coordinator waits for the fast path to win before
  /// driving a coordinated round.
  SimTime fast_wait = 2 * kMillisecond;
  /// Base round-advance timeout; grows by `backoff` per round.
  SimTime round_timeout = 30 * kMillisecond;
  double backoff = 2.0;
  SimTime max_round_timeout = 2 * kSecond;
};

struct ConsensusStats {
  std::uint64_t instances_decided = 0;
  std::uint64_t fast_decides = 0;   ///< decided via identical-proposal fast path
  std::uint64_t round_decides = 0;  ///< decided via coordinator round
  std::uint64_t rounds_started = 0;
};

/// Per-site consensus participant multiplexing numbered instances.
class ConsensusHost {
 public:
  using Value = std::vector<MsgId>;
  using DecideFn = std::function<void(std::uint64_t inst, const Value& value)>;

  ConsensusHost(Simulator& sim, Network& net, FailureDetector& fd, SiteId self,
                ConsensusConfig config);

  /// Joins instance `inst` with the given initial proposal. Each site proposes
  /// at most once per instance.
  void propose(std::uint64_t inst, Value value);

  /// Registers the decision callback (invoked exactly once per instance).
  void set_on_decide(DecideFn fn) { on_decide_ = std::move(fn); }

  bool decided(std::uint64_t inst) const;
  const ConsensusStats& stats() const { return stats_; }

  /// Drops all per-instance state (crash recovery: consensus participation is
  /// volatile; decided outcomes are re-learned from peers' decision logs).
  void crash_reset();

 private:
  struct Instance {
    bool proposed = false;
    bool decided = false;
    Value est;
    std::uint64_t ts = 0;  // round in which est was adopted (+1); 0 = initial
    std::uint64_t round = 0;
    /// Round-0 estimates: the received Propose payloads, by sender. Kept as
    /// payload pointers (no Value copy) - the fast path only compares them.
    std::vector<std::pair<SiteId, PayloadPtr>> proposals;
    std::map<std::uint64_t, std::map<SiteId, std::pair<std::uint64_t, Value>>> estimates;
    std::map<std::uint64_t, std::set<SiteId>> acks;
    std::map<std::uint64_t, Value> coord_value;  // what this site proposed as coordinator
    bool coord_proposed_round0 = false;
    TimerWheel::TimerId round_timer{};
    bool timer_armed = false;
    Value decision;
  };

  SiteId coordinator(std::uint64_t inst, std::uint64_t round) const {
    return static_cast<SiteId>((inst + round) % net_.site_count());
  }
  std::size_t majority() const { return net_.site_count() / 2 + 1; }

  Instance& instance(std::uint64_t inst);
  void on_message(const Message& msg);
  void maybe_fast_decide(std::uint64_t inst);
  void maybe_coord_round0(std::uint64_t inst);
  void coord_propose(std::uint64_t inst, std::uint64_t round, Value value);
  void handle_estimate(std::uint64_t inst, std::uint64_t round, SiteId from, std::uint64_t ts,
                       const Value& value);
  void handle_coord_prop(std::uint64_t inst, std::uint64_t round, SiteId from, const Value& value);
  void handle_ack(std::uint64_t inst, std::uint64_t round, SiteId from);
  void decide(std::uint64_t inst, const Value& value, bool fast, bool announce);
  void arm_round_timer(std::uint64_t inst);
  void advance_round(std::uint64_t inst);

  Simulator& sim_;
  Network& net_;
  FailureDetector& fd_;
  SiteId self_;
  ConsensusConfig config_;
  /// Round timers are the canonical cancel-heavy timer population (armed per
  /// undecided instance, cancelled on decide), so they live on a wheel: O(1)
  /// arm/cancel and a single pending simulator event however many instances
  /// are in flight.
  TimerWheel wheel_{sim_};
  std::unordered_map<std::uint64_t, Instance> instances_;  // node-based: refs stable
  DecideFn on_decide_;
  ConsensusStats stats_;
};

}  // namespace otpdb
