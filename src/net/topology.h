// Topology profiles: per-site-pair delay matrices for the simulated network.
//
// The paper's testbed is a single shared-Ethernet segment (NetConfig's flat
// parameters), but the optimistic-delivery bet - spontaneous total order is
// usually right - depends entirely on the *structure* of message latency, so
// geo-replication experiments (ROADMAP direction 3) need a medium where every
// site pair has its own delay floor and jitter distribution. A TopologyMatrix
// holds exactly that: EdgeParams per (from, to) pair plus a `switched` flag
// selecting the medium model.
//
//  * switched == false: one shared bus. All frames serialize on a single
//    medium (Network::bus_free_at_) and a single rng stream samples receiver
//    jitter in canonical order. The `lan` profile is this with an explicit
//    uniform matrix equal to the flat defaults - bit-for-bit identical to
//    profile `flat`.
//  * switched == true: per-sender links. Each sender serializes frames on its
//    own NIC and every (from, to) edge owns an independent rng stream, so
//    send processing depends only on sender-local state. That is what lets
//    the sharded engine process sends inline on the sending shard and run
//    per-edge channel clocks (sim/sharded_engine.h).
//
// Every built-in profile declares a symmetric matrix (edge(r,s) == edge(s,r));
// tests/net_test.cc asserts it. Lookahead contract: the conservative per-edge
// lookahead is serialization_time + edge(from,to).base_delay, a lower bound on
// (delivery - send) because waiting for the link, uniform noise and hiccup
// delays are all non-negative.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/simulator.h"

namespace otpdb {

/// Named latency structures selectable from NetConfig / the CLI.
enum class TopologyProfile {
  flat,     ///< legacy shared segment, global NetConfig parameters (default)
  lan,      ///< shared bus with an explicit uniform matrix == flat timing
  metro,    ///< 3 buildings on a metro ring, switched, sub-millisecond edges
  wan,      ///< 2 regions, switched: ~0.5ms intra-region, ~40ms cross-region
  geo_3dc,  ///< 3 datacenters, switched: ~50us intra-DC, 10-35ms inter-DC
};

/// Per-(from, to) delivery parameters; mirrors the flat NetConfig fields.
struct EdgeParams {
  SimTime base_delay = 0;   ///< propagation + stack floor for this edge
  SimTime noise_max = 0;    ///< uniform receive-side noise in [0, noise_max)
  double hiccup_prob = 0.0; ///< probability of a scheduling hiccup...
  SimTime hiccup_mean = 0;  ///< ...with an extra exponential delay of this mean

  bool operator==(const EdgeParams&) const = default;
};

/// Materialized per-site-pair delay matrix for one cluster size.
struct TopologyMatrix {
  TopologyProfile profile = TopologyProfile::flat;
  std::size_t n_sites = 0;
  bool switched = false;   ///< per-sender links (vs one shared bus)
  bool symmetric = false;  ///< declared symmetric; asserted by net_test
  std::vector<EdgeParams> edges;  ///< [from * n_sites + to]; empty for flat

  bool flat() const { return edges.empty(); }
  const EdgeParams& edge(std::size_t from, std::size_t to) const {
    return edges[from * n_sites + to];
  }
  EdgeParams& edge(std::size_t from, std::size_t to) { return edges[from * n_sites + to]; }
};

/// Builds the matrix for `profile` over `n_sites` sites. `lan_edge` carries
/// the flat NetConfig parameters; `flat` returns an empty matrix (the shared
/// segment keeps using the global fields), `lan` replicates `lan_edge` on
/// every pair of the shared bus, and the switched profiles use their own
/// calibrated parameters.
TopologyMatrix build_topology(TopologyProfile profile, std::size_t n_sites,
                              const EdgeParams& lan_edge);

/// Canonical profile name ("flat", "lan", "metro", "wan", "geo-3dc").
const char* topology_profile_name(TopologyProfile profile);

/// Parses a profile name (accepts "geo-3dc" and "geo_3dc").
std::optional<TopologyProfile> parse_topology_profile(std::string_view name);

/// Comma-separated list of all profile names, for --help text.
const char* topology_profile_list();

}  // namespace otpdb
