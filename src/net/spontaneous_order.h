// Spontaneous-total-order metrics over per-site arrival logs (Figure 1).
//
// The paper measures "the percentage of spontaneously ordered messages": the
// fraction of messages that arrive at all sites in the same order. We compute
// it as the fraction of messages whose arrival position (rank) is identical in
// every site's arrival sequence, restricted to messages every site received.
// A companion pairwise metric (fraction of message pairs on which all sites
// agree) is also provided; it is the quantity that drives the OPT-ABcast
// fast-path probability.
#pragma once

#include <cstdint>
#include <vector>

#include "net/message.h"

namespace otpdb {

struct SpontaneousOrderStats {
  std::uint64_t messages = 0;        ///< messages received by all sites
  std::uint64_t same_position = 0;   ///< ... with identical rank everywhere
  std::uint64_t pairs_checked = 0;   ///< sampled adjacent pairs
  std::uint64_t pairs_agreed = 0;    ///< ... ordered identically at all sites

  double position_agreement() const {
    return messages ? static_cast<double>(same_position) / static_cast<double>(messages) : 1.0;
  }
  double pair_agreement() const {
    return pairs_checked ? static_cast<double>(pairs_agreed) / static_cast<double>(pairs_checked)
                         : 1.0;
  }
};

/// Computes ordering agreement across the given arrival logs (one per site).
/// Messages missing from any site's log are excluded. Pair agreement is
/// evaluated over pairs adjacent in site 0's log (the pairs at risk).
SpontaneousOrderStats analyze_spontaneous_order(const std::vector<std::vector<MsgId>>& logs);

}  // namespace otpdb
