// Declarative chaos plane: timed, seeded fault schedules over the simulated
// network, beyond the base model's loss/hiccup/crash/symmetric-partition
// repertoire. A FaultPlan is a list of clauses, each active over a half-open
// [start, end) window of simulated time and scoped to a set of directed
// (from, to) edges:
//
//  * duplicate        - a second copy of the frame is delivered with an extra
//                       delay drawn from [delay_min, delay_max); exercises
//                       transport/abcast dedup (reliable != exactly-once).
//  * reorder          - an extra delay in [delay_min, delay_max) is added with
//                       probability p, pushing the message past later sends -
//                       bounded reordering beyond the jitter model.
//  * one_way_partition- messages from -> to are parked while the clause is
//                       active (the reverse direction flows); asymmetric
//                       links, the classic "A hears B but not vice versa".
//  * flap             - a one-way partition that toggles with period `period`
//                       and down fraction `duty_down`: down for
//                       period*duty_down, up for the rest, repeating.
//  * gray_link        - slow-but-alive: every message on the edge is delayed
//                       by a draw from [delay_min, delay_max); long enough
//                       draws provoke false failure suspicions.
//
// Determinism: per-message clauses (duplicate/reorder/gray) draw from a
// dedicated chaos rng at send-processing time - on the hub for the shared-bus
// path, on the sending shard with a per-edge chaos stream for the switched
// path - in fixed clause order, so histories are bit-for-bit identical across
// sharded thread counts. Blocking clauses (one-way/flap) mutate a blocked
// matrix only from hub control events, window-quantized exactly like
// crash/partition state (see the fault-model note in net/network.h); parked
// messages replay on release, so channels stay reliable - chaos reorders,
// duplicates, and delays, but never loses.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "net/message.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace otpdb {

enum class FaultKind : std::uint8_t {
  duplicate,
  reorder,
  one_way_partition,
  flap,
  gray_link,
};

/// One scheduled fault. Empty `from`/`to` means "all sites"; self-edges are
/// never faulted. Active over [start, end).
struct FaultClause {
  FaultKind kind = FaultKind::duplicate;
  SimTime start = 0;
  SimTime end = kSimTimeMax;
  std::vector<SiteId> from;  // empty = every sender
  std::vector<SiteId> to;    // empty = every receiver
  /// Per-message trigger probability (duplicate/reorder). Gray links apply to
  /// every message; blocking clauses ignore it.
  double probability = 1.0;
  /// Extra-delay range for duplicate (the copy), reorder, and gray_link.
  SimTime delay_min = 0;
  SimTime delay_max = 0;
  /// Flap cycle: down for period*duty_down, then up, repeating from `start`.
  SimTime period = 100 * kMillisecond;
  double duty_down = 0.5;
};

/// A seeded, declarative schedule of fault clauses.
struct FaultPlan {
  std::vector<FaultClause> clauses;

  bool empty() const { return clauses.empty(); }
  bool has(FaultKind kind) const;
  FaultPlan& add(FaultClause clause) {
    clauses.push_back(std::move(clause));
    return *this;
  }

  // Clause builders (scoped variants take explicit edge sets).
  static FaultClause duplicate(double p, SimTime extra_min, SimTime extra_max,
                               SimTime start = 0, SimTime end = kSimTimeMax);
  static FaultClause reorder(double p, SimTime delay_min, SimTime delay_max,
                             SimTime start = 0, SimTime end = kSimTimeMax);
  static FaultClause one_way(std::vector<SiteId> from, std::vector<SiteId> to,
                            SimTime start, SimTime end);
  static FaultClause flap(std::vector<SiteId> from, std::vector<SiteId> to, SimTime period,
                          double duty_down, SimTime start = 0, SimTime end = kSimTimeMax);
  static FaultClause gray(std::vector<SiteId> from, std::vector<SiteId> to, SimTime delay_min,
                          SimTime delay_max, SimTime start = 0, SimTime end = kSimTimeMax);
};

/// Network-chaos configuration carried on ClusterConfig. `transport_dedup`
/// is forced on whenever the plan can duplicate (the abcast layer asserts
/// at-most-once per MsgId); set it explicitly to harden against duplication
/// from other sources.
struct ChaosConfig {
  FaultPlan plan;
  bool transport_dedup = false;

  bool enabled() const { return !plan.empty() || transport_dedup; }
};

/// Injection/suppression counters. Sharded mode keeps one row per shard
/// (sender rows for send-time draws, receiver rows for delivery-time checks,
/// a hub row for control events) and aggregates on read - no cross-thread
/// writes.
struct ChaosStats {
  std::uint64_t duplicates_injected = 0;
  std::uint64_t duplicates_suppressed = 0;
  std::uint64_t reorders_injected = 0;
  std::uint64_t gray_delays = 0;
  std::uint64_t deliveries_parked = 0;   // parked by a chaos block (not partition)
  std::uint64_t parked_released = 0;     // replayed after a block lifted
  std::uint64_t flap_transitions = 0;

  void merge(const ChaosStats& other) {
    duplicates_injected += other.duplicates_injected;
    duplicates_suppressed += other.duplicates_suppressed;
    reorders_injected += other.reorders_injected;
    gray_delays += other.gray_delays;
    deliveries_parked += other.deliveries_parked;
    parked_released += other.parked_released;
    flap_transitions += other.flap_transitions;
  }
};

/// Executes a FaultPlan against a cluster of n sites: evaluates per-message
/// clauses at send time and maintains the blocked-edge matrix via hub control
/// events. Owned by the Network; see Network::arm_chaos.
class ChaosRuntime {
 public:
  ChaosRuntime(FaultPlan plan, std::size_t n_sites);

  /// The per-message perturbation for one (from, to) send processed at `at`.
  /// Draws from `rng` in fixed clause order (active, in-scope clauses only),
  /// so the stream stays aligned across engine modes and thread counts.
  struct Perturbation {
    SimTime extra = 0;           // added to the original delivery's delay
    bool duplicate = false;      // schedule a second copy
    SimTime duplicate_extra = 0; // the copy's delay beyond the original's
  };
  Perturbation perturb(SiteId from, SiteId to, SimTime at, Rng& rng, ChaosStats& stats) const;

  /// True while any active blocking clause covers the directed edge.
  bool blocked(SiteId from, SiteId to) const {
    return has_blocking_ && blocked_[from * n_ + to] != 0;
  }
  bool has_blocking_clauses() const { return has_blocking_; }

  /// Schedules every blocking-clause transition (starts, ends, flap toggles)
  /// as control events on `hub`. Each transition recomputes the blocked
  /// matrix and then runs `on_transition` (the Network releases parked
  /// messages there). `stats` must outlive the runtime (the hub stats row).
  void arm(Simulator& hub, std::function<void()> on_transition, ChaosStats& stats);

 private:
  bool in_scope(std::size_t clause, SiteId from, SiteId to) const {
    return from_scope_[clause * n_ + from] && to_scope_[clause * n_ + to];
  }
  /// Whether blocking clause `c` holds the edge down at time `now`.
  static bool clause_down(const FaultClause& c, SimTime now);
  void recompute(SimTime now);
  void schedule_flap_toggle(Simulator& hub, std::size_t clause, SimTime at);

  FaultPlan plan_;
  std::size_t n_;
  bool has_blocking_ = false;
  std::vector<std::uint8_t> from_scope_;  // [clause * n + site]
  std::vector<std::uint8_t> to_scope_;
  std::vector<std::uint8_t> blocked_;     // [from * n + to]
  std::function<void()> on_transition_;
  ChaosStats* hub_stats_ = nullptr;
};

/// Named chaos profiles for the CLI and benches. `n_sites`/`duration` scale
/// the clause schedule to the run. `flaky_disk` asks the caller to also arm
/// the storage fault injector (db layer - see StorageFaults); the network
/// plan may be empty in that case.
struct ChaosProfile {
  ChaosConfig net;
  bool flaky_disk = false;
};
bool parse_chaos_profile(std::string_view name, std::size_t n_sites, SimTime duration,
                         ChaosProfile& out);
const char* chaos_profile_list();

}  // namespace otpdb
