#include "net/spontaneous_order.h"

#include <unordered_map>

#include "util/assert.h"

namespace otpdb {

SpontaneousOrderStats analyze_spontaneous_order(const std::vector<std::vector<MsgId>>& logs) {
  SpontaneousOrderStats stats;
  if (logs.empty()) return stats;
  const std::size_t n_sites = logs.size();

  // Count how many sites logged each message; only messages seen exactly once
  // per site ("common") participate in the metric.
  std::unordered_map<MsgId, std::size_t> seen_count;
  for (const auto& log : logs)
    for (const MsgId& id : log) ++seen_count[id];

  auto is_common = [&](const MsgId& id) { return seen_count.at(id) == n_sites; };

  // Rank of each common message at each site, computed over the common subset
  // so that ranks are comparable across sites.
  std::unordered_map<MsgId, std::vector<std::size_t>> ranks;
  ranks.reserve(seen_count.size());
  for (std::size_t site = 0; site < n_sites; ++site) {
    std::size_t rank = 0;
    for (const MsgId& id : logs[site]) {
      if (!is_common(id)) continue;
      auto& r = ranks[id];
      OTPDB_CHECK_MSG(r.size() == site, "message logged twice at one site");
      r.push_back(rank++);
    }
  }

  for (const auto& [id, r] : ranks) {
    ++stats.messages;
    bool same = true;
    for (std::size_t site = 1; site < n_sites; ++site) same &= r[site] == r[0];
    if (same) ++stats.same_position;
  }

  // Pairwise agreement over pairs adjacent at site 0.
  std::vector<MsgId> ref;
  for (const MsgId& id : logs[0])
    if (is_common(id)) ref.push_back(id);
  for (std::size_t i = 0; i + 1 < ref.size(); ++i) {
    const auto& r_a = ranks.at(ref[i]);
    const auto& r_b = ranks.at(ref[i + 1]);
    ++stats.pairs_checked;
    bool agreed = true;
    for (std::size_t site = 1; site < n_sites; ++site) {
      if (r_a[site] > r_b[site]) {
        agreed = false;
        break;
      }
    }
    if (agreed) ++stats.pairs_agreed;
  }
  return stats;
}

}  // namespace otpdb
