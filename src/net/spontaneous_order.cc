#include "net/spontaneous_order.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "util/assert.h"

namespace otpdb {

SpontaneousOrderStats analyze_spontaneous_order(const std::vector<std::vector<MsgId>>& logs) {
  SpontaneousOrderStats stats;
  if (logs.empty()) return stats;
  const std::size_t n_sites = logs.size();

  // Count how many *distinct* sites logged each message; only messages seen
  // at every site ("common") participate in the metric. Retransmissions under
  // chaos can log a message several times at one site - counting occurrences
  // would let a message duplicated at site A and missing from site B pass as
  // common. Sites are processed in order, so per-site dedup only needs the
  // last site that counted each message.
  struct SiteCount {
    std::size_t sites = 0;           ///< distinct sites that logged the message
    std::size_t last_site = SIZE_MAX;  ///< last site counted (dedup within a site)
  };
  std::unordered_map<MsgId, SiteCount> seen;
  for (std::size_t site = 0; site < n_sites; ++site) {
    for (const MsgId& id : logs[site]) {
      SiteCount& c = seen[id];
      if (c.last_site != site) {
        c.last_site = site;
        ++c.sites;
      }
    }
  }

  auto is_common = [&](const MsgId& id) { return seen.at(id).sites == n_sites; };

  // Rank of each common message at each site, computed over the common subset
  // so that ranks are comparable across sites. Only a message's first
  // occurrence at a site defines its rank; duplicates are skipped.
  std::unordered_map<MsgId, std::vector<std::size_t>> ranks;
  ranks.reserve(seen.size());
  for (std::size_t site = 0; site < n_sites; ++site) {
    std::size_t rank = 0;
    for (const MsgId& id : logs[site]) {
      if (!is_common(id)) continue;
      auto& r = ranks[id];
      if (r.size() != site) continue;  // duplicate occurrence at this site
      r.push_back(rank++);
    }
  }

  // DETLINT(order-insensitive): commutative counters (messages/same_position)
  // over the common-message set; every visitation order yields the same stats.
  for (const auto& [id, r] : ranks) {
    ++stats.messages;
    bool same = true;
    for (std::size_t site = 1; site < n_sites; ++site) same &= r[site] == r[0];
    if (same) ++stats.same_position;
  }

  // Pairwise agreement over pairs adjacent at site 0 (first occurrences only).
  std::vector<MsgId> ref;
  std::unordered_set<MsgId> in_ref;
  for (const MsgId& id : logs[0]) {
    if (is_common(id) && in_ref.insert(id).second) ref.push_back(id);
  }
  for (std::size_t i = 0; i + 1 < ref.size(); ++i) {
    const auto& r_a = ranks.at(ref[i]);
    const auto& r_b = ranks.at(ref[i + 1]);
    ++stats.pairs_checked;
    bool agreed = true;
    for (std::size_t site = 1; site < n_sites; ++site) {
      if (r_a[site] > r_b[site]) {
        agreed = false;
        break;
      }
    }
    if (agreed) ++stats.pairs_agreed;
  }
  return stats;
}

}  // namespace otpdb
