// Message and addressing types shared by the network model and all protocols.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace otpdb {

/// Site (replica/process) identifier: 0 .. n_sites-1.
using SiteId = std::uint32_t;

/// Logical channel (like a port) multiplexed over the network. Each protocol
/// subscribes to its own channel(s).
using Channel = std::uint32_t;

/// Globally unique message identity: sender plus per-sender sequence number.
/// Atomic broadcast orders application messages by MsgId.
struct MsgId {
  SiteId sender = 0;
  std::uint64_t seq = 0;

  bool operator==(const MsgId&) const = default;
  auto operator<=>(const MsgId&) const = default;
};

/// Base class for message payloads. Protocols define payload structs deriving
/// from Payload; messages carry shared_ptr<const Payload> so a multicast shares
/// one immutable body across all receivers (value-semantics at the protocol
/// level, zero copies in the simulator).
struct Payload {
  virtual ~Payload() = default;
};

using PayloadPtr = std::shared_ptr<const Payload>;

/// A network message as seen by a receiver.
struct Message {
  MsgId id;
  SiteId from = 0;
  Channel channel = 0;
  PayloadPtr payload;
};

/// Convenience downcast for protocol handlers. Returns nullptr on mismatch.
template <typename T>
const T* payload_cast(const Message& m) {
  return dynamic_cast<const T*>(m.payload.get());
}

/// Unchecked downcast for single-payload-type channels. Each protocol
/// subscribes to its own channel and is the only sender on it, so the payload
/// type is known statically; debug builds still verify via RTTI.
template <typename T>
const T* payload_cast_fast(const Message& m) {
#ifndef NDEBUG
  return dynamic_cast<const T*>(m.payload.get());
#else
  return static_cast<const T*>(m.payload.get());
#endif
}

}  // namespace otpdb

template <>
struct std::hash<otpdb::MsgId> {
  std::size_t operator()(const otpdb::MsgId& id) const noexcept {
    return std::hash<std::uint64_t>()((static_cast<std::uint64_t>(id.sender) << 48) ^ id.seq);
  }
};
