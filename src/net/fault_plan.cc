#include "net/fault_plan.h"

#include <algorithm>

#include "util/assert.h"

namespace otpdb {

bool FaultPlan::has(FaultKind kind) const {
  return std::any_of(clauses.begin(), clauses.end(),
                     [kind](const FaultClause& c) { return c.kind == kind; });
}

FaultClause FaultPlan::duplicate(double p, SimTime extra_min, SimTime extra_max, SimTime start,
                                 SimTime end) {
  FaultClause c;
  c.kind = FaultKind::duplicate;
  c.probability = p;
  c.delay_min = extra_min;
  c.delay_max = extra_max;
  c.start = start;
  c.end = end;
  return c;
}

FaultClause FaultPlan::reorder(double p, SimTime delay_min, SimTime delay_max, SimTime start,
                               SimTime end) {
  FaultClause c;
  c.kind = FaultKind::reorder;
  c.probability = p;
  c.delay_min = delay_min;
  c.delay_max = delay_max;
  c.start = start;
  c.end = end;
  return c;
}

FaultClause FaultPlan::one_way(std::vector<SiteId> from, std::vector<SiteId> to, SimTime start,
                               SimTime end) {
  FaultClause c;
  c.kind = FaultKind::one_way_partition;
  c.from = std::move(from);
  c.to = std::move(to);
  c.start = start;
  c.end = end;
  return c;
}

FaultClause FaultPlan::flap(std::vector<SiteId> from, std::vector<SiteId> to, SimTime period,
                            double duty_down, SimTime start, SimTime end) {
  FaultClause c;
  c.kind = FaultKind::flap;
  c.from = std::move(from);
  c.to = std::move(to);
  c.period = period;
  c.duty_down = duty_down;
  c.start = start;
  c.end = end;
  return c;
}

FaultClause FaultPlan::gray(std::vector<SiteId> from, std::vector<SiteId> to, SimTime delay_min,
                            SimTime delay_max, SimTime start, SimTime end) {
  FaultClause c;
  c.kind = FaultKind::gray_link;
  c.from = std::move(from);
  c.to = std::move(to);
  c.delay_min = delay_min;
  c.delay_max = delay_max;
  c.start = start;
  c.end = end;
  return c;
}

ChaosRuntime::ChaosRuntime(FaultPlan plan, std::size_t n_sites)
    : plan_(std::move(plan)), n_(n_sites) {
  const std::size_t k = plan_.clauses.size();
  from_scope_.assign(k * n_, 0);
  to_scope_.assign(k * n_, 0);
  for (std::size_t c = 0; c < k; ++c) {
    const FaultClause& clause = plan_.clauses[c];
    OTPDB_CHECK_MSG(clause.end > clause.start, "fault clause with empty [start, end) window");
    if (clause.from.empty()) {
      std::fill_n(from_scope_.begin() + static_cast<std::ptrdiff_t>(c * n_), n_, 1);
    } else {
      for (SiteId s : clause.from) {
        OTPDB_CHECK(s < n_);
        from_scope_[c * n_ + s] = 1;
      }
    }
    if (clause.to.empty()) {
      std::fill_n(to_scope_.begin() + static_cast<std::ptrdiff_t>(c * n_), n_, 1);
    } else {
      for (SiteId s : clause.to) {
        OTPDB_CHECK(s < n_);
        to_scope_[c * n_ + s] = 1;
      }
    }
    if (clause.kind == FaultKind::one_way_partition || clause.kind == FaultKind::flap) {
      has_blocking_ = true;
      if (clause.kind == FaultKind::flap) {
        OTPDB_CHECK_MSG(clause.period > 0, "flap clause needs a positive period");
        OTPDB_CHECK(clause.duty_down > 0.0 && clause.duty_down < 1.0);
      }
    }
  }
  if (has_blocking_) blocked_.assign(n_ * n_, 0);
}

ChaosRuntime::Perturbation ChaosRuntime::perturb(SiteId from, SiteId to, SimTime at, Rng& rng,
                                                 ChaosStats& stats) const {
  Perturbation p;
  for (std::size_t c = 0; c < plan_.clauses.size(); ++c) {
    const FaultClause& clause = plan_.clauses[c];
    if (at < clause.start || at >= clause.end) continue;
    if (!in_scope(c, from, to)) continue;
    const SimTime span = clause.delay_max > clause.delay_min ? clause.delay_max - clause.delay_min : 0;
    switch (clause.kind) {
      case FaultKind::duplicate:
        if (rng.bernoulli(clause.probability)) {
          p.duplicate = true;
          p.duplicate_extra +=
              clause.delay_min + (span ? rng.uniform_int(0, span - 1) : 0);
          ++stats.duplicates_injected;
        }
        break;
      case FaultKind::reorder:
        if (rng.bernoulli(clause.probability)) {
          p.extra += clause.delay_min + (span ? rng.uniform_int(0, span - 1) : 0);
          ++stats.reorders_injected;
        }
        break;
      case FaultKind::gray_link:
        p.extra += clause.delay_min + (span ? rng.uniform_int(0, span - 1) : 0);
        ++stats.gray_delays;
        break;
      case FaultKind::one_way_partition:
      case FaultKind::flap:
        break;  // blocking clauses act at delivery time via blocked()
    }
  }
  return p;
}

bool ChaosRuntime::clause_down(const FaultClause& c, SimTime now) {
  if (now < c.start || now >= c.end) return false;
  if (c.kind == FaultKind::one_way_partition) return true;
  const SimTime phase = (now - c.start) % c.period;
  return phase < static_cast<SimTime>(static_cast<double>(c.period) * c.duty_down);
}

void ChaosRuntime::recompute(SimTime now) {
  if (!has_blocking_) return;
  std::fill(blocked_.begin(), blocked_.end(), 0);
  for (std::size_t c = 0; c < plan_.clauses.size(); ++c) {
    const FaultClause& clause = plan_.clauses[c];
    if (clause.kind != FaultKind::one_way_partition && clause.kind != FaultKind::flap) continue;
    if (!clause_down(clause, now)) continue;
    for (SiteId from = 0; from < n_; ++from) {
      if (!from_scope_[c * n_ + from]) continue;
      for (SiteId to = 0; to < n_; ++to) {
        if (to == from || !to_scope_[c * n_ + to]) continue;
        blocked_[from * n_ + to] = 1;
      }
    }
  }
}

void ChaosRuntime::schedule_flap_toggle(Simulator& hub, std::size_t clause, SimTime at) {
  if (at >= plan_.clauses[clause].end) return;  // the clause-end event closes it out
  hub.schedule_at(at, [this, &hub, clause] {
    const FaultClause& c = plan_.clauses[clause];
    ++hub_stats_->flap_transitions;
    recompute(hub.now());
    on_transition_();
    // Self-reschedule the next edge of the duty cycle.
    const SimTime down_span = static_cast<SimTime>(static_cast<double>(c.period) * c.duty_down);
    const SimTime phase = (hub.now() - c.start) % c.period;
    const SimTime cycle_start = hub.now() - phase;
    const SimTime next = phase < down_span ? cycle_start + down_span : cycle_start + c.period;
    schedule_flap_toggle(hub, clause, next);
  });
}

void ChaosRuntime::arm(Simulator& hub, std::function<void()> on_transition, ChaosStats& stats) {
  on_transition_ = std::move(on_transition);
  hub_stats_ = &stats;
  if (!has_blocking_) return;
  recompute(hub.now());
  auto transition = [this, &hub] {
    recompute(hub.now());
    on_transition_();
  };
  for (std::size_t c = 0; c < plan_.clauses.size(); ++c) {
    const FaultClause& clause = plan_.clauses[c];
    switch (clause.kind) {
      case FaultKind::one_way_partition:
        if (clause.start > hub.now()) hub.schedule_at(clause.start, transition);
        if (clause.end < kSimTimeMax) hub.schedule_at(clause.end, transition);
        break;
      case FaultKind::flap:
        schedule_flap_toggle(hub, c, std::max(clause.start, hub.now()));
        if (clause.end < kSimTimeMax) hub.schedule_at(clause.end, transition);
        break;
      default:
        break;
    }
  }
}

bool parse_chaos_profile(std::string_view name, std::size_t n_sites, SimTime duration,
                         ChaosProfile& out) {
  out = ChaosProfile{};
  std::vector<SiteId> all;
  for (SiteId s = 0; s < n_sites; ++s) all.push_back(s);
  const SiteId last = n_sites ? static_cast<SiteId>(n_sites - 1) : 0;
  if (name == "dup-heavy") {
    // Aggressive at-least-once delivery: 20% of frames arrive twice, plus
    // mild reordering - stresses transport dedup and abcast idempotence.
    out.net.plan.add(FaultPlan::duplicate(0.20, 0, 2 * kMillisecond))
        .add(FaultPlan::reorder(0.05, kMillisecond, 5 * kMillisecond));
    return true;
  }
  if (name == "gray-wan") {
    // One site's inbound links turn gray mid-run (slow-but-alive, delays on
    // the order of the failure-detector timeout), plus a flapping one-way
    // edge - the false-suspicion churn scenario.
    out.net.plan
        .add(FaultPlan::gray(all, {last}, 40 * kMillisecond, 160 * kMillisecond, duration / 4,
                             (3 * duration) / 4))
        .add(FaultPlan::flap({0}, {last}, 200 * kMillisecond, 0.5, duration / 4,
                             (3 * duration) / 4));
    return true;
  }
  if (name == "asym-flap") {
    // Asymmetric connectivity: site 0 cannot reach the last site for the
    // middle half of the run, while a second edge flaps.
    out.net.plan
        .add(FaultPlan::one_way({0}, {last}, duration / 4, (3 * duration) / 4))
        .add(FaultPlan::flap({last}, {0}, 150 * kMillisecond, 0.4, duration / 2,
                             (3 * duration) / 4))
        .add(FaultPlan::duplicate(0.05, 0, kMillisecond));
    return true;
  }
  if (name == "flaky-disk") {
    // Storage-side chaos: the caller arms the I/O fault injector; keep a
    // light duplication load on the network so both planes run together.
    out.flaky_disk = true;
    out.net.plan.add(FaultPlan::duplicate(0.05, 0, kMillisecond));
    return true;
  }
  return false;
}

const char* chaos_profile_list() { return "dup-heavy, gray-wan, asym-flap, flaky-disk"; }

}  // namespace otpdb
