#include "net/topology.h"

#include "util/assert.h"

namespace otpdb {

namespace {

TopologyMatrix uniform(TopologyProfile profile, std::size_t n, bool switched,
                       const EdgeParams& edge) {
  TopologyMatrix m;
  m.profile = profile;
  m.n_sites = n;
  m.switched = switched;
  m.symmetric = true;
  m.edges.assign(n * n, edge);
  return m;
}

/// Grouped profile: sites are assigned to `groups` clusters; `group_of(s)`
/// picks the cluster, `inter(a, b)` the cross-cluster edge parameters.
template <typename GroupOf, typename Inter>
TopologyMatrix grouped(TopologyProfile profile, std::size_t n, const EdgeParams& intra,
                       GroupOf group_of, Inter inter) {
  TopologyMatrix m = uniform(profile, n, /*switched=*/true, intra);
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      const unsigned a = group_of(from);
      const unsigned b = group_of(to);
      if (a != b) m.edge(from, to) = inter(a, b);
    }
  }
  return m;
}

}  // namespace

TopologyMatrix build_topology(TopologyProfile profile, std::size_t n_sites,
                              const EdgeParams& lan_edge) {
  OTPDB_CHECK(n_sites >= 1);
  switch (profile) {
    case TopologyProfile::flat:
      // Empty matrix: the shared segment keeps using the global NetConfig
      // fields and the pre-topology code path, bit for bit.
      return TopologyMatrix{profile, n_sites, /*switched=*/false, /*symmetric=*/true, {}};

    case TopologyProfile::lan:
      // The flat parameters written out as an explicit matrix over the shared
      // bus. Deliveries sample identical distributions in identical order, so
      // `lan` is bit-for-bit identical to `flat` (asserted by net_test).
      return uniform(profile, n_sites, /*switched=*/false, lan_edge);

    case TopologyProfile::metro: {
      // Three buildings on a metro ring (site s is in building s % 3):
      // switched fabric, one-hop edges inside a building, two fiber hops
      // between buildings. Sub-millisecond everywhere - the optimistic window
      // still mostly closes before TO-delivery.
      const EdgeParams intra{120 * kMicrosecond, 30 * kMicrosecond, 0.04, 400 * kMicrosecond};
      const EdgeParams inter{400 * kMicrosecond, 60 * kMicrosecond, 0.05, 600 * kMicrosecond};
      return grouped(profile, n_sites, intra,
                     [](std::size_t s) { return static_cast<unsigned>(s % 3); },
                     [&](unsigned, unsigned) { return inter; });
    }

    case TopologyProfile::wan: {
      // Two regions (first half of the sites vs the rest) joined by a long
      //-haul link: ~0.5ms inside a region, ~40ms across. Cross-region jitter
      // is large enough that spontaneous total order breaks down for
      // concurrent cross-region submissions.
      const EdgeParams intra{500 * kMicrosecond, 80 * kMicrosecond, 0.05, kMillisecond};
      const EdgeParams inter{40 * kMillisecond, 3 * kMillisecond, 0.08, 5 * kMillisecond};
      const std::size_t west = (n_sites + 1) / 2;
      return grouped(profile, n_sites, intra,
                     [west](std::size_t s) { return static_cast<unsigned>(s >= west); },
                     [&](unsigned, unsigned) { return inter; });
    }

    case TopologyProfile::geo_3dc: {
      // Three datacenters (site s is in DC s % 3) with LAN-grade edges inside
      // a DC and geographically distinct inter-DC distances (a latency
      // triangle, e.g. us-east / us-west / eu): the per-edge lookahead spread
      // is what the channel-clock engine exploits.
      const EdgeParams intra{50 * kMicrosecond, 20 * kMicrosecond, 0.06, 310 * kMicrosecond};
      const EdgeParams near{10 * kMillisecond, kMillisecond, 0.05, 3 * kMillisecond};
      const EdgeParams mid{25 * kMillisecond, 2 * kMillisecond, 0.05, 4 * kMillisecond};
      const EdgeParams far{35 * kMillisecond, 3 * kMillisecond, 0.05, 5 * kMillisecond};
      return grouped(profile, n_sites, intra,
                     [](std::size_t s) { return static_cast<unsigned>(s % 3); },
                     [&](unsigned a, unsigned b) {
                       const unsigned lo = a < b ? a : b;
                       const unsigned hi = a < b ? b : a;
                       if (lo == 0 && hi == 1) return near;
                       if (lo == 1 && hi == 2) return mid;
                       return far;  // 0 <-> 2
                     });
    }
  }
  OTPDB_CHECK_MSG(false, "unknown topology profile");
  return {};
}

const char* topology_profile_name(TopologyProfile profile) {
  switch (profile) {
    case TopologyProfile::flat: return "flat";
    case TopologyProfile::lan: return "lan";
    case TopologyProfile::metro: return "metro";
    case TopologyProfile::wan: return "wan";
    case TopologyProfile::geo_3dc: return "geo-3dc";
  }
  return "?";
}

std::optional<TopologyProfile> parse_topology_profile(std::string_view name) {
  if (name == "flat") return TopologyProfile::flat;
  if (name == "lan") return TopologyProfile::lan;
  if (name == "metro") return TopologyProfile::metro;
  if (name == "wan") return TopologyProfile::wan;
  if (name == "geo-3dc" || name == "geo_3dc" || name == "geo3dc") return TopologyProfile::geo_3dc;
  return std::nullopt;
}

const char* topology_profile_list() { return "flat, lan, metro, wan, geo-3dc"; }

}  // namespace otpdb
