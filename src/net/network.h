// Simulated network segment with selectable topology.
//
// The default (flat/lan profiles) models the testbed of the paper's Figure 1
// experiment (shared Ethernet with IP multicast): one shared medium that
// serializes frames, a propagation / protocol-stack floor per receiver, and
// receive-side jitter. The jitter model is bimodal - most packets see only
// microsecond-scale noise, a small fraction hit a "hiccup" (kernel
// scheduling, interrupt coalescing) with a much larger exponential delay.
// That bimodality is what makes spontaneous total order common for
// well-spaced sends and increasingly rare as the send interval approaches
// zero, reproducing the shape of Figure 1.
//
// Switched topology profiles (metro, wan, geo-3dc - see net/topology.h)
// replace the single bus with per-sender links and a per-site-pair delay
// matrix: every (from, to) edge has its own base delay, jitter distribution,
// and an independent rng stream, so geo-replicated latency structure is
// first-class. The per-edge conservative lookahead is
//     lookahead(from, to) = serialization_time + edge(from, to).base_delay,
// a strict floor under every jitter draw (link wait, uniform noise, and
// hiccup delays are all non-negative); the channel-clock engine synchronizes
// on exactly these floors.
//
// The model also supports per-receiver message loss (with transport-level
// retransmission so channels stay reliable, as the paper assumes), site
// crash/recovery, and network partitions, all deterministic under a seed.
//
// Driving modes:
//  * Classic (default): one Simulator runs the whole cluster; sends are
//    processed inline and deliveries invoke handlers directly.
//  * Sharded + shared bus (flat/lan): the network is the hub shard of a
//    ShardedEngine running global windows. Sends from site shards are
//    buffered in per-sender outboxes and flushed at window barriers in
//    canonical (time, sender, seq) order; delivery events run on the hub
//    (fault checks, arrival logs) and hand the handler invocation off to the
//    receiver's shard via its inbox.
//  * Sharded + switched: sends are processed inline on the *sending* shard
//    (the per-sender link clock and the per-edge rng streams are sender-
//    local, so no global bus order exists to wait for). Self-deliveries are
//    scheduled immediately on the sending shard; cross-site deliveries land
//    in per-edge staging cells, double-buffered by round parity, and are
//    drained into the receiver's queue in canonical sender order - by the
//    receiver's own worker at its next phase start (the sharded hub phase)
//    or serially at the barrier (ParallelismConfig::sharded_hub_drain =
//    false). Fault checks run at delivery time on the receiver's shard.
//
// Sharded-mode fault model: crash/partition state is only mutated by hub
// control events (or between runs), while site phases read it. Under global
// windows sends are crash-checked at the window barrier, so a transition
// injected mid-window applies to every send of that window; under channel
// clocks sends are checked inline and deliveries at fire time, so a
// transition applies from each site's *next* round. Either way transitions
// quantize to round boundaries, at most one incoming lookahead away from
// their classic-mode effect - a deliberate, deterministic divergence from
// the classic loop, on top of the same-timestamp cross-shard tie-break
// difference documented in sim/sharded_engine.h; histories remain
// bit-for-bit identical across sharded thread counts for every profile.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "net/fault_plan.h"
#include "net/message.h"
#include "net/topology.h"
#include "sim/sharded_engine.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace otpdb {

/// Timing and fault parameters of the simulated segment.
struct NetConfig {
  /// Time a frame occupies the shared medium (10 Mbit/s, ~128-byte frames).
  /// Switched topologies charge it per sender link instead of per bus.
  SimTime serialization_time = 100 * kMicrosecond;
  /// Fixed propagation + stack traversal floor applied to every delivery.
  SimTime base_delay = 50 * kMicrosecond;
  /// Uniform receive-side noise in [0, noise_max) added to every delivery.
  SimTime noise_max = 20 * kMicrosecond;
  /// Probability that a delivery hits a scheduling hiccup. The default pair
  /// (6 %, 310 us) is calibrated against the paper's Figure 1 anchors:
  /// ~82 % spontaneously ordered messages under a saturated 10 Mbit/s bus and
  /// ~99 % at a 4 ms per-site send interval (see bench/fig1_spontaneous_order).
  double hiccup_prob = 0.06;
  /// ...with an additional exponential delay of this mean.
  SimTime hiccup_mean = 310 * kMicrosecond;
  /// Per-delivery drop probability; dropped frames are retransmitted after rto.
  double loss_prob = 0.0;
  /// Retransmission timeout applied per drop.
  SimTime retransmit_timeout = 10 * kMillisecond;
  /// Latency structure: flat keeps the fields above as the single shared
  /// segment; other profiles materialize a per-site-pair matrix (the fields
  /// above still supply the frame serialization time, loss model, and - for
  /// the lan profile - the uniform edge parameters). See net/topology.h.
  TopologyProfile topology = TopologyProfile::flat;
};

/// Deterministic simulated network connecting n sites.
///
/// All sends are stamped with a MsgId (per-sender sequence). Deliveries invoke
/// the receiver's subscribed handler for the message's channel. Crashed sites
/// neither send nor receive; partitioned site pairs do not exchange messages
/// while the partition holds.
class Network final : public SharedMedium {
 public:
  using Handler = std::function<void(const Message&)>;

  /// `sim` is the cluster simulator in classic mode, the hub shard in
  /// sharded mode.
  Network(Simulator& sim, std::size_t n_sites, NetConfig config, Rng rng);

  std::size_t site_count() const { return site_count_; }
  const NetConfig& config() const { return config_; }
  /// The materialized per-site-pair matrix (empty/flat for the default).
  const TopologyMatrix& topology() const { return topo_; }
  /// True when this topology uses per-sender links (channel-clock capable).
  bool switched() const { return switched_; }

  /// Switches to sharded (mailbox) mode. The engine's hub must be the
  /// Simulator this network was constructed with.
  void attach_engine(ShardedEngine& engine);

  // -- SharedMedium -----------------------------------------------------------

  /// Conservative lookahead floor over all site pairs: flat topologies
  /// return serialization_time + base_delay; matrix topologies the minimum
  /// cross-site per-edge lookahead.
  SimTime lookahead() const override;
  /// Per-edge lookahead: serialization_time + edge(from, to).base_delay - a
  /// lower bound on (delivery - send) for every message on this edge, under
  /// every jitter draw (only loss retransmission waits can exceed it, and
  /// they only add delay).
  SimTime lookahead(SiteId32 from, SiteId32 to) const override;
  bool per_edge() const override { return switched_; }
  void begin_site_window(SiteId32 site, Simulator& shard) override;
  void flush_outboxes() override;
  SimTime earliest_staged(SiteId32 site) override;
  void end_round() override { write_parity_ ^= 1u; }

  /// Registers the handler invoked when `site` receives a message on `channel`.
  /// At most one handler per (site, channel).
  void subscribe(SiteId site, Channel channel, Handler handler);

  /// Broadcasts to every site, including the sender itself (IP-multicast
  /// loopback included). Returns the assigned message id.
  MsgId multicast(SiteId from, Channel channel, PayloadPtr payload);

  /// Point-to-point send. Returns the assigned message id.
  MsgId unicast(SiteId from, SiteId to, Channel channel, PayloadPtr payload);

  /// Crash fault injection: a crashed site sends and receives nothing.
  /// Sharded mode: call from the hub (a Cluster::sim() control event or
  /// between runs), never from a site-shard event.
  void crash(SiteId site);
  void recover(SiteId site);
  bool crashed(SiteId site) const { return crashed_[site]; }

  /// Partition fault injection (symmetric): messages between the two groups
  /// are parked while the partition holds and delivered after healing -
  /// channels stay reliable (the paper's model); only crashes lose messages.
  void partition(const std::vector<SiteId>& group_a, const std::vector<SiteId>& group_b);
  void heal_partition();

  /// Arms the chaos plane: executes `config.plan` deterministically from
  /// `chaos_rng` (split per edge in switched mode) and, when the plan can
  /// duplicate or `config.transport_dedup` is set, suppresses re-deliveries
  /// of already-seen MsgIds per receiver. Call once, before the run starts
  /// (classic mode) or before the engine's first round (sharded mode); a run
  /// without arm_chaos draws nothing from the chaos streams and is
  /// bit-identical to pre-chaos builds.
  void arm_chaos(const ChaosConfig& config, Rng chaos_rng);
  bool chaos_armed() const { return chaos_ != nullptr || dedup_; }
  /// Aggregated chaos counters (sums the per-shard rows; call between runs
  /// or after quiesce, not mid-phase).
  ChaosStats chaos_stats() const;

  /// Total messages delivered (for bench counters).
  std::uint64_t delivered_count() const {
    std::uint64_t n = 0;
    for (std::uint64_t d : delivered_by_) n += d;
    return n;
  }

  /// Arrival-order recording used by the Figure 1 experiment: when enabled,
  /// every delivery on `channel` is appended to the per-site arrival log.
  void record_arrivals(Channel channel);
  const std::vector<std::vector<MsgId>>& arrival_logs() const { return arrival_logs_; }

 private:
  /// A send buffered by a site (or control) event, flushed at the next
  /// window barrier. `to` is kEveryone for a multicast.
  struct SendRequest {
    SimTime at = 0;  // the sending shard's clock at the send
    MsgId id;
    SiteId to = 0;
    Channel channel = 0;
    PayloadPtr payload;
  };
  static constexpr SiteId kEveryone = static_cast<SiteId>(-1);

  /// A delivery that survived the hub-side fault checks, awaiting handler
  /// invocation on the receiver's shard (shared-bus sharded mode).
  struct Handoff {
    SimTime at = 0;
    Message msg;
  };

  // -- shared-bus path --------------------------------------------------------
  void process_send(SendRequest& request);
  void deliver(SiteId to, Message msg, SimTime fire_at);
  void deliver_now(std::uint32_t slot);

  // -- switched (per-edge) path ----------------------------------------------
  void process_send_switched(SendRequest& request);
  /// Stages a cross-site delivery when called from a site phase, otherwise
  /// schedules it directly on the receiver's shard (hub phase / idle engine /
  /// classic mode; self-deliveries always schedule directly).
  void route_switched(SiteId from, SiteId to, Message msg, SimTime fire_at);
  void schedule_delivery(SiteId to, Message msg, SimTime fire_at);
  /// Receiver-side delivery: fault checks at fire time on the receiver's
  /// shard, then arrival log + handler dispatch.
  void deliver_switched_now(SiteId to, Message msg);

  void dispatch(SiteId to, const Message& msg);
  SimTime send_clock() const;
  /// Replays every parked message whose partition AND chaos blocks have
  /// lifted, with a fresh post-heal receiver delay; still-blocked messages
  /// stay parked. Hub control event (heal_partition, chaos transitions).
  void release_unblocked();
  /// True (and counted) when the chaos plane blocks this edge right now.
  bool chaos_blocked(SiteId from, SiteId to, ChaosStats& row) {
    if (chaos_ == nullptr || !chaos_->blocked(from, to)) return false;
    ++row.deliveries_parked;
    return true;
  }
  /// Dedup filter: true when this MsgId was already delivered to `to` and the
  /// re-delivery must be suppressed. No-op unless dedup is armed.
  bool duplicate_suppressed(SiteId to, const Message& msg, ChaosStats& row) {
    if (!dedup_) return false;
    if (seen_[to].insert(msg.id).second) return false;
    ++row.duplicates_suppressed;
    return true;
  }
  // Chaos stats rows: [0, n) owned by the matching site shard (send draws by
  // sender in switched mode, delivery checks by receiver), [n] by the hub
  // (flat-path draws, flat-path delivery checks, control events).
  ChaosStats& chaos_row(SiteId site) { return chaos_rows_[site]; }
  ChaosStats& chaos_hub_row() { return chaos_rows_[site_count_]; }
  Rng& chaos_edge_rng(SiteId from, SiteId to) {
    return chaos_edge_rngs_[from * site_count_ + to];
  }
  const EdgeParams& edge_params(SiteId from, SiteId to) const {
    return topo_.flat() ? flat_edge_ : topo_.edge(from, to);
  }
  Rng& edge_rng(SiteId from, SiteId to) { return edge_rngs_[from * site_count_ + to]; }
  static SimTime sample_receiver_delay(Rng& rng, const EdgeParams& edge);

  // In-flight messages live in a recycled slab; the scheduled event captures
  // only {this, slot}, which fits the simulator's inline action buffer - no
  // heap allocation per delivery. (Shared-bus path; the switched path
  // captures the Message inline in the event instead - it also fits.)
  struct PendingDelivery {
    SiteId to = 0;
    Message msg;
  };

  Simulator& sim_;  // the hub shard in sharded mode
  std::size_t site_count_;
  NetConfig config_;
  TopologyMatrix topo_;
  EdgeParams flat_edge_;  // the NetConfig fields as an EdgeParams (flat path)
  bool switched_ = false;
  Rng rng_;
  bool sharded_ = false;
  ShardedEngine* engine_ = nullptr;
  std::vector<std::uint64_t> next_seq_;                 // per sender
  std::vector<std::vector<Handler>> handlers_;          // [site][channel]
  std::vector<bool> crashed_;
  std::vector<std::uint32_t> partition_group_;          // 0 = none/all together
  SimTime bus_free_at_ = 0;                             // shared-bus serialization
  std::vector<SimTime> link_free_at_;                   // switched: per sender NIC
  std::vector<Rng> edge_rngs_;                          // switched: [from*n+to]
  std::vector<std::uint64_t> delivered_by_;             // per receiver
  std::vector<PendingDelivery> in_flight_;        // slab, indexed by slot
  std::vector<std::uint32_t> free_flight_slots_;
  std::vector<std::vector<Message>> held_by_;     // per receiver, parked by a partition
  std::optional<Channel> recorded_channel_;
  std::vector<std::vector<MsgId>> arrival_logs_;

  // Chaos plane (null/empty unless arm_chaos ran; the chaos rng streams are
  // split lazily there, so chaos-off runs never perturb the base streams).
  std::unique_ptr<ChaosRuntime> chaos_;
  Rng chaos_rng_{0};                     // flat path: hub-owned draw stream
  std::vector<Rng> chaos_edge_rngs_;     // switched path: [from*n+to], sender-owned
  bool dedup_ = false;
  std::vector<std::unordered_set<MsgId>> seen_;  // per receiver, receiver-owned
  std::vector<ChaosStats> chaos_rows_;   // [site 0..n-1, hub]; see chaos_row()

  // Sharded-mode mailboxes (shared-bus path). outbox_[s] is written only by
  // the shard running site s's events (or the hub during its phase) and
  // drained at barriers; inbox_[s] is written by the hub phase and drained by
  // site s's shard at the start of its phase. Phases never overlap, so no
  // locks are needed - the engine's barrier provides the happens-before
  // edges.
  std::vector<std::vector<SendRequest>> outbox_;
  std::vector<std::vector<Handoff>> inbox_;
  std::vector<SendRequest> flush_scratch_;

  // Sharded-mode staging (switched path): per-edge cells, double-buffered by
  // round parity. buf[write_parity_] is appended by the sending shard during
  // its phase; buf[write_parity_ ^ 1] (flipped at the barrier) is drained by
  // the receiving shard at its next phase start. A cell is thus touched by
  // at most one thread per phase, with the engine barrier ordering rounds.
  struct StagedDelivery {
    SimTime at = 0;
    Message msg;
  };
  struct EdgeCell {
    std::vector<StagedDelivery> buf[2];
    SimTime min_at[2] = {kSimTimeMax, kSimTimeMax};
  };
  std::vector<EdgeCell> staged_;  // [from*n+to]
  unsigned write_parity_ = 0;
};

}  // namespace otpdb
