// Simulated broadcast LAN segment.
//
// Models the testbed of the paper's Figure 1 experiment (shared Ethernet with
// IP multicast): one shared medium that serializes frames, a propagation /
// protocol-stack floor per receiver, and receive-side jitter. The jitter model
// is bimodal - most packets see only microsecond-scale noise, a small fraction
// hit a "hiccup" (kernel scheduling, interrupt coalescing) with a much larger
// exponential delay. That bimodality is what makes spontaneous total order
// common for well-spaced sends and increasingly rare as the send interval
// approaches zero, reproducing the shape of Figure 1.
//
// The model also supports per-receiver message loss (with transport-level
// retransmission so channels stay reliable, as the paper assumes), site
// crash/recovery, and network partitions, all deterministic under a seed.
//
// Two driving modes share all of the above:
//  * Classic (default): one Simulator runs the whole cluster; sends are
//    processed inline and deliveries invoke handlers directly.
//  * Sharded (attach_engine): the network is the hub shard of a
//    ShardedEngine. Sends from site shards are buffered in per-sender
//    outboxes and flushed at window barriers in canonical (time, sender,
//    seq) order; delivery events run on the hub (fault checks, arrival
//    logs) and hand the handler invocation off to the receiver's shard via
//    its inbox. Every delivery is delayed by at least lookahead() =
//    serialization_time + base_delay, which is the conservative window the
//    engine synchronizes on.
//
// Sharded-mode fault model: sends are crash-checked at the window barrier,
// so a crash/recovery injected mid-window applies to every send of that
// window (fault transitions quantize to window boundaries, at most
// lookahead() away from their classic-mode effect). This is a deliberate,
// deterministic divergence from the classic loop, on top of the same-
// timestamp cross-shard tie-break difference documented in
// sim/sharded_engine.h; histories remain bit-for-bit identical across
// sharded thread counts.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/message.h"
#include "sim/sharded_engine.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace otpdb {

/// Timing and fault parameters of the simulated segment.
struct NetConfig {
  /// Time a frame occupies the shared medium (10 Mbit/s, ~128-byte frames).
  SimTime serialization_time = 100 * kMicrosecond;
  /// Fixed propagation + stack traversal floor applied to every delivery.
  SimTime base_delay = 50 * kMicrosecond;
  /// Uniform receive-side noise in [0, noise_max) added to every delivery.
  SimTime noise_max = 20 * kMicrosecond;
  /// Probability that a delivery hits a scheduling hiccup. The default pair
  /// (6 %, 310 us) is calibrated against the paper's Figure 1 anchors:
  /// ~82 % spontaneously ordered messages under a saturated 10 Mbit/s bus and
  /// ~99 % at a 4 ms per-site send interval (see bench/fig1_spontaneous_order).
  double hiccup_prob = 0.06;
  /// ...with an additional exponential delay of this mean.
  SimTime hiccup_mean = 310 * kMicrosecond;
  /// Per-delivery drop probability; dropped frames are retransmitted after rto.
  double loss_prob = 0.0;
  /// Retransmission timeout applied per drop.
  SimTime retransmit_timeout = 10 * kMillisecond;
};

/// Deterministic simulated network connecting n sites.
///
/// All sends are stamped with a MsgId (per-sender sequence). Deliveries invoke
/// the receiver's subscribed handler for the message's channel. Crashed sites
/// neither send nor receive; partitioned site pairs do not exchange messages
/// while the partition holds.
class Network final : public SharedMedium {
 public:
  using Handler = std::function<void(const Message&)>;

  /// `sim` is the cluster simulator in classic mode, the hub shard in
  /// sharded mode.
  Network(Simulator& sim, std::size_t n_sites, NetConfig config, Rng rng);

  std::size_t site_count() const { return site_count_; }
  const NetConfig& config() const { return config_; }

  /// Switches to sharded (mailbox) mode. The engine's hub must be the
  /// Simulator this network was constructed with.
  void attach_engine(ShardedEngine& engine);

  // -- SharedMedium -----------------------------------------------------------

  /// Conservative lookahead: every delivery is delayed by at least the bus
  /// serialization time plus the propagation floor, so a window of this size
  /// never needs a delivery from a send inside it.
  SimTime lookahead() const override {
    return config_.serialization_time + config_.base_delay;
  }
  void begin_site_window(SiteId32 site, Simulator& shard) override;
  void flush_outboxes() override;

  /// Registers the handler invoked when `site` receives a message on `channel`.
  /// At most one handler per (site, channel).
  void subscribe(SiteId site, Channel channel, Handler handler);

  /// Broadcasts to every site, including the sender itself (IP-multicast
  /// loopback included). Returns the assigned message id.
  MsgId multicast(SiteId from, Channel channel, PayloadPtr payload);

  /// Point-to-point send. Returns the assigned message id.
  MsgId unicast(SiteId from, SiteId to, Channel channel, PayloadPtr payload);

  /// Crash fault injection: a crashed site sends and receives nothing.
  /// Sharded mode: call from the hub (a Cluster::sim() control event or
  /// between runs), never from a site-shard event.
  void crash(SiteId site);
  void recover(SiteId site);
  bool crashed(SiteId site) const { return crashed_[site]; }

  /// Partition fault injection (symmetric): messages between the two groups
  /// are parked while the partition holds and delivered after healing -
  /// channels stay reliable (the paper's model); only crashes lose messages.
  void partition(const std::vector<SiteId>& group_a, const std::vector<SiteId>& group_b);
  void heal_partition();

  /// Total messages delivered (for bench counters).
  std::uint64_t delivered_count() const { return delivered_; }

  /// Arrival-order recording used by the Figure 1 experiment: when enabled,
  /// every delivery on `channel` is appended to the per-site arrival log.
  void record_arrivals(Channel channel);
  const std::vector<std::vector<MsgId>>& arrival_logs() const { return arrival_logs_; }

 private:
  /// A send buffered by a site (or control) event, flushed at the next
  /// window barrier. `to` is kEveryone for a multicast.
  struct SendRequest {
    SimTime at = 0;  // the sending shard's clock at the send
    MsgId id;
    SiteId to = 0;
    Channel channel = 0;
    PayloadPtr payload;
  };
  static constexpr SiteId kEveryone = static_cast<SiteId>(-1);

  /// A delivery that survived the hub-side fault checks, awaiting handler
  /// invocation on the receiver's shard.
  struct Handoff {
    SimTime at = 0;
    Message msg;
  };

  void process_send(SendRequest& request);
  void deliver(SiteId to, Message msg, SimTime fire_at);
  void deliver_now(std::uint32_t slot);
  void dispatch(SiteId to, const Message& msg);
  SimTime send_clock() const;
  SimTime sample_receiver_delay();

  // In-flight messages live in a recycled slab; the scheduled event captures
  // only {this, slot}, which fits the simulator's inline action buffer - no
  // heap allocation per delivery.
  struct PendingDelivery {
    SiteId to = 0;
    Message msg;
  };

  Simulator& sim_;  // the hub shard in sharded mode
  std::size_t site_count_;
  NetConfig config_;
  Rng rng_;
  bool sharded_ = false;
  std::vector<std::uint64_t> next_seq_;                 // per sender
  std::vector<std::vector<Handler>> handlers_;          // [site][channel]
  std::vector<bool> crashed_;
  std::vector<std::uint32_t> partition_group_;          // 0 = none/all together
  SimTime bus_free_at_ = 0;
  std::uint64_t delivered_ = 0;
  std::vector<PendingDelivery> in_flight_;        // slab, indexed by slot
  std::vector<std::uint32_t> free_flight_slots_;
  std::vector<std::pair<SiteId, Message>> held_;  // parked by an active partition
  std::optional<Channel> recorded_channel_;
  std::vector<std::vector<MsgId>> arrival_logs_;

  // Sharded-mode mailboxes. outbox_[s] is written only by the shard running
  // site s's events (or the hub during its phase) and drained at barriers;
  // inbox_[s] is written by the hub phase and drained by site s's shard at
  // the start of its phase. Phases never overlap, so no locks are needed -
  // the engine's barrier provides the happens-before edges.
  std::vector<std::vector<SendRequest>> outbox_;
  std::vector<std::vector<Handoff>> inbox_;
  std::vector<SendRequest> flush_scratch_;
};

}  // namespace otpdb
