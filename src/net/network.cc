#include "net/network.h"

#include <utility>

#include "util/assert.h"

namespace otpdb {

Network::Network(Simulator& sim, std::size_t n_sites, NetConfig config, Rng rng)
    : sim_(sim),
      site_count_(n_sites),
      config_(config),
      rng_(rng),
      next_seq_(n_sites, 0),
      handlers_(n_sites),
      crashed_(n_sites, false),
      partition_group_(n_sites, 0),
      arrival_logs_(n_sites) {
  OTPDB_CHECK(n_sites >= 1);
}

void Network::subscribe(SiteId site, Channel channel, Handler handler) {
  OTPDB_CHECK(site < site_count_);
  auto& per_site = handlers_[site];
  if (per_site.size() <= channel) per_site.resize(channel + 1);
  OTPDB_CHECK_MSG(!per_site[channel], "channel already subscribed at this site");
  per_site[channel] = std::move(handler);
}

SimTime Network::sample_receiver_delay() {
  SimTime delay = config_.base_delay +
                  static_cast<SimTime>(rng_.uniform_double(0.0, static_cast<double>(config_.noise_max)));
  if (rng_.bernoulli(config_.hiccup_prob)) {
    delay += static_cast<SimTime>(rng_.exponential(static_cast<double>(config_.hiccup_mean)));
  }
  return delay;
}

void Network::deliver(SiteId to, Message msg, SimTime delay) {
  std::uint32_t slot;
  if (!free_flight_slots_.empty()) {
    slot = free_flight_slots_.back();
    free_flight_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(in_flight_.size());
    in_flight_.emplace_back();
  }
  in_flight_[slot].to = to;
  in_flight_[slot].msg = std::move(msg);
  sim_.schedule_after(delay, [this, slot] { deliver_now(slot); });
}

void Network::deliver_now(std::uint32_t slot) {
  const SiteId to = in_flight_[slot].to;
  Message msg = std::move(in_flight_[slot].msg);
  free_flight_slots_.push_back(slot);
  // Re-check at delivery time: the receiver may have crashed in flight.
  // A crash loses the message (the paper's crash model; recovery replays
  // from peers); a partition merely delays it - channels stay reliable
  // ("a message sent by Ni to Nj is eventually received"), so the message
  // is retried until the partition heals or an endpoint crashes.
  if (crashed_[to] || crashed_[msg.from]) return;
  if (partition_group_[msg.from] != partition_group_[to]) {
    held_.emplace_back(to, std::move(msg));  // parked until the partition heals
    return;
  }
  if (recorded_channel_ && msg.channel == *recorded_channel_) {
    arrival_logs_[to].push_back(msg.id);
  }
  ++delivered_;
  const auto& per_site = handlers_[to];
  if (msg.channel < per_site.size() && per_site[msg.channel]) {
    per_site[msg.channel](msg);
  }
}

MsgId Network::multicast(SiteId from, Channel channel, PayloadPtr payload) {
  OTPDB_CHECK(from < site_count_);
  const MsgId id{from, next_seq_[from]++};
  if (crashed_[from]) return id;  // a crashed site's sends vanish

  // The shared medium serializes frames: the frame reaches the wire when the
  // bus frees up, and every receiver's delay is measured from that point.
  const SimTime wire_at = std::max(sim_.now(), bus_free_at_);
  bus_free_at_ = wire_at + config_.serialization_time;
  const SimTime on_wire = bus_free_at_ - sim_.now();

  Message msg{id, from, channel, std::move(payload)};
  for (SiteId to = 0; to < site_count_; ++to) {
    if (crashed_[to]) continue;  // partitioned receivers are handled at delivery
    SimTime delay = on_wire + sample_receiver_delay();
    // Loss + retransmission: each drop defers delivery by one timeout. The
    // channel stays reliable (paper model) but late arrivals perturb order.
    while (rng_.bernoulli(config_.loss_prob)) delay += config_.retransmit_timeout;
    deliver(to, msg, delay);
  }
  return id;
}

MsgId Network::unicast(SiteId from, SiteId to, Channel channel, PayloadPtr payload) {
  OTPDB_CHECK(from < site_count_);
  OTPDB_CHECK(to < site_count_);
  const MsgId id{from, next_seq_[from]++};
  if (crashed_[from] || crashed_[to]) return id;

  const SimTime wire_at = std::max(sim_.now(), bus_free_at_);
  bus_free_at_ = wire_at + config_.serialization_time;
  SimTime delay = (bus_free_at_ - sim_.now()) + sample_receiver_delay();
  while (rng_.bernoulli(config_.loss_prob)) delay += config_.retransmit_timeout;
  deliver(to, Message{id, from, channel, std::move(payload)}, delay);
  return id;
}

void Network::crash(SiteId site) {
  OTPDB_CHECK(site < site_count_);
  crashed_[site] = true;
}

void Network::recover(SiteId site) {
  OTPDB_CHECK(site < site_count_);
  crashed_[site] = false;
}

void Network::partition(const std::vector<SiteId>& group_a, const std::vector<SiteId>& group_b) {
  for (SiteId s : group_a) partition_group_[s] = 1;
  for (SiteId s : group_b) partition_group_[s] = 2;
}

void Network::heal_partition() {
  std::fill(partition_group_.begin(), partition_group_.end(), 0);
  // Reliable channels: everything parked during the split now flows, with a
  // fresh receiver delay per message (modelling post-heal retransmission).
  std::vector<std::pair<SiteId, Message>> held = std::move(held_);
  held_.clear();
  for (auto& [to, msg] : held) {
    deliver(to, std::move(msg), config_.retransmit_timeout + sample_receiver_delay());
  }
}

void Network::record_arrivals(Channel channel) { recorded_channel_ = channel; }

}  // namespace otpdb
