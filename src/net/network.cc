#include "net/network.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace otpdb {

Network::Network(Simulator& sim, std::size_t n_sites, NetConfig config, Rng rng)
    : sim_(sim),
      site_count_(n_sites),
      config_(config),
      topo_(build_topology(config.topology, n_sites,
                           EdgeParams{config.base_delay, config.noise_max, config.hiccup_prob,
                                      config.hiccup_mean})),
      flat_edge_{config.base_delay, config.noise_max, config.hiccup_prob, config.hiccup_mean},
      switched_(topo_.switched),
      rng_(rng),
      next_seq_(n_sites, 0),
      handlers_(n_sites),
      crashed_(n_sites, false),
      partition_group_(n_sites, 0),
      delivered_by_(n_sites, 0),
      held_by_(n_sites),
      arrival_logs_(n_sites),
      chaos_rows_(n_sites + 1) {
  OTPDB_CHECK(n_sites >= 1);
  if (switched_) {
    link_free_at_.assign(n_sites, 0);
    // One rng stream per (from, to) edge, split off in row-major order at
    // construction. Shared-bus profiles never split, so the flat/lan rng_
    // stream is untouched and bit-identical to the pre-topology code.
    edge_rngs_.reserve(n_sites * n_sites);
    for (std::size_t e = 0; e < n_sites * n_sites; ++e) edge_rngs_.push_back(rng_.split());
  }
}

void Network::attach_engine(ShardedEngine& engine) {
  OTPDB_CHECK_MSG(&engine.hub() == &sim_,
                  "the network must be constructed on the engine's hub shard");
  OTPDB_CHECK_MSG(engine.site_count() == site_count_, "engine/network site count mismatch");
  sharded_ = true;
  engine_ = &engine;
  if (switched_) {
    staged_.resize(site_count_ * site_count_);
  } else {
    outbox_.resize(site_count_);
    inbox_.resize(site_count_);
  }
  engine.attach_medium(this);
}

SimTime Network::lookahead() const {
  if (topo_.flat()) return config_.serialization_time + config_.base_delay;
  SimTime min_la = kSimTimeMax;
  for (std::size_t from = 0; from < site_count_; ++from) {
    for (std::size_t to = 0; to < site_count_; ++to) {
      if (from == to && site_count_ > 1) continue;
      min_la = std::min(min_la, config_.serialization_time + topo_.edge(from, to).base_delay);
    }
  }
  return min_la;
}

SimTime Network::lookahead(SiteId32 from, SiteId32 to) const {
  return config_.serialization_time + edge_params(from, to).base_delay;
}

void Network::subscribe(SiteId site, Channel channel, Handler handler) {
  OTPDB_CHECK(site < site_count_);
  auto& per_site = handlers_[site];
  if (per_site.size() <= channel) per_site.resize(channel + 1);
  OTPDB_CHECK_MSG(!per_site[channel], "channel already subscribed at this site");
  per_site[channel] = std::move(handler);
}

SimTime Network::send_clock() const {
  // Sharded mode: the sending shard's clock (a site shard during its phase,
  // the hub during control events). Outside any phase - e.g. a test poking
  // the network between runs - fall back to the hub clock.
  const Simulator* active = active_shard();
  return active ? active->now() : sim_.now();
}

SimTime Network::sample_receiver_delay(Rng& rng, const EdgeParams& edge) {
  SimTime delay = edge.base_delay +
                  static_cast<SimTime>(rng.uniform_double(0.0, static_cast<double>(edge.noise_max)));
  if (rng.bernoulli(edge.hiccup_prob)) {
    delay += static_cast<SimTime>(rng.exponential(static_cast<double>(edge.hiccup_mean)));
  }
  return delay;
}

void Network::deliver(SiteId to, Message msg, SimTime fire_at) {
  std::uint32_t slot;
  if (!free_flight_slots_.empty()) {
    slot = free_flight_slots_.back();
    free_flight_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(in_flight_.size());
    in_flight_.emplace_back();
  }
  in_flight_[slot].to = to;
  in_flight_[slot].msg = std::move(msg);
  sim_.schedule_at(fire_at, [this, slot] { deliver_now(slot); });
}

void Network::deliver_now(std::uint32_t slot) {
  const SiteId to = in_flight_[slot].to;
  Message msg = std::move(in_flight_[slot].msg);
  free_flight_slots_.push_back(slot);
  // Re-check at delivery time: the receiver may have crashed in flight.
  // A crash loses the message (the paper's crash model; recovery replays
  // from peers); a partition merely delays it - channels stay reliable
  // ("a message sent by Ni to Nj is eventually received"), so the message
  // is retried until the partition heals or an endpoint crashes.
  if (crashed_[to] || crashed_[msg.from]) return;
  if (partition_group_[msg.from] != partition_group_[to] ||
      chaos_blocked(msg.from, to, chaos_hub_row())) {
    held_by_[to].push_back(std::move(msg));  // parked until the block lifts
    return;
  }
  if (duplicate_suppressed(to, msg, chaos_hub_row())) return;
  if (recorded_channel_ && msg.channel == *recorded_channel_) {
    arrival_logs_[to].push_back(msg.id);
  }
  ++delivered_by_[to];
  if (sharded_) {
    // Hand the handler invocation off to the receiver's shard; it fires at
    // this same timestamp when the site phase of this window runs.
    inbox_[to].push_back(Handoff{sim_.now(), std::move(msg)});
    return;
  }
  dispatch(to, msg);
}

void Network::dispatch(SiteId to, const Message& msg) {
  const auto& per_site = handlers_[to];
  if (msg.channel < per_site.size() && per_site[msg.channel]) {
    per_site[msg.channel](msg);
  }
}

void Network::begin_site_window(SiteId32 site, Simulator& shard) {
  if (switched_) {
    // Drain the read-parity side of this receiver's staging cells, in
    // canonical sender order; within a cell in staging order (the sender's
    // own event order). Both are worker-count independent, so the receiver's
    // event-seq assignment is too.
    const unsigned read = write_parity_ ^ 1u;
    for (SiteId from = 0; from < site_count_; ++from) {
      EdgeCell& cell = staged_[from * site_count_ + site];
      auto& buf = cell.buf[read];
      for (auto& staged : buf) {
        shard.schedule_at(staged.at, [this, site, msg = std::move(staged.msg)]() mutable {
          deliver_switched_now(site, std::move(msg));
        });
      }
      buf.clear();
      cell.min_at[read] = kSimTimeMax;
    }
    return;
  }
  auto& box = inbox_[site];
  for (auto& handoff : box) {
    shard.schedule_at(handoff.at, [this, site, msg = std::move(handoff.msg)] {
      dispatch(site, msg);
    });
  }
  box.clear();
}

void Network::flush_outboxes() {
  if (switched_) return;  // sends are processed inline on the sending shard
  flush_scratch_.clear();
  for (auto& box : outbox_) {
    for (auto& request : box) flush_scratch_.push_back(std::move(request));
    box.clear();
  }
  // Canonical processing order: send time, then sender, then the sender's
  // own sequence. Independent of which worker ran which shard, so the bus
  // serialization and the rng stream (receiver delays, loss) are identical
  // for every thread count.
  std::sort(flush_scratch_.begin(), flush_scratch_.end(),
            [](const SendRequest& a, const SendRequest& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.id.sender != b.id.sender) return a.id.sender < b.id.sender;
              return a.id.seq < b.id.seq;
            });
  for (auto& request : flush_scratch_) process_send(request);
  flush_scratch_.clear();
}

SimTime Network::earliest_staged(SiteId32 site) {
  if (!switched_) return kSimTimeMax;
  // Called by the coordinator between phases, when write-parity cells are
  // empty by construction (they were last round's read side and have been
  // drained) - only the read side can hold undrained deliveries.
  const unsigned read = write_parity_ ^ 1u;
  SimTime earliest = kSimTimeMax;
  for (SiteId from = 0; from < site_count_; ++from) {
    earliest = std::min(earliest, staged_[from * site_count_ + site].min_at[read]);
  }
  return earliest;
}

void Network::process_send(SendRequest& request) {
  const SiteId from = request.id.sender;
  if (crashed_[from]) return;  // a crashed site's sends vanish
  // A unicast to a dead receiver never reaches the wire and must not occupy
  // the bus (the pre-sharding model; multicasts still serialize one frame
  // for the surviving receivers).
  if (request.to != kEveryone && crashed_[request.to]) return;

  // The shared medium serializes frames: the frame reaches the wire when the
  // bus frees up, and every receiver's delay is measured from that point.
  const SimTime wire_at = std::max(request.at, bus_free_at_);
  bus_free_at_ = wire_at + config_.serialization_time;
  const SimTime on_wire = bus_free_at_ - request.at;

  if (request.to == kEveryone) {
    Message msg{request.id, from, request.channel, std::move(request.payload)};
    for (SiteId to = 0; to < site_count_; ++to) {
      if (crashed_[to]) continue;  // partitioned receivers are handled at delivery
      SimTime delay = on_wire + sample_receiver_delay(rng_, edge_params(from, to));
      // Loss + retransmission: each drop defers delivery by one timeout. The
      // channel stays reliable (paper model) but late arrivals perturb order.
      while (rng_.bernoulli(config_.loss_prob)) delay += config_.retransmit_timeout;
      if (chaos_ != nullptr && to != from) {
        const auto p = chaos_->perturb(from, to, request.at, chaos_rng_, chaos_hub_row());
        delay += p.extra;
        if (p.duplicate) deliver(to, msg, request.at + delay + p.duplicate_extra);
      }
      deliver(to, msg, request.at + delay);
    }
  } else {
    SimTime delay = on_wire + sample_receiver_delay(rng_, edge_params(from, request.to));
    while (rng_.bernoulli(config_.loss_prob)) delay += config_.retransmit_timeout;
    Message msg{request.id, from, request.channel, std::move(request.payload)};
    if (chaos_ != nullptr && request.to != from) {
      const auto p = chaos_->perturb(from, request.to, request.at, chaos_rng_, chaos_hub_row());
      delay += p.extra;
      if (p.duplicate) deliver(request.to, msg, request.at + delay + p.duplicate_extra);
    }
    deliver(request.to, std::move(msg), request.at + delay);
  }
}

void Network::process_send_switched(SendRequest& request) {
  const SiteId from = request.id.sender;
  if (crashed_[from]) return;  // a crashed site's sends vanish
  if (request.to != kEveryone && crashed_[request.to]) return;

  // Per-sender link: the frame leaves when this sender's NIC frees up; every
  // receiver's edge delay is measured from that point. All state touched here
  // (link clock, per-edge rng rows, staging cells of row `from`) is owned by
  // the sending shard, which is what makes inline processing race-free.
  SimTime& link = link_free_at_[from];
  const SimTime wire_at = std::max(request.at, link);
  link = wire_at + config_.serialization_time;
  const SimTime on_wire = link - request.at;

  if (request.to == kEveryone) {
    Message msg{request.id, from, request.channel, std::move(request.payload)};
    for (SiteId to = 0; to < site_count_; ++to) {
      if (crashed_[to]) continue;
      Rng& rng = edge_rng(from, to);
      SimTime delay = on_wire + sample_receiver_delay(rng, edge_params(from, to));
      while (rng.bernoulli(config_.loss_prob)) delay += config_.retransmit_timeout;
      if (chaos_ != nullptr && to != from) {
        // Per-edge chaos stream + sender-owned stats row: both are touched
        // only during the sending shard's phase, like the link clock above.
        const auto p =
            chaos_->perturb(from, to, request.at, chaos_edge_rng(from, to), chaos_row(from));
        delay += p.extra;
        if (p.duplicate) route_switched(from, to, msg, request.at + delay + p.duplicate_extra);
      }
      route_switched(from, to, msg, request.at + delay);
    }
  } else {
    Rng& rng = edge_rng(from, request.to);
    SimTime delay = on_wire + sample_receiver_delay(rng, edge_params(from, request.to));
    while (rng.bernoulli(config_.loss_prob)) delay += config_.retransmit_timeout;
    Message msg{request.id, from, request.channel, std::move(request.payload)};
    if (chaos_ != nullptr && request.to != from) {
      const auto p = chaos_->perturb(from, request.to, request.at,
                                     chaos_edge_rng(from, request.to), chaos_row(from));
      delay += p.extra;
      if (p.duplicate) route_switched(from, request.to, msg, request.at + delay + p.duplicate_extra);
    }
    route_switched(from, request.to, std::move(msg), request.at + delay);
  }
}

void Network::route_switched(SiteId from, SiteId to, Message msg, SimTime fire_at) {
  Simulator* active = active_shard();
  const bool site_phase = engine_ != nullptr && active != nullptr && active != &sim_;
  if (site_phase && to != from) {
    // Cross-site delivery from a site phase: stage it on the write-parity
    // side of the edge cell; the barrier flips parity and the receiver's
    // worker drains it at its next phase start. The engine's per-edge bound
    // guarantees fire_at is never behind the receiver's clock by then.
    EdgeCell& cell = staged_[from * site_count_ + to];
    auto& buf = cell.buf[write_parity_];
    buf.push_back(StagedDelivery{fire_at, std::move(msg)});
    cell.min_at[write_parity_] = std::min(cell.min_at[write_parity_], fire_at);
    return;
  }
  // Self-deliveries (multicast loopback) land inline on the sending shard;
  // hub control events, the idle engine, and classic mode schedule directly
  // on the receiver (single-threaded in all three cases).
  schedule_delivery(to, std::move(msg), fire_at);
}

void Network::schedule_delivery(SiteId to, Message msg, SimTime fire_at) {
  Simulator& target = engine_ != nullptr ? engine_->site(to) : sim_;
  target.schedule_at(fire_at, [this, to, msg = std::move(msg)]() mutable {
    deliver_switched_now(to, std::move(msg));
  });
}

void Network::deliver_switched_now(SiteId to, Message msg) {
  // Fault checks at fire time on the receiver's shard. Crash/partition state
  // only mutates in hub phases (or between runs), which the engine barrier
  // orders against every site phase.
  if (crashed_[to] || crashed_[msg.from]) return;
  if (partition_group_[msg.from] != partition_group_[to] ||
      chaos_blocked(msg.from, to, chaos_row(to))) {
    held_by_[to].push_back(std::move(msg));  // parked until the block lifts
    return;
  }
  if (duplicate_suppressed(to, msg, chaos_row(to))) return;
  if (recorded_channel_ && msg.channel == *recorded_channel_) {
    arrival_logs_[to].push_back(msg.id);
  }
  ++delivered_by_[to];
  dispatch(to, msg);
}

MsgId Network::multicast(SiteId from, Channel channel, PayloadPtr payload) {
  OTPDB_CHECK(from < site_count_);
  const MsgId id{from, next_seq_[from]++};
  if (switched_) {
    SendRequest request{send_clock(), id, kEveryone, channel, std::move(payload)};
    process_send_switched(request);
    return id;
  }
  if (sharded_) {
    // Buffered until the window barrier, where crash checks see the fault
    // state as of the window END: fault transitions are quantized to window
    // boundaries (<= lookahead, 150us under LAN defaults) relative to the
    // classic loop. See the fault-model note in the header.
    outbox_[from].push_back(SendRequest{send_clock(), id, kEveryone, channel, std::move(payload)});
    return id;
  }
  SendRequest request{sim_.now(), id, kEveryone, channel, std::move(payload)};
  process_send(request);
  return id;
}

MsgId Network::unicast(SiteId from, SiteId to, Channel channel, PayloadPtr payload) {
  OTPDB_CHECK(from < site_count_);
  OTPDB_CHECK(to < site_count_);
  const MsgId id{from, next_seq_[from]++};
  if (switched_) {
    SendRequest request{send_clock(), id, to, channel, std::move(payload)};
    process_send_switched(request);
    return id;
  }
  if (sharded_) {
    outbox_[from].push_back(SendRequest{send_clock(), id, to, channel, std::move(payload)});
    return id;
  }
  SendRequest request{sim_.now(), id, to, channel, std::move(payload)};
  process_send(request);
  return id;
}

void Network::crash(SiteId site) {
  OTPDB_CHECK(site < site_count_);
  crashed_[site] = true;
}

void Network::recover(SiteId site) {
  OTPDB_CHECK(site < site_count_);
  crashed_[site] = false;
}

void Network::partition(const std::vector<SiteId>& group_a, const std::vector<SiteId>& group_b) {
  for (SiteId s : group_a) partition_group_[s] = 1;
  for (SiteId s : group_b) partition_group_[s] = 2;
}

void Network::heal_partition() {
  std::fill(partition_group_.begin(), partition_group_.end(), 0);
  release_unblocked();
}

void Network::release_unblocked() {
  // Reliable channels: everything parked during a split (or a chaos block)
  // flows once every block on its edge has lifted, with a fresh receiver
  // delay per message (modelling post-heal retransmission); still-blocked
  // messages stay parked for the next transition. Canonical replay order:
  // receiver, then park order - worker-count independent (cells are parked
  // by deterministic receiver-shard replays).
  for (SiteId to = 0; to < site_count_; ++to) {
    if (held_by_[to].empty()) continue;
    std::vector<Message> held = std::move(held_by_[to]);
    held_by_[to].clear();
    for (auto& msg : held) {
      const SiteId from = msg.from;
      if (partition_group_[from] != partition_group_[to] ||
          (chaos_ != nullptr && chaos_->blocked(from, to))) {
        held_by_[to].push_back(std::move(msg));
        continue;
      }
      if (chaos_ != nullptr) ++chaos_hub_row().parked_released;
      if (switched_) {
        const SimTime fire =
            sim_.now() + config_.retransmit_timeout +
            sample_receiver_delay(edge_rng(from, to), edge_params(from, to));
        // Channel clocks: the receiver's shard may already sit past the hub
        // clock; clamp so the replay never lands in its local past. (Release
        // is a hub control event; the receiver can be at most one incoming
        // lookahead ahead, so the clamp moves the replay by < lookahead.)
        Simulator& target = engine_ != nullptr ? engine_->site(to) : sim_;
        schedule_delivery(to, std::move(msg), std::max(fire, target.now()));
      } else {
        deliver(to, std::move(msg),
                sim_.now() + config_.retransmit_timeout +
                    sample_receiver_delay(rng_, edge_params(from, to)));
      }
    }
  }
}

void Network::arm_chaos(const ChaosConfig& config, Rng chaos_rng) {
  OTPDB_CHECK_MSG(chaos_ == nullptr && !dedup_, "chaos already armed");
  chaos_rng_ = chaos_rng;
  // Duplication makes "reliable" mean at-least-once; the abcast layer
  // asserts at-most-once per MsgId, so dedup is mandatory whenever the plan
  // can duplicate.
  dedup_ = config.transport_dedup || config.plan.has(FaultKind::duplicate);
  if (dedup_) seen_.resize(site_count_);
  if (config.plan.empty()) return;
  chaos_ = std::make_unique<ChaosRuntime>(config.plan, site_count_);
  if (switched_) {
    // One chaos stream per edge, mirroring edge_rngs_: sender-owned rows, so
    // switched sharded sends can draw race-free on the sending shard.
    chaos_edge_rngs_.reserve(site_count_ * site_count_);
    for (std::size_t e = 0; e < site_count_ * site_count_; ++e) {
      chaos_edge_rngs_.push_back(chaos_rng_.split());
    }
  }
  chaos_->arm(sim_, [this] { release_unblocked(); }, chaos_hub_row());
}

ChaosStats Network::chaos_stats() const {
  ChaosStats total;
  for (const ChaosStats& row : chaos_rows_) total.merge(row);
  return total;
}

void Network::record_arrivals(Channel channel) { recorded_channel_ = channel; }

}  // namespace otpdb
