#include "net/network.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace otpdb {

Network::Network(Simulator& sim, std::size_t n_sites, NetConfig config, Rng rng)
    : sim_(sim),
      site_count_(n_sites),
      config_(config),
      rng_(rng),
      next_seq_(n_sites, 0),
      handlers_(n_sites),
      crashed_(n_sites, false),
      partition_group_(n_sites, 0),
      arrival_logs_(n_sites) {
  OTPDB_CHECK(n_sites >= 1);
}

void Network::attach_engine(ShardedEngine& engine) {
  OTPDB_CHECK_MSG(&engine.hub() == &sim_,
                  "the network must be constructed on the engine's hub shard");
  OTPDB_CHECK_MSG(engine.site_count() == site_count_, "engine/network site count mismatch");
  sharded_ = true;
  outbox_.resize(site_count_);
  inbox_.resize(site_count_);
  engine.attach_medium(this);
}

void Network::subscribe(SiteId site, Channel channel, Handler handler) {
  OTPDB_CHECK(site < site_count_);
  auto& per_site = handlers_[site];
  if (per_site.size() <= channel) per_site.resize(channel + 1);
  OTPDB_CHECK_MSG(!per_site[channel], "channel already subscribed at this site");
  per_site[channel] = std::move(handler);
}

SimTime Network::send_clock() const {
  // Sharded mode: the sending shard's clock (a site shard during its phase,
  // the hub during control events). Outside any phase - e.g. a test poking
  // the network between runs - fall back to the hub clock.
  const Simulator* active = active_shard();
  return active ? active->now() : sim_.now();
}

SimTime Network::sample_receiver_delay() {
  SimTime delay = config_.base_delay +
                  static_cast<SimTime>(rng_.uniform_double(0.0, static_cast<double>(config_.noise_max)));
  if (rng_.bernoulli(config_.hiccup_prob)) {
    delay += static_cast<SimTime>(rng_.exponential(static_cast<double>(config_.hiccup_mean)));
  }
  return delay;
}

void Network::deliver(SiteId to, Message msg, SimTime fire_at) {
  std::uint32_t slot;
  if (!free_flight_slots_.empty()) {
    slot = free_flight_slots_.back();
    free_flight_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(in_flight_.size());
    in_flight_.emplace_back();
  }
  in_flight_[slot].to = to;
  in_flight_[slot].msg = std::move(msg);
  sim_.schedule_at(fire_at, [this, slot] { deliver_now(slot); });
}

void Network::deliver_now(std::uint32_t slot) {
  const SiteId to = in_flight_[slot].to;
  Message msg = std::move(in_flight_[slot].msg);
  free_flight_slots_.push_back(slot);
  // Re-check at delivery time: the receiver may have crashed in flight.
  // A crash loses the message (the paper's crash model; recovery replays
  // from peers); a partition merely delays it - channels stay reliable
  // ("a message sent by Ni to Nj is eventually received"), so the message
  // is retried until the partition heals or an endpoint crashes.
  if (crashed_[to] || crashed_[msg.from]) return;
  if (partition_group_[msg.from] != partition_group_[to]) {
    held_.emplace_back(to, std::move(msg));  // parked until the partition heals
    return;
  }
  if (recorded_channel_ && msg.channel == *recorded_channel_) {
    arrival_logs_[to].push_back(msg.id);
  }
  ++delivered_;
  if (sharded_) {
    // Hand the handler invocation off to the receiver's shard; it fires at
    // this same timestamp when the site phase of this window runs.
    inbox_[to].push_back(Handoff{sim_.now(), std::move(msg)});
    return;
  }
  dispatch(to, msg);
}

void Network::dispatch(SiteId to, const Message& msg) {
  const auto& per_site = handlers_[to];
  if (msg.channel < per_site.size() && per_site[msg.channel]) {
    per_site[msg.channel](msg);
  }
}

void Network::begin_site_window(SiteId32 site, Simulator& shard) {
  auto& box = inbox_[site];
  for (auto& handoff : box) {
    shard.schedule_at(handoff.at, [this, site, msg = std::move(handoff.msg)] {
      dispatch(site, msg);
    });
  }
  box.clear();
}

void Network::flush_outboxes() {
  flush_scratch_.clear();
  for (auto& box : outbox_) {
    for (auto& request : box) flush_scratch_.push_back(std::move(request));
    box.clear();
  }
  // Canonical processing order: send time, then sender, then the sender's
  // own sequence. Independent of which worker ran which shard, so the bus
  // serialization and the rng stream (receiver delays, loss) are identical
  // for every thread count.
  std::sort(flush_scratch_.begin(), flush_scratch_.end(),
            [](const SendRequest& a, const SendRequest& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.id.sender != b.id.sender) return a.id.sender < b.id.sender;
              return a.id.seq < b.id.seq;
            });
  for (auto& request : flush_scratch_) process_send(request);
  flush_scratch_.clear();
}

void Network::process_send(SendRequest& request) {
  const SiteId from = request.id.sender;
  if (crashed_[from]) return;  // a crashed site's sends vanish
  // A unicast to a dead receiver never reaches the wire and must not occupy
  // the bus (the pre-sharding model; multicasts still serialize one frame
  // for the surviving receivers).
  if (request.to != kEveryone && crashed_[request.to]) return;

  // The shared medium serializes frames: the frame reaches the wire when the
  // bus frees up, and every receiver's delay is measured from that point.
  const SimTime wire_at = std::max(request.at, bus_free_at_);
  bus_free_at_ = wire_at + config_.serialization_time;
  const SimTime on_wire = bus_free_at_ - request.at;

  if (request.to == kEveryone) {
    Message msg{request.id, from, request.channel, std::move(request.payload)};
    for (SiteId to = 0; to < site_count_; ++to) {
      if (crashed_[to]) continue;  // partitioned receivers are handled at delivery
      SimTime delay = on_wire + sample_receiver_delay();
      // Loss + retransmission: each drop defers delivery by one timeout. The
      // channel stays reliable (paper model) but late arrivals perturb order.
      while (rng_.bernoulli(config_.loss_prob)) delay += config_.retransmit_timeout;
      deliver(to, msg, request.at + delay);
    }
  } else {
    SimTime delay = on_wire + sample_receiver_delay();
    while (rng_.bernoulli(config_.loss_prob)) delay += config_.retransmit_timeout;
    deliver(request.to, Message{request.id, from, request.channel, std::move(request.payload)},
            request.at + delay);
  }
}

MsgId Network::multicast(SiteId from, Channel channel, PayloadPtr payload) {
  OTPDB_CHECK(from < site_count_);
  const MsgId id{from, next_seq_[from]++};
  if (sharded_) {
    // Buffered until the window barrier, where crash checks see the fault
    // state as of the window END: fault transitions are quantized to window
    // boundaries (<= lookahead, 150us under LAN defaults) relative to the
    // classic loop. See the fault-model note in the header.
    outbox_[from].push_back(SendRequest{send_clock(), id, kEveryone, channel, std::move(payload)});
    return id;
  }
  SendRequest request{sim_.now(), id, kEveryone, channel, std::move(payload)};
  process_send(request);
  return id;
}

MsgId Network::unicast(SiteId from, SiteId to, Channel channel, PayloadPtr payload) {
  OTPDB_CHECK(from < site_count_);
  OTPDB_CHECK(to < site_count_);
  const MsgId id{from, next_seq_[from]++};
  if (sharded_) {
    outbox_[from].push_back(SendRequest{send_clock(), id, to, channel, std::move(payload)});
    return id;
  }
  SendRequest request{sim_.now(), id, to, channel, std::move(payload)};
  process_send(request);
  return id;
}

void Network::crash(SiteId site) {
  OTPDB_CHECK(site < site_count_);
  crashed_[site] = true;
}

void Network::recover(SiteId site) {
  OTPDB_CHECK(site < site_count_);
  crashed_[site] = false;
}

void Network::partition(const std::vector<SiteId>& group_a, const std::vector<SiteId>& group_b) {
  for (SiteId s : group_a) partition_group_[s] = 1;
  for (SiteId s : group_b) partition_group_[s] = 2;
}

void Network::heal_partition() {
  std::fill(partition_group_.begin(), partition_group_.end(), 0);
  // Reliable channels: everything parked during the split now flows, with a
  // fresh receiver delay per message (modelling post-heal retransmission).
  std::vector<std::pair<SiteId, Message>> held = std::move(held_);
  held_.clear();
  for (auto& [to, msg] : held) {
    deliver(to, std::move(msg), sim_.now() + config_.retransmit_timeout + sample_receiver_delay());
  }
}

void Network::record_arrivals(Channel channel) { recorded_channel_ = channel; }

}  // namespace otpdb
