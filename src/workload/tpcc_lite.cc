#include "workload/tpcc_lite.h"

#include <algorithm>
#include <memory>
#include <sstream>
#include <utility>

#include "util/assert.h"

namespace otpdb::tpcc {

Procedures register_procedures(ProcedureRegistry& registry, const PartitionCatalog& catalog,
                               const Layout& layout) {
  OTPDB_CHECK_MSG(catalog.objects_per_class() == layout.objects_per_warehouse(),
                  "catalog partition size must match the TPC-C layout");
  Procedures procs;

  // NewOrder: place an order of several (item, qty) lines in one warehouse.
  // Refuses lines that would oversell (deterministically, so every site makes
  // the same call). The order total is added to the customer's balance (owed).
  procs.new_order = registry.add("tpcc_new_order", [&catalog, layout](TxnContext& ctx) {
    const auto& a = ctx.args().ints;
    OTPDB_CHECK_MSG(a.size() >= 4 && a.size() % 2 == 0,
                    "new_order args: [district, customer, item, qty, ...]");
    const ClassId w = ctx.conflict_class();
    const ObjectId district =
        catalog.object(w, layout.district_offset(static_cast<std::uint64_t>(a[0])));
    const ObjectId customer =
        catalog.object(w, layout.customer_offset(static_cast<std::uint64_t>(a[1])));
    ctx.write(district, ctx.read_int(district) + 1);  // dense order ids
    std::int64_t total = 0;
    for (std::size_t i = 2; i + 1 < a.size(); i += 2) {
      const ObjectId stock =
          catalog.object(w, layout.stock_offset(static_cast<std::uint64_t>(a[i])));
      const std::int64_t qty = a[i + 1];
      const std::int64_t level = ctx.read_int(stock);
      if (level >= qty) {
        ctx.write(stock, level - qty);
        total += qty * kItemPrice;
      }
    }
    ctx.write(customer, ctx.read_int(customer) + total);
  });

  // Payment: customer settles part of the balance; warehouse year-to-date
  // receipts grow by the same amount (money conservation).
  procs.payment = registry.add("tpcc_payment", [&catalog, layout](TxnContext& ctx) {
    const auto& a = ctx.args().ints;
    OTPDB_CHECK_MSG(a.size() == 2, "payment args: [customer, amount]");
    const ClassId w = ctx.conflict_class();
    const ObjectId customer =
        catalog.object(w, layout.customer_offset(static_cast<std::uint64_t>(a[0])));
    const ObjectId ytd = catalog.object(w, layout.ytd_offset());
    ctx.write(customer, ctx.read_int(customer) - a[1]);
    ctx.write(ytd, ctx.read_int(ytd) + a[1]);
  });

  // Delivery: advances the warehouse's delivered-orders counter.
  procs.delivery = registry.add("tpcc_delivery", [&catalog, layout](TxnContext& ctx) {
    const ObjectId delivered =
        catalog.object(ctx.conflict_class(), layout.delivered_offset());
    ctx.write(delivered, ctx.read_int(delivered) + 1);
  });

  // Remote NewOrder: the order is placed at the home warehouse (district
  // order id, customer billing) but every item line is supplied from a remote
  // warehouse's stock - a cross-partition commit over {home, supply}. Money
  // conservation becomes global: revenue for stock sold at `supply` lands on
  // a `home` customer.
  procs.new_order_remote =
      registry.add("tpcc_new_order_remote", [&catalog, layout](TxnContext& ctx) {
        const auto& a = ctx.args().ints;
        OTPDB_CHECK_MSG(a.size() >= 6 && a.size() % 2 == 0,
                        "new_order_remote args: [home_w, supply_w, district, customer, "
                        "item, qty, ...]");
        const auto home = static_cast<ClassId>(a[0]);
        const auto supply = static_cast<ClassId>(a[1]);
        const ObjectId district =
            catalog.object(home, layout.district_offset(static_cast<std::uint64_t>(a[2])));
        const ObjectId customer =
            catalog.object(home, layout.customer_offset(static_cast<std::uint64_t>(a[3])));
        ctx.write(district, ctx.read_int(district) + 1);  // dense order ids
        std::int64_t total = 0;
        for (std::size_t i = 4; i + 1 < a.size(); i += 2) {
          const ObjectId stock =
              catalog.object(supply, layout.stock_offset(static_cast<std::uint64_t>(a[i])));
          const std::int64_t qty = a[i + 1];
          const std::int64_t level = ctx.read_int(stock);
          if (level >= qty) {
            ctx.write(stock, level - qty);
            total += qty * kItemPrice;
          }
        }
        ctx.write(customer, ctx.read_int(customer) + total);
      });

  // Remote Payment: a customer of a *remote* warehouse settles at this (home)
  // warehouse - the home warehouse books the receipt (YTD), the customer's
  // balance lives at their own warehouse.
  procs.payment_remote =
      registry.add("tpcc_payment_remote", [&catalog, layout](TxnContext& ctx) {
        const auto& a = ctx.args().ints;
        OTPDB_CHECK_MSG(a.size() == 4,
                        "payment_remote args: [home_w, customer_w, customer, amount]");
        const auto home = static_cast<ClassId>(a[0]);
        const auto customer_w = static_cast<ClassId>(a[1]);
        const ObjectId customer =
            catalog.object(customer_w, layout.customer_offset(static_cast<std::uint64_t>(a[2])));
        const ObjectId ytd = catalog.object(home, layout.ytd_offset());
        ctx.write(customer, ctx.read_int(customer) - a[3]);
        ctx.write(ytd, ctx.read_int(ytd) + a[3]);
      });
  return procs;
}

void load_initial_state(Cluster& cluster, const Layout& layout) {
  const auto& catalog = cluster.catalog();
  for (ClassId w = 0; w < catalog.class_count(); ++w) {
    for (std::uint64_t i = 0; i < layout.n_items; ++i) {
      cluster.load_everywhere(catalog.object(w, layout.stock_offset(i)),
                              Value{kInitialStock});
    }
  }
}

TpccDriver::TpccDriver(Cluster& cluster, Layout layout, MixConfig config, std::uint64_t seed)
    : cluster_(cluster), layout_(layout), config_(config), site_stats_(cluster.site_count()) {
  Rng master(seed);
  for (std::size_t s = 0; s < cluster.site_count(); ++s) site_rngs_.push_back(master.split());
}

void TpccDriver::start() {
  OTPDB_CHECK(!started_);
  started_ = true;
  procs_ = register_procedures(cluster_.procedures(), cluster_.catalog(), layout_);
  load_initial_state(cluster_, layout_);
  const SimTime horizon = cluster_.sim().now() + config_.duration;
  for (SiteId s = 0; s < cluster_.site_count(); ++s) schedule_next(s, horizon);
}

MixStats TpccDriver::stats() const {
  MixStats merged;
  for (const MixStats& s : site_stats_) merged += s;
  return merged;
}

void TpccDriver::schedule_next(SiteId site, SimTime horizon) {
  // On the site's own shard: the submission event mutates only site-local
  // state (replica, rng, per-site stats), so shards stay independent.
  Simulator& sim = cluster_.site_sim(site);
  const double gap_ns = static_cast<double>(kSecond) / config_.txn_per_second_per_site;
  const SimTime at = sim.now() +
                     static_cast<SimTime>(site_rngs_[site].exponential(gap_ns));
  if (at > horizon) return;
  sim.schedule_at(at, [this, site, horizon] {
    submit_one(site);
    schedule_next(site, horizon);
  });
}

void TpccDriver::submit_one(SiteId site) {
  Rng& rng = site_rngs_[site];
  MixStats& stats = site_stats_[site];
  const auto& catalog = cluster_.catalog();
  const auto warehouse = static_cast<ClassId>(
      rng.zipf(static_cast<std::uint64_t>(catalog.class_count()),
               config_.warehouse_skew_theta));
  const SimTime exec =
      static_cast<SimTime>(rng.exponential(static_cast<double>(config_.mean_exec_time)));
  const double dice = rng.next_double();
  const double no_w = config_.new_order_weight;
  const double pay_w = no_w + config_.payment_weight;
  const double del_w = pay_w + config_.delivery_weight;

  // Remote (cross-warehouse) decision: the short-circuit keeps the rng stream
  // identical to the all-local mix whenever remote_txn_fraction is 0.
  const bool remote = config_.remote_txn_fraction > 0.0 && catalog.class_count() > 1 &&
                      rng.bernoulli(config_.remote_txn_fraction);
  // Uniform among the other warehouses (home keeps its Zipf affinity).
  const auto pick_remote_warehouse = [&]() {
    const auto r = static_cast<ClassId>(
        rng.uniform_int(0, static_cast<std::int64_t>(catalog.class_count()) - 2));
    return r >= warehouse ? static_cast<ClassId>(r + 1) : r;
  };

  // Every update goes through attempt_submit (deadline tagging + retry); the
  // arguments are drawn exactly once, here, so retried attempts resubmit the
  // same transaction.
  PendingTxn pending;
  pending.exec_duration = exec;
  if (config_.deadline_budget != 0) {
    pending.deadline = cluster_.site_sim(site).now() + config_.deadline_budget;
  }

  if (dice < no_w) {
    TxnArgs args;
    const ClassId supply = remote ? pick_remote_warehouse() : warehouse;
    if (remote) {
      args.ints.push_back(static_cast<std::int64_t>(warehouse));
      args.ints.push_back(static_cast<std::int64_t>(supply));
    }
    args.ints.push_back(rng.uniform_int(0, static_cast<std::int64_t>(layout_.n_districts) - 1));
    args.ints.push_back(rng.uniform_int(0, static_cast<std::int64_t>(layout_.n_customers) - 1));
    for (std::size_t i = 0; i < config_.items_per_order; ++i) {
      args.ints.push_back(rng.uniform_int(0, static_cast<std::int64_t>(layout_.n_items) - 1));
      args.ints.push_back(rng.uniform_int(1, 5));  // quantity
    }
    ++stats.new_orders;
    pending.args = std::move(args);
    if (remote) {
      ++stats.remote_new_orders;
      pending.cross = true;
      pending.proc = procs_.new_order_remote;
      pending.classes = {warehouse, supply};
    } else {
      pending.proc = procs_.new_order;
      pending.klass = warehouse;
    }
    attempt_submit(site, std::move(pending));
  } else if (dice < pay_w) {
    TxnArgs args;
    const std::int64_t amount = rng.uniform_int(1, 100);
    const std::int64_t customer =
        rng.uniform_int(0, static_cast<std::int64_t>(layout_.n_customers) - 1);
    ++stats.payments;
    stats.payment_volume += amount;
    if (remote) {
      const ClassId customer_w = pick_remote_warehouse();
      args.ints = {static_cast<std::int64_t>(warehouse),
                   static_cast<std::int64_t>(customer_w), customer, amount};
      ++stats.remote_payments;
      pending.cross = true;
      pending.proc = procs_.payment_remote;
      pending.classes = {warehouse, customer_w};
    } else {
      args.ints = {customer, amount};
      pending.proc = procs_.payment;
      pending.klass = warehouse;
    }
    pending.args = std::move(args);
    attempt_submit(site, std::move(pending));
  } else if (dice < del_w) {
    TxnArgs args;
    args.ints = {rng.uniform_int(0, static_cast<std::int64_t>(layout_.n_districts) - 1)};
    ++stats.deliveries;
    pending.proc = procs_.delivery;
    pending.klass = warehouse;
    pending.args = std::move(args);
    attempt_submit(site, std::move(pending));
  } else {
    // StockLevel: snapshot query counting low-stock items of one warehouse.
    const Layout layout = layout_;
    const SimTime query_exec = static_cast<SimTime>(
        rng.exponential(static_cast<double>(config_.mean_query_exec_time)));
    ++stats.stock_level_queries;
    cluster_.replica(site).submit_query(
        [&catalog, layout, warehouse](QueryContext& ctx) {
          int low = 0;
          for (std::uint64_t i = 0; i < layout.n_items; ++i) {
            if (ctx.read_int(catalog.object(warehouse, layout.stock_offset(i))) <
                kStockLevelThreshold) {
              ++low;
            }
          }
          (void)low;
        },
        query_exec, nullptr);
  }
}

void TpccDriver::attempt_submit(SiteId site, PendingTxn pending) {
  // Arguments are copied into each attempt so a refusal keeps the original.
  ReplicaBase& replica = cluster_.replica(site);
  const SubmitResult result =
      pending.cross ? replica.submit_update_multi(pending.proc, pending.classes, pending.args,
                                                  pending.exec_duration, pending.deadline)
                    : replica.submit_update(pending.proc, pending.klass, pending.args,
                                            pending.exec_duration, pending.deadline);
  MixStats& stats = site_stats_[site];
  switch (result) {
    case SubmitResult::admitted:
      return;
    case SubmitResult::expired:
      ++stats.expired_presubmit;
      return;
    case SubmitResult::shed:
    case SubmitResult::backpressure:
      break;  // retryable refusals
  }
  if (pending.attempts >= config_.max_retries) {
    ++stats.gave_up;
    return;
  }
  // Deterministic exponential backoff; the jitter draw happens ONLY on a
  // refusal, keeping non-shedding runs' rng streams identical to before.
  const std::size_t shift = std::min<std::size_t>(pending.attempts, 20);
  SimTime delay = std::min(config_.backoff_cap, config_.backoff_base << shift);
  if (config_.backoff_jitter > 0) {
    delay += static_cast<SimTime>(site_rngs_[site].uniform_int(
        0, static_cast<std::int64_t>(config_.backoff_jitter)));
  }
  ++pending.attempts;
  ++stats.retries;
  // Boxed: the event capture must stay within InlineAction::kCapacity, and a
  // PendingTxn (two vectors + scalars) does not.
  cluster_.site_sim(site).schedule_after(
      delay, [this, site, boxed = std::make_unique<PendingTxn>(std::move(pending))]() {
        attempt_submit(site, std::move(*boxed));
      });
}

std::vector<std::string> TpccDriver::audit(SiteId site) {
  std::vector<std::string> violations;
  const auto& catalog = cluster_.catalog();
  const VersionedStore& store = cluster_.store(site);
  // Remote NewOrder bills a home customer for stock sold at a supply
  // warehouse and remote Payment moves a receipt across warehouses, so with
  // remote transactions money conservation only holds summed over all
  // warehouses; an all-local mix must balance per warehouse (the stricter
  // original audit).
  const MixStats merged = stats();
  const bool per_warehouse_money = merged.remote_new_orders + merged.remote_payments == 0;
  std::int64_t global_sold = 0, global_balances = 0, global_ytd = 0;
  for (ClassId w = 0; w < catalog.class_count(); ++w) {
    auto value_of = [&](std::uint64_t offset) {
      return as_int(
          store.read_latest(catalog.object(w, offset)).value_or(Value{std::int64_t{0}}));
    };
    // Money/stock conservation: every unit sold was billed exactly once, and
    // every billed unit is either still owed (balance) or received (YTD).
    std::int64_t sold = 0;
    for (std::uint64_t i = 0; i < layout_.n_items; ++i) {
      sold += kInitialStock - value_of(layout_.stock_offset(i));
    }
    std::int64_t balances = 0;
    for (std::uint64_t c = 0; c < layout_.n_customers; ++c) {
      balances += value_of(layout_.customer_offset(c));
    }
    const std::int64_t ytd = value_of(layout_.ytd_offset());
    global_sold += sold;
    global_balances += balances;
    global_ytd += ytd;
    if (per_warehouse_money && balances + ytd != sold * kItemPrice) {
      std::ostringstream out;
      out << "site " << site << " warehouse " << w << ": balances(" << balances << ") + ytd("
          << ytd << ") != revenue(" << sold * kItemPrice << ")";
      violations.push_back(out.str());
    }
    if (sold < 0) {
      violations.push_back("site " + std::to_string(site) + " warehouse " +
                           std::to_string(w) + ": negative sales (stock grew?)");
    }
    for (std::uint64_t i = 0; i < layout_.n_items; ++i) {
      if (value_of(layout_.stock_offset(i)) < 0) {
        violations.push_back("site " + std::to_string(site) + " warehouse " +
                             std::to_string(w) + ": oversold item " + std::to_string(i));
      }
    }
  }
  if (global_balances + global_ytd != global_sold * kItemPrice) {
    std::ostringstream out;
    out << "site " << site << ": global balances(" << global_balances << ") + ytd("
        << global_ytd << ") != revenue(" << global_sold * kItemPrice << ")";
    violations.push_back(out.str());
  }
  return violations;
}

}  // namespace otpdb::tpcc
