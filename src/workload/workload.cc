#include "workload/workload.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/assert.h"

namespace otpdb {

ProcId register_rmw_procedure(ProcedureRegistry& registry, const PartitionCatalog& catalog) {
  return registry.add("rmw", [&catalog](TxnContext& ctx) {
    const auto& ints = ctx.args().ints;
    OTPDB_CHECK_MSG(ints.size() >= 2, "rmw args: [delta, offset...]");
    const std::int64_t delta = ints[0];
    for (std::size_t i = 1; i < ints.size(); ++i) {
      const ObjectId obj =
          catalog.object(ctx.conflict_class(), static_cast<std::uint64_t>(ints[i]));
      ctx.write(obj, ctx.read_int(obj) + delta);
    }
  });
}

ProcId register_rmw_cross_procedure(ProcedureRegistry& registry) {
  return registry.add("rmw_cross", [](TxnContext& ctx) {
    const auto& ints = ctx.args().ints;
    OTPDB_CHECK_MSG(ints.size() >= 2, "rmw_cross args: [delta, object...]");
    const std::int64_t delta = ints[0];
    for (std::size_t i = 1; i < ints.size(); ++i) {
      const auto obj = static_cast<ObjectId>(ints[i]);
      ctx.write(obj, ctx.read_int(obj) + delta);
    }
  });
}

WorkloadDriver::WorkloadDriver(Cluster& cluster, WorkloadConfig config, std::uint64_t seed)
    : cluster_(cluster),
      config_(config),
      updates_submitted_(cluster.site_count(), 0),
      cross_class_submitted_(cluster.site_count(), 0),
      queries_submitted_(cluster.site_count(), 0),
      retries_(cluster.site_count(), 0),
      gave_up_(cluster.site_count(), 0),
      expired_presubmit_(cluster.site_count(), 0) {
  Rng master(seed);
  site_rngs_.reserve(cluster.site_count());
  for (std::size_t s = 0; s < cluster.site_count(); ++s) site_rngs_.push_back(master.split());
}

void WorkloadDriver::start() {
  OTPDB_CHECK(!started_);
  started_ = true;
  rmw_proc_ = register_rmw_procedure(cluster_.procedures(), cluster_.catalog());
  rmw_cross_proc_ = register_rmw_cross_procedure(cluster_.procedures());
  const SimTime horizon = cluster_.sim().now() + config_.duration;
  for (SiteId s = 0; s < cluster_.site_count(); ++s) schedule_next(s, horizon);
}

SimTime WorkloadDriver::next_gap(Rng& rng) const {
  const double mean_gap_ns =
      static_cast<double>(kSecond) / config_.updates_per_second_per_site;
  if (config_.poisson_arrivals) return static_cast<SimTime>(rng.exponential(mean_gap_ns));
  return static_cast<SimTime>(mean_gap_ns);
}

void WorkloadDriver::schedule_next(SiteId site, SimTime horizon) {
  // On the site's own shard: the submission event mutates only site-local
  // state (replica, rng, counters), so shards stay independent.
  Simulator& sim = cluster_.site_sim(site);
  const SimTime at = sim.now() + next_gap(site_rngs_[site]);
  if (at > horizon) return;  // submission window closed for this site
  sim.schedule_at(at, [this, site, horizon] {
    submit_one(site);
    schedule_next(site, horizon);
  });
}

void WorkloadDriver::submit_one(SiteId site) {
  Rng& rng = site_rngs_[site];
  const auto& catalog = cluster_.catalog();

  if (config_.query_fraction > 0.0 && rng.bernoulli(config_.query_fraction)) {
    // Snapshot query spanning `query_classes` consecutive classes.
    const auto first = static_cast<ClassId>(
        rng.uniform_int(0, static_cast<std::int64_t>(catalog.class_count() - 1)));
    std::vector<ObjectId> objects;
    for (std::size_t c = 0; c < config_.query_classes; ++c) {
      const auto klass = static_cast<ClassId>((first + c) % catalog.class_count());
      for (std::size_t k = 0; k < config_.query_reads_per_class; ++k) {
        const auto off = static_cast<std::uint64_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(catalog.objects_per_class() - 1)));
        objects.push_back(catalog.object(klass, off));
      }
    }
    const SimTime exec = config_.exponential_exec
                             ? static_cast<SimTime>(rng.exponential(
                                   static_cast<double>(config_.mean_query_exec_time)))
                             : config_.mean_query_exec_time;
    ++queries_submitted_[site];
    cluster_.replica(site).submit_query(
        [objects = std::move(objects)](QueryContext& ctx) {
          std::int64_t sum = 0;
          for (ObjectId obj : objects) sum += ctx.read_int(obj);
          (void)sum;  // result observed by the done-callback via ctx reads
        },
        exec, nullptr);
    return;
  }

  // Short-circuit keeps the rng stream identical to the base model whenever
  // cross_class_fraction is 0 (seed-stable workloads).
  if (config_.cross_class_fraction > 0.0 && catalog.class_count() > 1 &&
      rng.bernoulli(config_.cross_class_fraction)) {
    submit_cross_class(site, rng);
    return;
  }

  const auto klass = static_cast<ClassId>(
      rng.zipf(static_cast<std::uint64_t>(catalog.class_count()), config_.class_skew_theta));
  TxnArgs args;
  args.ints.push_back(rng.uniform_int(1, 10));  // delta
  for (std::size_t i = 0; i < config_.ops_per_txn; ++i) {
    args.ints.push_back(
        rng.uniform_int(0, static_cast<std::int64_t>(catalog.objects_per_class() - 1)));
  }
  const SimTime exec =
      config_.exponential_exec
          ? static_cast<SimTime>(rng.exponential(static_cast<double>(config_.mean_exec_time)))
          : config_.mean_exec_time;
  ++updates_submitted_[site];
  PendingUpdate pending;
  pending.proc = rmw_proc_;
  pending.klass = klass;
  pending.args = std::move(args);
  pending.exec_duration = exec;
  if (config_.deadline_budget != 0) {
    pending.deadline = cluster_.site_sim(site).now() + config_.deadline_budget;
  }
  attempt_submit(site, std::move(pending));
}

void WorkloadDriver::attempt_submit(SiteId site, PendingUpdate pending) {
  // Arguments are copied into each attempt so a refusal keeps the original.
  ReplicaBase& replica = cluster_.replica(site);
  const SubmitResult result =
      pending.cross ? replica.submit_update_multi(pending.proc, pending.classes, pending.args,
                                                  pending.exec_duration, pending.deadline)
                    : replica.submit_update(pending.proc, pending.klass, pending.args,
                                            pending.exec_duration, pending.deadline);
  switch (result) {
    case SubmitResult::admitted:
      return;
    case SubmitResult::expired:
      // Deadline budget ran out while the client was backing off (or the
      // site's queue never cleared in time). Nothing more to do.
      ++expired_presubmit_[site];
      return;
    case SubmitResult::shed:
    case SubmitResult::backpressure:
      break;  // retryable refusals
  }
  if (pending.attempts >= config_.max_retries) {
    ++gave_up_[site];
    return;
  }
  // Deterministic exponential backoff. The jitter draw happens ONLY here, on
  // a refusal, so runs that never shed consume the exact same rng stream as
  // the pre-overload driver.
  const std::size_t shift = std::min<std::size_t>(pending.attempts, 20);
  SimTime delay = std::min(config_.backoff_cap, config_.backoff_base << shift);
  if (config_.backoff_jitter > 0) {
    delay += static_cast<SimTime>(site_rngs_[site].uniform_int(
        0, static_cast<std::int64_t>(config_.backoff_jitter)));
  }
  ++pending.attempts;
  ++retries_[site];
  // Boxed: the event capture must stay within InlineAction::kCapacity, and a
  // PendingUpdate (two vectors + scalars) does not.
  cluster_.site_sim(site).schedule_after(
      delay, [this, site, boxed = std::make_unique<PendingUpdate>(std::move(pending))]() {
        attempt_submit(site, std::move(*boxed));
      });
}

void WorkloadDriver::submit_cross_class(SiteId site, Rng& rng) {
  const auto& catalog = cluster_.catalog();
  const std::size_t span =
      std::min(std::max<std::size_t>(config_.cross_class_span, 2), catalog.class_count());
  const auto first = static_cast<ClassId>(
      rng.zipf(static_cast<std::uint64_t>(catalog.class_count()), config_.class_skew_theta));
  std::vector<ClassId> classes;
  classes.reserve(span);
  for (std::size_t c = 0; c < span; ++c) {
    classes.push_back(static_cast<ClassId>((first + c) % catalog.class_count()));
  }
  // One read-modify-write per covered class (round-robin beyond the span), so
  // the transaction genuinely touches every partition it locks.
  TxnArgs args;
  args.ints.push_back(rng.uniform_int(1, 10));  // delta
  const std::size_t ops = std::max(config_.ops_per_txn, span);
  for (std::size_t i = 0; i < ops; ++i) {
    const ClassId klass = classes[i % span];
    const auto off = static_cast<std::uint64_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(catalog.objects_per_class() - 1)));
    args.ints.push_back(static_cast<std::int64_t>(catalog.object(klass, off)));
  }
  const SimTime exec =
      config_.exponential_exec
          ? static_cast<SimTime>(rng.exponential(static_cast<double>(config_.mean_exec_time)))
          : config_.mean_exec_time;
  ++updates_submitted_[site];
  ++cross_class_submitted_[site];
  PendingUpdate pending;
  pending.cross = true;
  pending.proc = rmw_cross_proc_;
  pending.classes = std::move(classes);
  pending.args = std::move(args);
  pending.exec_duration = exec;
  if (config_.deadline_budget != 0) {
    pending.deadline = cluster_.site_sim(site).now() + config_.deadline_budget;
  }
  attempt_submit(site, std::move(pending));
}

}  // namespace otpdb
