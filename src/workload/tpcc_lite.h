// TPC-C-lite: a warehouse/order-entry workload in the paper's execution model.
//
// TPC-C's warehouse-centric partitioning maps directly onto the paper's
// conflict classes (Section 2.3): each warehouse is one conflict class owning
// its stock, districts and customers; the home-warehouse update transactions
// (NewOrder, Payment, Delivery) each touch a single warehouse, while the
// read-only StockLevel and multi-warehouse analytics queries run on snapshots
// (Section 5). Like real TPC-C (~10% remote NewOrder, ~15% remote Payment),
// a remote_txn_fraction of NewOrders/Payments touches a second warehouse -
// submitted as multi-class transactions over {home, remote} (cross-partition
// commits; OTP/conservative engines only). The procedures maintain audit
// invariants (money and stock conservation, dense order ids) that hold
// exactly if and only if execution is 1-copy-serializable - per warehouse for
// all-local mixes, globally once remote transactions move money across
// warehouses - and integration tests and the example assert them.
#pragma once

#include <cstdint>
#include <vector>

#include "core/cluster.h"
#include "db/partition.h"
#include "db/procedures.h"
#include "util/rng.h"

namespace otpdb::tpcc {

/// Object layout inside one warehouse's conflict-class partition.
struct Layout {
  std::uint64_t n_items = 32;      ///< stock slots per warehouse
  std::uint64_t n_districts = 4;   ///< district next-order-id slots
  std::uint64_t n_customers = 16;  ///< customer balance slots

  std::uint64_t objects_per_warehouse() const {
    return n_items + n_districts + n_customers + 2;  // + YTD + delivered counter
  }
  // Offsets within the class partition.
  std::uint64_t stock_offset(std::uint64_t item) const { return item; }
  std::uint64_t district_offset(std::uint64_t district) const { return n_items + district; }
  std::uint64_t customer_offset(std::uint64_t customer) const {
    return n_items + n_districts + customer;
  }
  std::uint64_t ytd_offset() const { return n_items + n_districts + n_customers; }
  std::uint64_t delivered_offset() const { return ytd_offset() + 1; }
};

/// Registered procedure ids.
struct Procedures {
  ProcId new_order = 0;  ///< args: [district, customer, item1, qty1, item2, qty2, ...]
  ProcId payment = 0;    ///< args: [customer, amount]
  ProcId delivery = 0;   ///< args: [district]
  /// Remote (cross-warehouse) variants, submitted as multi-class transactions
  /// covering {home, remote} - TPC-C's ~10% remote NewOrder / ~15% remote
  /// Payment. Warehouses travel in the arguments because a multi-class
  /// context has no single conflict_class() to resolve offsets against.
  ProcId new_order_remote = 0;  ///< args: [home_w, supply_w, district, customer, item, qty, ...]
  ProcId payment_remote = 0;    ///< args: [home_w, customer_w, customer, amount]
};

constexpr std::int64_t kInitialStock = 1000;
constexpr std::int64_t kStockLevelThreshold = 985;  ///< StockLevel "low stock" cutoff
constexpr std::int64_t kItemPrice = 5;

/// Registers the three update procedures against the given layout. The
/// catalog's objects_per_class must equal layout.objects_per_warehouse().
Procedures register_procedures(ProcedureRegistry& registry, const PartitionCatalog& catalog,
                               const Layout& layout);

/// Loads initial stock (and zeroed counters) at every site of the cluster.
void load_initial_state(Cluster& cluster, const Layout& layout);

struct MixConfig {
  double new_order_weight = 0.45;
  double payment_weight = 0.43;
  double delivery_weight = 0.04;
  double stock_level_weight = 0.08;  ///< read-only snapshot query
  std::size_t items_per_order = 4;

  double txn_per_second_per_site = 120.0;
  SimTime mean_exec_time = 3 * kMillisecond;
  SimTime mean_query_exec_time = 6 * kMillisecond;
  SimTime duration = 2 * kSecond;
  double warehouse_skew_theta = 0.0;  ///< Zipf over warehouses (home-warehouse affinity)
  /// Fraction of NewOrder/Payment transactions that touch a second (remote)
  /// warehouse - a cross-partition commit over {home, remote}. Requires a
  /// multi-class-capable engine (OTP, conservative) and >= 2 warehouses.
  /// The home warehouse keeps its Zipf affinity; the remote one is uniform
  /// among the others.
  double remote_txn_fraction = 0.0;

  // --- Overload plane (all off by default: identical rng streams and
  // submissions to the pre-overload driver) ---

  /// Deadline budget per update (0 = none): absolute deadline = first-attempt
  /// time + budget; retries keep the original deadline.
  SimTime deadline_budget = 0;
  /// Client retries after a shed/backpressure refusal (0 = fire-and-forget).
  std::size_t max_retries = 0;
  /// delay = min(backoff_cap, backoff_base << attempt) + uniform jitter in
  /// [0, backoff_jitter], drawn from the site rng ONLY on a refusal.
  SimTime backoff_base = 2 * kMillisecond;
  SimTime backoff_cap = 64 * kMillisecond;
  SimTime backoff_jitter = 1 * kMillisecond;
};

/// Per-transaction-type counters reported by the driver.
struct MixStats {
  std::uint64_t new_orders = 0;
  std::uint64_t payments = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t stock_level_queries = 0;
  std::uint64_t remote_new_orders = 0;  ///< cross-warehouse NewOrders (subset of new_orders)
  std::uint64_t remote_payments = 0;    ///< cross-warehouse Payments (subset of payments)
  std::int64_t payment_volume = 0;  ///< total amount across submitted payments
  std::uint64_t retries = 0;            ///< re-submissions after shed/backpressure
  std::uint64_t gave_up = 0;            ///< updates abandoned after max_retries
  std::uint64_t expired_presubmit = 0;  ///< deadline passed before admission

  /// Merge (for per-site -> cluster aggregation). Extend together with the
  /// fields above, or merged stats silently drop the new counter.
  MixStats& operator+=(const MixStats& o) {
    new_orders += o.new_orders;
    payments += o.payments;
    deliveries += o.deliveries;
    stock_level_queries += o.stock_level_queries;
    remote_new_orders += o.remote_new_orders;
    remote_payments += o.remote_payments;
    payment_volume += o.payment_volume;
    retries += o.retries;
    gave_up += o.gave_up;
    expired_presubmit += o.expired_presubmit;
    return *this;
  }
};

/// Drives the TPC-C-lite mix against a cluster (any engine).
class TpccDriver {
 public:
  TpccDriver(Cluster& cluster, Layout layout, MixConfig config, std::uint64_t seed);

  /// Registers procedures, loads initial state, schedules the client
  /// streams - each site's stream on its own shard (Cluster::site_sim), so
  /// generation parallelizes with the sharded engine.
  void start();

  /// Merged counters across the per-site client streams.
  MixStats stats() const;
  const Procedures& procedures() const { return procs_; }
  const Layout& layout() const { return layout_; }

  /// Audit: checks the conservation invariants on `site`'s committed state.
  /// Returns human-readable violations (empty = consistent).
  std::vector<std::string> audit(SiteId site);

 private:
  /// A generated update held across retry attempts: the arguments were drawn
  /// once; every attempt resubmits the same transaction with its original
  /// deadline (audit invariants hold because a refused attempt writes
  /// nothing - the audit only counts *admitted* work).
  struct PendingTxn {
    bool cross = false;
    ProcId proc = 0;
    ClassId klass = 0;
    std::vector<ClassId> classes;  // cross-warehouse only
    TxnArgs args;
    SimTime exec_duration = 0;
    SimTime deadline = 0;  // absolute; 0 = none
    std::size_t attempts = 0;
  };

  void schedule_next(SiteId site, SimTime horizon);
  void submit_one(SiteId site);
  void attempt_submit(SiteId site, PendingTxn pending);

  Cluster& cluster_;
  Layout layout_;
  MixConfig config_;
  std::vector<Rng> site_rngs_;
  Procedures procs_;
  std::vector<MixStats> site_stats_;  // shard-confined, merged by stats()
  bool started_ = false;
};

}  // namespace otpdb::tpcc
