// Workload generation: client arrival processes, conflict-class selection,
// stored-procedure mixes, and snapshot-query mixes. Drives any Cluster
// deterministically from a seed.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cluster.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace otpdb {

struct WorkloadConfig {
  /// Client update-transaction arrival rate per site (per simulated second).
  double updates_per_second_per_site = 100.0;
  /// Poisson arrivals (exponential gaps) or a fixed submission interval.
  bool poisson_arrivals = true;

  /// Zipf skew of conflict-class selection (0 = uniform). Higher skew means
  /// more transactions in the same class, i.e. higher conflict rates.
  double class_skew_theta = 0.0;

  /// Fraction of update transactions that span several conflict classes
  /// (cross-partition commits; requires an engine with submit_update_multi
  /// support - OTP or conservative). 0 reproduces the paper's base model.
  double cross_class_fraction = 0.0;
  /// Classes a cross-class update covers (clamped to the class count). The
  /// first class is drawn with class_skew_theta; the rest are the following
  /// consecutive classes (mod class count).
  std::size_t cross_class_span = 2;

  /// Stored-procedure execution cost: exponential with this mean (or constant
  /// when `exponential_exec` is false).
  SimTime mean_exec_time = 4 * kMillisecond;
  bool exponential_exec = true;

  /// Objects read-modify-written per transaction.
  std::size_t ops_per_txn = 4;

  /// Fraction of client requests that are read-only snapshot queries.
  double query_fraction = 0.0;
  /// Conflict classes a query spans and objects it reads per class.
  std::size_t query_classes = 2;
  std::size_t query_reads_per_class = 4;
  SimTime mean_query_exec_time = 8 * kMillisecond;

  /// Length of the submission window (simulated time).
  SimTime duration = 2 * kSecond;

  // --- Overload plane (all off by default: identical rng streams and
  // submissions to the pre-overload driver) ---

  /// Deadline budget per update (0 = none). Each update carries an absolute
  /// deadline of first-submission time + this budget; retries keep the
  /// original deadline, so backing off consumes the budget.
  SimTime deadline_budget = 0;
  /// Client retries after a shed/backpressure refusal (0 = fire-and-forget).
  std::size_t max_retries = 0;
  /// Deterministic exponential backoff between attempts:
  /// delay = min(backoff_cap, backoff_base << attempt) + uniform jitter in
  /// [0, backoff_jitter], drawn from the site rng ONLY on a refusal (so
  /// non-shedding runs draw the exact same streams as before).
  SimTime backoff_base = 2 * kMillisecond;
  SimTime backoff_cap = 64 * kMillisecond;
  SimTime backoff_jitter = 1 * kMillisecond;
};

/// Registers the standard read-modify-write stored procedure used by the
/// generated workloads: args.ints = [delta, offset_1, ..., offset_k]; each
/// referenced object of the transaction's class gets value += delta.
/// Idempotent per registry (call once).
ProcId register_rmw_procedure(ProcedureRegistry& registry, const PartitionCatalog& catalog);

/// Cross-class variant for multi-class transactions: args.ints =
/// [delta, object_1, ..., object_k] with *absolute* object ids (the covered
/// class set is carried by the submission, so offsets cannot be resolved
/// against a single conflict_class()); each referenced object gets
/// value += delta. The ids must lie inside the transaction's class set -
/// TxnContext aborts the run otherwise.
ProcId register_rmw_cross_procedure(ProcedureRegistry& registry);

/// Per-site client load generator.
class WorkloadDriver {
 public:
  WorkloadDriver(Cluster& cluster, WorkloadConfig config, std::uint64_t seed);

  /// Registers the rmw procedure, loads initial object values (0) lazily via
  /// store defaults, and schedules the per-site submission streams. Each
  /// site's stream runs on its own shard (Cluster::site_sim), so generation
  /// parallelizes with the sharded engine; all per-site state (rng, counters)
  /// is shard-confined.
  void start();

  std::uint64_t updates_submitted() const { return sum(updates_submitted_); }
  std::uint64_t cross_class_submitted() const { return sum(cross_class_submitted_); }
  std::uint64_t queries_submitted() const { return sum(queries_submitted_); }
  /// Re-submissions after a shed/backpressure refusal.
  std::uint64_t retries() const { return sum(retries_); }
  /// Updates abandoned after exhausting max_retries.
  std::uint64_t gave_up() const { return sum(gave_up_); }
  /// Updates whose deadline passed before an attempt was admitted.
  std::uint64_t expired_presubmit() const { return sum(expired_presubmit_); }
  ProcId rmw_proc() const { return rmw_proc_; }
  ProcId rmw_cross_proc() const { return rmw_cross_proc_; }

 private:
  /// A generated update held by the client across retry attempts. Arguments
  /// are drawn once; every attempt submits the same transaction with the same
  /// (original) deadline.
  struct PendingUpdate {
    bool cross = false;
    ProcId proc = 0;
    ClassId klass = 0;
    std::vector<ClassId> classes;  // cross-class only
    TxnArgs args;
    SimTime exec_duration = 0;
    SimTime deadline = 0;  // absolute; 0 = none
    std::size_t attempts = 0;
  };

  void schedule_next(SiteId site, SimTime horizon);
  void submit_one(SiteId site);
  void submit_cross_class(SiteId site, Rng& rng);
  void attempt_submit(SiteId site, PendingUpdate pending);
  SimTime next_gap(Rng& rng) const;
  static std::uint64_t sum(const std::vector<std::uint64_t>& per_site) {
    std::uint64_t n = 0;
    for (std::uint64_t v : per_site) n += v;
    return n;
  }

  Cluster& cluster_;
  WorkloadConfig config_;
  std::vector<Rng> site_rngs_;
  ProcId rmw_proc_ = 0;
  ProcId rmw_cross_proc_ = 0;
  std::vector<std::uint64_t> updates_submitted_;      // per site
  std::vector<std::uint64_t> cross_class_submitted_;  // per site
  std::vector<std::uint64_t> queries_submitted_;      // per site
  std::vector<std::uint64_t> retries_;                // per site
  std::vector<std::uint64_t> gave_up_;                // per site
  std::vector<std::uint64_t> expired_presubmit_;      // per site
  bool started_ = false;
};

}  // namespace otpdb
