// Counting global operator new/delete for allocation-regression tests and
// bench counters (the InlineAction zero-alloc-per-event guarantee).
//
// This header DEFINES the global replacement allocation functions, which the
// standard requires to be non-inline: include it in EXACTLY ONE translation
// unit of a binary (the test/bench main TU). Every allocation in the binary
// bumps otpdb::heap_alloc_count; measure across a hot region by differencing
// the counter.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace otpdb {
inline std::atomic<std::uint64_t> heap_alloc_count{0};
}  // namespace otpdb

void* operator new(std::size_t size) {
  otpdb::heap_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  otpdb::heap_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
