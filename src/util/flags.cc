#include "util/flags.h"

#include <algorithm>
#include <cstdlib>

namespace otpdb {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // bare boolean flag
    }
  }
}

std::string Flags::get(const std::string& key, const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::vector<std::string> Flags::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  // DETLINT(order-insensitive): hash-order collection is sorted below before
  // anything observes it; callers emit this list verbatim (--help, unknown
  // -flag diagnostics), so the sort is what keeps that output byte-stable.
  for (const auto& [k, v] : values_) out.push_back(k);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace otpdb
