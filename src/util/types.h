// Small domain identifier types shared across otpdb subsystems.
#pragma once

#include <cstdint>

namespace otpdb {

/// Position in the definitive total order established by atomic broadcast.
/// 1-based; 0 means "not yet TO-delivered". Identical at all sites (Global
/// Order property), so it doubles as the version stamp of committed data and
/// as the snapshot index of queries (paper Section 5).
using TOIndex = std::uint64_t;

/// Conflict class identifier (paper Section 2.3). Transactions in the same
/// class conflict; transactions in different classes never do.
using ClassId = std::uint32_t;

/// Database object key. Every object belongs to exactly one conflict class
/// partition (see PartitionCatalog).
using ObjectId = std::uint64_t;

/// Stored procedure identifier (paper Section 2.2: one transaction = one
/// pre-declared stored procedure).
using ProcId = std::uint32_t;

/// Dense per-site transaction identity. Globally a transaction is named by its
/// MsgId (sender, sequence); each site interns that 16-byte struct into a
/// small integer at Opt-deliver time (TxnIdInterner) so every hot-path
/// structure - transaction table, provisional write-sets, lock queues - is an
/// array access instead of a struct hash. Ids are reused after a transaction
/// retires (commit/abort GC), keeping the space dense for the lifetime of a
/// run.
using TxnId = std::uint32_t;

/// Sentinel: no transaction / not interned.
inline constexpr TxnId kInvalidTxnId = 0xffffffffu;

}  // namespace otpdb
