// Online statistics accumulators used by benches and checkers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace otpdb {

/// Streaming mean/variance/min/max (Welford). O(1) memory.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator); 0 if n < 2.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// Merge another accumulator into this one (parallel-friendly).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile tracker; stores all samples (fine at simulation scale).
class PercentileTracker {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  std::size_t count() const { return samples_.size(); }

  /// p in [0,100]. Returns 0 when empty. Nearest-rank method.
  double percentile(double p);
  double median() { return percentile(50.0); }

  /// Appends another tracker's samples (cross-site aggregation).
  void merge(const PercentileTracker& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = false;
  }

 private:
  std::vector<double> samples_;
  bool sorted_ = true;
};

/// Fixed-width histogram over [lo, hi) with overflow/underflow buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_[i]; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }

  /// Lower edge of bucket i.
  double bucket_lo(std::size_t i) const;

  /// Render as a compact multi-line ASCII chart (for example programs).
  std::string render(std::size_t width = 40) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace otpdb
