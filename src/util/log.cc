#include "util/log.h"

#include <cstdio>
#include <mutex>

namespace otpdb {
namespace {

std::mutex g_mutex;
LogLevel g_level = LogLevel::warn;
Log::Sink g_sink;  // empty -> stderr

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO";
    case LogLevel::warn: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::set_level(LogLevel level) {
  std::scoped_lock lock(g_mutex);
  g_level = level;
}

LogLevel Log::level() {
  std::scoped_lock lock(g_mutex);
  return g_level;
}

void Log::set_sink(Sink sink) {
  std::scoped_lock lock(g_mutex);
  g_sink = std::move(sink);
}

void Log::write(LogLevel level, const std::string& msg) {
  std::scoped_lock lock(g_mutex);
  if (level < g_level) return;
  if (g_sink) {
    g_sink(level, msg);
  } else {
    std::fprintf(stderr, "%-5s %s\n", level_name(level), msg.c_str());
  }
}

}  // namespace otpdb
