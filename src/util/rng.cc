#include "util/rng.h"

#include <cmath>

#include "util/assert.h"

namespace otpdb {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  OTPDB_ASSERT(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform_double(double lo, double hi) { return lo + (hi - lo) * next_double(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  OTPDB_ASSERT(mean > 0.0);
  double u = next_double();
  while (u <= 0.0) u = next_double();
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  double u1 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

double Rng::normal_at_least(double mean, double stddev, double lo) {
  for (int i = 0; i < 64; ++i) {
    const double v = normal(mean, stddev);
    if (v >= lo) return v;
  }
  return lo;  // pathological parameters: clamp rather than loop forever
}

std::uint64_t Rng::zipf(std::uint64_t n, double theta) {
  OTPDB_ASSERT(n > 0);
  if (theta <= 0.0) return static_cast<std::uint64_t>(uniform_int(0, static_cast<std::int64_t>(n - 1)));
  if (zipf_cache_.n != n || zipf_cache_.theta != theta) {
    double norm = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(static_cast<double>(i), theta);
    zipf_cache_ = {n, theta, norm};
  }
  // Inverse-CDF walk; n is small (conflict classes), so linear scan is fine.
  const double u = next_double() * zipf_cache_.norm;
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
    if (u <= sum) return i - 1;
  }
  return n - 1;
}

Rng Rng::split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace otpdb
