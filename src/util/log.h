// Minimal leveled logging. Simulation components log through a Logger that
// prefixes simulated time and site; benches keep it at Level::warn to stay
// quiet, tests can raise verbosity for debugging.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace otpdb {

enum class LogLevel : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

/// Process-wide log sink and threshold. Defaults to stderr at warn.
class Log {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static void set_level(LogLevel level);
  static LogLevel level();
  static void set_sink(Sink sink);  ///< nullptr restores the stderr sink.
  static void write(LogLevel level, const std::string& msg);
  static bool enabled(LogLevel level) { return level >= Log::level(); }
};

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level) {
    if (tag && *tag) stream_ << "[" << tag << "] ";
  }
  ~LogLine() { Log::write(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace otpdb

#define OTPDB_LOG(level, tag)                              \
  if (!::otpdb::Log::enabled(level)) {                     \
  } else                                                   \
    ::otpdb::detail::LogLine(level, tag)

#define OTPDB_TRACE(tag) OTPDB_LOG(::otpdb::LogLevel::trace, tag)
#define OTPDB_DEBUG(tag) OTPDB_LOG(::otpdb::LogLevel::debug, tag)
#define OTPDB_INFO(tag) OTPDB_LOG(::otpdb::LogLevel::info, tag)
#define OTPDB_WARN(tag) OTPDB_LOG(::otpdb::LogLevel::warn, tag)
#define OTPDB_ERROR(tag) OTPDB_LOG(::otpdb::LogLevel::error, tag)
