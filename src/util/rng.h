// Deterministic pseudo-random number generation for simulations.
//
// Every experiment in otpdb is replayable from a single 64-bit seed. Rng wraps
// xoshiro256** (seeded via SplitMix64) and offers the distributions the
// workload and network models need. Rng instances are cheap to copy and can be
// split() into independent streams so that concurrent model components do not
// perturb each other's sequences.
#pragma once

#include <cstdint>
#include <vector>

namespace otpdb {

/// Deterministic random number generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal with the given mean and standard deviation (Box-Muller).
  double normal(double mean, double stddev);

  /// Truncated normal: redraws until the sample is >= lo.
  double normal_at_least(double mean, double stddev, double lo);

  /// Zipf-distributed rank in [0, n) with skew theta (theta = 0 -> uniform).
  std::uint64_t zipf(std::uint64_t n, double theta);

  /// Derives an independent generator stream; deterministic in (seed, calls).
  Rng split();

  /// Fisher-Yates shuffle of an index vector (used by workload generators).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
      std::swap(v[i], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  // Cached Zipf harmonic normalizers keyed by (n, theta); tiny in practice.
  struct ZipfCache {
    std::uint64_t n = 0;
    double theta = 0.0;
    double norm = 0.0;
  } zipf_cache_;
};

}  // namespace otpdb
