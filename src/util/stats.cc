#include "util/stats.h"

#include <cmath>
#include <sstream>

#include "util/assert.h"

namespace otpdb {

void OnlineStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double total = static_cast<double>(n_ + other.n_);
  const double delta = other.mean_ - mean_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / total;
  mean_ = (mean_ * static_cast<double>(n_) + other.mean_ * static_cast<double>(other.n_)) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double PercentileTracker::percentile(double p) {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  return samples_[rank == 0 ? 0 : rank - 1];
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  OTPDB_CHECK(hi > lo);
  OTPDB_CHECK(buckets > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    // (x - lo_)/width_ can round up to counts_.size() for x just below hi_
    // (width_ is a rounded quotient), so clamp: the in-range guard above
    // already decided this sample belongs to the top bucket.
    const auto index = static_cast<std::size_t>((x - lo_) / width_);
    ++counts_[index < counts_.size() ? index : counts_.size() - 1];
  }
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) * static_cast<double>(width));
    out << "[" << bucket_lo(i) << ", " << bucket_lo(i + 1) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace otpdb
