// Assertion and invariant-checking macros used across otpdb.
//
// OTPDB_CHECK   - always-on invariant check; aborts with a diagnostic.
// OTPDB_ASSERT  - debug-only check (compiled out under NDEBUG).
// OTPDB_UNREACHABLE - marks logically unreachable control flow.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace otpdb::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "otpdb check failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg ? msg : "");
  std::abort();
}

}  // namespace otpdb::detail

#define OTPDB_CHECK(expr)                                                       \
  do {                                                                          \
    if (!(expr)) ::otpdb::detail::check_failed(#expr, __FILE__, __LINE__, nullptr); \
  } while (0)

#define OTPDB_CHECK_MSG(expr, msg)                                              \
  do {                                                                          \
    if (!(expr)) ::otpdb::detail::check_failed(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)

#ifdef NDEBUG
#define OTPDB_ASSERT(expr) ((void)0)
#else
#define OTPDB_ASSERT(expr) OTPDB_CHECK(expr)
#endif

#define OTPDB_UNREACHABLE() \
  ::otpdb::detail::check_failed("unreachable", __FILE__, __LINE__, nullptr)
