// Minimal command-line flag parsing for the example/tool binaries.
// Accepts "--key=value" and "--key value" forms plus bare positionals.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace otpdb {

class Flags {
 public:
  /// Parses argv; unknown flags are kept (validated by the caller via keys()).
  Flags(int argc, const char* const* argv);

  bool has(const std::string& key) const { return values_.contains(key); }
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Registered flag names in ascending lexicographic order. The sort is a
  /// contract: callers emit this list (--help, unknown-flag diagnostics), and
  /// emitted output must be byte-identical across repeat runs.
  std::vector<std::string> keys() const;

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace otpdb
