// Per-site interning of global transaction identities (MsgId) into dense
// TxnIds.
//
// The OTP hot path touches a transaction's bookkeeping many times between
// Opt-delivery and commit: the transaction table, the provisional write-set,
// the class/lock queues, the commit record. Keying all of that on the 16-byte
// MsgId struct costs a hash + probe per touch. Instead, each site interns the
// MsgId exactly once, at Opt-deliver time, and every structure downstream is a
// plain array indexed by the resulting TxnId. Retired ids (committed/aborted
// and fully processed) return to a free list, so the id space stays dense for
// the lifetime of a run and per-slot storage (write-set capacity, transaction
// records) is recycled allocation-free.
#pragma once

#include <unordered_map>
#include <vector>

#include "net/message.h"
#include "util/assert.h"
#include "util/types.h"

namespace otpdb {

class TxnIdInterner {
 public:
  /// Interns `id`, assigning the lowest free dense TxnId. The id must not be
  /// currently interned (duplicate Opt-delivery is a protocol violation).
  TxnId intern(const MsgId& id) {
    TxnId tid;
    if (!free_.empty()) {
      tid = free_.back();
      free_.pop_back();
      ids_[tid] = id;
    } else {
      tid = static_cast<TxnId>(ids_.size());
      ids_.push_back(id);
    }
    const auto [it, inserted] = index_.emplace(id, tid);
    if (!inserted) {
      free_.push_back(tid);
      OTPDB_CHECK_MSG(false, "MsgId interned twice");
    }
    return tid;
  }

  /// The dense id bound to `id`, or kInvalidTxnId when not interned.
  TxnId find(const MsgId& id) const {
    auto it = index_.find(id);
    return it == index_.end() ? kInvalidTxnId : it->second;
  }

  /// The dense id bound to `id`; the binding must exist.
  TxnId lookup(const MsgId& id) const {
    const TxnId tid = find(id);
    OTPDB_CHECK_MSG(tid != kInvalidTxnId, "MsgId not interned");
    return tid;
  }

  /// The MsgId bound to a live dense id.
  const MsgId& resolve(TxnId tid) const {
    OTPDB_ASSERT(tid < ids_.size());
    return ids_[tid];
  }

  /// Retires a live binding; `tid` becomes reusable by a later intern().
  void release(TxnId tid) {
    OTPDB_CHECK(tid < ids_.size());
    const auto erased = index_.erase(ids_[tid]);
    OTPDB_CHECK_MSG(erased == 1, "TxnId released twice");
    free_.push_back(tid);
  }

  /// Currently live bindings.
  std::size_t live() const { return index_.size(); }

  /// High-water slot count (live + free). Downstream dense arrays sized to
  /// this bound cover every id intern() can currently return.
  std::size_t capacity() const { return ids_.size(); }

  /// Drops all bindings and free slots (crash recovery).
  void clear() {
    index_.clear();
    ids_.clear();
    free_.clear();
  }

 private:
  std::unordered_map<MsgId, TxnId> index_;  // the only MsgId hash left per txn
  std::vector<MsgId> ids_;                  // slot -> global identity
  std::vector<TxnId> free_;                 // retired slots, LIFO for locality
};

}  // namespace otpdb
