#include "db/storage_backend.h"

#include "db/durable_store.h"

namespace otpdb {

std::unique_ptr<StorageBackend> make_storage_backend(const StorageConfig& config,
                                                     Simulator& sim, SiteId site,
                                                     std::size_t n_classes,
                                                     std::uint64_t dense_objects,
                                                     const std::filesystem::path& root) {
  switch (config.backend) {
    case StorageBackendKind::memory:
      return std::make_unique<MemoryBackend>(dense_objects);
    case StorageBackendKind::durable: {
      // Per-site fault schedule: same knobs, independent seeds, so injected
      // faults land at different sites at different times.
      StorageConfig per_site = config;
      per_site.faults.seed = config.faults.seed + 0x9e3779b97f4a7c15ull * (site + 1);
      return std::make_unique<DurableStore>(
          sim, per_site, root / ("site-" + std::to_string(site)), n_classes, dense_objects);
    }
  }
  OTPDB_UNREACHABLE();
}

}  // namespace otpdb
