// Durable storage backend: TO-ordered group-commit WAL + checkpoints.
//
// The definitive delivery order is the log order (ROADMAP direction 2), so
// the commit path is embarrassingly simple: encode the write-set under its
// TOIndex, buffer it, and let one fsync cover every commit that arrived
// within the flush window. Commits are NOT gated on durability - the engine
// proceeds the moment the in-memory store is updated, exactly like the
// paper's in-memory processing - so durability lags visibility by at most
// flush_window + fsync_latency. What the site can lose in a crash is only
// that unflushed tail, and recovery re-fetches it from peers.
//
// Timing is simulated: the fsync itself executes for real (POSIX write +
// fsync on the segment fd) but *when* flushes happen is driven by
// deterministic sim-time events, so a durable cluster produces bit-for-bit
// identical digests at every worker-thread count. `next_flush_allowed_`
// models a busy device: a flush cannot start before the previous one's
// modeled latency has elapsed, which is what makes group-commit batches
// grow under load (the acceptance criterion's ">1 commit per fsync").
//
// Lifecycle per segment directory (site-<id>/):
//   wal-<seq>.log ...   sealed + active segments
//   checkpoint.bin      latest durable snapshot (atomic rename)
// A checkpoint flushes the pending buffer, snapshots all committed chains +
// per-class watermarks, rolls the active segment, then deletes every sealed
// segment whose records all fall at or below the new watermark floor.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "db/storage_backend.h"
#include "db/wal.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace otpdb {

/// Durability counters for benches and tests.
struct WalStats {
  std::uint64_t commits_logged = 0;    ///< commit records appended
  std::uint64_t fsyncs = 0;            ///< group-commit flushes executed
  std::uint64_t wal_bytes = 0;         ///< bytes written to segments
  std::uint64_t checkpoints = 0;       ///< checkpoint snapshots taken
  std::uint64_t segments_truncated = 0;  ///< sealed segments GC'd
  std::uint64_t replayed_commits = 0;  ///< WAL commits re-applied on restart
  std::uint64_t checkpoint_restores = 0;  ///< restarts that found a valid checkpoint
  /// Commits per fsync - the group-commit batch size distribution.
  Histogram group_commit_batch{0.5, 64.5, 64};
};

class DurableStore final : public StorageBackend {
 public:
  /// Opens (creating) the site directory and the first active segment.
  /// If the directory already holds state this does NOT replay it - a fresh
  /// cluster starts empty; call restart_from_disk() to recover.
  DurableStore(Simulator& sim, const StorageConfig& config, std::filesystem::path dir,
               std::size_t n_classes, std::uint64_t dense_objects);
  ~DurableStore() override;

  void load(ObjectId obj, Value value) override;
  void commit(TxnId txn, TOIndex index, std::span<const ClassId> classes) override;
  void crash() override;
  void reopen() override;
  RecoveredState restart_from_disk() override;
  const WalStats* wal_stats() const override { return &stats_; }

  /// Durable watermark for one class (commits <= this index are fsynced).
  TOIndex durable_watermark(ClassId klass) const { return durable_watermark_[klass]; }

 private:
  struct SealedSegment {
    std::uint64_t seq = 0;
    TOIndex max_index = 0;  ///< highest commit index the segment holds
  };

  void schedule_flush();
  void flush_now();
  void flush();
  void schedule_checkpoint();
  void do_checkpoint();
  void truncate_below(TOIndex floor);
  void roll_segment();
  std::filesystem::path segment_path(std::uint64_t seq) const;

  Simulator& sim_;
  StorageConfig config_;
  std::filesystem::path dir_;

  wal::SegmentWriter writer_;
  std::uint64_t active_seq_ = 0;
  TOIndex active_max_index_ = 0;          ///< highest index flushed into the active segment
  std::vector<SealedSegment> sealed_;     ///< rolled segments awaiting truncation

  std::vector<std::uint8_t> pending_;     ///< encoded, unflushed records
  std::uint64_t pending_count_ = 0;       ///< commit records in pending_
  std::vector<TOIndex> pending_watermark_;  ///< per-class, incl. unflushed
  std::vector<TOIndex> durable_watermark_;  ///< per-class, fsynced only
  TOIndex pending_max_index_ = 0;
  TOIndex durable_max_index_ = 0;

  bool flush_scheduled_ = false;
  EventId flush_event_;
  SimTime next_flush_allowed_ = 0;        ///< device-busy model
  // Checkpoints are scheduled lazily on the first commit after the previous
  // one, so an idle cluster's event queue still drains.
  bool checkpoint_scheduled_ = false;
  EventId checkpoint_event_;
  bool down_ = false;                     ///< crashed: events no-op until reopen

  WalStats stats_;
};

}  // namespace otpdb
