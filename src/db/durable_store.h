// Durable storage backend: TO-ordered group-commit WAL + checkpoints.
//
// The definitive delivery order is the log order (ROADMAP direction 2), so
// the commit path is embarrassingly simple: encode the write-set under its
// TOIndex, buffer it, and let one fsync cover every commit that arrived
// within the flush window. Commits are NOT gated on durability - the engine
// proceeds the moment the in-memory store is updated, exactly like the
// paper's in-memory processing - so durability lags visibility by at most
// flush_window + fsync_latency. What the site can lose in a crash is only
// that unflushed tail, and recovery re-fetches it from peers.
//
// Timing is simulated: the fsync itself executes for real (POSIX write +
// fsync on the segment fd) but *when* flushes happen is driven by
// deterministic sim-time events, so a durable cluster produces bit-for-bit
// identical digests at every worker-thread count. `next_flush_allowed_`
// models a busy device: a flush cannot start before the previous one's
// modeled latency has elapsed, which is what makes group-commit batches
// grow under load (the acceptance criterion's ">1 commit per fsync").
//
// Lifecycle per segment directory (site-<id>/):
//   wal-<seq>.log ...   sealed + active segments
//   checkpoint.bin      latest durable snapshot (atomic rename)
// A checkpoint flushes the pending buffer, snapshots all committed chains +
// per-class watermarks, rolls the active segment, then deletes every sealed
// segment whose records all fall at or below the new watermark floor.
//
// I/O failure policy (all I/O goes through an IoEnv - injectable, see
// db/io_shim.h): a failed write or fsync may have persisted a garbage prefix
// of the batch, so the store closes the segment, truncates it back to the
// last SYNCED byte (SegmentWriter::size() never counts a failed append), and
// retries the whole batch with doubled backoff - health() reads `degraded`
// while retries are in flight. Recovery's invariant (corruption appears only
// at the tail of the last segment) is preserved because nothing is ever
// appended after un-truncated garbage. After two consecutive failures the
// segment is sealed at its valid prefix and a fresh file is tried (bad-block
// model); if the tail cannot be cleaned or retries exhaust io_max_retries,
// the store goes `failed`: it stops logging, freezes the durable watermarks,
// and keeps serving from memory - surfaced, never silent. Checkpoints are
// skipped while a flush failure is pending (the snapshot must not outrun the
// durable watermarks) and rescheduled.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "db/storage_backend.h"
#include "db/wal.h"
#include "sim/simulator.h"
#include "util/stats.h"

namespace otpdb {

/// Durability counters for benches and tests.
struct WalStats {
  std::uint64_t commits_logged = 0;    ///< commit records appended
  std::uint64_t fsyncs = 0;            ///< group-commit flushes executed
  std::uint64_t wal_bytes = 0;         ///< bytes written to segments
  std::uint64_t checkpoints = 0;       ///< checkpoint snapshots taken
  std::uint64_t segments_truncated = 0;  ///< sealed segments GC'd
  std::uint64_t replayed_commits = 0;  ///< WAL commits re-applied on restart
  std::uint64_t checkpoint_restores = 0;  ///< restarts that found a valid checkpoint
  // Failure-path counters (see the error-handling note in the class comment).
  std::uint64_t io_errors = 0;           ///< failed writes/fsyncs/opens observed
  std::uint64_t io_retries = 0;          ///< flush retries scheduled after a failure
  std::uint64_t segments_sealed_on_error = 0;  ///< segments abandoned at their valid prefix
  std::uint64_t checkpoints_skipped = 0;  ///< checkpoints deferred (flush failure pending)
  std::uint64_t checkpoints_failed = 0;   ///< checkpoint writes that errored
  /// Commits per fsync - the group-commit batch size distribution.
  Histogram group_commit_batch{0.5, 64.5, 64};
};

class DurableStore final : public StorageBackend {
 public:
  /// Opens (creating) the site directory and the first active segment.
  /// If the directory already holds state this does NOT replay it - a fresh
  /// cluster starts empty; call restart_from_disk() to recover.
  DurableStore(Simulator& sim, const StorageConfig& config, std::filesystem::path dir,
               std::size_t n_classes, std::uint64_t dense_objects);
  ~DurableStore() override;

  void load(ObjectId obj, Value value) override;
  void commit(TxnId txn, TOIndex index, std::span<const ClassId> classes) override;
  void crash() override;
  void reopen() override;
  RecoveredState restart_from_disk() override;
  const WalStats* wal_stats() const override { return &stats_; }
  StorageHealth health() const override { return health_; }
  const IoFaultStats* io_fault_stats() const override {
    return faulty_io_ ? &faulty_io_->stats() : nullptr;
  }

  /// Durable watermark for one class (commits <= this index are fsynced).
  TOIndex durable_watermark(ClassId klass) const { return durable_watermark_[klass]; }

 private:
  struct SealedSegment {
    std::uint64_t seq = 0;
    TOIndex max_index = 0;  ///< highest commit index the segment holds
  };

  void schedule_flush();
  void flush_now();
  void flush();
  /// Bookkeeping after a failed flush attempt: degrade (retry with doubled
  /// backoff) while attempts remain and the tail is clean, else fail hard
  /// (stop logging, drop the buffer, freeze the watermarks).
  void note_flush_failure(bool tail_clean);
  void schedule_checkpoint();
  void do_checkpoint();
  void truncate_below(TOIndex floor);
  void roll_segment();
  std::filesystem::path segment_path(std::uint64_t seq) const;
  IoEnv& io() { return faulty_io_ ? *faulty_io_ : IoEnv::real(); }

  Simulator& sim_;
  StorageConfig config_;
  std::filesystem::path dir_;
  std::unique_ptr<FaultyIoEnv> faulty_io_;  ///< set when config_.faults.enabled

  wal::SegmentWriter writer_;
  std::uint64_t active_seq_ = 0;
  TOIndex active_max_index_ = 0;          ///< highest index flushed into the active segment
  std::vector<SealedSegment> sealed_;     ///< rolled segments awaiting truncation

  std::vector<std::uint8_t> pending_;     ///< encoded, unflushed records
  std::uint64_t pending_count_ = 0;       ///< commit records in pending_
  std::vector<TOIndex> pending_watermark_;  ///< per-class, incl. unflushed
  std::vector<TOIndex> durable_watermark_;  ///< per-class, fsynced only
  TOIndex pending_max_index_ = 0;
  TOIndex durable_max_index_ = 0;

  bool flush_scheduled_ = false;
  EventId flush_event_;
  SimTime next_flush_allowed_ = 0;        ///< device-busy model
  // Checkpoints are scheduled lazily on the first commit after the previous
  // one, so an idle cluster's event queue still drains.
  bool checkpoint_scheduled_ = false;
  EventId checkpoint_event_;
  bool down_ = false;                     ///< crashed: events no-op until reopen

  StorageHealth health_ = StorageHealth::ok;
  int consecutive_flush_failures_ = 0;

  WalStats stats_;
};

}  // namespace otpdb
