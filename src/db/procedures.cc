#include "db/procedures.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace otpdb {

void TxnContext::check_scope(ObjectId obj) const {
  if (catalog_ != nullptr) {
    // Class-set scope: the object's class must be one of the covered classes
    // (ascending, tiny - typically two - so a linear probe beats a binary
    // search's branches).
    const ClassId klass = catalog_->class_of(obj);
    const bool covered = std::find(classes_.begin(), classes_.end(), klass) != classes_.end();
    OTPDB_CHECK_MSG(covered, "update transaction touched an object outside its class set");
  } else if (access_set_ == nullptr) {
    OTPDB_CHECK_MSG(obj >= scope_lo_ && obj < scope_hi_,
                    "update transaction touched an object outside its conflict class");
  } else {
    const bool declared =
        std::find(access_set_->begin(), access_set_->end(), obj) != access_set_->end();
    OTPDB_CHECK_MSG(declared, "update transaction touched an undeclared object");
  }
}

namespace {
const Value kZeroValue{std::int64_t{0}};
}  // namespace

Value TxnContext::read(ObjectId obj) {
  check_scope(obj);
  const Value* p = store_.read_for_txn_ptr(txn_, obj);
  const Value& v = p ? *p : kZeroValue;
  if (record_sets_) reads_.emplace_back(obj, v);
  return v;
}

std::int64_t TxnContext::read_int(ObjectId obj) {
  check_scope(obj);
  const Value* p = store_.read_for_txn_ptr(txn_, obj);
  const Value& v = p ? *p : kZeroValue;
  if (record_sets_) reads_.emplace_back(obj, v);
  return as_int(v);
}

void TxnContext::write(ObjectId obj, Value value) {
  check_scope(obj);
  if (record_sets_) writes_.emplace_back(obj, value);
  store_.write(txn_, obj, std::move(value));
}

ProcId ProcedureRegistry::add(std::string name, Procedure fn) {
  OTPDB_CHECK(fn != nullptr);
  procs_.push_back(Entry{std::move(name), std::move(fn)});
  return static_cast<ProcId>(procs_.size() - 1);
}

const Procedure& ProcedureRegistry::get(ProcId id) const {
  OTPDB_CHECK_MSG(id < procs_.size(), "unknown stored procedure");
  return procs_[id].fn;
}

const std::string& ProcedureRegistry::name(ProcId id) const {
  OTPDB_CHECK(id < procs_.size());
  return procs_[id].name;
}

}  // namespace otpdb
