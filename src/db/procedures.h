// Stored procedures and their execution contexts (paper Section 2.2).
//
// All data access goes through pre-declared stored procedures; one transaction
// corresponds to one stored procedure invocation. Procedures must be
// deterministic functions of (arguments, database state) - they execute
// independently at every site and must produce identical writes everywhere.
// The TxnContext enforces the conflict-class discipline of Section 2.3: an
// update transaction may only touch objects of its declared scope - its own
// class partition (base model), the union of the partitions of a pre-declared
// class *set* (multi-class transactions, Section 6's fine-granularity
// direction), or an explicit object access set (the lock-table engine).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "db/partition.h"
#include "db/value.h"
#include "db/versioned_store.h"
#include "net/message.h"
#include "util/types.h"

namespace otpdb {

/// Arguments marshalled inside the TO-broadcast transaction request.
struct TxnArgs {
  std::vector<std::int64_t> ints;
  std::vector<std::string> strings;
};

/// Execution context handed to a stored procedure. The context enforces the
/// transaction's access scope: either its conflict-class partition (the
/// paper's Section 2.3 model) or an explicitly pre-declared object set (the
/// fine-granularity model of Section 6 / the companion report [13]).
class TxnContext {
 public:
  /// Class-scoped context: the transaction may touch its class's partition.
  /// `txn` is the site-local dense id the replica interned for this
  /// transaction (see TxnIdInterner). `record_sets` controls read/write-set
  /// logging: replicas disable it when no commit hook (checker) is installed,
  /// removing a Value copy from every read on the hot path.
  TxnContext(VersionedStore& store, const PartitionCatalog& catalog, TxnId txn, ClassId klass,
             const TxnArgs& args, bool record_sets = true)
      : store_(store),
        scope_lo_(catalog.object(klass, 0)),
        scope_hi_(scope_lo_ + catalog.objects_per_class()),
        txn_(txn),
        klass_(klass),
        args_(args),
        record_sets_(record_sets) {}

  /// Class-set-scoped context: the transaction may touch the union of the
  /// partitions of `classes` (ascending, duplicate-free; must stay alive for
  /// the duration of the execution). Used for multi-class (cross-partition)
  /// update transactions.
  TxnContext(VersionedStore& store, const PartitionCatalog& catalog,
             std::span<const ClassId> classes, TxnId txn, const TxnArgs& args,
             bool record_sets = true)
      : store_(store),
        catalog_(&catalog),
        classes_(classes),
        txn_(txn),
        klass_(classes.front()),
        args_(args),
        record_sets_(record_sets) {}

  /// Set-scoped context: the transaction may touch exactly `access_set`.
  TxnContext(VersionedStore& store, const std::vector<ObjectId>& access_set, TxnId txn,
             ClassId klass, const TxnArgs& args, bool record_sets = true)
      : store_(store),
        access_set_(&access_set),
        txn_(txn),
        klass_(klass),
        args_(args),
        record_sets_(record_sets) {}

  /// Reads an object within this transaction's scope (own writes visible).
  /// Unwritten objects read as integer 0.
  Value read(ObjectId obj);
  std::int64_t read_int(ObjectId obj);

  /// Writes an object within this transaction's scope (provisional until
  /// commit).
  void write(ObjectId obj, Value value);

  const TxnArgs& args() const { return args_; }
  /// The primary conflict class (the first covered class for multi-class
  /// transactions - procedures spanning classes should address objects via
  /// explicit ids or classes carried in their arguments).
  ClassId conflict_class() const { return klass_; }
  /// All covered classes; a single-element span for class-scoped contexts,
  /// empty for set-scoped (lock-table) contexts.
  std::span<const ClassId> covered_classes() const {
    return classes_.empty() && access_set_ == nullptr ? std::span<const ClassId>(&klass_, 1)
                                                      : classes_;
  }
  TxnId txn_id() const { return txn_; }

  /// Read/write sets accumulated during execution (checker support).
  const std::vector<std::pair<ObjectId, Value>>& reads() const { return reads_; }
  const std::vector<std::pair<ObjectId, Value>>& writes() const { return writes_; }
  /// Move-out variants for the replica's per-execution record keeping.
  std::vector<std::pair<ObjectId, Value>> take_reads() { return std::move(reads_); }
  std::vector<std::pair<ObjectId, Value>> take_writes() { return std::move(writes_); }

 private:
  void check_scope(ObjectId obj) const;

  VersionedStore& store_;
  ObjectId scope_lo_ = 0;  // class scope: [scope_lo_, scope_hi_) (precomputed,
  ObjectId scope_hi_ = 0;  // so the per-access check divides nothing)
  const PartitionCatalog* catalog_ = nullptr;          // class-set scope
  std::span<const ClassId> classes_;                   // class-set scope
  const std::vector<ObjectId>* access_set_ = nullptr;  // set scope
  TxnId txn_ = kInvalidTxnId;
  ClassId klass_;
  const TxnArgs& args_;
  bool record_sets_ = true;
  std::vector<std::pair<ObjectId, Value>> reads_;
  std::vector<std::pair<ObjectId, Value>> writes_;
};

using Procedure = std::function<void(TxnContext&)>;

/// Site-independent registry of stored procedures. Must be populated
/// identically at every site before the run (procedures are pre-declared).
class ProcedureRegistry {
 public:
  /// Registers a procedure; returns its id. Ids are assigned densely from 0.
  ProcId add(std::string name, Procedure fn);

  const Procedure& get(ProcId id) const;
  const std::string& name(ProcId id) const;
  std::size_t size() const { return procs_.size(); }

 private:
  struct Entry {
    std::string name;
    Procedure fn;
  };
  std::vector<Entry> procs_;
};

}  // namespace otpdb
