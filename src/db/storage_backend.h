// Pluggable storage tier behind the replica engines.
//
// Every engine keeps executing reads/provisional-writes against the
// in-memory VersionedStore (the multi-version cache is the read path either
// way); what a backend changes is what happens at the commit/abort boundary:
//
//   MemoryBackend  - forwards straight to VersionedStore. Bit-for-bit the
//                    pre-refactor behavior: no extra events, no I/O.
//   DurableStore   - additionally encodes each commit into a TO-ordered
//                    write-ahead log with group-commit fsync batching,
//                    periodic checkpoints and log truncation, and can
//                    rebuild the committed state from disk after a cold
//                    restart (see db/durable_store.h).
//
// Backends are per-site objects owned by the Cluster; the engine sees only
// this interface plus the embedded VersionedStore.
#pragma once

#include <filesystem>
#include <memory>
#include <span>
#include <vector>

#include "db/io_shim.h"
#include "db/versioned_store.h"
#include "net/message.h"  // SiteId
#include "sim/simulator.h"
#include "util/assert.h"
#include "util/types.h"

namespace otpdb {

struct WalStats;  // db/durable_store.h

enum class StorageBackendKind { memory, durable };

/// Durable-tier health, surfaced instead of silent failure:
///   ok       - logging normally.
///   degraded - an I/O error was hit; the tail was sealed at the last synced
///              byte and retries with backoff are in flight. Commits remain
///              visible (the paper's in-memory processing), durability lags.
///   failed   - retries exhausted or the tail could not be cleaned; logging
///              has stopped and the durable watermarks are frozen. The site
///              keeps serving from memory; a cold restart_from_disk() (after
///              the operator replaces the device) starts a fresh attempt.
enum class StorageHealth { ok, degraded, failed };

/// Per-cluster storage configuration (ClusterConfig::storage).
struct StorageConfig {
  StorageBackendKind backend = StorageBackendKind::memory;
  /// Root directory for durable state (one subdirectory per site). Empty =
  /// a fresh temp directory owned (and removed) by the Cluster.
  std::string data_dir;
  /// Group-commit window: an fsync is scheduled this long after the first
  /// unflushed commit, so every commit arriving within the window shares it.
  SimTime flush_window = 2 * kMillisecond;
  /// Modeled device latency per fsync; the next flush may not start before
  /// the previous one "completes", which is what makes batches grow under
  /// load. Deterministic sim-time, so parity digests stay bit-for-bit.
  SimTime fsync_latency = 5 * kMillisecond;
  /// Interval between checkpoint snapshots (also the truncation cadence).
  SimTime checkpoint_interval = 1 * kSecond;
  /// Segment roll threshold; smaller segments truncate at a finer grain.
  std::uint64_t segment_bytes = 1 << 20;
  /// First retry delay after a failed flush; doubles per consecutive failure.
  SimTime io_retry_backoff = 10 * kMillisecond;
  /// Consecutive failed flush attempts before the site goes
  /// StorageHealth::failed and stops logging.
  int io_max_retries = 8;
  /// Storage fault injection (EIO / torn writes / failed fsyncs); off by
  /// default. make_storage_backend() derives a per-site seed from
  /// `faults.seed`, so every site draws an independent schedule.
  StorageFaults faults;
};

/// What restart_from_disk() recovered; the Cluster feeds this to the replica
/// and broadcast layers so peer replay starts at the durable tail.
struct RecoveredState {
  /// Per-class durable commit watermark (index into [0, n_classes)).
  std::vector<TOIndex> class_watermarks;
  /// min over class_watermarks: every definitive index <= this floor is
  /// durably applied at this site, so peers need not resend those bodies.
  TOIndex durable_floor = 0;
  /// Highest commit index seen on disk (checkpoint or WAL).
  TOIndex max_index = 0;
};

class StorageBackend {
 public:
  explicit StorageBackend(std::uint64_t dense_objects) : store_(dense_objects) {}
  virtual ~StorageBackend() = default;
  StorageBackend(const StorageBackend&) = delete;
  StorageBackend& operator=(const StorageBackend&) = delete;

  /// The embedded in-memory store. Engines read / provisionally write here
  /// directly; only the commit/abort boundary goes through the virtuals.
  VersionedStore& memory() { return store_; }
  const VersionedStore& memory() const { return store_; }

  /// Installs an initial version (index 0) on the in-memory store; the
  /// durable backend also journals it so restart reproduces the schema.
  virtual void load(ObjectId obj, Value value) { store_.load(obj, std::move(value)); }

  /// Promotes `txn`'s provisional writes to committed versions at `index`.
  /// `classes` names the conflict classes the transaction covers (ascending)
  /// - the durable backend advances one watermark per class.
  virtual void commit(TxnId txn, TOIndex index, std::span<const ClassId> classes) {
    (void)classes;
    store_.commit(txn, index);
  }

  /// Discards `txn`'s provisional writes (undo - never hits the log).
  virtual void abort(TxnId txn) { store_.abort(txn); }

  /// Discards every provisional write (warm crash recovery).
  virtual void clear_provisional() { store_.clear_provisional(); }

  /// Site crashed: stop producing I/O until reopen()/restart_from_disk().
  virtual void crash() {}

  /// Warm recovery - RAM survived; resume logging where the crash left off.
  virtual void reopen() {}

  /// Cold restart - RAM lost. Rebuilds the committed state in place from
  /// checkpoint + WAL and reports how far the durable state reaches.
  /// Memory backends cannot do this.
  virtual RecoveredState restart_from_disk() {
    OTPDB_CHECK_MSG(false, "cold restart requires the durable storage backend");
    return {};
  }

  /// WAL counters, or nullptr for backends that keep no log.
  virtual const WalStats* wal_stats() const { return nullptr; }

  /// Durable-tier health; memory backends are always ok.
  virtual StorageHealth health() const { return StorageHealth::ok; }

  /// Injection counters, or nullptr when no fault injector is armed.
  virtual const IoFaultStats* io_fault_stats() const { return nullptr; }

 protected:
  VersionedStore store_;
};

/// The pre-refactor in-memory tier: every virtual is the base default.
class MemoryBackend final : public StorageBackend {
 public:
  explicit MemoryBackend(std::uint64_t dense_objects) : StorageBackend(dense_objects) {}
};

/// Builds the configured backend for one site. Durable backends live at
/// `root`/site-<id>; `root` must be the (existing) cluster data directory.
std::unique_ptr<StorageBackend> make_storage_backend(const StorageConfig& config,
                                                     Simulator& sim, SiteId site,
                                                     std::size_t n_classes,
                                                     std::uint64_t dense_objects,
                                                     const std::filesystem::path& root);

}  // namespace otpdb
