// Injectable file-I/O layer under the WAL (the storage half of the chaos
// plane - see net/fault_plan.h for the network half).
//
// All durable-tier writes (segment appends, fsyncs, checkpoint temp files,
// torn-tail truncation, the atomic rename) go through an IoEnv. The default
// is a pass-through to POSIX; FaultyIoEnv wraps it with a seeded fault
// schedule that can return EIO on writes, tear a write (persist a prefix,
// then report failure - the short-write-then-error case journaling code must
// survive), and fail fsyncs while leaving the page cache dirty (the "fsync
// lies" case: the bytes may or may not be durable). Reads are never faulted -
// recovery-scan robustness against corrupt bytes is wal_test's corruption
// fuzzing; this layer exists to test the ONLINE failure path.
//
// Determinism: each site's DurableStore owns one FaultyIoEnv with a per-site
// seed, and a site's I/O calls are issued in its own event order, so the
// fault schedule is bit-identical across engine modes and worker-thread
// counts. `max_faults` bounds the injection so every test run eventually
// makes durable progress again.
#pragma once

#include <sys/types.h>

#include <cstdint>

#include "util/rng.h"

namespace otpdb {

/// Minimal POSIX file interface the WAL writes through.
class IoEnv {
 public:
  virtual ~IoEnv() = default;

  virtual int open(const char* path, int flags, int mode);
  virtual ssize_t write(int fd, const void* buf, std::size_t n);
  virtual int fsync(int fd);
  virtual int close(int fd);
  virtual int truncate(const char* path, off_t length);
  virtual int rename(const char* from, const char* to);

  /// The shared pass-through environment (plain POSIX).
  static IoEnv& real();
};

/// Seeded storage-fault schedule (StorageConfig::faults).
struct StorageFaults {
  bool enabled = false;
  std::uint64_t seed = 7;
  /// Probability a write fails outright with EIO (nothing persisted).
  double write_error_prob = 0.0;
  /// Probability a write tears: half the buffer persists, then EIO.
  double torn_write_prob = 0.0;
  /// Probability an fsync reports EIO without syncing (bytes stay dirty).
  double fsync_error_prob = 0.0;
  /// Stop injecting after this many faults, so runs converge again.
  std::uint64_t max_faults = UINT64_MAX;
};

/// Injection counters, queryable via StorageBackend::io_fault_stats().
struct IoFaultStats {
  std::uint64_t writes_failed = 0;
  std::uint64_t torn_writes = 0;
  std::uint64_t fsyncs_failed = 0;

  std::uint64_t injected() const { return writes_failed + torn_writes + fsyncs_failed; }
};

/// IoEnv that injects the configured faults, deterministic under its seed.
class FaultyIoEnv final : public IoEnv {
 public:
  explicit FaultyIoEnv(const StorageFaults& faults) : faults_(faults), rng_(faults.seed) {}

  ssize_t write(int fd, const void* buf, std::size_t n) override;
  int fsync(int fd) override;

  const IoFaultStats& stats() const { return stats_; }

 private:
  bool armed() { return stats_.injected() < faults_.max_faults; }

  StorageFaults faults_;
  Rng rng_;
  IoFaultStats stats_;
};

}  // namespace otpdb
