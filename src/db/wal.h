// Write-ahead log file format keyed on the definitive order (TOIndex).
//
// The TO-delivered order is identical at every site, so the log needs no
// LSNs of its own: a commit record's definitive index IS its log position in
// the total order, and per-class index watermarks fully describe how far the
// durable state reaches (commits within a class follow the definitive order
// with no holes). This module is pure format + file I/O - the group-commit
// scheduling, checkpointing and truncation policy live in DurableStore.
//
// On-disk layout (all integers little-endian):
//
//   segment file  wal-<seq>.log:
//     8-byte magic "OTPWAL1\n", then framed records back to back.
//   record frame:
//     u32 payload_len | u32 crc32(payload) | payload
//   record payload:
//     u8 type (1=commit, 2=load)
//     commit: u64 index, u16 n_classes, n*u32 class,
//             u32 n_writes, n*(u64 object, value)
//     load:   u64 object, value
//   value:
//     u8 tag (0=int64, 1=double, 2=string), then u64 payload
//     (double = bit pattern) or u32 len + bytes for strings.
//
//   checkpoint file  checkpoint.bin (written to a temp name, then renamed):
//     8-byte magic "OTPCKP1\n", one frame whose payload is
//     u32 n_classes, n*u64 watermark, u64 max_index,
//     u64 n_objects, n*(u64 object, u32 n_versions, n*(u64 index, value)).
//
// Readers stop cleanly at the first torn, truncated or checksum-corrupt
// frame: everything before it is valid, everything after is discarded. That
// is exactly the group-commit contract - a crash mid-fsync loses at most the
// batch being written, never previously synced records.
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "db/io_shim.h"
#include "db/value.h"
#include "util/types.h"

namespace otpdb::wal {

/// CRC-32 (IEEE 802.3 polynomial, the zlib one) over `n` bytes.
std::uint32_t crc32(const void* data, std::size_t n);

/// One decoded commit record.
struct CommitRecord {
  TOIndex index = 0;
  std::vector<ClassId> classes;                     // covered classes, ascending
  std::vector<std::pair<ObjectId, Value>> writes;   // sorted by object
};

/// One decoded initial-load record (an index-0 version).
struct LoadRecord {
  ObjectId object = 0;
  Value value;
};

/// Appends a framed commit record to `out`. `classes` must be non-empty;
/// `writes` is the transaction's write-set sorted by object.
void append_commit(std::vector<std::uint8_t>& out, TOIndex index,
                   std::span<const ClassId> classes,
                   std::span<const std::pair<ObjectId, Value>> writes);

/// Appends a framed load record to `out`.
void append_load(std::vector<std::uint8_t>& out, ObjectId object, const Value& value);

/// Record callbacks for a segment scan. Either may be null.
struct ScanCallbacks {
  std::function<void(const CommitRecord&)> on_commit;
  std::function<void(const LoadRecord&)> on_load;
};

/// Result of scanning one segment file.
struct ScanResult {
  std::uint64_t valid_bytes = 0;  ///< length of the valid prefix (incl. magic)
  std::uint64_t records = 0;      ///< records decoded from the valid prefix
  bool clean = true;              ///< false when a torn/corrupt tail was cut off
  TOIndex max_index = 0;          ///< highest commit index in the valid prefix
};

/// Scans a segment, invoking `callbacks` per valid record in file order, and
/// stops at the first torn or corrupt frame. A missing file scans as empty
/// and clean; a bad magic scans as zero records, not clean.
ScanResult scan_segment(const std::filesystem::path& path, const ScanCallbacks& callbacks);

/// Name of segment `seq` ("wal-0000000001.log").
std::string segment_name(std::uint64_t seq);

/// Appends raw bytes to a log segment with write + fsync through an IoEnv
/// (injectable for storage-fault testing - see db/io_shim.h).
/// One writer owns one segment at a time.
class SegmentWriter {
 public:
  SegmentWriter() = default;
  ~SegmentWriter() { close(); }
  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  /// Opens (creating if needed) `path` for append; writes the magic into a
  /// fresh file. Returns false on I/O error. `io` must outlive the writer.
  bool open(const std::filesystem::path& path, IoEnv& io = IoEnv::real());
  void close();
  bool is_open() const { return fd_ >= 0; }

  /// write() + fsync() of one group-commit batch. Returns false on I/O
  /// error; size() then still reports the last-known-good synced length (a
  /// failed write may have persisted a garbage prefix beyond it - truncate
  /// to size() before appending again).
  bool append_and_sync(const std::uint8_t* data, std::size_t n);

  /// Synced bytes in the segment (magic included).
  std::uint64_t size() const { return size_; }

 private:
  int fd_ = -1;
  std::uint64_t size_ = 0;
  IoEnv* io_ = nullptr;
};

/// Truncates `path` to `valid_bytes` (cutting a torn tail before re-append).
bool truncate_file(const std::filesystem::path& path, std::uint64_t valid_bytes,
                   IoEnv& io = IoEnv::real());

/// Serialized checkpoint payload: per-class watermarks + full version chains.
struct CheckpointData {
  std::vector<TOIndex> class_watermarks;
  TOIndex max_index = 0;
  std::vector<std::pair<ObjectId, std::vector<std::pair<TOIndex, Value>>>> chains;
};

/// Atomically replaces `path` with the serialized checkpoint: writes a temp
/// file in the same directory, fsyncs it, then renames over `path`. Returns
/// false on I/O error (the previous checkpoint, if any, survives).
bool write_checkpoint(const std::filesystem::path& path, const CheckpointData& data,
                      IoEnv& io = IoEnv::real());

/// Reads and validates a checkpoint. Returns false (and leaves `out` empty)
/// when the file is missing, torn or checksum-corrupt - the caller then
/// replays the WAL from scratch.
bool read_checkpoint(const std::filesystem::path& path, CheckpointData& out);

}  // namespace otpdb::wal
