#include "db/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstring>
#include <fstream>
#include <span>

#include "util/assert.h"

namespace otpdb::wal {
namespace {

constexpr char kSegmentMagic[8] = {'O', 'T', 'P', 'W', 'A', 'L', '1', '\n'};
constexpr char kCheckpointMagic[8] = {'O', 'T', 'P', 'C', 'K', 'P', '1', '\n'};
constexpr std::uint8_t kRecordCommit = 1;
constexpr std::uint8_t kRecordLoad = 2;
constexpr std::uint8_t kTagInt64 = 0;
constexpr std::uint8_t kTagDouble = 1;
constexpr std::uint8_t kTagString = 2;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

// --- little-endian encode helpers -----------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_value(std::vector<std::uint8_t>& out, const Value& value) {
  if (const auto* i = std::get_if<std::int64_t>(&value)) {
    put_u8(out, kTagInt64);
    put_u64(out, static_cast<std::uint64_t>(*i));
  } else if (const auto* d = std::get_if<double>(&value)) {
    put_u8(out, kTagDouble);
    std::uint64_t bits;
    std::memcpy(&bits, d, sizeof(bits));
    put_u64(out, bits);
  } else {
    const auto& s = std::get<std::string>(value);
    put_u8(out, kTagString);
    put_u32(out, static_cast<std::uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
  }
}

// --- bounds-checked decode cursor -----------------------------------------

// Every get_* returns false instead of reading past `end`, so a truncated
// or garbage payload can never walk off the buffer (the corruption tests
// run this under ASan).
struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;

  bool get_u8(std::uint8_t& v) {
    if (end - p < 1) return false;
    v = *p++;
    return true;
  }
  bool get_u16(std::uint16_t& v) {
    if (end - p < 2) return false;
    v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    p += 2;
    return true;
  }
  bool get_u32(std::uint32_t& v) {
    if (end - p < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    return true;
  }
  bool get_u64(std::uint64_t& v) {
    if (end - p < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    return true;
  }
  bool get_value(Value& v) {
    std::uint8_t tag;
    if (!get_u8(tag)) return false;
    switch (tag) {
      case kTagInt64: {
        std::uint64_t bits;
        if (!get_u64(bits)) return false;
        v = static_cast<std::int64_t>(bits);
        return true;
      }
      case kTagDouble: {
        std::uint64_t bits;
        if (!get_u64(bits)) return false;
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        v = d;
        return true;
      }
      case kTagString: {
        std::uint32_t len;
        if (!get_u32(len)) return false;
        if (static_cast<std::size_t>(end - p) < len) return false;
        v = std::string(reinterpret_cast<const char*>(p), len);
        p += len;
        return true;
      }
      default:
        return false;
    }
  }
};

bool decode_commit(Cursor& cur, CommitRecord& rec) {
  std::uint64_t index;
  std::uint16_t n_classes;
  if (!cur.get_u64(index) || !cur.get_u16(n_classes)) return false;
  rec.index = index;
  rec.classes.clear();
  rec.classes.reserve(n_classes);
  for (std::uint16_t i = 0; i < n_classes; ++i) {
    std::uint32_t klass;
    if (!cur.get_u32(klass)) return false;
    rec.classes.push_back(klass);
  }
  std::uint32_t n_writes;
  if (!cur.get_u32(n_writes)) return false;
  rec.writes.clear();
  rec.writes.reserve(n_writes);
  for (std::uint32_t i = 0; i < n_writes; ++i) {
    std::uint64_t object;
    Value value;
    if (!cur.get_u64(object) || !cur.get_value(value)) return false;
    rec.writes.emplace_back(object, std::move(value));
  }
  return cur.p == cur.end;  // trailing bytes = corrupt payload
}

bool decode_load(Cursor& cur, LoadRecord& rec) {
  std::uint64_t object;
  if (!cur.get_u64(object) || !cur.get_value(rec.value)) return false;
  rec.object = object;
  return cur.p == cur.end;
}

void frame(std::vector<std::uint8_t>& out, const std::vector<std::uint8_t>& payload) {
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::uint32_t read_u32le(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

bool read_all(const std::filesystem::path& path, std::vector<std::uint8_t>& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

// Walks frames after the magic, dispatching each intact record. Returns the
// valid prefix; stops (clean=false) at the first torn or corrupt frame.
ScanResult scan_frames(std::span<const std::uint8_t> bytes, const ScanCallbacks& callbacks) {
  ScanResult result;
  std::size_t off = sizeof(kSegmentMagic);
  result.valid_bytes = off;
  CommitRecord commit;
  LoadRecord load;
  while (off < bytes.size()) {
    if (bytes.size() - off < 8) {
      result.clean = false;
      break;
    }
    const std::uint32_t len = read_u32le(bytes.data() + off);
    const std::uint32_t crc = read_u32le(bytes.data() + off + 4);
    if (bytes.size() - off - 8 < len) {
      result.clean = false;  // torn tail: frame header promises more bytes
      break;
    }
    const std::uint8_t* payload = bytes.data() + off + 8;
    if (crc32(payload, len) != crc) {
      result.clean = false;
      break;
    }
    Cursor cur{payload, payload + len};
    std::uint8_t type;
    bool ok = cur.get_u8(type);
    if (ok && type == kRecordCommit) {
      ok = decode_commit(cur, commit);
      if (ok) {
        result.max_index = std::max(result.max_index, commit.index);
        if (callbacks.on_commit) callbacks.on_commit(commit);
      }
    } else if (ok && type == kRecordLoad) {
      ok = decode_load(cur, load);
      if (ok && callbacks.on_load) callbacks.on_load(load);
    } else {
      ok = false;
    }
    if (!ok) {
      result.clean = false;  // crc passed but payload malformed: still stop
      break;
    }
    off += 8 + len;
    result.valid_bytes = off;
    ++result.records;
  }
  return result;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xffffffffu;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xff] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

void append_commit(std::vector<std::uint8_t>& out, TOIndex index,
                   std::span<const ClassId> classes,
                   std::span<const std::pair<ObjectId, Value>> writes) {
  OTPDB_CHECK_MSG(!classes.empty(), "commit record needs at least one class");
  std::vector<std::uint8_t> payload;
  payload.reserve(32 + writes.size() * 24);
  put_u8(payload, kRecordCommit);
  put_u64(payload, index);
  put_u16(payload, static_cast<std::uint16_t>(classes.size()));
  for (ClassId c : classes) put_u32(payload, c);
  put_u32(payload, static_cast<std::uint32_t>(writes.size()));
  for (const auto& [object, value] : writes) {
    put_u64(payload, object);
    put_value(payload, value);
  }
  frame(out, payload);
}

void append_load(std::vector<std::uint8_t>& out, ObjectId object, const Value& value) {
  std::vector<std::uint8_t> payload;
  put_u8(payload, kRecordLoad);
  put_u64(payload, object);
  put_value(payload, value);
  frame(out, payload);
}

ScanResult scan_segment(const std::filesystem::path& path, const ScanCallbacks& callbacks) {
  std::vector<std::uint8_t> bytes;
  if (!read_all(path, bytes)) return {};  // missing file: empty, clean
  if (bytes.size() < sizeof(kSegmentMagic) ||
      std::memcmp(bytes.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0) {
    ScanResult bad;
    bad.clean = false;
    return bad;
  }
  return scan_frames(bytes, callbacks);
}

std::string segment_name(std::uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%010llu.log", static_cast<unsigned long long>(seq));
  return buf;
}

bool SegmentWriter::open(const std::filesystem::path& path, IoEnv& io) {
  close();
  io_ = &io;
  fd_ = io_->open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) return false;
  const off_t existing = ::lseek(fd_, 0, SEEK_END);
  if (existing > 0) {
    size_ = static_cast<std::uint64_t>(existing);
    return true;
  }
  size_ = 0;
  if (!append_and_sync(reinterpret_cast<const std::uint8_t*>(kSegmentMagic),
                       sizeof(kSegmentMagic))) {
    // A torn magic write would leave a file that scans as "bad magic, not
    // clean" - worse than no file. The caller retries open() later.
    close();
    std::error_code ec;
    std::filesystem::remove(path, ec);
    return false;
  }
  return true;
}

void SegmentWriter::close() {
  if (fd_ >= 0) {
    io_->close(fd_);
    fd_ = -1;
  }
  size_ = 0;
}

bool SegmentWriter::append_and_sync(const std::uint8_t* data, std::size_t n) {
  OTPDB_CHECK_MSG(fd_ >= 0, "append on a closed WAL segment");
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w = io_->write(fd_, data + done, n - done);
    if (w < 0) return false;
    done += static_cast<std::size_t>(w);
  }
  if (io_->fsync(fd_) != 0) return false;
  size_ += n;
  return true;
}

bool truncate_file(const std::filesystem::path& path, std::uint64_t valid_bytes, IoEnv& io) {
  return io.truncate(path.c_str(), static_cast<off_t>(valid_bytes)) == 0;
}

bool write_checkpoint(const std::filesystem::path& path, const CheckpointData& data, IoEnv& io) {
  std::vector<std::uint8_t> payload;
  put_u32(payload, static_cast<std::uint32_t>(data.class_watermarks.size()));
  for (TOIndex w : data.class_watermarks) put_u64(payload, w);
  put_u64(payload, data.max_index);
  put_u64(payload, data.chains.size());
  for (const auto& [object, versions] : data.chains) {
    put_u64(payload, object);
    put_u32(payload, static_cast<std::uint32_t>(versions.size()));
    for (const auto& [index, value] : versions) {
      put_u64(payload, index);
      put_value(payload, value);
    }
  }

  std::vector<std::uint8_t> bytes;
  bytes.reserve(sizeof(kCheckpointMagic) + 8 + payload.size());
  bytes.insert(bytes.end(), kCheckpointMagic, kCheckpointMagic + sizeof(kCheckpointMagic));
  frame(bytes, payload);

  const std::filesystem::path tmp = path.string() + ".tmp";
  {
    const int fd = io.open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return false;
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t w = io.write(fd, bytes.data() + done, bytes.size() - done);
      if (w < 0) {
        io.close(fd);
        return false;
      }
      done += static_cast<std::size_t>(w);
    }
    const bool synced = io.fsync(fd) == 0;
    io.close(fd);
    if (!synced) return false;
  }
  // The failed-rename (or failed-fsync) path leaves the temp file behind and
  // the previous checkpoint intact - recovery ignores "*.tmp".
  return io.rename(tmp.c_str(), path.c_str()) == 0;
}

bool read_checkpoint(const std::filesystem::path& path, CheckpointData& out) {
  out = {};
  std::vector<std::uint8_t> bytes;
  if (!read_all(path, bytes)) return false;
  if (bytes.size() < sizeof(kCheckpointMagic) + 8 ||
      std::memcmp(bytes.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) != 0) {
    return false;
  }
  const std::uint8_t* frame_start = bytes.data() + sizeof(kCheckpointMagic);
  const std::uint32_t len = read_u32le(frame_start);
  const std::uint32_t crc = read_u32le(frame_start + 4);
  if (bytes.size() - sizeof(kCheckpointMagic) - 8 < len) return false;
  const std::uint8_t* payload = frame_start + 8;
  if (crc32(payload, len) != crc) return false;

  Cursor cur{payload, payload + len};
  std::uint32_t n_classes;
  if (!cur.get_u32(n_classes)) return false;
  out.class_watermarks.resize(n_classes);
  for (std::uint32_t i = 0; i < n_classes; ++i) {
    std::uint64_t w;
    if (!cur.get_u64(w)) { out = {}; return false; }
    out.class_watermarks[i] = w;
  }
  std::uint64_t max_index, n_objects;
  if (!cur.get_u64(max_index) || !cur.get_u64(n_objects)) { out = {}; return false; }
  out.max_index = max_index;
  out.chains.reserve(n_objects);
  for (std::uint64_t i = 0; i < n_objects; ++i) {
    std::uint64_t object;
    std::uint32_t n_versions;
    if (!cur.get_u64(object) || !cur.get_u32(n_versions)) { out = {}; return false; }
    std::vector<std::pair<TOIndex, Value>> versions;
    versions.reserve(n_versions);
    for (std::uint32_t v = 0; v < n_versions; ++v) {
      std::uint64_t index;
      Value value;
      if (!cur.get_u64(index) || !cur.get_value(value)) { out = {}; return false; }
      versions.emplace_back(index, std::move(value));
    }
    out.chains.emplace_back(object, std::move(versions));
  }
  if (cur.p != cur.end) { out = {}; return false; }
  return true;
}

}  // namespace otpdb::wal
