// Database value type.
//
// Stored objects hold a small tagged value (integer, real, or text) - enough
// for the stored-procedure workloads of the paper (account balances, stock
// counters, order records) while keeping versions cheap to copy.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace otpdb {

using Value = std::variant<std::int64_t, double, std::string>;

/// Integer view of a value (doubles truncate, strings parse loosely as 0).
inline std::int64_t as_int(const Value& v) {
  if (const auto* i = std::get_if<std::int64_t>(&v)) return *i;
  if (const auto* d = std::get_if<double>(&v)) return static_cast<std::int64_t>(*d);
  return 0;
}

inline double as_double(const Value& v) {
  if (const auto* d = std::get_if<double>(&v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v)) return static_cast<double>(*i);
  return 0.0;
}

inline std::string to_display_string(const Value& v) {
  if (const auto* s = std::get_if<std::string>(&v)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&v)) return std::to_string(*i);
  return std::to_string(std::get<double>(v));
}

}  // namespace otpdb
