// Multi-version in-memory storage engine.
//
// Each object carries a chain of committed versions stamped with the
// definitive index (TOIndex) of the creating transaction - the version
// labeling the paper's Section 5 relies on for query snapshots. Executing
// transactions write *provisional* versions visible only to themselves;
// commit(txn, index) stamps them into the committed chain, abort(txn) drops
// them (the paper's "undo using traditional recovery techniques" - provisional
// versions double as the undo log).
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "db/value.h"
#include "net/message.h"
#include "util/types.h"

namespace otpdb {

class VersionedStore {
 public:
  struct Version {
    TOIndex index = 0;  // 0 = initial load
    Value value;
  };

  /// Installs an initial version (index 0). Used to load the schema before the
  /// run; all sites must load identically.
  void load(ObjectId obj, Value value);

  /// Latest committed value, ignoring snapshots. nullopt if never written.
  std::optional<Value> read_latest(ObjectId obj) const;

  /// Latest committed value with version index <= max_index (snapshot read).
  std::optional<Value> read_snapshot(ObjectId obj, TOIndex max_index) const;

  /// Transaction-scoped read: the transaction's own provisional write if any,
  /// else the latest committed value.
  std::optional<Value> read_for_txn(const MsgId& txn, ObjectId obj) const;

  /// Provisional write by an executing transaction.
  void write(const MsgId& txn, ObjectId obj, Value value);

  /// Promotes the transaction's provisional writes to committed versions
  /// stamped `index`. Per-object version indices must remain ascending (the
  /// OTP engine guarantees this: commits within a class follow the definitive
  /// order and classes own disjoint objects).
  void commit(const MsgId& txn, TOIndex index);

  /// Discards the transaction's provisional writes (undo).
  void abort(const MsgId& txn);

  /// Discards every provisional write (crash recovery: provisional versions
  /// live in volatile memory; only committed versions are durable).
  void clear_provisional() { provisional_.clear(); }

  /// The transaction's current provisional write set (for history recording).
  std::vector<std::pair<ObjectId, Value>> provisional_writes(const MsgId& txn) const;

  /// Version-chain statistics (benches / GC tests).
  std::size_t object_count() const { return chains_.size(); }
  std::size_t total_versions() const;

  /// Garbage-collects versions no snapshot can reach: for each object, drops
  /// all versions with index < horizon except the newest such version (which
  /// a snapshot at `horizon` may still read). Returns versions dropped.
  std::size_t prune(TOIndex horizon);

 private:
  std::unordered_map<ObjectId, std::vector<Version>> chains_;
  std::unordered_map<MsgId, std::map<ObjectId, Value>> provisional_;
};

}  // namespace otpdb
