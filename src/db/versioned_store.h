// Multi-version in-memory storage engine.
//
// Each object carries a chain of committed versions stamped with the
// definitive index (TOIndex) of the creating transaction - the version
// labeling the paper's Section 5 relies on for query snapshots. Executing
// transactions write *provisional* versions visible only to themselves;
// commit(txn, index) stamps them into the committed chain, abort(txn) drops
// them (the paper's "undo using traditional recovery techniques" - provisional
// versions double as the undo log).
//
// Hot-path layout (PR 1):
//  * Transactions are named by dense per-site TxnIds (see TxnIdInterner), so
//    the provisional table is a flat vector indexed by TxnId - no hashing.
//  * A provisional write-set is a small flat vector of (object, value) pairs
//    in insertion order, deduplicated by linear scan (write-sets are almost
//    always a handful of entries) and sorted by object on first use of the
//    commit path. Retired TxnId slots keep their vector capacity, so steady
//    state runs allocation-free.
//  * Object version chains live in a dense vector directly indexed by
//    ObjectId for the catalog's contiguous id space, with a hash-map fallback
//    for sparse ids beyond it. read_latest/read_for_txn have
//    pointer-returning variants so hot readers skip the Value copy.
#pragma once

#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "db/value.h"
#include "util/types.h"

namespace otpdb {

class VersionedStore {
 public:
  struct Version {
    TOIndex index = 0;  // 0 = initial load
    Value value;
  };

  /// One provisional write: (object, value). Sorted by object on commit.
  using WriteEntry = std::pair<ObjectId, Value>;

  /// `dense_objects` sizes the directly-indexed chain table: ids in
  /// [0, dense_objects) get array slots, larger ids fall back to a hash map.
  /// Pass the PartitionCatalog's object_count() for an all-dense store.
  explicit VersionedStore(std::uint64_t dense_objects = kDefaultDenseObjects);

  /// Installs an initial version (index 0). Used to load the schema before the
  /// run; all sites must load identically.
  void load(ObjectId obj, Value value);

  /// Latest committed value, ignoring snapshots. nullptr if never written.
  const Value* read_latest_ptr(ObjectId obj) const {
    const Chain* chain = chain_of(obj);
    return chain && !chain->empty() ? &chain->back().value : nullptr;
  }
  std::optional<Value> read_latest(ObjectId obj) const {
    const Value* v = read_latest_ptr(obj);
    return v ? std::optional<Value>(*v) : std::nullopt;
  }

  /// Latest committed value with version index <= max_index (snapshot read).
  const Value* read_snapshot_ptr(ObjectId obj, TOIndex max_index) const;
  std::optional<Value> read_snapshot(ObjectId obj, TOIndex max_index) const {
    const Value* v = read_snapshot_ptr(obj, max_index);
    return v ? std::optional<Value>(*v) : std::nullopt;
  }

  /// Transaction-scoped read: the transaction's own provisional write if any,
  /// else the latest committed value. nullptr when neither exists.
  const Value* read_for_txn_ptr(TxnId txn, ObjectId obj) const;
  std::optional<Value> read_for_txn(TxnId txn, ObjectId obj) const {
    const Value* v = read_for_txn_ptr(txn, obj);
    return v ? std::optional<Value>(*v) : std::nullopt;
  }

  /// Provisional write by an executing transaction (last write per object
  /// wins within the transaction).
  void write(TxnId txn, ObjectId obj, Value value);

  /// Promotes the transaction's provisional writes to committed versions
  /// stamped `index`. Per-object version indices must remain ascending (the
  /// OTP engine guarantees this: commits within a class follow the definitive
  /// order and classes own disjoint objects).
  void commit(TxnId txn, TOIndex index);

  /// Discards the transaction's provisional writes (undo).
  void abort(TxnId txn);

  /// Discards every provisional write (crash recovery: provisional versions
  /// live in volatile memory; only committed versions are durable).
  void clear_provisional();

  /// Directly installs one committed version (recovery replay: checkpoint
  /// chains and WAL commit records, applied in file order). Idempotent - a
  /// version at or below the chain head is skipped, so a WAL record that
  /// overlaps the checkpoint re-applies harmlessly.
  void install_version(ObjectId obj, TOIndex index, Value value);

  /// Visits every non-empty committed chain (versions ascending by index).
  /// Dense ids first in ascending order, then sparse ids in map order -
  /// checkpoint writers sort the result themselves.
  void for_each_chain(
      const std::function<void(ObjectId, std::span<const Version>)>& fn) const;

  /// Drops all committed and provisional state, keeping allocations and -
  /// critically - the object's identity: references to this store held by
  /// replicas stay valid across a cold restart.
  void reset_in_place();

  /// The transaction's current provisional write set, sorted by object - a
  /// view into the store, valid until the next write/commit/abort of `txn`.
  /// Deterministic object order makes commit records site-comparable.
  std::span<const WriteEntry> provisional_writes(TxnId txn);

  /// Version-chain statistics (benches / GC tests).
  std::size_t object_count() const { return live_objects_; }
  std::size_t total_versions() const;

  /// Garbage-collects versions no snapshot can reach: for each object, drops
  /// all versions with index < horizon except the newest such version (which
  /// a snapshot at `horizon` may still read). Returns versions dropped.
  std::size_t prune(TOIndex horizon);

 private:
  static constexpr std::uint64_t kDefaultDenseObjects = 1 << 16;

  using Chain = std::vector<Version>;

  struct WriteSet {
    std::vector<WriteEntry> entries;  // unique objects, insertion order
    bool sorted = false;              // entries ascending by object

    void ensure_sorted();
  };

  const Chain* chain_of(ObjectId obj) const {
    if (obj < dense_limit_) {
      return obj < dense_chains_.size() ? &dense_chains_[obj] : nullptr;
    }
    auto it = sparse_chains_.find(obj);
    return it == sparse_chains_.end() ? nullptr : &it->second;
  }
  Chain& chain_slot(ObjectId obj);

  std::uint64_t dense_limit_;
  std::vector<Chain> dense_chains_;                    // ids < dense_limit_
  std::unordered_map<ObjectId, Chain> sparse_chains_;  // ids >= dense_limit_
  std::size_t live_objects_ = 0;                       // chains holding >= 1 version
  std::vector<WriteSet> provisional_;                  // indexed by TxnId
};

}  // namespace otpdb
