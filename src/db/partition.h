// Conflict-class partitioning of the database (paper Section 2.3).
//
// Each class owns a disjoint partition of the objects; the catalog maps
// objects to classes and is identical at every site. In the paper's base
// model every update transaction belongs to exactly one conflict class and is
// serialized through that class's queue. The class-*set* generalization
// (Section 6's fine-granularity direction) lets an update cover several
// classes: it is serialized through every covered queue (entered in ascending
// class order, run while heading all of them) and may touch the union of the
// covered partitions - see TxnContext's class-set scope and
// ReplicaBase::submit_update_multi. Transactions whose class sets are
// disjoint never conflict.
#pragma once

#include <cstdint>

#include "util/assert.h"
#include "util/types.h"

namespace otpdb {

class PartitionCatalog {
 public:
  /// Builds a catalog of `n_classes` partitions of `objects_per_class` objects
  /// each. Object ids are dense: class c owns [c*opc, (c+1)*opc).
  PartitionCatalog(std::size_t n_classes, std::uint64_t objects_per_class)
      : n_classes_(n_classes), objects_per_class_(objects_per_class) {
    OTPDB_CHECK(n_classes >= 1);
    OTPDB_CHECK(objects_per_class >= 1);
  }

  std::size_t class_count() const { return n_classes_; }
  std::uint64_t objects_per_class() const { return objects_per_class_; }
  std::uint64_t object_count() const { return n_classes_ * objects_per_class_; }

  /// The conflict class owning `obj`.
  ClassId class_of(ObjectId obj) const {
    const auto klass = static_cast<ClassId>(obj / objects_per_class_);
    OTPDB_CHECK_MSG(klass < n_classes_, "object outside every partition");
    return klass;
  }

  /// The k-th object of class `klass`.
  ObjectId object(ClassId klass, std::uint64_t k) const {
    OTPDB_CHECK(klass < n_classes_);
    OTPDB_CHECK(k < objects_per_class_);
    return static_cast<ObjectId>(klass) * objects_per_class_ + k;
  }

 private:
  std::size_t n_classes_;
  std::uint64_t objects_per_class_;
};

}  // namespace otpdb
