#include "db/versioned_store.h"

#include <algorithm>

#include "util/assert.h"

namespace otpdb {

void VersionedStore::load(ObjectId obj, Value value) {
  auto& chain = chains_[obj];
  OTPDB_CHECK_MSG(chain.empty(), "load() must precede all writes");
  chain.push_back(Version{0, std::move(value)});
}

std::optional<Value> VersionedStore::read_latest(ObjectId obj) const {
  auto it = chains_.find(obj);
  if (it == chains_.end() || it->second.empty()) return std::nullopt;
  return it->second.back().value;
}

std::optional<Value> VersionedStore::read_snapshot(ObjectId obj, TOIndex max_index) const {
  auto it = chains_.find(obj);
  if (it == chains_.end() || it->second.empty()) return std::nullopt;
  const auto& chain = it->second;
  // Chains are ascending by index; find the last version with index <= max.
  auto pos = std::upper_bound(chain.begin(), chain.end(), max_index,
                              [](TOIndex m, const Version& v) { return m < v.index; });
  if (pos == chain.begin()) return std::nullopt;  // object born after the snapshot
  return std::prev(pos)->value;
}

std::optional<Value> VersionedStore::read_for_txn(const MsgId& txn, ObjectId obj) const {
  auto pit = provisional_.find(txn);
  if (pit != provisional_.end()) {
    auto wit = pit->second.find(obj);
    if (wit != pit->second.end()) return wit->second;
  }
  return read_latest(obj);
}

void VersionedStore::write(const MsgId& txn, ObjectId obj, Value value) {
  provisional_[txn][obj] = std::move(value);
}

void VersionedStore::commit(const MsgId& txn, TOIndex index) {
  OTPDB_CHECK(index > 0);
  auto pit = provisional_.find(txn);
  if (pit == provisional_.end()) return;  // read-only or write-free transaction
  for (auto& [obj, value] : pit->second) {
    auto& chain = chains_[obj];
    OTPDB_CHECK_MSG(chain.empty() || chain.back().index < index,
                    "commit indices must ascend per object");
    chain.push_back(Version{index, std::move(value)});
  }
  provisional_.erase(pit);
}

void VersionedStore::abort(const MsgId& txn) { provisional_.erase(txn); }

std::vector<std::pair<ObjectId, Value>> VersionedStore::provisional_writes(
    const MsgId& txn) const {
  std::vector<std::pair<ObjectId, Value>> out;
  auto pit = provisional_.find(txn);
  if (pit == provisional_.end()) return out;
  out.reserve(pit->second.size());
  for (const auto& [obj, value] : pit->second) out.emplace_back(obj, value);
  return out;
}

std::size_t VersionedStore::total_versions() const {
  std::size_t n = 0;
  for (const auto& [obj, chain] : chains_) n += chain.size();
  return n;
}

std::size_t VersionedStore::prune(TOIndex horizon) {
  std::size_t dropped = 0;
  for (auto& [obj, chain] : chains_) {
    // Keep the newest version with index < horizon (still visible at horizon)
    // plus everything >= horizon.
    auto first_kept = std::lower_bound(
        chain.begin(), chain.end(), horizon,
        [](const Version& v, TOIndex h) { return v.index < h; });
    if (first_kept == chain.begin()) continue;
    auto erase_end = std::prev(first_kept);  // newest pre-horizon version survives
    dropped += static_cast<std::size_t>(std::distance(chain.begin(), erase_end));
    chain.erase(chain.begin(), erase_end);
  }
  return dropped;
}

}  // namespace otpdb
