#include "db/versioned_store.h"

#include <algorithm>

#include "util/assert.h"

namespace otpdb {

VersionedStore::VersionedStore(std::uint64_t dense_objects) : dense_limit_(dense_objects) {}

VersionedStore::Chain& VersionedStore::chain_slot(ObjectId obj) {
  if (obj < dense_limit_) {
    if (obj >= dense_chains_.size()) dense_chains_.resize(static_cast<std::size_t>(obj) + 1);
    return dense_chains_[obj];
  }
  return sparse_chains_[obj];
}

void VersionedStore::load(ObjectId obj, Value value) {
  Chain& chain = chain_slot(obj);
  OTPDB_CHECK_MSG(chain.empty(), "load() must precede all writes");
  chain.push_back(Version{0, std::move(value)});
  ++live_objects_;
}

const Value* VersionedStore::read_snapshot_ptr(ObjectId obj, TOIndex max_index) const {
  const Chain* chain = chain_of(obj);
  if (chain == nullptr || chain->empty()) return nullptr;
  // Chains are ascending by index; find the last version with index <= max.
  auto pos = std::upper_bound(chain->begin(), chain->end(), max_index,
                              [](TOIndex m, const Version& v) { return m < v.index; });
  if (pos == chain->begin()) return nullptr;  // object born after the snapshot
  return &std::prev(pos)->value;
}

const Value* VersionedStore::read_for_txn_ptr(TxnId txn, ObjectId obj) const {
  if (txn < provisional_.size()) {
    const auto& entries = provisional_[txn].entries;
    for (const auto& [o, v] : entries) {
      if (o == obj) return &v;
    }
  }
  return read_latest_ptr(obj);
}

void VersionedStore::write(TxnId txn, ObjectId obj, Value value) {
  OTPDB_CHECK(txn != kInvalidTxnId);
  if (txn >= provisional_.size()) provisional_.resize(txn + 1);
  WriteSet& ws = provisional_[txn];
  // Last write per object wins; reverse linear scan (freshest entries first,
  // and write-sets are a handful of entries by design).
  for (auto it = ws.entries.rbegin(); it != ws.entries.rend(); ++it) {
    if (it->first == obj) {
      it->second = std::move(value);
      return;
    }
  }
  ws.entries.emplace_back(obj, std::move(value));
  ws.sorted = false;
}

void VersionedStore::WriteSet::ensure_sorted() {
  if (sorted) return;
  std::sort(entries.begin(), entries.end(),
            [](const WriteEntry& a, const WriteEntry& b) { return a.first < b.first; });
  sorted = true;
}

void VersionedStore::commit(TxnId txn, TOIndex index) {
  OTPDB_CHECK(index > 0);
  if (txn >= provisional_.size()) return;  // read-only or write-free transaction
  WriteSet& ws = provisional_[txn];
  ws.ensure_sorted();  // deterministic per-object commit order across sites
  for (auto& [obj, value] : ws.entries) {
    Chain& chain = chain_slot(obj);
    OTPDB_CHECK_MSG(chain.empty() || chain.back().index < index,
                    "commit indices must ascend per object");
    if (chain.empty()) ++live_objects_;
    chain.push_back(Version{index, std::move(value)});
  }
  ws.entries.clear();  // keeps capacity: the TxnId slot is recycled
  ws.sorted = false;
}

void VersionedStore::abort(TxnId txn) {
  if (txn >= provisional_.size()) return;
  provisional_[txn].entries.clear();
  provisional_[txn].sorted = false;
}

void VersionedStore::clear_provisional() {
  for (WriteSet& ws : provisional_) {
    ws.entries.clear();
    ws.sorted = false;
  }
}

void VersionedStore::install_version(ObjectId obj, TOIndex index, Value value) {
  Chain& chain = chain_slot(obj);
  if (!chain.empty() && chain.back().index >= index) return;  // already installed
  if (chain.empty()) ++live_objects_;
  chain.push_back(Version{index, std::move(value)});
}

void VersionedStore::for_each_chain(
    const std::function<void(ObjectId, std::span<const Version>)>& fn) const {
  for (ObjectId obj = 0; obj < dense_chains_.size(); ++obj) {
    if (!dense_chains_[obj].empty()) fn(obj, dense_chains_[obj]);
  }
  // Canonical ascending-ObjectId traversal of the sparse tail. This feeds
  // checkpoint serialization (DurableStore::do_checkpoint), so hash-order
  // emission would make checkpoint bytes a function of unordered_map
  // internals rather than of committed state. Called at checkpoint/digest
  // cadence, so the sort is off the hot path.
  std::vector<ObjectId> sparse_ids;
  sparse_ids.reserve(sparse_chains_.size());
  // DETLINT(order-insensitive): keys are collected then sorted; callbacks
  // only fire in the sorted pass below.
  for (const auto& [obj, chain] : sparse_chains_) {
    if (!chain.empty()) sparse_ids.push_back(obj);
  }
  std::sort(sparse_ids.begin(), sparse_ids.end());
  for (ObjectId obj : sparse_ids) fn(obj, sparse_chains_.at(obj));
}

void VersionedStore::reset_in_place() {
  for (Chain& chain : dense_chains_) chain.clear();
  sparse_chains_.clear();
  live_objects_ = 0;
  clear_provisional();
}

std::span<const VersionedStore::WriteEntry> VersionedStore::provisional_writes(TxnId txn) {
  if (txn >= provisional_.size()) return {};
  WriteSet& ws = provisional_[txn];
  ws.ensure_sorted();
  return ws.entries;
}

std::size_t VersionedStore::total_versions() const {
  std::size_t n = 0;
  for (const auto& chain : dense_chains_) n += chain.size();
  // DETLINT(order-insensitive): commutative sum over all chains; no digest,
  // send, or cross-site-compared stat sees the visitation order.
  for (const auto& [obj, chain] : sparse_chains_) n += chain.size();
  return n;
}

std::size_t VersionedStore::prune(TOIndex horizon) {
  std::size_t dropped = 0;
  const auto prune_chain = [&](Chain& chain) {
    // Keep the newest version with index < horizon (still visible at horizon)
    // plus everything >= horizon.
    auto first_kept = std::lower_bound(
        chain.begin(), chain.end(), horizon,
        [](const Version& v, TOIndex h) { return v.index < h; });
    if (first_kept == chain.begin()) return;
    auto erase_end = std::prev(first_kept);  // newest pre-horizon version survives
    dropped += static_cast<std::size_t>(std::distance(chain.begin(), erase_end));
    chain.erase(chain.begin(), erase_end);
  };
  for (auto& chain : dense_chains_) prune_chain(chain);
  // DETLINT(order-insensitive): each chain is pruned independently against
  // the same horizon and `dropped` is a commutative sum; the final store
  // state and return value are identical for every visitation order.
  for (auto& [obj, chain] : sparse_chains_) prune_chain(chain);
  return dropped;
}

}  // namespace otpdb
