#include "db/io_shim.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace otpdb {

int IoEnv::open(const char* path, int flags, int mode) { return ::open(path, flags, mode); }

ssize_t IoEnv::write(int fd, const void* buf, std::size_t n) { return ::write(fd, buf, n); }

int IoEnv::fsync(int fd) { return ::fsync(fd); }

int IoEnv::close(int fd) { return ::close(fd); }

int IoEnv::truncate(const char* path, off_t length) { return ::truncate(path, length); }

int IoEnv::rename(const char* from, const char* to) { return ::rename(from, to); }

IoEnv& IoEnv::real() {
  static IoEnv env;
  return env;
}

ssize_t FaultyIoEnv::write(int fd, const void* buf, std::size_t n) {
  if (faults_.enabled && armed()) {
    // Draw both faults unconditionally so the rng stream does not depend on
    // which one fires - the schedule stays stable when probabilities change.
    const bool tear = rng_.bernoulli(faults_.torn_write_prob);
    const bool fail = rng_.bernoulli(faults_.write_error_prob);
    if (tear) {
      ++stats_.torn_writes;
      // The ugly case: a prefix reaches the file, then the device errors.
      // The caller sees -1 and must assume garbage past its last-synced
      // offset.
      if (n > 1) (void)::write(fd, buf, n / 2);
      errno = EIO;
      return -1;
    }
    if (fail) {
      ++stats_.writes_failed;
      errno = EIO;
      return -1;
    }
  }
  return ::write(fd, buf, n);
}

int FaultyIoEnv::fsync(int fd) {
  if (faults_.enabled && armed() && rng_.bernoulli(faults_.fsync_error_prob)) {
    ++stats_.fsyncs_failed;
    // No real fsync: the written bytes sit in the page cache, durable only
    // by luck - exactly the ambiguity a failed fsync leaves on real disks.
    errno = EIO;
    return -1;
  }
  return ::fsync(fd);
}

}  // namespace otpdb
