#include "db/durable_store.h"

#include <algorithm>
#include <charconv>

namespace otpdb {
namespace {

constexpr const char* kCheckpointFile = "checkpoint.bin";

/// Parses the <seq> out of "wal-<seq>.log"; 0 when the name doesn't match.
std::uint64_t parse_segment_seq(const std::string& name) {
  if (name.size() < 9 || name.rfind("wal-", 0) != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return 0;
  }
  std::uint64_t seq = 0;
  const char* first = name.data() + 4;
  const char* last = name.data() + name.size() - 4;
  auto [ptr, ec] = std::from_chars(first, last, seq);
  return (ec == std::errc() && ptr == last) ? seq : 0;
}

}  // namespace

DurableStore::DurableStore(Simulator& sim, const StorageConfig& config,
                           std::filesystem::path dir, std::size_t n_classes,
                           std::uint64_t dense_objects)
    : StorageBackend(dense_objects),
      sim_(sim),
      config_(config),
      dir_(std::move(dir)),
      pending_watermark_(n_classes, 0),
      durable_watermark_(n_classes, 0) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  OTPDB_CHECK_MSG(!ec, "cannot create the durable data directory");
  if (config_.faults.enabled) faulty_io_ = std::make_unique<FaultyIoEnv>(config_.faults);
  active_seq_ = 1;
  if (!writer_.open(segment_path(active_seq_), io())) {
    // Injector (or a real EIO) hit the very first open: start degraded; the
    // first flush retries the open.
    ++stats_.io_errors;
    health_ = StorageHealth::degraded;
  }
}

DurableStore::~DurableStore() = default;

std::filesystem::path DurableStore::segment_path(std::uint64_t seq) const {
  return dir_ / wal::segment_name(seq);
}

void DurableStore::load(ObjectId obj, Value value) {
  if (health_ != StorageHealth::failed) wal::append_load(pending_, obj, value);
  store_.load(obj, std::move(value));
  schedule_flush();
}

void DurableStore::commit(TxnId txn, TOIndex index, std::span<const ClassId> classes) {
  if (health_ != StorageHealth::failed) {
    // Encode from the provisional write-set BEFORE the in-memory commit
    // consumes it. The span is already sorted by object, so the record bytes
    // are identical at every site.
    wal::append_commit(pending_, index, classes, store_.provisional_writes(txn));
    ++pending_count_;
    ++stats_.commits_logged;
    // max(), not plain assignment: the class-queue engines commit a class's
    // transactions in ascending definitive order, but the lock-table engine
    // serializes per object, so same-class commits may interleave.
    for (ClassId c : classes) {
      if (c < pending_watermark_.size()) {
        pending_watermark_[c] = std::max(pending_watermark_[c], index);
      }
    }
    pending_max_index_ = std::max(pending_max_index_, index);
  }
  store_.commit(txn, index);
  schedule_flush();
  schedule_checkpoint();
}

void DurableStore::schedule_flush() {
  if (flush_scheduled_ || down_ || health_ == StorageHealth::failed) return;
  flush_scheduled_ = true;
  const SimTime at = std::max(sim_.now() + config_.flush_window, next_flush_allowed_);
  flush_event_ = sim_.schedule_at(at, [this] {
    flush_scheduled_ = false;
    flush();
  });
}

void DurableStore::flush_now() {
  if (flush_scheduled_) {
    sim_.cancel(flush_event_);
    flush_scheduled_ = false;
  }
  flush();
}

void DurableStore::flush() {
  if (down_) return;  // crashed: the unflushed tail waits (or dies)
  if (health_ == StorageHealth::failed) return;
  if (!writer_.is_open()) {
    if (!writer_.open(segment_path(active_seq_), io())) {
      // A previous failure (or a failed roll) left the segment closed and its
      // tail already clean; nothing new was written, so just retry later.
      ++stats_.io_errors;
      note_flush_failure(/*tail_clean=*/true);
      return;
    }
    if (pending_.empty()) {
      // Retry after a failed roll with nothing buffered: the successful
      // magic write + sync is the health probe, so the store returns to ok
      // instead of sitting degraded until the next commit.
      consecutive_flush_failures_ = 0;
      health_ = StorageHealth::ok;
      return;
    }
  }
  if (pending_.empty()) return;
  if (writer_.append_and_sync(pending_.data(), pending_.size())) {
    consecutive_flush_failures_ = 0;
    health_ = StorageHealth::ok;
    ++stats_.fsyncs;
    stats_.wal_bytes += pending_.size();
    if (pending_count_ > 0) stats_.group_commit_batch.add(static_cast<double>(pending_count_));
    durable_watermark_ = pending_watermark_;
    durable_max_index_ = std::max(durable_max_index_, pending_max_index_);
    active_max_index_ = std::max(active_max_index_, pending_max_index_);
    pending_.clear();
    pending_count_ = 0;
    pending_max_index_ = 0;
    next_flush_allowed_ = sim_.now() + config_.fsync_latency;
    if (writer_.size() >= config_.segment_bytes) roll_segment();
    return;
  }
  // The write or fsync failed: a garbage prefix of the batch may sit past
  // the last synced byte (torn write), or the whole batch may be dirty in
  // the page cache (failed fsync). Either way the batch is NOT durable.
  // Close, cut the file back to the last synced length, and retry the whole
  // batch - never append after un-truncated garbage (recovery's tail-only
  // corruption invariant depends on it).
  ++stats_.io_errors;
  const std::uint64_t last_synced = writer_.size();
  writer_.close();
  const bool tail_clean = wal::truncate_file(segment_path(active_seq_), last_synced, io());
  if (tail_clean && consecutive_flush_failures_ >= 1) {
    // Second consecutive failure on this segment: assume the file (block)
    // is bad, seal it at its valid prefix and move on to a fresh one.
    sealed_.push_back(SealedSegment{active_seq_, active_max_index_});
    ++active_seq_;
    active_max_index_ = 0;
    ++stats_.segments_sealed_on_error;
  }
  note_flush_failure(tail_clean);
}

void DurableStore::note_flush_failure(bool tail_clean) {
  ++consecutive_flush_failures_;
  if (!tail_clean || consecutive_flush_failures_ > config_.io_max_retries) {
    // Un-cleanable garbage tail, or the device would not come back: stop
    // logging (anything appended now would be discarded by recovery anyway)
    // and surface it. The in-memory store keeps serving; watermarks freeze.
    health_ = StorageHealth::failed;
    pending_.clear();
    pending_count_ = 0;
    pending_max_index_ = 0;
    pending_watermark_ = durable_watermark_;
    return;
  }
  health_ = StorageHealth::degraded;
  ++stats_.io_retries;
  const int shift = std::min(consecutive_flush_failures_ - 1, 6);
  const SimTime backoff = config_.io_retry_backoff << shift;
  if (flush_scheduled_) sim_.cancel(flush_event_);
  flush_scheduled_ = true;
  flush_event_ = sim_.schedule_at(sim_.now() + backoff, [this] {
    flush_scheduled_ = false;
    flush();
  });
}

void DurableStore::roll_segment() {
  sealed_.push_back(SealedSegment{active_seq_, active_max_index_});
  writer_.close();
  ++active_seq_;
  active_max_index_ = 0;
  if (!writer_.open(segment_path(active_seq_), io())) {
    // Leave the writer closed and schedule a retry through the flush ladder
    // (degraded -> ok on a later successful open, failed if the device stays
    // bad). Without the retry an idle store would sit degraded forever.
    ++stats_.io_errors;
    note_flush_failure(/*tail_clean=*/true);
  }
}

void DurableStore::schedule_checkpoint() {
  if (checkpoint_scheduled_ || down_) return;
  checkpoint_scheduled_ = true;
  checkpoint_event_ = sim_.schedule_after(config_.checkpoint_interval, [this] {
    checkpoint_scheduled_ = false;
    if (down_) return;  // the next commit after reopen() reschedules
    do_checkpoint();
  });
}

void DurableStore::do_checkpoint() {
  // The snapshot must cover exactly the durable watermarks, so everything
  // buffered goes to disk first.
  flush_now();
  if (!pending_.empty() || health_ != StorageHealth::ok) {
    // The flush failed (or the store is failed): the in-memory chains run
    // ahead of the durable watermarks, so a snapshot now would advance the
    // checkpoint past what the log can justify. Defer to a later cycle.
    ++stats_.checkpoints_skipped;
    if (health_ != StorageHealth::failed) schedule_checkpoint();
    return;
  }

  wal::CheckpointData data;
  data.class_watermarks = durable_watermark_;
  data.max_index = durable_max_index_;
  store_.for_each_chain([&](ObjectId obj, std::span<const VersionedStore::Version> chain) {
    std::vector<std::pair<TOIndex, Value>> versions;
    versions.reserve(chain.size());
    for (const auto& v : chain) versions.emplace_back(v.index, v.value);
    data.chains.emplace_back(obj, std::move(versions));
  });
  if (!wal::write_checkpoint(dir_ / kCheckpointFile, data, io())) {
    // Temp-file + rename means the previous checkpoint survives untouched;
    // just count it and try again next cycle.
    ++stats_.io_errors;
    ++stats_.checkpoints_failed;
    schedule_checkpoint();
    return;
  }
  ++stats_.checkpoints;

  // Seal the active segment so truncation below the new floor can consider
  // everything written so far.
  roll_segment();
  TOIndex floor = durable_max_index_;
  for (TOIndex w : durable_watermark_) floor = std::min(floor, w);
  truncate_below(floor);
}

void DurableStore::truncate_below(TOIndex floor) {
  auto it = sealed_.begin();
  while (it != sealed_.end()) {
    if (it->max_index <= floor) {
      std::error_code ec;
      std::filesystem::remove(segment_path(it->seq), ec);
      ++stats_.segments_truncated;
      it = sealed_.erase(it);
    } else {
      ++it;
    }
  }
}

void DurableStore::crash() {
  // Flag only - no cross-shard event surgery. A flush or checkpoint event
  // that fires during the outage sees down_ and keeps its hands off; the
  // pending buffer stays in (simulated) RAM for a warm reopen() and is
  // dropped by a cold restart_from_disk().
  down_ = true;
}

void DurableStore::reopen() {
  down_ = false;
  if (!pending_.empty()) schedule_flush();
}

RecoveredState DurableStore::restart_from_disk() {
  down_ = false;
  // RAM is gone: the unflushed tail and the in-memory chains are lost.
  pending_.clear();
  pending_count_ = 0;
  pending_max_index_ = 0;
  if (flush_scheduled_) {
    sim_.cancel(flush_event_);
    flush_scheduled_ = false;
  }
  if (checkpoint_scheduled_) {
    sim_.cancel(checkpoint_event_);
    checkpoint_scheduled_ = false;
  }
  writer_.close();
  store_.reset_in_place();
  sealed_.clear();
  active_max_index_ = 0;
  const std::size_t n_classes = durable_watermark_.size();
  std::vector<TOIndex> watermarks(n_classes, 0);
  TOIndex max_index = 0;

  wal::CheckpointData ckpt;
  if (wal::read_checkpoint(dir_ / kCheckpointFile, ckpt)) {
    ++stats_.checkpoint_restores;
    for (const auto& [obj, versions] : ckpt.chains) {
      for (const auto& [index, value] : versions) store_.install_version(obj, index, value);
    }
    for (std::size_t c = 0; c < std::min(n_classes, ckpt.class_watermarks.size()); ++c) {
      watermarks[c] = ckpt.class_watermarks[c];
    }
    max_index = ckpt.max_index;
  }
  const std::vector<TOIndex> ckpt_watermarks = watermarks;

  // Replay segments in sequence order. The scan stops at the first torn or
  // corrupt frame; from that point on NOTHING later may be applied (later
  // segments would leave a hole in the definitive order), so the bad tail is
  // cut off and all later segments are deleted.
  std::vector<std::uint64_t> seqs;
  {
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
      const std::uint64_t seq = parse_segment_seq(entry.path().filename().string());
      if (seq > 0) seqs.push_back(seq);
    }
  }
  std::sort(seqs.begin(), seqs.end());

  wal::ScanCallbacks callbacks;
  callbacks.on_load = [&](const wal::LoadRecord& rec) {
    store_.install_version(rec.object, 0, rec.value);
  };
  callbacks.on_commit = [&](const wal::CommitRecord& rec) {
    for (const auto& [obj, value] : rec.writes) store_.install_version(obj, rec.index, value);
    bool beyond_checkpoint = false;
    for (ClassId c : rec.classes) {
      if (c >= n_classes) continue;
      if (rec.index > ckpt_watermarks[c]) beyond_checkpoint = true;
      watermarks[c] = std::max(watermarks[c], rec.index);
    }
    max_index = std::max(max_index, rec.index);
    if (beyond_checkpoint) ++stats_.replayed_commits;
  };

  std::uint64_t last_seq = 0;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    const std::uint64_t seq = seqs[i];
    const wal::ScanResult scan = wal::scan_segment(segment_path(seq), callbacks);
    last_seq = seq;
    sealed_.push_back(SealedSegment{seq, scan.max_index});
    if (!scan.clean) {
      wal::truncate_file(segment_path(seq), scan.valid_bytes);
      for (std::size_t j = i + 1; j < seqs.size(); ++j) {
        std::error_code ec;
        std::filesystem::remove(segment_path(seqs[j]), ec);
      }
      break;
    }
  }

  active_seq_ = last_seq + 1;
  // A cold restart is the operator's "fresh disk" moment: reset the health
  // ladder and try again (the injector, if armed, keeps drawing - the first
  // open can fail right here and the first flush will retry it).
  health_ = StorageHealth::ok;
  consecutive_flush_failures_ = 0;
  if (!writer_.open(segment_path(active_seq_), io())) {
    ++stats_.io_errors;
    health_ = StorageHealth::degraded;
  }

  durable_watermark_ = watermarks;
  pending_watermark_ = watermarks;
  durable_max_index_ = max_index;

  RecoveredState rs;
  rs.class_watermarks = std::move(watermarks);
  rs.max_index = max_index;
  rs.durable_floor = max_index;
  for (TOIndex w : rs.class_watermarks) rs.durable_floor = std::min(rs.durable_floor, w);
  return rs;
}

}  // namespace otpdb
