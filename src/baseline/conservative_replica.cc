#include "baseline/conservative_replica.h"

#include <algorithm>
#include <utility>

#include "util/assert.h"

namespace otpdb {

ConservativeReplica::ConservativeReplica(Simulator& sim, AtomicBroadcast& abcast,
                                         StorageBackend& storage, const PartitionCatalog& catalog,
                                         const ProcedureRegistry& registry, SiteId self)
    : sim_(sim),
      abcast_(abcast),
      backend_(storage),
      store_(storage.memory()),
      catalog_(catalog),
      registry_(registry),
      self_(self),
      queries_(sim, store_, catalog, metrics_) {
  queues_.reserve(catalog.class_count());
  for (std::size_t c = 0; c < catalog.class_count(); ++c) {
    queues_.emplace_back(static_cast<ClassId>(c));
  }
  service_clock_.assign(catalog.class_count(), 0);
  abcast_.set_callbacks(AbcastCallbacks{
      [this](const Message& msg) { on_opt_deliver(msg); },
      [this](const MsgId& id, TOIndex index) { on_to_deliver(id, index); },
      [this](std::span<const ToDelivery> batch) { on_to_deliver_batch(batch); },
  });
}

void ConservativeReplica::broadcast_request(ProcId proc, ClassId klass,
                                            std::vector<ClassId> classes, TxnArgs args,
                                            SimTime exec_duration, SimTime deadline) {
  auto request = std::make_shared<TxnRequest>();
  request->proc = proc;
  request->klass = klass;
  request->classes = std::move(classes);
  request->args = std::move(args);
  request->origin = self_;
  request->client_seq = next_client_seq_++;
  request->submitted_at = sim_.now();
  request->exec_duration = exec_duration;
  request->deadline = deadline;
  ++metrics_.submitted_updates;
  abcast_.broadcast(std::move(request));
}

SubmitResult ConservativeReplica::submit_update(ProcId proc, ClassId klass, TxnArgs args,
                                                SimTime exec_duration, SimTime deadline) {
  OTPDB_CHECK(klass < catalog_.class_count());
  const AbcastStats& ab = abcast_.stats();
  const std::uint64_t lag =
      ab.opt_delivered > ab.to_delivered ? ab.opt_delivered - ab.to_delivered : 0;
  const SubmitResult gate = ingress_gate(sim_.now(), deadline, in_flight(), lag,
                                         abcast_.backpressured(), metrics_);
  if (gate != SubmitResult::admitted) return gate;
  broadcast_request(proc, klass, {}, std::move(args), exec_duration, deadline);
  return SubmitResult::admitted;
}

SubmitResult ConservativeReplica::submit_update_multi(ProcId proc, std::vector<ClassId> classes,
                                                      TxnArgs args, SimTime exec_duration,
                                                      SimTime deadline) {
  normalize_class_set(classes);
  OTPDB_CHECK(classes.back() < catalog_.class_count());
  if (classes.size() == 1) {
    return submit_update(proc, classes.front(), std::move(args), exec_duration, deadline);
  }
  const AbcastStats& ab = abcast_.stats();
  const std::uint64_t lag =
      ab.opt_delivered > ab.to_delivered ? ab.opt_delivered - ab.to_delivered : 0;
  const SubmitResult gate = ingress_gate(sim_.now(), deadline, in_flight(), lag,
                                         abcast_.backpressured(), metrics_);
  if (gate != SubmitResult::admitted) return gate;
  const ClassId primary = classes.front();
  broadcast_request(proc, primary, std::move(classes), std::move(args), exec_duration, deadline);
  return SubmitResult::admitted;
}

void ConservativeReplica::submit_query(QueryFn fn, SimTime exec_duration, QueryDoneFn done) {
  queries_.submit(std::move(fn), exec_duration, std::move(done));
}

void ConservativeReplica::on_opt_deliver(const Message& msg) {
  // The conservative engine ignores the tentative order: it only keeps the
  // body so the TO-delivery confirmation can be matched to it.
  OTPDB_ASSERT(std::dynamic_pointer_cast<const TxnRequest>(msg.payload) != nullptr);
  auto request = std::static_pointer_cast<const TxnRequest>(msg.payload);
  // acquire() checks against duplicate Opt-delivery.
  TxnRecord* txn = txns_.acquire(msg.id, std::move(request));
  txn->opt_delivered_at = sim_.now();
  ++buffered_;
}

void ConservativeReplica::on_to_deliver(const MsgId& id, TOIndex index) {
  // Durable catch-up tombstone: the body was never resent because this
  // site's rebuilt store already holds the commit (index <= durable floor).
  TxnRecord* txn = txns_.lookup_if_present(id);
  if (txn == nullptr) {
    OTPDB_CHECK_MSG(index <= replay_floor_, "TO-delivery without prior Opt-delivery");
    queries_.advance_to_index(index);
    return;
  }
  txn->to_index = index;
  to_deliver_one(txn);
}

void ConservativeReplica::on_to_deliver_batch(std::span<const ToDelivery> batch) {
  // Per-entry handling identical to repeated on_to_deliver calls.
  for (const auto& [id, index] : batch) on_to_deliver(id, index);
}

void ConservativeReplica::to_deliver_one(TxnRecord* txn) {
  txn->to_delivered_at = sim_.now();
  txn->deliv = DeliveryState::committable;
  const auto classes = txn->request->class_span();
  queries_.advance_to_index(txn->to_index);
  for (ClassId c : classes) queries_.note_to_delivered(c, txn->to_index);

  // Deadline budget: same virtual-clock rule (and hence the same drop
  // decisions) as the OTP engine. Before the replay early return so a warm
  // restart's replay rebuilds the clock exactly.
  apply_service_clock(txn);

  // Crash-recovery replay: a TO-delivery at or below the covered classes'
  // commit watermarks was committed before the crash - acknowledge without
  // re-executing (its versions are already in the store). Nothing was
  // enqueued yet: the conservative engine enters queues only at TO-delivery,
  // and the replay runs in definitive order against empty queues.
  if (txn->to_index <= queries_.last_committed(classes.front())) {
#ifndef NDEBUG
    for (ClassId c : classes) OTPDB_ASSERT(txn->to_index <= queries_.last_committed(c));
#endif
    --buffered_;
    txns_.retire(txn);
    return;
  }

  metrics_.opt_to_gap_ns.add(static_cast<double>(txn->to_delivered_at - txn->opt_delivered_at));
  --buffered_;

  if (txn->expired) {
    // Dropped: never enters the queues (the conservative engine executes in
    // definitive order, so nothing optimistic exists to undo). Watermarks
    // still advance past the empty slot, with a wake for waiting queries.
    const TOIndex index = txn->to_index;
    ++metrics_.deadline_expired_queue;
    for (ClassId c : classes) queries_.note_committed(c, index, /*wake=*/false);
    queries_.wake_waiters(index);
    txns_.retire(txn);
    return;
  }
  ++queued_;

  // Enter every covered queue in TO-delivery order (identical at all sites),
  // ascending by class; run once heading all of them.
  for (ClassId c : classes) queues_[c].append(txn);
  try_execute(txn);
}

void ConservativeReplica::apply_service_clock(TxnRecord* txn) {
  const TxnRequest& request = *txn->request;
  SimTime vstart = request.submitted_at;
  for (ClassId c : request.class_span()) vstart = std::max(vstart, service_clock_[c]);
  const SimTime vfinish = vstart + request.exec_duration;
  if (request.deadline != 0 && vfinish > request.deadline) {
    txn->expired = true;  // dropped: occupies no service time
    return;
  }
  for (ClassId c : request.class_span()) service_clock_[c] = vfinish;
}

bool ConservativeReplica::heads_all_queues(const TxnRecord* txn) const {
  for (ClassId c : txn->request->class_span()) {
    if (queues_[c].head() != txn) return false;
  }
  return true;
}

void ConservativeReplica::try_execute(TxnRecord* txn) {
  if (txn->running || txn->exec != ExecState::active) return;
  if (!heads_all_queues(txn)) return;
  submit_execution(txn);
}

void ConservativeReplica::submit_execution(TxnRecord* txn) {
  OTPDB_CHECK(!txn->running);
  OTPDB_CHECK(heads_all_queues(txn));
  txn->running = true;
  ++txn->attempts;
  const bool record_sets = commit_hook_ != nullptr;  // checker wants read/write sets
  const TxnRequest& request = *txn->request;
  auto run_in = [&](TxnContext& ctx) {
    registry_.get(request.proc)(ctx);
    txn->last_reads = ctx.take_reads();
    txn->last_writes = ctx.take_writes();
  };
  if (request.multi_class()) {
    TxnContext ctx(store_, catalog_, request.class_span(), txn->tid, request.args, record_sets);
    run_in(ctx);
  } else {
    TxnContext ctx(store_, catalog_, txn->tid, request.klass, request.args, record_sets);
    run_in(ctx);
  }
  txn->completion =
      sim_.schedule_after(request.exec_duration, [this, txn] { on_complete(txn); });
}

void ConservativeReplica::on_complete(TxnRecord* txn) {
  txn->running = false;
  txn->exec = ExecState::executed;
  txn->executed_at = sim_.now();
  txn->committed_at = sim_.now();

  const auto classes = txn->request->class_span();
  OTPDB_CHECK(heads_all_queues(txn));

  CommitRecord record;
  if (commit_hook_) {
    record.site = self_;
    record.txn = txn->id;
    record.proc = txn->request->proc;
    record.klass = txn->request->klass;
    if (txn->request->multi_class()) {
      record.classes.assign(classes.begin(), classes.end());
    }
    record.index = txn->to_index;
    record.at = txn->committed_at;
    const auto writes = store_.provisional_writes(txn->tid);
    record.writes.assign(writes.begin(), writes.end());
    record.reads = txn->last_reads;
  }

  backend_.commit(txn->tid, txn->to_index, classes);
  for (ClassId c : classes) queues_[c].remove_head(txn);
  --queued_;

  ++metrics_.committed;
  if (txn->request->origin == self_) {
    const double latency = static_cast<double>(txn->committed_at - txn->request->submitted_at);
    metrics_.commit_latency_ns.add(latency);
    metrics_.commit_latency_percentiles_ns.add(latency);
  }
  metrics_.commit_wait_ns.add(0.0);  // commit follows execution immediately
  if (commit_hook_) commit_hook_(record);

  const TOIndex committed_index = txn->to_index;
  // Removing txn may promote the next head of every covered queue.
  for (ClassId c : classes) {
    if (TxnRecord* next = queues_[c].head()) try_execute(next);
  }
  // Advance every covered watermark before waking waiters (multi-domain
  // commit protocol of the QueryEngine).
  for (ClassId c : classes) queries_.note_committed(c, committed_index, /*wake=*/false);
  queries_.wake_waiters(committed_index);
  txns_.retire(txn);  // the record slot is recycled by the next acquire
}

void ConservativeReplica::crash_recover_reset() {
  txns_.for_each_live([this](TxnRecord* txn) {
    if (txn->running) sim_.cancel(txn->completion);
  });
  txns_.clear();
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    queues_[c] = ClassQueue(static_cast<ClassId>(c));
  }
  buffered_ = 0;
  queued_ = 0;
  backend_.clear_provisional();
  queries_.reset_volatile();
  service_clock_.assign(service_clock_.size(), 0);  // rebuilt by the replay
  admission_.reset();
}

void ConservativeReplica::restart_from_disk(std::span<const TOIndex> class_watermarks,
                                            TOIndex durable_floor) {
  crash_recover_reset();  // volatile state is equally gone on a cold restart
  queries_.restore_watermarks(class_watermarks);
  replay_floor_ = durable_floor;
}

}  // namespace otpdb
