// LazyReplica - commercial-style asynchronous replication (paper Section 1,
// citing [20]): update transactions execute and commit locally at their origin
// site with no inter-site coordination; write-sets propagate to the other
// replicas after commit and are reconciled last-writer-wins using Lamport
// timestamps.
//
// This is the performance yardstick the paper compares against: commit
// latency is just the local execution time, but global consistency is lost -
// concurrent conflicting updates commit in different orders at different
// sites, and reconciliation silently discards work ("lost updates"). The
// `conflicts_detected` counter and the 1-copy-serializability checker make
// that inconsistency measurable (bench/otp_vs_lazy).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/replica_base.h"
#include "core/txn.h"
#include "db/partition.h"
#include "db/procedures.h"
#include "db/storage_backend.h"
#include "db/txn_interner.h"
#include "db/versioned_store.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace otpdb {

class LazyReplica final : public ReplicaBase {
 public:
  LazyReplica(Simulator& sim, Network& net, StorageBackend& storage,
              const PartitionCatalog& catalog, const ProcedureRegistry& registry, SiteId self);

  /// Admission + presubmit-deadline gating only: the lazy engine has no
  /// global order, so a post-admission deadline cannot be enforced
  /// deterministically across sites and is ignored once admitted.
  SubmitResult submit_update(ProcId proc, ClassId klass, TxnArgs args, SimTime exec_duration,
                             SimTime deadline = 0) override;
  /// The lazy engine reconciles per object with no cross-site serialization
  /// at all, so a cross-partition atomic commit is outside its model: routes
  /// single-element class sets to submit_update and rejects genuine
  /// multi-class submissions loudly.
  SubmitResult submit_update_multi(ProcId proc, std::vector<ClassId> classes, TxnArgs args,
                                   SimTime exec_duration, SimTime deadline = 0) override;
  void submit_query(QueryFn fn, SimTime exec_duration, QueryDoneFn done) override;
  void set_commit_hook(CommitHook hook) override { commit_hook_ = std::move(hook); }
  std::size_t in_flight() const override {
    return queued_ + (metrics_.queries_started - metrics_.queries_done);
  }
  const ReplicaMetrics& metrics() const override { return metrics_; }
  SiteId site() const override { return self_; }

  /// Write-sets applied from remote sites.
  std::uint64_t applied_remote() const { return applied_remote_; }
  /// Reconciliation conflicts: an incoming write-set overwrote (or lost
  /// against) a version its origin had never observed - a lost update.
  std::uint64_t conflicts_detected() const { return conflicts_detected_; }

 private:
  struct LocalTxn {
    MsgId id;
    TxnId tid = kInvalidTxnId;  ///< dense id for the store's provisional table
    ProcId proc = 0;
    ClassId klass = 0;
    TxnArgs args;
    SimTime exec_duration = 0;
    SimTime submitted_at = 0;
  };

  /// Per-object "last writer" token; totally ordered (Lamport ts, origin).
  struct WriterToken {
    std::uint64_t ts = 0;
    SiteId site = 0;
    bool operator==(const WriterToken&) const = default;
    auto operator<=>(const WriterToken&) const = default;
  };

  void run_head(ClassId klass);
  void on_complete(ClassId klass);
  void on_apply(const Message& msg);

  Simulator& sim_;
  Network& net_;
  StorageBackend& backend_;
  VersionedStore& store_;  // backend_.memory(): reads + provisional writes
  const PartitionCatalog& catalog_;
  const ProcedureRegistry& registry_;
  SiteId self_;

  std::vector<std::deque<LocalTxn>> queues_;  // local FIFO per class
  TxnIdInterner interner_;
  std::size_t queued_ = 0;
  std::uint64_t next_txn_seq_ = 0;
  std::uint64_t lamport_ = 0;
  TOIndex next_local_index_ = 1;  // site-local version stamps (not a total order!)
  std::unordered_map<ObjectId, WriterToken> tokens_;

  std::uint64_t applied_remote_ = 0;
  std::uint64_t conflicts_detected_ = 0;
  ReplicaMetrics metrics_;
  CommitHook commit_hook_;
};

}  // namespace otpdb
