// ConservativeReplica - the non-optimistic baseline ([1,12,16,17] in the
// paper): transactions execute only after TO-delivery, in definitive order.
//
// Identical substrate to OtpReplica (same broadcast, store, class queues,
// snapshot queries) minus the optimism: Opt-deliveries only buffer the
// request body; execution starts at TO-delivery. Since execution order always
// equals the definitive order, there are never aborts or reorderings - but
// the full ordering latency of the broadcast sits on the critical path of
// every transaction. This is the direct ablation for the paper's overlap
// claim (bench/overlap_latency).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "abcast/abcast.h"
#include "core/class_queue.h"
#include "core/query_engine.h"
#include "core/replica_base.h"
#include "core/txn.h"
#include "core/txn_table.h"
#include "db/partition.h"
#include "db/procedures.h"
#include "db/storage_backend.h"
#include "db/versioned_store.h"
#include "sim/simulator.h"

namespace otpdb {

class ConservativeReplica final : public ReplicaBase {
 public:
  ConservativeReplica(Simulator& sim, AtomicBroadcast& abcast, StorageBackend& storage,
                      const PartitionCatalog& catalog, const ProcedureRegistry& registry,
                      SiteId self);

  SubmitResult submit_update(ProcId proc, ClassId klass, TxnArgs args, SimTime exec_duration,
                             SimTime deadline = 0) override;
  /// Cross-partition update: enters every covered class queue at TO-delivery
  /// (definitive order everywhere), executes only while heading all of them,
  /// commits across all of them atomically.
  SubmitResult submit_update_multi(ProcId proc, std::vector<ClassId> classes, TxnArgs args,
                                   SimTime exec_duration, SimTime deadline = 0) override;
  void submit_query(QueryFn fn, SimTime exec_duration, QueryDoneFn done) override;
  void set_commit_hook(CommitHook hook) override { commit_hook_ = std::move(hook); }
  std::size_t in_flight() const override {
    return buffered_ + queued_ + (metrics_.queries_started - metrics_.queries_done);
  }
  const ReplicaMetrics& metrics() const override { return metrics_; }
  SiteId site() const override { return self_; }

  TOIndex last_to_index() const { return queries_.last_to_index(); }

  /// Crash recovery: drops all volatile state (buffered bodies, queues,
  /// scheduled completions, provisional writes). Committed versions and the
  /// per-class commit watermarks survive; replayed TO-deliveries at or below
  /// a class watermark are acknowledged without re-execution.
  void crash_recover_reset() override;

  /// Cold restart over the durable tier (see ReplicaBase).
  void restart_from_disk(std::span<const TOIndex> class_watermarks,
                         TOIndex durable_floor) override;

 private:
  /// Builds and TO-broadcasts a request. `classes` is empty for single-class
  /// submissions, the normalized set (and klass its first element) otherwise.
  void broadcast_request(ProcId proc, ClassId klass, std::vector<ClassId> classes,
                         TxnArgs args, SimTime exec_duration, SimTime deadline);
  /// Deadline budget at TO-delivery (same per-class virtual service clock and
  /// hence the same drop decisions as OtpReplica::apply_service_clock).
  void apply_service_clock(TxnRecord* txn);

  void on_opt_deliver(const Message& msg);
  void on_to_deliver(const MsgId& id, TOIndex index);
  void on_to_deliver_batch(std::span<const ToDelivery> batch);
  void to_deliver_one(TxnRecord* txn);
  bool heads_all_queues(const TxnRecord* txn) const;
  void try_execute(TxnRecord* txn);
  void submit_execution(TxnRecord* txn);
  void on_complete(TxnRecord* txn);

  Simulator& sim_;
  AtomicBroadcast& abcast_;
  StorageBackend& backend_;
  VersionedStore& store_;  // backend_.memory(): reads + provisional writes
  const PartitionCatalog& catalog_;
  const ProcedureRegistry& registry_;
  SiteId self_;
  TOIndex replay_floor_ = 0;  ///< tombstone ceiling during cold-restart catch-up

  std::vector<ClassQueue> queues_;
  TxnTable txns_;
  /// Per-class virtual service clock for deadline budgets (see OtpReplica).
  std::vector<SimTime> service_clock_;
  std::size_t buffered_ = 0;  ///< Opt-delivered, not yet TO-delivered
  std::size_t queued_ = 0;    ///< TO-delivered, not yet committed

  std::uint64_t next_client_seq_ = 0;
  ReplicaMetrics metrics_;
  QueryEngine queries_;
  CommitHook commit_hook_;
};

}  // namespace otpdb
