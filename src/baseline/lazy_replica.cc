#include "baseline/lazy_replica.h"

#include <algorithm>
#include <utility>

#include "abcast/channels.h"
#include "util/assert.h"

namespace otpdb {
namespace {

struct LazyApply final : Payload {
  SiteId origin = 0;
  std::uint64_t ts = 0;  // Lamport timestamp of the committing transaction
  ClassId klass = 0;
  struct WriteEntry {
    ObjectId obj = 0;
    Value value;
    std::uint64_t prev_ts = 0;  // token the origin observed before writing
    SiteId prev_site = 0;
  };
  std::vector<WriteEntry> writes;
};

}  // namespace

LazyReplica::LazyReplica(Simulator& sim, Network& net, StorageBackend& storage,
                         const PartitionCatalog& catalog, const ProcedureRegistry& registry,
                         SiteId self)
    : sim_(sim),
      net_(net),
      backend_(storage),
      store_(storage.memory()),
      catalog_(catalog),
      registry_(registry),
      self_(self),
      queues_(catalog.class_count()) {
  net_.subscribe(self_, kChannelLazy, [this](const Message& m) { on_apply(m); });
}

SubmitResult LazyReplica::submit_update(ProcId proc, ClassId klass, TxnArgs args,
                                        SimTime exec_duration, SimTime deadline) {
  OTPDB_CHECK(klass < catalog_.class_count());
  // No ordering layer: lag is always 0 and there is no backpressure source,
  // so only queue depth and the presubmit deadline gate submissions here.
  const SubmitResult gate = ingress_gate(sim_.now(), deadline, in_flight(), /*lag=*/0,
                                         /*backpressured=*/false, metrics_);
  if (gate != SubmitResult::admitted) return gate;
  LocalTxn txn;
  txn.id = MsgId{self_, next_txn_seq_++};
  txn.tid = interner_.intern(txn.id);
  txn.proc = proc;
  txn.klass = klass;
  txn.args = std::move(args);
  txn.exec_duration = exec_duration;
  txn.submitted_at = sim_.now();
  ++metrics_.submitted_updates;
  auto& queue = queues_[klass];
  queue.push_back(std::move(txn));
  ++queued_;
  if (queue.size() == 1) run_head(klass);
  return SubmitResult::admitted;
}

SubmitResult LazyReplica::submit_update_multi(ProcId proc, std::vector<ClassId> classes,
                                              TxnArgs args, SimTime exec_duration,
                                              SimTime deadline) {
  normalize_class_set(classes);
  OTPDB_CHECK_MSG(classes.size() == 1,
                  "the lazy engine cannot atomically commit a cross-partition transaction "
                  "(last-writer-wins reconciliation has no cross-class serialization); "
                  "use the OTP or conservative engine for multi-class workloads");
  return submit_update(proc, classes.front(), std::move(args), exec_duration, deadline);
}

void LazyReplica::run_head(ClassId klass) {
  LocalTxn& txn = queues_[klass].front();
  TxnContext ctx(store_, catalog_, txn.tid, klass, txn.args);
  registry_.get(txn.proc)(ctx);
  sim_.schedule_after(txn.exec_duration, [this, klass] { on_complete(klass); });
}

void LazyReplica::on_complete(ClassId klass) {
  auto& queue = queues_[klass];
  OTPDB_CHECK(!queue.empty());
  const LocalTxn txn = std::move(queue.front());
  queue.pop_front();
  --queued_;

  // Local commit: no coordination with other sites whatsoever.
  const std::uint64_t ts = ++lamport_;
  const TOIndex index = next_local_index_++;
  const auto writes = store_.provisional_writes(txn.tid);

  auto apply = std::make_shared<LazyApply>();
  apply->origin = self_;
  apply->ts = ts;
  apply->klass = klass;
  apply->writes.reserve(writes.size());
  for (const auto& [obj, value] : writes) {
    const WriterToken prev = tokens_[obj];
    apply->writes.push_back(LazyApply::WriteEntry{obj, value, prev.ts, prev.site});
    tokens_[obj] = WriterToken{ts, self_};
  }
  std::vector<std::pair<ObjectId, Value>> record_writes;
  if (commit_hook_) record_writes.assign(writes.begin(), writes.end());
  // Site-local version stamps are still monotone per class, so the durable
  // backend's per-class watermark protocol holds (it just isn't a cross-site
  // total order - same caveat as the in-memory chains).
  backend_.commit(txn.tid, index, std::span<const ClassId>(&klass, 1));
  interner_.release(txn.tid);

  ++metrics_.committed;
  const double latency = static_cast<double>(sim_.now() - txn.submitted_at);
  metrics_.commit_latency_ns.add(latency);
  metrics_.commit_latency_percentiles_ns.add(latency);
  metrics_.commit_wait_ns.add(0.0);
  if (commit_hook_) {
    CommitRecord record;
    record.site = self_;
    record.txn = txn.id;
    record.proc = txn.proc;
    record.klass = klass;
    record.index = index;
    record.at = sim_.now();
    record.writes = std::move(record_writes);
    commit_hook_(record);
  }

  // Propagate the write-set *after* commit - the defining property of
  // asynchronous replication.
  net_.multicast(self_, kChannelLazy, std::move(apply));

  if (!queue.empty()) run_head(klass);
}

void LazyReplica::on_apply(const Message& msg) {
  if (msg.from == self_) return;  // own loopback
  const auto* apply = payload_cast_fast<LazyApply>(msg);
  OTPDB_CHECK(apply != nullptr);
  lamport_ = std::max(lamport_, apply->ts);
  ++applied_remote_;

  const MsgId synthetic{apply->origin, apply->ts};
  const TxnId stid = interner_.intern(synthetic);  // scratch id for the install
  bool installed_any = false;
  for (const auto& entry : apply->writes) {
    WriterToken& current = tokens_[entry.obj];
    const WriterToken incoming{apply->ts, apply->origin};
    const WriterToken expected{entry.prev_ts, entry.prev_site};
    if (current != expected) {
      // The origin wrote over a version this site never had (or vice versa):
      // somebody's update is silently lost. This is the consistency violation
      // eager replication rules out.
      ++conflicts_detected_;
    }
    if (incoming > current) {  // last-writer-wins reconciliation
      store_.write(stid, entry.obj, entry.value);
      current = incoming;
      installed_any = true;
    }
  }
  if (installed_any) {
    const TOIndex index = next_local_index_++;
    const ClassId klass = apply->klass;
    backend_.commit(stid, index, std::span<const ClassId>(&klass, 1));
    if (commit_hook_) {
      CommitRecord record;
      record.site = self_;
      record.txn = synthetic;
      record.proc = 0;
      record.klass = apply->klass;
      record.index = index;
      record.at = sim_.now();
      record.writes = {};
      commit_hook_(record);
    }
  }
  interner_.release(stid);
}

void LazyReplica::submit_query(QueryFn fn, SimTime exec_duration, QueryDoneFn done) {
  ++metrics_.queries_started;
  const SimTime submitted_at = sim_.now();
  sim_.schedule_after(exec_duration, [this, fn = std::move(fn), done = std::move(done),
                                      submitted_at] {
    // Lazy queries read whatever the local replica currently has - fast but
    // with no global snapshot guarantee.
    QueryContext ctx(next_local_index_ - 1, [this](ObjectId obj, TOIndex) {
      return store_.read_latest(obj).value_or(Value{std::int64_t{0}});
    });
    fn(ctx);
    ++metrics_.queries_done;
    QueryReport report;
    report.snapshot_index = next_local_index_ - 1;
    report.submitted_at = submitted_at;
    report.completed_at = sim_.now();
    report.attempts = 1;
    report.reads = ctx.reads();
    metrics_.query_latency_ns.add(static_cast<double>(report.completed_at - submitted_at));
    if (done) done(report);
  });
}

}  // namespace otpdb
