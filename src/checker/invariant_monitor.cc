#include "checker/invariant_monitor.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "db/durable_store.h"

namespace otpdb {

InvariantMonitor::InvariantMonitor(Cluster& cluster, Config config)
    : cluster_(cluster), config_(config), recorder_(cluster) {
  high_watermark_.assign(cluster_.site_count(),
                         std::vector<TOIndex>(cluster_.config().n_classes, 0));
  // Sampling runs as hub control events: site phases never overlap the hub
  // phase, so reading each site's durable watermarks here is race-free in
  // sharded mode (same model as crash/partition state).
  cluster_.sim().schedule_after(config_.sample_interval, [this] { sample(); });
}

void InvariantMonitor::sample() {
  observe();
  cluster_.sim().schedule_after(config_.sample_interval, [this] { sample(); });
}

void InvariantMonitor::observe() {
  ++samples_;
  for (SiteId s = 0; s < cluster_.site_count(); ++s) {
    const auto* durable = dynamic_cast<const DurableStore*>(&cluster_.storage(s));
    if (durable == nullptr) continue;
    auto& high = high_watermark_[s];
    for (ClassId c = 0; c < high.size(); ++c) {
      const TOIndex w = durable->durable_watermark(c);
      if (w < high[c]) {
        online_violations_.push_back("site " + std::to_string(s) + " class " +
                                     std::to_string(c) + ": durable watermark regressed " +
                                     std::to_string(high[c]) + " -> " + std::to_string(w));
      }
      high[c] = std::max(high[c], w);
    }
  }
}

CheckResult InvariantMonitor::finish() {
  observe();  // one final watermark observation at the end state

  CheckResult result;
  result.violations = online_violations_;

  std::vector<std::vector<CommitRecord>> logs = recorder_.site_logs();
  if (config_.dedup_replayed_commits) {
    for (auto& log : logs) {
      std::unordered_map<TOIndex, std::size_t> last;
      for (std::size_t i = 0; i < log.size(); ++i) last[log[i].index] = i;
      std::vector<CommitRecord> dedup;
      dedup.reserve(log.size());
      for (std::size_t i = 0; i < log.size(); ++i) {
        if (last[log[i].index] == i) dedup.push_back(log[i]);
      }
      log = std::move(dedup);
    }
  }
  const CheckResult serializability = check_one_copy_serializability(logs);
  result.violations.insert(result.violations.end(), serializability.violations.begin(),
                           serializability.violations.end());

  std::vector<const VersionedStore*> stores;
  for (SiteId s = 0; s < cluster_.site_count(); ++s) stores.push_back(&cluster_.store(s));
  const CheckResult convergence = compare_final_states(stores, cluster_.catalog());
  result.violations.insert(result.violations.end(), convergence.violations.begin(),
                           convergence.violations.end());

  if (audit_) {
    for (SiteId s = 0; s < cluster_.site_count(); ++s) {
      for (const std::string& v : audit_(s)) {
        result.violations.push_back("site " + std::to_string(s) + " audit: " + v);
      }
    }
  }
  return result;
}

}  // namespace otpdb
