// Always-on invariant monitor for chaos scenarios.
//
// Every chaos test (and the --chaos CLI runs) wraps the cluster in one of
// these: it records all commit histories, samples online invariants on the
// hub clock while faults are being injected, and runs the full correctness
// battery at the end. The point is that chaos runs never check "it didn't
// crash" - they check the paper's actual guarantees under fire:
//
//   online   - durable-watermark monotonicity per (site, class): watermarks
//              only advance on a successful fsync, survive cold restarts
//              (recovery replays exactly the synced prefix), and freeze -
//              never regress - when the storage health ladder degrades.
//   at end   - 1-copy-serializability over the recorded histories (Theorem
//              4.2), cross-site state convergence, plus an optional
//              per-site application audit (e.g. TPC-C money conservation).
//
// Restart-from-disk runs legitimately re-commit the replayed tail, so
// `dedup_replayed_commits` collapses each site log to the last occurrence
// per definitive index before the 1CSR check.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "checker/history.h"
#include "core/cluster.h"

namespace otpdb {

class InvariantMonitor {
 public:
  struct Config {
    /// Cadence of the online watermark sampling (hub control events).
    SimTime sample_interval = 100 * kMillisecond;
    /// Collapse each site log to the last occurrence per TOIndex before the
    /// 1CSR check (required when the scenario cold-restarts sites).
    bool dedup_replayed_commits = false;
  };

  /// Attaches to every replica's commit hook and starts sampling. Create
  /// before submitting work (like HistoryRecorder).
  explicit InvariantMonitor(Cluster& cluster) : InvariantMonitor(cluster, Config{}) {}
  InvariantMonitor(Cluster& cluster, Config config);

  /// Per-site application audit returning violation strings (empty = clean);
  /// e.g. [&driver](SiteId s) { return driver.audit(s); }.
  void set_audit(std::function<std::vector<std::string>(SiteId)> audit) {
    audit_ = std::move(audit);
  }

  /// Runs the end-of-run battery and merges the online violations. Call
  /// after the cluster quiesced; every returned violation is a real
  /// invariant break.
  CheckResult finish();

  const HistoryRecorder& recorder() const { return recorder_; }
  std::uint64_t samples() const { return samples_; }

 private:
  void sample();   ///< observe + reschedule (hub control event)
  void observe();  ///< one watermark-monotonicity pass over all sites

  Cluster& cluster_;
  Config config_;
  HistoryRecorder recorder_;
  std::vector<std::vector<TOIndex>> high_watermark_;  // [site][class], max seen
  std::vector<std::string> online_violations_;
  std::uint64_t samples_ = 0;
  std::function<std::vector<std::string>(SiteId)> audit_;
};

}  // namespace otpdb
