#include "checker/history.h"

#include <map>
#include <span>
#include <sstream>
#include <unordered_map>

#include "util/assert.h"

namespace otpdb {
namespace {

std::string txn_name(const MsgId& id) {
  std::ostringstream out;
  out << "(" << id.sender << "," << id.seq << ")";
  return out.str();
}

/// All classes a committed transaction covered. A multi-class commit carries
/// its class set; single-class records (and engines that never set the
/// vector) fall back to the primary class.
std::span<const ClassId> classes_of(const CommitRecord& r) {
  return r.classes.empty() ? std::span<const ClassId>(&r.klass, 1)
                           : std::span<const ClassId>(r.classes);
}

}  // namespace

HistoryRecorder::HistoryRecorder(Cluster& cluster) : logs_(cluster.site_count()) {
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    cluster.replica(s).set_commit_hook([this](const CommitRecord& r) { record(r); });
  }
}

HistoryRecorder::HistoryRecorder(std::size_t n_sites) : logs_(n_sites) {}

void HistoryRecorder::record(const CommitRecord& record) {
  OTPDB_CHECK(record.site < logs_.size());
  logs_[record.site].push_back(record);
}

std::size_t HistoryRecorder::total_commits() const {
  std::size_t n = 0;
  for (const auto& log : logs_) n += log.size();
  return n;
}

std::string CheckResult::summary() const {
  if (violations.empty()) return "ok";
  std::ostringstream out;
  out << violations.size() << " violation(s):";
  for (std::size_t i = 0; i < violations.size() && i < 10; ++i) out << "\n  " << violations[i];
  if (violations.size() > 10) out << "\n  ...";
  return out.str();
}

CheckResult check_one_copy_serializability(const std::vector<std::vector<CommitRecord>>& logs) {
  CheckResult result;
  auto violate = [&result](const std::string& msg) { result.violations.push_back(msg); };

  // Per site and class: the committed sequence, in local commit order. A
  // multi-class transaction conflicts with every class it covers, so it
  // participates in every covered class's sequence.
  const std::size_t n_sites = logs.size();
  std::vector<std::map<ClassId, std::vector<const CommitRecord*>>> per_class(n_sites);
  for (std::size_t s = 0; s < n_sites; ++s) {
    for (const CommitRecord& r : logs[s]) {
      for (ClassId c : classes_of(r)) per_class[s][c].push_back(&r);
    }
  }

  // 1. Within each site and class, definitive indices must strictly ascend
  //    (conflicting transactions commit in definitive order - Lemma 4.1).
  for (std::size_t s = 0; s < n_sites; ++s) {
    for (const auto& [klass, seq] : per_class[s]) {
      for (std::size_t i = 1; i < seq.size(); ++i) {
        if (seq[i - 1]->index >= seq[i]->index) {
          std::ostringstream out;
          out << "site " << s << " class " << klass << ": commit order violates the "
              << "definitive order (" << txn_name(seq[i - 1]->txn) << " index "
              << seq[i - 1]->index << " before " << txn_name(seq[i]->txn) << " index "
              << seq[i]->index << ")";
          violate(out.str());
        }
      }
    }
  }

  // 2. Across sites: per class, common prefixes must agree transaction by
  //    transaction (same transactions, same order).
  for (std::size_t s = 1; s < n_sites; ++s) {
    for (const auto& [klass, seq] : per_class[s]) {
      auto ref_it = per_class[0].find(klass);
      if (ref_it == per_class[0].end()) continue;
      const auto& ref = ref_it->second;
      const std::size_t common = std::min(ref.size(), seq.size());
      for (std::size_t i = 0; i < common; ++i) {
        if (ref[i]->txn != seq[i]->txn) {
          std::ostringstream out;
          out << "class " << klass << " position " << i << ": site 0 committed "
              << txn_name(ref[i]->txn) << " but site " << s << " committed "
              << txn_name(seq[i]->txn);
          violate(out.str());
          break;  // one divergence per class pair is enough evidence
        }
      }
    }
  }

  // 3. The same transaction must carry the same definitive index and identical
  //    writes at every site (agreement + deterministic execution).
  std::unordered_map<MsgId, const CommitRecord*> first_seen;
  for (std::size_t s = 0; s < n_sites; ++s) {
    for (const CommitRecord& r : logs[s]) {
      auto [it, inserted] = first_seen.try_emplace(r.txn, &r);
      if (inserted) continue;
      const CommitRecord* ref = it->second;
      if (ref->index != r.index) {
        std::ostringstream out;
        out << "txn " << txn_name(r.txn) << ": definitive index " << ref->index << " at site "
            << ref->site << " but " << r.index << " at site " << r.site;
        violate(out.str());
      }
      if (ref->writes != r.writes) {
        std::ostringstream out;
        out << "txn " << txn_name(r.txn) << ": divergent write values between sites "
            << ref->site << " and " << r.site << " (non-deterministic execution?)";
        violate(out.str());
      }
      if (ref->klass != r.klass || ref->classes != r.classes) {
        std::ostringstream out;
        out << "txn " << txn_name(r.txn) << ": divergent conflict-class sets between sites "
            << ref->site << " and " << r.site;
        violate(out.str());
      }
    }
  }

  // 4. Within each site, no transaction commits twice and indices are unique.
  for (std::size_t s = 0; s < n_sites; ++s) {
    std::unordered_map<MsgId, std::size_t> seen;
    std::map<TOIndex, const CommitRecord*> by_index;
    for (const CommitRecord& r : logs[s]) {
      if (++seen[r.txn] > 1) {
        violate("site " + std::to_string(s) + ": txn " + txn_name(r.txn) + " committed twice");
      }
      auto [it, inserted] = by_index.try_emplace(r.index, &r);
      if (!inserted) {
        violate("site " + std::to_string(s) + ": definitive index " +
                std::to_string(r.index) + " assigned to two transactions");
      }
    }
  }

  return result;
}

CheckResult check_object_level_serializability(
    const std::vector<std::vector<CommitRecord>>& logs) {
  CheckResult result;
  auto violate = [&result](const std::string& msg) { result.violations.push_back(msg); };
  const std::size_t n_sites = logs.size();

  // Per site and *object*: the sequence of committing writers, in local
  // commit order.
  std::vector<std::map<ObjectId, std::vector<const CommitRecord*>>> per_object(n_sites);
  for (std::size_t s = 0; s < n_sites; ++s) {
    for (const CommitRecord& r : logs[s]) {
      for (const auto& [obj, value] : r.writes) per_object[s][obj].push_back(&r);
    }
  }

  // 1. Within each site, an object's writers commit in ascending definitive
  //    order (conflicting transactions follow the total order).
  for (std::size_t s = 0; s < n_sites; ++s) {
    for (const auto& [obj, seq] : per_object[s]) {
      for (std::size_t i = 1; i < seq.size(); ++i) {
        if (seq[i - 1]->index >= seq[i]->index) {
          std::ostringstream out;
          out << "site " << s << " object " << obj << ": writers out of definitive order ("
              << txn_name(seq[i - 1]->txn) << " index " << seq[i - 1]->index << " before "
              << txn_name(seq[i]->txn) << " index " << seq[i]->index << ")";
          violate(out.str());
        }
      }
    }
  }

  // 2. Across sites: per object, common prefixes agree writer by writer.
  for (std::size_t s = 1; s < n_sites; ++s) {
    for (const auto& [obj, seq] : per_object[s]) {
      auto ref_it = per_object[0].find(obj);
      if (ref_it == per_object[0].end()) continue;
      const auto& ref = ref_it->second;
      const std::size_t common = std::min(ref.size(), seq.size());
      for (std::size_t i = 0; i < common; ++i) {
        if (ref[i]->txn != seq[i]->txn) {
          std::ostringstream out;
          out << "object " << obj << " writer position " << i << ": site 0 committed "
              << txn_name(ref[i]->txn) << " but site " << s << " committed "
              << txn_name(seq[i]->txn);
          violate(out.str());
          break;
        }
      }
    }
  }

  // 3. Same transaction, same definitive index and identical writes at every
  //    site (agreement + deterministic execution).
  std::unordered_map<MsgId, const CommitRecord*> first_seen;
  for (std::size_t s = 0; s < n_sites; ++s) {
    for (const CommitRecord& r : logs[s]) {
      auto [it, inserted] = first_seen.try_emplace(r.txn, &r);
      if (inserted) continue;
      const CommitRecord* ref = it->second;
      if (ref->index != r.index) {
        violate("txn " + txn_name(r.txn) + ": divergent definitive index across sites");
      }
      if (ref->writes != r.writes) {
        violate("txn " + txn_name(r.txn) + ": divergent writes across sites");
      }
    }
  }
  return result;
}

CheckResult compare_final_states(const std::vector<const VersionedStore*>& stores,
                                 const PartitionCatalog& catalog) {
  CheckResult result;
  if (stores.size() < 2) return result;
  for (ClassId c = 0; c < catalog.class_count(); ++c) {
    for (std::uint64_t k = 0; k < catalog.objects_per_class(); ++k) {
      const ObjectId obj = catalog.object(c, k);
      const auto ref = stores[0]->read_latest(obj);
      for (std::size_t s = 1; s < stores.size(); ++s) {
        const auto v = stores[s]->read_latest(obj);
        if (ref != v) {
          std::ostringstream out;
          out << "object " << obj << " (class " << c << "): site 0 has "
              << (ref ? to_display_string(*ref) : "<none>") << ", site " << s << " has "
              << (v ? to_display_string(*v) : "<none>");
          result.violations.push_back(out.str());
        }
      }
    }
  }
  return result;
}

}  // namespace otpdb
