// Execution-history recording and 1-copy-serializability checking
// (paper Sections 2.2 and 4).
//
// The HistoryRecorder subscribes to every replica's commit hook and keeps a
// per-site log of commit records. The checker then verifies the conditions of
// Theorem 4.2: all sites commit the same update transactions, conflicting
// transactions (sharing any covered class - a multi-class commit participates
// in every class of its set) commit in the same relative order everywhere,
// that order is the definitive total order, and every transaction writes
// identical values at every site (execution determinism). Together these make the union
// of the local histories conflict-equivalent to the serial history in
// definitive order - 1-copy-serializability.
//
// The lazy-replication baseline is expected to FAIL these checks; tests use
// that to demonstrate the consistency gap the paper describes.
#pragma once

#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/txn.h"
#include "db/partition.h"
#include "db/versioned_store.h"

namespace otpdb {

class HistoryRecorder {
 public:
  /// Hooks every replica of the cluster. Call before submitting work.
  explicit HistoryRecorder(Cluster& cluster);

  /// Creates an unattached recorder for `n_sites` (manual record()).
  explicit HistoryRecorder(std::size_t n_sites);

  void record(const CommitRecord& record);

  const std::vector<std::vector<CommitRecord>>& site_logs() const { return logs_; }
  std::size_t total_commits() const;

 private:
  std::vector<std::vector<CommitRecord>> logs_;
};

struct CheckResult {
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

/// Verifies 1-copy-serializability over the recorded histories (see above).
/// Sites may lag (a site's per-class log may be a prefix of another's); any
/// order disagreement on the common prefix is a violation.
CheckResult check_one_copy_serializability(const std::vector<std::vector<CommitRecord>>& logs);

/// Object-granularity variant for the fine-grained lock-table engine
/// (paper Section 6 / [13]): two transactions conflict iff their write sets
/// intersect, so the cross-site order agreement is checked per *object*
/// rather than per class; per-class commit orders may legitimately differ.
CheckResult check_object_level_serializability(
    const std::vector<std::vector<CommitRecord>>& logs);

/// Compares the latest committed value of every catalogued object across the
/// given stores; returns one violation per differing object. After a quiesced
/// run, eager engines must produce identical states at all sites.
CheckResult compare_final_states(const std::vector<const VersionedStore*>& stores,
                                 const PartitionCatalog& catalog);

}  // namespace otpdb
