// A1 fixture: a DETLINT annotation without a rationale suppresses the
// underlying finding but is itself reported - the proof obligation is the
// point of the annotation grammar. (The nested // ends the empty reason.)
#include <unordered_map>

namespace fixture {

inline int empty_reason(std::unordered_map<int, int>& m) {
  int n = 0;
  for (const auto& [k, v] : m) n += v;  // DETLINT(order-insensitive): // EXPECT-DETLINT: A1
  return n;
}

}  // namespace fixture
