// R4 fixtures: pointer-value ordering and address hashing.
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <vector>

namespace fixture {

struct Txn {
  std::uint64_t id = 0;
};

inline std::uintptr_t positive_cases(Txn* t) {
  std::map<Txn*, int> by_addr;                       // EXPECT-DETLINT: R4
  std::set<const Txn*> addr_set;                     // EXPECT-DETLINT: R4
  std::priority_queue<Txn*> addr_heap;               // EXPECT-DETLINT: R4
  std::hash<Txn*> addr_hash;                         // EXPECT-DETLINT: R4
  std::less<Txn*> addr_less;                         // EXPECT-DETLINT: R4
  auto key = reinterpret_cast<std::uintptr_t>(t);    // EXPECT-DETLINT: R4
  (void)by_addr;
  (void)addr_set;
  (void)addr_heap;
  (void)addr_hash;
  (void)addr_less;
  return key;
}

inline std::uint64_t negative_cases(const Txn& t) {
  // Ordering by a stable id is the sanctioned pattern.
  std::map<std::uint64_t, int> by_id;
  std::set<std::uint64_t> id_set;
  by_id[t.id] = 1;
  id_set.insert(t.id);
  return t.id + by_id.size() + id_set.size();
}

inline std::uintptr_t annotated_case(Txn* t) {
  // DETLINT(address-stable): debug-log tag only; the value is printed and
  // never compared, hashed, or used as an ordering key.
  return reinterpret_cast<std::uintptr_t>(t);
}

}  // namespace fixture
