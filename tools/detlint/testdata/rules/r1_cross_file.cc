// R1 across translation units: the unordered member is declared in
// r1_decls.h; the diagnostic must cite that declaration site.
#include "r1_decls.h"

namespace fixture {

inline int cross_file_scan(CrossFileHost& h) {
  int n = 0;
  for (const auto& [inst, v] : h.instances_) n += v;  // EXPECT-DETLINT: R1
  return n;
}

}  // namespace fixture
