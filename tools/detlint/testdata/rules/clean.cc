// Negative fixture: deterministic idioms that must never be flagged.
// Any finding in this file is a selftest failure (false positive).
#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace fixture {

struct Engine {
  std::unordered_map<std::uint64_t, int> table_;
  std::map<std::uint64_t, int> ordered_;
  std::vector<int> rows_;

  // Point lookups and size queries on unordered containers are fine; only
  // iteration order is contractual.
  int lookup(std::uint64_t k) const {
    auto it = table_.find(k);
    return it == table_.end() ? 0 : it->second;
  }
  std::size_t size() const { return table_.size(); }

  // The sanctioned sweep shape: collect, sort, then iterate the sorted copy.
  std::vector<std::uint64_t> sorted_keys() const {
    std::vector<std::uint64_t> keys;
    keys.reserve(table_.size());
    // DETLINT(order-insensitive): keys are sorted below before anything
    // observes them.
    for (const auto& [k, v] : table_) keys.push_back(k);
    std::sort(keys.begin(), keys.end());
    return keys;
  }

  int deterministic_loops() const {
    int n = 0;
    for (int r : rows_) n += r;                  // vector: ordered
    for (const auto& [k, v] : ordered_) n += v;  // std::map: ordered
    for (std::size_t i = 0; i < rows_.size(); ++i) n += rows_[i];
    return n;
  }

  // A string named like a clock and a member named rand-ish: identifier
  // boundaries must hold.
  std::string runtime_label() const { return "runtime(clock)"; }
  int randomize_nothing() const { return 4; }
};

}  // namespace fixture
