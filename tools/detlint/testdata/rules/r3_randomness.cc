// R3 fixtures: unseeded randomness.
#include <cstdlib>
#include <random>

namespace fixture {

struct SeededRng {
  unsigned state = 1;
  unsigned rand() { return state *= 1664525u; }  // member rand(): seeded, fine
};

inline unsigned positive_cases() {
  unsigned n = 0;
  n += static_cast<unsigned>(rand());   // EXPECT-DETLINT: R3
  srand(42);                            // EXPECT-DETLINT: R3
  std::random_device rd;                // EXPECT-DETLINT: R3
  n += rd();
  return n;
}

inline unsigned negative_cases(SeededRng& rng) {
  // Member calls on the repo's own seeded streams are the sanctioned path.
  return rng.rand();
}

inline unsigned annotated_case() {
  // DETLINT(seeded): fixture demonstrating the escape hatch; real code cites
  // where the seed comes from and why replay is unaffected.
  return static_cast<unsigned>(rand());
}

}  // namespace fixture
