// Cross-file declaration for r1_cross_file.cc: the member is declared here,
// iterated there. detlint's index is tree-wide, mirroring the real layout
// where members live in headers and iterations in .cc files.
#pragma once

#include <cstdint>
#include <unordered_map>

namespace fixture {

struct CrossFileHost {
  std::unordered_map<std::uint64_t, int> instances_;
};

}  // namespace fixture
