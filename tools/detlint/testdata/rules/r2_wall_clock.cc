// R2 fixtures: wall-clock reads outside the allowlist.
#include <chrono>
#include <ctime>

namespace fixture {

struct Msg {
  long time() const { return 7; }  // member named `time` is not wall-clock
};

inline long positive_cases() {
  long n = 0;
  n += time(nullptr);                                    // EXPECT-DETLINT: R2
  n += std::chrono::system_clock::now().time_since_epoch().count();  // EXPECT-DETLINT: R2
  n += std::chrono::steady_clock::now().time_since_epoch().count();  // EXPECT-DETLINT: R2
  struct timespec ts;
  clock_gettime(0, &ts);                                 // EXPECT-DETLINT: R2
  return n + ts.tv_sec;
}

inline long negative_cases(const Msg& m) {
  long n = 0;
  n += m.time();           // member call: deterministic, not the libc clock
  long next_event_time(0);
  n += next_event_time;    // identifier merely *containing* "time"
  return n;
}

inline long annotated_case() {
  // DETLINT(wall-clock): boot banner only; the value never reaches the
  // simulation, digests, or any cross-site-compared output.
  return time(nullptr);
}

inline long next_event_time(long x) { return x; }

}  // namespace fixture
