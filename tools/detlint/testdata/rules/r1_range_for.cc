// R1 fixtures: range-iteration over unordered containers.
// Each `EXPECT-DETLINT: R1` line must produce exactly one R1 finding;
// annotated or ordered-container lines must produce none.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

using TicketSet = std::unordered_set<int>;  // alias resolves to unordered

struct Replica {
  std::unordered_map<int, std::string> msgs_;
  std::vector<std::unordered_set<int>> per_site_seen_;  // seq-of-unordered
  std::map<int, std::string> log_;                      // ordered: never flagged
  TicketSet tickets_;                                   // via alias

  std::unordered_map<int, int> snapshot();  // function returning unordered
};

inline int positive_cases(Replica& r) {
  int n = 0;
  for (const auto& [k, v] : r.msgs_) n += k;           // EXPECT-DETLINT: R1
  for (int t : r.tickets_) n += t;                     // EXPECT-DETLINT: R1
  for (int s : r.per_site_seen_[0]) n += s;            // EXPECT-DETLINT: R1
  for (const auto& [k, v] : r.snapshot()) n += k;      // EXPECT-DETLINT: R1
  for (auto it = r.msgs_.begin(); it != r.msgs_.end(); ++it) ++n;  // EXPECT-DETLINT: R1
  return n;
}

inline int negative_cases(Replica& r) {
  int n = 0;
  // Ordered containers iterate deterministically: no finding.
  for (const auto& [k, v] : r.log_) n += k;
  // Outer vector of the seq-of-unordered is itself ordered: no finding.
  for (const auto& site_set : r.per_site_seen_) n += static_cast<int>(site_set.size());
  // Classic for-loops over indices are not range-iterations.
  for (int i = 0; i < 4; ++i) n += i;
  return n;
}

inline int annotated_cases(Replica& r) {
  int n = 0;
  // Same-line annotation.
  for (const auto& [k, v] : r.msgs_) n += k;  // DETLINT(order-insensitive): commutative sum, order never escapes
  // Annotation in the comment block directly above, wrapping over two lines.
  // DETLINT(order-insensitive): keys are collected then sorted before any
  // order-sensitive consumer sees them.
  for (const auto& [k, v] : r.msgs_) n += k;
  return n;
}

}  // namespace fixture
