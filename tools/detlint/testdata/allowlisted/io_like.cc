// Allowlist fixture: this directory stands in for the real R2 allowlist
// (src/db/io_shim, bench/, tools/) in the selftest configuration. Wall-clock
// reads here are sanctioned - the I/O shim wraps real disks and bench mains
// time themselves - so none of these lines may produce a finding.
#include <chrono>
#include <ctime>

namespace fixture {

inline long shim_timings() {
  long n = time(nullptr);
  n += std::chrono::steady_clock::now().time_since_epoch().count();
  struct timespec ts;
  clock_gettime(0, &ts);
  return n + ts.tv_sec;
}

}  // namespace fixture
