#!/usr/bin/env python3
"""Baseline-gated clang-tidy runner for the OTP-DB tree.

clang-tidy's raw exit status is useless as a CI gate on a living tree: any
check family update (new clang version, new checks) floods the build red for
pre-existing code. This wrapper makes the gate *differential*:

  * every diagnostic is normalized to ``<repo-relative-file>:<check-name>``
    (line numbers are deliberately dropped - they churn with every edit and
    would make the baseline a merge-conflict magnet),
  * the multiset of normalized diagnostics is compared against the checked-in
    baseline (``tools/detlint/clang_tidy_baseline.txt``),
  * NEW diagnostics (not in the baseline, or more of the same kind in the
    same file than the baseline records) fail the run,
  * diagnostics that disappeared are reported so the baseline can be shrunk
    (``--update`` rewrites it).

Baseline states:
  * first line ``# status: enforcing``  - new diagnostics exit 1.
  * first line ``# status: provisional`` - diagnostics are printed and the
    run exits 0. This is the bootstrap state: the development container
    ships no clang-tidy binary, so the baseline cannot be pinned from where
    the code is written. The first CI run (or any machine with clang-tidy)
    prints the exact ``--update`` command; committing its output flips the
    gate to enforcing automatically (``--update`` always writes
    ``enforcing``).

Usage:
  run_clang_tidy.py --build-dir build [--update] [--jobs N]

Requires: clang-tidy on PATH (or $CLANG_TIDY), and a configure with
CMAKE_EXPORT_COMPILE_COMMANDS (the default for this repo).
"""

from __future__ import annotations

import argparse
import collections
import json
import multiprocessing
import os
import re
import shutil
import subprocess
import sys

BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "clang_tidy_baseline.txt")
DIAG_RE = re.compile(r"^(/[^:]+):(\d+):(\d+): (?:warning|error): .* \[([A-Za-z0-9.,-]+)\]$")


def load_baseline():
    """Returns (enforcing, Counter of 'file:check')."""
    if not os.path.exists(BASELINE):
        return False, collections.Counter()
    entries = collections.Counter()
    enforcing = False
    with open(BASELINE, encoding="utf-8") as fh:
        for i, line in enumerate(fh):
            line = line.strip()
            if i == 0 and line.startswith("# status:"):
                enforcing = "enforcing" in line
                continue
            if not line or line.startswith("#"):
                continue
            entries[line] += 1
    return enforcing, entries


def save_baseline(entries, path=BASELINE) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# status: enforcing\n")
        fh.write("# clang-tidy diagnostics accepted on the current tree, one\n")
        fh.write("# '<file>:<check>' per occurrence. Regenerate: run_clang_tidy.py --update\n")
        for entry in sorted(entries.elements()):
            fh.write(entry + "\n")


def repo_files(build_dir, root):
    path = os.path.join(build_dir, "compile_commands.json")
    try:
        with open(path, encoding="utf-8") as fh:
            db = json.load(fh)
    except (OSError, json.JSONDecodeError) as e:
        print(f"run_clang_tidy: cannot read {path}: {e} (configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON first)", file=sys.stderr)
        sys.exit(2)
    rootnorm = os.path.normpath(os.path.abspath(root))
    files = []
    for entry in db:
        f = entry.get("file", "")
        if not os.path.isabs(f):
            f = os.path.join(entry.get("directory", ""), f)
        f = os.path.normpath(f)
        rel = os.path.relpath(f, rootnorm)
        # Library + tools only: tests/benches inherit gtest/benchmark macro
        # noise that would drown the signal the gate exists for.
        if rel.startswith(("src" + os.sep, "tools" + os.sep)):
            files.append(f)
    return sorted(set(files)), rootnorm


def tidy_one(args):
    tidy, build_dir, path = args
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", path],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True,
    )
    return proc.stdout


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--root", default=".")
    ap.add_argument("--jobs", type=int, default=multiprocessing.cpu_count())
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from this run (status: enforcing)")
    args = ap.parse_args()

    tidy = os.environ.get("CLANG_TIDY") or shutil.which("clang-tidy")
    if not tidy:
        print("run_clang_tidy: clang-tidy not found on PATH; skipping "
              "(the detlint determinism gate runs independently)", file=sys.stderr)
        return 0

    files, rootnorm = repo_files(args.build_dir, args.root)
    if not files:
        print("run_clang_tidy: no repo-owned TUs in compile_commands.json", file=sys.stderr)
        return 2

    seen = collections.Counter()
    raw_lines = {}
    with multiprocessing.Pool(args.jobs) as pool:
        for out in pool.imap_unordered(tidy_one, [(tidy, args.build_dir, f) for f in files]):
            for line in out.splitlines():
                m = DIAG_RE.match(line)
                if not m:
                    continue
                rel = os.path.relpath(m.group(1), rootnorm).replace(os.sep, "/")
                if rel.startswith(".."):
                    continue  # system/third-party header
                for check in m.group(4).split(","):
                    key = f"{rel}:{check}"
                    seen[key] += 1
                    raw_lines.setdefault(key, line)

    if args.update:
        save_baseline(seen)
        print(f"run_clang_tidy: baseline updated with {sum(seen.values())} "
              f"diagnostic(s) across {len(seen)} file:check pairs")
        return 0

    enforcing, baseline = load_baseline()
    new = seen - baseline
    gone = baseline - seen

    for key in sorted(new.elements()):
        print(f"NEW  {key}\n     e.g. {raw_lines.get(key, '?')}")
    for key in sorted(gone):
        print(f"GONE {key} (x{gone[key]}) - shrink the baseline with --update")

    total = sum(seen.values())
    print(f"run_clang_tidy: {total} diagnostic(s), {sum(new.values())} new, "
          f"{sum(gone.values())} resolved vs baseline "
          f"({'enforcing' if enforcing else 'provisional'})")
    if not enforcing:
        # clang-tidy DID run, so this machine can pin the gate. Always say
        # how (a quiet provisional pass used to print nothing, and the
        # bootstrap instruction was lost exactly when pinning was cheapest)
        # and write this run's result as a ready-to-commit candidate so CI
        # can surface it as an artifact.
        candidate = os.path.join(args.build_dir, "clang_tidy_baseline_candidate.txt")
        save_baseline(seen, candidate)
        print("run_clang_tidy: baseline is provisional - pin it by running:\n"
              f"  python3 tools/detlint/run_clang_tidy.py --build-dir {args.build_dir} --update\n"
              "and committing tools/detlint/clang_tidy_baseline.txt\n"
              f"(candidate written to {candidate}; copying it over the checked-in "
              "baseline is equivalent to --update on this tree)")
        return 0
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
