#!/usr/bin/env python3
"""detlint - determinism lint for the OTP-DB tree.

The engine's headline guarantee is bit-for-bit identical histories across
1/2/4/8 worker threads. That contract is easy to break silently: iterate an
``std::unordered_map`` in a path that feeds digests or network send order and
every parity suite still passes on *this* binary (iteration order is a
deterministic function of the insertion sequence for a fixed standard library)
while the invariant the tests are supposed to pin - "order does not depend on
hash-table internals" - is gone. detlint enforces the contract statically.

Rules
-----
  R1  no range-iteration (or ``.begin()`` iterator loops) over
      ``std::unordered_map`` / ``std::unordered_set`` (and their multi
      variants, or containers of them) anywhere in the scanned tree, unless
      the site carries a ``// DETLINT(order-insensitive): <why>`` annotation
      whose reason states why the order cannot reach digests, network sends,
      or cross-site-compared stats.
  R2  no wall-clock reads (``time()``, ``gettimeofday``, ``clock_gettime``,
      ``std::chrono::{system,steady,high_resolution}_clock``) outside the
      allowlist (``src/db/io_shim``, ``bench/``, ``tools/``). Simulated time
      comes from ``Simulator::now()``; real time is an input the replicas
      must never observe.
  R3  no unseeded randomness (``rand()``, ``srand``, ``std::random_device``,
      ``*rand48``) anywhere. All randomness flows from the seeded
      ``util/rng.h`` streams.
  R4  no pointer-value ordering or address hashing in ordering-sensitive
      code: ``reinterpret_cast<[u]intptr_t>``, ``std::hash<T*>``,
      ordered containers / ``priority_queue`` / ``std::less`` keyed on a
      raw pointer type. Addresses differ run to run (ASLR, allocator
      history); any order derived from them is nondeterministic.

Annotation grammar
------------------
  // DETLINT(<tag>): <reason>

on the flagged line, or alone on the line directly above it. Tags map to
rules: ``order-insensitive`` (R1), ``wall-clock`` (R2), ``seeded`` (R3),
``address-stable`` (R4). The reason is mandatory: an empty reason is itself
a finding (rule A1). Annotations that suppress nothing are reported as
warnings (stale annotations rot).

Implementation notes
--------------------
This is a self-contained lexical analyzer with a cross-file type index - not
a full C++ frontend. The container ships no libclang/clang-tidy, so detlint
tokenizes the tree itself: comments and string literals are stripped with
line fidelity (raw strings included), declarations of unordered containers
(members, locals, params, typedefs/using-aliases, and functions *returning*
unordered containers) are indexed across every scanned file, and iteration
sites are resolved against that index. The tradeoff is name-based
resolution: a range-for over ``x.items()`` is flagged iff some scanned
declaration gives ``items`` an unordered type. In this codebase member names
are distinctive (``msgs_``, ``instances_``, ``sparse_chains_``), which keeps
both false-positive and false-negative rates at zero on the current tree;
the golden testdata suite (``--selftest``) pins the exact semantics.

Exit codes: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------

UNORDERED_TYPES = {
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
}

# Sequence containers whose *element* type may be unordered; `name[i]` then
# denotes an unordered container.
SEQUENCE_TYPES = {"vector", "array", "deque"}

WALL_CLOCK_CALLS = {
    "time",
    "gettimeofday",
    "clock_gettime",
    "clock",
    "localtime",
    "gmtime",
    "mktime",
    "timespec_get",
    "ftime",
}
WALL_CLOCK_TYPES = {"system_clock", "steady_clock", "high_resolution_clock"}

RANDOM_CALLS = {"rand", "srand", "drand48", "lrand48", "mrand48", "srand48", "random_shuffle"}
RANDOM_TYPES = {"random_device"}

ORDERED_BY_KEY = {"map", "set", "multimap", "multiset", "priority_queue", "less", "greater"}

TAG_TO_RULE = {
    "order-insensitive": "R1",
    "wall-clock": "R2",
    "seeded": "R3",
    "address-stable": "R4",
}

RULE_NAMES = {
    "R1": "unordered-iteration",
    "R2": "wall-clock",
    "R3": "unseeded-randomness",
    "R4": "pointer-order",
    "A1": "annotation-missing-reason",
}

# Path fragments (matched against the /-normalized relative path) where R2 is
# permitted: the I/O shim wraps real disks, and bench/tool mains may time
# themselves. R1/R3/R4 have no path escape - annotation only.
DEFAULT_ALLOWLIST = {
    "R2": ["src/db/io_shim", "bench/", "tools/"],
}

DEFAULT_ROOTS = ["src", "tools/otpdb_cli.cpp"]

SOURCE_EXTS = {".cc", ".cpp", ".cxx", ".h", ".hpp", ".hh"}

ANNOTATION_RE = re.compile(r"//\s*DETLINT\(([a-z-]+)\)\s*:?\s*(.*)")
EXPECT_RE = re.compile(r"//\s*EXPECT-DETLINT\s*:\s*([A-Z]\d)")

TOKEN_RE = re.compile(
    r"[A-Za-z_][A-Za-z0-9_]*"  # identifier / keyword
    r"|\d[\dxXa-fA-F'.uUlLfF]*"  # numeric literal (approximate, never inspected)
    r"|::|->|\+\+|--|<<=?|>>=?|<=|>=|==|!=|&&|\|\||[-+*/%&|^!~<>=?:;,.(){}\[\]#]"
)


# --------------------------------------------------------------------------
# Data model
# --------------------------------------------------------------------------


@dataclass
class Token:
    text: str
    line: int


@dataclass
class Annotation:
    tag: str
    reason: str
    line: int
    used: bool = False


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: error: [{self.rule}/{RULE_NAMES[self.rule]}] {self.message}"


@dataclass
class SourceFile:
    path: str  # repo-relative, /-separated
    tokens: list = field(default_factory=list)
    annotations: dict = field(default_factory=dict)  # line -> Annotation
    expects: list = field(default_factory=list)  # (line, rule)
    code_lines: set = field(default_factory=set)  # lines holding actual code


# --------------------------------------------------------------------------
# Lexing: strip comments/strings with line fidelity, harvest annotations
# --------------------------------------------------------------------------


def lex_file(path: str, rel: str, text: str) -> SourceFile:
    src = SourceFile(path=rel)
    n = len(text)
    i = 0
    line = 1
    code = []  # stripped characters

    def harvest_comment(comment: str, at_line: int) -> None:
        m = ANNOTATION_RE.search(comment)
        if m:
            # A nested `//` ends the rationale (lets other tooling markers
            # share the line without becoming part of the proof text).
            reason = m.group(2).split("//")[0].strip()
            src.annotations[at_line] = Annotation(tag=m.group(1), reason=reason, line=at_line)
        e = EXPECT_RE.search(comment)
        if e:
            src.expects.append((at_line, e.group(1)))

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            if j == -1:
                j = n
            harvest_comment(text[i:j], line)
            code.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            chunk = text[i:j]
            harvest_comment(chunk, line)
            code.append(re.sub(r"[^\n]", " ", chunk))
            line += chunk.count("\n")
            i = j
        elif c == "R" and nxt == '"':
            # Raw string literal R"delim( ... )delim"
            m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n if j == -1 else j + len(close)
                chunk = text[i:j]
                code.append('""' + re.sub(r"[^\n]", " ", chunk[2:]))
                line += chunk.count("\n")
                i = j
            else:
                code.append(c)
                i += 1
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    break
                j += 1
            j = min(j + 1, n)
            code.append(quote + " " * max(0, j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        elif c == "\n":
            code.append(c)
            line += 1
            i += 1
        else:
            code.append(c)
            i += 1

    stripped = "".join(code)
    assert len(stripped) == n, f"lexer lost line fidelity in {path}"
    for ln, text_line in enumerate(stripped.split("\n"), start=1):
        for m in TOKEN_RE.finditer(text_line):
            src.tokens.append(Token(m.group(0), ln))
            src.code_lines.add(ln)
    return src


# --------------------------------------------------------------------------
# Declaration index
# --------------------------------------------------------------------------


@dataclass
class DeclIndex:
    # name -> (declaring file, line, flavor); flavor: "unordered" or "seq-of-unordered"
    names: dict = field(default_factory=dict)
    # type aliases that resolve to an unordered container
    aliases: set = field(default_factory=set)

    def record(self, name: str, rel: str, line: int, flavor: str) -> None:
        # First declaration wins; collisions across files are fine because we
        # only ever *add* suspicion, and the diagnostic cites this site.
        self.names.setdefault(name, (rel, line, flavor))


def skip_template_args(tokens, i):
    """tokens[i] == '<'; returns index one past the matching '>' (or len)."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t == ">>":  # never produced by our tokenizer, defensive
            depth -= 2
            if depth <= 0:
                return i + 1
        elif t in (";", "{", "}"):
            return i + 1  # malformed/shift-expression; bail
        i += 1
    return n


def template_args_contain_unordered(tokens, lo, hi, index: DeclIndex) -> bool:
    return any(t.text in UNORDERED_TYPES or t.text in index.aliases for t in tokens[lo:hi])


def build_decl_index(files) -> DeclIndex:
    index = DeclIndex()
    # Pass 1: using/typedef aliases of unordered types (may chain, so iterate
    # to a fixed point; two rounds cover alias-of-alias in practice).
    for _ in range(2):
        for f in files:
            toks = f.tokens
            for i, tok in enumerate(toks):
                if tok.text == "using" and i + 2 < len(toks) and toks[i + 2].text == "=":
                    rhs = toks[i + 3 : i + 12]
                    if any(t.text in UNORDERED_TYPES or t.text in index.aliases for t in rhs):
                        index.aliases.add(toks[i + 1].text)
                elif tok.text == "typedef":
                    # typedef std::unordered_map<...> Name;
                    j = i + 1
                    end = j
                    while end < len(toks) and toks[end].text != ";":
                        end += 1
                    seg = toks[j:end]
                    if seg and any(t.text in UNORDERED_TYPES or t.text in index.aliases for t in seg[:-1]):
                        index.aliases.add(seg[-1].text)

    # Pass 2: declarations. Patterns handled:
    #   [std::]unordered_map<...> name      -> "unordered" (vars, params, returns)
    #   AliasName name                      -> "unordered"
    #   vector<unordered_set<...>> name     -> "seq-of-unordered"
    for f in files:
        toks = f.tokens
        n = len(toks)
        i = 0
        while i < n:
            t = toks[i].text
            if t in UNORDERED_TYPES or t in SEQUENCE_TYPES:
                base = t
                j = i + 1
                if j < n and toks[j].text == "<":
                    lo = j
                    j = skip_template_args(toks, j)
                    is_seq = base in SEQUENCE_TYPES
                    if is_seq and not template_args_contain_unordered(toks, lo, j, index):
                        i = j
                        continue
                    # declarator: optional &/*/const, then identifier
                    k = j
                    while k < n and toks[k].text in ("&", "*", "const"):
                        k += 1
                    if k < n and re.fullmatch(r"[A-Za-z_]\w*", toks[k].text):
                        follow = toks[k + 1].text if k + 1 < n else ";"
                        if follow in (";", "=", "{", ",", ")", "("):
                            flavor = "seq-of-unordered" if is_seq else "unordered"
                            # `name(` is a function returning the type - the
                            # call site `for (x : name(...))` resolves the same.
                            index.record(toks[k].text, f.path, toks[k].line, flavor)
                    i = j
                    continue
            elif t in index.aliases:
                k = i + 1
                while k < n and toks[k].text in ("&", "*", "const"):
                    k += 1
                if k < n and re.fullmatch(r"[A-Za-z_]\w*", toks[k].text) and toks[k].text not in index.aliases:
                    follow = toks[k + 1].text if k + 1 < n else ";"
                    if follow in (";", "=", "{", ",", ")", "("):
                        index.record(toks[k].text, f.path, toks[k].line, "unordered")
            i += 1
    return index


# --------------------------------------------------------------------------
# Rule checks
# --------------------------------------------------------------------------


def allowlisted(rel: str, rule: str, allowlist) -> bool:
    return any(frag in rel or rel.startswith(frag) for frag in allowlist.get(rule, []))


def resolve_range_expr(expr, index: DeclIndex):
    """Resolve a range-for's range expression to an indexed unordered name.

    Returns (name, decl) or None. Handles `x`, `a.b`, `a->b_`, `this->x`,
    `ns::x`, trailing calls `x.items()`, and subscripts `rows_[i]`.
    """
    toks = [t.text for t in expr]
    # strip one level of wrapping parens
    while len(toks) >= 2 and toks[0] == "(" and toks[-1] == ")":
        toks = toks[1:-1]
    if not toks:
        return None
    # trailing call: ... name ( args )  -> resolve `name` (fn returning unordered)
    if toks[-1] == ")":
        depth = 0
        for k in range(len(toks) - 1, -1, -1):
            if toks[k] == ")":
                depth += 1
            elif toks[k] == "(":
                depth -= 1
                if depth == 0:
                    if k > 0 and re.fullmatch(r"[A-Za-z_]\w*", toks[k - 1]):
                        name = toks[k - 1]
                        hit = index.names.get(name)
                        if hit and hit[2] == "unordered":
                            return name, hit
                    return None
        return None
    # subscript: name [ ... ]  -> element of a sequence-of-unordered
    if toks[-1] == "]":
        depth = 0
        for k in range(len(toks) - 1, -1, -1):
            if toks[k] == "]":
                depth += 1
            elif toks[k] == "[":
                depth -= 1
                if depth == 0:
                    if k > 0 and re.fullmatch(r"[A-Za-z_]\w*", toks[k - 1]):
                        name = toks[k - 1]
                        hit = index.names.get(name)
                        if hit and hit[2] == "seq-of-unordered":
                            return name, hit
                    return None
        return None
    # plain chain: last identifier decides
    last = toks[-1]
    if re.fullmatch(r"[A-Za-z_]\w*", last):
        hit = index.names.get(last)
        if hit and hit[2] == "unordered":
            return last, hit
    return None


def check_file(src: SourceFile, index: DeclIndex, allowlist) -> list:
    findings = []
    toks = src.tokens
    n = len(toks)

    def suppressed(line: int, rule: str) -> bool:
        """DETLINT annotation on the line or in the comment block above it.

        The annotation may wrap over several comment lines; the line carrying
        the DETLINT tag anchors it. Scanning stops at the first code line, so
        an annotation never leaks past the statement it documents.
        """
        candidates = [line]
        ln = line - 1
        while ln > 0 and ln not in src.code_lines and line - ln <= 8:
            candidates.append(ln)
            ln -= 1
        for ln in candidates:
            ann = src.annotations.get(ln)
            if ann and TAG_TO_RULE.get(ann.tag) == rule:
                ann.used = True
                if not ann.reason:
                    findings.append(
                        Finding(src.path, ln, "A1",
                                f"DETLINT({ann.tag}) annotation has no rationale; "
                                "state why this site cannot affect ordered outputs")
                    )
                return True
        return False

    def emit(line: int, rule: str, message: str) -> None:
        if allowlisted(src.path, rule, allowlist):
            return
        if suppressed(line, rule):
            return
        findings.append(Finding(src.path, line, rule, message))

    i = 0
    while i < n:
        t = toks[i]
        text = t.text
        prev = toks[i - 1].text if i > 0 else ""
        prev2 = toks[i - 2].text if i > 1 else ""
        nxt = toks[i + 1].text if i + 1 < n else ""

        # ---- R1: range-for / iterator loops over unordered containers ----
        if text == "for" and nxt == "(":
            close = skip_parens(toks, i + 1)
            inner = toks[i + 2 : close - 1]
            colon = find_top_level_colon(inner)
            if colon is not None:
                expr = inner[colon + 1 :]
                hit = resolve_range_expr(expr, index)
                if hit:
                    name, (dfile, dline, _) = hit
                    emit(
                        t.line, "R1",
                        f"range-for over '{name}' which is declared as an unordered "
                        f"container at {dfile}:{dline}; iteration order depends on "
                        "hash-table internals - sort keys first, use an ordered "
                        "container, or annotate DETLINT(order-insensitive) with proof",
                    )
            else:
                # iterator loop: for (auto it = expr.begin(); ...) - resolve
                # the identifier immediately before `.begin`/`.cbegin`.
                texts = [x.text for x in inner]
                for k in range(1, len(texts) - 1):
                    if (
                        texts[k] in (".", "->")
                        and texts[k + 1] in ("begin", "cbegin")
                        and re.fullmatch(r"[A-Za-z_]\w*", texts[k - 1])
                    ):
                        hit = index.names.get(texts[k - 1])
                        if hit and hit[2] == "unordered":
                            emit(
                                t.line, "R1",
                                f"iterator loop over '{texts[k - 1]}' which is declared as an "
                                f"unordered container at {hit[0]}:{hit[1]}; iteration order "
                                "depends on hash-table internals",
                            )
                        break
            i = close
            continue

        # ---- R2: wall-clock ----
        if text in WALL_CLOCK_CALLS and nxt == "(" and is_call_site(prev, prev2):
            emit(t.line, "R2",
                 f"wall-clock call '{text}()'; simulated code must read time from "
                 "Simulator::now() (allowlist: src/db/io_shim, bench/, tools/)")
        elif text in WALL_CLOCK_TYPES and prev == "::" and prev2 == "chrono":
            emit(t.line, "R2",
                 f"std::chrono::{text} observed; wall/monotonic clocks are "
                 "nondeterministic inputs (allowlist: src/db/io_shim, bench/, tools/)")

        # ---- R3: unseeded randomness ----
        if text in RANDOM_CALLS and nxt == "(" and is_call_site(prev, prev2):
            emit(t.line, "R3",
                 f"unseeded randomness '{text}()'; draw from the seeded util/rng.h "
                 "streams instead")
        elif text in RANDOM_TYPES and prev != "." and prev != "->":
            emit(t.line, "R3",
                 "std::random_device is entropy from the host; all randomness must "
                 "flow from seeded util/rng.h streams")

        # ---- R4: pointer-value ordering / address hashing ----
        if text == "reinterpret_cast" and nxt == "<":
            close = skip_template_args(toks, i + 1)
            args = [x.text for x in toks[i + 2 : close - 1]]
            if any(a in ("uintptr_t", "intptr_t") for a in args):
                emit(t.line, "R4",
                     "pointer reinterpreted as an integer; addresses differ run to "
                     "run (ASLR, allocator history) so any value derived from one "
                     "is nondeterministic")
            i = close
            continue
        if text in ("hash", "less", "greater") and nxt == "<" and prev != "<":
            close = skip_template_args(toks, i + 1)
            args = [x.text for x in toks[i + 2 : close - 1]]
            if args and args[-1] == "*":
                emit(t.line, "R4",
                     f"std::{text} over a raw pointer type orders/hashes by address; "
                     "key on a stable id instead")
            i = close
            continue
        if text in ("map", "set", "multimap", "multiset", "priority_queue") and nxt == "<":
            close = skip_template_args(toks, i + 1)
            args = [x.text for x in toks[i + 2 : close - 1]]
            # first template argument ends with '*' -> pointer-keyed
            depth = 0
            first_arg = []
            for a in args:
                if a == "<":
                    depth += 1
                elif a == ">":
                    depth -= 1
                elif a == "," and depth == 0:
                    break
                first_arg.append(a)
            if first_arg and first_arg[-1] == "*":
                emit(t.line, "R4",
                     f"'{text}' keyed on a raw pointer type; the comparator orders by "
                     "address, which differs run to run - key on a stable id")
            i = close
            continue

        i += 1

    # Stale annotations: warn (do not fail) so refactors do not leave lies.
    for ann in src.annotations.values():
        if not ann.used and ann.tag in TAG_TO_RULE:
            print(
                f"{src.path}:{ann.line}: warning: DETLINT({ann.tag}) annotation "
                "suppresses nothing (stale?)",
                file=sys.stderr,
            )
    return findings


# Keywords that may directly precede a function call; any *other* identifier
# before `name(` marks a declaration (`long time() const { ... }`) or a
# constructor-style initializer, not a libc call.
CALL_PRECEDING_KEYWORDS = {
    "return", "else", "do", "case", "goto", "throw", "new", "delete",
    "co_return", "co_yield", "co_await", "not", "and", "or",
}


def is_call_site(prev: str, prev2: str) -> bool:
    """True when `name(` with these preceding tokens reads as a call."""
    if prev in (".", "->"):
        return False  # member access on some object: not the libc symbol
    if prev == "::":
        # `std::time(...)` and global `::time(...)` are the libc symbol;
        # `Foo::time(` is an out-of-line member definition or qualified call.
        return prev2 == "std" or not re.fullmatch(r"[A-Za-z_]\w*", prev2 or "")
    if re.fullmatch(r"[A-Za-z_]\w*", prev) and prev not in CALL_PRECEDING_KEYWORDS:
        return False  # `long time(` - a declaration
    return True


def skip_parens(tokens, i):
    """tokens[i] == '('; returns index one past the matching ')'."""
    depth = 0
    n = len(tokens)
    while i < n:
        t = tokens[i].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return n


def find_top_level_colon(tokens):
    """Index of the range-for ':' at depth 0 (None for classic for-loops)."""
    depth = 0
    for k, t in enumerate(tokens):
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        elif t.text == ":" and depth == 0:
            return k
        elif t.text == ";" and depth == 0:
            return None  # classic for-loop
    return None


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------


def collect_paths(root: str, roots, compile_commands):
    """Scan set: walked roots plus repo-owned TUs from compile_commands."""
    paths = set()
    for r in roots:
        full = os.path.join(root, r)
        if os.path.isfile(full):
            paths.add(os.path.normpath(full))
        elif os.path.isdir(full):
            for dirpath, _dirnames, filenames in os.walk(full):
                for fn in filenames:
                    if os.path.splitext(fn)[1] in SOURCE_EXTS:
                        paths.add(os.path.normpath(os.path.join(dirpath, fn)))
    if compile_commands:
        try:
            with open(compile_commands, encoding="utf-8") as fh:
                entries = json.load(fh)
        except (OSError, json.JSONDecodeError) as e:
            print(f"detlint: cannot read {compile_commands}: {e}", file=sys.stderr)
            sys.exit(2)
        rootnorm = os.path.normpath(os.path.abspath(root))
        for entry in entries:
            f = entry.get("file", "")
            if not os.path.isabs(f):
                f = os.path.join(entry.get("directory", ""), f)
            f = os.path.normpath(f)
            # Only repo-owned TUs inside the scan roots; system/third-party
            # TUs are not subject to the contract.
            if f.startswith(rootnorm) and os.path.splitext(f)[1] in SOURCE_EXTS:
                relf = os.path.relpath(f, rootnorm).replace(os.sep, "/")
                if any(relf == r or relf.startswith(r.rstrip("/") + "/") for r in roots):
                    paths.add(f)
    return sorted(paths)


def run_lint(root, roots, compile_commands, allowlist, fmt, list_annotations=False):
    paths = collect_paths(root, roots, compile_commands)
    if not paths:
        print("detlint: no source files found", file=sys.stderr)
        return 2
    files = []
    for p in paths:
        rel = os.path.relpath(p, root).replace(os.sep, "/")
        try:
            with open(p, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError as e:
            print(f"detlint: cannot read {p}: {e}", file=sys.stderr)
            return 2
        files.append(lex_file(p, rel, text))

    index = build_decl_index(files)
    findings = []
    for f in files:
        findings.extend(check_file(f, index, allowlist))
    findings.sort(key=lambda x: (x.path, x.line, x.rule))

    if list_annotations:
        for f in files:
            for ann in sorted(f.annotations.values(), key=lambda a: a.line):
                if ann.tag in TAG_TO_RULE:
                    print(f"{f.path}:{ann.line}: DETLINT({ann.tag}): {ann.reason}")
        return 0

    if fmt == "json":
        print(json.dumps([vars(x) for x in findings], indent=2))
    else:
        for x in findings:
            print(x.render())
        scanned = len(files)
        if findings:
            print(f"detlint: {len(findings)} finding(s) in {scanned} file(s)")
        else:
            print(f"detlint: clean ({scanned} files scanned)")
    return 1 if findings else 0


# --------------------------------------------------------------------------
# Selftest: golden fixtures with inline EXPECT-DETLINT assertions
# --------------------------------------------------------------------------


def run_selftest(testdata: str) -> int:
    roots = sorted(
        d for d in os.listdir(testdata) if os.path.isdir(os.path.join(testdata, d))
    )
    # Fixtures mirror the real allowlist shape: anything under `allowlisted/`
    # stands in for src/db/io_shim//bench//tools/.
    allowlist = {"R2": ["allowlisted/"]}
    paths = collect_paths(testdata, roots, None)
    files = []
    for p in paths:
        rel = os.path.relpath(p, testdata).replace(os.sep, "/")
        with open(p, encoding="utf-8") as fh:
            files.append(lex_file(p, rel, fh.read()))
    index = build_decl_index(files)

    failures = []
    total_expected = 0
    for f in files:
        got = {(x.line, x.rule) for x in check_file(f, index, allowlist)}
        want = set(f.expects)
        total_expected += len(want)
        for line, rule in sorted(want - got):
            failures.append(f"{f.path}:{line}: expected {rule} finding, got none")
        for line, rule in sorted(got - want):
            failures.append(f"{f.path}:{line}: unexpected {rule} finding")
    if failures:
        for msg in failures:
            print(f"FAIL {msg}")
        print(f"detlint selftest: {len(failures)} mismatch(es)")
        return 1
    print(
        f"detlint selftest: OK ({len(files)} fixtures, "
        f"{total_expected} expected diagnostics matched exactly)"
    )
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description="determinism lint for the OTP-DB tree")
    ap.add_argument("roots", nargs="*", default=None,
                    help=f"files/dirs to scan relative to --root (default: {DEFAULT_ROOTS})")
    ap.add_argument("--root", default=".", help="repository root (default: cwd)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json; adds its repo-owned TUs to the scan set")
    ap.add_argument("--format", choices=("text", "json"), default="text")
    ap.add_argument("--selftest", action="store_true",
                    help="run the golden testdata suite and exit")
    ap.add_argument("--list-annotations", action="store_true",
                    help="print every DETLINT annotation with its rationale")
    args = ap.parse_args(argv)

    if args.selftest:
        testdata = os.path.join(os.path.dirname(os.path.abspath(__file__)), "testdata")
        return run_selftest(testdata)

    roots = args.roots if args.roots else DEFAULT_ROOTS
    return run_lint(args.root, roots, args.compile_commands, DEFAULT_ALLOWLIST,
                    args.format, args.list_annotations)


if __name__ == "__main__":
    sys.exit(main())
