// otpdb_cli - run configurable replicated-database experiments from the
// command line, without writing any C++.
//
// Subcommands:
//   run        generic read-modify-write workload on a chosen engine
//   tpcc       the TPC-C-lite order-entry mix with conservation audit
//   spontorder the Figure-1 spontaneous-order measurement
//
// Examples:
//   otpdb_cli run --engine=otp --sites=4 --classes=8 --rate=200 --seconds=3
//   otpdb_cli run --engine=lazy --classes=1 --hiccup=0.2
//   otpdb_cli tpcc --warehouses=8 --sites=4 --skew=0.8
//   otpdb_cli spontorder --interval-ms=2
//
// Every run is deterministic for a given --seed.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "abcast/opt_abcast.h"
#include "baseline/conservative_replica.h"
#include "baseline/lazy_replica.h"
#include "checker/history.h"
#include "core/lock_table_replica.h"
#include "db/durable_store.h"
#include "net/spontaneous_order.h"
#include "net/topology.h"
#include "util/flags.h"
#include "workload/tpcc_lite.h"
#include "workload/workload.h"

using namespace otpdb;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: otpdb_cli <run|tpcc|spontorder> [--flags]\n"
               "  run:        --engine=otp|conservative|lazy|locktable --sites=N\n"
               "              --classes=N --objects=N --rate=TXN/S/SITE --seconds=S\n"
               "              --exec-ms=MS --query-frac=F --skew=THETA --hiccup=P\n"
               "              --cross-frac=F --cross-span=N (multi-class updates;\n"
               "              otp/conservative engines)\n"
               "              --abcast=opt|sequencer --seed=N --crash-site=S --crash-ms=T\n"
               "              --threads=N (1 = classic loop, >=2 = sharded parallel driver)\n"
               "              --topology=PROFILE (network shape; see below)\n"
               "              --storage=memory|durable --data-dir=PATH\n"
               "              --chaos=PROFILE (fault schedule; see below)\n"
               "              --offered-load=TXN/S/SITE (alias for --rate; overrides it)\n"
               "              --admission=on|off --deadline-ms=MS (overload plane; see below)\n"
               "  tpcc:       --warehouses=N --sites=N --rate=TXN/S/SITE --seconds=S\n"
               "              --skew=THETA --remote-frac=F --seed=N --threads=N\n"
               "              --topology=PROFILE --storage=memory|durable --data-dir=PATH\n"
               "              --chaos=PROFILE --offered-load=TXN/S/SITE\n"
               "              --admission=on|off --deadline-ms=MS\n"
               "  spontorder: --interval-ms=MS --messages=N --sites=N --seed=N\n"
               "\n"
               "overload plane (--admission / --deadline-ms / --offered-load):\n"
               "  --admission=on    sheds new work at the origin site while its queue\n"
               "                    depth or opt->TO delivery lag is past the high-water\n"
               "                    mark (hysteresis keeps shedding until both recede)\n"
               "  --deadline-ms=MS  per-transaction budget: refused before broadcast\n"
               "                    once the budget is spent, and dropped at the queue\n"
               "                    head by the deterministic virtual-service-clock rule\n"
               "                    (every site drops the same transactions)\n"
               "  Either flag also arms the client retry loop: refused submissions\n"
               "  back off exponentially (seeded jitter) and resubmit. Runs end with\n"
               "  an 'overload plane' summary line and the usual checks.\n"
               "\n"
               "chaos profiles (--chaos):\n"
               "  %s\n"
               "  dup-heavy  20%% message duplication + 5%% bounded reordering\n"
               "             (transport dedup absorbs the copies)\n"
               "  gray-wan   slow-but-alive links into the last site + a flapping\n"
               "             edge; provokes false suspicions the failure\n"
               "             detector's hysteresis must ride out\n"
               "  asym-flap  one-way partition toward the last site plus a\n"
               "             flapping reverse edge and light duplication\n"
               "  flaky-disk injected EIO/short-write/failed-fsync storage faults\n"
               "             (requires --storage=durable) + light duplication\n"
               "  Every profile is deterministic for a given --seed; runs end\n"
               "  with the same serializability/audit checks, so a green run\n"
               "  means the stack survived the schedule.\n"
               "\n"
               "storage (--storage):\n"
               "  memory   in-memory multi-version store only (default)\n"
               "  durable  TO-ordered group-commit WAL + checkpoints per site;\n"
               "           state lives under --data-dir=PATH (one subdirectory\n"
               "           per site; default: a fresh temp dir removed on exit)\n"
               "\n"
               "topology profiles (--topology):\n"
               "  %s\n"
               "  flat/lan ride the shared-bus medium; metro/wan/geo-3dc are\n"
               "  switched (per-site-pair delay matrix, per-edge jitter streams,\n"
               "  channel-clock parallel driver with --threads >= 2)\n",
               chaos_profile_list(), topology_profile_list());
  return 2;
}

/// Parses --topology into `config`, exiting with usage() on an unknown name.
bool apply_topology_flag(const Flags& flags, ClusterConfig& config) {
  const std::string name = flags.get("topology", "flat");
  const auto profile = parse_topology_profile(name);
  if (!profile) {
    std::fprintf(stderr, "unknown --topology=%s (profiles: %s)\n", name.c_str(),
                 topology_profile_list());
    return false;
  }
  config.net.topology = *profile;
  return true;
}

/// Parses --storage / --data-dir into `config.storage`.
bool apply_storage_flags(const Flags& flags, ClusterConfig& config) {
  const std::string backend = flags.get("storage", "memory");
  if (backend == "durable") {
    config.storage.backend = StorageBackendKind::durable;
  } else if (backend != "memory") {
    std::fprintf(stderr, "unknown --storage=%s (memory|durable)\n", backend.c_str());
    return false;
  }
  config.storage.data_dir = flags.get("data-dir", "");
  if (!config.storage.data_dir.empty() &&
      config.storage.backend != StorageBackendKind::durable) {
    std::fprintf(stderr, "--data-dir requires --storage=durable\n");
    return false;
  }
  return true;
}

/// Parses --chaos into `config` (network plan + storage faults). Called after
/// storage flags (flaky-disk needs the durable backend) with the run's
/// duration so profiles can scale their schedules.
bool apply_chaos_flag(const Flags& flags, ClusterConfig& config, SimTime duration) {
  const std::string name = flags.get("chaos", "");
  if (name.empty()) return true;
  ChaosProfile profile;
  if (!parse_chaos_profile(name, config.n_sites, duration, profile)) {
    std::fprintf(stderr, "unknown --chaos=%s (profiles: %s)\n", name.c_str(),
                 chaos_profile_list());
    return false;
  }
  config.chaos = profile.net;
  if (profile.flaky_disk) {
    if (config.storage.backend != StorageBackendKind::durable) {
      std::fprintf(stderr, "--chaos=%s injects storage faults; add --storage=durable\n",
                   name.c_str());
      return false;
    }
    config.storage.faults.enabled = true;
    config.storage.faults.seed = config.seed;
    config.storage.faults.write_error_prob = 0.02;
    config.storage.faults.torn_write_prob = 0.01;
    config.storage.faults.fsync_error_prob = 0.02;
  }
  return true;
}

/// Parses --admission into `config.admission` (default thresholds; on|off).
bool apply_admission_flag(const Flags& flags, ClusterConfig& config) {
  const std::string admission = flags.get("admission", "off");
  if (admission == "on") {
    config.admission.enabled = true;
  } else if (admission != "off") {
    std::fprintf(stderr, "unknown --admission=%s (on|off)\n", admission.c_str());
    return false;
  }
  return true;
}

/// One line of overload-plane accounting: what the ingress gates did, what
/// the clients did about it, and how many admitted transactions still missed
/// their deadline. Silent when the plane never engaged (default runs keep
/// their exact pre-overload output).
void print_overload_summary(Cluster& cluster, std::uint64_t retried, std::uint64_t gave_up) {
  std::uint64_t admitted = 0, shed = 0, backpressured = 0, presubmit = 0, queue_drops = 0;
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    const ReplicaMetrics& m = cluster.replica(s).metrics();
    admitted += m.admitted_updates;
    shed += m.shed_updates;
    backpressured += m.backpressured_updates;
    presubmit += m.deadline_expired_presubmit;
    // Queue-head drops are decided in definitive order, so every live site
    // counts the same set - take the max rather than a misleading sum.
    queue_drops = std::max(queue_drops, m.deadline_expired_queue);
  }
  if (!cluster.config().admission.enabled &&
      shed + backpressured + presubmit + queue_drops + retried + gave_up == 0) {
    return;
  }
  std::printf("  overload plane     : %llu admitted, %llu shed, %llu backpressured, "
              "%llu retried (%llu gave up), expired %llu presubmit / %llu in queue\n",
              static_cast<unsigned long long>(admitted),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(backpressured),
              static_cast<unsigned long long>(retried),
              static_cast<unsigned long long>(gave_up),
              static_cast<unsigned long long>(presubmit),
              static_cast<unsigned long long>(queue_drops));
}

/// One line of injected-fault accounting + how the stack absorbed it.
void print_chaos_summary(Cluster& cluster) {
  if (!cluster.net().chaos_armed() && !cluster.config().storage.faults.enabled) return;
  const ChaosStats cs = cluster.chaos_stats();
  const FailureDetectorStats fd = cluster.fd_stats();
  std::printf("  chaos plane        : %llu dups (%llu suppressed), %llu reorders, "
              "%llu gray delays, %llu parked/%llu released, %llu flaps\n",
              static_cast<unsigned long long>(cs.duplicates_injected),
              static_cast<unsigned long long>(cs.duplicates_suppressed),
              static_cast<unsigned long long>(cs.reorders_injected),
              static_cast<unsigned long long>(cs.gray_delays),
              static_cast<unsigned long long>(cs.deliveries_parked),
              static_cast<unsigned long long>(cs.parked_released),
              static_cast<unsigned long long>(cs.flap_transitions));
  std::printf("  suspicion churn    : %llu suspicions, %llu restored\n",
              static_cast<unsigned long long>(fd.suspicions),
              static_cast<unsigned long long>(fd.restores));
  if (cluster.config().storage.faults.enabled) {
    std::uint64_t injected = 0, io_errors = 0, io_retries = 0, sealed = 0;
    int degraded = 0, failed = 0;
    for (SiteId s = 0; s < cluster.site_count(); ++s) {
      if (const IoFaultStats* f = cluster.storage(s).io_fault_stats()) injected += f->injected();
      if (const WalStats* w = cluster.wal_stats(s)) {
        io_errors += w->io_errors;
        io_retries += w->io_retries;
        sealed += w->segments_sealed_on_error;
      }
      const StorageHealth h = cluster.storage(s).health();
      degraded += h == StorageHealth::degraded;
      failed += h == StorageHealth::failed;
    }
    std::printf("  storage faults     : %llu injected -> %llu errors seen, %llu retries, "
                "%llu segments sealed; health: %d degraded, %d failed\n",
                static_cast<unsigned long long>(injected),
                static_cast<unsigned long long>(io_errors),
                static_cast<unsigned long long>(io_retries),
                static_cast<unsigned long long>(sealed), degraded, failed);
  }
}

ReplicaFactory make_factory(const std::string& engine) {
  if (engine == "conservative") {
    return [](const ReplicaDeps& d) {
      return std::make_unique<ConservativeReplica>(d.sim, d.abcast, d.storage, d.catalog,
                                                   d.registry, d.site);
    };
  }
  if (engine == "lazy") {
    return [](const ReplicaDeps& d) {
      return std::make_unique<LazyReplica>(d.sim, d.net, d.storage, d.catalog, d.registry,
                                           d.site);
    };
  }
  if (engine == "locktable") {
    return [](const ReplicaDeps& d) {
      return std::make_unique<LockTableReplica>(d.sim, d.abcast, d.storage, d.catalog,
                                                d.registry, d.site,
                                                rmw_access_extractor(d.catalog));
    };
  }
  return nullptr;  // otp default
}

void print_cluster_summary(Cluster& cluster, double seconds, bool lazy_engine) {
  std::uint64_t committed = 0, aborts = 0, redo = 0, reorders = 0;
  OnlineStats latency, gap, query_latency;
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    const ReplicaMetrics& m = cluster.replica(s).metrics();
    committed += m.committed;
    aborts += m.aborts;
    redo += m.reexecutions;
    reorders += m.mismatch_reorders;
    latency.merge(m.commit_latency_ns);
    gap.merge(m.opt_to_gap_ns);
    query_latency.merge(m.query_latency_ns);
  }
  const double goodput =
      lazy_engine ? static_cast<double>(committed) / seconds
                  : static_cast<double>(committed) /
                        static_cast<double>(cluster.site_count()) / seconds;
  std::printf("  goodput            : %.1f txn/s (cluster-wide)\n", goodput);
  std::printf("  commit latency     : mean %.2f ms, max %.2f ms\n", latency.mean() / 1e6,
              latency.max() / 1e6);
  if (gap.count() > 0) {
    std::printf("  opt->TO gap        : mean %.2f ms\n", gap.mean() / 1e6);
  }
  std::printf("  optimistic aborts  : %llu (re-executions %llu, reorders %llu)\n",
              static_cast<unsigned long long>(aborts), static_cast<unsigned long long>(redo),
              static_cast<unsigned long long>(reorders));
  if (query_latency.count() > 0) {
    std::printf("  query latency      : mean %.2f ms over %zu queries\n",
                query_latency.mean() / 1e6, query_latency.count());
  }
  if (auto* opt = dynamic_cast<OptAbcast*>(&cluster.abcast(0))) {
    const auto& cs = opt->consensus_stats();
    if (cs.instances_decided > 0) {
      std::printf("  ordering fast path : %.1f%% of %llu stages\n",
                  100.0 * static_cast<double>(cs.fast_decides) /
                      static_cast<double>(cs.instances_decided),
                  static_cast<unsigned long long>(cs.instances_decided));
    }
  }
  if (cluster.wal_stats(0) != nullptr) {
    std::uint64_t logged = 0, fsyncs = 0, bytes = 0, checkpoints = 0;
    for (SiteId s = 0; s < cluster.site_count(); ++s) {
      const WalStats& w = *cluster.wal_stats(s);
      logged += w.commits_logged;
      fsyncs += w.fsyncs;
      bytes += w.wal_bytes;
      checkpoints += w.checkpoints;
    }
    std::printf("  durable storage    : %llu commits over %llu fsyncs "
                "(%.1f commits/fsync), %.1f KiB WAL, %llu checkpoints\n",
                static_cast<unsigned long long>(logged),
                static_cast<unsigned long long>(fsyncs),
                fsyncs > 0 ? static_cast<double>(logged) / static_cast<double>(fsyncs) : 0.0,
                static_cast<double>(bytes) / 1024.0,
                static_cast<unsigned long long>(checkpoints));
  }
}

int cmd_run(const Flags& flags) {
  const std::string engine = flags.get("engine", "otp");
  ClusterConfig config;
  config.n_sites = static_cast<std::size_t>(flags.get_int("sites", 4));
  config.n_classes = static_cast<std::size_t>(flags.get_int("classes", 8));
  config.objects_per_class = static_cast<std::uint64_t>(flags.get_int("objects", 32));
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.net.hiccup_prob = flags.get_double("hiccup", config.net.hiccup_prob);
  config.abcast =
      flags.get("abcast", "opt") == "sequencer" ? AbcastKind::sequencer : AbcastKind::optimistic;
  // 1 = classic single-queue loop; >=2 = site-sharded engine on real cores.
  config.parallel.threads = static_cast<unsigned>(flags.get_int("threads", 1));
  const SimTime duration = static_cast<SimTime>(flags.get_double("seconds", 2.0) * 1e9);
  if (!apply_topology_flag(flags, config)) return usage();
  if (!apply_storage_flags(flags, config)) return usage();
  if (!apply_chaos_flag(flags, config, duration)) return usage();
  if (!apply_admission_flag(flags, config)) return usage();

  ReplicaFactory factory = make_factory(engine);
  auto cluster = factory ? std::make_unique<Cluster>(config, std::move(factory))
                         : std::make_unique<Cluster>(config);
  HistoryRecorder recorder(*cluster);

  WorkloadConfig wl;
  wl.updates_per_second_per_site =
      flags.get_double("offered-load", flags.get_double("rate", 100.0));
  wl.mean_exec_time = static_cast<SimTime>(flags.get_double("exec-ms", 3.0) * 1e6);
  wl.query_fraction = flags.get_double("query-frac", 0.0);
  wl.class_skew_theta = flags.get_double("skew", 0.0);
  wl.cross_class_fraction = flags.get_double("cross-frac", 0.0);
  wl.cross_class_span = static_cast<std::size_t>(flags.get_int("cross-span", 2));
  wl.duration = duration;
  wl.deadline_budget = static_cast<SimTime>(flags.get_double("deadline-ms", 0.0) * 1e6);
  // Either overload knob arms the client retry loop (refusals back off and
  // resubmit instead of being dropped on the floor).
  if (config.admission.enabled || wl.deadline_budget != 0) wl.max_retries = 8;
  WorkloadDriver driver(*cluster, wl, config.seed * 7 + 3);
  driver.start();

  const auto crash_site = flags.get_int("crash-site", -1);
  if (crash_site >= 0) {
    const SimTime crash_at = static_cast<SimTime>(flags.get_double("crash-ms", 500.0) * 1e6);
    cluster->sim().schedule_at(crash_at, [&cluster, crash_site] {
      cluster->crash_site(static_cast<SiteId>(crash_site));
      std::printf("  !! crashed site %lld\n", static_cast<long long>(crash_site));
    });
    const SimTime recover_at = crash_at + 300 * kMillisecond;
    cluster->sim().schedule_at(recover_at, [&cluster, crash_site] {
      cluster->recover_site(static_cast<SiteId>(crash_site));
      std::printf("  !! recovered site %lld\n", static_cast<long long>(crash_site));
    });
  }

  cluster->run_for(wl.duration);
  const bool drained = cluster->quiesce(120 * kSecond);
  cluster->run_for(kSecond);

  std::printf("run: engine=%s sites=%zu classes=%zu rate=%.0f/s/site seed=%llu\n",
              engine.c_str(), config.n_sites, config.n_classes,
              wl.updates_per_second_per_site,
              static_cast<unsigned long long>(config.seed));
  std::printf("  submitted          : %llu updates, %llu queries%s\n",
              static_cast<unsigned long long>(driver.updates_submitted()),
              static_cast<unsigned long long>(driver.queries_submitted()),
              drained ? "" : "  (WARNING: did not drain)");
  const double seconds = static_cast<double>(cluster->sim().now()) / 1e9;
  print_cluster_summary(*cluster, seconds, engine == "lazy");
  print_overload_summary(*cluster, driver.retries(), driver.gave_up());
  print_chaos_summary(*cluster);

  const auto check = engine == "locktable"
                         ? check_object_level_serializability(recorder.site_logs())
                         : check_one_copy_serializability(recorder.site_logs());
  std::printf("  serializability    : %s\n", check.ok() ? "1-copy-serializable" : "VIOLATED");
  if (!check.ok()) std::printf("%s\n", check.summary().c_str());
  return 0;
}

int cmd_tpcc(const Flags& flags) {
  ClusterConfig config;
  config.n_sites = static_cast<std::size_t>(flags.get_int("sites", 4));
  config.n_classes = static_cast<std::size_t>(flags.get_int("warehouses", 8));
  tpcc::Layout layout;
  config.objects_per_class = layout.objects_per_warehouse();
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  config.parallel.threads = static_cast<unsigned>(flags.get_int("threads", 1));
  const SimTime duration = static_cast<SimTime>(flags.get_double("seconds", 2.0) * 1e9);
  if (!apply_topology_flag(flags, config)) return usage();
  if (!apply_storage_flags(flags, config)) return usage();
  if (!apply_chaos_flag(flags, config, duration)) return usage();
  if (!apply_admission_flag(flags, config)) return usage();
  Cluster cluster(config);

  tpcc::MixConfig mix;
  mix.txn_per_second_per_site =
      flags.get_double("offered-load", flags.get_double("rate", 120.0));
  mix.duration = duration;
  mix.warehouse_skew_theta = flags.get_double("skew", 0.0);
  mix.remote_txn_fraction = flags.get_double("remote-frac", 0.0);
  mix.deadline_budget = static_cast<SimTime>(flags.get_double("deadline-ms", 0.0) * 1e6);
  if (config.admission.enabled || mix.deadline_budget != 0) mix.max_retries = 8;
  tpcc::TpccDriver driver(cluster, layout, mix, config.seed + 41);
  driver.start();
  cluster.run_for(mix.duration);
  const bool drained = cluster.quiesce(120 * kSecond);

  const auto& stats = driver.stats();
  std::printf("tpcc: %zu warehouses, %zu sites, %.0f txn/s/site%s\n", config.n_classes,
              config.n_sites, mix.txn_per_second_per_site,
              drained ? "" : "  (WARNING: did not drain)");
  std::printf("  mix submitted      : %llu NewOrder / %llu Payment / %llu Delivery / "
              "%llu StockLevel\n",
              static_cast<unsigned long long>(stats.new_orders),
              static_cast<unsigned long long>(stats.payments),
              static_cast<unsigned long long>(stats.deliveries),
              static_cast<unsigned long long>(stats.stock_level_queries));
  print_cluster_summary(cluster, static_cast<double>(cluster.sim().now()) / 1e9, false);
  print_overload_summary(cluster, stats.retries, stats.gave_up);
  print_chaos_summary(cluster);
  bool clean = true;
  for (SiteId s = 0; s < cluster.site_count(); ++s) clean &= driver.audit(s).empty();
  std::printf("  conservation audit : %s\n", clean ? "clean at every site" : "VIOLATED");
  return clean ? 0 : 1;
}

int cmd_spontorder(const Flags& flags) {
  struct Blank final : Payload {};
  const std::size_t sites = static_cast<std::size_t>(flags.get_int("sites", 4));
  const int per_site = static_cast<int>(flags.get_int("messages", 400));
  const double interval_ms = flags.get_double("interval-ms", 2.0);
  const SimTime interval = interval_ms <= 0.0
                               ? static_cast<SimTime>(sites) * 100 * kMicrosecond
                               : static_cast<SimTime>(interval_ms * 1e6);
  Simulator sim;
  Network net(sim, sites, NetConfig{}, Rng(static_cast<std::uint64_t>(flags.get_int("seed", 1))));
  for (SiteId s = 0; s < sites; ++s) net.subscribe(s, 0, [](const Message&) {});
  net.record_arrivals(0);
  for (SiteId s = 0; s < sites; ++s) {
    const SimTime phase = static_cast<SimTime>(s) * interval / static_cast<SimTime>(sites);
    for (int i = 0; i < per_site; ++i) {
      sim.schedule_at(phase + static_cast<SimTime>(i) * interval,
                      [&net, s] { net.multicast(s, 0, std::make_shared<Blank>()); });
    }
  }
  sim.run();
  const auto stats = analyze_spontaneous_order(net.arrival_logs());
  std::printf("spontorder: %zu sites, %d msgs/site, interval %.2f ms\n", sites, per_site,
              interval_ms);
  std::printf("  spontaneously ordered (pair agreement) : %.2f%%\n",
              100.0 * stats.pair_agreement());
  std::printf("  identical arrival rank at all sites    : %.2f%%\n",
              100.0 * stats.position_agreement());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Flags flags(argc - 1, argv + 1);
  if (cmd == "run") return cmd_run(flags);
  if (cmd == "tpcc") return cmd_tpcc(flags);
  if (cmd == "spontorder") return cmd_spontorder(flags);
  return usage();
}
