#!/usr/bin/env python3
"""Build Release and run the perf-trajectory bench suite, writing a JSON
summary (BENCH_*.json) so every PR records before/after numbers on the same
machine.

Per bench binary it records:
  * wall_clock_s     - wall time of the whole binary run (fixed-work benches
                       like tpcc_mix pin Iterations(1), so this is comparable
                       across commits; auto-tuned micro benches are not).
  * fixed_work_ms    - sum of per-iteration real_time over all benchmarks in
                       the binary: the machine-time one pass of every bench
                       costs. This is the primary wall-clock comparison metric
                       (iteration auto-tuning cancels out).
  * benchmarks       - per-benchmark real_time (+ selected counters).

Usage:
  tools/run_benches.py [--build-dir BUILD] [--out BENCH.json]
                       [--compare OLD.json] [--skip-build]
                       [--repetitions N] [--bench NAME ...]

--compare embeds the old run and computes per-binary speedups
(old fixed_work_ms / new fixed_work_ms).
"""

import argparse
import json
import os
import platform
import re
import subprocess
import sys
import time
from pathlib import Path

DEFAULT_BENCHES = ["micro_components", "otp_vs_lazy", "tpcc_mix", "cross_class",
                   "scalability", "geo_mismatch", "chaos_robustness", "overload"]

# Counters worth keeping in the trajectory (throughput/latency/consistency).
KEEP_COUNTERS = (
    "txn_per_s",
    "latency_ms",
    "latency_mean_ms",
    "abort_pct",
    "audit_clean",
    "query_latency_ms",
    "lost_update_conflicts",
    "items_per_second",
    "cross_pct",
    "remote_pct",
    "serializable",
    "threads",
    "sites",
    "allocs_per_event",
    "sim_events",
    # Topology / channel-clock sweep (PR 6).
    "rounds",
    "rounds_vs_global",
    "mismatch_pct",
    "fast_path_pct",
    "ordering_gap_ms",
    # Storage-tier sweep (PR 7): group-commit WAL counters.
    "wal_commits",
    "wal_fsyncs",
    "group_commit_batch",
    "wal_kib",
    "checkpoints",
    "segments_truncated",
    # Chaos plane (PR 8): the injection ledger. These must stay nonzero on
    # the chaos profiles - a silent zero means a fault clause stopped firing
    # and the robustness rows are measuring nothing.
    "dups_injected",
    "dups_suppressed",
    "reorders_injected",
    "gray_delays",
    "deliveries_parked",
    "parked_released",
    "flap_transitions",
    "fd_suspicions",
    "fd_restores",
    "io_faults_injected",
    "wal_io_errors",
    "wal_io_retries",
    # Overload plane (PR 10): the offered-load sweep past saturation. The
    # headline row is goodput_at_saturation = goodput(2x)/goodput(1x); the
    # acceptance floor is 0.85 (plateau, not collapse).
    "load_multiplier",
    "goodput_txn_per_s",
    "goodput_peak",
    "goodput_2x",
    "goodput_at_saturation",
    "shed_fraction",
    "shed",
    "backpressured",
    "retries",
    "gave_up",
    "deadline_expired",
    "deadline_presubmit",
    "p99_ms",
)

# Benchmark names encode the parallel-driver sweep as a "threads:N" segment
# (google-benchmark ArgNames). N=1 is the classic single-queue loop and the
# speedup baseline; N=0 is the sharded engine with one worker (windowing
# overhead only); N>=2 are real worker counts.
THREADS_SEGMENT = re.compile(r"/threads:(\d+)")

REPO_ROOT = Path(__file__).resolve().parent.parent


def run(cmd, **kwargs):
    print("+", " ".join(str(c) for c in cmd), flush=True)
    subprocess.run(cmd, check=True, **kwargs)


def build(build_dir: Path):
    run(["cmake", "-B", str(build_dir), "-S", str(REPO_ROOT),
         "-DCMAKE_BUILD_TYPE=Release", "-DOTPDB_BUILD_BENCHES=ON"])
    run(["cmake", "--build", str(build_dir), "-j"])


def to_ms(value: float, unit: str) -> float:
    return value * {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]


def run_bench(build_dir: Path, name: str, repetitions: int) -> dict:
    binary = build_dir / f"bench_{name}"
    if not binary.exists():
        print(f"warning: {binary} missing (benches disabled?); skipping", file=sys.stderr)
        return {"skipped": True}
    out_json = build_dir / f"bench_{name}.json"
    cmd = [str(binary), "--benchmark_format=json", f"--benchmark_out={out_json}"]
    if repetitions > 1:
        cmd += [f"--benchmark_repetitions={repetitions}",
                "--benchmark_report_aggregates_only=true"]
    start = time.monotonic()
    run(cmd, stdout=subprocess.DEVNULL)
    wall = time.monotonic() - start

    raw = json.loads(out_json.read_text())
    benchmarks = []
    fixed_work_ms = 0.0
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate" and b.get("aggregate_name") != "mean":
            continue
        entry = {
            "name": b["name"],
            "real_time": b["real_time"],
            "cpu_time": b.get("cpu_time"),
            "time_unit": b["time_unit"],
            "iterations": b.get("iterations"),
        }
        for counter in KEEP_COUNTERS:
            if counter in b:
                entry[counter] = b[counter]
        benchmarks.append(entry)
        fixed_work_ms += to_ms(b["real_time"], b["time_unit"])
    return {
        "wall_clock_s": round(wall, 3),
        "fixed_work_ms": round(fixed_work_ms, 3),
        "benchmarks": benchmarks,
    }


def parallel_speedups(benches: dict) -> dict:
    """Serial-vs-parallel table: for every benchmark family swept over a
    threads:N axis, wall-clock speedup of each N against the classic-loop
    baseline (threads:1). Values < 1 mean the parallel driver was slower
    (expected when the host has fewer free cores than workers)."""
    table = {}
    for bench_name, bench in benches.items():
        families = {}
        for b in bench.get("benchmarks", []):
            match = THREADS_SEGMENT.search(b["name"])
            if not match:
                continue
            family = THREADS_SEGMENT.sub("", b["name"])
            families.setdefault(family, {})[int(match.group(1))] = to_ms(
                b["real_time"], b["time_unit"])
        for family, rows in families.items():
            base = rows.get(1)
            if base is None or base <= 0:
                continue
            table[f"{bench_name}:{family}"] = {
                "serial_ms": round(base, 3),
                "speedup_by_threads": {
                    str(n): round(base / ms, 3)
                    for n, ms in sorted(rows.items()) if n != 1 and ms > 0
                },
            }
    return table


def max_swept_threads(benches: dict) -> int:
    """Largest threads:N any benchmark row in this run swept."""
    top = 0
    for bench in benches.values():
        for b in bench.get("benchmarks", []):
            match = THREADS_SEGMENT.search(b["name"])
            if match:
                top = max(top, int(match.group(1)))
    return top


def print_speedup_table(table: dict, degraded: bool):
    if not table:
        return
    print("  serial-vs-parallel (wall-clock, threads:1 classic loop = 1.0;"
          " threads:0 = sharded single worker):")
    if degraded:
        print("    !! DEGRADED: this host has fewer cpus than the largest"
              " swept worker count - parallel rows measure oversubscription,"
              " not scaling; compare them only against runs of this same host")
    for family, row in table.items():
        cells = ", ".join(f"x{n}={s}" for n, s in row["speedup_by_threads"].items())
        print(f"    {family}: serial {row['serial_ms']}ms; {cells}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build-bench")
    parser.add_argument("--out", default="BENCH_PR1.json")
    parser.add_argument("--compare", help="previous run to embed + compute speedups against")
    parser.add_argument("--skip-build", action="store_true")
    parser.add_argument("--repetitions", type=int, default=1)
    parser.add_argument("--bench", action="append",
                        help=f"bench binary names (default: {DEFAULT_BENCHES})")
    args = parser.parse_args()

    build_dir = (REPO_ROOT / args.build_dir).resolve()
    if not args.skip_build:
        build(build_dir)

    result = {
        # v2: threads axis + parallel_speedup table; v3: degraded_parallel
        # stamp + topology/channel-clock counters; v4: storage axis
        # (memory vs durable WAL) with group-commit/fsync counters; v5:
        # chaos axis (chaos_robustness bench) with injected-fault counters;
        # v6: overload axis (overload bench) with admission/backpressure/
        # deadline/retry counters and the goodput plateau ratio.
        "schema": "otpdb-bench-v6",
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            # Parallel-driver rows are meaningless without knowing how many
            # cores the recording host could actually run workers on.
            "cpus": os.cpu_count(),
        },
        "benches": {},
    }
    for name in args.bench or DEFAULT_BENCHES:
        result["benches"][name] = run_bench(build_dir, name, args.repetitions)
    result["parallel_speedup"] = parallel_speedups(result["benches"])
    # Parallel rows recorded on a host with fewer cpus than the largest swept
    # worker count measure oversubscription, not scaling. Stamp the run so a
    # later comparison on a wider machine doesn't read them as regressions.
    cpus = result["host"]["cpus"]
    result["degraded_parallel"] = bool(
        cpus is not None and cpus < max_swept_threads(result["benches"]))

    if args.compare:
        old = json.loads(Path(args.compare).read_text())
        result["compared_against"] = old
        speedups = {}
        for name, new in result["benches"].items():
            old_bench = old.get("benches", {}).get(name)
            if not old_bench or "fixed_work_ms" not in old_bench or new.get("skipped"):
                continue
            # Compare over the intersection of benchmark rows only: a binary
            # that grew new benchmarks (e.g. a threads sweep) must not read
            # as a regression of its pre-existing rows. Aggregate rows
            # ("..._mean" under --repetitions) match their plain-named
            # counterparts.
            def base_name(name: str) -> str:
                return name[:-5] if name.endswith("_mean") else name
            old_rows = {base_name(b["name"]): b for b in old_bench.get("benchmarks", [])}
            old_ms = new_ms = 0.0
            for b in new.get("benchmarks", []):
                old_row = old_rows.get(base_name(b["name"]))
                if old_row is None:
                    continue
                old_ms += to_ms(old_row["real_time"], old_row["time_unit"])
                new_ms += to_ms(b["real_time"], b["time_unit"])
            if new_ms > 0:
                speedups[name] = round(old_ms / new_ms, 3)
        result["speedup_fixed_work"] = speedups

    out_path = REPO_ROOT / args.out
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {out_path}")
    for name, bench in result["benches"].items():
        if bench.get("skipped"):
            continue
        print(f"  {name}: wall {bench['wall_clock_s']}s, fixed-work {bench['fixed_work_ms']}ms")
    if "speedup_fixed_work" in result:
        print("  speedups vs", args.compare, result["speedup_fixed_work"])
    print_speedup_table(result["parallel_speedup"], result["degraded_parallel"])
    return 0


if __name__ == "__main__":
    sys.exit(main())
