// Claim C3 (paper Section 1): OTP "compares favorably with existing
// commercial solutions for database replication in terms of performance and
// consistency": asynchronous (lazy) replication is fast because update
// coordination happens after commit, but it gives up global consistency; OTP
// reaches comparable throughput and latency while staying
// 1-copy-serializable.
//
// Same workload, same network, two engines. Counters: throughput, commit
// latency, lost-update conflicts (lazy's consistency violations; OTP: zero by
// construction, cross-checked by the serializability checker in tests).
#include <benchmark/benchmark.h>

#include "baseline/lazy_replica.h"
#include "bench_common.h"

namespace otpdb::bench {
namespace {

void BM_OtpVsLazy(benchmark::State& state) {
  const bool use_lazy = state.range(0) == 1;
  const auto n_classes = static_cast<std::size_t>(state.range(1));
  ClusterTotals t;
  std::uint64_t conflicts = 0;
  double duration_s = 0;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = n_classes;
    config.objects_per_class = 16;
    config.seed = 555;
    config.net = lan();
    auto cluster = use_lazy ? std::make_unique<Cluster>(config, lazy_factory())
                            : std::make_unique<Cluster>(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 100;
    wl.mean_exec_time = 2 * kMillisecond;
    wl.ops_per_txn = 2;
    wl.duration = 3 * kSecond;
    WorkloadDriver driver(*cluster, wl, 17);
    driver.start();
    cluster->run_for(wl.duration);
    cluster->quiesce(120 * kSecond);
    cluster->run_for(2 * kSecond);  // drain lazy propagation
    t = totals(*cluster);
    duration_s = static_cast<double>(cluster->sim().now()) / 1e9;
    if (use_lazy) {
      for (SiteId s = 0; s < cluster->site_count(); ++s) {
        conflicts += dynamic_cast<LazyReplica&>(cluster->replica(s)).conflicts_detected();
      }
    }
  }
  state.SetLabel(use_lazy ? "lazy" : "otp");
  state.counters["classes"] = static_cast<double>(n_classes);
  state.counters["latency_mean_ms"] = to_ms(t.commit_latency_ns.mean());
  state.counters["txn_per_s"] = goodput(t, 4, duration_s, use_lazy);
  state.counters["lost_update_conflicts"] = static_cast<double>(conflicts);
}
BENCHMARK(BM_OtpVsLazy)
    ->ArgsProduct({{0, 1}, {1, 4, 16}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
