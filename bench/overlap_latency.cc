// Claim C1 (paper Sections 1, 3.1): overlapping transaction execution with the
// broadcast's coordination phase hides the ordering latency - OTP's commit
// latency approaches max(execution, ordering) while the conservative engine
// pays execution + ordering in sequence.
//
// Sweep: stored-procedure execution time from well below to well above the
// ordering delay. Engines: OTP, conservative (same broadcast), lazy (no
// coordination at all - the latency floor).
//
// Counters per point: commit latency mean/p95 (ms), residual commit wait (ms,
// the unhidden part of the ordering cost), ordering gap (opt->TO, ms),
// throughput (txn/s).
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace otpdb::bench {
namespace {

enum class Engine : std::int64_t { otp = 0, conservative = 1, lazy = 2 };

const char* engine_name(Engine e) {
  switch (e) {
    case Engine::otp: return "otp";
    case Engine::conservative: return "conservative";
    case Engine::lazy: return "lazy";
  }
  return "?";
}

void BM_OverlapLatency(benchmark::State& state) {
  const auto engine = static_cast<Engine>(state.range(0));
  const SimTime exec_time = state.range(1) * kMillisecond;
  ClusterTotals t;
  double duration_s = 0;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = 16;
    config.seed = 4242;
    config.net = lan();
    auto cluster = [&] {
      switch (engine) {
        case Engine::conservative: return std::make_unique<Cluster>(config, conservative_factory());
        case Engine::lazy: return std::make_unique<Cluster>(config, lazy_factory());
        case Engine::otp: default: return std::make_unique<Cluster>(config);
      }
    }();
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 60;
    wl.mean_exec_time = exec_time;
    wl.exponential_exec = false;  // constant cost isolates the overlap effect
    wl.duration = 3 * kSecond;
    WorkloadDriver driver(*cluster, wl, 99);
    driver.start();
    cluster->run_for(wl.duration);
    cluster->quiesce(120 * kSecond);
    t = totals(*cluster);
    duration_s = static_cast<double>(cluster->sim().now()) / 1e9;
  }
  state.SetLabel(engine_name(engine));
  state.counters["exec_ms"] = static_cast<double>(state.range(1));
  state.counters["latency_mean_ms"] = to_ms(t.commit_latency_ns.mean());
  state.counters["latency_p95_ms"] = to_ms(t.commit_latency_percentiles_ns.percentile(95));
  state.counters["latency_p99_ms"] = to_ms(t.commit_latency_percentiles_ns.percentile(99));
  state.counters["commit_wait_ms"] = to_ms(t.commit_wait_ns.mean());
  state.counters["ordering_gap_ms"] = to_ms(t.opt_to_gap_ns.mean());
  state.counters["txn_per_s"] = goodput(t, 4, duration_s, engine == Engine::lazy);
}
BENCHMARK(BM_OverlapLatency)
    ->ArgsProduct({{0, 1, 2}, {0, 1, 2, 5, 10, 20}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
