// Overload bench: offered-load sweep past the cluster's service capacity
// with the full overload plane armed - admission control (hysteresis
// shedding), sender backpressure, per-transaction deadline budgets, and the
// clients' deterministic retry loop. The paper's engines process every
// committed transaction serially per conflict class at every site, so the
// cluster-wide service capacity is ~ n_classes / mean_exec_time; the sweep
// crosses it at multipliers 0.5x..3x.
//
// The claim under test: goodput must *plateau* past saturation instead of
// collapsing - shed work costs a refusal, not a queue slot, and deadline
// drops reclaim service time the transaction could no longer use. The
// plateau benchmark reports goodput(2x)/goodput(1x) directly
// (goodput_at_saturation; the acceptance floor is 0.85), the sweep reports
// the per-point trajectory (goodput, shed fraction, retries, deadline
// drops, p99), and the chaos leg composes 2x overload with the gray-wan
// fault schedule to show the plane and the chaos plane do not fight.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "bench_common.h"
#include "net/fault_plan.h"

namespace otpdb::bench {
namespace {

// Sweep axis: offered load as a multiple of the service-capacity estimate.
const double kLoadMultipliers[] = {0.5, 1.0, 1.5, 2.0, 3.0};

constexpr std::size_t kSites = 4;
constexpr std::size_t kClasses = 8;
constexpr SimTime kMeanExec = 4 * kMillisecond;
constexpr SimTime kDuration = 2 * kSecond;

/// Cluster-wide committed-transaction capacity: each conflict class is a
/// serial resource and every site executes every transaction, so the cluster
/// can commit at most one transaction per class per mean service time.
double saturation_rate_per_site() {
  const double cluster_capacity =
      static_cast<double>(kClasses) * 1e9 / static_cast<double>(kMeanExec);
  return cluster_capacity / static_cast<double>(kSites);
}

struct OverloadResult {
  double goodput = 0;        // committed txn/s, cluster-wide distinct
  double shed_fraction = 0;  // shed / (admitted + shed + backpressured)
  double p99_ms = 0;
  std::uint64_t shed = 0;
  std::uint64_t backpressured = 0;
  std::uint64_t retries = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t deadline_queue_drops = 0;  // per site (replicated decision)
  std::uint64_t deadline_presubmit = 0;
  bool serializable = true;
};

OverloadResult run_overload(bool conservative, double load_multiplier,
                            const char* chaos_profile) {
  ClusterConfig config;
  config.n_sites = kSites;
  config.n_classes = kClasses;
  config.objects_per_class = 64;
  config.seed = 4242;
  config.net = lan();
  // The full overload plane: admission hysteresis at the defaults, a sender
  // in-flight cap, and (below) client deadline budgets + retries.
  config.admission.enabled = true;
  config.opt.max_inflight_per_sender = 256;
  if (chaos_profile != nullptr) {
    ChaosProfile profile;
    if (!parse_chaos_profile(chaos_profile, config.n_sites, kDuration, profile)) {
      return OverloadResult{};
    }
    config.chaos = profile.net;
  }

  auto cluster = conservative ? std::make_unique<Cluster>(config, conservative_factory())
                              : std::make_unique<Cluster>(config);

  WorkloadConfig wl;
  wl.updates_per_second_per_site = saturation_rate_per_site() * load_multiplier;
  wl.mean_exec_time = kMeanExec;
  wl.duration = kDuration;
  wl.deadline_budget = 250 * kMillisecond;
  wl.max_retries = 6;
  WorkloadDriver driver(*cluster, wl, 77);
  driver.start();
  cluster->run_for(wl.duration);
  cluster->quiesce(180 * kSecond);

  OverloadResult r;
  const double seconds = static_cast<double>(cluster->sim().now()) / 1e9;
  ClusterTotals t = totals(*cluster);
  std::uint64_t admitted = 0;
  for (SiteId s = 0; s < cluster->site_count(); ++s) {
    const ReplicaMetrics& m = cluster->replica(s).metrics();
    admitted += m.admitted_updates;
    r.shed += m.shed_updates;
    r.backpressured += m.backpressured_updates;
    r.deadline_presubmit += m.deadline_expired_presubmit;
    // Decided in definitive order: every site counts the same drops.
    r.deadline_queue_drops = std::max(r.deadline_queue_drops, m.deadline_expired_queue);
  }
  r.goodput = goodput(t, cluster->site_count(), seconds, false);
  const std::uint64_t attempts = admitted + r.shed + r.backpressured;
  r.shed_fraction = attempts > 0 ? static_cast<double>(r.shed + r.backpressured) /
                                       static_cast<double>(attempts)
                                 : 0.0;
  r.p99_ms = to_ms(t.commit_latency_percentiles_ns.percentile(99.0));
  r.retries = driver.retries();
  r.gave_up = driver.gave_up();
  return r;
}

void set_common_counters(benchmark::State& state, const OverloadResult& r) {
  state.counters["goodput_txn_per_s"] = r.goodput;
  state.counters["shed_fraction"] = r.shed_fraction;
  state.counters["shed"] = static_cast<double>(r.shed);
  state.counters["backpressured"] = static_cast<double>(r.backpressured);
  state.counters["retries"] = static_cast<double>(r.retries);
  state.counters["gave_up"] = static_cast<double>(r.gave_up);
  state.counters["deadline_expired"] = static_cast<double>(r.deadline_queue_drops);
  state.counters["deadline_presubmit"] = static_cast<double>(r.deadline_presubmit);
  state.counters["p99_ms"] = r.p99_ms;
}

// ---- Sweep: per-point trajectory, OTP vs conservative ----------------------

void BM_OverloadSweep(benchmark::State& state) {
  const bool conservative = state.range(0) == 1;
  const double mult = kLoadMultipliers[state.range(1)];
  OverloadResult r;
  for (auto _ : state) r = run_overload(conservative, mult, nullptr);
  state.SetLabel(std::string(conservative ? "conservative" : "otp") + "/load=" +
                 std::to_string(mult).substr(0, 3) + "x");
  state.counters["load_multiplier"] = mult;
  set_common_counters(state, r);
}
BENCHMARK(BM_OverloadSweep)
    ->ArgNames({"engine", "load"})
    ->ArgsProduct({{0, 1}, {0, 1, 2, 3, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---- Plateau: the acceptance ratio, computed inside one run ----------------

void BM_OverloadPlateau(benchmark::State& state) {
  const bool conservative = state.range(0) == 1;
  double ratio = 0, peak = 0, at_2x = 0;
  for (auto _ : state) {
    // Peak = best of the at/below-saturation points; the plateau claim is
    // goodput at 2x saturation staying within 0.85x of it.
    const OverloadResult r1 = run_overload(conservative, 1.0, nullptr);
    const OverloadResult r2 = run_overload(conservative, 2.0, nullptr);
    peak = r1.goodput;
    at_2x = r2.goodput;
    ratio = peak > 0 ? at_2x / peak : 0;
  }
  state.SetLabel(conservative ? "conservative" : "otp");
  state.counters["goodput_peak"] = peak;
  state.counters["goodput_2x"] = at_2x;
  state.counters["goodput_at_saturation"] = ratio;
}
BENCHMARK(BM_OverloadPlateau)
    ->ArgNames({"engine"})
    ->DenseRange(0, 1, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// ---- Chaos composition: 2x overload under the gray-wan fault schedule ------

void BM_OverloadUnderChaos(benchmark::State& state) {
  OverloadResult r;
  for (auto _ : state) r = run_overload(/*conservative=*/false, 2.0, "gray-wan");
  state.SetLabel("otp/load=2.0x/gray-wan");
  set_common_counters(state, r);
}
BENCHMARK(BM_OverloadUnderChaos)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
