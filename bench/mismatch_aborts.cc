// Claim C2 (paper Section 3.2): a mismatch between tentative and definitive
// order only costs work when the mis-ordered transactions *conflict*. With low
// to medium conflict rates, tentative and definitive order "might differ
// considerably without leading to high abort rates".
//
// Sweep: conflict concentration (number of conflict classes; fewer classes =
// more conflicts) x network turbulence (hiccup probability; more turbulence =
// more tentative-order mismatches).
//
// Counters: abort rate (% of commits preceded by an undo), reorder rate
// (CC10 moves - mismatches among conflicting txns), fast-path % (network-level
// mismatch indicator), goodput (txn/s).
#include <benchmark/benchmark.h>

#include "abcast/opt_abcast.h"
#include "bench_common.h"

namespace otpdb::bench {
namespace {

void BM_MismatchAborts(benchmark::State& state) {
  const auto n_classes = static_cast<std::size_t>(state.range(0));
  const double hiccup_prob = static_cast<double>(state.range(1)) / 100.0;
  ClusterTotals t;
  double fast_pct = 0;
  double duration_s = 0;
  for (auto _ : state) {
    ClusterConfig config;
    config.n_sites = 4;
    config.n_classes = n_classes;
    config.seed = 777;
    config.net = lan();
    config.net.hiccup_prob = hiccup_prob;
    config.net.hiccup_mean = 600 * kMicrosecond;
    Cluster cluster(config);
    WorkloadConfig wl;
    wl.updates_per_second_per_site = 80;
    wl.mean_exec_time = 2 * kMillisecond;
    wl.duration = 3 * kSecond;
    WorkloadDriver driver(cluster, wl, 31);
    driver.start();
    cluster.run_for(wl.duration);
    cluster.quiesce(120 * kSecond);
    t = totals(cluster);
    duration_s = static_cast<double>(cluster.sim().now()) / 1e9;
    if (auto* opt = dynamic_cast<OptAbcast*>(&cluster.abcast(0))) {
      const auto& cs = opt->consensus_stats();
      fast_pct = cs.instances_decided ? 100.0 * static_cast<double>(cs.fast_decides) /
                                            static_cast<double>(cs.instances_decided)
                                      : 100.0;
    }
  }
  state.counters["classes"] = static_cast<double>(n_classes);
  state.counters["hiccup_pct"] = 100.0 * hiccup_prob;
  state.counters["abort_pct"] =
      t.committed ? 100.0 * static_cast<double>(t.aborts) / static_cast<double>(t.committed)
                  : 0.0;
  state.counters["reorder_pct"] =
      t.committed ? 100.0 * static_cast<double>(t.reorders) / static_cast<double>(t.committed)
                  : 0.0;
  state.counters["fast_path_pct"] = fast_pct;
  state.counters["txn_per_s"] =
      duration_s > 0 ? static_cast<double>(t.committed) / 4.0 / duration_s : 0;
}
BENCHMARK(BM_MismatchAborts)
    ->ArgsProduct({{1, 2, 4, 8, 16}, {0, 6, 20, 40}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
