// Ablation study over OptAbcast's design knobs (DESIGN.md architecture
// decisions). Each knob trades the identical-proposal fast-path probability
// against ordering latency or robustness:
//
//   batch_delay        - stage cadence: larger batches amortize consensus but
//                        add queueing delay to the opt->TO gap.
//   alignment_window   - holds fresh arrivals out of a stage so all sites
//                        propose the same set; pure latency vs. fast-path %.
//   max_outstanding    - stage pipelining: >1 decouples stage cadence from
//                        decision latency but lets proposal sets diverge
//                        after any mismatch (the measured fast-path collapse
//                        is why the default is 1).
//   fast_wait          - how long a round-0 coordinator waits for the fast
//                        path before forcing a coordinated round.
//
// Counters per point: fast_path_pct, opt->TO gap (ms), commit latency (ms),
// abort %.
#include <benchmark/benchmark.h>

#include "abcast/opt_abcast.h"
#include "bench_common.h"

namespace otpdb::bench {
namespace {

struct AblationResult {
  double fast_pct = 0;
  double gap_ms = 0;
  double latency_ms = 0;
  double abort_pct = 0;
};

AblationResult run_with(OptAbcastConfig opt) {
  ClusterConfig config;
  config.n_sites = 4;
  config.n_classes = 8;
  config.seed = 31415;
  config.net = lan();
  config.opt = opt;
  Cluster cluster(config);
  WorkloadConfig wl;
  wl.updates_per_second_per_site = 100;
  wl.mean_exec_time = 3 * kMillisecond;
  wl.duration = 3 * kSecond;
  WorkloadDriver driver(cluster, wl, 2718);
  driver.start();
  cluster.run_for(wl.duration);
  cluster.quiesce(120 * kSecond);

  AblationResult r;
  const ClusterTotals t = totals(cluster);
  const auto& cs = dynamic_cast<OptAbcast&>(cluster.abcast(0)).consensus_stats();
  r.fast_pct = cs.instances_decided ? 100.0 * static_cast<double>(cs.fast_decides) /
                                          static_cast<double>(cs.instances_decided)
                                    : 100.0;
  r.gap_ms = to_ms(t.opt_to_gap_ns.mean());
  r.latency_ms = to_ms(t.commit_latency_ns.mean());
  r.abort_pct = t.committed
                    ? 100.0 * static_cast<double>(t.aborts) / static_cast<double>(t.committed)
                    : 0.0;
  return r;
}

void report(benchmark::State& state, const AblationResult& r) {
  state.counters["fast_path_pct"] = r.fast_pct;
  state.counters["opt_to_gap_ms"] = r.gap_ms;
  state.counters["latency_ms"] = r.latency_ms;
  state.counters["abort_pct"] = r.abort_pct;
}

void BM_Ablation_BatchDelay(benchmark::State& state) {
  AblationResult r;
  for (auto _ : state) {
    OptAbcastConfig opt;
    opt.batch_delay = state.range(0) * 100 * kMicrosecond;
    r = run_with(opt);
  }
  state.counters["batch_delay_us"] = static_cast<double>(state.range(0)) * 100;
  report(state, r);
}
BENCHMARK(BM_Ablation_BatchDelay)->Arg(2)->Arg(5)->Arg(10)->Arg(20)->Arg(50)->Iterations(1);

void BM_Ablation_AlignmentWindow(benchmark::State& state) {
  AblationResult r;
  for (auto _ : state) {
    OptAbcastConfig opt;
    opt.alignment_window = state.range(0) * 100 * kMicrosecond;
    r = run_with(opt);
  }
  state.counters["alignment_us"] = static_cast<double>(state.range(0)) * 100;
  report(state, r);
}
BENCHMARK(BM_Ablation_AlignmentWindow)->Arg(0)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Iterations(1);

void BM_Ablation_Pipelining(benchmark::State& state) {
  AblationResult r;
  for (auto _ : state) {
    OptAbcastConfig opt;
    opt.max_outstanding_stages = static_cast<std::size_t>(state.range(0));
    r = run_with(opt);
  }
  state.counters["outstanding_stages"] = static_cast<double>(state.range(0));
  report(state, r);
}
BENCHMARK(BM_Ablation_Pipelining)->Arg(1)->Arg(2)->Arg(4)->Iterations(1);

void BM_Ablation_FastWait(benchmark::State& state) {
  AblationResult r;
  for (auto _ : state) {
    OptAbcastConfig opt;
    opt.consensus.fast_wait = state.range(0) * kMillisecond;
    r = run_with(opt);
  }
  state.counters["fast_wait_ms"] = static_cast<double>(state.range(0));
  report(state, r);
}
BENCHMARK(BM_Ablation_FastWait)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Iterations(1);

}  // namespace
}  // namespace otpdb::bench

BENCHMARK_MAIN();
