// Shared helpers for the benchmark harness. Each bench binary reproduces one
// experiment row of DESIGN.md section 3; metrics of interest are *simulated*
// quantities reported as google-benchmark counters (wall time of the
// simulation itself is irrelevant to the paper's claims).
#pragma once

#include <benchmark/benchmark.h>

#include <memory>

#include "baseline/conservative_replica.h"
#include "baseline/lazy_replica.h"
#include "core/cluster.h"
#include "workload/workload.h"

namespace otpdb::bench {

inline ReplicaFactory conservative_factory() {
  return [](const ReplicaDeps& d) {
    return std::make_unique<ConservativeReplica>(d.sim, d.abcast, d.storage, d.catalog,
                                                 d.registry, d.site);
  };
}

inline ReplicaFactory lazy_factory() {
  return [](const ReplicaDeps& d) {
    return std::make_unique<LazyReplica>(d.sim, d.net, d.storage, d.catalog, d.registry, d.site);
  };
}

/// LAN regime used across benches: the calibrated Figure-1 defaults.
inline NetConfig lan() { return NetConfig{}; }

/// Selects a topology profile and, for the wide-area ones (tens-of-ms RTTs),
/// rescales the protocol timers that were calibrated for LAN latencies -
/// otherwise consensus retries and failure-detector false positives dominate
/// every counter.
inline void apply_topology(ClusterConfig& config, TopologyProfile profile) {
  config.net.topology = profile;
  if (profile == TopologyProfile::wan || profile == TopologyProfile::geo_3dc) {
    config.opt.batch_delay = 10 * kMillisecond;
    config.opt.alignment_window = 8 * kMillisecond;
    config.opt.consensus.fast_wait = 150 * kMillisecond;
    config.opt.consensus.round_timeout = 500 * kMillisecond;
    config.fd.interval = 50 * kMillisecond;
    config.fd.suspect_timeout = 500 * kMillisecond;
  }
}

/// Aggregated view over all replicas of a cluster.
struct ClusterTotals {
  std::uint64_t committed = 0;
  std::uint64_t aborts = 0;
  std::uint64_t reexecutions = 0;
  std::uint64_t reorders = 0;
  OnlineStats commit_latency_ns;
  PercentileTracker commit_latency_percentiles_ns;
  OnlineStats commit_wait_ns;
  OnlineStats opt_to_gap_ns;
  OnlineStats query_latency_ns;
  std::uint64_t query_retries = 0;
};

inline ClusterTotals totals(Cluster& cluster) {
  ClusterTotals t;
  for (SiteId s = 0; s < cluster.site_count(); ++s) {
    const ReplicaMetrics& m = cluster.replica(s).metrics();
    t.committed += m.committed;
    t.aborts += m.aborts;
    t.reexecutions += m.reexecutions;
    t.reorders += m.mismatch_reorders;
    t.commit_latency_ns.merge(m.commit_latency_ns);
    t.commit_latency_percentiles_ns.merge(m.commit_latency_percentiles_ns);
    t.commit_wait_ns.merge(m.commit_wait_ns);
    t.opt_to_gap_ns.merge(m.opt_to_gap_ns);
    t.query_latency_ns.merge(m.query_latency_ns);
    t.query_retries += m.query_retries;
  }
  return t;
}

inline double to_ms(double ns) { return ns / 1e6; }

/// Cluster-wide goodput in distinct transactions per second. Eager engines
/// commit every transaction at every site (divide by n); the lazy engine's
/// commit counter only covers a transaction's origin site (count directly).
inline double goodput(const ClusterTotals& t, std::size_t n_sites, double duration_s,
                      bool lazy_engine) {
  if (duration_s <= 0) return 0;
  const double commits = static_cast<double>(t.committed);
  return lazy_engine ? commits / duration_s
                     : commits / static_cast<double>(n_sites) / duration_s;
}

}  // namespace otpdb::bench
